(** Resource governance for the extraction pipeline.

    The parser is best-effort by design — it never rejects an input,
    returning maximal partial trees when the grammar cannot explain
    everything (paper Section 5.3) — but best-effort *parsing* alone
    does not make a best-effort *pipeline*: pathological HTML, huge
    layouts, or an exhaustive-mode blow-up (visual-language membership
    is NP-complete, Section 5.1) can still stall an extraction for
    minutes.  A {!t} caps every stage — HTML nodes, layout boxes,
    tokens, parser instances and fix-point rounds — and imposes one
    wall-clock deadline measured on a monotonic clock.

    A budget is an immutable spec; {!start} turns it into a mutable
    {!gauge} that one extraction run threads through its stages.  Each
    stage spends against the gauge ({!html_node}, {!box}, {!token},
    {!instance}, {!round}); the first [false] answer means the stage
    must stop growing its output and return what it has.  The gauge
    records each {!trip} so the extractor can report exactly which
    stage truncated, why, and how much was consumed. *)

type stage = Html | Layout | Tokenize | Parse | Merge
(** The pipeline stages a budget governs, in pipeline order. *)

val stage_name : stage -> string
(** Lowercase stable name ("html", "layout", "tokenize", "parse",
    "merge") used in JSON output. *)

type reason =
  | Deadline    (** the wall-clock deadline expired *)
  | Html_nodes  (** DOM node cap *)
  | Boxes       (** layout box cap *)
  | Tokens      (** token cap *)
  | Instances   (** parser instance cap *)
  | Rounds      (** parser fix-point round cap *)

val reason_name : reason -> string
(** Lowercase stable name used in JSON output. *)

type trip = {
  stage : stage;    (** stage that was truncated *)
  reason : reason;
  limit : int;      (** the configured cap ([ms] for {!Deadline}) *)
  consumed : int;   (** counter value (elapsed ms for {!Deadline}) when
                        the budget tripped *)
}

val pp_trip : Format.formatter -> trip -> unit

(** {1 Budget specs} *)

type t = {
  deadline_ms : int option;
      (** Wall-clock budget for the whole run, in milliseconds,
          monotonic clock.  Checked on every spend, so a stage stops
          within one unit of work of the deadline. *)
  max_html_nodes : int option;  (** cap on DOM nodes built from markup *)
  max_boxes : int option;       (** cap on laid-out atoms *)
  max_tokens : int option;      (** cap on classified tokens *)
  max_instances : int option;
      (** cap on parser instances, token instances included; subsumes
          the engine-level [options.max_instances] safety valve (both
          are honoured — the smaller wins) *)
  max_rounds : int option;      (** cap on parser fix-point rounds *)
}

val unlimited : t
(** No deadline, no caps: every spend succeeds and {!start} never
    records a trip.  The default of the extractor's [Config]. *)

val make :
  ?deadline_ms:int ->
  ?max_html_nodes:int ->
  ?max_boxes:int ->
  ?max_tokens:int ->
  ?max_instances:int ->
  ?max_rounds:int ->
  unit ->
  t
(** Omitted caps are unlimited.  Negative values are clamped to 0 (a
    zero cap trips on the first spend). *)

val is_unlimited : t -> bool

(** {1 Gauges} *)

type gauge
(** Mutable per-run state: the start time, the counters, and the trips
    recorded so far.  A gauge belongs to one extraction run; it is not
    thread-safe and must not be shared across domains. *)

val start : t -> gauge
(** Start the clock and zero the counters. *)

val spec : gauge -> t

(** {2 Spending}

    Each call charges one unit to the corresponding counter and answers
    whether the run is still within budget.  The first exceeded cap (or
    the deadline) records a {!trip} and pins the answer to [false] —
    for that counter on cap trips, for every call on deadline trips.
    Stages must treat [false] as "stop growing output, return what you
    have". *)

val html_node : gauge -> bool
(** Charge one DOM node ({!Html}). *)

val box : gauge -> bool
(** Charge one layout box ({!Layout}). *)

val token : gauge -> bool
(** Charge one token ({!Tokenize}). *)

val instance : gauge -> bool
(** Charge one parser instance ({!Parse}). *)

val round : gauge -> bool
(** Charge one fix-point round ({!Parse}). *)

val tick : gauge -> stage -> bool
(** Deadline-only probe for hot loops that do not create anything
    countable (e.g. the parser's combination enumeration): charges
    nothing, checks the clock every few hundred calls.  [false] means
    the deadline tripped. *)

val alive : gauge -> stage -> bool
(** Unthrottled deadline check, for stage entry points.  [false] means
    the deadline has expired (recording the trip against [stage] if it
    was not already recorded). *)

(** {2 Read-back} *)

val trips : gauge -> trip list
(** Trips in the order they occurred; empty iff the run stayed within
    budget. *)

val tripped : gauge -> stage -> bool
(** Whether any trip was recorded against [stage]. *)

val elapsed_ms : gauge -> float

val html_nodes : gauge -> int
val boxes : gauge -> int
val tokens : gauge -> int
val instances : gauge -> int
val rounds : gauge -> int

(** {1 Outcomes}

    The result classification of a governed extraction, recorded in the
    extractor's [extraction.outcome] and rendered by
    [Wqi_model.Export].  Defined here (rather than in the extractor) so
    that layers below the extractor can render it without a dependency
    cycle. *)

type error = {
  error_stage : stage option;
      (** stage that was executing when the failure surfaced, if known *)
  message : string;
}

type outcome =
  | Complete
      (** Every stage ran to its natural end.  (The *parse* may still
          be partial — best-effort parsing never fails — see
          [diagnostics.complete] for full-cover parses.) *)
  | Degraded of trip list
      (** At least one stage was truncated by the budget; the model was
          merged from whatever maximal partial trees existed at that
          point.  The trips say which stage, why and how much. *)
  | Failed of error
      (** An unexpected error; the extraction carries an empty model.
          Never caused by budget exhaustion. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Clock} *)

val now_s : unit -> float
(** Monotonic time in seconds from an arbitrary origin
    ([CLOCK_MONOTONIC]); only differences are meaningful. *)
