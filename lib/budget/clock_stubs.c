/* Monotonic clock for budget deadlines.
 *
 * Wall-clock time (gettimeofday) can jump under NTP adjustment, which
 * would make deadlines fire early or never; CLOCK_MONOTONIC only moves
 * forward.  One stub, no dependency. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value wqi_monotonic_ns(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t) ts.tv_sec * 1000000000LL
                         + (int64_t) ts.tv_nsec);
}
