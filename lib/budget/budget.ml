external monotonic_ns : unit -> int64 = "wqi_monotonic_ns"

let now_s () = Int64.to_float (monotonic_ns ()) *. 1e-9

type stage = Html | Layout | Tokenize | Parse | Merge

let stage_name = function
  | Html -> "html"
  | Layout -> "layout"
  | Tokenize -> "tokenize"
  | Parse -> "parse"
  | Merge -> "merge"

type reason = Deadline | Html_nodes | Boxes | Tokens | Instances | Rounds

let reason_name = function
  | Deadline -> "deadline"
  | Html_nodes -> "html_nodes"
  | Boxes -> "boxes"
  | Tokens -> "tokens"
  | Instances -> "instances"
  | Rounds -> "rounds"

type trip = { stage : stage; reason : reason; limit : int; consumed : int }

let pp_trip ppf t =
  Format.fprintf ppf "%s: %s (%d/%d%s)" (stage_name t.stage)
    (reason_name t.reason) t.consumed t.limit
    (if t.reason = Deadline then " ms" else "")

type t = {
  deadline_ms : int option;
  max_html_nodes : int option;
  max_boxes : int option;
  max_tokens : int option;
  max_instances : int option;
  max_rounds : int option;
}

let unlimited =
  { deadline_ms = None; max_html_nodes = None; max_boxes = None;
    max_tokens = None; max_instances = None; max_rounds = None }

let make ?deadline_ms ?max_html_nodes ?max_boxes ?max_tokens ?max_instances
    ?max_rounds () =
  let clamp = Option.map (max 0) in
  { deadline_ms = clamp deadline_ms;
    max_html_nodes = clamp max_html_nodes;
    max_boxes = clamp max_boxes;
    max_tokens = clamp max_tokens;
    max_instances = clamp max_instances;
    max_rounds = clamp max_rounds }

let is_unlimited b = b = unlimited

type gauge = {
  spec : t;
  t0 : float;
  deadline_at : float option;
  mutable n_html_nodes : int;
  mutable n_boxes : int;
  mutable n_tokens : int;
  mutable n_instances : int;
  mutable n_rounds : int;
  mutable html_dead : bool;
  mutable boxes_dead : bool;
  mutable tokens_dead : bool;
  mutable instances_dead : bool;
  mutable rounds_dead : bool;
  mutable deadline_dead : bool;
  mutable ticks : int;
  mutable trips_rev : trip list;
}

let start spec =
  let t0 = now_s () in
  { spec;
    t0;
    deadline_at =
      Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.)) spec.deadline_ms;
    n_html_nodes = 0;
    n_boxes = 0;
    n_tokens = 0;
    n_instances = 0;
    n_rounds = 0;
    html_dead = false;
    boxes_dead = false;
    tokens_dead = false;
    instances_dead = false;
    rounds_dead = false;
    deadline_dead = false;
    ticks = 0;
    trips_rev = [] }

let spec g = g.spec

let elapsed_ms g = (now_s () -. g.t0) *. 1000.

let record g trip = g.trips_rev <- trip :: g.trips_rev

(* Deadline check; records the trip against [stage] on first expiry. *)
let deadline_ok g stage =
  match g.deadline_at with
  | None -> true
  | Some _ when g.deadline_dead -> false
  | Some at ->
    if now_s () <= at then true
    else begin
      g.deadline_dead <- true;
      record g
        { stage;
          reason = Deadline;
          limit = Option.value ~default:0 g.spec.deadline_ms;
          consumed = int_of_float (elapsed_ms g) };
      false
    end

(* One counter spend: charge, check the cap, then the deadline. *)
let charge g stage reason ~count ~dead ~set_dead ~cap =
  if g.deadline_dead || dead then false
  else begin
    let n = count () in
    match cap with
    | Some limit when n > limit ->
      set_dead ();
      record g { stage; reason; limit; consumed = n };
      false
    | _ -> deadline_ok g stage
  end

let html_node g =
  charge g Html Html_nodes
    ~count:(fun () -> g.n_html_nodes <- g.n_html_nodes + 1; g.n_html_nodes)
    ~dead:g.html_dead
    ~set_dead:(fun () -> g.html_dead <- true)
    ~cap:g.spec.max_html_nodes

let box g =
  charge g Layout Boxes
    ~count:(fun () -> g.n_boxes <- g.n_boxes + 1; g.n_boxes)
    ~dead:g.boxes_dead
    ~set_dead:(fun () -> g.boxes_dead <- true)
    ~cap:g.spec.max_boxes

let token g =
  charge g Tokenize Tokens
    ~count:(fun () -> g.n_tokens <- g.n_tokens + 1; g.n_tokens)
    ~dead:g.tokens_dead
    ~set_dead:(fun () -> g.tokens_dead <- true)
    ~cap:g.spec.max_tokens

let instance g =
  charge g Parse Instances
    ~count:(fun () -> g.n_instances <- g.n_instances + 1; g.n_instances)
    ~dead:g.instances_dead
    ~set_dead:(fun () -> g.instances_dead <- true)
    ~cap:g.spec.max_instances

let round g =
  charge g Parse Rounds
    ~count:(fun () -> g.n_rounds <- g.n_rounds + 1; g.n_rounds)
    ~dead:g.rounds_dead
    ~set_dead:(fun () -> g.rounds_dead <- true)
    ~cap:g.spec.max_rounds

let tick g stage =
  if g.deadline_dead then false
  else if g.deadline_at = None then true
  else begin
    g.ticks <- g.ticks + 1;
    if g.ticks land 0xff <> 0 then true else deadline_ok g stage
  end

let alive g stage = deadline_ok g stage

let trips g = List.rev g.trips_rev

let tripped g stage =
  List.exists (fun (t : trip) -> t.stage = stage) g.trips_rev

let html_nodes g = g.n_html_nodes
let boxes g = g.n_boxes
let tokens g = g.n_tokens
let instances g = g.n_instances
let rounds g = g.n_rounds

type error = { error_stage : stage option; message : string }

type outcome = Complete | Degraded of trip list | Failed of error

let pp_outcome ppf = function
  | Complete -> Format.pp_print_string ppf "complete"
  | Degraded trips ->
    Format.fprintf ppf "degraded (%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_trip)
      trips
  | Failed e ->
    Format.fprintf ppf "failed%a: %s"
      (fun ppf -> function
         | Some s -> Format.fprintf ppf " at %s" (stage_name s)
         | None -> ())
      e.error_stage e.message
