(** Minimal s-expressions for the external grammar format.

    The grammar-as-data pipeline ({!Algebra}, {!Loader}) stores
    grammars as s-expressions: atoms (bare words, integers, or quoted
    strings) and parenthesized lists.  The reader tracks source
    positions so loader diagnostics can point at the offending form
    ([file:line:col]); the printer is canonical — one fixed rendering
    per value — so dump → load → dump is byte-identical. *)

type pos = { line : int; col : int }
(** 1-based line, 1-based column of a form's first character. *)

type t =
  | Atom of pos * string
  | List of pos * t list

val pos : t -> pos

exception Parse_error of pos * string

val parse_string : string -> t list
(** Top-level forms of the input, in order.  Comments run from [;] to
    end of line.  Atoms are bare words ([A-Za-z0-9_+*/.:@%<>=!?-]) or
    double-quoted strings with backslash escapes (backslash, quote,
    [n], [t]).  Raises {!Parse_error} on unbalanced parens,
    unterminated strings, or stray characters. *)

val atom : string -> t
(** Position-less atom (for building values to print). *)

val list : t list -> t

val to_buf : Buffer.t -> t -> unit
(** Canonical one-line rendering: atoms printed bare when they lex as
    bare atoms, double-quoted (with escapes) otherwise; lists as
    [(a b c)] with single spaces. *)

val to_string : t -> string
