(* Two representations behind one immutable interface: universes that
   fit in a single OCaml int (<= 63 tokens on 64-bit, which covers every
   interface in the paper's corpus) avoid the words array entirely, so
   the parser's innermost operations — [disjoint], [union], [subset] —
   are register arithmetic with no loads beyond the header. *)

type t =
  | Small of { size : int; bits : int }
  | Big of { size : int; words : int array }

let bits_per_word = Sys.int_size

let words_for n = (n + bits_per_word - 1) / bits_per_word

let universe_size = function Small { size; _ } | Big { size; _ } -> size

let empty n =
  if n <= bits_per_word then Small { size = n; bits = 0 }
  else Big { size = n; words = Array.make (words_for n) 0 }

let of_word n bits =
  if n > bits_per_word then
    invalid_arg "Bitset.of_word: universe exceeds one word";
  Small { size = n; bits }

let to_word = function
  | Small { bits; _ } -> bits
  | Big _ -> invalid_arg "Bitset.to_word: universe exceeds one word"

let check size i =
  if i < 0 || i >= size then
    invalid_arg (Printf.sprintf "Bitset: index %d outside universe %d" i size)

let add t i =
  match t with
  | Small { size; bits } ->
    check size i;
    Small { size; bits = bits lor (1 lsl i) }
  | Big { size; words } ->
    check size i;
    let words = Array.copy words in
    let w = i / bits_per_word and b = i mod bits_per_word in
    words.(w) <- words.(w) lor (1 lsl b);
    Big { size; words }

let singleton n i = add (empty n) i

let mem t i =
  match t with
  | Small { size; bits } ->
    check size i;
    bits land (1 lsl i) <> 0
  | Big { size; words } ->
    check size i;
    let w = i / bits_per_word and b = i mod bits_per_word in
    words.(w) land (1 lsl b) <> 0

let mismatch () = invalid_arg "Bitset: universe mismatch"

let union a b =
  match (a, b) with
  | Small a, Small b ->
    if a.size <> b.size then mismatch ();
    Small { size = a.size; bits = a.bits lor b.bits }
  | Big a, Big b ->
    if a.size <> b.size then mismatch ();
    Big { size = a.size; words = Array.map2 ( lor ) a.words b.words }
  | _ -> mismatch ()

let inter a b =
  match (a, b) with
  | Small a, Small b ->
    if a.size <> b.size then mismatch ();
    Small { size = a.size; bits = a.bits land b.bits }
  | Big a, Big b ->
    if a.size <> b.size then mismatch ();
    Big { size = a.size; words = Array.map2 ( land ) a.words b.words }
  | _ -> mismatch ()

(* SWAR popcount.  The 64-bit constants exceed [max_int] on a 63-bit
   native int, so each mask is assembled from 32-bit halves; the wrap of
   the top bit is harmless because all steps are bit-pattern arithmetic
   and the final byte-sum (at most 63) fits the 7 bits left above the
   multiply. *)
let m1 = 0x55555555 lor (0x55555555 lsl 32)
let m2 = 0x33333333 lor (0x33333333 lsl 32)
let m4 = 0x0f0f0f0f lor (0x0f0f0f0f lsl 32)
let h01 = 0x01010101 lor (0x01010101 lsl 32)

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr 56

let cardinal = function
  | Small { bits; _ } -> popcount bits
  | Big { words; _ } ->
    let acc = ref 0 in
    for i = 0 to Array.length words - 1 do
      acc := !acc + popcount (Array.unsafe_get words i)
    done;
    !acc

let is_empty = function
  | Small { bits; _ } -> bits = 0
  | Big { words; _ } -> Array.for_all (fun w -> w = 0) words

let disjoint a b =
  match (a, b) with
  | Small a, Small b ->
    if a.size <> b.size then mismatch ();
    a.bits land b.bits = 0
  | Big a, Big b ->
    if a.size <> b.size then mismatch ();
    let wa = a.words and wb = b.words in
    let n = Array.length wa in
    let rec go i =
      i >= n
      || (Array.unsafe_get wa i land Array.unsafe_get wb i = 0 && go (i + 1))
    in
    go 0
  | _ -> mismatch ()

let subset a b =
  match (a, b) with
  | Small a, Small b ->
    if a.size <> b.size then mismatch ();
    a.bits land lnot b.bits = 0
  | Big a, Big b ->
    if a.size <> b.size then mismatch ();
    let wa = a.words and wb = b.words in
    let n = Array.length wa in
    let rec go i =
      i >= n
      || (Array.unsafe_get wa i land lnot (Array.unsafe_get wb i) = 0
          && go (i + 1))
    in
    go 0
  | _ -> mismatch ()

let equal a b =
  match (a, b) with
  | Small a, Small b -> a.size = b.size && a.bits = b.bits
  | Big a, Big b ->
    a.size = b.size
    &&
    let wa = a.words and wb = b.words in
    let n = Array.length wa in
    let rec go i =
      i >= n
      || (Int.equal (Array.unsafe_get wa i) (Array.unsafe_get wb i)
          && go (i + 1))
    in
    go 0
  | _ -> false

let strict_subset a b = subset a b && not (equal a b)

let elements t =
  let acc = ref [] in
  (match t with
   | Small { size; bits } ->
     for i = size - 1 downto 0 do
       if bits land (1 lsl i) <> 0 then acc := i :: !acc
     done
   | Big { size; words } ->
     for i = size - 1 downto 0 do
       let w = i / bits_per_word and b = i mod bits_per_word in
       if words.(w) land (1 lsl b) <> 0 then acc := i :: !acc
     done);
  !acc

let of_list n items = List.fold_left add (empty n) items

let union_all n = List.fold_left union (empty n)

let copy = function
  | Small _ as t -> t
  | Big { size; words } -> Big { size; words = Array.copy words }

let union_into ~into x =
  match (into, x) with
  | Small a, Small b ->
    if a.size <> b.size then mismatch ();
    Small { size = a.size; bits = a.bits lor b.bits }
  | Big a, Big b ->
    if a.size <> b.size then mismatch ();
    let wa = a.words and wb = b.words in
    for i = 0 to Array.length wa - 1 do
      Array.unsafe_set wa i (Array.unsafe_get wa i lor Array.unsafe_get wb i)
    done;
    into
  | _ -> mismatch ()

let hash = function
  | Small { bits; _ } -> Hashtbl.hash bits
  | Big { words; _ } -> Hashtbl.hash words

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)
