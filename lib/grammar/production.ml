type t = {
  name : string;
  head : Symbol.t;
  components : Symbol.t list;
  guard : Instance.t array -> bool;
  build : Instance.t array -> Instance.sem;
  hints : Hint.t list;
}

let make ~name ~head ~components ?(guard = fun _ -> true)
    ?(build = fun _ -> Instance.S_none) ?(hints = []) () =
  if components = [] then invalid_arg "Production.make: empty components";
  let arity = List.length components in
  List.iter
    (fun (h : Hint.t) ->
       if h.a < 0 || h.a >= arity || h.b < 0 || h.b >= arity || h.a = h.b
       then
         invalid_arg
           (Fmt.str "Production.make: %s: hint %a out of range for arity %d"
              name Hint.pp h arity))
    hints;
  { name; head; components; guard; build; hints }

let is_recursive p = List.exists (Symbol.equal p.head) p.components

let pp ppf p =
  Fmt.pf ppf "%s: %a -> %a%a" p.name Symbol.pp p.head
    Fmt.(list ~sep:(any " ") Symbol.pp)
    p.components
    Fmt.(
      list ~sep:nop (fun ppf h -> pf ppf " @[%a@]" Hint.pp h))
    p.hints
