(** External grammar files: parse, validate, and canonically print the
    {!Algebra} representation.

    A grammar file is a sequence of s-expression forms: a header, then
    productions and preferences —

    {v
(wqi-grammar (format 1) (name std) (version 1)
  (terminals text textbox selection radio checkbox button image)
  (start QI))
(production P-Attr (head Attr) (components text)
  (guard (text-class plausible-attribute token 0))
  (build (str (token 0))))
(preference R1-RBU-Attr (winner RBU) (loser Attr) (beats))
    v}

    Guards are predicate forms ([(and ...)], [(not ...)], relation
    forms like [(left-of 60 0 1)] with explicit gaps/tolerances and
    0-based slot numbers, [(text-class NAME token|sem SLOT)],
    [(splits NAME SLOT)], [(ops-exist NAME SLOT)], [(ops-all NAME
    SLOT)], [(ops-count>= N SLOT)], [(options-class NAME SLOT)],
    [(combo NAME SLOT...)]); builds are value forms ([(str ...)],
    [(split-str NAME first|second SLOT)], [(ops ...)], [(domain ...)],
    [(cond ...)], [(lift SLOT)], [(concat A B)]).  Omitting [(guard
    ...)] means always-true; omitting [(build ...)] means no semantic
    value.  See README.md "Grammars as data" for the full reference.

    {!parse} validates eagerly with source positions: unknown
    text-class/splitter/combo names (against the given {!Algebra.env}),
    slots out of a production's arity, component symbols that are
    neither declared terminals nor any production's head, duplicate
    production names, a non-head start symbol, and cyclic productions
    all fail with [file:line:col].  A parsed grammar therefore
    instantiates cleanly; {!Algebra.instantiate} re-checks as a
    belt-and-braces layer.

    {!dump} is canonical — one fixed rendering per grammar, one form
    per line — so dump → {!parse} → dump is byte-identical. *)

type error = { file : string; pos : Sexp.pos; message : string }

val error_to_string : error -> string
(** ["file:line:col: message"]. *)

val parse :
  env:Algebra.env -> ?file:string -> string -> (Algebra.grammar, error) result
(** Parse grammar-file text.  [file] (default ["<string>"]) only labels
    error messages. *)

val load : env:Algebra.env -> string -> (Algebra.grammar, error) result
(** Read and {!parse} a file; I/O failures are reported as an [error]
    at position 0:0. *)

val dump : Algebra.grammar -> string
(** Canonical text of the grammar: header form, productions, then
    preferences, one per line. *)

val load_grammar :
  env:Algebra.env -> string -> (Algebra.grammar * Grammar.t, string) result
(** {!load} then {!Algebra.instantiate}, with errors flattened to one
    printable string — the convenience entry CLIs use. *)
