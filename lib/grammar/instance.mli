(** Instances: nodes of (partial) parse trees.

    An instance of a symbol covers a set of tokens, occupies a bounding
    box, and carries a semantic value built by its production's
    constructor.  Instances form a DAG during parsing (an instance may
    participate in several competing parents); [alive] and the parent
    links support just-in-time pruning with rollback (Section 5.2). *)

module Condition = Wqi_model.Condition

(** Semantic values propagated bottom-up by production constructors. *)
type sem =
  | S_none
  | S_str of string          (** a label: attribute name, operator text *)
  | S_ops of string list     (** an operator set *)
  | S_domain of Condition.domain  (** an input domain *)
  | S_cond of Condition.t    (** a completed query condition *)
  | S_conds of Condition.t list   (** conditions aggregated by rows/QI *)

type t = private {
  id : int;
  sym : Symbol.t;
  prod : string option;       (** producing production; [None] for tokens *)
  children : t list;          (** in component order *)
  cover : Bitset.t;           (** covered token ids *)
  box : Wqi_layout.Geometry.box;
  sem : sem;
  token : Wqi_token.Token.t option;  (** the token, for terminal instances *)
  mutable alive : bool;
  mutable parents : t list;
}

val of_token : id:int -> universe:int -> Wqi_token.Token.t -> t
(** Terminal instance covering exactly its token. *)

val make :
  id:int ->
  sym:Symbol.t ->
  prod:string ->
  children:t list ->
  sem:sem ->
  t
(** Nonterminal instance; cover and box are the unions over [children].
    Registers itself as a parent of each child. *)

val prebuilt :
  id:int ->
  sym:Symbol.t ->
  prod:string ->
  children:t list ->
  sem:sem ->
  cover:Bitset.t ->
  box:Wqi_layout.Geometry.box ->
  t
(** {!make} with the cover and box supplied by the caller instead of
    recomputed from [children].  For the parser's arena fast path, which
    tracks both incrementally while binding components; the caller must
    pass exactly the unions {!make} would have computed, or every
    downstream subsumption/conflict decision is corrupted. *)

val kill : t -> unit
(** Mark dead.  Does not touch parents; see {!rollback}. *)

val rollback : ?on_kill:(t -> unit) -> t -> int
(** [rollback i] kills [i] and, transitively, every live ancestor that
    used it; returns the number of instances killed (including [i] if it
    was alive).  [on_kill] is invoked once per instance actually killed,
    in kill order — the parser uses it to keep its spatial candidate
    index in step with the store. *)

val conflicts : t -> t -> bool
(** Two instances conflict when their covers intersect. *)

val is_descendant : t -> of_:t -> bool
(** [is_descendant d ~of_:a]: [d] occurs in [a]'s derivation (strictly
    below [a]).  Preference enforcement must spare such losers: the
    winner is built from them (e.g. a length-3 RBList contains the
    length-2 RBList it subsumes). *)

val subsumes : t -> t -> bool
(** [subsumes a b]: [a]'s cover is a superset of [b]'s. *)

val conditions : t -> Condition.t list
(** The conditions this instance's semantics denote ([S_cond] and
    [S_conds]; [[]] otherwise). *)

val collect_conditions : t -> (Condition.t * int list) list
(** Walk the subtree and return every distinct condition produced by a
    descendant whose semantics is [S_cond], paired with the token ids of
    the subtree that built it.  Used by the merger. *)

val size : t -> int
(** Number of nodes in the derivation tree rooted here (counting shared
    subtrees once per occurrence, as the paper does). *)

val tokens : t -> int list

val pp : Format.formatter -> t -> unit
(** One-line summary. *)

val pp_tree : Format.formatter -> t -> unit
(** Indented derivation tree, for debugging and the demo executables. *)
