module Condition = Wqi_model.Condition
module Geometry = Wqi_layout.Geometry

type slot = int

type text_src = Token_text | Sem_str

type pred =
  | P_true
  | P_and of pred list
  | P_not of pred
  | P_rel of Hint.rel * slot * slot
  | P_text_is of string * text_src * slot
  | P_split_applies of string * slot
  | P_ops_exists of string * slot
  | P_ops_forall of string * slot
  | P_ops_count_ge of int * slot
  | P_options_class of string * slot
  | P_combo of string * slot list

type str_expr =
  | S_lit of string
  | S_token_text of slot
  | S_sem_str of slot

type ops_expr =
  | O_token_options of slot
  | O_sem_ops of slot
  | O_singleton of slot
  | O_append of slot * slot
  | O_lit of string list

type dom_expr =
  | D_text
  | D_datetime
  | D_enum of ops_expr
  | D_of_slot of slot
  | D_range of dom_expr

type build =
  | B_none
  | B_str of str_expr
  | B_split_str of string * [ `First | `Second ] * slot
  | B_ops of ops_expr
  | B_domain of dom_expr
  | B_cond of ops_expr option * str_expr * dom_expr
  | B_lift of slot
  | B_concat of slot * slot

type pref_kind =
  | K_beats
  | K_subsume
  | K_closest_unit
  | K_clean_attr of string list
  | K_assoc of string list

type production = {
  p_name : string;
  p_head : string;
  p_components : string list;
  p_guard : pred;
  p_build : build;
}

type preference = {
  r_name : string;
  r_winner : string;
  r_loser : string;
  r_kind : pref_kind;
}

type grammar = {
  g_name : string;
  g_version : string;
  g_terminals : string list;
  g_start : string;
  g_productions : production list;
  g_preferences : preference list;
}

type env = {
  text_classes : (string * (string -> bool)) list;
  options_classes : (string * (string list -> bool)) list;
  splitters : (string * (string -> (string * string) option)) list;
  combos : (string * (string list list -> bool)) list;
}

let empty_env =
  { text_classes = []; options_classes = []; splitters = []; combos = [] }

(* ------------------------------------------------------------------ *)
(* Semantic access — same readings as the hand-written grammar uses.   *)
(* ------------------------------------------------------------------ *)

let tok_sval (i : Instance.t) =
  match i.token with Some tk -> tk.Wqi_token.Token.sval | None -> ""

let tok_options (i : Instance.t) =
  match i.token with Some tk -> tk.Wqi_token.Token.options | None -> []

let str_of (i : Instance.t) =
  match i.sem with Instance.S_str s -> s | _ -> ""

let ops_of (i : Instance.t) =
  match i.sem with Instance.S_ops l -> l | _ -> []

let dom_of (i : Instance.t) =
  match i.sem with Instance.S_domain d -> d | _ -> Condition.Text

let enum_options (i : Instance.t) =
  match dom_of i with Condition.Enumeration vs -> vs | _ -> []

let read_text src i =
  match src with Token_text -> tok_sval i | Sem_str -> str_of i

(* ------------------------------------------------------------------ *)
(* Compilation: resolve names and slots once, return plain closures.   *)
(* ------------------------------------------------------------------ *)

exception Err of string

let err fmt = Format.kasprintf (fun m -> raise (Err m)) fmt

let slot ~arity s =
  if s < 0 || s >= arity then
    err "slot %d out of range (production has %d components)" s arity
  else s

let lookup kind table name =
  match List.assoc_opt name table with
  | Some f -> f
  | None -> err "unknown %s %S" kind name

(* Conjunction chains compile to a flat closure array walked by index —
   [P_and [p; P_and [q; r]]] costs three calls through one array, not a
   [List.for_all] re-traversing cons cells per guard invocation — and
   relations resolve their [Hint.rel] match here, once, so the per-call
   closure is the monomorphic geometry predicate with its parameter
   already bound. *)
let rec flatten_and acc = function
  | P_and ps -> List.fold_left flatten_and acc ps
  | P_true -> acc
  | p -> p :: acc

let rec c_pred env ~arity p : Instance.t array -> bool =
  match p with
  | P_true -> fun _ -> true
  | P_and ps ->
    (match List.rev (List.fold_left flatten_and [] ps) with
     | [] -> fun _ -> true
     | [ p ] -> c_pred env ~arity p
     | ps ->
       let fs = Array.of_list (List.map (c_pred env ~arity) ps) in
       let n = Array.length fs in
       fun arr ->
         let rec go k = k >= n || ((Array.unsafe_get fs k) arr && go (k + 1)) in
         go 0)
  | P_not p ->
    let f = c_pred env ~arity p in
    fun arr -> not (f arr)
  | P_rel (rel, a, b) ->
    let a = slot ~arity a and b = slot ~arity b in
    if a = b then err "relation %a relates slot %d to itself" Hint.pp_rel rel a;
    let holds : Geometry.box -> Geometry.box -> bool =
      match rel with
      | Hint.Left_of max_gap -> Geometry.left_of ~max_gap
      | Hint.Above max_gap -> Geometry.above ~max_gap
      | Hint.Below max_gap -> Geometry.below ~max_gap
      | Hint.Same_row -> Geometry.same_row
      | Hint.Same_column -> Geometry.same_column
      | Hint.Left_aligned tolerance -> Geometry.left_aligned ~tolerance
      | Hint.Top_aligned tolerance -> Geometry.top_aligned ~tolerance
      | Hint.Bottom_aligned tolerance -> Geometry.bottom_aligned ~tolerance
    in
    fun arr -> holds arr.(a).Instance.box arr.(b).Instance.box
  | P_text_is (name, src, s) ->
    let f = lookup "text class" env.text_classes name in
    let s = slot ~arity s in
    fun arr -> f (read_text src arr.(s))
  | P_split_applies (name, s) ->
    let f = lookup "splitter" env.splitters name in
    let s = slot ~arity s in
    fun arr -> f (tok_sval arr.(s)) <> None
  | P_ops_exists (name, s) ->
    let f = lookup "text class" env.text_classes name in
    let s = slot ~arity s in
    fun arr -> List.exists f (ops_of arr.(s))
  | P_ops_forall (name, s) ->
    let f = lookup "text class" env.text_classes name in
    let s = slot ~arity s in
    fun arr -> List.for_all f (ops_of arr.(s))
  | P_ops_count_ge (n, s) ->
    let s = slot ~arity s in
    fun arr -> List.length (ops_of arr.(s)) >= n
  | P_options_class (name, s) ->
    let f = lookup "options class" env.options_classes name in
    let s = slot ~arity s in
    fun arr -> f (tok_options arr.(s))
  | P_combo (name, slots) ->
    let f = lookup "combo" env.combos name in
    let slots = List.map (slot ~arity) slots in
    fun arr -> f (List.map (fun s -> enum_options arr.(s)) slots)

let c_str ~arity = function
  | S_lit s -> fun _ -> s
  | S_token_text s ->
    let s = slot ~arity s in
    fun arr -> tok_sval arr.(s)
  | S_sem_str s ->
    let s = slot ~arity s in
    fun arr -> str_of arr.(s)

let c_ops ~arity = function
  | O_token_options s ->
    let s = slot ~arity s in
    fun arr -> tok_options arr.(s)
  | O_sem_ops s ->
    let s = slot ~arity s in
    fun arr -> ops_of arr.(s)
  | O_singleton s ->
    let s = slot ~arity s in
    fun arr -> [ str_of arr.(s) ]
  | O_append (a, b) ->
    let a = slot ~arity a and b = slot ~arity b in
    fun arr -> ops_of arr.(a) @ [ str_of arr.(b) ]
  | O_lit l -> fun _ -> l

let rec c_dom ~arity = function
  | D_text -> fun _ -> Condition.Text
  | D_datetime -> fun _ -> Condition.Datetime
  | D_enum e ->
    let f = c_ops ~arity e in
    fun arr -> Condition.Enumeration (f arr)
  | D_of_slot s ->
    let s = slot ~arity s in
    fun arr -> dom_of arr.(s)
  | D_range d ->
    let f = c_dom ~arity d in
    fun arr -> Condition.Range (f arr)

let lift_conditions (i : Instance.t) =
  match i.sem with
  | Instance.S_cond c -> Instance.S_conds [ c ]
  | Instance.S_conds cs -> Instance.S_conds cs
  | Instance.S_none | Instance.S_str _ | Instance.S_ops _
  | Instance.S_domain _ ->
    Instance.S_conds []

let conds_of (i : Instance.t) =
  match i.sem with Instance.S_conds cs -> cs | _ -> []

let c_build env ~arity = function
  | B_none -> fun _ -> Instance.S_none
  | B_str e ->
    let f = c_str ~arity e in
    fun arr -> Instance.S_str (f arr)
  | B_split_str (name, part, s) ->
    let split = lookup "splitter" env.splitters name in
    let s = slot ~arity s in
    fun arr ->
      (match split (tok_sval arr.(s)) with
       | Some (first, second) ->
         Instance.S_str (match part with `First -> first | `Second -> second)
       | None -> Instance.S_none)
  | B_ops e ->
    let f = c_ops ~arity e in
    fun arr -> Instance.S_ops (f arr)
  | B_domain d ->
    let f = c_dom ~arity d in
    fun arr -> Instance.S_domain (f arr)
  | B_cond (ops, attr, dom) ->
    let ops = Option.map (c_ops ~arity) ops in
    let attr = c_str ~arity attr in
    let dom = c_dom ~arity dom in
    fun arr ->
      let operators = Option.map (fun f -> f arr) ops in
      Instance.S_cond
        (Condition.make ?operators ~attribute:(attr arr) (dom arr))
  | B_lift s ->
    let s = slot ~arity s in
    fun arr -> lift_conditions arr.(s)
  | B_concat (a, b) ->
    let a = slot ~arity a and b = slot ~arity b in
    fun arr -> Instance.S_conds (conds_of arr.(a) @ conds_of arr.(b))

let compile_guard env ~arity p =
  match c_pred env ~arity p with
  | f -> Ok f
  | exception Err m -> Error m

let compile_build env ~arity b =
  match c_build env ~arity b with
  | f -> Ok f
  | exception Err m -> Error m

(* Hints are the guard's top-level positive relation conjuncts: each is
   implied by the guard by construction, which is exactly the soundness
   contract Production.make's hints carry. *)
let derived_hints p =
  let rec go acc = function
    | P_rel (rel, a, b) -> { Hint.a; b; rel } :: acc
    | P_and ps -> List.fold_left go acc ps
    | P_true | P_not _ | P_text_is _ | P_split_applies _ | P_ops_exists _
    | P_ops_forall _ | P_ops_count_ge _ | P_options_class _ | P_combo _ ->
      acc
  in
  List.rev (go [] p)

(* ------------------------------------------------------------------ *)
(* Preference kinds                                                    *)
(* ------------------------------------------------------------------ *)

let cover_size (i : Instance.t) = Bitset.cardinal i.Instance.cover

let unit_distance (i : Instance.t) =
  match i.children with
  | [ box_child; label ] -> Relation.h_gap box_child label
  | _ -> max_int

let attribute_of (i : Instance.t) =
  match i.sem with Instance.S_cond c -> c.Condition.attribute | _ -> ""

(* Association scoring, shared with the hand-written grammar's
   semantics: left-of is the strongest labelling convention, then
   above/below, then anything else; ties break toward the reading that
   explains more tokens, then the more compact one. *)
let assoc_score ~is_attr_sym (i : Instance.t) =
  match i.children with
  | a :: (_ :: _ as rest) when is_attr_sym a.Instance.sym ->
    let field_box =
      Geometry.union_all (List.map (fun (c : Instance.t) -> c.box) rest)
    in
    let gap = Geometry.h_gap a.box field_box in
    let vgap = Geometry.v_gap a.box field_box in
    if Geometry.left_of ~max_gap:10_000 a.box field_box then (0, gap)
    else (1000, vgap)
  | _ -> (3000, 0)

let assoc_wins ~is_attr_sym v1 v2 =
  let s1 = assoc_score ~is_attr_sym v1
  and s2 = assoc_score ~is_attr_sym v2 in
  if s1 <> s2 then s1 < s2
  else
    let c1 = cover_size v1 and c2 = cover_size v2 in
    if c1 <> c2 then c1 > c2
    else
      Relation.width v1 * Relation.height v1
      < Relation.width v2 * Relation.height v2

let compile_pref_kind ~resolve_symbol ~splitters kind :
  (Instance.t -> Instance.t -> bool) option
  * (Instance.t -> Instance.t -> bool) option =
  match kind with
  | K_beats -> (None, None)
  | K_subsume ->
    ( Some (fun v1 v2 -> Instance.subsumes v1 v2),
      Some (fun v1 v2 -> cover_size v1 > cover_size v2) )
  | K_closest_unit ->
    (None, Some (fun v1 v2 -> unit_distance v1 < unit_distance v2))
  | K_clean_attr names ->
    let fs = List.map (lookup "splitter" splitters) names in
    let dirty label = List.exists (fun f -> f label <> None) fs in
    ( None,
      Some
        (fun v1 v2 ->
           (not (dirty (attribute_of v1))) && dirty (attribute_of v2)) )
  | K_assoc names ->
    let syms = List.map resolve_symbol names in
    let is_attr_sym s = List.exists (Symbol.equal s) syms in
    (None, Some (assoc_wins ~is_attr_sym))

(* ------------------------------------------------------------------ *)
(* Whole-grammar instantiation                                         *)
(* ------------------------------------------------------------------ *)

let instantiate env (g : grammar) =
  let errors = ref [] in
  let fail fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let heads =
    List.fold_left
      (fun acc p ->
         if List.mem p.p_head acc then acc else p.p_head :: acc)
      [] g.g_productions
    |> List.rev
  in
  let resolve ~ctx name =
    if List.mem name g.g_terminals then Symbol.terminal name
    else if List.mem name heads then Symbol.nonterminal name
    else err "%s: unknown symbol %S" ctx name
  in
  let productions =
    List.filter_map
      (fun p ->
         let ctx = Printf.sprintf "production %s" p.p_name in
         match
           let head =
             if List.mem p.p_head g.g_terminals then
               err "%s: head %S is a terminal" ctx p.p_head
             else Symbol.nonterminal p.p_head
           in
           let components =
             List.map (resolve ~ctx) p.p_components
           in
           let arity = List.length components in
           let guard = c_pred env ~arity p.p_guard in
           let build = c_build env ~arity p.p_build in
           let hints = derived_hints p.p_guard in
           Production.make ~name:p.p_name ~head ~components ~guard ~build
             ~hints ()
         with
         | prod -> Some prod
         | exception Err m ->
           fail "%s" m;
           None
         | exception Invalid_argument m ->
           fail "%s: %s" ctx m;
           None)
      g.g_productions
  in
  let resolve_symbol_total ~ctx name =
    (* For preference sides and K_assoc parameters. *)
    resolve ~ctx name
  in
  let preferences =
    List.filter_map
      (fun r ->
         let ctx = Printf.sprintf "preference %s" r.r_name in
         match
           let winner = resolve_symbol_total ~ctx r.r_winner in
           let loser = resolve_symbol_total ~ctx r.r_loser in
           let conflict, wins =
             compile_pref_kind
               ~resolve_symbol:(resolve_symbol_total ~ctx)
               ~splitters:env.splitters r.r_kind
           in
           Preference.make ~name:r.r_name ~winner ~loser ?conflict ?wins ()
         with
         | pref -> Some pref
         | exception Err m ->
           fail "%s" m;
           None)
      g.g_preferences
  in
  let start =
    if List.mem g.g_start heads then Some (Symbol.nonterminal g.g_start)
    else begin
      fail "start symbol %S is not the head of any production" g.g_start;
      None
    end
  in
  match (!errors, start) with
  | [], Some start ->
    let grammar =
      Grammar.make
        ~terminals:(List.map Symbol.terminal g.g_terminals)
        ~start ~productions ~preferences ()
    in
    (match Grammar.validate grammar with
     | Ok () -> Ok grammar
     | Error msgs -> Error msgs)
  | errs, _ -> Error (List.rev errs)

(* ------------------------------------------------------------------ *)
(* Printing (diagnostics)                                              *)
(* ------------------------------------------------------------------ *)

let rec pp_pred ppf = function
  | P_true -> Fmt.string ppf "true"
  | P_and ps -> Fmt.pf ppf "(and %a)" (Fmt.list ~sep:Fmt.sp pp_pred) ps
  | P_not p -> Fmt.pf ppf "(not %a)" pp_pred p
  | P_rel (rel, a, b) -> Fmt.pf ppf "(%a %d %d)" Hint.pp_rel rel a b
  | P_text_is (n, src, s) ->
    Fmt.pf ppf "(text-class %s %s %d)" n
      (match src with Token_text -> "token" | Sem_str -> "sem")
      s
  | P_split_applies (n, s) -> Fmt.pf ppf "(splits %s %d)" n s
  | P_ops_exists (n, s) -> Fmt.pf ppf "(ops-exist %s %d)" n s
  | P_ops_forall (n, s) -> Fmt.pf ppf "(ops-all %s %d)" n s
  | P_ops_count_ge (n, s) -> Fmt.pf ppf "(ops-count>= %d %d)" n s
  | P_options_class (n, s) -> Fmt.pf ppf "(options-class %s %d)" n s
  | P_combo (n, slots) ->
    Fmt.pf ppf "(combo %s %a)" n Fmt.(list ~sep:sp int) slots
