(** Row-band spatial index over live-instance bounding boxes.

    One index per per-symbol instance store: every instance is
    registered (under its creation index) in each 32-pixel horizontal
    band its box touches, with an overflow list for boxes spanning many
    bands.  A probe takes a conservative {!Hint.region} — a y-interval
    and an optional x-interval the candidate's spans must intersect —
    and returns the matching creation indices in strictly ascending
    order, so the parser's enumeration order (and therefore every
    instance id and downstream tie-break) is exactly what a linear scan
    would have produced on the same admissible subset.

    The index is append-only plus lazy tombstoning: kills never revive,
    so probes stay correct by re-checking liveness through the [alive]
    callback, and bands are compacted wholesale once at least half the
    registered instances have been reported dead ({!note_killed}) —
    which also makes the structure trivially rollback-safe. *)

type t

val create : alive:(int -> bool) -> t
(** [create ~alive] with [alive idx] reporting whether the instance at
    creation index [idx] of the owning store is still live. *)

val reset : t -> unit
(** Empty the index for reuse, keeping the band storage.  Entries are
    packed ints, so retained capacity pins no instances — the parser's
    arena resets one pooled index per symbol between parses instead of
    rebuilding the band tables. *)

val add : t -> idx:int -> Wqi_layout.Geometry.box -> unit
(** Register an instance under its creation index.  Indices must be
    added in ascending order (they are: stores are append-only). *)

val add_coords : t -> idx:int -> int -> int -> int -> int -> unit
(** [add_coords t ~idx x1 y1 x2 y2]: {!add} from raw coordinates, for
    callers whose boxes live in unboxed column storage.  The parser's
    arena registers instances lazily — only when a column's first probe
    arrives — so parses that never probe a symbol pay nothing for its
    index. *)

val note_killed : t -> unit
(** Record that one registered instance died; triggers band compaction
    when the dead fraction reaches one half. *)

val query_into :
  t ->
  y_lo:int ->
  y_hi:int ->
  x_lo:int ->
  x_hi:int ->
  start:int ->
  stop:int ->
  int array ref ->
  int
(** [query_into t ~y_lo ~y_hi ~x_lo ~x_hi ~start ~stop buf] writes the
    creation indices in [\[start, stop)] whose box y-span intersects
    [\[y_lo, y_hi\]] and x-span intersects [\[x_lo, x_hi\]] into [!buf]
    (growing and re-seating the caller-owned scratch buffer as needed)
    and returns their count.  Results are strictly ascending with
    duplicates removed.  A superset filter: callers must still check
    liveness, the exact hint relations, and the production guard.
    Unconstrained axes pass [min_int]/[max_int]. *)

val query :
  t ->
  y_lo:int ->
  y_hi:int ->
  x:(int * int) option ->
  start:int ->
  stop:int ->
  int array
(** {!query_into} returning a fresh exactly-sized array; convenience
    for callers without a scratch buffer. *)
