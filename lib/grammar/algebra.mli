(** A declarative spatial-rule algebra: 2P grammars as data.

    The paper's central claim is that form layout follows a hidden
    syntax; this module makes that syntax a {e datum}.  Where
    {!Production} carries its constraint and constructor as opaque
    OCaml closures, the algebra expresses them as small typed ASTs —
    conjunctions of spatial relations ({!Hint.rel}), lexical
    text-class tests, and attribute tests for guards; a value grammar
    for constructors; a closed set of arbitration kinds for
    preferences.  A grammar written in the algebra can be serialized
    ({!Loader.dump}), loaded from a file at runtime ({!Loader}), and
    compiled ({!instantiate}) into exactly the {!Grammar.t} the parser
    already consumes — turning every new domain or form style into a
    data file instead of a rebuild.

    {b Environments.}  Lexical knowledge (what reads as an operator
    phrase, a bound marker, a plausible attribute label) stays in code:
    an {!env} maps names to the judgement functions, and the algebra
    references them by name.  The standard environment built over
    [Wqi_stdgrammar.Lexicon] lives in [Wqi_stdgrammar.Std_decl].

    {b Hints are derived, not declared.}  Because guards are data, the
    spatial conjuncts the candidate index can see through
    ({!Production.t.hints}) are computed mechanically from the guard's
    top-level positive relation conjuncts — the soundness contract
    ("every hint is implied by the guard") holds by construction. *)

type slot = int
(** A component position, [0]-based, in declaration order. *)

(** Where a predicate or constructor reads a slot's text: the
    underlying token's visible text ([Token_text], terminals), or the
    [S_str] semantic value a production built ([Sem_str]). *)
type text_src = Token_text | Sem_str

(** Guard predicates: conjunctions over spatial relations between two
    slots, named lexical classes, and structural tests — mirroring
    exactly what the hand-written [std.ml] guards check. *)
type pred =
  | P_true
  | P_and of pred list
  | P_not of pred
  | P_rel of Hint.rel * slot * slot
      (** the spatial relation holds of (instance in first slot,
          instance in second slot) *)
  | P_text_is of string * text_src * slot
      (** named text class accepts the slot's text *)
  | P_split_applies of string * slot
      (** named splitter returns [Some _] on the slot's token text *)
  | P_ops_exists of string * slot
      (** some element of the slot's [S_ops] satisfies the named text
          class *)
  | P_ops_forall of string * slot
  | P_ops_count_ge of int * slot
      (** the slot's [S_ops] has at least this many elements *)
  | P_options_class of string * slot
      (** named predicate over the slot's token option labels *)
  | P_combo of string * slot list
      (** named predicate over the enumeration options of several
          slots (e.g. "do these selects form a date?") *)

(** Constructor value expressions. *)
type str_expr =
  | S_lit of string
  | S_token_text of slot
  | S_sem_str of slot

type ops_expr =
  | O_token_options of slot
  | O_sem_ops of slot
  | O_singleton of slot  (** [[str_of slot]] *)
  | O_append of slot * slot  (** [ops_of a @ [str_of b]] *)
  | O_lit of string list

type dom_expr =
  | D_text
  | D_datetime
  | D_enum of ops_expr
  | D_of_slot of slot  (** the slot's [S_domain] *)
  | D_range of dom_expr

type build =
  | B_none
  | B_str of str_expr
  | B_split_str of string * [ `First | `Second ] * slot
      (** apply the named splitter to the slot's token text; [S_str]
          of the requested half, [S_none] if it does not apply *)
  | B_ops of ops_expr
  | B_domain of dom_expr
  | B_cond of ops_expr option * str_expr * dom_expr
      (** a completed condition: optional operators, attribute,
          domain *)
  | B_lift of slot
      (** lift the slot's conditions to [S_conds] (CP/HQI bases) *)
  | B_concat of slot * slot
      (** concatenate two slots' [S_conds] (row/QI assembly) *)

(** Preference winning criteria — the closed arbitration algebra.
    Parameters that are grammar-specific (which symbols count as
    attribute labels, which splitters define a "dirty" label) are
    data. *)
type pref_kind =
  | K_beats  (** unconditional: winner type beats loser type *)
  | K_subsume  (** same-symbol: the longer of two subsuming covers *)
  | K_closest_unit
      (** two-child units: the tighter box/label pairing wins *)
  | K_clean_attr of string list
      (** the reading whose attribute no listed splitter still
          applies to beats the one still carrying a marker *)
  | K_assoc of string list
      (** association scoring between attributed patterns; the listed
          symbols are the attribute-label symbols *)

type production = {
  p_name : string;
  p_head : string;
  p_components : string list;
  p_guard : pred;
  p_build : build;
}

type preference = {
  r_name : string;
  r_winner : string;
  r_loser : string;
  r_kind : pref_kind;
}

type grammar = {
  g_name : string;  (** registry name; also the cache-key component *)
  g_version : string;
  g_terminals : string list;
  g_start : string;
  g_productions : production list;
  g_preferences : preference list;
}

(** {1 Environments} *)

type env = {
  text_classes : (string * (string -> bool)) list;
  options_classes : (string * (string list -> bool)) list;
  splitters : (string * (string -> (string * string) option)) list;
  combos : (string * (string list list -> bool)) list;
}

val empty_env : env

(** {1 Compilation} *)

val derived_hints : pred -> Hint.t list
(** The guard's top-level positive relation conjuncts, in guard order —
    the hints {!instantiate} attaches to the production. *)

val compile_guard :
  env -> arity:int -> pred -> (Instance.t array -> bool, string) result
(** Resolve names against [env] and slots against [arity] once,
    returning a closure that evaluates the predicate exactly as the
    equivalent hand-written guard would.  [Error] names the offending
    construct. *)

val compile_build :
  env -> arity:int -> build -> (Instance.t array -> Instance.sem, string) result

val instantiate : env -> grammar -> (Grammar.t, string list) result
(** Compile the whole declarative grammar: every production through
    {!Production.make} (with {!derived_hints}), every preference
    through {!Preference.make}, the result through {!Grammar.make} and
    {!Grammar.validate}.  Errors carry the production/preference name
    they arose in. *)

val pp_pred : Format.formatter -> pred -> unit
