module Condition = Wqi_model.Condition
module Geometry = Wqi_layout.Geometry

type sem =
  | S_none
  | S_str of string
  | S_ops of string list
  | S_domain of Condition.domain
  | S_cond of Condition.t
  | S_conds of Condition.t list

type t = {
  id : int;
  sym : Symbol.t;
  prod : string option;
  children : t list;
  cover : Bitset.t;
  box : Geometry.box;
  sem : sem;
  token : Wqi_token.Token.t option;
  mutable alive : bool;
  mutable parents : t list;
}

let of_token ~id ~universe (tok : Wqi_token.Token.t) =
  { id;
    sym = Symbol.of_token_kind tok.kind;
    prod = None;
    children = [];
    cover = Bitset.singleton universe tok.id;
    box = tok.box;
    sem = S_none;
    token = Some tok;
    alive = true;
    parents = [] }

let make ~id ~sym ~prod ~children ~sem =
  let cover =
    match children with
    | [] -> invalid_arg "Instance.make: no children"
    | [ c ] -> c.cover
    | first :: rest ->
      (* Accumulate in place over a private copy: one allocation for the
         whole union instead of one per child. *)
      List.fold_left
        (fun acc c -> Bitset.union_into ~into:acc c.cover)
        (Bitset.copy first.cover) rest
  in
  let box = Geometry.union_all (List.map (fun c -> c.box) children) in
  let inst =
    { id; sym; prod = Some prod; children; cover; box; sem; token = None;
      alive = true; parents = [] }
  in
  List.iter (fun c -> c.parents <- inst :: c.parents) children;
  inst

(* Arena fast path: the parser already tracked the cover as a raw word
   and the box as running min/max coordinates while binding components,
   so recomputing both from the children would be pure waste.  The
   caller guarantees [cover] and [box] equal the unions [make] would
   have computed — everything else (parent registration included) is
   identical to [make]. *)
let prebuilt ~id ~sym ~prod ~children ~sem ~cover ~box =
  let inst =
    { id; sym; prod = Some prod; children; cover; box; sem; token = None;
      alive = true; parents = [] }
  in
  List.iter (fun c -> c.parents <- inst :: c.parents) children;
  inst

let kill inst = inst.alive <- false

let rollback ?(on_kill = fun _ -> ()) inst =
  let killed = ref 0 in
  let rec go inst =
    if inst.alive then begin
      inst.alive <- false;
      incr killed;
      on_kill inst;
      List.iter go inst.parents
    end
  in
  go inst;
  !killed

let conflicts a b = not (Bitset.disjoint a.cover b.cover)

let is_descendant d ~of_ =
  (* Quick rejection: a descendant's cover is contained in the ancestor's. *)
  Bitset.subset d.cover of_.cover
  &&
  let rec go a =
    List.exists (fun c -> c.id = d.id || go c) a.children
  in
  go of_

let subsumes a b = Bitset.subset b.cover a.cover

let conditions inst =
  match inst.sem with
  | S_cond c -> [ c ]
  | S_conds cs -> cs
  | S_none | S_str _ | S_ops _ | S_domain _ -> []

let tokens inst = Bitset.elements inst.cover

let collect_conditions inst =
  let out = ref [] in
  let rec go inst =
    match inst.sem with
    | S_cond c -> out := (c, tokens inst) :: !out
    | S_none | S_str _ | S_ops _ | S_domain _ | S_conds _ ->
      List.iter go inst.children
  in
  go inst;
  List.rev !out

let rec size inst = 1 + List.fold_left (fun acc c -> acc + size c) 0 inst.children

let pp ppf inst =
  Fmt.pf ppf "%a@%d %a |%d|" Symbol.pp inst.sym inst.id Geometry.pp inst.box
    (Bitset.cardinal inst.cover)

let pp_tree ppf inst =
  let rec go ppf inst =
    match inst.token with
    | Some tok ->
      Fmt.pf ppf "%a %S" Symbol.pp inst.sym
        (if tok.Wqi_token.Token.sval <> "" then tok.Wqi_token.Token.sval
         else tok.Wqi_token.Token.name)
    | None ->
      Fmt.pf ppf "@[<v 2>%a%a%a@]" Symbol.pp inst.sym
        (fun ppf sem ->
           match sem with
           | S_cond c -> Fmt.pf ppf "  = %a" Condition.pp c
           | S_str s -> Fmt.pf ppf "  %S" s
           | S_ops ops ->
             Fmt.pf ppf "  ops{%a}" Fmt.(list ~sep:(any ", ") string) ops
           | S_none | S_domain _ | S_conds _ -> ())
        inst.sem
        Fmt.(list ~sep:nop (fun ppf c -> pf ppf "@,%a" go c))
        inst.children
  in
  go ppf inst
