(** Declarative spatial hints on productions.

    A hint restates one spatial conjunct of a production's guard — a
    binary relation between two component slots — in a form the parser
    can see through: instead of enumerating every instance of a slot's
    symbol and letting the opaque guard closure reject the cross
    product, the engine uses the hint to probe a spatial index and
    enumerate only the candidates that can possibly satisfy it.

    {b Hints are an optimization, never a semantic filter.}  The guard
    remains the final authority on every candidate combination; the
    engine evaluates it exactly as it would without hints, so parses
    with and without hints are byte-identical (instance ids included).
    The soundness contract the grammar author must uphold is
    one-directional: whenever the guard accepts a combination, every
    hint of the production must hold for it.  The easy way to satisfy
    the contract is to build each hint with the same relation and the
    same gap/tolerance arguments the guard itself uses — the constructor
    defaults below equal the {!Relation}/{!Wqi_layout.Geometry}
    defaults for exactly that reason.  A hint that is not implied by
    the guard can change results; a missing hint only costs speed. *)

(** A binary spatial relation, mirroring {!Relation}.  The payload is
    the max-gap bound (for directional adjacency) or the alignment
    tolerance, in pixels. *)
type rel =
  | Left_of of int
  | Above of int
  | Below of int
  | Same_row
  | Same_column
  | Left_aligned of int
  | Top_aligned of int
  | Bottom_aligned of int

type t = {
  a : int;  (** first endpoint: a component slot index *)
  b : int;  (** second endpoint: a component slot index, [<> a] *)
  rel : rel;  (** relation asserted of (instance in [a], instance in [b]) *)
}

val left_of : ?max_gap:int -> int -> int -> t
val above : ?max_gap:int -> int -> int -> t
val below : ?max_gap:int -> int -> int -> t
val same_row : int -> int -> t
val same_column : int -> int -> t
val left_aligned : ?tolerance:int -> int -> int -> t
val top_aligned : ?tolerance:int -> int -> int -> t
val bottom_aligned : ?tolerance:int -> int -> int -> t
(** [left_of ?max_gap a b] etc.: hint over slots [a] and [b].  Defaults
    equal the corresponding {!Relation} defaults. *)

val holds_rel : rel -> Wqi_layout.Geometry.box -> Wqi_layout.Geometry.box -> bool
(** [holds_rel rel ba bb]: does the relation hold between the boxes?
    Delegates to the exact {!Wqi_layout.Geometry} predicate the guard
    would call, with the hint's stored gap/tolerance. *)

(** A conservative search region for one relation endpoint given the
    box bound to the other endpoint.  [y]/[x] are closed intervals the
    candidate's y-span/x-span must {e intersect}; [None] leaves the
    axis unconstrained. *)
type region = { y : (int * int) option; x : (int * int) option }

val unconstrained : region

val region : rel -> anchor:Wqi_layout.Geometry.box -> anchor_is_first:bool -> region
(** [region rel ~anchor ~anchor_is_first] over-approximates where the
    free endpoint can be: if the relation holds (anchor in the hint's
    [a] slot when [anchor_is_first], in [b] otherwise), the candidate's
    spans intersect the returned intervals.  The converse is not
    guaranteed — callers must re-check {!holds_rel} (and the guard). *)

val pp_rel : Format.formatter -> rel -> unit

val pp : Format.formatter -> t -> unit
