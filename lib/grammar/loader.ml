module A = Algebra

type error = { file : string; pos : Sexp.pos; message : string }

let error_to_string e =
  Printf.sprintf "%s:%d:%d: %s" e.file e.pos.Sexp.line e.pos.Sexp.col
    e.message

exception E of Sexp.pos * string

let fail pos fmt = Format.kasprintf (fun m -> raise (E (pos, m))) fmt

(* ------------------------------------------------------------------ *)
(* Sexp accessors                                                      *)
(* ------------------------------------------------------------------ *)

let as_atom = function
  | Sexp.Atom (p, s) -> (p, s)
  | Sexp.List (p, _) -> fail p "expected an atom, got a list"

let as_int sexp =
  let p, s = as_atom sexp in
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail p "expected an integer, got %S" s

let nargs pos kw want args =
  if List.length args <> want then
    fail pos "%s expects %d argument%s, got %d" kw want
      (if want = 1 then "" else "s")
      (List.length args)

(* Find the [(name ...)] clause among a form's items. *)
let clause name items =
  let hits =
    List.filter_map
      (fun s ->
         match s with
         | Sexp.List (p, Sexp.Atom (_, kw) :: args) when kw = name ->
           Some (p, args)
         | _ -> None)
      items
  in
  match hits with
  | [] -> None
  | [ hit ] -> Some hit
  | _ :: (p, _) :: _ -> fail p "duplicate (%s ...) clause" name

let required_clause pos name items =
  match clause name items with
  | Some hit -> hit
  | None -> fail pos "missing (%s ...) clause" name

(* ------------------------------------------------------------------ *)
(* Name and slot resolution                                            *)
(* ------------------------------------------------------------------ *)

let check_name kind table sexp =
  let p, s = as_atom sexp in
  if List.mem_assoc s table then s else fail p "unknown %s %S" kind s

let parse_slot ~arity sexp =
  let n = as_int sexp in
  if n < 0 || n >= arity then
    fail (Sexp.pos sexp) "slot %d out of range (production has %d component%s)"
      n arity
      (if arity = 1 then "" else "s")
  else n

let parse_slot_pair ~arity pos kw a b =
  let a = parse_slot ~arity a and b = parse_slot ~arity b in
  if a = b then fail pos "%s relates slot %d to itself" kw a;
  (a, b)

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let parse_text_src sexp =
  match as_atom sexp with
  | _, "token" -> A.Token_text
  | _, "sem" -> A.Sem_str
  | p, s -> fail p "expected 'token' or 'sem', got %S" s

let rec parse_pred (env : A.env) ~arity sexp =
  match sexp with
  | Sexp.Atom (_, "true") -> A.P_true
  | Sexp.Atom (p, s) -> fail p "malformed predicate: unexpected atom %S" s
  | Sexp.List (p, Sexp.Atom (_, kw) :: args) ->
    let rel mk =
      match args with
      | [ g; a; b ] ->
        let gap = as_int g in
        let a, b = parse_slot_pair ~arity p kw a b in
        A.P_rel (mk gap, a, b)
      | _ -> fail p "%s expects a gap and two slots" kw
    in
    let aligned mk =
      match args with
      | [ t; a; b ] ->
        let tol = as_int t in
        let a, b = parse_slot_pair ~arity p kw a b in
        A.P_rel (mk tol, a, b)
      | _ -> fail p "%s expects a tolerance and two slots" kw
    in
    (match kw with
     | "and" -> A.P_and (List.map (parse_pred env ~arity) args)
     | "not" ->
       nargs p kw 1 args;
       A.P_not (parse_pred env ~arity (List.hd args))
     | "left-of" -> rel (fun g -> Hint.Left_of g)
     | "above" -> rel (fun g -> Hint.Above g)
     | "below" -> rel (fun g -> Hint.Below g)
     | "same-row" | "same-column" ->
       (match args with
        | [ a; b ] ->
          let a, b = parse_slot_pair ~arity p kw a b in
          A.P_rel
            ((if kw = "same-row" then Hint.Same_row else Hint.Same_column),
             a, b)
        | _ -> fail p "%s expects two slots" kw)
     | "left-aligned" -> aligned (fun t -> Hint.Left_aligned t)
     | "top-aligned" -> aligned (fun t -> Hint.Top_aligned t)
     | "bottom-aligned" -> aligned (fun t -> Hint.Bottom_aligned t)
     | "text-class" ->
       nargs p kw 3 args;
       (match args with
        | [ name; src; s ] ->
          A.P_text_is
            ( check_name "text class" env.A.text_classes name,
              parse_text_src src,
              parse_slot ~arity s )
        | _ -> assert false)
     | "splits" ->
       nargs p kw 2 args;
       (match args with
        | [ name; s ] ->
          A.P_split_applies
            ( check_name "splitter" env.A.splitters name,
              parse_slot ~arity s )
        | _ -> assert false)
     | "ops-exist" | "ops-all" ->
       nargs p kw 2 args;
       (match args with
        | [ name; s ] ->
          let name = check_name "text class" env.A.text_classes name in
          let s = parse_slot ~arity s in
          if kw = "ops-exist" then A.P_ops_exists (name, s)
          else A.P_ops_forall (name, s)
        | _ -> assert false)
     | "ops-count>=" ->
       nargs p kw 2 args;
       (match args with
        | [ n; s ] -> A.P_ops_count_ge (as_int n, parse_slot ~arity s)
        | _ -> assert false)
     | "options-class" ->
       nargs p kw 2 args;
       (match args with
        | [ name; s ] ->
          A.P_options_class
            ( check_name "options class" env.A.options_classes name,
              parse_slot ~arity s )
        | _ -> assert false)
     | "combo" ->
       (match args with
        | name :: (_ :: _ as slots) ->
          A.P_combo
            ( check_name "combo" env.A.combos name,
              List.map (parse_slot ~arity) slots )
        | _ -> fail p "combo expects a name and at least one slot")
     | _ -> fail p "unknown predicate %S" kw)
  | Sexp.List (p, _) -> fail p "malformed predicate: expected (keyword ...)"

(* ------------------------------------------------------------------ *)
(* Builds                                                              *)
(* ------------------------------------------------------------------ *)

let parse_str ~arity sexp =
  match sexp with
  | Sexp.List (p, Sexp.Atom (_, kw) :: args) ->
    (match kw with
     | "lit" ->
       nargs p kw 1 args;
       A.S_lit (snd (as_atom (List.hd args)))
     | "token" ->
       nargs p kw 1 args;
       A.S_token_text (parse_slot ~arity (List.hd args))
     | "sem" ->
       nargs p kw 1 args;
       A.S_sem_str (parse_slot ~arity (List.hd args))
     | _ -> fail p "unknown string expression %S" kw)
  | s -> fail (Sexp.pos s) "expected (lit ...), (token N) or (sem N)"

let parse_ops ~arity sexp =
  match sexp with
  | Sexp.List (p, Sexp.Atom (_, kw) :: args) ->
    (match kw with
     | "options" ->
       nargs p kw 1 args;
       A.O_token_options (parse_slot ~arity (List.hd args))
     | "of" ->
       nargs p kw 1 args;
       A.O_sem_ops (parse_slot ~arity (List.hd args))
     | "singleton" ->
       nargs p kw 1 args;
       A.O_singleton (parse_slot ~arity (List.hd args))
     | "append" ->
       nargs p kw 2 args;
       (match args with
        | [ a; b ] -> A.O_append (parse_slot ~arity a, parse_slot ~arity b)
        | _ -> assert false)
     | "lit" -> A.O_lit (List.map (fun s -> snd (as_atom s)) args)
     | _ -> fail p "unknown operator expression %S" kw)
  | s ->
    fail (Sexp.pos s)
      "expected (options N), (of N), (singleton N), (append A B) or (lit ...)"

let rec parse_dom ~arity sexp =
  match sexp with
  | Sexp.Atom (_, "text") -> A.D_text
  | Sexp.Atom (_, "datetime") -> A.D_datetime
  | Sexp.Atom (p, s) -> fail p "unknown domain %S" s
  | Sexp.List (p, Sexp.Atom (_, kw) :: args) ->
    (match kw with
     | "enum" ->
       nargs p kw 1 args;
       A.D_enum (parse_ops ~arity (List.hd args))
     | "of" ->
       nargs p kw 1 args;
       A.D_of_slot (parse_slot ~arity (List.hd args))
     | "range" ->
       nargs p kw 1 args;
       A.D_range (parse_dom ~arity (List.hd args))
     | _ -> fail p "unknown domain %S" kw)
  | Sexp.List (p, _) -> fail p "malformed domain"

let parse_build (env : A.env) ~arity sexp =
  match sexp with
  | Sexp.Atom (_, "none") -> A.B_none
  | Sexp.List (p, Sexp.Atom (_, kw) :: args) ->
    (match kw with
     | "str" ->
       nargs p kw 1 args;
       A.B_str (parse_str ~arity (List.hd args))
     | "split-str" ->
       nargs p kw 3 args;
       (match args with
        | [ name; part; s ] ->
          let name = check_name "splitter" env.A.splitters name in
          let part =
            match as_atom part with
            | _, "first" -> `First
            | _, "second" -> `Second
            | pp, x -> fail pp "expected 'first' or 'second', got %S" x
          in
          A.B_split_str (name, part, parse_slot ~arity s)
        | _ -> assert false)
     | "ops" ->
       nargs p kw 1 args;
       A.B_ops (parse_ops ~arity (List.hd args))
     | "domain" ->
       nargs p kw 1 args;
       A.B_domain (parse_dom ~arity (List.hd args))
     | "cond" ->
       let operators =
         match clause "operators" args with
         | None -> None
         | Some (op, cargs) ->
           nargs op "operators" 1 cargs;
           Some (parse_ops ~arity (List.hd cargs))
       in
       let ap, aargs = required_clause p "attribute" args in
       nargs ap "attribute" 1 aargs;
       let dp, dargs = required_clause p "domain" args in
       nargs dp "domain" 1 dargs;
       A.B_cond
         ( operators,
           parse_str ~arity (List.hd aargs),
           parse_dom ~arity (List.hd dargs) )
     | "lift" ->
       nargs p kw 1 args;
       A.B_lift (parse_slot ~arity (List.hd args))
     | "concat" ->
       nargs p kw 2 args;
       (match args with
        | [ a; b ] -> A.B_concat (parse_slot ~arity a, parse_slot ~arity b)
        | _ -> assert false)
     | _ -> fail p "unknown build %S" kw)
  | s -> fail (Sexp.pos s) "malformed build"

(* ------------------------------------------------------------------ *)
(* Productions and preferences                                         *)
(* ------------------------------------------------------------------ *)

type symtab = { terminals : string list; heads : string list }

let check_symbol tab sexp =
  let p, s = as_atom sexp in
  if List.mem s tab.terminals || List.mem s tab.heads then s
  else fail p "unknown symbol %S" s

let parse_production env tab form =
  match form with
  | Sexp.List (p, Sexp.Atom (_, "production") :: name :: items) ->
    let _, p_name = as_atom name in
    let hp, hargs = required_clause p "head" items in
    nargs hp "head" 1 hargs;
    let hpos, p_head = as_atom (List.hd hargs) in
    if List.mem p_head tab.terminals then
      fail hpos "head %S is a terminal" p_head;
    let cp, cargs = required_clause p "components" items in
    if cargs = [] then fail cp "production needs at least one component";
    let p_components = List.map (check_symbol tab) cargs in
    let arity = List.length p_components in
    let p_guard =
      match clause "guard" items with
      | None -> A.P_true
      | Some (gp, gargs) ->
        nargs gp "guard" 1 gargs;
        parse_pred env ~arity (List.hd gargs)
    in
    let p_build =
      match clause "build" items with
      | None -> A.B_none
      | Some (bp, bargs) ->
        nargs bp "build" 1 bargs;
        parse_build env ~arity (List.hd bargs)
    in
    { A.p_name; p_head; p_components; p_guard; p_build }
  | Sexp.List (p, _) -> fail p "malformed (production NAME ...) form"
  | Sexp.Atom (p, _) -> fail p "expected a (production ...) form"

let pref_kinds = [ "beats"; "subsume"; "closest-unit"; "clean-attr"; "assoc" ]

let parse_preference (env : A.env) tab form =
  match form with
  | Sexp.List (p, Sexp.Atom (_, "preference") :: name :: items) ->
    let _, r_name = as_atom name in
    let wp, wargs = required_clause p "winner" items in
    nargs wp "winner" 1 wargs;
    let r_winner = check_symbol tab (List.hd wargs) in
    let lp, largs = required_clause p "loser" items in
    nargs lp "loser" 1 largs;
    let r_loser = check_symbol tab (List.hd largs) in
    let kinds =
      List.filter_map
        (fun s ->
           match s with
           | Sexp.List (kp, Sexp.Atom (_, kw) :: args)
             when List.mem kw pref_kinds ->
             Some (kp, kw, args)
           | _ -> None)
        items
    in
    let r_kind =
      match kinds with
      | [] ->
        fail p "missing winning-criterion form (one of %s)"
          (String.concat ", " pref_kinds)
      | _ :: (kp, _, _) :: _ -> fail kp "more than one winning-criterion form"
      | [ (kp, kw, args) ] ->
        (match kw with
         | "beats" ->
           nargs kp kw 0 args;
           A.K_beats
         | "subsume" ->
           nargs kp kw 0 args;
           A.K_subsume
         | "closest-unit" ->
           nargs kp kw 0 args;
           A.K_closest_unit
         | "clean-attr" ->
           if args = [] then fail kp "clean-attr needs at least one splitter";
           A.K_clean_attr
             (List.map (check_name "splitter" env.A.splitters) args)
         | "assoc" ->
           if args = [] then fail kp "assoc needs at least one symbol";
           A.K_assoc (List.map (check_symbol tab) args)
         | _ -> assert false)
    in
    { A.r_name; r_winner; r_loser; r_kind }
  | Sexp.List (p, _) -> fail p "malformed (preference NAME ...) form"
  | Sexp.Atom (p, _) -> fail p "expected a (preference ...) form"

(* ------------------------------------------------------------------ *)
(* Header and whole-file parsing                                       *)
(* ------------------------------------------------------------------ *)

let parse_header form =
  match form with
  | Sexp.List (p, Sexp.Atom (_, "wqi-grammar") :: items) ->
    let fp, fargs = required_clause p "format" items in
    nargs fp "format" 1 fargs;
    let fmt = as_int (List.hd fargs) in
    if fmt <> 1 then
      fail (Sexp.pos (List.hd fargs)) "unsupported grammar format %d" fmt;
    let np, nargs_ = required_clause p "name" items in
    nargs np "name" 1 nargs_;
    let name = snd (as_atom (List.hd nargs_)) in
    let vp, vargs = required_clause p "version" items in
    nargs vp "version" 1 vargs;
    let version = snd (as_atom (List.hd vargs)) in
    let tp, targs = required_clause p "terminals" items in
    if targs = [] then fail tp "at least one terminal is required";
    let terminals = List.map (fun s -> snd (as_atom s)) targs in
    let sp, sargs = required_clause p "start" items in
    nargs sp "start" 1 sargs;
    let start_pos, start = as_atom (List.hd sargs) in
    (name, version, terminals, (start_pos, start))
  | f -> fail (Sexp.pos f) "expected a (wqi-grammar ...) header form"

(* First pass: collect the symbol table (declared terminals plus every
   production head) so forward references check cleanly in one further
   pass. *)
let collect_heads forms =
  List.filter_map
    (fun form ->
       match form with
       | Sexp.List (_, Sexp.Atom (_, "production") :: _ :: items) ->
         (match clause "head" items with
          | Some (_, [ Sexp.Atom (_, h) ]) -> Some h
          | _ -> None
          | exception E _ -> None)
       | _ -> None)
    forms

(* Cycle check over the d-edge graph (head -> distinct nonterminal
   component), attributed to the production that introduces the closing
   edge.  Self-recursion is the fix-point engine's normal diet and is
   allowed, matching Grammar.validate. *)
let check_acyclic heads prods_with_pos =
  let edges =
    List.concat_map
      (fun ((p : A.production), pos) ->
         List.filter_map
           (fun c ->
              if c <> p.A.p_head && List.mem c heads then
                Some (p.A.p_head, c, pos, p.A.p_name)
              else None)
           p.A.p_components)
      prods_with_pos
  in
  let color = Hashtbl.create 16 in
  let rec dfs stack sym =
    Hashtbl.replace color sym `Grey;
    List.iter
      (fun (src, dst, pos, pname) ->
         if src = sym then
           match Hashtbl.find_opt color dst with
           | Some `Grey ->
             let chain = List.rev (sym :: stack) in
             let rec from_dst = function
               | [] -> []
               | x :: rest -> if x = dst then x :: rest else from_dst rest
             in
             fail pos "production %s: cyclic productions: %s" pname
               (String.concat " -> " (from_dst chain @ [ dst ]))
           | Some `Black -> ()
           | None -> dfs (sym :: stack) dst)
      edges;
    Hashtbl.replace color sym `Black
  in
  List.iter
    (fun h -> if not (Hashtbl.mem color h) then dfs [] h)
    heads

let parse ~env ?(file = "<string>") text =
  try
    let forms = Sexp.parse_string text in
    match forms with
    | [] -> Error { file; pos = { Sexp.line = 1; col = 1 };
                    message = "empty grammar file" }
    | header :: rest ->
      let g_name, g_version, g_terminals, (start_pos, g_start) =
        parse_header header
      in
      let heads = collect_heads rest in
      let tab = { terminals = g_terminals; heads } in
      let seen = Hashtbl.create 64 in
      let productions = ref [] and preferences = ref [] in
      List.iter
        (fun form ->
           match form with
           | Sexp.List (_, Sexp.Atom (np, "production") :: _) ->
             let p = parse_production env tab form in
             if Hashtbl.mem seen p.A.p_name then
               fail np "duplicate production name %S" p.A.p_name;
             Hashtbl.add seen p.A.p_name ();
             productions := (p, np) :: !productions
           | Sexp.List (_, Sexp.Atom (_, "preference") :: _) ->
             preferences := parse_preference env tab form :: !preferences
           | f ->
             fail (Sexp.pos f)
               "expected a (production ...) or (preference ...) form")
        rest;
      let productions = List.rev !productions in
      if not (List.mem g_start heads) then
        fail start_pos "start symbol %S is not the head of any production"
          g_start;
      check_acyclic heads productions;
      Ok
        { A.g_name; g_version; g_terminals; g_start;
          g_productions = List.map fst productions;
          g_preferences = List.rev !preferences }
  with
  | E (pos, message) -> Error { file; pos; message }
  | Sexp.Parse_error (pos, message) -> Error { file; pos; message }

let load ~env path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse ~env ~file:path text
  | exception Sys_error m ->
    Error { file = path; pos = { Sexp.line = 0; col = 0 }; message = m }

(* ------------------------------------------------------------------ *)
(* Canonical printing                                                  *)
(* ------------------------------------------------------------------ *)

let atom = Sexp.atom
let slist = Sexp.list
let int n = atom (string_of_int n)

let rel_form rel a b =
  let f kw x = slist [ atom kw; int x; int a; int b ] in
  match rel with
  | Hint.Left_of g -> f "left-of" g
  | Hint.Above g -> f "above" g
  | Hint.Below g -> f "below" g
  | Hint.Same_row -> slist [ atom "same-row"; int a; int b ]
  | Hint.Same_column -> slist [ atom "same-column"; int a; int b ]
  | Hint.Left_aligned t -> f "left-aligned" t
  | Hint.Top_aligned t -> f "top-aligned" t
  | Hint.Bottom_aligned t -> f "bottom-aligned" t

let rec pred_form = function
  | A.P_true -> atom "true"
  | A.P_and ps -> slist (atom "and" :: List.map pred_form ps)
  | A.P_not p -> slist [ atom "not"; pred_form p ]
  | A.P_rel (rel, a, b) -> rel_form rel a b
  | A.P_text_is (n, src, s) ->
    slist
      [ atom "text-class"; atom n;
        atom (match src with A.Token_text -> "token" | A.Sem_str -> "sem");
        int s ]
  | A.P_split_applies (n, s) -> slist [ atom "splits"; atom n; int s ]
  | A.P_ops_exists (n, s) -> slist [ atom "ops-exist"; atom n; int s ]
  | A.P_ops_forall (n, s) -> slist [ atom "ops-all"; atom n; int s ]
  | A.P_ops_count_ge (n, s) -> slist [ atom "ops-count>="; int n; int s ]
  | A.P_options_class (n, s) -> slist [ atom "options-class"; atom n; int s ]
  | A.P_combo (n, slots) ->
    slist (atom "combo" :: atom n :: List.map int slots)

let str_form = function
  | A.S_lit s -> slist [ atom "lit"; atom s ]
  | A.S_token_text s -> slist [ atom "token"; int s ]
  | A.S_sem_str s -> slist [ atom "sem"; int s ]

let ops_form = function
  | A.O_token_options s -> slist [ atom "options"; int s ]
  | A.O_sem_ops s -> slist [ atom "of"; int s ]
  | A.O_singleton s -> slist [ atom "singleton"; int s ]
  | A.O_append (a, b) -> slist [ atom "append"; int a; int b ]
  | A.O_lit l -> slist (atom "lit" :: List.map atom l)

let rec dom_form = function
  | A.D_text -> atom "text"
  | A.D_datetime -> atom "datetime"
  | A.D_enum e -> slist [ atom "enum"; ops_form e ]
  | A.D_of_slot s -> slist [ atom "of"; int s ]
  | A.D_range d -> slist [ atom "range"; dom_form d ]

let build_form = function
  | A.B_none -> atom "none"
  | A.B_str e -> slist [ atom "str"; str_form e ]
  | A.B_split_str (n, part, s) ->
    slist
      [ atom "split-str"; atom n;
        atom (match part with `First -> "first" | `Second -> "second");
        int s ]
  | A.B_ops e -> slist [ atom "ops"; ops_form e ]
  | A.B_domain d -> slist [ atom "domain"; dom_form d ]
  | A.B_cond (ops, attr, dom) ->
    slist
      (atom "cond"
       :: (match ops with
           | None -> []
           | Some e -> [ slist [ atom "operators"; ops_form e ] ])
       @ [ slist [ atom "attribute"; str_form attr ];
           slist [ atom "domain"; dom_form dom ] ])
  | A.B_lift s -> slist [ atom "lift"; int s ]
  | A.B_concat (a, b) -> slist [ atom "concat"; int a; int b ]

let kind_form = function
  | A.K_beats -> slist [ atom "beats" ]
  | A.K_subsume -> slist [ atom "subsume" ]
  | A.K_closest_unit -> slist [ atom "closest-unit" ]
  | A.K_clean_attr names ->
    slist (atom "clean-attr" :: List.map atom names)
  | A.K_assoc names -> slist (atom "assoc" :: List.map atom names)

let production_form (p : A.production) =
  slist
    (atom "production" :: atom p.p_name
     :: slist [ atom "head"; atom p.p_head ]
     :: slist (atom "components" :: List.map atom p.p_components)
     :: ((match p.p_guard with
          | A.P_true -> []
          | g -> [ slist [ atom "guard"; pred_form g ] ])
         @
         match p.p_build with
         | A.B_none -> []
         | b -> [ slist [ atom "build"; build_form b ] ]))

let preference_form (r : A.preference) =
  slist
    [ atom "preference"; atom r.r_name;
      slist [ atom "winner"; atom r.r_winner ];
      slist [ atom "loser"; atom r.r_loser ];
      kind_form r.r_kind ]

let header_form (g : A.grammar) =
  slist
    [ atom "wqi-grammar";
      slist [ atom "format"; int 1 ];
      slist [ atom "name"; atom g.g_name ];
      slist [ atom "version"; atom g.g_version ];
      slist (atom "terminals" :: List.map atom g.g_terminals);
      slist [ atom "start"; atom g.g_start ] ]

let dump (g : A.grammar) =
  let buf = Buffer.create 8192 in
  let form f =
    Sexp.to_buf buf f;
    Buffer.add_char buf '\n'
  in
  form (header_form g);
  List.iter (fun p -> form (production_form p)) g.g_productions;
  List.iter (fun r -> form (preference_form r)) g.g_preferences;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Convenience                                                         *)
(* ------------------------------------------------------------------ *)

let load_grammar ~env path =
  match load ~env path with
  | Error e -> Error (error_to_string e)
  | Ok decl ->
    (match Algebra.instantiate env decl with
     | Ok g -> Ok (decl, g)
     | Error msgs ->
       Error
         (Printf.sprintf "%s: %s" path (String.concat "; " msgs)))
