type pos = { line : int; col : int }

type t =
  | Atom of pos * string
  | List of pos * t list

let no_pos = { line = 0; col = 0 }

let pos = function Atom (p, _) | List (p, _) -> p

exception Parse_error of pos * string

let error p fmt = Format.kasprintf (fun m -> raise (Parse_error (p, m))) fmt

let is_bare_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '_' | '+' | '*' | '/' | '.' | ':' | '@' | '%' | '<' | '>' | '=' | '!'
  | '?' | '-' ->
    true
  | _ -> false

(* A hand-rolled reader: the project deliberately has no sexp library
   dependency, and grammar files are small enough that a simple
   character scanner with explicit line/column tracking is the whole
   story. *)
type cursor = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek c = if c.off >= String.length c.src then None else Some c.src.[c.off]

let advance c =
  (match peek c with
   | Some '\n' ->
     c.line <- c.line + 1;
     c.col <- 1
   | Some _ -> c.col <- c.col + 1
   | None -> ());
  c.off <- c.off + 1

let here c = { line = c.line; col = c.col }

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance c;
    skip_ws c
  | Some ';' ->
    let rec to_eol () =
      match peek c with
      | Some '\n' | None -> ()
      | Some _ ->
        advance c;
        to_eol ()
    in
    to_eol ();
    skip_ws c
  | _ -> ()

let read_string c =
  let start = here c in
  advance c (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error start "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '\\' -> Buffer.add_char buf '\\'
       | Some '"' -> Buffer.add_char buf '"'
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some ch -> error (here c) "unknown escape '\\%c'" ch
       | None -> error start "unterminated string");
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Atom (start, Buffer.contents buf)

let read_bare c =
  let start = here c in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | Some ch when is_bare_char ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  Atom (start, Buffer.contents buf)

let rec read_form c =
  skip_ws c;
  match peek c with
  | None -> None
  | Some '(' ->
    let start = here c in
    advance c;
    let items = ref [] in
    let rec go () =
      skip_ws c;
      match peek c with
      | None -> error start "unclosed '('"
      | Some ')' -> advance c
      | Some _ ->
        (match read_form c with
         | Some f ->
           items := f :: !items;
           go ()
         | None -> error start "unclosed '('")
    in
    go ();
    Some (List (start, List.rev !items))
  | Some ')' -> error (here c) "unexpected ')'"
  | Some '"' -> Some (read_string c)
  | Some ch when is_bare_char ch -> Some (read_bare c)
  | Some ch -> error (here c) "unexpected character %C" ch

let parse_string src =
  let c = { src; off = 0; line = 1; col = 1 } in
  let rec go acc =
    match read_form c with
    | Some f -> go (f :: acc)
    | None -> List.rev acc
  in
  go []

let atom s = Atom (no_pos, s)
let list items = List (no_pos, items)

let is_bare s = s <> "" && String.for_all is_bare_char s

let add_quoted buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | _ -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let rec to_buf buf = function
  | Atom (_, s) -> if is_bare s then Buffer.add_string buf s else add_quoted buf s
  | List (_, items) ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i f ->
         if i > 0 then Buffer.add_char buf ' ';
         to_buf buf f)
      items;
    Buffer.add_char buf ')'

let to_string f =
  let buf = Buffer.create 64 in
  to_buf buf f;
  Buffer.contents buf
