(** Fixed-universe bitsets over token ids.

    Instance coverage, conflict detection and subsumption checks are the
    innermost operations of the parser.  Universes of at most
    [Sys.int_size] tokens (every interface in the paper's corpus) are a
    single unboxed word; larger universes fall back to [int array]
    words.  The interface is immutable-by-default; the only mutation is
    the accumulator-owned {!union_into}. *)

type t

val universe_size : t -> int

val bits_per_word : int
(** Universes up to this size are a single unboxed word
    ([Sys.int_size]); the parser's arena keeps their covers as raw ints
    and materializes a set only when an instance is built. *)

val empty : int -> t
(** [empty n] is the empty set over universe [{0, ..., n-1}]. *)

val of_word : int -> int -> t
(** [of_word n bits] is the set over universe [n] whose members are the
    set bits of [bits].  Requires [n <= bits_per_word]; the result is
    structurally identical to building the same set by {!add}/{!union},
    so downstream {!equal}/{!hash}/{!subset} behave as if it had been. *)

val to_word : t -> int
(** Inverse of {!of_word}: the raw member word of a single-word set.
    Raises [Invalid_argument] on universes past {!bits_per_word}. *)

val singleton : int -> int -> t
(** [singleton n i] is [{i}] over a universe of size [n]. *)

val add : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val cardinal : t -> int
val is_empty : t -> bool

val disjoint : t -> t -> bool
(** [disjoint a b] — no common element; the parser's conflict test. *)

val subset : t -> t -> bool
(** [subset a b] — every element of [a] is in [b]. *)

val strict_subset : t -> t -> bool

val equal : t -> t -> bool
val elements : t -> int list
val of_list : int -> int list -> t
val union_all : int -> t list -> t

val copy : t -> t
(** A set observably equal to the input that is safe to pass as the
    initial accumulator of {!union_into} (single-word sets are immutable
    and shared; multi-word sets get fresh words). *)

val union_into : into:t -> t -> t
(** [union_into ~into x] is {!union}[ into x], but mutates and returns
    [into] in place when the representation permits.  [into] must be an
    accumulator owned exclusively by the caller — start a fold from
    {!copy} or {!empty}, never from a set someone else can observe. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
