module Geometry = Wqi_layout.Geometry

(* Entries are packed five-wide into a flat int array per band —
   [idx, x1, y1, x2, y2] — so registering an instance allocates nothing
   once a band's array has grown, and a probe walks consecutive words
   instead of chasing entry records. *)
let stride = 5

type band = { mutable arr : int array; mutable len : int }
(* [len] counts entries, not words: the payload occupies
   [arr.(0 .. stride*len - 1)]. *)

let band_make () = { arr = [||]; len = 0 }

let band_push b idx x1 y1 x2 y2 =
  let base = stride * b.len in
  if base = Array.length b.arr then begin
    let arr = Array.make (max (8 * stride) (2 * base)) 0 in
    Array.blit b.arr 0 arr 0 base;
    b.arr <- arr
  end;
  let arr = b.arr in
  Array.unsafe_set arr base idx;
  Array.unsafe_set arr (base + 1) x1;
  Array.unsafe_set arr (base + 2) y1;
  Array.unsafe_set arr (base + 3) x2;
  Array.unsafe_set arr (base + 4) y2;
  b.len <- b.len + 1

(* 32-pixel horizontal bands: about one visual form row per band.  A
   box is registered in every band its y-span touches; boxes spanning
   more than [max_span_bands] bands (assembled rows, whole-interface
   instances) go to a single overflow list every probe scans exactly
   once, which bounds the per-insert cost. *)
let band_bits = 5

let band_of y = y asr band_bits

let max_span_bands = 8

type t = {
  mutable bands : band array;  (* dense, indexed by clamped band number *)
  mutable nbands : int;        (* bands allocated so far (array prefix) *)
  tall : band;
  alive : int -> bool;
  mutable added : int;  (* instances registered since the last sweep *)
  mutable dead : int;   (* kill notifications since the last sweep *)
}

let create ~alive =
  { bands = [||]; nbands = 0; tall = band_make (); alive; added = 0;
    dead = 0 }

(* Emptying for reuse keeps the band arrays (entries are plain ints, so
   a stale tail pins nothing) — a pooled per-symbol index costs zero
   allocation per parse in the steady state. *)
let reset t =
  for bk = 0 to t.nbands - 1 do
    t.bands.(bk).len <- 0
  done;
  t.tall.len <- 0;
  t.added <- 0;
  t.dead <- 0

(* Page coordinates are non-negative in practice; a stray negative y
   (and probe regions extending above the page) clamps into band 0. *)
let clamp_band bk = if bk < 0 then 0 else bk

let band_at t bk =
  if bk >= t.nbands then begin
    let cap = Array.length t.bands in
    if bk >= cap then begin
      let bands = Array.init (max 16 (2 * (bk + 1))) (fun _ -> band_make ()) in
      Array.blit t.bands 0 bands 0 t.nbands;
      (* Array.init ran band_make for the copied prefix too; those heads
         are garbage, the blit replaced them. *)
      t.bands <- bands
    end;
    t.nbands <- bk + 1
  end;
  Array.unsafe_get t.bands bk

let add_coords t ~idx x1 y1 x2 y2 =
  let lo = clamp_band (band_of y1) and hi = clamp_band (band_of y2) in
  if hi - lo + 1 > max_span_bands then band_push t.tall idx x1 y1 x2 y2
  else
    for bk = lo to hi do
      band_push (band_at t bk) idx x1 y1 x2 y2
    done;
  t.added <- t.added + 1

let add t ~idx (box : Geometry.box) =
  add_coords t ~idx box.x1 box.y1 box.x2 box.y2

let sweep_band t (b : band) =
  let w = ref 0 in
  for i = 0 to b.len - 1 do
    let base = stride * i in
    if t.alive (Array.unsafe_get b.arr base) then begin
      Array.blit b.arr base b.arr (stride * !w) stride;
      incr w
    end
  done;
  b.len <- !w

(* Rollback-safe incremental maintenance: kills only ever mark
   instances dead (they are never revived), so the index can tombstone
   lazily — probes re-check liveness through [alive] anyway — and
   compact whole bands once at least half of the registered instances
   have died. *)
let note_killed t =
  t.dead <- t.dead + 1;
  if t.added > 64 && 2 * t.dead > t.added then begin
    for bk = 0 to t.nbands - 1 do
      sweep_band t t.bands.(bk)
    done;
    sweep_band t t.tall;
    t.added <- t.added - t.dead;
    t.dead <- 0
  end

(* Candidates from a single source band are already in creation order;
   multiple bands (or the overflow list) interleave, and an entry can
   appear in several probed bands.  Restore strict ascending order and
   drop duplicates — enumeration order is what keeps hinted parses
   byte-identical to unhinted ones. *)
let query_into t ~y_lo ~y_hi ~x_lo ~x_hi ~start ~stop buf =
  let out = ref !buf in
  let n = ref 0 in
  let push idx =
    let cap = Array.length !out in
    if !n = cap then begin
      let arr = Array.make (max 64 (2 * cap)) 0 in
      Array.blit !out 0 arr 0 !n;
      out := arr;
      buf := arr
    end;
    Array.unsafe_set !out !n idx;
    incr n
  in
  let scan_band (b : band) =
    let arr = b.arr in
    for i = 0 to b.len - 1 do
      let base = stride * i in
      let idx = Array.unsafe_get arr base in
      if
        idx >= start && idx < stop
        && Array.unsafe_get arr (base + 4) >= y_lo
        && Array.unsafe_get arr (base + 2) <= y_hi
        && Array.unsafe_get arr (base + 3) >= x_lo
        && Array.unsafe_get arr (base + 1) <= x_hi
      then push idx
    done
  in
  let bk_hi = min (clamp_band (band_of y_hi)) (t.nbands - 1) in
  for bk = clamp_band (band_of y_lo) to bk_hi do
    scan_band (Array.unsafe_get t.bands bk)
  done;
  scan_band t.tall;
  let out = !out in
  let sorted =
    let rec ascending i =
      i >= !n - 1 || (out.(i) < out.(i + 1) && ascending (i + 1))
    in
    ascending 0
  in
  if sorted then !n
  else begin
    let sub = Array.sub out 0 !n in
    Array.sort (fun (a : int) b -> compare a b) sub;
    let w = ref 0 in
    Array.iter
      (fun idx ->
         if !w = 0 || out.(!w - 1) <> idx then begin
           out.(!w) <- idx;
           incr w
         end)
      sub;
    !w
  end

let query t ~y_lo ~y_hi ~x ~start ~stop =
  let x_lo, x_hi = match x with Some r -> r | None -> (min_int, max_int) in
  let buf = ref [||] in
  let n = query_into t ~y_lo ~y_hi ~x_lo ~x_hi ~start ~stop buf in
  Array.sub !buf 0 n
