module Geometry = Wqi_layout.Geometry

(* Entries carry the creation index into the per-symbol instance store
   plus the instance's bounding box, so a probe can pre-filter without
   touching the store at all. *)
type entry = { idx : int; x1 : int; y1 : int; x2 : int; y2 : int }

let dummy_entry = { idx = -1; x1 = 0; y1 = 0; x2 = 0; y2 = 0 }

type band = { mutable arr : entry array; mutable len : int }

let band_make () = { arr = [||]; len = 0 }

let band_push b e =
  let cap = Array.length b.arr in
  if b.len = cap then begin
    let arr = Array.make (max 8 (2 * cap)) dummy_entry in
    Array.blit b.arr 0 arr 0 b.len;
    b.arr <- arr
  end;
  Array.unsafe_set b.arr b.len e;
  b.len <- b.len + 1

(* 32-pixel horizontal bands: about one visual form row per band.  A
   box is registered in every band its y-span touches; boxes spanning
   more than [max_span_bands] bands (assembled rows, whole-interface
   instances) go to a single overflow list every probe scans exactly
   once, which bounds the per-insert cost. *)
let band_bits = 5

let band_of y = y asr band_bits

let max_span_bands = 8

type t = {
  bands : (int, band) Hashtbl.t;
  tall : band;
  alive : int -> bool;
  mutable added : int;  (* instances registered since the last sweep *)
  mutable dead : int;   (* kill notifications since the last sweep *)
}

let create ~alive =
  { bands = Hashtbl.create 16; tall = band_make (); alive; added = 0;
    dead = 0 }

let add t ~idx (box : Geometry.box) =
  let e = { idx; x1 = box.x1; y1 = box.y1; x2 = box.x2; y2 = box.y2 } in
  let lo = band_of box.y1 and hi = band_of box.y2 in
  if hi - lo + 1 > max_span_bands then band_push t.tall e
  else
    for bk = lo to hi do
      let b =
        match Hashtbl.find_opt t.bands bk with
        | Some b -> b
        | None ->
          let b = band_make () in
          Hashtbl.replace t.bands bk b;
          b
      in
      band_push b e
    done;
  t.added <- t.added + 1

let sweep_band t (b : band) =
  let w = ref 0 in
  for i = 0 to b.len - 1 do
    let e = Array.unsafe_get b.arr i in
    if t.alive e.idx then begin
      Array.unsafe_set b.arr !w e;
      incr w
    end
  done;
  (* Clear the trimmed tail so dead entries do not pin anything. *)
  for i = !w to b.len - 1 do
    Array.unsafe_set b.arr i dummy_entry
  done;
  b.len <- !w

(* Rollback-safe incremental maintenance: kills only ever mark
   instances dead (they are never revived), so the index can tombstone
   lazily — probes re-check liveness through [alive] anyway — and
   compact whole bands once at least half of the registered instances
   have died. *)
let note_killed t =
  t.dead <- t.dead + 1;
  if t.added > 64 && 2 * t.dead > t.added then begin
    Hashtbl.iter (fun _ b -> sweep_band t b) t.bands;
    sweep_band t t.tall;
    t.added <- t.added - t.dead;
    t.dead <- 0
  end

let query t ~y_lo ~y_hi ~x ~start ~stop =
  let xlo, xhi = match x with Some r -> r | None -> (min_int, max_int) in
  let acc = ref [] in
  let n = ref 0 in
  let consider (e : entry) =
    if
      e.idx >= start && e.idx < stop && e.y2 >= y_lo && e.y1 <= y_hi
      && e.x2 >= xlo && e.x1 <= xhi
    then begin
      acc := e.idx :: !acc;
      incr n
    end
  in
  let scan_band (b : band) =
    for i = 0 to b.len - 1 do
      consider (Array.unsafe_get b.arr i)
    done
  in
  for bk = band_of y_lo to band_of y_hi do
    match Hashtbl.find_opt t.bands bk with
    | Some b -> scan_band b
    | None -> ()
  done;
  scan_band t.tall;
  let out = Array.make !n 0 in
  let i = ref (!n - 1) in
  List.iter
    (fun idx ->
       Array.unsafe_set out !i idx;
       decr i)
    !acc;
  (* Candidates from a single source band are already in creation order;
     multiple bands (or the overflow list) interleave, and an entry can
     appear in several probed bands.  Restore strict ascending order and
     drop duplicates — enumeration order is what keeps hinted parses
     byte-identical to unhinted ones. *)
  let sorted =
    let rec ascending i =
      i >= !n - 1 || (out.(i) < out.(i + 1) && ascending (i + 1))
    in
    ascending 0
  in
  if sorted then out
  else begin
    Array.sort (fun (a : int) b -> compare a b) out;
    let w = ref 0 in
    Array.iter
      (fun idx ->
         if !w = 0 || out.(!w - 1) <> idx then begin
           out.(!w) <- idx;
           incr w
         end)
      out;
    if !w = !n then out else Array.sub out 0 !w
  end
