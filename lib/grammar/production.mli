(** Productions of a 2P grammar (Definition 2): ⟨Head, Components,
    Constraint, Constructor⟩.

    The constraint is an arbitrary boolean over the chosen component
    instances — this is where spatial relations (left, above, aligned;
    adjacency implied) are expressed.  The constructor computes the head
    instance's semantic value from the components; its position is always
    the bounding union (the paper's universal [pos] attribute). *)

type t = {
  name : string;
      (** Unique name, e.g. "P5-TextOp"; used in dedup keys and traces. *)
  head : Symbol.t;
  components : Symbol.t list;
      (** The multiset M, in the order the guard and builder receive the
          instances. *)
  guard : Instance.t array -> bool;
      (** Constraint C.  Receives component instances in declaration
          order; covers are already known to be pairwise disjoint. *)
  build : Instance.t array -> Instance.sem;
      (** Constructor F: the head's semantic value. *)
  hints : Hint.t list;
      (** Declarative restatements of the guard's spatial conjuncts,
          used for indexed candidate enumeration.  Every hint must be
          implied by [guard] (see {!Hint}); the guard stays the final
          authority, so hints never change results — only the number of
          candidates the guard has to reject. *)
}

val make :
  name:string ->
  head:Symbol.t ->
  components:Symbol.t list ->
  ?guard:(Instance.t array -> bool) ->
  ?build:(Instance.t array -> Instance.sem) ->
  ?hints:Hint.t list ->
  unit ->
  t
(** [guard] defaults to always true, [build] to [S_none], [hints] to
    none.  Raises [Invalid_argument] if a hint names a slot outside
    [components] or relates a slot to itself. *)

val is_recursive : t -> bool
(** The head also appears among the components. *)

val pp : Format.formatter -> t -> unit
