module Geometry = Wqi_layout.Geometry

type rel =
  | Left_of of int
  | Above of int
  | Below of int
  | Same_row
  | Same_column
  | Left_aligned of int
  | Top_aligned of int
  | Bottom_aligned of int

type t = { a : int; b : int; rel : rel }

(* Constructor defaults mirror the corresponding {!Wqi_layout.Geometry}
   (and hence {!Relation}) defaults exactly: a hint built with the same
   optional arguments as the guard's relation call is sound by
   construction. *)
let left_of ?(max_gap = 60) a b = { a; b; rel = Left_of max_gap }
let above ?(max_gap = 40) a b = { a; b; rel = Above max_gap }
let below ?(max_gap = 40) a b = { a; b; rel = Below max_gap }
let same_row a b = { a; b; rel = Same_row }
let same_column a b = { a; b; rel = Same_column }
let left_aligned ?(tolerance = 6) a b = { a; b; rel = Left_aligned tolerance }
let top_aligned ?(tolerance = 6) a b = { a; b; rel = Top_aligned tolerance }
let bottom_aligned ?(tolerance = 6) a b =
  { a; b; rel = Bottom_aligned tolerance }

let holds_rel rel ba bb =
  match rel with
  | Left_of max_gap -> Geometry.left_of ~max_gap ba bb
  | Above max_gap -> Geometry.above ~max_gap ba bb
  | Below max_gap -> Geometry.below ~max_gap ba bb
  | Same_row -> Geometry.same_row ba bb
  | Same_column -> Geometry.same_column ba bb
  | Left_aligned tolerance -> Geometry.left_aligned ~tolerance ba bb
  | Top_aligned tolerance -> Geometry.top_aligned ~tolerance ba bb
  | Bottom_aligned tolerance -> Geometry.bottom_aligned ~tolerance ba bb

type region = { y : (int * int) option; x : (int * int) option }

let unconstrained = { y = None; x = None }

(* Conservative search regions, used to drive index probes.  The
   contract (see the .mli) is one-directional: if the relation holds
   between anchor and candidate, then the candidate's y-span intersects
   the [y] interval and its x-span intersects the [x] interval.  The
   converse need not hold — the engine re-checks the exact relation (and
   then the guard) on every candidate the probe admits. *)
let region rel ~anchor:(a : Geometry.box) ~anchor_is_first =
  match (rel, anchor_is_first) with
  | Left_of gap, true ->
    (* candidate.x1 ∈ [a.x2-2, a.x2+gap]; v_overlap > 0 *)
    { y = Some (a.y1, a.y2); x = Some (a.x2 - 2, a.x2 + gap) }
  | Left_of gap, false ->
    { y = Some (a.y1, a.y2); x = Some (a.x1 - gap, a.x1 + 2) }
  | Above gap, true ->
    { y = Some (a.y2 - 2, a.y2 + gap); x = Some (a.x1, a.x2) }
  | Above gap, false ->
    { y = Some (a.y1 - gap, a.y1 + 2); x = Some (a.x1, a.x2) }
  | Below gap, true ->
    { y = Some (a.y1 - gap, a.y1 + 2); x = Some (a.x1, a.x2) }
  | Below gap, false ->
    { y = Some (a.y2 - 2, a.y2 + gap); x = Some (a.x1, a.x2) }
  | Same_row, _ -> { y = Some (a.y1, a.y2); x = None }
  | Same_column, _ -> { y = None; x = Some (a.x1, a.x2) }
  | Left_aligned tol, _ -> { y = None; x = Some (a.x1 - tol, a.x1 + tol) }
  | Top_aligned tol, _ -> { y = Some (a.y1 - tol, a.y1 + tol); x = None }
  | Bottom_aligned tol, _ -> { y = Some (a.y2 - tol, a.y2 + tol); x = None }

let pp_rel ppf = function
  | Left_of g -> Fmt.pf ppf "left_of<=%d" g
  | Above g -> Fmt.pf ppf "above<=%d" g
  | Below g -> Fmt.pf ppf "below<=%d" g
  | Same_row -> Fmt.string ppf "same_row"
  | Same_column -> Fmt.string ppf "same_column"
  | Left_aligned t -> Fmt.pf ppf "left_aligned~%d" t
  | Top_aligned t -> Fmt.pf ppf "top_aligned~%d" t
  | Bottom_aligned t -> Fmt.pf ppf "bottom_aligned~%d" t

let pp ppf h = Fmt.pf ppf "%a(#%d, #%d)" pp_rel h.rel h.a h.b
