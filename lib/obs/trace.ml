module Budget = Wqi_budget.Budget

type value = Int of int | Float of float | Bool of bool | Str of string

type phase = Span | Instant

(* One slot of the ring.  Slots are mutated in place on reuse;
   recording allocates nothing beyond the caller's arg list once the
   ring has reached its working size. *)
type event = {
  mutable e_name : string;
  mutable e_cat : string;
  mutable e_phase : phase;
  mutable e_ts : float;  (* seconds since the trace origin *)
  mutable e_dur : float; (* seconds; 0 for instants *)
  mutable e_args : (string * value) list;
}

(* The ring grows geometrically from [initial_size] slots up to [cap]
   instead of preallocating [cap] up front: traces are created per
   document (wqi_batch) and per request (wqi_serve), and a full-size
   allocation would dwarf the work being traced for small inputs. *)
type t = {
  mutable events : event array;
  mutable head : int; (* index of the oldest recorded event *)
  mutable len : int;
  mutable dropped : int;
  cap : int; (* upper bound the events array may grow to *)
  origin : float;
}

let default_capacity = 32768

let initial_size = 256

let fresh_event () =
  { e_name = ""; e_cat = ""; e_phase = Instant; e_ts = 0.; e_dur = 0.;
    e_args = [] }

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  { events = Array.init (min initial_size capacity) (fun _ -> fresh_event ());
    head = 0;
    len = 0;
    dropped = 0;
    cap = capacity;
    origin = Budget.now_s () }

let capacity t = t.cap
let length t = t.len
let dropped t = t.dropped
let now () = Budget.now_s ()

let slot t =
  let n = Array.length t.events in
  if t.len < n then begin
    let e = t.events.((t.head + t.len) mod n) in
    t.len <- t.len + 1;
    e
  end
  else if n < t.cap then begin
    (* Grow: relinearize the (full) ring into a doubled array, reusing
       the existing slots. *)
    let n' = min t.cap (2 * n) in
    let ev' =
      Array.init n' (fun k ->
          if k < t.len then t.events.((t.head + k) mod n) else fresh_event ())
    in
    t.events <- ev';
    t.head <- 0;
    let e = ev'.(t.len) in
    t.len <- t.len + 1;
    e
  end
  else begin
    let e = t.events.(t.head) in
    t.head <- (t.head + 1) mod n;
    t.dropped <- t.dropped + 1;
    e
  end

let record t ~name ~cat ~phase ~ts ~dur ~args =
  let e = slot t in
  e.e_name <- name;
  e.e_cat <- cat;
  e.e_phase <- phase;
  e.e_ts <- ts -. t.origin;
  e.e_dur <- dur;
  e.e_args <- args

let span trace ?(cat = "pipeline") ?(args = []) name ~t0 ~t1 =
  match trace with
  | None -> ()
  | Some t ->
    record t ~name ~cat ~phase:Span ~ts:t0 ~dur:(t1 -. t0) ~args

let instant trace ?(cat = "event") ?(args = []) name =
  match trace with
  | None -> ()
  | Some t ->
    record t ~name ~cat ~phase:Instant ~ts:(Budget.now_s ()) ~dur:0. ~args

let with_span trace ?cat name f =
  match trace with
  | None -> f ()
  | Some _ ->
    let t0 = Budget.now_s () in
    Fun.protect
      ~finally:(fun () -> span trace ?cat name ~t0 ~t1:(Budget.now_s ()))
      f

let iter t f =
  let cap = Array.length t.events in
  for k = 0 to t.len - 1 do
    f (t.events.((t.head + k) mod cap))
  done

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let escape_into b s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s

let value_into b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Str s ->
    Buffer.add_char b '"';
    escape_into b s;
    Buffer.add_char b '"'

let args_into b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_string b ", ";
       Buffer.add_char b '"';
       escape_into b k;
       Buffer.add_string b "\": ";
       value_into b v)
    args;
  Buffer.add_string b "}"

let to_chrome_json ?(scrub_timestamps = false) t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [";
  let i = ref 0 in
  iter t (fun e ->
      if !i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  {\"name\": \"";
      escape_into b e.e_name;
      Buffer.add_string b "\", \"cat\": \"";
      escape_into b e.e_cat;
      Buffer.add_string b "\", \"ph\": \"";
      Buffer.add_string b (match e.e_phase with Span -> "X" | Instant -> "i");
      Buffer.add_string b "\", \"ts\": ";
      let ts_us, dur_us =
        if scrub_timestamps then (float_of_int !i, 1.)
        else (e.e_ts *. 1e6, e.e_dur *. 1e6)
      in
      Buffer.add_string b (Printf.sprintf "%.3f" ts_us);
      (match e.e_phase with
       | Span -> Buffer.add_string b (Printf.sprintf ", \"dur\": %.3f" dur_us)
       | Instant -> Buffer.add_string b ", \"s\": \"t\"");
      Buffer.add_string b ", \"pid\": 1, \"tid\": 1";
      if e.e_args <> [] then begin
        Buffer.add_string b ", \"args\": ";
        args_into b e.e_args
      end;
      Buffer.add_char b '}';
      incr i);
  Buffer.add_string b
    (Printf.sprintf
       "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": \
        \"%d\"}}"
       t.dropped);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Human-readable profile                                              *)
(* ------------------------------------------------------------------ *)

type span_row = {
  mutable calls : int;
  mutable total : float;
  mutable max_dur : float;
}

type inst_row = {
  mutable count : int;
  mutable sums : (string * int) list; (* summed integer args, first-seen order *)
}

let profile t =
  let spans : (string, span_row) Hashtbl.t = Hashtbl.create 16 in
  let span_order = ref [] in
  let insts : (string, inst_row) Hashtbl.t = Hashtbl.create 16 in
  let inst_order = ref [] in
  iter t (fun e ->
      match e.e_phase with
      | Span ->
        let row =
          match Hashtbl.find_opt spans e.e_name with
          | Some r -> r
          | None ->
            let r = { calls = 0; total = 0.; max_dur = 0. } in
            Hashtbl.replace spans e.e_name r;
            span_order := e.e_name :: !span_order;
            r
        in
        row.calls <- row.calls + 1;
        row.total <- row.total +. e.e_dur;
        if e.e_dur > row.max_dur then row.max_dur <- e.e_dur
      | Instant ->
        let row =
          match Hashtbl.find_opt insts e.e_name with
          | Some r -> r
          | None ->
            let r = { count = 0; sums = [] } in
            Hashtbl.replace insts e.e_name r;
            inst_order := e.e_name :: !inst_order;
            r
        in
        row.count <- row.count + 1;
        List.iter
          (fun (k, v) ->
             match v with
             | Int n ->
               row.sums <-
                 (if List.mem_assoc k row.sums then
                    List.map
                      (fun (k', s) -> if k' = k then (k', s + n) else (k', s))
                      row.sums
                  else row.sums @ [ (k, n) ])
             | Float _ | Bool _ | Str _ -> ())
          e.e_args);
  let reference =
    match Hashtbl.find_opt spans "total" with
    | Some r when r.total > 0. -> r.total
    | _ ->
      Hashtbl.fold (fun _ r acc -> acc +. r.total) spans 0. |> max epsilon_float
  in
  let rows =
    List.rev !span_order
    |> List.map (fun name -> (name, Hashtbl.find spans name))
    |> List.sort (fun (_, a) (_, b) -> compare b.total a.total)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %7s %11s %10s %10s %7s\n" "span" "calls"
       "total ms" "avg ms" "max ms" "share");
  List.iter
    (fun (name, r) ->
       Buffer.add_string b
         (Printf.sprintf "%-28s %7d %11.3f %10.3f %10.3f %6.1f%%\n" name
            r.calls (r.total *. 1e3)
            (r.total *. 1e3 /. float_of_int (max 1 r.calls))
            (r.max_dur *. 1e3)
            (100. *. r.total /. reference)))
    rows;
  if !inst_order <> [] then begin
    Buffer.add_string b "events:\n";
    List.iter
      (fun name ->
         let r = Hashtbl.find insts name in
         let sums =
           match r.sums with
           | [] -> ""
           | l ->
             "  "
             ^ String.concat " "
                 (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l)
         in
         Buffer.add_string b
           (Printf.sprintf "  %-26s %7d%s\n" name r.count sums))
      (List.rev !inst_order)
  end;
  if t.dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "(%d events dropped: ring capacity %d)\n" t.dropped
         t.cap);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Trace file naming                                                  *)
(* ------------------------------------------------------------------ *)

let doc_file_name ~name ~key =
  let flat =
    String.map (function '/' | '\\' -> '_' | c -> c) name
  in
  if key = "" then flat ^ ".trace.json"
  else flat ^ "." ^ key ^ ".trace.json"
