(** Low-overhead span/event tracer for the extraction pipeline.

    A trace is a bounded ring buffer of events stamped with the
    monotonic clock ({!Wqi_budget.Budget.now_s}, the same C stub the
    budget deadline uses).  Every recording entry point takes a
    [t option]: with [None] the only cost at an instrumentation site is
    one branch, so untraced runs stay on the exact code paths they had
    before tracing existed.  The ring starts small and grows
    geometrically up to {!capacity} — traces are created per document
    and per request, so {!create} must stay cheap relative to the work
    being traced.  When the ring reaches capacity, the oldest events
    are overwritten and counted in {!dropped}; recording then allocates
    nothing beyond the argument lists the caller builds.

    A trace belongs to a single extraction run and is not thread-safe;
    concurrent runs each get their own trace.

    Tracing is observational only: it reads counters and the clock,
    never influences extraction, so results are byte-identical with
    tracing off, on, or sampled. *)

type t

(** Argument values attached to events, e.g. per-round parser stat
    deltas. *)
type value = Int of int | Float of float | Bool of bool | Str of string

val create : ?capacity:int -> unit -> t
(** [create ()] makes a trace ring holding at most [capacity] events
    (default 32768, floored at 1); the backing array starts small and
    doubles on demand.  The trace origin — the zero of every exported
    timestamp — is the creation instant. *)

val capacity : t -> int

val length : t -> int
(** Events currently held (at most [capacity]). *)

val dropped : t -> int
(** Oldest events overwritten because the ring was full. *)

val now : unit -> float
(** The tracer's clock: monotonic seconds ({!Wqi_budget.Budget.now_s}).
    Callers bracket work with [now] and hand both stamps to {!span}. *)

val span :
  t option ->
  ?cat:string ->
  ?args:(string * value) list ->
  string ->
  t0:float ->
  t1:float ->
  unit
(** [span trace name ~t0 ~t1] records a complete-duration event
    ([ph = "X"]) covering the interval [[t0, t1]] (stamps from {!now}).
    [None] is a no-op. *)

val instant :
  t option -> ?cat:string -> ?args:(string * value) list -> string -> unit
(** [instant trace name] records a point event ([ph = "i"]) at the
    current clock reading.  [None] is a no-op. *)

val with_span :
  t option -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span trace name f] runs [f ()] inside a span; the span is
    recorded even when [f] raises. *)

val to_chrome_json : ?scrub_timestamps:bool -> t -> string
(** The trace in Chrome trace-event JSON (an object with a
    [traceEvents] array), loadable in Perfetto or [chrome://tracing].
    Timestamps are microseconds relative to the trace origin.

    [~scrub_timestamps:true] replaces every timestamp with the event's
    ordinal and every duration with 1 — events, ordering and args are
    untouched — making the export a pure function of the recorded
    event sequence; golden tests pin those bytes. *)

val profile : t -> string
(** A human-readable per-stage profile: spans aggregated by name
    (calls, total/avg/max milliseconds, share of the [total] span),
    followed by instant-event counts with summed integer args. *)

val doc_file_name : name:string -> key:string -> string
(** The file name for a per-document trace:
    ["<name>.<key>.trace.json"], with path separators in [name]
    flattened to ['_'] and [key] the document's content key in hex —
    so two documents whose stems collide (same relative path under two
    crawl roots, or stems that coincide after
    [Filename.remove_extension]) still get distinct trace files.  An
    empty [key] omits the suffix. *)
