module Engine = Wqi_parser.Engine
module Instance = Wqi_grammar.Instance
module Token = Wqi_token.Token
module Semantic_model = Wqi_model.Semantic_model
module Merger = Wqi_model.Merger
module Budget = Wqi_budget.Budget
module Trace = Wqi_obs.Trace

module Config = struct
  type t = {
    grammar : Engine.compiled;
    options : Engine.options;
    width : int;
    budget : Budget.t;
  }

  (* The one remaining reference to the compiled-in standard grammar in
     lib/core: the legacy default.  [run] itself is grammar-parametric —
     it only ever consults [t.grammar].  The pack is the process-wide
     shared one: its arena pool then serves every default-config caller
     rather than one pool per compile site. *)
  let std = Wqi_stdgrammar.Std.compiled

  let default =
    { grammar = std;
      options = Engine.default_options;
      width = Wqi_layout.Style.page_width;
      budget = Budget.unlimited }

  let with_compiled grammar t = { t with grammar }
  let with_grammar grammar t = { t with grammar = Engine.compile grammar }
  let with_options options t = { t with options }
  let with_width width t = { t with width }
  let with_budget budget t = { t with budget }
end

type input =
  | Html of string
  | Document of Wqi_html.Dom.t
  | Tokens of Token.t list

type consumption = {
  html_nodes : int;
  boxes : int;
  charged_tokens : int;
  charged_instances : int;
  rounds : int;
}

type diagnostics = {
  token_count : int;
  parse_stats : Engine.stats;
  tree_count : int;
  complete : bool;
  tokenize_seconds : float;
  parse_seconds : float;
  html_seconds : float;
  layout_seconds : float;
  classify_seconds : float;
  merge_seconds : float;
  total_seconds : float;
  budget : Budget.t;
  consumption : consumption;
}

type extraction = {
  model : Semantic_model.t;
  tokens : Token.t list;
  trees : Instance.t list;
  outcome : Budget.outcome;
  diagnostics : diagnostics;
}

(* Stage timing plus a pipeline span when traced; the untraced path
   pays one [None] branch over the pre-tracing stage timer. *)
let timed trace name f =
  let t0 = Budget.now_s () in
  let v = f () in
  let t1 = Budget.now_s () in
  (match trace with
   | None -> ()
   | Some _ -> Trace.span trace ~cat:"pipeline" name ~t0 ~t1);
  (v, t1 -. t0)

(* Budget trips become instant events on the trace, one per trip, so a
   degraded extraction shows where in the timeline degradation began. *)
let trace_trips trace trips =
  match trace with
  | None -> ()
  | Some _ ->
    List.iter
      (fun (t : Budget.trip) ->
         Trace.instant trace ~cat:"pipeline"
           ~args:
             [ ("stage", Trace.Str (Budget.stage_name t.Budget.stage));
               ("reason", Trace.Str (Budget.reason_name t.Budget.reason));
               ("limit", Trace.Int t.Budget.limit);
               ("consumed", Trace.Int t.Budget.consumed) ]
           "budget_trip")
      trips

let zero_stats =
  { Engine.created = 0; live = 0; pruned = 0; rolled_back = 0; temporary = 0;
    truncated = false; guards_tried = 0; guards_admitted = 0; index_probes = 0;
    index_pruned = 0 }

let zero_consumption =
  { html_nodes = 0; boxes = 0; charged_tokens = 0; charged_instances = 0;
    rounds = 0 }

let consumption_of g =
  { html_nodes = Budget.html_nodes g;
    boxes = Budget.boxes g;
    charged_tokens = Budget.tokens g;
    charged_instances = Budget.instances g;
    rounds = Budget.rounds g }

let empty_diagnostics budget =
  { token_count = 0;
    parse_stats = zero_stats;
    tree_count = 0;
    complete = false;
    tokenize_seconds = 0.;
    parse_seconds = 0.;
    html_seconds = 0.;
    layout_seconds = 0.;
    classify_seconds = 0.;
    merge_seconds = 0.;
    total_seconds = 0.;
    budget;
    consumption = zero_consumption }

let failed ?stage message =
  { model = Semantic_model.empty;
    tokens = [];
    trees = [];
    outcome = Budget.Failed { Budget.error_stage = stage; message };
    diagnostics = empty_diagnostics Budget.unlimited }

(* Only trees that explain at least one condition count as parses of
   the query interface; a bare atom wrapper covers nothing semantic,
   so its tokens must still be reported as missing. *)
let merge_trees tokens (result : Engine.result) =
  let trees =
    List.filter
      (fun tree -> Instance.collect_conditions tree <> [])
      result.Engine.maximal
  in
  let parses =
    List.map
      (fun tree ->
         { Merger.conditions = Instance.collect_conditions tree;
           cover = Instance.tokens tree })
      trees
  in
  let all_tokens =
    List.map (fun (t : Token.t) -> (t.id, Token.describe t)) tokens
  in
  (* Buttons and decorative images carry no query semantics; do not
     report them missing when no parse claimed them. *)
  let token_array = Array.of_list tokens in
  let ignorable id =
    match (token_array.(id)).Token.kind with
    | Token.Button | Token.Image -> true
    | Token.Text | Token.Textbox | Token.Selection | Token.Radio
    | Token.Checkbox ->
      false
  in
  let model = Merger.merge ~all_tokens ~ignorable parses in
  (model, trees)

let run ?trace (config : Config.t) input =
  let g = Budget.start config.budget in
  (* An unlimited budget stays entirely off the stage hot paths: every
     gauge check in the pipeline is a [None] no-op, so ungoverned runs
     behave — instance ids included — exactly as before governance
     existed.  The trace is threaded the same way: [None] everywhere
     costs one branch per stage. *)
  let gauge = if Budget.is_unlimited config.budget then None else Some g in
  let stage = ref Budget.Html in
  let t_start = Budget.now_s () in
  try
    let doc, html_seconds =
      match input with
      | Html markup ->
        let d, s =
          timed trace "html" (fun () -> Wqi_html.Parser.parse ?gauge ?trace markup)
        in
        (Some d, s)
      | Document d -> (Some d, 0.)
      | Tokens _ -> (None, 0.)
    in
    stage := Budget.Layout;
    let atoms, layout_seconds =
      match doc with
      | Some d ->
        timed trace "layout" (fun () ->
            Wqi_layout.Engine.render ?gauge ?trace ~width:config.width d)
      | None -> ([], 0.)
    in
    stage := Budget.Tokenize;
    let tokens, classify_seconds =
      match input with
      | Tokens tokens -> (tokens, 0.)
      | Html _ | Document _ ->
        timed trace "classify" (fun () ->
            Wqi_token.Tokenize.of_atoms ?gauge ?trace atoms)
    in
    stage := Budget.Parse;
    let result, parse_seconds =
      timed trace "parse" (fun () ->
          Engine.parse_compiled ?gauge ?trace ~options:config.options
            config.grammar tokens)
    in
    stage := Budget.Merge;
    let (model, trees), merge_seconds =
      timed trace "merge" (fun () -> merge_trees tokens result)
    in
    let outcome =
      match Budget.trips g with
      | _ :: _ as trips -> Budget.Degraded trips
      | [] ->
        if result.Engine.stats.truncated then
          (* Truncated by the engine-level [max_instances] safety valve
             rather than by the gauge: surface it the same way. *)
          Budget.Degraded
            [ { Budget.stage = Budget.Parse;
                reason = Budget.Instances;
                limit = config.options.max_instances;
                consumed = result.Engine.stats.created } ]
        else Budget.Complete
    in
    (match trace with
     | None -> ()
     | Some _ ->
       (match outcome with
        | Budget.Degraded trips -> trace_trips trace trips
        | Budget.Complete | Budget.Failed _ -> ());
       Trace.span trace ~cat:"pipeline" "total" ~t0:t_start
         ~t1:(Budget.now_s ()));
    { model;
      tokens;
      trees;
      outcome;
      diagnostics =
        { token_count = List.length tokens;
          parse_stats = result.Engine.stats;
          tree_count = List.length trees;
          complete = result.Engine.complete <> None;
          tokenize_seconds = layout_seconds +. classify_seconds;
          parse_seconds;
          html_seconds;
          layout_seconds;
          classify_seconds;
          merge_seconds;
          total_seconds = Budget.elapsed_ms g /. 1000.;
          budget = config.budget;
          consumption = consumption_of g } }
  with e ->
    (match trace with
     | None -> ()
     | Some _ ->
       Trace.instant trace ~cat:"pipeline"
         ~args:
           [ ("stage", Trace.Str (Budget.stage_name !stage));
             ("error", Trace.Str (Printexc.to_string e)) ]
         "failed";
       Trace.span trace ~cat:"pipeline" "total" ~t0:t_start
         ~t1:(Budget.now_s ()));
    { model = Semantic_model.empty;
      tokens = [];
      trees = [];
      outcome =
        Budget.Failed
          { Budget.error_stage = Some !stage; message = Printexc.to_string e };
      diagnostics =
        { (empty_diagnostics config.budget) with
          total_seconds = Budget.elapsed_ms g /. 1000.;
          consumption = consumption_of g } }

let run_forms ?trace (config : Config.t) html =
  let module Dom = Wqi_html.Dom in
  let g = Budget.start config.budget in
  let gauge = if Budget.is_unlimited config.budget then None else Some g in
  let doc, _ =
    timed trace "html" (fun () -> Wqi_html.Parser.parse ?gauge ?trace html)
  in
  (* The page-level parse has its own gauge; if it tripped, every form
     extraction below worked on a truncated page and must say so. *)
  let page_trips = Budget.trips g in
  let degrade e =
    match (page_trips, e.outcome) with
    | [], _ | _, Budget.Failed _ -> e
    | _, Budget.Complete -> { e with outcome = Budget.Degraded page_trips }
    | _, Budget.Degraded trips ->
      { e with outcome = Budget.Degraded (page_trips @ trips) }
  in
  match Dom.find_all (Dom.is_element ~named:"form") doc with
  | [] -> [ degrade (run ?trace config (Document doc)) ]
  | forms ->
    List.map
      (fun form ->
         (* Lay out each form as its own page so that unrelated page
            furniture cannot interfere with its spatial structure. *)
         let isolated = Dom.element "html" [ Dom.element "body" [ form ] ] in
         degrade (run ?trace config (Document isolated)))
      forms

let load_grammar path =
  match
    Wqi_grammar.Loader.load_grammar ~env:Wqi_stdgrammar.Std_decl.env path
  with
  | Error msg -> Error msg
  | Ok (decl, g) ->
    (match
       Engine.compile ~name:decl.Wqi_grammar.Algebra.g_name
         ~version:decl.Wqi_grammar.Algebra.g_version g
     with
     | pack -> Ok pack
     | exception Invalid_argument msg -> Error (path ^ ": " ^ msg))

let config_of ?grammar ?options ?width () =
  let c = Config.default in
  let c = match grammar with Some g -> Config.with_grammar g c | None -> c in
  let c = match options with Some options -> { c with Config.options } | None -> c in
  match width with Some width -> { c with Config.width } | None -> c

let extract_tokens ?grammar ?options tokens =
  run (config_of ?grammar ?options ()) (Tokens tokens)

let extract_document ?grammar ?options ?width doc =
  run (config_of ?grammar ?options ?width ()) (Document doc)

let extract ?grammar ?options ?width html =
  run (config_of ?grammar ?options ?width ()) (Html html)

let extract_forms ?grammar ?options ?width html =
  run_forms (config_of ?grammar ?options ?width ()) html

let conditions e = e.model.Semantic_model.conditions

let export ?(timings = true) ~name ?url e =
  let module E = Wqi_model.Export in
  let d = e.diagnostics in
  let seconds s = Printf.sprintf "%.6f" s in
  let consumed =
    E.obj
      [ ("html_nodes", string_of_int d.consumption.html_nodes);
        ("boxes", string_of_int d.consumption.boxes);
        ("tokens", string_of_int d.consumption.charged_tokens);
        ("instances", string_of_int d.consumption.charged_instances);
        ("rounds", string_of_int d.consumption.rounds) ]
  in
  let diagnostics =
    [ ("tokens", string_of_int d.token_count);
      ("instances_created", string_of_int d.parse_stats.Engine.created);
      ("instances_live", string_of_int d.parse_stats.Engine.live);
      ("pruned", string_of_int d.parse_stats.Engine.pruned);
      ("rolled_back", string_of_int d.parse_stats.Engine.rolled_back);
      ("guards_tried", string_of_int d.parse_stats.Engine.guards_tried);
      ("guards_admitted", string_of_int d.parse_stats.Engine.guards_admitted);
      ("index_probes", string_of_int d.parse_stats.Engine.index_probes);
      ("index_pruned", string_of_int d.parse_stats.Engine.index_pruned);
      ("trees", string_of_int d.tree_count);
      ("complete", string_of_bool d.complete);
      ("truncated", string_of_bool d.parse_stats.Engine.truncated) ]
    @ (if timings then
         [ ("seconds",
            E.obj
              [ ("html", seconds d.html_seconds);
                ("layout", seconds d.layout_seconds);
                ("classify", seconds d.classify_seconds);
                ("parse", seconds d.parse_seconds);
                ("merge", seconds d.merge_seconds);
                ("total", seconds d.total_seconds) ]) ]
       else [])
    @ [ ("budget", E.budget d.budget);
        ("consumed", consumed) ]
  in
  E.extraction ~name ?url ~diagnostics ~outcome:e.outcome e.model
