(** The form extractor (paper Figure 2): the public entry point.

    Pipeline: HTML → DOM → layout → tokens → best-effort parse with the
    2P grammar → merge partial parses → semantic model (query
    capabilities) plus error reports and diagnostics.

    The extractor is resource-governed: a {!Config.t} carries a
    {!Wqi_budget.Budget.t} (wall-clock deadline plus per-stage caps),
    and every extraction reports an {!Wqi_budget.Budget.outcome} saying
    whether it ran to completion, was degraded by the budget (which
    stage tripped, why, and how much was consumed), or failed outright.
    Degradation is graceful: a tripped stage stops growing its output
    and the pipeline continues, so the merger still produces a semantic
    model from whatever maximal partial trees exist. *)

(** Extraction configuration: grammar, parser options, page width and
    resource budget, with functional [with_*] updates:

    {[
      let config =
        Extractor.Config.(
          default |> with_budget (Budget.make ~deadline_ms:200 ()))
      in
      Extractor.run config (Extractor.Html markup)
    ]} *)
module Config : sig
  type t = {
    grammar : Wqi_parser.Engine.compiled;
        (** the grammar pack the parse stage runs — [run] consults only
            this field, never a global *)
    options : Wqi_parser.Engine.options;
    width : int;
    budget : Wqi_budget.Budget.t;
  }

  val std : Wqi_parser.Engine.compiled
  (** The derived global grammar [Wqi_stdgrammar.Std.grammar] compiled
      once, under identity [std]/[1] — the default pack, and the only
      place lib/core depends on the standard grammar. *)

  val default : t
  (** {!std}, default parser options, default page width, unlimited
      budget. *)

  val with_compiled : Wqi_parser.Engine.compiled -> t -> t
  (** Install a prebuilt pack — e.g. one from a grammar-file registry —
      without recompiling. *)

  val with_grammar : Wqi_grammar.Grammar.t -> t -> t
  (** Legacy setter: compiles the grammar on the spot (identity
      [anonymous]/[0], raising [Invalid_argument] if it fails
      validation).  Prefer {!with_compiled} when the pack is reused. *)

  val with_options : Wqi_parser.Engine.options -> t -> t
  val with_width : int -> t -> t
  val with_budget : Wqi_budget.Budget.t -> t -> t
end

(** What to extract from. *)
type input =
  | Html of string  (** raw markup; runs the full pipeline *)
  | Document of Wqi_html.Dom.t  (** an already-parsed DOM *)
  | Tokens of Wqi_token.Token.t list
      (** an already-tokenized interface; skips the front-end *)

type consumption = {
  html_nodes : int;
  boxes : int;
  charged_tokens : int;
  charged_instances : int;
  rounds : int;
}
(** Gauge counter read-back.  Counters are charged only on governed runs
    (a limited budget); with an unlimited budget the stages skip the
    gauge entirely and all counters read 0. *)

type diagnostics = {
  token_count : int;
  parse_stats : Wqi_parser.Engine.stats;
  tree_count : int;      (** maximal partial trees selected by the parser *)
  complete : bool;       (** a single parse covered every token *)
  tokenize_seconds : float;
      (** front-end time (layout + classification), kept for
          compatibility; equals [layout_seconds +. classify_seconds] *)
  parse_seconds : float;
  html_seconds : float;     (** HTML tree construction *)
  layout_seconds : float;   (** box layout *)
  classify_seconds : float; (** atom classification into tokens *)
  merge_seconds : float;    (** partial-parse merging *)
  total_seconds : float;    (** whole run, monotonic clock *)
  budget : Wqi_budget.Budget.t;  (** the budget the run was governed by *)
  consumption : consumption;
}

type extraction = {
  model : Wqi_model.Semantic_model.t;
  tokens : Wqi_token.Token.t list;
  trees : Wqi_grammar.Instance.t list;
      (** the maximal partial parse trees the model was merged from *)
  outcome : Wqi_budget.Budget.outcome;
      (** [Complete], [Degraded trips], or [Failed error] *)
  diagnostics : diagnostics;
}

val run : ?trace:Wqi_obs.Trace.t -> Config.t -> input -> extraction
(** [run config input] extracts under [config]'s budget.  Never raises:
    budget trips degrade the extraction ([outcome = Degraded _], with
    the model merged from the partial pipeline output), and any
    unexpected exception is caught and reported as [outcome = Failed _]
    with an empty model.

    [trace] records one span per pipeline stage ([html], [layout],
    [classify], [parse], [merge]) plus a [total] span, per-stage detail
    instants from the stages themselves, per-fix-point-round parser
    spans, and a [budget_trip] instant for every trip of a degraded
    outcome.  Tracing is observational only: the extraction — and the
    {!export} bytes — are byte-identical with [trace] absent.  A trace
    belongs to one extraction at a time; do not share one across
    concurrent runs. *)

val run_forms : ?trace:Wqi_obs.Trace.t -> Config.t -> string -> extraction list
(** [run_forms config html] extracts each [<form>] element of the page
    separately, each laid out in isolation and each governed by a fresh
    instance of [config.budget] (the budget is per form, not shared
    across the page).  The page-level HTML parse is governed too; if it
    trips, the trip is prepended to every form's outcome.  Pages with no
    [<form>] element yield a single whole-page extraction. *)

val load_grammar :
  string -> (Wqi_parser.Engine.compiled, string) result
(** [load_grammar path] reads a [.wqg] grammar file, resolves it against
    the standard lexical environment ({!Wqi_stdgrammar.Std_decl.env}),
    and compiles it into a pack carrying the file's declared
    name/version — ready for {!Config.with_compiled}.  Errors (I/O,
    malformed file, failed validation) come back as one printable
    [file:line:col]-prefixed string. *)

val failed : ?stage:Wqi_budget.Budget.stage -> string -> extraction
(** [failed msg] is an empty extraction with [outcome = Failed _]; for
    drivers that must represent errors arising outside [run] (e.g. a
    batch worker whose file read failed). *)

(** {1 Legacy entry points}

    Thin wrappers over {!run} with [Config.default] and an unlimited
    budget, kept so existing call sites compile unchanged.  New code
    should prefer {!Config} + {!run}, which expose the budget. *)

val extract :
  ?grammar:Wqi_grammar.Grammar.t ->
  ?options:Wqi_parser.Engine.options ->
  ?width:int ->
  string ->
  extraction
(** [extract html] is [run config (Html html)] with an unlimited budget.
    [grammar] defaults to the derived global grammar
    [Wqi_stdgrammar.Std.grammar]; [options] to
    [Wqi_parser.Engine.default_options]; [width] to the default page
    width.
    @deprecated Prefer {!Config} + {!run}. *)

val extract_document :
  ?grammar:Wqi_grammar.Grammar.t ->
  ?options:Wqi_parser.Engine.options ->
  ?width:int ->
  Wqi_html.Dom.t ->
  extraction
(** @deprecated Prefer {!Config} + {!run} with {!Document}. *)

val extract_forms :
  ?grammar:Wqi_grammar.Grammar.t ->
  ?options:Wqi_parser.Engine.options ->
  ?width:int ->
  string ->
  extraction list
(** [extract_forms html] extracts each [<form>] element of the page
    separately — real pages often carry several independent interfaces
    (a site-wide keyword box plus an advanced search form).  Each form
    is laid out in isolation, so a page returns one extraction per form,
    in document order.  Pages with no [<form>] element yield a single
    whole-page extraction (some interfaces are built without form
    tags).
    @deprecated Prefer {!run_forms}. *)

val extract_tokens :
  ?grammar:Wqi_grammar.Grammar.t ->
  ?options:Wqi_parser.Engine.options ->
  Wqi_token.Token.t list ->
  extraction
(** Skip the front-end: parse an already-tokenized interface.
    @deprecated Prefer {!Config} + {!run} with {!Tokens}. *)

val conditions : extraction -> Wqi_model.Condition.t list
(** Shorthand for [extraction.model.conditions]. *)

val export :
  ?timings:bool -> name:string -> ?url:string -> extraction -> string
(** The version-2 JSON source description
    ([{"wqi_extraction_version": 2, ...}]): outcome, capabilities, and a
    diagnostics object with counters, per-stage wall times, the budget
    in force and the gauge consumption.  See {!Wqi_model.Export}.

    [~timings:false] omits the wall-time [seconds] object, making the
    JSON a pure function of the input and budget spec — the form the
    extraction server caches and the golden-file tests pin (counters
    are deterministic; wall times are not). *)
