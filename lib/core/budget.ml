(* Re-export so extractor users can say [Wqi_core.Budget] without
   depending on the leaf library directly. *)
include Wqi_budget.Budget
