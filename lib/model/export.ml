(* Minimal JSON emission — only what export needs, no dependency. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let string s = "\"" ^ escape s ^ "\""

let array items = "[" ^ String.concat ", " items ^ "]"

let obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> string k ^ ": " ^ v) fields)
  ^ "}"

let rec domain (d : Condition.domain) =
  match d with
  | Condition.Text -> obj [ ("kind", string "text") ]
  | Condition.Datetime -> obj [ ("kind", string "datetime") ]
  | Condition.Enumeration values ->
    obj
      [ ("kind", string "enumeration");
        ("values", array (List.map string values)) ]
  | Condition.Range inner ->
    obj [ ("kind", string "range"); ("of", domain inner) ]

let condition (c : Condition.t) =
  obj
    [ ("attribute", string c.attribute);
      ("operators", array (List.map string c.operators));
      ("domain", domain c.domain) ]

let error (e : Semantic_model.error) =
  match e with
  | Semantic_model.Conflict (tok, a, b) ->
    obj
      [ ("kind", string "conflict"); ("token", string_of_int tok);
        ("between", array [ string a; string b ]) ]
  | Semantic_model.Missing (tok, descr) ->
    obj
      [ ("kind", string "missing"); ("token", string_of_int tok);
        ("element", string descr) ]

let model (m : Semantic_model.t) =
  obj
    [ ("conditions", array (List.map condition m.conditions));
      ("errors", array (List.map error m.errors)) ]

let source_description ~name ?url m =
  obj
    ([ ("source", string name) ]
     @ (match url with Some u -> [ ("url", string u) ] | None -> [])
     @ [ ("capabilities", model m) ])

module Budget = Wqi_budget.Budget

let trip (t : Budget.trip) =
  obj
    [ ("stage", string (Budget.stage_name t.stage));
      ("reason", string (Budget.reason_name t.reason));
      ("limit", string_of_int t.limit);
      ("consumed", string_of_int t.consumed) ]

let outcome (o : Budget.outcome) =
  match o with
  | Budget.Complete -> obj [ ("status", string "complete") ]
  | Budget.Degraded trips ->
    obj
      [ ("status", string "degraded");
        ("trips", array (List.map trip trips)) ]
  | Budget.Failed e ->
    obj
      ([ ("status", string "failed") ]
       @ (match e.Budget.error_stage with
          | Some s -> [ ("stage", string (Budget.stage_name s)) ]
          | None -> [])
       @ [ ("message", string e.Budget.message) ])

let budget (b : Budget.t) =
  let cap name = function
    | None -> []
    | Some v -> [ (name, string_of_int v) ]
  in
  obj
    (cap "deadline_ms" b.Budget.deadline_ms
     @ cap "max_html_nodes" b.Budget.max_html_nodes
     @ cap "max_boxes" b.Budget.max_boxes
     @ cap "max_tokens" b.Budget.max_tokens
     @ cap "max_instances" b.Budget.max_instances
     @ cap "max_rounds" b.Budget.max_rounds)

let extraction_version = 2

let extraction ~name ?url ?(diagnostics = []) ~outcome:o m =
  obj
    ([ ("wqi_extraction_version", string_of_int extraction_version);
       ("source", string name) ]
     @ (match url with Some u -> [ ("url", string u) ] | None -> [])
     @ [ ("outcome", outcome o); ("capabilities", model m) ]
     @ (match diagnostics with [] -> [] | d -> [ ("diagnostics", obj d) ]))

let failed_source ~name ?url e =
  extraction ~name ?url ~outcome:(Budget.Failed e) Semantic_model.empty
