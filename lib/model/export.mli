(** Machine-readable export of semantic models.

    The paper's motivation is large-scale integration: mediators need
    *source descriptions* that characterize each deep-Web source's query
    capabilities (Section 1 cites hand-written descriptions as a major
    scaling obstacle).  This module renders an extracted model as JSON
    so downstream tools (interface matching, clustering, unified-
    interface building) can consume it without linking OCaml code. *)

val condition : Condition.t -> string
(** One condition as a JSON object:
    [{"attribute": ..., "operators": [...], "domain": {...}}].
    Domains encode as [{"kind":"text"}], [{"kind":"enumeration",
    "values":[...]}], [{"kind":"range","of":{...}}] or
    [{"kind":"datetime"}]. *)

val model : Semantic_model.t -> string
(** The whole model: conditions plus error reports, pretty-printed. *)

val source_description :
  name:string -> ?url:string -> Semantic_model.t -> string
(** A named source description wrapping {!model} — the integration
    artifact the paper's mediator scenario consumes.  This is the
    version-1 format; governed extractions are exported with
    {!extraction}. *)

(** {1 JSON building blocks}

    Exposed so layers above (which know richer diagnostics types than
    this module can depend on) can render extra [diagnostics] fields for
    {!extraction}. *)

val string : string -> string
(** A JSON string literal with escaping. *)

val array : string list -> string
(** A JSON array of pre-rendered values. *)

val obj : (string * string) list -> string
(** A JSON object of pre-rendered values. *)

(** {1 Versioned extraction export (version 2)}

    Renders the resource-governance side of an extraction: its
    {!Wqi_budget.Budget.outcome} and budget spec, wrapped in a versioned
    envelope [{"wqi_extraction_version": 2, ...}] so downstream
    consumers can dispatch on format. *)

val extraction_version : int
(** The current envelope version, [2].  (Version 1 is the bare
    {!source_description} with neither version field nor outcome.) *)

val trip : Wqi_budget.Budget.trip -> string
(** [{"stage": ..., "reason": ..., "limit": ..., "consumed": ...}]. *)

val outcome : Wqi_budget.Budget.outcome -> string
(** [{"status": "complete"}], [{"status": "degraded", "trips": [...]}]
    or [{"status": "failed", "stage": ..., "message": ...}]. *)

val budget : Wqi_budget.Budget.t -> string
(** The caps that are actually set; [{}] for an unlimited budget. *)

val extraction :
  name:string ->
  ?url:string ->
  ?diagnostics:(string * string) list ->
  outcome:Wqi_budget.Budget.outcome ->
  Semantic_model.t ->
  string
(** The version-2 source description: version, source name, outcome,
    capabilities, and optionally a [diagnostics] object whose
    pre-rendered fields the caller supplies (see
    [Wqi_core.Extractor.export]). *)

val failed_source :
  name:string -> ?url:string -> Wqi_budget.Budget.error -> string
(** A version-2 envelope for a source that could not be extracted at
    all (e.g. its file could not be read): failed outcome, empty
    capabilities. *)
