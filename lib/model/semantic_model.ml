type error =
  | Conflict of int * string * string
  | Missing of int * string

type t = {
  conditions : Condition.t list;
  errors : error list;
}

let empty = { conditions = []; errors = [] }

let pp_error ppf = function
  | Conflict (tok, a, b) ->
    Fmt.pf ppf "conflict on token %d: %s vs %s" tok a b
  | Missing (tok, descr) -> Fmt.pf ppf "missing token %d: %s" tok descr

let pp ppf m =
  Fmt.pf ppf "@[<v>%a%a@]"
    Fmt.(list ~sep:cut Condition.pp)
    m.conditions
    Fmt.(list ~sep:nop (fun ppf e -> pf ppf "@,! %a" pp_error e))
    m.errors

let condition_count m = List.length m.conditions

let conflict_count m =
  List.length
    (List.filter (function Conflict _ -> true | Missing _ -> false) m.errors)

let missing_count m =
  List.length
    (List.filter (function Missing _ -> true | Conflict _ -> false) m.errors)

let distinct_sorted ids = List.sort_uniq Int.compare ids

let missing_token_ids m =
  distinct_sorted
    (List.filter_map
       (function Missing (tok, _) -> Some tok | Conflict _ -> None)
       m.errors)

let conflict_token_ids m =
  distinct_sorted
    (List.filter_map
       (function Conflict (tok, _, _) -> Some tok | Missing _ -> None)
       m.errors)
