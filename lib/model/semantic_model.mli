(** The semantic model of a query interface: its set of conditions,
    together with the extraction errors the merger reports (Section 3.4). *)

type error =
  | Conflict of int * string * string
      (** [Conflict (token_id, cond_a, cond_b)]: the same token is claimed
          by two different conditions (e.g. a selection list grabbed by
          both "passengers" and "adults" in interface Qaa). *)
  | Missing of int * string
      (** [Missing (token_id, description)]: a visible token was not
          covered by any selected parse tree. *)

type t = {
  conditions : Condition.t list;
      (** Extracted conditions in reading order, deduplicated. *)
  errors : error list;
}

val empty : t

val pp_error : Format.formatter -> error -> unit
val pp : Format.formatter -> t -> unit

val condition_count : t -> int
val conflict_count : t -> int
val missing_count : t -> int

val missing_token_ids : t -> int list
(** Distinct ids of tokens no selected parse tree covered, sorted.
    [missing_count] counts error reports; this counts {i tokens}, which
    is what a coverage ratio needs (a token can be reported once per
    merge pass). *)

val conflict_token_ids : t -> int list
(** Distinct ids of tokens claimed by more than one condition, sorted. *)
