(** Content-addressed result cache for the extraction server.

    Identical forms recur constantly in a crawl — the same search box
    is embedded on every page of a site — so the server memoizes
    serialized extractions keyed by what actually determines the
    answer: the (normalized) HTML content and the budget spec in
    force.  Keys are FNV-1a/64 fingerprints guarded by the normalized
    length and the spec string, so a lookup never touches the original
    markup.

    The cache is sharded: each shard holds an LRU list and a hash
    table behind its own mutex, so concurrent handler threads on
    different shards never contend.  Shards are bounded by bytes (the
    serialized values dominate), not entry count, and entries can
    carry a TTL so a long-lived daemon eventually re-extracts content
    whose grammar or code may have changed under it.

    In the shared-nothing server each serving domain owns a private
    cache instance, so none of these mutexes is ever contended across
    domains on the request path.

    {b Single-flight.} Cold misses can stampede: at start-up every
    crawler replays the same popular forms at once, and without
    coordination each concurrent miss extracts the same document.
    {!begin_flight} elects exactly one leader per key; concurrent
    misses on the same key park until the leader {!end_flight}s and
    then read the published bytes instead of re-extracting.  The
    protocol is advisory and crash-safe: a leader that publishes
    [None] (shed or failed extraction) wakes its followers empty-handed
    and they retry on their own. *)

type config = {
  max_bytes : int;  (** total byte bound across all shards *)
  ttl_s : float;    (** entry lifetime in seconds; [<= 0.] = no expiry *)
  shards : int;     (** clamped to [>= 1] *)
}

val default_config : config
(** 64 MiB, no TTL, 8 shards. *)

type t

val create : ?clock:(unit -> float) -> config -> t
(** [clock] (for TTL arithmetic) defaults to the monotonic
    [Wqi_budget.Budget.now_s]; tests inject a fake clock to exercise
    expiry deterministically. *)

type key = Wqi_store.Key.t
(** Cache keys {i are} store keys — the equality is deliberate and
    load-bearing: the persistent store ({!Wqi_store.Store}) sits under
    this cache as a warm tier, and a key computed once per request
    addresses both. *)

val fingerprint : string -> int64
(** The raw FNV-1a/64 hash (offset basis 0xcbf29ce484222325, prime
    0x100000001b3); delegates to {!Wqi_store.Key.fingerprint}. *)

val normalize : string -> string
(** Line-ending and outer-whitespace normalization applied to HTML
    before hashing; delegates to {!Wqi_store.Key.normalize}. *)

val key : html:string -> spec:string -> key
(** [key ~html ~spec] fingerprints [normalize html] together with
    [spec] — the caller's rendering of everything else that shapes the
    response (budget caps, source name, format version).  Delegates to
    {!Wqi_store.Key.make}. *)

val find : t -> key -> string option
(** A hit refreshes the entry's LRU position.  Expired entries are
    removed on the way and count as misses (and as expirations). *)

val add : t -> key -> string -> unit
(** Insert or replace, evicting least-recently-used entries of the
    shard until the value fits.  Values larger than a whole shard are
    not stored. *)

(** {1 Single-flight} *)

type flight =
  | Leader  (** this caller owns the extraction; it {b must} call
                {!end_flight} for the same key exactly once *)
  | Follower of string option
      (** another caller led; [Some value] is the bytes it published
          (count it as a hit), [None] means the leader gave up (shed or
          failed) — re-check the cache and try again *)

val begin_flight : t -> key -> flight
(** Join (or open) the in-flight extraction for [key].  Returns
    [Leader] immediately when no extraction is in flight; otherwise
    {b blocks} until the current leader calls {!end_flight} and returns
    its published result as [Follower].  Call only after {!find}
    missed. *)

val end_flight : t -> key -> string option -> unit
(** Publish the leader's result ([Some value] — normally also
    {!add}ed — or [None] on failure) and wake every follower.  The key
    is open for a new flight afterwards.  Idempotent for keys with no
    open flight. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;     (** entries dropped to make room *)
  expirations : int;   (** entries dropped because their TTL passed *)
  insertions : int;
  coalesced : int;     (** follower misses answered by a single-flight
                           leader instead of a duplicate extraction *)
  entries : int;       (** current entry count, all shards *)
  bytes : int;         (** current value bytes, all shards *)
  capacity : int;      (** configured [max_bytes] *)
}

val stats : t -> stats

val hit_ratio : stats -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)
