module Extractor = Wqi_core.Extractor
module Engine = Wqi_parser.Engine
module Budget = Wqi_budget.Budget
module Export = Wqi_model.Export
module Trace = Wqi_obs.Trace
module Group = Wqi_parallel.Pool.Group
module Store = Wqi_store.Store
module Key = Wqi_store.Key
module Quality = Wqi_quality.Quality

let version = "1.0.0"

type accept_mode = [ `Auto | `Reuseport | `Dispatch ]

type config = {
  host : string;
  port : int;
  jobs : int option;
  accept_mode : accept_mode;
  max_inflight : int;
  max_body : int;
  cache : Cache.config option;
  store : string option;
  extractor : Extractor.Config.t;
  grammar_dir : string option;
  cap_budget : Budget.t;
  idle_timeout_s : float;
  drain_grace_s : float;
  trace_sample : int;
  trace_dir : string option;
  slow_ms : float option;
  access_log : string option;
  quality_exemplars : int;
      (* K worst-quality extractions per window get a Chrome trace into
         trace_dir; 0 disables exemplar capture *)
  quality_window : int;  (* extractions per exemplar window *)
}

let default_config =
  { host = "127.0.0.1";
    port = 8080;
    jobs = None;
    accept_mode = `Auto;
    max_inflight = 4 * Domain.recommended_domain_count ();
    max_body = 4 * 1024 * 1024;
    cache = Some Cache.default_config;
    store = None;
    extractor = Extractor.Config.default;
    grammar_dir = None;
    cap_budget = Budget.unlimited;
    idle_timeout_s = 5.;
    drain_grace_s = 30.;
    trace_sample = 0;
    trace_dir = None;
    slow_ms = None;
    access_log = None;
    quality_exemplars = 0;
    quality_window = 128 }

(* ------------------------------------------------------------------ *)
(* Per-domain state                                                   *)
(* ------------------------------------------------------------------ *)

(* One live connection handler.  [h_thread] is filled by the accept
   loop right after [Thread.create]; only the accept loop and the
   handler itself touch the registry, both under [s_mutex]. *)
type handler = {
  h_fd : Unix.file_descr;
  mutable h_thread : Thread.t option;
}

(* Everything a serving domain touches on its request path lives here
   and belongs to this domain alone: its own listening socket (or
   dispatcher inbox), its own cache shard, its own telemetry arena and
   its own handler registry.  Nothing in a request's
   accept → parse → extract → respond path crosses into another
   domain's shard. *)
type shard = {
  s_index : int;
  s_listen : Unix.file_descr option;  (* own socket in `Reuseport mode *)
  s_cache : Cache.t option;
  s_telemetry : Telemetry.t;
  s_mutex : Mutex.t;  (* guards registry, zombies, token and inbox *)
  s_cond : Condition.t;  (* dispatcher inbox: fd queued, or draining *)
  s_live : (int, handler) Hashtbl.t;  (* token -> live handler *)
  mutable s_zombies : Thread.t list;  (* finished handlers, to join *)
  mutable s_token : int;
  s_pending : Unix.file_descr Queue.t;  (* `Dispatch mode inbox *)
  (* OCaml runtime health, sampled by this domain's own loop (an
     accept-loop tick or a connection registration) so each shard
     reports its own domain's view; the scrape merges them without ever
     running code on another domain.  Guarded by s_mutex. *)
  mutable s_gc_minor_words : float;
  mutable s_gc_major : int;
  mutable s_gc_heap_bytes : int;
  (* Low-quality exemplar window: the K worst-scoring extractions of
     the current window, flushed to trace_dir when the window fills.
     Guarded by s_mutex; list kept sorted by ascending score, length
     <= quality_exemplars. *)
  mutable s_q_seen : int;
  mutable s_q_worst : (float * string * Trace.t) list;
}

type t = {
  config : config;
  bound_port : int;
  mode : [ `Reuseport | `Dispatch ];
  registry : (string * Engine.compiled) list Atomic.t;
      (* name → compiled pack, sorted by name; always contains the
         default grammar.  Swapped wholesale (never mutated) so request
         threads read a consistent registry with one atomic load. *)
  reload_flag : bool Atomic.t;  (* SIGHUP: re-scan grammar_dir *)
  store : Store.t option;
      (* warm tier below the per-domain caches.  Shared across domains,
         but only touched on cache misses (probe, then a buffered append
         after extraction), so its internal mutexes never sit on a
         cache-hit path. *)
  shards : shard array;
  dispatch_listen : Unix.file_descr option;  (* `Dispatch mode only *)
  inflight : int Atomic.t;  (* admitted extractions, all domains *)
  peak_inflight : int Atomic.t;
  req_seed : string;          (* per-process prefix of request ids *)
  req_counter : int Atomic.t; (* request-id sequence *)
  sample_counter : int Atomic.t;  (* extract requests seen, for --trace-sample *)
  access_out : out_channel option;  (* structured access log sink *)
  log_mutex : Mutex.t;        (* one access-log line at a time *)
  stop_r : Unix.file_descr;  (* self-pipe: wakes every accept loop *)
  stop_w : Unix.file_descr;
  draining : bool Atomic.t;
  mutable dispatcher : Thread.t option;
  mutable domains : Group.t option;
}

let draining t = Atomic.get t.draining

let port t = t.bound_port

(* ------------------------------------------------------------------ *)
(* Grammar registry                                                   *)
(* ------------------------------------------------------------------ *)

(* Load every *.wqg in [dir] (sorted, so errors are deterministic) into
   (name, pack) pairs.  The whole scan fails on the first malformed
   file — a server must not come up (or hot-swap to) a half-loaded
   registry. *)
let scan_grammar_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
    let files =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".wqg")
      |> List.sort compare
    in
    List.fold_left
      (fun acc file ->
         match acc with
         | Error _ as e -> e
         | Ok packs ->
           (match Extractor.load_grammar (Filename.concat dir file) with
            | Error msg -> Error msg
            | Ok pack ->
              let name = pack.Engine.name in
              if List.mem_assoc name packs then
                Error
                  (Printf.sprintf "%s: duplicate grammar name %S"
                     (Filename.concat dir file) name)
              else Ok ((name, pack) :: packs)))
      (Ok []) files

(* The registry always resolves the default grammar under its own name;
   a directory file with the same name shadows the built-in. *)
let build_registry config =
  let dflt = config.extractor.Extractor.Config.grammar in
  let from_dir =
    match config.grammar_dir with
    | None -> Ok []
    | Some dir -> scan_grammar_dir dir
  in
  match from_dir with
  | Error _ as e -> e
  | Ok packs ->
    let packs =
      if List.mem_assoc dflt.Engine.name packs then packs
      else (dflt.Engine.name, dflt) :: packs
    in
    Ok (List.sort (fun (a, _) (b, _) -> compare a b) packs)

let grammar_names t = List.map fst (Atomic.get t.registry)

let reload_grammars t =
  match build_registry t.config with
  | Error _ as e -> e
  | Ok packs ->
    Atomic.set t.registry packs;
    Ok (List.length packs)

let request_reload t = Atomic.set t.reload_flag true

let maybe_reload t =
  if Atomic.exchange t.reload_flag false then
    match reload_grammars t with
    | Ok n -> Printf.eprintf "wqi_serve: reloaded %d grammar(s)\n%!" n
    | Error msg ->
      (* Keep serving the previous registry: a bad file must never take
         the old grammars down with it. *)
      Printf.eprintf "wqi_serve: grammar reload failed, keeping previous \
                      registry: %s\n%!" msg

let jobs_of config =
  match config.jobs with
  | Some j -> max 1 j
  | None -> Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Budget-override parsing                                            *)
(* ------------------------------------------------------------------ *)

(* Effective per-request budget: the request parameter if present,
   otherwise the server default — in both cases never looser than the
   server's cap for that field (an absent parameter cannot escape a
   cap either). *)
let merge_field ~request ~dflt ~cap =
  let chosen = match request with Some _ -> request | None -> dflt in
  match cap with
  | None -> chosen
  | Some c ->
    (match chosen with
     | Some v -> Some (min (max v 0) c)
     | None -> Some c)

let budget_of_query config req =
  let bad = ref None in
  let param name =
    match Http.query_param req name with
    | None -> None
    | Some raw ->
      (match int_of_string_opt raw with
       | Some v -> Some (max v 0)
       | None ->
         bad := Some (Printf.sprintf "%s: expected an integer, got %S" name raw);
         None)
  in
  let deadline_ms = param "deadline_ms" in
  let max_html_nodes = param "max_html_nodes" in
  let max_boxes = param "max_boxes" in
  let max_tokens = param "max_tokens" in
  let max_instances = param "max_instances" in
  let max_rounds = param "max_rounds" in
  match !bad with
  | Some msg -> Error msg
  | None ->
    let dflt = config.extractor.Extractor.Config.budget in
    let cap = config.cap_budget in
    Ok
      { Budget.deadline_ms =
          merge_field ~request:deadline_ms ~dflt:dflt.Budget.deadline_ms
            ~cap:cap.Budget.deadline_ms;
        max_html_nodes =
          merge_field ~request:max_html_nodes ~dflt:dflt.Budget.max_html_nodes
            ~cap:cap.Budget.max_html_nodes;
        max_boxes =
          merge_field ~request:max_boxes ~dflt:dflt.Budget.max_boxes
            ~cap:cap.Budget.max_boxes;
        max_tokens =
          merge_field ~request:max_tokens ~dflt:dflt.Budget.max_tokens
            ~cap:cap.Budget.max_tokens;
        max_instances =
          merge_field ~request:max_instances ~dflt:dflt.Budget.max_instances
            ~cap:cap.Budget.max_instances;
        max_rounds =
          merge_field ~request:max_rounds ~dflt:dflt.Budget.max_rounds
            ~cap:cap.Budget.max_rounds }

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

let json_error msg =
  Export.obj [ ("error", Export.string msg) ]

let respond ?scratch fd ~status ?headers ?content_type body =
  try Http.write_response ?scratch fd ~status ?headers ?content_type body
  with Unix.Unix_error _ -> ()  (* peer went away; nothing to salvage *)

let observe sh ~code t0 =
  Telemetry.observe_request sh.s_telemetry ~code
    ~seconds:(Budget.now_s () -. t0) ()

(* Refresh this shard's view of its domain's GC counters.  Called from
   code already running on the shard's own domain (accept-loop ticks,
   connection registration, a /metrics handler), so each sample is the
   owning domain's [Gc.quick_stat] — the scrape thread never has to run
   code on another domain to read it. *)
let word_bytes = Sys.word_size / 8

let sample_gc sh =
  let gc = Gc.quick_stat () in
  Mutex.lock sh.s_mutex;
  sh.s_gc_minor_words <- gc.Gc.minor_words;
  sh.s_gc_major <- gc.Gc.major_collections;
  sh.s_gc_heap_bytes <- gc.Gc.heap_words * word_bytes;
  Mutex.unlock sh.s_mutex

let outcome_tag = function
  | Budget.Complete -> `Complete
  | Budget.Degraded _ -> `Degraded
  | Budget.Failed _ -> `Failed

let outcome_name = function
  | `Complete -> "complete"
  | `Degraded -> "degraded"
  | `Failed -> "failed"

(* ------------------------------------------------------------------ *)
(* Request-level observability                                        *)
(* ------------------------------------------------------------------ *)

let fresh_id t =
  Printf.sprintf "%s-%06d" t.req_seed (Atomic.fetch_and_add t.req_counter 1)

let iso8601 now =
  let tm = Unix.gmtime now in
  let ms = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms

(* One JSON object per request, flushed per line so `tail -f` and crash
   post-mortems both see complete records.  The sink is the one piece
   of shared mutable state left on the request path — it only exists
   when --access-log is on, and interleaving lines from several
   domains into one file needs a lock by construction. *)
let log_access t ~meth ~path ~status ~bytes ~seconds ~cache ~outcome ~id =
  match t.access_out with
  | None -> ()
  | Some oc ->
    let line =
      Printf.sprintf
        "{\"ts\":%s,\"method\":%s,\"path\":%s,\"status\":%d,\"bytes\":%d,\
         \"ms\":%.3f,\"cache\":%s,\"outcome\":%s,\"id\":%s}"
        (Export.string (iso8601 (Unix.gettimeofday ())))
        (Export.string meth) (Export.string path) status bytes
        (1000. *. seconds) (Export.string cache) (Export.string outcome)
        (Export.string id)
    in
    Mutex.lock t.log_mutex;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock t.log_mutex

let log_slow t ~meth ~path ~status ~seconds ~id =
  match t.config.slow_ms with
  | Some threshold when 1000. *. seconds >= threshold ->
    Printf.eprintf "wqi_serve: slow request %s %s -> %d %.1f ms id=%s\n%!" meth
      path status (1000. *. seconds) id
  | _ -> ()

(* Respond and account in one move: telemetry (status, outcome, latency,
   per-stage histograms), the structured access log, and the
   slow-request log all see exactly the bytes that went on the wire.
   Telemetry lands in the serving domain's own arena. *)
let finish t sh ~scratch fd req ~t0 ~id ~status ?headers ?content_type ?grammar
    ?outcome ?cache_hit ?stats ?stage_seconds ?quality ?(cache = "-") body =
  let seconds = Budget.now_s () -. t0 in
  (* Account before writing: once the client has the response bytes, a
     /metrics scrape must already see this request, or a scrape racing
     the last response reads an undercounted split. *)
  Telemetry.observe_request sh.s_telemetry ~code:status ?grammar ?outcome
    ?cache_hit ?stats ?stage_seconds ?quality ~seconds ();
  respond ~scratch fd ~status ?headers ?content_type body;
  let meth = req.Http.meth and path = req.Http.path in
  let outcome =
    match outcome with Some o -> outcome_name o | None -> "-"
  in
  log_access t ~meth ~path ~status ~bytes:(String.length body) ~seconds ~cache
    ~outcome ~id;
  log_slow t ~meth ~path ~status ~seconds ~id

let stage_seconds_of (d : Extractor.diagnostics) =
  [ ("html", d.Extractor.html_seconds);
    ("layout", d.Extractor.layout_seconds);
    ("classify", d.Extractor.classify_seconds);
    ("parse", d.Extractor.parse_seconds);
    ("merge", d.Extractor.merge_seconds) ]

(* Tracing is opt-in twice over: the server must run with --trace-dir,
   and the request must either carry [x-wqi-trace: 1] or land on the
   --trace-sample grid.  Everything else runs with [?trace:None] — the
   untraced hot path. *)
let want_trace t req =
  match t.config.trace_dir with
  | None -> None
  | Some dir ->
    let on_demand = Http.header req "x-wqi-trace" = Some "1" in
    let sampled =
      t.config.trace_sample > 0
      && Atomic.fetch_and_add t.sample_counter 1 mod t.config.trace_sample = 0
    in
    if on_demand || sampled then Some dir else None

let write_trace dir ~id trace =
  let path = Filename.concat dir (id ^ ".json") in
  match open_out_bin path with
  | exception Sys_error _ -> ()  (* tracing must never fail a request *)
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
         output_string oc (Trace.to_chrome_json trace);
         output_char oc '\n')

(* Exemplar capture: keep the K lowest-scoring extractions of the
   current window in the shard (traces held in memory, bounded by K);
   when the window fills, write them as [quality-<id>.json] and start
   over.  Per-shard state, so capture needs no cross-domain
   coordination; request ids are process-unique, so exemplar filenames
   never collide. *)
let note_exemplar t sh ~score ~id trace =
  match (trace, t.config.trace_dir) with
  | Some tr, Some dir when t.config.quality_exemplars > 0 ->
    let k = t.config.quality_exemplars in
    let rec insert = function
      | [] -> [ (score, id, tr) ]
      | (s, _, _) :: _ as rest when score <= s -> (score, id, tr) :: rest
      | e :: rest -> e :: insert rest
    in
    let rec take n = function
      | e :: rest when n > 0 -> e :: take (n - 1) rest
      | _ -> []
    in
    Mutex.lock sh.s_mutex;
    sh.s_q_seen <- sh.s_q_seen + 1;
    sh.s_q_worst <- take k (insert sh.s_q_worst);
    let flushed =
      if sh.s_q_seen >= max 1 t.config.quality_window then begin
        let w = sh.s_q_worst in
        sh.s_q_worst <- [];
        sh.s_q_seen <- 0;
        w
      end
      else []
    in
    Mutex.unlock sh.s_mutex;
    List.iter
      (fun (_, eid, etr) -> write_trace dir ~id:("quality-" ^ eid) etr)
      flushed
  | _ -> ()

(* Cached values carry their outcome in a one-byte prefix so a hit can
   report the original outcome without re-parsing the JSON. *)
let encode_cached outcome body =
  (match outcome with `Complete -> "C" | `Degraded -> "D" | `Failed -> assert false)
  ^ body

let decode_cached s =
  if s = "" then (`Complete, s)
  else
    match s.[0] with
    | 'D' -> (`Degraded, String.sub s 1 (String.length s - 1))
    | _ -> (`Complete, String.sub s 1 (String.length s - 1))

(* Admission control is the one deliberately global limit: it bounds
   the whole process's concurrent extraction work, so it is a single
   atomic counter — one lock-free fetch-and-add per admitted request,
   never a mutex. *)
let admit t =
  let rec go () =
    let cur = Atomic.get t.inflight in
    if cur >= t.config.max_inflight then false
    else if Atomic.compare_and_set t.inflight cur (cur + 1) then begin
      let rec bump () =
        let p = Atomic.get t.peak_inflight in
        if cur + 1 > p
           && not (Atomic.compare_and_set t.peak_inflight p (cur + 1))
        then bump ()
      in
      bump ();
      true
    end
    else go ()
  in
  go ()

let release t = ignore (Atomic.fetch_and_add t.inflight (-1))

let respond_hit t sh ~scratch fd req ~t0 ~id ~grammar stored =
  let outcome, body = decode_cached stored in
  finish t sh ~scratch fd req ~t0 ~id ~status:200
    ~headers:
      [ ("x-wqi-outcome", outcome_name outcome);
        ("x-wqi-cache", "hit");
        ("x-wqi-grammar", grammar);
        ("x-wqi-trace-id", id) ]
    ~grammar ~outcome ~cache_hit:true ~cache:"hit" body

(* Run the extraction on this handler thread, inside this domain: the
   whole accept → parse → extract → respond path stays on one core.
   [publish] tells the single-flight leader path to feed waiters. *)
let run_extraction t sh ~scratch fd req ~t0 ~id ~budget ~pack ~name ~publish
    ckey =
  if not (admit t) then begin
    publish None;
    Telemetry.shed sh.s_telemetry;
    finish t sh ~scratch fd req ~t0 ~id ~status:503
      ~headers:[ ("retry-after", "1"); ("x-wqi-trace-id", id) ]
      ~cache:"shed"
      (json_error "server at capacity; retry shortly")
  end
  else begin
    let published = ref false in
    let publish_once v =
      if not !published then begin
        published := true;
        publish v
      end
    in
    Fun.protect
      ~finally:(fun () ->
          release t;
          publish_once None)
    @@ fun () ->
    let config =
      Extractor.Config.(
        t.config.extractor |> with_budget budget |> with_compiled pack)
    in
    let tdir = want_trace t req in
    (* Exemplar capture needs a trace for every fresh extraction — the
       worst-quality ones are only known after the fact.  Tracing is
       observational (the response bytes are identical) and this path
       already pays for a full extraction; hits stay untraced. *)
    let exemplars =
      t.config.quality_exemplars > 0 && Option.is_some t.config.trace_dir
    in
    let trace =
      if Option.is_some tdir || exemplars then Some (Trace.create ())
      else None
    in
    (* Warm tier: a store hit skips the extractor entirely.  Probed
       only on the leader path, under admission, so a popular key costs
       one probe per flight, not one per waiter. *)
    let from_store =
      match (t.store, ckey) with
      | Some store, Some k ->
        let p0 = Trace.now () in
        let r = try Store.find_entry store k with Invalid_argument _ -> None in
        Trace.span trace ~cat:"store" "store.probe" ~t0:p0 ~t1:(Trace.now ());
        r
      | _ -> None
    in
    (* The trace file must exist by the time the client reads its
       response (x-wqi-trace-id names it), so every branch writes the
       trace before [finish]. *)
    let flush_trace () =
      match (trace, tdir) with
      | Some tr, Some dir -> write_trace dir ~id tr
      | _ -> ()
    in
    match from_store with
    | Some (m, body) ->
      let tag = if m.Store.outcome = "degraded" then `Degraded else `Complete in
      let stored = encode_cached tag body in
      (match (sh.s_cache, ckey) with
       | Some cache, Some k -> Cache.add cache k stored
       | _ -> ());
      publish_once (Some stored);
      flush_trace ();
      finish t sh ~scratch fd req ~t0 ~id ~status:200
        ~headers:
          [ ("x-wqi-outcome", outcome_name tag);
            ("x-wqi-cache", "store");
            ("x-wqi-grammar", pack.Engine.name);
            ("x-wqi-trace-id", id) ]
        ~grammar:pack.Engine.name ~outcome:tag ~cache_hit:true
        ?quality:
          (Option.map
             (fun q ->
                (q.Store.q_score, q.Store.q_coverage, q.Store.q_conflicts))
             m.Store.quality)
        ~cache:"store" body
    | None ->
      let e = Extractor.run ?trace config (Extractor.Html req.Http.body) in
      let body = Extractor.export ~timings:false ~name e in
      let tag = outcome_tag e.Extractor.outcome in
      let q =
        Quality.of_extraction ~source:name
          ~grammar:(pack.Engine.name ^ "@" ^ pack.Engine.version) e
      in
      let status = match tag with `Failed -> 500 | _ -> 200 in
      (match (sh.s_cache, ckey, tag) with
       | Some cache, Some k, (`Complete | `Degraded) ->
         let stored = encode_cached tag body in
         Cache.add cache k stored;
         publish_once (Some stored)
       | _ -> publish_once None);
      (* Persist before responding: a buffered segment append costs
         microseconds against an extraction's milliseconds, and it
         makes the contract simple — once a client has its bytes, a
         restarted server can serve them from the store. *)
      (match (t.store, ckey, tag) with
       | Some store, Some k, (`Complete | `Degraded) ->
         let w0 = Trace.now () in
         (try
            Store.put store k
              ~meta:
                { Store.source = name;
                  grammar = pack.Engine.name ^ "@" ^ pack.Engine.version;
                  outcome = outcome_name tag;
                  domain = "";
                  quality =
                    Some
                      { Store.q_score = q.Quality.score;
                        q_coverage = q.Quality.coverage;
                        q_conflicts = q.Quality.conflicts } }
              body
          with Invalid_argument _ | Sys_error _ -> ());
         Trace.span trace ~cat:"store" "store.write" ~t0:w0 ~t1:(Trace.now ())
       | _ -> ());
      let cache = if Option.is_none sh.s_cache then "off" else "miss" in
      flush_trace ();
      (* Exemplars land on disk when the window completes, not per
         request — the K worst of a window are only known then. *)
      note_exemplar t sh ~score:q.Quality.score ~id trace;
      finish t sh ~scratch fd req ~t0 ~id ~status
        ~headers:
          [ ("x-wqi-outcome", outcome_name tag);
            ("x-wqi-cache", cache);
            ("x-wqi-grammar", pack.Engine.name);
            ("x-wqi-trace-id", id) ]
        ~grammar:pack.Engine.name ~outcome:tag
        ~stats:e.Extractor.diagnostics.Extractor.parse_stats
        ~stage_seconds:(stage_seconds_of e.Extractor.diagnostics)
        ~quality:(q.Quality.score, q.Quality.coverage, q.Quality.conflicts)
        ~cache body
  end

(* Resolve the pack serving this request: [?grammar=NAME] selects from
   the registry (one atomic load — a concurrent hot-swap cannot give
   half-old, half-new state), absent/empty means the configured
   default.  Unknown names are a deterministic 404 listing the
   available grammars (the registry is kept sorted by name). *)
let resolve_grammar t req =
  let packs = Atomic.get t.registry in
  match Http.query_param req "grammar" with
  | Some g when g <> "" ->
    (match List.assoc_opt g packs with
     | Some pack -> Ok pack
     | None ->
       Error
         (Printf.sprintf "unknown grammar %S; available: %s" g
            (String.concat ", " (List.map fst packs))))
  | _ ->
    let dflt = t.config.extractor.Extractor.Config.grammar in
    (* A grammar-dir file with the default's name shadows the built-in
       for unqualified requests too, so NAME and ?grammar=NAME always
       agree on which pack runs. *)
    (match List.assoc_opt dflt.Engine.name packs with
     | Some pack -> Ok pack
     | None -> Ok dflt)

let handle_extract t sh ~scratch fd req t0 ~id =
  match budget_of_query t.config req with
  | Error msg ->
    finish t sh ~scratch fd req ~t0 ~id ~status:400
      ~headers:[ ("x-wqi-trace-id", id) ]
      (json_error msg)
  | Ok budget ->
    (match resolve_grammar t req with
     | Error msg ->
       finish t sh ~scratch fd req ~t0 ~id ~status:404
         ~headers:[ ("x-wqi-trace-id", id) ]
         (json_error msg)
     | Ok pack ->
       let grammar = pack.Engine.name in
       let name =
         match Http.query_param req "name" with
         | Some n when n <> "" -> n
         | _ -> "request"
       in
       (* The grammar identity (name and version) is part of the cache
          key: the same HTML under two grammars — or two versions of
          one grammar, e.g. across a hot reload — never shares an
          entry.  The canonical spec renderer lives next to the key so
          the cache, the store and the batch tools agree byte for
          byte. *)
       let spec =
         Key.spec ~grammar_name:pack.Engine.name
           ~grammar_version:pack.Engine.version ~name budget
       in
       let ckey =
         if Option.is_some sh.s_cache || Option.is_some t.store then
           Some (Cache.key ~html:req.Http.body ~spec)
         else None
       in
       (* Single-flight retry loop: a follower woken without a value
          (leader shed or failed) re-checks the cache and competes to
          lead; the attempt bound is a backstop, after which the request
          extracts on its own rather than loop. *)
       let rec attempt n =
         let cached =
           match (sh.s_cache, ckey) with
           | Some cache, Some k -> Cache.find cache k
           | _ -> None
         in
         match cached with
         | Some stored -> respond_hit t sh ~scratch fd req ~t0 ~id ~grammar stored
         | None ->
           (match (sh.s_cache, ckey) with
            | Some cache, Some k when n < 8 ->
              (match Cache.begin_flight cache k with
               | Cache.Follower (Some stored) ->
                 respond_hit t sh ~scratch fd req ~t0 ~id ~grammar stored
               | Cache.Follower None -> attempt (n + 1)
               | Cache.Leader ->
                 run_extraction t sh ~scratch fd req ~t0 ~id ~budget ~pack ~name
                   ~publish:(fun v -> Cache.end_flight cache k v)
                   ckey)
            | _ ->
              run_extraction t sh ~scratch fd req ~t0 ~id ~budget ~pack ~name
                ~publish:(fun _ -> ())
                ckey)
       in
       attempt 0)

(* ------------------------------------------------------------------ *)
(* Metrics: merge-on-scrape                                           *)
(* ------------------------------------------------------------------ *)

let mode_name = function `Reuseport -> "reuseport" | `Dispatch -> "dispatch"

let pending_conns t =
  match t.mode with
  | `Reuseport -> 0
  | `Dispatch ->
    Array.fold_left
      (fun acc sh ->
         Mutex.lock sh.s_mutex;
         let n = Queue.length sh.s_pending in
         Mutex.unlock sh.s_mutex;
         acc + n)
      0 t.shards

let metrics_body t =
  (* One snapshot per domain arena (each under its own mutex, briefly),
     then a lock-free merge: the scrape pays the coordination cost, the
     request path pays none. *)
  let snaps = Array.map (fun sh -> Telemetry.snapshot sh.s_telemetry) t.shards in
  let merged = Telemetry.merge (Array.to_list snaps) in
  let cache_series =
    if Array.for_all (fun sh -> sh.s_cache = None) t.shards then []
    else begin
      let zero =
        { Cache.hits = 0; misses = 0; evictions = 0; expirations = 0;
          insertions = 0; coalesced = 0; entries = 0; bytes = 0; capacity = 0 }
      in
      let s =
        Array.fold_left
          (fun acc sh ->
             match sh.s_cache with
             | None -> acc
             | Some cache ->
               let s = Cache.stats cache in
               { Cache.hits = acc.Cache.hits + s.Cache.hits;
                 misses = acc.Cache.misses + s.Cache.misses;
                 evictions = acc.Cache.evictions + s.Cache.evictions;
                 expirations = acc.Cache.expirations + s.Cache.expirations;
                 insertions = acc.Cache.insertions + s.Cache.insertions;
                 coalesced = acc.Cache.coalesced + s.Cache.coalesced;
                 entries = acc.Cache.entries + s.Cache.entries;
                 bytes = acc.Cache.bytes + s.Cache.bytes;
                 capacity = acc.Cache.capacity + s.Cache.capacity })
          zero t.shards
      in
      [ ("wqi_cache_hits_total", "Result-cache hits.", `Counter,
         [ ("", float_of_int s.Cache.hits) ]);
        ("wqi_cache_misses_total", "Result-cache misses.", `Counter,
         [ ("", float_of_int s.Cache.misses) ]);
        ("wqi_cache_evictions_total",
         "Entries evicted to respect the byte bound.", `Counter,
         [ ("", float_of_int s.Cache.evictions) ]);
        ("wqi_cache_expirations_total", "Entries dropped by TTL.", `Counter,
         [ ("", float_of_int s.Cache.expirations) ]);
        ("wqi_cache_coalesced_total",
         "Cold misses answered by a single-flight leader.", `Counter,
         [ ("", float_of_int s.Cache.coalesced) ]);
        ("wqi_cache_entries", "Resident cache entries.", `Gauge,
         [ ("", float_of_int s.Cache.entries) ]);
        ("wqi_cache_bytes", "Resident cache bytes.", `Gauge,
         [ ("", float_of_int s.Cache.bytes) ]);
        ("wqi_cache_hit_ratio", "hits / (hits + misses).", `Gauge,
         [ ("", Cache.hit_ratio s) ]) ]
    end
  in
  let store_series =
    match t.store with
    | None -> []
    | Some store ->
      let s = Store.stats store in
      [ ("wqi_store_hits_total",
         "Requests answered from the persistent store.", `Counter,
         [ ("", float_of_int s.Store.hits) ]);
        ("wqi_store_misses_total",
         "Store probes that found no entry.", `Counter,
         [ ("", float_of_int s.Store.misses) ]);
        ("wqi_store_puts_total",
         "Extractions written behind to the persistent store.", `Counter,
         [ ("", float_of_int s.Store.puts) ]);
        ("wqi_store_entries", "Live entries in the persistent store.",
         `Gauge, [ ("", float_of_int s.Store.entries) ]);
        ("wqi_store_bytes", "Live value bytes in the persistent store.",
         `Gauge, [ ("", float_of_int s.Store.bytes) ]);
        ("wqi_store_orphaned_bytes",
         "Dead segment bytes (superseded, corrupt or unmanifested) \
          awaiting a segment rebuild.",
         `Gauge, [ ("", float_of_int s.Store.orphaned_bytes) ]) ]
  in
  (* Runtime health: minor heaps are per-domain, so allocation sums;
     the major heap and its collection count are runtime-global in
     OCaml 5, so the freshest (largest) per-domain sample wins. *)
  let gc_series =
    let minor = ref 0. and major = ref 0 and heap = ref 0 in
    Array.iter
      (fun sh ->
         Mutex.lock sh.s_mutex;
         minor := !minor +. sh.s_gc_minor_words;
         if sh.s_gc_major > !major then major := sh.s_gc_major;
         if sh.s_gc_heap_bytes > !heap then heap := sh.s_gc_heap_bytes;
         Mutex.unlock sh.s_mutex)
      t.shards;
    [ ("wqi_gc_minor_words_total",
       "Minor-heap words allocated, summed across domain samples.",
       `Counter, [ ("", !minor) ]);
      ("wqi_gc_major_collections_total",
       "Major GC cycles completed (runtime-wide).", `Counter,
       [ ("", float_of_int !major) ]);
      ("wqi_gc_heap_bytes", "Major heap size in bytes (shared).", `Gauge,
       [ ("", float_of_int !heap) ]) ]
  in
  let domain_rows =
    Array.to_list
      (Array.mapi
         (fun i sn ->
            (Printf.sprintf "domain=\"%d\"" i,
             float_of_int (Telemetry.requests sn)))
         snaps)
  in
  let inflight = Atomic.get t.inflight in
  let packs = Atomic.get t.registry in
  let grammar_rows =
    List.map
      (fun (name, pack) ->
         (Printf.sprintf "name=\"%s\",version=\"%s\"" name
            pack.Engine.version,
          1.))
      packs
  in
  (* The historical code-only wqi_requests_total contract holds while a
     single grammar is loaded; the grammar label appears only once
     there is more than one grammar to tell apart. *)
  Telemetry.render_snapshot ~grammar_label:(List.length packs > 1) merged
    ~extra:
      (cache_series @ store_series @ gc_series
       @ [ ("wqi_grammar_info",
            "Loaded grammars, by name and version; value is always 1.",
            `Gauge, grammar_rows);
           ("wqi_domain_requests_total",
            "Requests served, by owning domain (merge-on-scrape).",
            `Counter, domain_rows);
           ("wqi_pool_queue_depth",
            "Accepted connections waiting for a domain (dispatch mode).",
            `Gauge, [ ("", float_of_int (pending_conns t)) ]);
           ("wqi_pool_inflight", "Extractions executing across domains.",
            `Gauge, [ ("", float_of_int inflight) ]);
           ("wqi_inflight_requests",
            "Admitted extract requests currently running.", `Gauge,
            [ ("", float_of_int inflight) ]);
           ("wqi_pool_jobs", "Serving domains (one accept loop each).",
            `Gauge, [ ("", float_of_int (Array.length t.shards)) ]);
           ("wqi_pool_peak_inflight",
            "High-water mark of concurrent extractions.", `Gauge,
            [ ("", float_of_int (Atomic.get t.peak_inflight)) ]);
           ("wqi_accept_mode_info",
            "Accept architecture in use; value is always 1.", `Gauge,
            [ (Printf.sprintf "mode=\"%s\"" (mode_name t.mode), 1.) ]) ])

(* Returns whether the connection may be kept alive. *)
let handle_request t sh ~scratch fd req =
  let t0 = Budget.now_s () in
  let id = fresh_id t in
  (match (req.Http.meth, req.Http.path) with
   | "GET", "/healthz" ->
     if draining t then
       finish t sh ~scratch fd req ~t0 ~id ~status:503
         ~content_type:"text/plain" "draining\n"
     else
       finish t sh ~scratch fd req ~t0 ~id ~status:200
         ~content_type:"text/plain" "ok\n"
   | "GET", "/metrics" ->
     (* The scraped shard's own GC sample is refreshed here (we are on
        its domain); the others were refreshed by their accept ticks. *)
     sample_gc sh;
     finish t sh ~scratch fd req ~t0 ~id ~status:200
       ~content_type:"text/plain; version=0.0.4" (metrics_body t)
   | "POST", "/extract" ->
     if draining t then
       finish t sh ~scratch fd req ~t0 ~id ~status:503
         ~headers:[ ("retry-after", "1") ]
         (json_error "draining")
     else handle_extract t sh ~scratch fd req t0 ~id
   | ("GET" | "HEAD"), "/extract" ->
     finish t sh ~scratch fd req ~t0 ~id ~status:405
       ~headers:[ ("allow", "POST") ]
       (json_error "use POST")
   | _ -> finish t sh ~scratch fd req ~t0 ~id ~status:404 (json_error "not found"));
  req.Http.keep_alive

(* ------------------------------------------------------------------ *)
(* Connection handlers                                                *)
(* ------------------------------------------------------------------ *)

let conn_finished sh token =
  Mutex.lock sh.s_mutex;
  (match Hashtbl.find_opt sh.s_live token with
   | Some h ->
     Hashtbl.remove sh.s_live token;
     (* Move our Thread.t to the zombie list so the accept loop (or
        the drain) can [Thread.join] it — handlers are never
        fire-and-forgotten. *)
     (match h.h_thread with
      | Some th -> sh.s_zombies <- th :: sh.s_zombies
      | None -> ())  (* registration in flight; the accept loop zombies it *)
   | None -> ());
  Mutex.unlock sh.s_mutex

let handle_conn t sh token fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout_s
   with Unix.Unix_error _ -> ());
  let c = Http.conn fd in
  let scratch = Buffer.create 4096 in
  let rec loop () =
    if not (draining t) then
      match Http.read_request c ~max_body:t.config.max_body with
      | None -> ()
      | exception Http.Malformed msg ->
        let t0 = Budget.now_s () in
        respond ~scratch fd ~status:400 ~headers:[ ("connection", "close") ]
          (json_error msg);
        observe sh ~code:400 t0
      | exception Http.Too_large msg ->
        let t0 = Budget.now_s () in
        respond ~scratch fd ~status:413 ~headers:[ ("connection", "close") ]
          (json_error msg);
        observe sh ~code:413 t0
      | exception
          Unix.Unix_error
            ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET | EPIPE), _, _) ->
        ()  (* idle timeout or peer reset: just close *)
      | Some req -> if handle_request t sh ~scratch fd req then loop ()
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  conn_finished sh token

(* Register, spawn and track one handler.  Only the domain's own loop
   calls this, so registration cannot race the drain (which runs on
   the same thread, after the loop exits). *)
let register_conn t sh fd =
  (* Dispatch-mode domains block on their inboxes between connections,
     so registration is their GC-sampling tick. *)
  sample_gc sh;
  Mutex.lock sh.s_mutex;
  let token = sh.s_token in
  sh.s_token <- token + 1;
  Hashtbl.replace sh.s_live token { h_fd = fd; h_thread = None };
  let finished = sh.s_zombies in
  sh.s_zombies <- [];
  Mutex.unlock sh.s_mutex;
  (* Joining finished handlers here keeps the registry and the thread
     table bounded by the number of *live* connections on a long-lived
     server. *)
  List.iter Thread.join finished;
  let th = Thread.create (fun () -> handle_conn t sh token fd) () in
  Mutex.lock sh.s_mutex;
  (match Hashtbl.find_opt sh.s_live token with
   | Some h -> h.h_thread <- Some th
   | None ->
     (* The handler already finished and removed itself before we could
        record its thread: zombie it ourselves. *)
     sh.s_zombies <- th :: sh.s_zombies);
  Mutex.unlock sh.s_mutex

(* ------------------------------------------------------------------ *)
(* Accept loops and lifecycle                                         *)
(* ------------------------------------------------------------------ *)

let accept_loop t sh listen_fd =
  let rec loop () =
    if not (draining t) then begin
      (* The short timeout bounds signal-to-drain latency: a handler
         set by [run] only executes once some thread re-enters OCaml
         code, and this select is that thread when the domain is
         idle.  The stop pipe is never read, so one write wakes every
         domain's select at once. *)
      (match Unix.select [ listen_fd; t.stop_r ] [] [] 0.25 with
       | exception Unix.Unix_error (EINTR, _, _) -> ()
       | ready, _, _ ->
         if (not (List.mem t.stop_r ready)) && List.mem listen_fd ready
         then (
           match Unix.accept ~cloexec:true listen_fd with
           | exception
               Unix.Unix_error
                 ((EAGAIN | EWOULDBLOCK | ECONNABORTED | EINTR), _, _) ->
             ()
           | fd, _ -> register_conn t sh fd));
      (* Every accept loop ticks the reload flag; Atomic.exchange makes
         exactly one of them perform the swap.  The tick also refreshes
         this domain's GC sample (at most every 0.25 s when idle). *)
      sample_gc sh;
      maybe_reload t;
      loop ()
    end
  in
  loop ()

(* Dispatch-mode inbox: the domain waits for the dispatcher to queue
   accepted sockets on its shard. *)
let inbox_loop t sh =
  let rec loop () =
    Mutex.lock sh.s_mutex;
    while Queue.is_empty sh.s_pending && not (draining t) do
      Condition.wait sh.s_cond sh.s_mutex
    done;
    let next = Queue.take_opt sh.s_pending in
    Mutex.unlock sh.s_mutex;
    match next with
    | Some fd ->
      register_conn t sh fd;
      loop ()
    | None -> ()  (* draining and the inbox is empty *)
  in
  loop ()

(* Drain one shard: wait for its live handlers to finish (they stop at
   their next request boundary or receive timeout), deadline-kill the
   stragglers by shutting their sockets down, then join every handler
   thread so none outlives the domain. *)
let drain_shard t sh =
  let deadline = Budget.now_s () +. t.config.drain_grace_s in
  let kicked = ref false in
  let rec wait_live () =
    Mutex.lock sh.s_mutex;
    let live = Hashtbl.length sh.s_live in
    if live = 0 then Mutex.unlock sh.s_mutex
    else begin
      if (not !kicked) && Budget.now_s () > deadline then begin
        kicked := true;
        Hashtbl.iter
          (fun _ h ->
             try Unix.shutdown h.h_fd Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ())
          sh.s_live
      end;
      Mutex.unlock sh.s_mutex;
      (* Condition has no timed wait; this loop only runs at shutdown,
         so a coarse poll is fine. *)
      Thread.delay 0.02;
      wait_live ()
    end
  in
  wait_live ();
  Mutex.lock sh.s_mutex;
  let finished = sh.s_zombies in
  sh.s_zombies <- [];
  Mutex.unlock sh.s_mutex;
  List.iter Thread.join finished

let domain_main t i =
  let sh = t.shards.(i) in
  sample_gc sh;
  (match (t.mode, sh.s_listen) with
   | `Reuseport, Some fd -> accept_loop t sh fd
   | `Reuseport, None -> ()  (* unreachable by construction *)
   | `Dispatch, _ -> inbox_loop t sh);
  drain_shard t sh

(* The fallback for platforms without SO_REUSEPORT: one thread accepts
   and deals sockets round-robin to the domain inboxes.  Connections
   (not requests) are the unit of dispatch, so a request still never
   crosses a domain boundary once its connection lands. *)
let dispatcher_loop t listen_fd =
  let n = Array.length t.shards in
  let next = ref 0 in
  let rec loop () =
    if not (draining t) then begin
      (match Unix.select [ listen_fd; t.stop_r ] [] [] 0.25 with
       | exception Unix.Unix_error (EINTR, _, _) -> ()
       | ready, _, _ ->
         if (not (List.mem t.stop_r ready)) && List.mem listen_fd ready
         then (
           match Unix.accept ~cloexec:true listen_fd with
           | exception
               Unix.Unix_error
                 ((EAGAIN | EWOULDBLOCK | ECONNABORTED | EINTR), _, _) ->
             ()
           | fd, _ ->
             let sh = t.shards.(!next mod n) in
             next := !next + 1;
             Mutex.lock sh.s_mutex;
             Queue.push fd sh.s_pending;
             Condition.signal sh.s_cond;
             Mutex.unlock sh.s_mutex));
      (* In dispatch mode the domains block on their inboxes, so the
         dispatcher's select tick is the reload heartbeat. *)
      maybe_reload t;
      loop ()
    end
  in
  loop ();
  (* Wake every inbox so the domains notice the drain even when no
     further connection arrives. *)
  Array.iter
    (fun sh ->
       Mutex.lock sh.s_mutex;
       Condition.broadcast sh.s_cond;
       Mutex.unlock sh.s_mutex)
    t.shards

(* ------------------------------------------------------------------ *)
(* Startup                                                            *)
(* ------------------------------------------------------------------ *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ ->
    (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
     with Not_found ->
       invalid_arg (Printf.sprintf "Serve.start: unknown host %S" host))

let make_listener ~reuseport addr port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    if reuseport then Unix.setsockopt fd Unix.SO_REUSEPORT true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 128;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let port_of fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> 0

let close_all fds =
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    fds

(* Bind the accept sockets: one per domain under SO_REUSEPORT (the
   kernel then load-balances new connections across domains), or a
   single socket plus the fd-passing dispatcher when the option is
   unavailable (or dispatch is forced). *)
let bind_listeners config ~jobs addr =
  let reuseport_listeners () =
    let first = make_listener ~reuseport:true addr config.port in
    let port = port_of first in
    let rec rest acc k =
      if k = 0 then List.rev acc
      else
        match make_listener ~reuseport:true addr port with
        | fd -> rest (fd :: acc) (k - 1)
        | exception e ->
          close_all (first :: acc);
          raise e
    in
    (first :: rest [] (jobs - 1), port)
  in
  match config.accept_mode with
  | `Dispatch ->
    let fd = make_listener ~reuseport:false addr config.port in
    (`Dispatch, [], Some fd, port_of fd)
  | `Reuseport ->
    let fds, port = reuseport_listeners () in
    (`Reuseport, fds, None, port)
  | `Auto ->
    (match reuseport_listeners () with
     | fds, port -> (`Reuseport, fds, None, port)
     | exception
         Unix.Unix_error
           ((ENOPROTOOPT | EINVAL | EOPNOTSUPP | EPERM), _, _) ->
       let fd = make_listener ~reuseport:false addr config.port in
       (`Dispatch, [], Some fd, port_of fd))

let start config =
  (* Load the grammar registry before binding any socket: a server that
     cannot serve its configured grammars must not come up at all. *)
  let registry =
    match build_registry config with
    | Ok packs -> packs
    | Error msg -> invalid_arg ("Serve.start: " ^ msg)
  in
  let addr = resolve_host config.host in
  let jobs = jobs_of config in
  let mode, listeners, dispatch_listen, bound_port =
    bind_listeners config ~jobs addr
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_w;
  (match config.trace_dir with
   | Some dir when not (Sys.file_exists dir) ->
     (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
   | _ -> ());
  let access_out =
    match config.access_log with
    | None -> None
    | Some "-" -> Some stderr
    | Some path ->
      Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
  in
  (* Request ids must be unique across restarts writing into the same
     trace dir / log, so seed them from process identity and start
     time. *)
  let req_seed =
    Printf.sprintf "%04x%04x"
      (Unix.getpid () land 0xffff)
      (int_of_float (Unix.gettimeofday ()) land 0xffff)
  in
  (* Each domain owns an equal slice of the configured cache bytes, so
     the process-wide byte bound is unchanged by the domain count. *)
  let shard_cache_config =
    Option.map
      (fun (c : Cache.config) ->
         { c with Cache.max_bytes = max 1 (c.Cache.max_bytes / jobs) })
      config.cache
  in
  let listeners = Array.of_list listeners in
  let shards =
    Array.init jobs (fun i ->
        { s_index = i;
          s_listen =
            (if i < Array.length listeners then Some listeners.(i) else None);
          s_cache = Option.map Cache.create shard_cache_config;
          s_telemetry = Telemetry.create ~version ();
          s_mutex = Mutex.create ();
          s_cond = Condition.create ();
          s_live = Hashtbl.create 16;
          s_zombies = [];
          s_token = 0;
          s_pending = Queue.create ();
          s_gc_minor_words = 0.;
          s_gc_major = 0;
          s_gc_heap_bytes = 0;
          s_q_seen = 0;
          s_q_worst = [] })
  in
  (* Open the store before serving: replaying the manifest up front
     means the first request already sees the warm tier, and an
     unopenable store directory fails the start like a bad grammar. *)
  let store = Option.map Store.open_ config.store in
  let t =
    { config;
      bound_port;
      mode;
      registry = Atomic.make registry;
      reload_flag = Atomic.make false;
      store;
      shards;
      dispatch_listen;
      inflight = Atomic.make 0;
      peak_inflight = Atomic.make 0;
      req_seed;
      req_counter = Atomic.make 0;
      sample_counter = Atomic.make 0;
      access_out;
      log_mutex = Mutex.create ();
      stop_r;
      stop_w;
      draining = Atomic.make false;
      dispatcher = None;
      domains = None }
  in
  t.domains <- Some (Group.spawn ~jobs (fun i -> domain_main t i));
  (match (mode, dispatch_listen) with
   | `Dispatch, Some fd ->
     t.dispatcher <- Some (Thread.create (fun () -> dispatcher_loop t fd) ())
   | _ -> ());
  t

let stop t =
  if not (Atomic.exchange t.draining true) then
    (* Wake every accept loop without waiting for its select timeout.
       The byte is never read back, so the level-triggered select in
       each domain sees the pipe readable from now on. *)
    try ignore (Unix.write_substring t.stop_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (match t.dispatcher with
   | Some thread -> Thread.join thread
   | None -> ());
  t.dispatcher <- None;
  (* Each domain drains its own handlers and joins them; joining the
     group therefore implies every connection is finished. *)
  (match t.domains with
   | Some g -> Group.join g
   | None -> ());
  t.domains <- None;
  (match t.access_out with
   | Some oc when oc != stderr -> close_out_noerr oc
   | _ -> ());
  (* Every handler is joined by now, so no put can race the close; the
     close compacts the manifest for the next process. *)
  (match t.store with
   | Some store -> (try Store.close store with Sys_error _ -> ())
   | None -> ());
  let listen_fds =
    Array.to_list (Array.map (fun sh -> sh.s_listen) t.shards)
    |> List.filter_map Fun.id
  in
  let extra = match t.dispatch_listen with Some fd -> [ fd ] | None -> [] in
  close_all (listen_fds @ extra @ [ t.stop_r; t.stop_w ])

let run ?on_listen config =
  let t = start config in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let on_stop_signal _ = stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_stop_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_stop_signal);
  (* SIGHUP requests a grammar-dir re-scan; the swap itself happens on
     a serving thread's next tick, never inside the signal handler. *)
  Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> request_reload t));
  (match on_listen with Some f -> f t | None -> ());
  wait t

let accept_mode_name t = mode_name t.mode

let domain_count t = Array.length t.shards
