module Pool = Wqi_parallel.Pool
module Extractor = Wqi_core.Extractor
module Budget = Wqi_budget.Budget
module Export = Wqi_model.Export
module Trace = Wqi_obs.Trace

let version = "1.0.0"

type config = {
  host : string;
  port : int;
  jobs : int option;
  max_inflight : int;
  max_body : int;
  cache : Cache.config option;
  extractor : Extractor.Config.t;
  cap_budget : Budget.t;
  idle_timeout_s : float;
  trace_sample : int;
  trace_dir : string option;
  slow_ms : float option;
  access_log : string option;
}

let default_config =
  { host = "127.0.0.1";
    port = 8080;
    jobs = None;
    max_inflight = 4 * Domain.recommended_domain_count ();
    max_body = 4 * 1024 * 1024;
    cache = Some Cache.default_config;
    extractor = Extractor.Config.default;
    cap_budget = Budget.unlimited;
    idle_timeout_s = 5.;
    trace_sample = 0;
    trace_dir = None;
    slow_ms = None;
    access_log = None }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  pool : Pool.t;
  cache : Cache.t option;
  telemetry : Telemetry.t;
  req_seed : string;          (* per-process prefix of request ids *)
  req_counter : int Atomic.t; (* request-id sequence *)
  sample_counter : int Atomic.t;  (* extract requests seen, for --trace-sample *)
  access_out : out_channel option;  (* structured access log sink *)
  log_mutex : Mutex.t;        (* one access-log line at a time *)
  stop_r : Unix.file_descr;  (* self-pipe: wakes the accept loop *)
  stop_w : Unix.file_descr;
  draining : bool Atomic.t;
  mutex : Mutex.t;            (* guards the three fields below *)
  cond : Condition.t;
  mutable conns : int;        (* live connection threads *)
  mutable extract_inflight : int;  (* admitted extractions *)
  mutable accept_thread : Thread.t option;
}

let draining t = Atomic.get t.draining

let port t = t.bound_port

(* ------------------------------------------------------------------ *)
(* Budget-override parsing                                            *)
(* ------------------------------------------------------------------ *)

(* Effective per-request budget: the request parameter if present,
   otherwise the server default — in both cases never looser than the
   server's cap for that field (an absent parameter cannot escape a
   cap either). *)
let merge_field ~request ~dflt ~cap =
  let chosen = match request with Some _ -> request | None -> dflt in
  match cap with
  | None -> chosen
  | Some c ->
    (match chosen with
     | Some v -> Some (min (max v 0) c)
     | None -> Some c)

let budget_of_query config req =
  let bad = ref None in
  let param name =
    match Http.query_param req name with
    | None -> None
    | Some raw ->
      (match int_of_string_opt raw with
       | Some v -> Some (max v 0)
       | None ->
         bad := Some (Printf.sprintf "%s: expected an integer, got %S" name raw);
         None)
  in
  let deadline_ms = param "deadline_ms" in
  let max_html_nodes = param "max_html_nodes" in
  let max_boxes = param "max_boxes" in
  let max_tokens = param "max_tokens" in
  let max_instances = param "max_instances" in
  let max_rounds = param "max_rounds" in
  match !bad with
  | Some msg -> Error msg
  | None ->
    let dflt = config.extractor.Extractor.Config.budget in
    let cap = config.cap_budget in
    Ok
      { Budget.deadline_ms =
          merge_field ~request:deadline_ms ~dflt:dflt.Budget.deadline_ms
            ~cap:cap.Budget.deadline_ms;
        max_html_nodes =
          merge_field ~request:max_html_nodes ~dflt:dflt.Budget.max_html_nodes
            ~cap:cap.Budget.max_html_nodes;
        max_boxes =
          merge_field ~request:max_boxes ~dflt:dflt.Budget.max_boxes
            ~cap:cap.Budget.max_boxes;
        max_tokens =
          merge_field ~request:max_tokens ~dflt:dflt.Budget.max_tokens
            ~cap:cap.Budget.max_tokens;
        max_instances =
          merge_field ~request:max_instances ~dflt:dflt.Budget.max_instances
            ~cap:cap.Budget.max_instances;
        max_rounds =
          merge_field ~request:max_rounds ~dflt:dflt.Budget.max_rounds
            ~cap:cap.Budget.max_rounds }

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

let json_error msg =
  Export.obj [ ("error", Export.string msg) ]

let respond fd ~status ?headers ?content_type body =
  try Http.write_response fd ~status ?headers ?content_type body
  with Unix.Unix_error _ -> ()  (* peer went away; nothing to salvage *)

let observe t ~code ?outcome ?cache_hit ?stats t0 =
  Telemetry.observe_request t.telemetry ~code ?outcome ?cache_hit ?stats
    ~seconds:(Budget.now_s () -. t0) ()

let outcome_tag = function
  | Budget.Complete -> `Complete
  | Budget.Degraded _ -> `Degraded
  | Budget.Failed _ -> `Failed

let outcome_name = function
  | `Complete -> "complete"
  | `Degraded -> "degraded"
  | `Failed -> "failed"

(* ------------------------------------------------------------------ *)
(* Request-level observability                                        *)
(* ------------------------------------------------------------------ *)

let fresh_id t =
  Printf.sprintf "%s-%06d" t.req_seed (Atomic.fetch_and_add t.req_counter 1)

let iso8601 now =
  let tm = Unix.gmtime now in
  let ms = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms

(* One JSON object per request, flushed per line so `tail -f` and crash
   post-mortems both see complete records. *)
let log_access t ~meth ~path ~status ~bytes ~seconds ~cache ~outcome ~id =
  match t.access_out with
  | None -> ()
  | Some oc ->
    let line =
      Printf.sprintf
        "{\"ts\":%s,\"method\":%s,\"path\":%s,\"status\":%d,\"bytes\":%d,\
         \"ms\":%.3f,\"cache\":%s,\"outcome\":%s,\"id\":%s}"
        (Export.string (iso8601 (Unix.gettimeofday ())))
        (Export.string meth) (Export.string path) status bytes
        (1000. *. seconds) (Export.string cache) (Export.string outcome)
        (Export.string id)
    in
    Mutex.lock t.log_mutex;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock t.log_mutex

let log_slow t ~meth ~path ~status ~seconds ~id =
  match t.config.slow_ms with
  | Some threshold when 1000. *. seconds >= threshold ->
    Printf.eprintf "wqi_serve: slow request %s %s -> %d %.1f ms id=%s\n%!" meth
      path status (1000. *. seconds) id
  | _ -> ()

(* Respond and account in one move: telemetry (status, outcome, latency,
   per-stage histograms), the structured access log, and the
   slow-request log all see exactly the bytes that went on the wire. *)
let finish t fd req ~t0 ~id ~status ?headers ?content_type ?outcome ?cache_hit
    ?stats ?stage_seconds ?(cache = "-") body =
  respond fd ~status ?headers ?content_type body;
  let seconds = Budget.now_s () -. t0 in
  Telemetry.observe_request t.telemetry ~code:status ?outcome ?cache_hit ?stats
    ?stage_seconds ~seconds ();
  let meth = req.Http.meth and path = req.Http.path in
  let outcome =
    match outcome with Some o -> outcome_name o | None -> "-"
  in
  log_access t ~meth ~path ~status ~bytes:(String.length body) ~seconds ~cache
    ~outcome ~id;
  log_slow t ~meth ~path ~status ~seconds ~id

let stage_seconds_of (d : Extractor.diagnostics) =
  [ ("html", d.Extractor.html_seconds);
    ("layout", d.Extractor.layout_seconds);
    ("classify", d.Extractor.classify_seconds);
    ("parse", d.Extractor.parse_seconds);
    ("merge", d.Extractor.merge_seconds) ]

(* Tracing is opt-in twice over: the server must run with --trace-dir,
   and the request must either carry [x-wqi-trace: 1] or land on the
   --trace-sample grid.  Everything else runs with [?trace:None] — the
   untraced hot path. *)
let want_trace t req =
  match t.config.trace_dir with
  | None -> None
  | Some dir ->
    let on_demand = Http.header req "x-wqi-trace" = Some "1" in
    let sampled =
      t.config.trace_sample > 0
      && Atomic.fetch_and_add t.sample_counter 1 mod t.config.trace_sample = 0
    in
    if on_demand || sampled then Some dir else None

let write_trace dir ~id trace =
  let path = Filename.concat dir (id ^ ".json") in
  match open_out_bin path with
  | exception Sys_error _ -> ()  (* tracing must never fail a request *)
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
         output_string oc (Trace.to_chrome_json trace);
         output_char oc '\n')

(* Cached values carry their outcome in a one-byte prefix so a hit can
   report the original outcome without re-parsing the JSON. *)
let encode_cached outcome body =
  (match outcome with `Complete -> "C" | `Degraded -> "D" | `Failed -> assert false)
  ^ body

let decode_cached s =
  if s = "" then (`Complete, s)
  else
    match s.[0] with
    | 'D' -> (`Degraded, String.sub s 1 (String.length s - 1))
    | _ -> (`Complete, String.sub s 1 (String.length s - 1))

let admit t =
  Mutex.lock t.mutex;
  let admitted = t.extract_inflight < t.config.max_inflight in
  if admitted then t.extract_inflight <- t.extract_inflight + 1;
  Mutex.unlock t.mutex;
  admitted

let release t =
  Mutex.lock t.mutex;
  t.extract_inflight <- t.extract_inflight - 1;
  Mutex.unlock t.mutex

let handle_extract t fd req t0 ~id =
  match budget_of_query t.config req with
  | Error msg ->
    finish t fd req ~t0 ~id ~status:400
      ~headers:[ ("x-wqi-trace-id", id) ]
      (json_error msg)
  | Ok budget ->
    let name =
      match Http.query_param req "name" with
      | Some n when n <> "" -> n
      | _ -> "request"
    in
    let spec =
      Printf.sprintf "v%d|name=%s|budget=%s" Export.extraction_version name
        (Export.budget budget)
    in
    let ckey =
      Option.map (fun _ -> Cache.key ~html:req.Http.body ~spec) t.cache
    in
    let cached =
      match (t.cache, ckey) with
      | Some cache, Some k -> Cache.find cache k
      | _ -> None
    in
    (match cached with
     | Some stored ->
       let outcome, body = decode_cached stored in
       finish t fd req ~t0 ~id ~status:200
         ~headers:
           [ ("x-wqi-outcome", outcome_name outcome);
             ("x-wqi-cache", "hit");
             ("x-wqi-trace-id", id) ]
         ~outcome ~cache_hit:true ~cache:"hit" body
     | None ->
       if not (admit t) then begin
         Telemetry.shed t.telemetry;
         finish t fd req ~t0 ~id ~status:503
           ~headers:[ ("retry-after", "1"); ("x-wqi-trace-id", id) ]
           ~cache:"shed"
           (json_error "server at capacity; retry shortly")
       end
       else
         Fun.protect ~finally:(fun () -> release t) @@ fun () ->
         let config =
           Extractor.Config.with_budget budget t.config.extractor
         in
         let tdir = want_trace t req in
         (* The trace rides into the pool closure: exactly one worker
            domain writes it, and this thread only reads it back after
            [await] — no concurrent access. *)
         let trace =
           match tdir with None -> None | Some _ -> Some (Trace.create ())
         in
         let fut =
           Pool.submit t.pool (fun () ->
               Extractor.run ?trace config (Extractor.Html req.Http.body))
         in
         let e = Pool.await fut in
         (match (trace, tdir) with
          | Some tr, Some dir -> write_trace dir ~id tr
          | _ -> ());
         let body = Extractor.export ~timings:false ~name e in
         let tag = outcome_tag e.Extractor.outcome in
         let status = match tag with `Failed -> 500 | _ -> 200 in
         (match (t.cache, ckey, tag) with
          | Some cache, Some k, (`Complete | `Degraded) ->
            Cache.add cache k (encode_cached tag body)
          | _ -> ());
         let cache = if Option.is_none t.cache then "off" else "miss" in
         finish t fd req ~t0 ~id ~status
           ~headers:
             [ ("x-wqi-outcome", outcome_name tag);
               ("x-wqi-cache", cache);
               ("x-wqi-trace-id", id) ]
           ~outcome:tag ~stats:e.Extractor.diagnostics.Extractor.parse_stats
           ~stage_seconds:(stage_seconds_of e.Extractor.diagnostics)
           ~cache body)

let metrics_body t =
  let cache_series =
    match t.cache with
    | None -> []
    | Some cache ->
      let s = Cache.stats cache in
      [ ("wqi_cache_hits_total", "Result-cache hits.", `Counter,
         float_of_int s.Cache.hits);
        ("wqi_cache_misses_total", "Result-cache misses.", `Counter,
         float_of_int s.Cache.misses);
        ("wqi_cache_evictions_total",
         "Entries evicted to respect the byte bound.", `Counter,
         float_of_int s.Cache.evictions);
        ("wqi_cache_expirations_total", "Entries dropped by TTL.", `Counter,
         float_of_int s.Cache.expirations);
        ("wqi_cache_entries", "Resident cache entries.", `Gauge,
         float_of_int s.Cache.entries);
        ("wqi_cache_bytes", "Resident cache bytes.", `Gauge,
         float_of_int s.Cache.bytes);
        ("wqi_cache_hit_ratio", "hits / (hits + misses).", `Gauge,
         Cache.hit_ratio s) ]
  in
  Mutex.lock t.mutex;
  let inflight = t.extract_inflight in
  Mutex.unlock t.mutex;
  Telemetry.render t.telemetry
    ~extra:
      (cache_series
       @ [ ("wqi_pool_queue_depth", "Tasks queued on the domain pool.",
            `Gauge, float_of_int (Pool.queue_depth t.pool));
           ("wqi_pool_inflight", "Tasks executing on the domain pool.",
            `Gauge, float_of_int (Pool.inflight t.pool));
           ("wqi_inflight_requests",
            "Admitted extract requests (queued or running).", `Gauge,
            float_of_int inflight);
           ("wqi_pool_jobs", "Worker-pool parallelism.", `Gauge,
            float_of_int (Pool.jobs t.pool));
           ("wqi_pool_peak_inflight",
            "High-water mark of tasks executing on the domain pool.",
            `Gauge, float_of_int (Pool.peak_inflight t.pool)) ])

(* Returns whether the connection may be kept alive. *)
let handle_request t fd req =
  let t0 = Budget.now_s () in
  let id = fresh_id t in
  (match (req.Http.meth, req.Http.path) with
   | "GET", "/healthz" ->
     if draining t then
       finish t fd req ~t0 ~id ~status:503 ~content_type:"text/plain"
         "draining\n"
     else
       finish t fd req ~t0 ~id ~status:200 ~content_type:"text/plain" "ok\n"
   | "GET", "/metrics" ->
     finish t fd req ~t0 ~id ~status:200
       ~content_type:"text/plain; version=0.0.4" (metrics_body t)
   | "POST", "/extract" ->
     if draining t then
       finish t fd req ~t0 ~id ~status:503
         ~headers:[ ("retry-after", "1") ]
         (json_error "draining")
     else handle_extract t fd req t0 ~id
   | ("GET" | "HEAD"), "/extract" ->
     finish t fd req ~t0 ~id ~status:405 ~headers:[ ("allow", "POST") ]
       (json_error "use POST")
   | _ -> finish t fd req ~t0 ~id ~status:404 (json_error "not found"));
  req.Http.keep_alive

let conn_finished t =
  Mutex.lock t.mutex;
  t.conns <- t.conns - 1;
  if t.conns = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let handle_conn t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout_s
   with Unix.Unix_error _ -> ());
  let c = Http.conn fd in
  let rec loop () =
    if not (draining t) then
      match Http.read_request c ~max_body:t.config.max_body with
      | None -> ()
      | exception Http.Malformed msg ->
        let t0 = Budget.now_s () in
        respond fd ~status:400 ~headers:[ ("connection", "close") ]
          (json_error msg);
        observe t ~code:400 t0
      | exception Http.Too_large msg ->
        let t0 = Budget.now_s () in
        respond fd ~status:413 ~headers:[ ("connection", "close") ]
          (json_error msg);
        observe t ~code:413 t0
      | exception
          Unix.Unix_error
            ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET | EPIPE), _, _) ->
        ()  (* idle timeout or peer reset: just close *)
      | Some req -> if handle_request t fd req then loop ()
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  conn_finished t

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                          *)
(* ------------------------------------------------------------------ *)

let accept_loop t =
  let rec loop () =
    if not (draining t) then begin
      (* The short timeout bounds signal-to-drain latency: a handler
         set by [run] only executes once some thread re-enters OCaml
         code, and this select is that thread when the server is
         idle. *)
      (match Unix.select [ t.listen_fd; t.stop_r ] [] [] 0.25 with
       | exception Unix.Unix_error (EINTR, _, _) -> ()
       | ready, _, _ ->
         if (not (List.mem t.stop_r ready)) && List.mem t.listen_fd ready
         then (
           match Unix.accept ~cloexec:true t.listen_fd with
           | exception
               Unix.Unix_error
                 ((EAGAIN | EWOULDBLOCK | ECONNABORTED | EINTR), _, _) ->
             ()
           | fd, _ ->
             Mutex.lock t.mutex;
             t.conns <- t.conns + 1;
             Mutex.unlock t.mutex;
             ignore (Thread.create (fun () -> handle_conn t fd) ())));
      loop ()
    end
  in
  loop ()

let start config =
  let addr =
    try Unix.inet_addr_of_string config.host
    with Failure _ ->
      (try (Unix.gethostbyname config.host).Unix.h_addr_list.(0)
       with Not_found ->
         invalid_arg (Printf.sprintf "Serve.start: unknown host %S" config.host))
  in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port));
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_w;
  (match config.trace_dir with
   | Some dir when not (Sys.file_exists dir) ->
     (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
   | _ -> ());
  let access_out =
    match config.access_log with
    | None -> None
    | Some "-" -> Some stderr
    | Some path ->
      Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
  in
  (* Request ids must be unique across restarts writing into the same
     trace dir / log, so seed them from process identity and start
     time. *)
  let req_seed =
    Printf.sprintf "%04x%04x"
      (Unix.getpid () land 0xffff)
      (int_of_float (Unix.gettimeofday ()) land 0xffff)
  in
  let t =
    { config;
      listen_fd;
      bound_port;
      pool = Pool.create ?jobs:config.jobs ();
      cache = Option.map (fun c -> Cache.create c) config.cache;
      telemetry = Telemetry.create ~version ();
      req_seed;
      req_counter = Atomic.make 0;
      sample_counter = Atomic.make 0;
      access_out;
      log_mutex = Mutex.create ();
      stop_r;
      stop_w;
      draining = Atomic.make false;
      mutex = Mutex.create ();
      cond = Condition.create ();
      conns = 0;
      extract_inflight = 0;
      accept_thread = None }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  if not (Atomic.exchange t.draining true) then
    (* Wake the accept loop without waiting for its select timeout. *)
    try ignore (Unix.write_substring t.stop_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (match t.accept_thread with
   | Some thread -> Thread.join thread
   | None -> ());
  t.accept_thread <- None;
  (* No new connections past this point; wait for the live ones.  They
     stop at their next request boundary (or their receive timeout). *)
  Mutex.lock t.mutex;
  while t.conns > 0 do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex;
  Pool.shutdown t.pool;
  (match t.access_out with
   | Some oc when oc != stderr -> close_out_noerr oc
   | _ -> ());
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.listen_fd; t.stop_r; t.stop_w ]

let run ?on_listen config =
  let t = start config in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let on_stop_signal _ = stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_stop_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_stop_signal);
  (match on_listen with Some f -> f t | None -> ());
  wait t
