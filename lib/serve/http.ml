exception Malformed of string
exception Too_large of string

let max_head_bytes = 32 * 1024

type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
  keep_alive : bool;
}

let header r name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name r.headers

let query_param r name = List.assoc_opt name r.query

(* ------------------------------------------------------------------ *)
(* Buffered reading                                                   *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (* consumed prefix of [0, len) *)
  mutable len : int;  (* valid bytes in [buf] *)
}

let conn fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

(* Refill returns false on EOF. *)
let refill c =
  if c.pos = c.len then begin
    c.pos <- 0;
    c.len <- 0
  end
  else if c.pos > 0 then begin
    Bytes.blit c.buf c.pos c.buf 0 (c.len - c.pos);
    c.len <- c.len - c.pos;
    c.pos <- 0
  end;
  if c.len = Bytes.length c.buf then true (* no room; caller bounds lines *)
  else begin
    let n = Unix.read c.fd c.buf c.len (Bytes.length c.buf - c.len) in
    if n = 0 then false
    else begin
      c.len <- c.len + n;
      true
    end
  end

(* One CRLF- (or bare-LF-) terminated line, without the terminator. *)
let read_line c ~budget =
  let line = Buffer.create 64 in
  let rec go () =
    if Buffer.length line > budget then raise (Too_large "header line");
    if c.pos = c.len && not (refill c) then
      if Buffer.length line = 0 then None else raise (Malformed "eof in line")
    else begin
      match Bytes.index_from_opt c.buf c.pos '\n' with
      | Some i when i < c.len ->
        Buffer.add_subbytes line c.buf c.pos (i - c.pos);
        c.pos <- i + 1;
        let s = Buffer.contents line in
        let s =
          if s <> "" && s.[String.length s - 1] = '\r' then
            String.sub s 0 (String.length s - 1)
          else s
        in
        Some s
      | _ ->
        Buffer.add_subbytes line c.buf c.pos (c.len - c.pos);
        c.pos <- c.len;
        go ()
    end
  in
  go ()

let read_exact c n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if c.pos < c.len then begin
      let take = min (n - !filled) (c.len - c.pos) in
      Bytes.blit c.buf c.pos out !filled take;
      c.pos <- c.pos + take;
      filled := !filled + take
    end
    else if not (refill c) then raise (Malformed "eof in body")
  done;
  Bytes.unsafe_to_string out

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let hex_val = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Malformed "bad percent escape")

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
     | '%' ->
       if !i + 2 >= n then raise (Malformed "truncated percent escape");
       Buffer.add_char b
         (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
       i := !i + 2
     | '+' -> Buffer.add_char b ' '
     | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun pair ->
        if pair = "" then None
        else
          match String.index_opt pair '=' with
          | None -> Some (percent_decode pair, "")
          | Some i ->
            Some
              ( percent_decode (String.sub pair 0 i),
                percent_decode
                  (String.sub pair (i + 1) (String.length pair - i - 1)) ))

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> raise (Malformed "header without colon")
  | Some i ->
    let name = String.lowercase_ascii (String.sub line 0 i) in
    let value =
      String.trim (String.sub line (i + 1) (String.length line - i - 1))
    in
    if name = "" then raise (Malformed "empty header name");
    (name, value)

let read_request c ~max_body =
  match read_line c ~budget:max_head_bytes with
  | None -> None
  | Some request_line ->
    let meth, target, version =
      match String.split_on_char ' ' request_line with
      | [ m; t; v ] when m <> "" && t <> "" -> (String.uppercase_ascii m, t, v)
      | _ -> raise (Malformed "bad request line")
    in
    (match version with
     | "HTTP/1.1" | "HTTP/1.0" -> ()
     | _ -> raise (Malformed "unsupported HTTP version"));
    let headers = ref [] in
    let head_bytes = ref (String.length request_line) in
    let rec headers_loop () =
      match read_line c ~budget:max_head_bytes with
      | None -> raise (Malformed "eof in headers")
      | Some "" -> ()
      | Some line ->
        head_bytes := !head_bytes + String.length line;
        if !head_bytes > max_head_bytes then raise (Too_large "headers");
        headers := parse_header_line line :: !headers;
        headers_loop ()
    in
    headers_loop ();
    let headers = List.rev !headers in
    let find name = List.assoc_opt name headers in
    (match find "transfer-encoding" with
     | Some _ -> raise (Malformed "transfer-encoding not supported")
     | None -> ());
    let body =
      match find "content-length" with
      | None ->
        if meth = "POST" || meth = "PUT" then
          raise (Malformed "missing content-length")
        else ""
      | Some v ->
        let n =
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 -> n
          | _ -> raise (Malformed "bad content-length")
        in
        if n > max_body then raise (Too_large "body");
        read_exact c n
    in
    let path, query =
      match String.index_opt target '?' with
      | None -> (target, [])
      | Some i ->
        ( String.sub target 0 i,
          parse_query (String.sub target (i + 1) (String.length target - i - 1))
        )
    in
    let keep_alive =
      let conn_header =
        Option.map String.lowercase_ascii (find "connection")
      in
      match (version, conn_header) with
      | _, Some "close" -> false
      | "HTTP/1.0", Some "keep-alive" -> true
      | "HTTP/1.0", _ -> false
      | _, _ -> true
    in
    Some { meth; target; path; query; headers; body; keep_alive }

(* ------------------------------------------------------------------ *)
(* Responses                                                          *)
(* ------------------------------------------------------------------ *)

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let write_response ?scratch fd ~status ?(headers = [])
    ?(content_type = "application/json") body =
  (* A handler serving a keep-alive connection reuses one scratch
     buffer across responses instead of allocating per response. *)
  let b =
    match scratch with
    | Some b ->
      Buffer.clear b;
      b
    | None -> Buffer.create (String.length body + 256)
  in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_reason status));
  Buffer.add_string b (Printf.sprintf "content-type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "content-length: %d\r\n" (String.length body));
  List.iter
    (fun (name, value) ->
       Buffer.add_string b (Printf.sprintf "%s: %s\r\n" name value))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)
