(** Request-level observability for the extraction server: counters by
    HTTP status and extraction outcome, a fixed-bucket latency
    histogram, and aggregated parser guard/index counters, rendered in
    the Prometheus text exposition format.

    All mutation goes through one mutex — the counters are touched once
    per request, far from any hot path — so the registry is safe to
    share across handler threads and worker domains. *)

type t

val create : ?version:string -> unit -> t
(** [version] (default ["dev"]) is reported as the [version] label of
    the [wqi_build_info] gauge; creation time anchors
    [wqi_uptime_seconds]. *)

val observe_request :
  t ->
  code:int ->
  ?outcome:[ `Complete | `Degraded | `Failed ] ->
  ?cache_hit:bool ->
  ?stats:Wqi_parser.Engine.stats ->
  ?stage_seconds:(string * float) list ->
  seconds:float ->
  unit ->
  unit
(** Record one finished request: status code, wall time from request
    read to response ready, and — for requests that ran an extraction —
    its outcome, whether the cache answered it, and the parser
    counters.  [stage_seconds] feeds the per-stage latency histograms
    ([wqi_stage_seconds{stage=...}]); entries whose stage name is not
    one of html/layout/classify/parse/merge are ignored. *)

val shed : t -> unit
(** Record one load-shed request (also counted by [observe_request]
    under its 503 status; this counter isolates admission-control sheds
    from other 503s such as draining). *)

val render : t -> extra:(string * string * [ `Counter | `Gauge ] * float) list -> string
(** The exposition body.  [extra] appends caller-owned series —
    [(name, help, kind, value)] — used for pool depth, cache totals and
    inflight gauges whose live values the registry does not own. *)
