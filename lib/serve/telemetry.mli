(** Request-level observability for the extraction server: counters by
    HTTP status and extraction outcome, a fixed-bucket latency
    histogram, and aggregated parser guard/index counters, rendered in
    the Prometheus text exposition format.

    All mutation goes through one mutex — the counters are touched once
    per request, far from any hot path — so the registry is safe to
    share across handler threads and worker domains. *)

type t

val create : unit -> t

val observe_request :
  t ->
  code:int ->
  ?outcome:[ `Complete | `Degraded | `Failed ] ->
  ?cache_hit:bool ->
  ?stats:Wqi_parser.Engine.stats ->
  seconds:float ->
  unit ->
  unit
(** Record one finished request: status code, wall time from request
    read to response ready, and — for requests that ran an extraction —
    its outcome, whether the cache answered it, and the parser
    counters. *)

val shed : t -> unit
(** Record one load-shed request (also counted by [observe_request]
    under its 503 status; this counter isolates admission-control sheds
    from other 503s such as draining). *)

val render : t -> extra:(string * string * [ `Counter | `Gauge ] * float) list -> string
(** The exposition body.  [extra] appends caller-owned series —
    [(name, help, kind, value)] — used for pool depth, cache totals and
    inflight gauges whose live values the registry does not own. *)
