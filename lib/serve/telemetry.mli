(** Request-level observability for the extraction server: counters by
    HTTP status and extraction outcome, a fixed-bucket latency
    histogram, and aggregated parser guard/index counters, rendered in
    the Prometheus text exposition format.

    The shared-nothing server gives each serving domain its own arena
    ([t]): request-path mutation takes only that arena's mutex, which
    no other domain ever touches on its request path, so arenas never
    contend across cores.  [/metrics] is produced by merge-on-scrape:
    {!snapshot} copies each arena out (holding one arena mutex at a
    time, for microseconds), {!merge} folds the copies without any
    lock, and {!render_snapshot} renders the merged totals.  Merging is
    exact: counters and histogram buckets add, so the merged exposition
    over any partition of a request stream is identical to a single
    arena observing the whole stream (property-tested in
    [test/test_telemetry.ml]). *)

type t

val create : ?version:string -> unit -> t
(** [version] (default ["dev"]) is reported as the [version] label of
    the [wqi_build_info] gauge; creation time anchors
    [wqi_uptime_seconds]. *)

val observe_request :
  t ->
  code:int ->
  ?grammar:string ->
  ?outcome:[ `Complete | `Degraded | `Failed ] ->
  ?cache_hit:bool ->
  ?stats:Wqi_parser.Engine.stats ->
  ?stage_seconds:(string * float) list ->
  ?quality:float * float * int ->
  seconds:float ->
  unit ->
  unit
(** Record one finished request: status code, wall time from request
    read to response ready, and — for requests that ran an extraction —
    its outcome, whether the cache answered it, and the parser
    counters.  [grammar] (default [""], meaning "not attributed to a
    grammar") names the grammar that served an extract request; the
    dimension is kept per-arena and surfaces in the exposition only
    when rendering with [~grammar_label:true].  [stage_seconds] feeds
    the per-stage latency histograms ([wqi_stage_seconds{stage=...}]);
    entries whose stage name is not one of
    html/layout/classify/parse/merge are ignored.  [quality] — a
    [(score, coverage, conflicts)] triple from the extraction's
    [Wqi_quality] record — feeds the [wqi_quality_score] and
    [wqi_coverage_ratio] histograms (fixed [0.1 .. 1.0] buckets) and
    the [wqi_conflicts_total] counter; both histogram dimensions merge
    exactly like every other counter here. *)

val shed : t -> unit
(** Record one load-shed request (also counted by [observe_request]
    under its 503 status; this counter isolates admission-control sheds
    from other 503s such as draining). *)

(** {1 Merge-on-scrape} *)

type snapshot
(** An immutable copy of one arena's counters.  Snapshots are plain
    data: merging and rendering them takes no locks. *)

val snapshot : t -> snapshot
(** Copy the arena out under its mutex (held briefly; the request path
    never blocks behind a scrape for longer than one field copy). *)

val merge : snapshot list -> snapshot
(** Exact element-wise sum: status-code counters merge by code (sorted,
    deterministic), histogram buckets and sums add, the start time is
    the earliest (so merged uptime is the oldest domain's), the version
    is the first snapshot's.  Raises [Invalid_argument] on []. *)

val requests : snapshot -> int
(** Total requests the snapshot has observed, all status codes — the
    per-domain request count behind
    [wqi_domain_requests_total{domain=...}]. *)

val render_snapshot :
  ?grammar_label:bool ->
  snapshot ->
  extra:
    (string * string * [ `Counter | `Gauge ] * (string * float) list) list ->
  string
(** The exposition body for a (possibly merged) snapshot.
    [grammar_label] (default [false]) controls the [wqi_requests_total]
    label set: [false] renders the historical [code]-only contract
    (grammar counts folded together); [true] — what the server uses
    when more than one grammar is loaded — renders
    [code]×[grammar] rows, with [grammar=""] for requests not
    attributed to a grammar.  [extra] appends caller-owned series —
    [(name, help, kind, rows)], each row a [(labels, value)] sample
    where [labels] is either [""] (no labels) or a pre-rendered
    [name="value"] list — used for pool gauges, cache totals and
    per-domain request counters whose live values the registry does not
    own. *)

val render :
  ?grammar_label:bool ->
  t ->
  extra:
    (string * string * [ `Counter | `Gauge ] * (string * float) list) list ->
  string
(** [render t ~extra] = [render_snapshot (snapshot t) ~extra] — the
    single-arena exposition. *)
