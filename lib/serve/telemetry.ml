module Engine = Wqi_parser.Engine
module Budget = Wqi_budget.Budget

(* Upper bounds (seconds) of the latency histogram, +Inf implied. *)
let buckets =
  [| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0;
     2.5; 5.0 |]

(* Pipeline stages of the per-stage latency histograms, in pipeline
   order; must match the [Extractor.diagnostics] stage timings the
   server feeds in. *)
let stage_names = [| "html"; "layout"; "classify"; "parse"; "merge" |]

type t = {
  mutex : Mutex.t;
  version : string;
  start_s : float;  (* monotonic; uptime = now - start *)
  by_code : (int, int ref) Hashtbl.t;
  mutable complete : int;
  mutable degraded : int;
  mutable failed : int;
  mutable cache_answered : int;
  mutable shed : int;
  bucket_counts : int array;  (* non-cumulative; rendered cumulative *)
  mutable latency_sum : float;
  mutable latency_count : int;
  stage_bucket_counts : int array array;  (* per stage, non-cumulative *)
  stage_sums : float array;
  stage_counts : int array;
  mutable guards_tried : int;
  mutable guards_admitted : int;
  mutable index_probes : int;
  mutable index_pruned : int;
  mutable instances_created : int;
  mutable parses : int;
}

let create ?(version = "dev") () =
  { mutex = Mutex.create ();
    version;
    start_s = Budget.now_s ();
    by_code = Hashtbl.create 8;
    complete = 0;
    degraded = 0;
    failed = 0;
    cache_answered = 0;
    shed = 0;
    bucket_counts = Array.make (Array.length buckets + 1) 0;
    latency_sum = 0.;
    latency_count = 0;
    stage_bucket_counts =
      Array.init (Array.length stage_names) (fun _ ->
          Array.make (Array.length buckets + 1) 0);
    stage_sums = Array.make (Array.length stage_names) 0.;
    stage_counts = Array.make (Array.length stage_names) 0;
    guards_tried = 0;
    guards_admitted = 0;
    index_probes = 0;
    index_pruned = 0;
    instances_created = 0;
    parses = 0 }

let bucket_index seconds =
  let rec go i =
    if i >= Array.length buckets then i
    else if seconds <= buckets.(i) then i
    else go (i + 1)
  in
  go 0

let stage_index name =
  let rec go i =
    if i >= Array.length stage_names then None
    else if stage_names.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let observe_request t ~code ?outcome ?(cache_hit = false) ?stats
    ?(stage_seconds = []) ~seconds () =
  Mutex.lock t.mutex;
  List.iter
    (fun (name, s) ->
       match stage_index name with
       | None -> ()
       | Some i ->
         let bi = bucket_index s in
         t.stage_bucket_counts.(i).(bi) <- t.stage_bucket_counts.(i).(bi) + 1;
         t.stage_sums.(i) <- t.stage_sums.(i) +. s;
         t.stage_counts.(i) <- t.stage_counts.(i) + 1)
    stage_seconds;
  (match Hashtbl.find_opt t.by_code code with
   | Some r -> incr r
   | None -> Hashtbl.replace t.by_code code (ref 1));
  (match outcome with
   | Some `Complete -> t.complete <- t.complete + 1
   | Some `Degraded -> t.degraded <- t.degraded + 1
   | Some `Failed -> t.failed <- t.failed + 1
   | None -> ());
  if cache_hit then t.cache_answered <- t.cache_answered + 1;
  (match stats with
   | Some (s : Engine.stats) ->
     t.guards_tried <- t.guards_tried + s.Engine.guards_tried;
     t.guards_admitted <- t.guards_admitted + s.Engine.guards_admitted;
     t.index_probes <- t.index_probes + s.Engine.index_probes;
     t.index_pruned <- t.index_pruned + s.Engine.index_pruned;
     t.instances_created <- t.instances_created + s.Engine.created;
     t.parses <- t.parses + 1
   | None -> ());
  t.bucket_counts.(bucket_index seconds) <-
    t.bucket_counts.(bucket_index seconds) + 1;
  t.latency_sum <- t.latency_sum +. seconds;
  t.latency_count <- t.latency_count + 1;
  Mutex.unlock t.mutex

let shed t =
  Mutex.lock t.mutex;
  t.shed <- t.shed + 1;
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

(* Prometheus label-value escaping: backslash, double quote and newline
   must be escaped inside the double-quoted label value. *)
let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '"' -> Buffer.add_string b "\\\""
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let series b ~name ~help ~kind rows =
  Printf.bprintf b "# HELP %s %s\n" name help;
  Printf.bprintf b "# TYPE %s %s\n" name
    (match kind with `Counter -> "counter" | `Gauge -> "gauge"
                   | `Histogram -> "histogram");
  List.iter
    (fun (labels, value) ->
       if labels = "" then
         Printf.bprintf b "%s %s\n" name (float_repr value)
       else Printf.bprintf b "%s{%s} %s\n" name labels (float_repr value))
    rows

let render t ~extra =
  Mutex.lock t.mutex;
  let codes =
    Hashtbl.fold (fun code r acc -> (code, !r) :: acc) t.by_code []
    |> List.sort compare
  in
  let outcomes =
    [ ("complete", t.complete); ("degraded", t.degraded);
      ("failed", t.failed) ]
  in
  let shed = t.shed in
  let cache_answered = t.cache_answered in
  let bucket_counts = Array.copy t.bucket_counts in
  let latency_sum = t.latency_sum in
  let latency_count = t.latency_count in
  let stage_bucket_counts = Array.map Array.copy t.stage_bucket_counts in
  let stage_sums = Array.copy t.stage_sums in
  let stage_counts = Array.copy t.stage_counts in
  let engine =
    [ ("wqi_parse_guards_tried_total", "Production-guard invocations.",
       t.guards_tried);
      ("wqi_parse_guards_admitted_total",
       "Guard invocations that admitted an instance.", t.guards_admitted);
      ("wqi_parse_index_probes_total",
       "Spatial-index probes for hinted slots.", t.index_probes);
      ("wqi_parse_index_pruned_total",
       "Candidates skipped thanks to index probes.", t.index_pruned);
      ("wqi_parse_instances_created_total",
       "Parser instances created, token instances included.",
       t.instances_created);
      ("wqi_extractions_total", "Extractions executed (cache misses).",
       t.parses) ]
  in
  Mutex.unlock t.mutex;
  let b = Buffer.create 2048 in
  series b ~name:"wqi_requests_total" ~help:"Requests by HTTP status code."
    ~kind:`Counter
    (List.map
       (fun (code, n) ->
          (Printf.sprintf "code=\"%d\"" code, float_of_int n))
       codes);
  series b ~name:"wqi_extract_outcomes_total"
    ~help:"Extraction responses by outcome." ~kind:`Counter
    (List.map
       (fun (name, n) ->
          (Printf.sprintf "outcome=\"%s\"" name, float_of_int n))
       outcomes);
  series b ~name:"wqi_shed_total"
    ~help:"Requests refused by admission control (503 + Retry-After)."
    ~kind:`Counter
    [ ("", float_of_int shed) ];
  series b ~name:"wqi_cache_answered_total"
    ~help:"Extract requests answered from the result cache."
    ~kind:`Counter
    [ ("", float_of_int cache_answered) ];
  (* Histogram: cumulative buckets, Prometheus style. *)
  Printf.bprintf b
    "# HELP wqi_request_seconds Request latency, read to response.\n";
  Printf.bprintf b "# TYPE wqi_request_seconds histogram\n";
  let cumulative = ref 0 in
  Array.iteri
    (fun i upper ->
       cumulative := !cumulative + bucket_counts.(i);
       Printf.bprintf b "wqi_request_seconds_bucket{le=\"%g\"} %d\n" upper
         !cumulative)
    buckets;
  cumulative := !cumulative + bucket_counts.(Array.length buckets);
  Printf.bprintf b "wqi_request_seconds_bucket{le=\"+Inf\"} %d\n" !cumulative;
  Printf.bprintf b "wqi_request_seconds_sum %g\n" latency_sum;
  Printf.bprintf b "wqi_request_seconds_count %d\n" latency_count;
  (* Per-stage extraction latency: one histogram family, stage label. *)
  Printf.bprintf b
    "# HELP wqi_stage_seconds Extraction pipeline stage latency.\n";
  Printf.bprintf b "# TYPE wqi_stage_seconds histogram\n";
  Array.iteri
    (fun si stage ->
       let stage = escape_label stage in
       let cumulative = ref 0 in
       Array.iteri
         (fun i upper ->
            cumulative := !cumulative + stage_bucket_counts.(si).(i);
            Printf.bprintf b
              "wqi_stage_seconds_bucket{stage=\"%s\",le=\"%g\"} %d\n" stage
              upper !cumulative)
         buckets;
       cumulative := !cumulative + stage_bucket_counts.(si).(Array.length buckets);
       Printf.bprintf b "wqi_stage_seconds_bucket{stage=\"%s\",le=\"+Inf\"} %d\n"
         stage !cumulative;
       Printf.bprintf b "wqi_stage_seconds_sum{stage=\"%s\"} %g\n" stage
         stage_sums.(si);
       Printf.bprintf b "wqi_stage_seconds_count{stage=\"%s\"} %d\n" stage
         stage_counts.(si))
    stage_names;
  List.iter
    (fun (name, help, value) ->
       series b ~name ~help ~kind:`Counter [ ("", float_of_int value) ])
    engine;
  series b ~name:"wqi_build_info"
    ~help:"Server build information; value is always 1." ~kind:`Gauge
    [ (Printf.sprintf "version=\"%s\"" (escape_label t.version), 1.) ];
  series b ~name:"wqi_uptime_seconds"
    ~help:"Seconds since the server started." ~kind:`Gauge
    [ ("", Budget.now_s () -. t.start_s) ];
  List.iter
    (fun (name, help, kind, value) ->
       series b ~name ~help
         ~kind:(match kind with `Counter -> `Counter | `Gauge -> `Gauge)
         [ ("", value) ])
    extra;
  Buffer.contents b
