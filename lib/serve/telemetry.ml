module Engine = Wqi_parser.Engine
module Budget = Wqi_budget.Budget

(* Upper bounds (seconds) of the latency histogram, +Inf implied. *)
let buckets =
  [| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0;
     2.5; 5.0 |]

(* Pipeline stages of the per-stage latency histograms, in pipeline
   order; must match the [Extractor.diagnostics] stage timings the
   server feeds in. *)
let stage_names = [| "html"; "layout"; "classify"; "parse"; "merge" |]

(* Upper bounds of the quality-score and coverage-ratio histograms.
   Both metrics live in [0, 1]; the +Inf bucket exists only to keep the
   exposition shape Prometheus-conformant. *)
let ratio_buckets = [| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 |]

type t = {
  mutex : Mutex.t;
  version : string;
  start_s : float;  (* monotonic; uptime = now - start *)
  by_code : (int * string, int ref) Hashtbl.t;
      (* key: status code × grammar name ("" = request not attributed
         to a grammar, e.g. /healthz or /metrics).  The grammar
         dimension is folded away at render time unless the exposition
         asks for it (multi-grammar servers). *)
  mutable complete : int;
  mutable degraded : int;
  mutable failed : int;
  mutable cache_answered : int;
  mutable shed : int;
  bucket_counts : int array;  (* non-cumulative; rendered cumulative *)
  mutable latency_sum : float;
  mutable latency_count : int;
  stage_bucket_counts : int array array;  (* per stage, non-cumulative *)
  stage_sums : float array;
  stage_counts : int array;
  mutable guards_tried : int;
  mutable guards_admitted : int;
  mutable index_probes : int;
  mutable index_pruned : int;
  mutable instances_created : int;
  mutable parses : int;
  score_bucket_counts : int array;  (* non-cumulative *)
  mutable score_sum : float;
  mutable score_count : int;
  coverage_bucket_counts : int array;
  mutable coverage_sum : float;
  mutable coverage_count : int;
  mutable conflicts : int;
}

let create ?(version = "dev") () =
  { mutex = Mutex.create ();
    version;
    start_s = Budget.now_s ();
    by_code = Hashtbl.create 8;
    complete = 0;
    degraded = 0;
    failed = 0;
    cache_answered = 0;
    shed = 0;
    bucket_counts = Array.make (Array.length buckets + 1) 0;
    latency_sum = 0.;
    latency_count = 0;
    stage_bucket_counts =
      Array.init (Array.length stage_names) (fun _ ->
          Array.make (Array.length buckets + 1) 0);
    stage_sums = Array.make (Array.length stage_names) 0.;
    stage_counts = Array.make (Array.length stage_names) 0;
    guards_tried = 0;
    guards_admitted = 0;
    index_probes = 0;
    index_pruned = 0;
    instances_created = 0;
    parses = 0;
    score_bucket_counts = Array.make (Array.length ratio_buckets + 1) 0;
    score_sum = 0.;
    score_count = 0;
    coverage_bucket_counts = Array.make (Array.length ratio_buckets + 1) 0;
    coverage_sum = 0.;
    coverage_count = 0;
    conflicts = 0 }

let ratio_bucket_index v =
  let rec go i =
    if i >= Array.length ratio_buckets then i
    else if v <= ratio_buckets.(i) then i
    else go (i + 1)
  in
  go 0

let bucket_index seconds =
  let rec go i =
    if i >= Array.length buckets then i
    else if seconds <= buckets.(i) then i
    else go (i + 1)
  in
  go 0

let stage_index name =
  let rec go i =
    if i >= Array.length stage_names then None
    else if stage_names.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let observe_request t ~code ?(grammar = "") ?outcome ?(cache_hit = false)
    ?stats ?(stage_seconds = []) ?quality ~seconds () =
  Mutex.lock t.mutex;
  (match quality with
   | Some (score, coverage, conflicts) ->
     let si = ratio_bucket_index score in
     t.score_bucket_counts.(si) <- t.score_bucket_counts.(si) + 1;
     t.score_sum <- t.score_sum +. score;
     t.score_count <- t.score_count + 1;
     let ci = ratio_bucket_index coverage in
     t.coverage_bucket_counts.(ci) <- t.coverage_bucket_counts.(ci) + 1;
     t.coverage_sum <- t.coverage_sum +. coverage;
     t.coverage_count <- t.coverage_count + 1;
     t.conflicts <- t.conflicts + conflicts
   | None -> ());
  List.iter
    (fun (name, s) ->
       match stage_index name with
       | None -> ()
       | Some i ->
         let bi = bucket_index s in
         t.stage_bucket_counts.(i).(bi) <- t.stage_bucket_counts.(i).(bi) + 1;
         t.stage_sums.(i) <- t.stage_sums.(i) +. s;
         t.stage_counts.(i) <- t.stage_counts.(i) + 1)
    stage_seconds;
  (match Hashtbl.find_opt t.by_code (code, grammar) with
   | Some r -> incr r
   | None -> Hashtbl.replace t.by_code (code, grammar) (ref 1));
  (match outcome with
   | Some `Complete -> t.complete <- t.complete + 1
   | Some `Degraded -> t.degraded <- t.degraded + 1
   | Some `Failed -> t.failed <- t.failed + 1
   | None -> ());
  if cache_hit then t.cache_answered <- t.cache_answered + 1;
  (match stats with
   | Some (s : Engine.stats) ->
     t.guards_tried <- t.guards_tried + s.Engine.guards_tried;
     t.guards_admitted <- t.guards_admitted + s.Engine.guards_admitted;
     t.index_probes <- t.index_probes + s.Engine.index_probes;
     t.index_pruned <- t.index_pruned + s.Engine.index_pruned;
     t.instances_created <- t.instances_created + s.Engine.created;
     t.parses <- t.parses + 1
   | None -> ());
  t.bucket_counts.(bucket_index seconds) <-
    t.bucket_counts.(bucket_index seconds) + 1;
  t.latency_sum <- t.latency_sum +. seconds;
  t.latency_count <- t.latency_count + 1;
  Mutex.unlock t.mutex

let shed t =
  Mutex.lock t.mutex;
  t.shed <- t.shed + 1;
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Snapshots and merging                                              *)
(* ------------------------------------------------------------------ *)

(* A snapshot is plain immutable data: the scrape path copies each
   arena out under its own mutex (held for microseconds), merges the
   copies without any lock, and renders from the merge.  Request-path
   threads never block on a scrape and a scrape never blocks on more
   than one arena at a time. *)
type snapshot = {
  s_version : string;
  s_start : float;
  s_codes : ((int * string) * int) list;
      (* sorted by (code, grammar), deterministic *)
  s_complete : int;
  s_degraded : int;
  s_failed : int;
  s_cache_answered : int;
  s_shed : int;
  s_buckets : int array;
  s_latency_sum : float;
  s_latency_count : int;
  s_stage_buckets : int array array;
  s_stage_sums : float array;
  s_stage_counts : int array;
  s_guards_tried : int;
  s_guards_admitted : int;
  s_index_probes : int;
  s_index_pruned : int;
  s_instances_created : int;
  s_parses : int;
  s_score_buckets : int array;
  s_score_sum : float;
  s_score_count : int;
  s_coverage_buckets : int array;
  s_coverage_sum : float;
  s_coverage_count : int;
  s_conflicts : int;
}

let snapshot t =
  Mutex.lock t.mutex;
  let sn =
    { s_version = t.version;
      s_start = t.start_s;
      s_codes =
        Hashtbl.fold (fun key r acc -> (key, !r) :: acc) t.by_code []
        |> List.sort compare;
      s_complete = t.complete;
      s_degraded = t.degraded;
      s_failed = t.failed;
      s_cache_answered = t.cache_answered;
      s_shed = t.shed;
      s_buckets = Array.copy t.bucket_counts;
      s_latency_sum = t.latency_sum;
      s_latency_count = t.latency_count;
      s_stage_buckets = Array.map Array.copy t.stage_bucket_counts;
      s_stage_sums = Array.copy t.stage_sums;
      s_stage_counts = Array.copy t.stage_counts;
      s_guards_tried = t.guards_tried;
      s_guards_admitted = t.guards_admitted;
      s_index_probes = t.index_probes;
      s_index_pruned = t.index_pruned;
      s_instances_created = t.instances_created;
      s_parses = t.parses;
      s_score_buckets = Array.copy t.score_bucket_counts;
      s_score_sum = t.score_sum;
      s_score_count = t.score_count;
      s_coverage_buckets = Array.copy t.coverage_bucket_counts;
      s_coverage_sum = t.coverage_sum;
      s_coverage_count = t.coverage_count;
      s_conflicts = t.conflicts }
  in
  Mutex.unlock t.mutex;
  sn

let requests sn = List.fold_left (fun acc (_, n) -> acc + n) 0 sn.s_codes

(* Fold the grammar dimension away: totals per status code, sorted. *)
let codes_only s_codes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ((code, _grammar), n) ->
       match Hashtbl.find_opt tbl code with
       | Some r -> r := !r + n
       | None -> Hashtbl.replace tbl code (ref n))
    s_codes;
  Hashtbl.fold (fun code r acc -> (code, !r) :: acc) tbl []
  |> List.sort compare

let merge_codes a b =
  (* Both inputs sorted: merge like merge-sort, summing equal keys, so
     the result stays sorted and deterministic. *)
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (ca, na) :: ta, (cb, _) :: _ when ca < cb -> go ta b ((ca, na) :: acc)
    | (ca, _) :: _, (cb, nb) :: tb when cb < ca -> go a tb ((cb, nb) :: acc)
    | (ca, na) :: ta, (_, nb) :: tb -> go ta tb ((ca, na + nb) :: acc)
  in
  go a b []

let array_add a b = Array.mapi (fun i v -> v + b.(i)) a
let farray_add a b = Array.mapi (fun i v -> v +. b.(i)) a

let merge2 a b =
  { s_version = a.s_version;
    s_start = Float.min a.s_start b.s_start;
    s_codes = merge_codes a.s_codes b.s_codes;
    s_complete = a.s_complete + b.s_complete;
    s_degraded = a.s_degraded + b.s_degraded;
    s_failed = a.s_failed + b.s_failed;
    s_cache_answered = a.s_cache_answered + b.s_cache_answered;
    s_shed = a.s_shed + b.s_shed;
    s_buckets = array_add a.s_buckets b.s_buckets;
    s_latency_sum = a.s_latency_sum +. b.s_latency_sum;
    s_latency_count = a.s_latency_count + b.s_latency_count;
    s_stage_buckets =
      Array.mapi (fun i row -> array_add row b.s_stage_buckets.(i))
        a.s_stage_buckets;
    s_stage_sums = farray_add a.s_stage_sums b.s_stage_sums;
    s_stage_counts = array_add a.s_stage_counts b.s_stage_counts;
    s_guards_tried = a.s_guards_tried + b.s_guards_tried;
    s_guards_admitted = a.s_guards_admitted + b.s_guards_admitted;
    s_index_probes = a.s_index_probes + b.s_index_probes;
    s_index_pruned = a.s_index_pruned + b.s_index_pruned;
    s_instances_created = a.s_instances_created + b.s_instances_created;
    s_parses = a.s_parses + b.s_parses;
    s_score_buckets = array_add a.s_score_buckets b.s_score_buckets;
    s_score_sum = a.s_score_sum +. b.s_score_sum;
    s_score_count = a.s_score_count + b.s_score_count;
    s_coverage_buckets = array_add a.s_coverage_buckets b.s_coverage_buckets;
    s_coverage_sum = a.s_coverage_sum +. b.s_coverage_sum;
    s_coverage_count = a.s_coverage_count + b.s_coverage_count;
    s_conflicts = a.s_conflicts + b.s_conflicts }

let merge = function
  | [] -> invalid_arg "Telemetry.merge: empty snapshot list"
  | first :: rest -> List.fold_left merge2 first rest

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

(* Prometheus label-value escaping: backslash, double quote and newline
   must be escaped inside the double-quoted label value. *)
let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '"' -> Buffer.add_string b "\\\""
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let series b ~name ~help ~kind rows =
  Printf.bprintf b "# HELP %s %s\n" name help;
  Printf.bprintf b "# TYPE %s %s\n" name
    (match kind with `Counter -> "counter" | `Gauge -> "gauge"
                   | `Histogram -> "histogram");
  List.iter
    (fun (labels, value) ->
       if labels = "" then
         Printf.bprintf b "%s %s\n" name (float_repr value)
       else Printf.bprintf b "%s{%s} %s\n" name labels (float_repr value))
    rows

(* One [0, 1]-bucketed histogram family (quality score, coverage). *)
let ratio_histogram b ~name ~help counts sum count =
  Printf.bprintf b "# HELP %s %s\n" name help;
  Printf.bprintf b "# TYPE %s histogram\n" name;
  let cumulative = ref 0 in
  Array.iteri
    (fun i upper ->
       cumulative := !cumulative + counts.(i);
       Printf.bprintf b "%s_bucket{le=\"%g\"} %d\n" name upper !cumulative)
    ratio_buckets;
  cumulative := !cumulative + counts.(Array.length ratio_buckets);
  Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name !cumulative;
  Printf.bprintf b "%s_sum %g\n" name sum;
  Printf.bprintf b "%s_count %d\n" name count

let render_snapshot ?(grammar_label = false) sn ~extra =
  let outcomes =
    [ ("complete", sn.s_complete); ("degraded", sn.s_degraded);
      ("failed", sn.s_failed) ]
  in
  let engine =
    [ ("wqi_parse_guards_tried_total", "Production-guard invocations.",
       sn.s_guards_tried);
      ("wqi_parse_guards_admitted_total",
       "Guard invocations that admitted an instance.", sn.s_guards_admitted);
      ("wqi_parse_index_probes_total",
       "Spatial-index probes for hinted slots.", sn.s_index_probes);
      ("wqi_parse_index_pruned_total",
       "Candidates skipped thanks to index probes.", sn.s_index_pruned);
      ("wqi_parse_instances_created_total",
       "Parser instances created, token instances included.",
       sn.s_instances_created);
      ("wqi_extractions_total", "Extractions executed (cache misses).",
       sn.s_parses) ]
  in
  let b = Buffer.create 2048 in
  (* The [grammar] label exists only on multi-grammar servers: a
     single-grammar exposition keeps the historical one-label contract
     (and its dashboards) byte-compatible. *)
  series b ~name:"wqi_requests_total" ~help:"Requests by HTTP status code."
    ~kind:`Counter
    (if grammar_label then
       List.map
         (fun ((code, grammar), n) ->
            ( Printf.sprintf "code=\"%d\",grammar=\"%s\"" code
                (escape_label grammar),
              float_of_int n ))
         sn.s_codes
     else
       List.map
         (fun (code, n) -> (Printf.sprintf "code=\"%d\"" code, float_of_int n))
         (codes_only sn.s_codes));
  series b ~name:"wqi_extract_outcomes_total"
    ~help:"Extraction responses by outcome." ~kind:`Counter
    (List.map
       (fun (name, n) ->
          (Printf.sprintf "outcome=\"%s\"" name, float_of_int n))
       outcomes);
  series b ~name:"wqi_shed_total"
    ~help:"Requests refused by admission control (503 + Retry-After)."
    ~kind:`Counter
    [ ("", float_of_int sn.s_shed) ];
  series b ~name:"wqi_cache_answered_total"
    ~help:"Extract requests answered from the result cache."
    ~kind:`Counter
    [ ("", float_of_int sn.s_cache_answered) ];
  (* Histogram: cumulative buckets, Prometheus style. *)
  Printf.bprintf b
    "# HELP wqi_request_seconds Request latency, read to response.\n";
  Printf.bprintf b "# TYPE wqi_request_seconds histogram\n";
  let cumulative = ref 0 in
  Array.iteri
    (fun i upper ->
       cumulative := !cumulative + sn.s_buckets.(i);
       Printf.bprintf b "wqi_request_seconds_bucket{le=\"%g\"} %d\n" upper
         !cumulative)
    buckets;
  cumulative := !cumulative + sn.s_buckets.(Array.length buckets);
  Printf.bprintf b "wqi_request_seconds_bucket{le=\"+Inf\"} %d\n" !cumulative;
  Printf.bprintf b "wqi_request_seconds_sum %g\n" sn.s_latency_sum;
  Printf.bprintf b "wqi_request_seconds_count %d\n" sn.s_latency_count;
  (* Per-stage extraction latency: one histogram family, stage label. *)
  Printf.bprintf b
    "# HELP wqi_stage_seconds Extraction pipeline stage latency.\n";
  Printf.bprintf b "# TYPE wqi_stage_seconds histogram\n";
  Array.iteri
    (fun si stage ->
       let stage = escape_label stage in
       let cumulative = ref 0 in
       Array.iteri
         (fun i upper ->
            cumulative := !cumulative + sn.s_stage_buckets.(si).(i);
            Printf.bprintf b
              "wqi_stage_seconds_bucket{stage=\"%s\",le=\"%g\"} %d\n" stage
              upper !cumulative)
         buckets;
       cumulative :=
         !cumulative + sn.s_stage_buckets.(si).(Array.length buckets);
       Printf.bprintf b "wqi_stage_seconds_bucket{stage=\"%s\",le=\"+Inf\"} %d\n"
         stage !cumulative;
       Printf.bprintf b "wqi_stage_seconds_sum{stage=\"%s\"} %g\n" stage
         sn.s_stage_sums.(si);
       Printf.bprintf b "wqi_stage_seconds_count{stage=\"%s\"} %d\n" stage
         sn.s_stage_counts.(si))
    stage_names;
  ratio_histogram b ~name:"wqi_quality_score"
    ~help:"Extraction quality score per extract request."
    sn.s_score_buckets sn.s_score_sum sn.s_score_count;
  ratio_histogram b ~name:"wqi_coverage_ratio"
    ~help:"Token coverage ratio per extract request."
    sn.s_coverage_buckets sn.s_coverage_sum sn.s_coverage_count;
  series b ~name:"wqi_conflicts_total"
    ~help:"Merger conflict errors (token claimed by two conditions)."
    ~kind:`Counter
    [ ("", float_of_int sn.s_conflicts) ];
  List.iter
    (fun (name, help, value) ->
       series b ~name ~help ~kind:`Counter [ ("", float_of_int value) ])
    engine;
  series b ~name:"wqi_build_info"
    ~help:"Server build information; value is always 1." ~kind:`Gauge
    [ (Printf.sprintf "version=\"%s\"" (escape_label sn.s_version), 1.) ];
  series b ~name:"wqi_uptime_seconds"
    ~help:"Seconds since the server started." ~kind:`Gauge
    [ ("", Budget.now_s () -. sn.s_start) ];
  List.iter
    (fun (name, help, kind, rows) ->
       series b ~name ~help
         ~kind:(match kind with `Counter -> `Counter | `Gauge -> `Gauge)
         rows)
    extra;
  Buffer.contents b

let render ?grammar_label t ~extra =
  render_snapshot ?grammar_label (snapshot t) ~extra
