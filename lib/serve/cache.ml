type config = {
  max_bytes : int;
  ttl_s : float;
  shards : int;
}

let default_config = { max_bytes = 64 * 1024 * 1024; ttl_s = 0.; shards = 8 }

type key = Wqi_store.Key.t

(* Doubly-linked LRU node; [prev] points toward the most recent end. *)
type node = {
  n_key : key;
  mutable n_value : string;
  mutable n_size : int;
  mutable n_expires : float;  (* absolute clock value; infinity = never *)
  mutable n_prev : node option;
  mutable n_next : node option;
}

type shard = {
  mutex : Mutex.t;
  table : (key, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable insertions : int;
}

(* One in-flight extraction per key: the first miss becomes the leader
   and computes; concurrent misses on the same key park here until the
   leader publishes, instead of extracting the same document again. *)
type flight_entry = {
  mutable fe_result : string option;
  mutable fe_done : bool;
}

type t = {
  config : config;
  clock : unit -> float;
  shard_bytes : int;
  shards : shard array;
  fl_mutex : Mutex.t;  (* guards the in-flight table and [coalesced] *)
  fl_cond : Condition.t;
  fl_table : (key, flight_entry) Hashtbl.t;
  mutable coalesced : int;  (* follower lookups answered by a leader *)
}

let create ?(clock = Wqi_budget.Budget.now_s) (config : config) =
  let n = max 1 config.shards in
  let config = { config with shards = n } in
  { config;
    clock;
    shard_bytes = max 1 (config.max_bytes / n);
    shards =
      Array.init n (fun _ ->
          { mutex = Mutex.create ();
            table = Hashtbl.create 64;
            head = None;
            tail = None;
            bytes = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
            expirations = 0;
            insertions = 0 });
    fl_mutex = Mutex.create ();
    fl_cond = Condition.create ();
    fl_table = Hashtbl.create 16;
    coalesced = 0 }

(* ------------------------------------------------------------------ *)
(* Keys                                                               *)
(* ------------------------------------------------------------------ *)

(* Keying lives in [Wqi_store.Key] so the in-memory cache and the
   persistent store can never drift apart: the same bytes under the
   same spec hash to the same key in both tiers. *)

let fingerprint = Wqi_store.Key.fingerprint

let normalize = Wqi_store.Key.normalize

let key ~html ~spec = Wqi_store.Key.make ~html ~spec

let shard_of t (k : key) =
  (* The low bits select the shard; FNV mixes well enough for that. *)
  t.shards.(Int64.to_int k.Wqi_store.Key.hash land max_int mod t.config.shards)

(* ------------------------------------------------------------------ *)
(* Intrusive LRU list (shard mutex held)                              *)
(* ------------------------------------------------------------------ *)

let unlink sh node =
  (match node.n_prev with
   | Some p -> p.n_next <- node.n_next
   | None -> sh.head <- node.n_next);
  (match node.n_next with
   | Some nx -> nx.n_prev <- node.n_prev
   | None -> sh.tail <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front sh node =
  node.n_prev <- None;
  node.n_next <- sh.head;
  (match sh.head with
   | Some h -> h.n_prev <- Some node
   | None -> sh.tail <- Some node);
  sh.head <- Some node

let remove sh node =
  unlink sh node;
  Hashtbl.remove sh.table node.n_key;
  sh.bytes <- sh.bytes - node.n_size

let entry_size value = String.length value + 64 (* node + table slack *)

(* ------------------------------------------------------------------ *)
(* Lookup and insertion                                               *)
(* ------------------------------------------------------------------ *)

let find t k =
  let sh = shard_of t k in
  Mutex.lock sh.mutex;
  let result =
    match Hashtbl.find_opt sh.table k with
    | None ->
      sh.misses <- sh.misses + 1;
      None
    | Some node ->
      if node.n_expires <= t.clock () then begin
        remove sh node;
        sh.expirations <- sh.expirations + 1;
        sh.misses <- sh.misses + 1;
        None
      end
      else begin
        unlink sh node;
        push_front sh node;
        sh.hits <- sh.hits + 1;
        Some node.n_value
      end
  in
  Mutex.unlock sh.mutex;
  result

let add t k value =
  let size = entry_size value in
  if size <= t.shard_bytes then begin
    let sh = shard_of t k in
    let expires =
      if t.config.ttl_s > 0. then t.clock () +. t.config.ttl_s else infinity
    in
    Mutex.lock sh.mutex;
    (match Hashtbl.find_opt sh.table k with
     | Some node ->
       sh.bytes <- sh.bytes - node.n_size + size;
       node.n_value <- value;
       node.n_size <- size;
       node.n_expires <- expires;
       unlink sh node;
       push_front sh node
     | None ->
       let node =
         { n_key = k;
           n_value = value;
           n_size = size;
           n_expires = expires;
           n_prev = None;
           n_next = None }
       in
       Hashtbl.replace sh.table k node;
       push_front sh node;
       sh.bytes <- sh.bytes + size;
       sh.insertions <- sh.insertions + 1);
    while sh.bytes > t.shard_bytes do
      match sh.tail with
      | None -> sh.bytes <- 0 (* unreachable: bytes > 0 implies a tail *)
      | Some lru ->
        remove sh lru;
        sh.evictions <- sh.evictions + 1
    done;
    Mutex.unlock sh.mutex
  end

(* ------------------------------------------------------------------ *)
(* Single-flight                                                      *)
(* ------------------------------------------------------------------ *)

type flight = Leader | Follower of string option

let begin_flight t k =
  Mutex.lock t.fl_mutex;
  match Hashtbl.find_opt t.fl_table k with
  | None ->
    Hashtbl.replace t.fl_table k { fe_result = None; fe_done = false };
    Mutex.unlock t.fl_mutex;
    Leader
  | Some entry ->
    (* The entry reference outlives its table slot: [end_flight]
       removes the key but followers woken here still read the
       published result off the entry itself. *)
    while not entry.fe_done do
      Condition.wait t.fl_cond t.fl_mutex
    done;
    if entry.fe_result <> None then t.coalesced <- t.coalesced + 1;
    Mutex.unlock t.fl_mutex;
    Follower entry.fe_result

let end_flight t k result =
  Mutex.lock t.fl_mutex;
  (match Hashtbl.find_opt t.fl_table k with
   | Some entry ->
     entry.fe_result <- result;
     entry.fe_done <- true;
     Hashtbl.remove t.fl_table k
   | None -> ());
  Condition.broadcast t.fl_cond;
  Mutex.unlock t.fl_mutex

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  expirations : int;
  insertions : int;
  coalesced : int;
  entries : int;
  bytes : int;
  capacity : int;
}

let stats t =
  Mutex.lock t.fl_mutex;
  let coalesced = t.coalesced in
  Mutex.unlock t.fl_mutex;
  Array.fold_left
    (fun acc sh ->
       Mutex.lock sh.mutex;
       let acc =
         { acc with
           hits = acc.hits + sh.hits;
           misses = acc.misses + sh.misses;
           evictions = acc.evictions + sh.evictions;
           expirations = acc.expirations + sh.expirations;
           insertions = acc.insertions + sh.insertions;
           entries = acc.entries + Hashtbl.length sh.table;
           bytes = acc.bytes + sh.bytes }
       in
       Mutex.unlock sh.mutex;
       acc)
    { hits = 0; misses = 0; evictions = 0; expirations = 0; insertions = 0;
      coalesced; entries = 0; bytes = 0; capacity = t.config.max_bytes }
    t.shards

let hit_ratio s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total
