(** Minimal HTTP/1.1 on raw [Unix] sockets — just enough protocol for
    the extraction service: request-line + headers + [Content-Length]
    bodies, percent-decoded query strings, and keep-alive.  No TLS, no
    chunked transfer encoding (a request carrying one is rejected as
    unsupported), no multipart. *)

exception Malformed of string
(** The bytes on the wire are not a request this server accepts; the
    connection should answer 400 and close. *)

exception Too_large of string
(** Headers or body exceed the configured bounds; answer 413 and
    close. *)

type request = {
  meth : string;            (** verb, uppercased: ["GET"], ["POST"], … *)
  target : string;          (** raw request target, e.g. ["/extract?a=1"] *)
  path : string;            (** target up to [?] *)
  query : (string * string) list;
      (** decoded query parameters, in order of appearance *)
  headers : (string * string) list;
      (** names lowercased, values trimmed, in order of appearance *)
  body : string;
  keep_alive : bool;
      (** what the request's HTTP version + [Connection] header ask for *)
}

val header : request -> string -> string option
(** Case-insensitive header lookup (first occurrence). *)

val query_param : request -> string -> string option

type conn
(** A buffered connection: carries read-ahead between keep-alive
    requests on the same socket. *)

val conn : Unix.file_descr -> conn

val read_request : conn -> max_body:int -> request option
(** Read one request.  [None] on a clean end-of-stream before the first
    byte of a request; raises {!Malformed} on protocol errors (including
    EOF mid-request), {!Too_large} when headers exceed 32 KiB or the
    body exceeds [max_body].  [Unix.Unix_error] from the socket (e.g. a
    receive timeout) passes through. *)

val write_response :
  ?scratch:Buffer.t ->
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  string ->
  unit
(** Write a full response with [Content-Length].  [content_type]
    defaults to [application/json].  The caller decides connection
    reuse; pass [("connection", "close")] in [headers] when closing.
    [scratch], when given, is cleared and used to assemble the
    response bytes — a per-connection handler passes the same buffer
    for every response so keep-alive traffic stops allocating. *)

val status_reason : int -> string
(** Reason phrase for the status codes this server emits. *)
