(** The extraction service: a long-lived HTTP/1.1 daemon over the
    governed extractor.

    One accept loop hands connections to lightweight handler threads;
    handler threads park extraction work on the shared
    {!Wqi_parallel.Pool} (worker domains) through [Pool.submit] and
    block on the future, so the accept loop and in-progress responses
    never wait behind a parse.  Identical requests are answered from
    the content-addressed {!Cache}.

    {b Endpoints.}
    - [POST /extract] — body: raw HTML; optional query parameters
      [name] (source name in the JSON) and per-request budget
      overrides [deadline_ms], [max_html_nodes], [max_boxes],
      [max_tokens], [max_instances], [max_rounds], each clamped by the
      server's cap budget.  Responds 200 with the version-2 JSON
      source description ([Complete] and [Degraded] outcomes; see the
      [x-wqi-outcome] and [x-wqi-cache] headers), 500 with the same
      envelope for [Failed] extractions, 400 for malformed requests
      and parameters, 413 for oversized bodies, 503 (with
      [Retry-After]) when admission control sheds the request.
    - [GET /healthz] — 200 ["ok"] while serving, 503 ["draining"]
      during shutdown.
    - [GET /metrics] — Prometheus text exposition: requests by status,
      outcomes, latency histogram, per-stage latency histograms
      ([wqi_stage_seconds{stage=...}]), cache hit/miss/eviction
      counters, aggregated parser guard/index counters, pool queue
      depth and in-flight gauges (including the [wqi_pool_peak_inflight]
      high-water mark), build info and uptime.

    {b Observability.} Every response to a parsed request carries an
    [x-wqi-trace-id] header on [/extract].  With [config.trace_dir]
    set, a request carrying [x-wqi-trace: 1] — or every
    [config.trace_sample]-th extract request — is traced end to end and
    its Chrome trace-event JSON written to [trace_dir/<id>.json].
    [config.access_log] enables a structured JSONL access log;
    [config.slow_ms] logs slower requests to stderr.

    {b Admission control.} At most [max_inflight] extractions are
    admitted (queued or running) at once; beyond that, misses are
    refused immediately with 503 + [Retry-After] instead of queueing
    without bound.  Cache hits bypass admission — they cost
    microseconds and keep a saturated server useful.

    {b Shutdown.} {!stop} (wired to SIGTERM/SIGINT by {!run}) stops
    accepting, lets in-flight requests finish, closes idle keep-alive
    connections, then drains and joins the domain pool. *)

type config = {
  host : string;
  port : int;  (** 0 binds an ephemeral port; read it back with {!port} *)
  jobs : int option;
      (** worker-pool parallelism; [None] = recommended domain count *)
  max_inflight : int;
      (** admission-control bound on concurrently admitted extractions;
          0 sheds every cache miss (useful for overload tests) *)
  max_body : int;  (** request-body byte bound (413 beyond it) *)
  cache : Cache.config option;  (** [None] disables the result cache *)
  extractor : Wqi_core.Extractor.Config.t;
      (** base extractor configuration; its budget is the per-request
          default *)
  cap_budget : Wqi_budget.Budget.t;
      (** per-field ceilings for request budget overrides: a request
          can tighten a cap but never exceed these; unlimited fields
          are uncapped *)
  idle_timeout_s : float;
      (** keep-alive receive timeout; also bounds how long an idle
          connection can delay a drain *)
  trace_sample : int;
      (** trace every Nth extract request; 0 disables sampling.  Traces
          are written only when [trace_dir] is set. *)
  trace_dir : string option;
      (** directory for per-request Chrome trace-event JSON files
          (created if missing); [None] disables tracing entirely, even
          for requests carrying [x-wqi-trace: 1] *)
  slow_ms : float option;
      (** log requests slower than this many milliseconds to stderr *)
  access_log : string option;
      (** structured (JSONL) access-log sink: a path (appended to) or
          ["-"] for stderr; [None] disables the access log *)
}

val default_config : config
(** Port 8080 on 127.0.0.1, recommended jobs, [max_inflight] = 4 ×
    recommended domain count, 4 MiB bodies, default cache config,
    default extractor config (unlimited budget), no caps, 5 s idle
    timeout; no tracing, no slow-request log, no access log. *)

val version : string
(** Server version, reported by the [wqi_build_info] metric. *)

type t

val start : config -> t
(** Bind, listen and spawn the accept loop.  Raises [Unix.Unix_error]
    if the address cannot be bound. *)

val port : t -> int
(** The actually-bound port (useful with [config.port = 0]). *)

val stop : t -> unit
(** Initiate a graceful drain.  Safe to call from a signal handler and
    idempotent; returns immediately — use {!wait} to block until the
    drain finishes. *)

val wait : t -> unit
(** Block until the server has fully drained: accept loop exited,
    connections closed, pool shut down. *)

val run : ?on_listen:(t -> unit) -> config -> unit
(** [run config] = {!start}, install SIGTERM/SIGINT handlers that
    {!stop}, ignore SIGPIPE, then {!wait}.  [on_listen] fires once the
    socket is bound (the CLI prints the address there). *)
