(** The extraction service: a long-lived HTTP/1.1 daemon over the
    governed extractor, shared-nothing across cores.

    {b Architecture.} With [jobs = N] the server spawns [N] domains
    ({!Wqi_parallel.Pool.Group}); each domain owns its complete serving
    stack — its own accept loop on its own [SO_REUSEPORT] listening
    socket, its own {!Cache} shard, its own {!Telemetry} arena and its
    own set of connection-handler threads.  A request's whole
    accept → parse → extract → respond path executes inside one domain;
    no mutex is shared between domains on that path.  The only global
    coordination points are a single atomic admission counter (one
    lock-free fetch-and-add per admitted extraction), the optional
    access-log sink, and [GET /metrics], which merges per-domain
    telemetry snapshots at scrape time ({i merge-on-scrape}).

    Where [SO_REUSEPORT] is unavailable (or [accept_mode = `Dispatch]
    is forced), a single dispatcher thread accepts and deals whole
    connections round-robin to per-domain inboxes; requests still never
    cross a domain boundary after their connection lands.

    {b Connection affinity.} The kernel's reuseport balancing keys on
    the connection 4-tuple, so a keep-alive connection — and every
    request on it — stays on one domain, and therefore on one cache
    shard.  Clients that reuse connections get shard-warm hits; the
    process-wide cache byte bound is split evenly across shards.

    {b Single-flight.} Concurrent identical cold misses inside a shard
    run one extraction: the first request leads, the rest wait on the
    in-flight key table and are answered from the leader's result
    (counted as cache hits, plus the [wqi_cache_coalesced_total]
    counter).

    {b Grammars.} The server holds a registry of compiled 2P grammars:
    the configured default plus every [*.wqg] file in
    [config.grammar_dir] (loaded and validated at startup — a bad file
    refuses to start the server).  [POST /extract?grammar=NAME] selects
    the grammar per request; an unknown name is a deterministic 404
    listing the available grammars.  The grammar's name and version are
    part of the cache key, so the same HTML under two grammars (or two
    versions across a reload) never shares a cache entry.  SIGHUP
    (wired by {!run}) re-scans the directory and hot-swaps the registry
    wholesale on a serving thread's next tick; a failed re-scan keeps
    the previous registry serving.

    {b Endpoints.}
    - [POST /extract] — body: raw HTML; optional query parameters
      [name] (source name in the JSON), [grammar] (registry grammar to
      parse with; default the configured grammar) and per-request
      budget overrides [deadline_ms], [max_html_nodes], [max_boxes],
      [max_tokens], [max_instances], [max_rounds], each clamped by the
      server's cap budget.  Responds 200 with the version-2 JSON
      source description ([Complete] and [Degraded] outcomes; see the
      [x-wqi-outcome], [x-wqi-cache] and [x-wqi-grammar] headers), 500
      with the same envelope for [Failed] extractions, 400 for
      malformed requests and parameters, 404 for unknown [grammar]
      names, 413 for oversized bodies, 503 (with
      [Retry-After]) when admission control sheds the request.
    - [GET /healthz] — 200 ["ok"] while serving, 503 ["draining"]
      during shutdown.
    - [GET /metrics] — Prometheus text exposition merged over every
      domain's arena: requests by status, outcomes, latency histogram,
      per-stage latency histograms ([wqi_stage_seconds{stage=...}]),
      the loaded grammars ([wqi_grammar_info{name=...,version=...}]),
      summed cache hit/miss/eviction/coalesced counters,
      persistent-store counters and gauges ([wqi_store_hits_total],
      [wqi_store_misses_total], [wqi_store_puts_total],
      [wqi_store_entries], [wqi_store_bytes]) when [config.store] is
      set, aggregated parser guard/index counters, per-domain request
      counts
      ([wqi_domain_requests_total{domain="i"}]) — with
      [wqi_requests_total] gaining a [grammar] label once more than one
      grammar is loaded — in-flight gauges
      (including the [wqi_pool_peak_inflight] high-water mark), the
      accept architecture ([wqi_accept_mode_info{mode=...}]), build
      info and uptime.

    {b Observability.} Every response to a parsed request carries an
    [x-wqi-trace-id] header on [/extract].  With [config.trace_dir]
    set, a request carrying [x-wqi-trace: 1] — or every
    [config.trace_sample]-th extract request — is traced end to end and
    its Chrome trace-event JSON written to [trace_dir/<id>.json].
    [config.access_log] enables a structured JSONL access log;
    [config.slow_ms] logs slower requests to stderr.

    {b Quality.} Every extraction (fresh or answered from the store)
    feeds its [Wqi_quality] record into the arena: [/metrics] exposes
    [wqi_quality_score] and [wqi_coverage_ratio] histograms and the
    [wqi_conflicts_total] counter, merged on scrape like everything
    else, plus OCaml runtime health ([wqi_gc_minor_words_total] summed
    across domains, [wqi_gc_major_collections_total] and
    [wqi_gc_heap_bytes] as the max across per-domain samples — the
    major heap is shared) and [wqi_store_orphaned_bytes] when a store
    is attached.  With [config.quality_exemplars = K] (and a
    [trace_dir]), each domain keeps the K worst-scoring extractions of
    every [config.quality_window]-extraction window and writes their
    Chrome traces to [trace_dir/quality-<id>.json] when the window
    completes — automatic exemplars of exactly the requests worth
    debugging.

    {b Admission control.} At most [max_inflight] extractions are
    admitted across all domains at once; beyond that, misses are
    refused immediately with 503 + [Retry-After] instead of queueing
    without bound.  Cache hits bypass admission — they cost
    microseconds and keep a saturated server useful.

    {b Shutdown.} {!stop} (wired to SIGTERM/SIGINT by {!run}) flips the
    drain flag and writes the self-pipe, waking every domain's accept
    loop at once.  Each domain stops accepting, waits for its live
    handlers to finish (requests in flight complete; idle keep-alive
    connections close at their receive timeout), deadline-kills
    stragglers after [drain_grace_s] by shutting their sockets, and
    joins every handler thread it ever spawned before exiting.
    {!wait} joins the domains (and the dispatcher, if any) and closes
    the listeners; a drained server exits 0 with no leaked threads. *)

type accept_mode = [ `Auto | `Reuseport | `Dispatch ]
(** How connections reach domains: [`Reuseport] = per-domain listening
    sockets sharing the port via [SO_REUSEPORT]; [`Dispatch] = one
    listener plus a round-robin fd-passing dispatcher thread; [`Auto]
    (default) tries reuseport and falls back to dispatch where the
    socket option is unsupported. *)

type config = {
  host : string;
  port : int;  (** 0 binds an ephemeral port; read it back with {!port} *)
  jobs : int option;
      (** serving domains; [None] = recommended domain count *)
  accept_mode : accept_mode;
  max_inflight : int;
      (** admission-control bound on concurrently admitted extractions
          across all domains; 0 sheds every cache miss (useful for
          overload tests) *)
  max_body : int;  (** request-body byte bound (413 beyond it) *)
  cache : Cache.config option;
      (** [None] disables the result cache.  [max_bytes] is a
          process-wide bound, split evenly across the per-domain
          shards. *)
  store : string option;
      (** directory of a persistent {!Wqi_store.Store} used as a warm
          tier below the in-memory cache: an LRU miss probes the store
          before extracting ([x-wqi-cache: store] on a hit), and fresh
          extractions are persisted before the response goes out, so
          warm throughput survives restarts.  Cache and store
          share keys ({!Cache.key} {i is} {!Wqi_store.Key.make}), the
          store holds the same Export-v2 bytes a fresh extraction
          produces, and {!wait} compacts it on shutdown.  [None]
          disables the tier. *)
  extractor : Wqi_core.Extractor.Config.t;
      (** base extractor configuration; its budget is the per-request
          default and its grammar the default (and always-resolvable)
          registry entry *)
  grammar_dir : string option;
      (** directory of [*.wqg] grammar files loaded into the registry
          at startup and on SIGHUP; [None] serves only the configured
          default grammar *)
  cap_budget : Wqi_budget.Budget.t;
      (** per-field ceilings for request budget overrides: a request
          can tighten a cap but never exceed these; unlimited fields
          are uncapped *)
  idle_timeout_s : float;
      (** keep-alive receive timeout; also bounds how long an idle
          connection can delay a drain *)
  drain_grace_s : float;
      (** how long a drain waits for live handlers before
          deadline-killing their sockets *)
  trace_sample : int;
      (** trace every Nth extract request; 0 disables sampling.  Traces
          are written only when [trace_dir] is set. *)
  trace_dir : string option;
      (** directory for per-request Chrome trace-event JSON files
          (created if missing); [None] disables tracing entirely, even
          for requests carrying [x-wqi-trace: 1] *)
  slow_ms : float option;
      (** log requests slower than this many milliseconds to stderr *)
  access_log : string option;
      (** structured (JSONL) access-log sink: a path (appended to) or
          ["-"] for stderr; [None] disables the access log *)
  quality_exemplars : int;
      (** capture the K worst-quality extractions of each window as
          Chrome traces ([trace_dir/quality-<id>.json]); requires
          [trace_dir], 0 disables.  While enabled, every fresh
          extraction is traced speculatively (cache and store hits are
          not), so the hot path stays untraced and only extraction-heavy
          windows pay the tracing overhead. *)
  quality_window : int;
      (** extractions per exemplar window, per serving domain (each
          domain keeps its own window so capture needs no cross-domain
          coordination); default 128 *)
}

val default_config : config
(** Port 8080 on 127.0.0.1, recommended jobs, [`Auto] accept mode,
    [max_inflight] = 4 × recommended domain count, 4 MiB bodies,
    default cache config, no persistent store, default extractor config
    (unlimited budget), no caps, 5 s idle timeout, 30 s drain grace; no
    tracing, no slow-request log, no access log. *)

val version : string
(** Server version, reported by the [wqi_build_info] metric. *)

type t

val start : config -> t
(** Bind the listeners and spawn the serving domains.  Raises
    [Unix.Unix_error] if the address cannot be bound and
    [Invalid_argument] if [config.grammar_dir] fails to load (missing
    directory, malformed file, duplicate grammar name). *)

val grammar_names : t -> string list
(** Names the registry currently serves, sorted (always includes the
    default grammar's name). *)

val reload_grammars : t -> (int, string) result
(** Re-scan [config.grammar_dir] and swap the registry wholesale;
    returns the number of grammars now loaded.  On [Error] the previous
    registry keeps serving.  Safe to call from any thread; requests
    racing the swap see either the old or the new registry, never a
    mix. *)

val request_reload : t -> unit
(** Ask a serving thread to {!reload_grammars} at its next tick (at
    most ~0.25 s later).  Async-signal-safe — this is what the SIGHUP
    handler installed by {!run} calls. *)

val port : t -> int
(** The actually-bound port (useful with [config.port = 0]). *)

val accept_mode_name : t -> string
(** The accept architecture actually in use: ["reuseport"] or
    ["dispatch"] (after [`Auto] resolution). *)

val domain_count : t -> int
(** Serving domains spawned (the resolved [jobs]). *)

val stop : t -> unit
(** Initiate a graceful drain.  Safe to call from a signal handler and
    idempotent; returns immediately — use {!wait} to block until the
    drain finishes. *)

val wait : t -> unit
(** Block until the server has fully drained: every domain's accept
    loop exited, its handlers joined, and the listeners closed. *)

val run : ?on_listen:(t -> unit) -> config -> unit
(** [run config] = {!start}, install SIGTERM/SIGINT handlers that
    {!stop} and a SIGHUP handler that {!request_reload}s the grammar
    registry, ignore SIGPIPE, then {!wait}.  [on_listen] fires once the
    sockets are bound (the CLI prints the address there). *)
