(** The best-effort parser (Section 5, algorithm 2PParser of Figure 11).

    Fix-point, bottom-up instantiation of grammar symbols in 2P-schedule
    order, with just-in-time pruning by preferences, rollback of
    invalidated ancestors, and partial-tree maximization by maximum
    subsumption.

    The parser never rejects an input: when the grammar cannot explain
    the whole token set it returns the maximal partial parse trees
    (Section 5.3). *)

type options = {
  use_preferences : bool;
      (** [false] disables pruning entirely — the "brute-force"
          exhaustive parse of Section 4.2.1, used for the ambiguity
          ablation. *)
  use_scheduling : bool;
      (** [false] keeps preferences but enforces them only once, at the
          end of parsing ("late pruning"), relying on rollback; isolates
          the benefit of the 2P schedule graph. *)
  max_instances : int;
      (** Safety valve: parsing stops growing (and sets
          [stats.truncated]) once this many instances exist.  Visual
          language membership is NP-complete (Section 5.1), so the
          exhaustive mode needs a bound. *)
  semi_naive : bool;
      (** [true] (the default) drives each fix-point round from the
          per-symbol delta sets — only production applications binding
          at least one instance created since the production's previous
          application are enumerated.  [false] selects the naive
          reference: re-enumerate the full cross product every round and
          discard repeats against a dedup table.  Both produce identical
          results (instance ids included); the naive engine is retained
          as the oracle for the equivalence test suite. *)
  use_hints : bool;
      (** [true] (the default) lets the semi-naive engine use the
          productions' declarative spatial hints: hinted component slots
          anchored to an already-bound component enumerate only the
          spatially compatible candidates, found through a per-symbol
          row-band index.  Hints are an optimization, never a semantic
          filter — every hint is implied by its production's guard, the
          guard is still evaluated on every surviving combination, and
          index probes return candidates in creation order, so results
          are byte-identical with hints off (instance ids included).
          Ignored by the naive oracle ([semi_naive = false]). *)
}

val default_options : options
(** Preferences on, scheduling on, [max_instances = 200_000],
    semi-naive instantiation, hints on. *)

type stats = {
  created : int;       (** instances ever created, tokens included *)
  live : int;          (** instances alive at the end *)
  pruned : int;        (** losers killed by preference enforcement *)
  rolled_back : int;   (** ancestors killed by rollback *)
  temporary : int;     (** created instances that ended up in no maximal
                           tree — the paper's "temporary instances" *)
  truncated : bool;
  guards_tried : int;
      (** Production-guard invocations — the guard pressure.  The
          spatial candidate index exists to shrink this number. *)
  guards_admitted : int;
      (** Guard invocations that returned [true] (each admits one new
          instance in the semi-naive engine). *)
  index_probes : int;
      (** Row-band index probes issued for hinted component slots. *)
  index_pruned : int;
      (** Candidates skipped by index probes: the difference between the
          scan lengths the unhinted engine would have walked and the
          candidate lists the index returned. *)
}

type result = {
  tokens : Wqi_token.Token.t list;
  token_instances : Wqi_grammar.Instance.t list;
  all_live : Wqi_grammar.Instance.t list;
      (** Every live instance, terminals included. *)
  maximal : Wqi_grammar.Instance.t list;
      (** Maximum partial parse trees: live nonterminal instances with no
          live parent whose cover is not subsumed by another such
          instance.  A complete parse is the special case of a single
          tree covering every token. *)
  complete : Wqi_grammar.Instance.t option;
      (** A live start-symbol instance covering all tokens, if any. *)
  stats : stats;
}

(** A grammar compiled for repeated parsing: the 2P schedule (d-edges +
    r-edges), the d-edge-only ablation order, and the per-symbol
    preference table are derived once instead of on every parse, and the
    pack carries the grammar's identity ([name]/[version]) so callers
    that cache or route by grammar (the extraction service) have a
    stable key.  A pack is immutable after {!compile} and safe to share
    across domains. *)
type compiled = private {
  grammar : Wqi_grammar.Grammar.t;
  name : string;
  version : string;
  schedule : Wqi_grammar.Schedule.t;
  d_order : Wqi_grammar.Symbol.t list;
      (** topological order over d-edges alone, for
          [use_scheduling = false] *)
  prefs_by_sym :
    (Wqi_grammar.Symbol.t, Wqi_grammar.Preference.t list) Hashtbl.t;
      (** read-only after compile *)
  tables : Dispatch.t;
      (** flat dispatch tables: interned symbol ids, per-production
          component/watermark layout, packed spatial checks *)
  pool : Arena.pool;
      (** reusable parse arenas (lock-free stack); the only mutable
          member, safe to share across domains *)
}

val compile :
  ?name:string -> ?version:string -> Wqi_grammar.Grammar.t -> compiled
(** [compile g] validates [g] (raising [Invalid_argument] like {!parse}
    would) and precomputes everything {!parse_compiled} needs.  [name]
    defaults to ["anonymous"], [version] to ["0"]; loaders pass the
    grammar file's declared identity. *)

val parse_compiled :
  ?gauge:Wqi_budget.Budget.gauge ->
  ?trace:Wqi_obs.Trace.t ->
  ?options:options ->
  compiled ->
  Wqi_token.Token.t list ->
  result
(** {!parse} minus the per-call schedule/preference derivation.
    Byte-identical results to [parse pack.grammar]. *)

val parse :
  ?gauge:Wqi_budget.Budget.gauge ->
  ?trace:Wqi_obs.Trace.t ->
  ?options:options ->
  Wqi_grammar.Grammar.t ->
  Wqi_token.Token.t list ->
  result
(** [parse g tokens] runs the 2P parser.  The grammar must pass
    [Grammar.validate]; [Invalid_argument] is raised otherwise.

    [gauge] charges one budget unit per instance created (token
    instances included) and one per fix-point round; hot enumeration
    loops additionally probe the deadline.  When any of these trips, the
    parse stops growing exactly as with [max_instances] — the partial
    instance store is still maximized, so maximal partial trees are
    returned and [stats.truncated] is set.  With [gauge] absent the
    engine is byte-for-byte identical to the ungoverned parser
    (instance ids included).

    [trace] records one span per fix-point round (named after the
    symbol, carrying the {!stats} deltas that round produced), one span
    per preference enforcement that killed instances (the rollback
    annotation), a [budget_trip] instant when the parse was truncated,
    and a span around maximal-tree selection.  Tracing is observational
    only: results — instance ids included — are byte-identical with
    [trace] absent. *)

val count_trees : result -> int
(** Number of distinct complete parse trees (live start-symbol instances
    covering all tokens) — the quantity the paper reports as "25 parse
    trees" for the exhaustive parse of the Figure-5 fragment.  Falls back
    to the number of maximal partial trees when no complete parse
    exists. *)
