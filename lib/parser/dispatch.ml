(* Flat dispatch tables: everything about a grammar the parser's inner
   loops would otherwise rediscover per parse — or chase through
   closures and hashtables per production application — resolved once at
   [Engine.compile] time into dense int-indexed arrays.

   Symbols are interned to dense ids (token-kind terminals first, so any
   token maps without a lookup miss, then grammar symbols in declaration
   order — deterministic, and identical for equal grammars).  Each
   production becomes an [fprod] carrying its component symbol ids, its
   watermark/delta offsets into the arena's flat scratch arrays, and its
   spatial hints compiled to packed candidate-relative checks.

   A packed check is two ints per hint, laid out [meta; param]:
   [meta = tag lor (other_slot lsl 4)] where [tag] names the relation
   with the *candidate as first argument* (a hint whose candidate sits on
   the second side compiles to the flipped tag), and [param] is the gap
   or tolerance.  The engine evaluates tags directly on the arena's
   coordinate columns with the exact {!Wqi_layout.Geometry} formulas, so
   admitted candidate sets are identical to interpreting
   {!Wqi_grammar.Hint.holds_rel} on boxes. *)

module G = Wqi_grammar
module Symbol = G.Symbol
module Hint = G.Hint
module Token = Wqi_token.Token

(* Candidate-relative relation tags. *)
let tag_left_of = 0 (* candidate left_of other *)
let tag_right_of = 1 (* other left_of candidate *)
let tag_above = 2 (* candidate above other *)
let tag_below = 3 (* other above candidate *)
let tag_same_row = 4
let tag_same_col = 5
let tag_left_al = 6
let tag_top_al = 7
let tag_bot_al = 8

let no_checks : int array = [||]

type fprod = {
  ord : int;  (* index in [prods]; also the arena's chosen-row index *)
  prod : G.Production.t;  (* guard/build/name: the boxed originals *)
  head : int;
  comps : int array;
  arity : int;
  checks : int array array;
      (* per slot, stride 2 ([meta; param]); [no_checks] when unhinted *)
  mark_base : int;  (* offset of this production's watermarks (arity) *)
  delta_base : int;  (* offset of its delta flags (arity + 1) *)
}

type t = {
  syms : Symbol.t array;
  nsyms : int;
  ids : (Symbol.t, int) Hashtbl.t;
  prods : fprod array;
  by_head : int array array;  (* symbol id -> fprod ordinals, grammar order *)
  marks_len : int;
  deltas_len : int;
  max_arity : int;
}

let sym_id t sym = Hashtbl.find t.ids sym

let all_token_kinds =
  [ Token.Text; Token.Textbox; Token.Selection; Token.Radio; Token.Checkbox;
    Token.Button; Token.Image ]

(* A hint [rel(a, b)] becomes checkable at the later of its two slots;
   the packed tag is normalized so the candidate (the later slot) is the
   relation's first argument. *)
let pack_hint (h : Hint.t) =
  let other = min h.a h.b in
  let cand_first = h.a > h.b in
  let tag, param =
    match h.rel with
    | Hint.Left_of g -> ((if cand_first then tag_left_of else tag_right_of), g)
    | Hint.Above g -> ((if cand_first then tag_above else tag_below), g)
    | Hint.Below g -> ((if cand_first then tag_below else tag_above), g)
    | Hint.Same_row -> (tag_same_row, 0)
    | Hint.Same_column -> (tag_same_col, 0)
    | Hint.Left_aligned tol -> (tag_left_al, tol)
    | Hint.Top_aligned tol -> (tag_top_al, tol)
    | Hint.Bottom_aligned tol -> (tag_bot_al, tol)
  in
  (max h.a h.b, tag lor (other lsl 4), param)

let build (g : G.Grammar.t) =
  let ids = Hashtbl.create 64 in
  let rev = ref [] in
  let count = ref 0 in
  let intern sym =
    match Hashtbl.find_opt ids sym with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.add ids sym i;
      rev := sym :: !rev;
      i
  in
  List.iter (fun k -> ignore (intern (Symbol.of_token_kind k))) all_token_kinds;
  List.iter (fun s -> ignore (intern s)) g.terminals;
  List.iter
    (fun (p : G.Production.t) ->
       ignore (intern p.head);
       List.iter (fun s -> ignore (intern s)) p.components)
    g.productions;
  List.iter
    (fun (r : G.Preference.t) ->
       ignore (intern r.winner);
       ignore (intern r.loser))
    g.preferences;
  ignore (intern g.start);
  let syms = Array.of_list (List.rev !rev) in
  let nsyms = Array.length syms in
  let mark_base = ref 0 and delta_base = ref 0 in
  let prods =
    Array.of_list
      (List.mapi
         (fun ord (p : G.Production.t) ->
            let arity = List.length p.components in
            let checks =
              if p.hints = [] then Array.make arity no_checks
              else begin
                let per_slot = Array.make arity [] in
                List.iter
                  (fun h ->
                     let slot, meta, param = pack_hint h in
                     per_slot.(slot) <- (meta, param) :: per_slot.(slot))
                  p.hints;
                Array.map
                  (fun l ->
                     match List.rev l with
                     | [] -> no_checks
                     | l ->
                       let arr = Array.make (2 * List.length l) 0 in
                       List.iteri
                         (fun k (meta, param) ->
                            arr.(2 * k) <- meta;
                            arr.((2 * k) + 1) <- param)
                         l;
                       arr)
                  per_slot
              end
            in
            let fp =
              { ord;
                prod = p;
                head = intern p.head;
                comps =
                  Array.of_list (List.map (fun s -> intern s) p.components);
                arity;
                checks;
                mark_base = !mark_base;
                delta_base = !delta_base }
            in
            mark_base := !mark_base + arity;
            delta_base := !delta_base + arity + 1;
            fp)
         g.productions)
  in
  let by_head = Array.make nsyms [] in
  Array.iter (fun fp -> by_head.(fp.head) <- fp.ord :: by_head.(fp.head)) prods;
  let by_head = Array.map (fun l -> Array.of_list (List.rev l)) by_head in
  let max_arity =
    Array.fold_left (fun acc fp -> max acc fp.arity) 1 prods
  in
  { syms;
    nsyms;
    ids;
    prods;
    by_head;
    marks_len = max 1 !mark_base;
    deltas_len = max 1 !delta_base;
    max_arity }
