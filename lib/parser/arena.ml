(* The unboxed instance arena: per-symbol columns of parallel arrays
   indexed by creation order within the symbol's store.  The parser's
   inner loops (delta enumeration, hint checks, preference kill scans)
   run entirely on the int columns — covers as raw words, boxes as four
   coordinate arrays, liveness as bytes — and only touch the boxed
   {!Wqi_grammar.Instance.t} (kept alongside, since results must still
   be instance trees) when a candidate survives every filter.

   Arenas are pooled on the compiled grammar pack and bulk-reset between
   parses, so a steady-state parse allocates instances, result lists and
   little else.  The pool is a lock-free Atomic stack: compiled packs
   are shared across serving domains, and within a domain systhread
   handlers can interleave parses, so acquire/release must be safe from
   anywhere. *)

module G = Wqi_grammar
module Instance = G.Instance
module Spatial_index = G.Spatial_index
module Token = Wqi_token.Token

type col = {
  mutable inst : Instance.t array;
  mutable bits : int array;  (* single-word covers; 0 on big universes *)
  mutable x1 : int array;
  mutable y1 : int array;
  mutable x2 : int array;
  mutable y2 : int array;
  mutable alive : Bytes.t;  (* mirror of [Instance.alive], kill-only *)
  mutable len : int;
  mutable index : Spatial_index.t;
  mutable indexed : int;
      (* entries registered in [index] so far: the index is built
         lazily, on the first probe that wants a column's entries, so
         parses (and symbols) that never probe pay nothing for it *)
}

type t = {
  cols : col array;  (* one per interned symbol *)
  pcols : col array array;  (* per production, its slots' columns *)
  chosen : Instance.t array array;  (* per production, binding row *)
  marks : int array;  (* flat watermarks, offset by fprod.mark_base *)
  lens : int array;  (* per-application length snapshots, same layout *)
  sx1 : int array;  (* bound-slot coordinates, same layout: written *)
  sy1 : int array;  (* when a slot binds, read by later slots' checks *)
  sx2 : int array;  (* and by the head instance's box union *)
  sy2 : int array;
  deltas : Bytes.t;  (* delta-from flags, offset by fprod.delta_base *)
  qbufs : int array ref array;  (* per-slot-depth index probe buffers *)
  dedup : (string * int array, unit) Hashtbl.t;  (* naive oracle only *)
  mutable id2col : int array;  (* instance id -> owning symbol id *)
  mutable id2idx : int array;  (* instance id -> index in its column *)
  filler : Instance.t;
  (* Probe-region scratch (the narrowest y/x intervals the bound
     anchors imply), valid between a region computation and the query
     it feeds. *)
  mutable pr_have_y : bool;
  mutable pr_y_lo : int;
  mutable pr_y_hi : int;
  mutable pr_have_x : bool;
  mutable pr_x_lo : int;
  mutable pr_x_hi : int;
}

(* The filler never participates in parsing: it exists only so array
   growth and bulk reset have something GC-neutral to put in unused
   slots. *)
let make_filler () =
  let tok =
    { Token.id = 0; kind = Token.Text; box = Wqi_layout.Geometry.origin;
      sval = ""; name = ""; options = []; value = ""; checked = false;
      multiple = false }
  in
  Instance.of_token ~id:(-1) ~universe:1 tok

let dummy_index = Spatial_index.create ~alive:(fun _ -> false)

let make_col filler =
  let col =
    { inst = Array.make 16 filler; bits = Array.make 16 0;
      x1 = Array.make 16 0; y1 = Array.make 16 0; x2 = Array.make 16 0;
      y2 = Array.make 16 0; alive = Bytes.make 16 '\000'; len = 0;
      index = dummy_index; indexed = 0 }
  in
  col.index <-
    Spatial_index.create ~alive:(fun idx ->
        Bytes.unsafe_get col.alive idx <> '\000');
  col

let grow col filler =
  let cap = Array.length col.inst in
  let ncap = 2 * cap in
  let grow_inst a =
    let b = Array.make ncap filler in
    Array.blit a 0 b 0 cap;
    b
  in
  let grow_int a =
    let b = Array.make ncap 0 in
    Array.blit a 0 b 0 cap;
    b
  in
  col.inst <- grow_inst col.inst;
  col.bits <- grow_int col.bits;
  col.x1 <- grow_int col.x1;
  col.y1 <- grow_int col.y1;
  col.x2 <- grow_int col.x2;
  col.y2 <- grow_int col.y2;
  let al = Bytes.make ncap '\000' in
  Bytes.blit col.alive 0 al 0 cap;
  col.alive <- al

let push t col (inst : Instance.t) ~bits =
  if col.len = Array.length col.inst then grow col t.filler;
  let idx = col.len in
  let box = inst.Instance.box in
  Array.unsafe_set col.inst idx inst;
  Array.unsafe_set col.bits idx bits;
  Array.unsafe_set col.x1 idx box.Wqi_layout.Geometry.x1;
  Array.unsafe_set col.y1 idx box.Wqi_layout.Geometry.y1;
  Array.unsafe_set col.x2 idx box.Wqi_layout.Geometry.x2;
  Array.unsafe_set col.y2 idx box.Wqi_layout.Geometry.y2;
  Bytes.unsafe_set col.alive idx '\001';
  col.len <- idx + 1;
  idx

(* Catch the column's index up to its store: registration order is the
   ascending creation order {!Spatial_index.add} requires, and doing it
   here — at probe time — instead of at push time keeps un-probed
   columns index-free. *)
let sync_index col =
  for idx = col.indexed to col.len - 1 do
    Spatial_index.add_coords col.index ~idx
      (Array.unsafe_get col.x1 idx)
      (Array.unsafe_get col.y1 idx)
      (Array.unsafe_get col.x2 idx)
      (Array.unsafe_get col.y2 idx)
  done;
  col.indexed <- col.len

let record_id t ~id ~col ~idx =
  let cap = Array.length t.id2col in
  if id >= cap then begin
    let ncap = max (2 * cap) (id + 1) in
    let g a =
      let b = Array.make ncap 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    t.id2col <- g t.id2col;
    t.id2idx <- g t.id2idx
  end;
  Array.unsafe_set t.id2col id col;
  Array.unsafe_set t.id2idx id idx

let create (tables : Dispatch.t) =
  let filler = make_filler () in
  let cols = Array.init tables.nsyms (fun _ -> make_col filler) in
  { cols;
    pcols =
      Array.map
        (fun (fp : Dispatch.fprod) ->
           Array.map (fun sid -> cols.(sid)) fp.comps)
        tables.prods;
    chosen =
      Array.map
        (fun (fp : Dispatch.fprod) -> Array.make fp.arity filler)
        tables.prods;
    marks = Array.make tables.marks_len 0;
    lens = Array.make tables.marks_len 0;
    sx1 = Array.make tables.marks_len 0;
    sy1 = Array.make tables.marks_len 0;
    sx2 = Array.make tables.marks_len 0;
    sy2 = Array.make tables.marks_len 0;
    deltas = Bytes.make tables.deltas_len '\000';
    qbufs = Array.init tables.max_arity (fun _ -> ref (Array.make 64 0));
    dedup = Hashtbl.create 64;
    id2col = Array.make 256 0;
    id2idx = Array.make 256 0;
    filler;
    pr_have_y = false;
    pr_y_lo = 0;
    pr_y_hi = 0;
    pr_have_x = false;
    pr_x_lo = 0;
    pr_x_hi = 0 }

(* Bulk reset: clear lengths, drop every boxed-instance reference (a
   reused slot must not pin last parse's trees), zero the watermarks and
   flags.  Int scratch (coordinates, id maps, probe buffers) is left
   stale — nothing reads past the freshly-zeroed lengths. *)
let reset t =
  Array.iter
    (fun col ->
       if col.len > 0 then begin
         Array.fill col.inst 0 col.len t.filler;
         col.len <- 0
       end;
       col.indexed <- 0;
       Spatial_index.reset col.index)
    t.cols;
  Array.iter
    (fun row -> Array.fill row 0 (Array.length row) t.filler)
    t.chosen;
  Array.fill t.marks 0 (Array.length t.marks) 0;
  Bytes.fill t.deltas 0 (Bytes.length t.deltas) '\000';
  Hashtbl.reset t.dedup

type pool = t list Atomic.t

let make_pool () : pool = Atomic.make []

(* Enough for a serve domain's handler threads; beyond that a fresh
   arena is cheaper than contending on the stack. *)
let max_pooled = 8

let acquire (pool : pool) tables =
  let rec go () =
    match Atomic.get pool with
    | [] -> create tables
    | a :: rest as old ->
      if Atomic.compare_and_set pool old rest then a else go ()
  in
  go ()

let release (pool : pool) arena =
  reset arena;
  let rec go () =
    let old = Atomic.get pool in
    if List.length old >= max_pooled then ()
    else if not (Atomic.compare_and_set pool old (arena :: old)) then go ()
  in
  go ()
