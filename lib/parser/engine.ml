module G = Wqi_grammar
module Instance = G.Instance
module Symbol = G.Symbol
module Bitset = G.Bitset
module Hint = G.Hint
module Spatial_index = G.Spatial_index
module Token = Wqi_token.Token
module Budget = Wqi_budget.Budget
module Trace = Wqi_obs.Trace

let src = Logs.Src.create "wqi.parser" ~doc:"Best-effort 2P parser"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  use_preferences : bool;
  use_scheduling : bool;
  max_instances : int;
  semi_naive : bool;
  use_hints : bool;
}

let default_options =
  { use_preferences = true; use_scheduling = true; max_instances = 200_000;
    semi_naive = true; use_hints = true }

type stats = {
  created : int;
  live : int;
  pruned : int;
  rolled_back : int;
  temporary : int;
  truncated : bool;
  guards_tried : int;
  guards_admitted : int;
  index_probes : int;
  index_pruned : int;
}

type result = {
  tokens : Token.t list;
  token_instances : Instance.t list;
  all_live : Instance.t list;
  maximal : Instance.t list;
  complete : Instance.t option;
  stats : stats;
}

exception Truncated

(* Per-symbol instance store: a growable vector in creation order.  The
   creation index doubles as the semi-naive watermark coordinate — the
   instances of a symbol created since a production last ran are exactly
   the suffix starting at that production's recorded length — and as the
   coordinate of the spatial candidate index. *)
type vec = { mutable arr : Instance.t array; mutable len : int }

let vec_make () = { arr = [||]; len = 0 }

(* Grown slots are filled with the parse-wide [filler] dummy, never the
   pushed instance: filling with [inst] would pin it in every unused
   slot, keeping rolled-back instances (and their whole subtrees)
   reachable for as long as the store lives. *)
let vec_push ~filler v inst =
  let cap = Array.length v.arr in
  if v.len = cap then begin
    let arr = Array.make (max 8 (2 * cap)) filler in
    Array.blit v.arr 0 arr 0 v.len;
    v.arr <- arr
  end;
  Array.unsafe_set v.arr v.len inst;
  v.len <- v.len + 1

(* Per-slot hint obligations of one production: [(other, rel, cand_first)]
   means the instance chosen for this slot must satisfy [rel] against the
   instance already bound at slot [other]; [cand_first] tells which side
   of the (ordered) relation the candidate occupies. *)
type slot_check = { other : int; rel : Hint.rel; cand_first : bool }

type state = {
  grammar : G.Grammar.t;
  store : (Symbol.t, vec) Hashtbl.t;
  sindex : (Symbol.t, Spatial_index.t) Hashtbl.t;
      (* row-band candidate index per symbol store; maintained only when
         [hints_enabled] *)
  dedup : (string * int array, unit) Hashtbl.t;
      (* naive oracle only; the delta discipline needs no dedup table *)
  marks : (string, int array) Hashtbl.t;
      (* per-production store-length snapshots from its last application *)
  plans : (string, slot_check list array) Hashtbl.t;
      (* per-production hint obligations, resolved to slot order once *)
  universe : int;
  filler : Instance.t;
  hints_enabled : bool;
  mutable next_id : int;
  mutable created : int;
  mutable pruned : int;
  mutable rolled_back : int;
  mutable guards_tried : int;
  mutable guards_admitted : int;
  mutable index_probes : int;
  mutable index_pruned : int;
  options : options;
  gauge : Budget.gauge option;
      (* resource gauge; [None] leaves every code path — and thus every
         instance id — exactly as in the ungoverned parser *)
  trace : Trace.t option;
      (* span/event sink; [None] costs one branch per fix-point round
         and per enforcement — tracing never influences parsing *)
}

(* Deadline probe for hot loops: cheap when the gauge is absent, throttled
   when present.  Raising [Truncated] reuses the parser's existing
   best-effort abort path, so a budget trip still yields maximal partial
   trees. *)
let probe st =
  match st.gauge with
  | None -> ()
  | Some g -> if not (Budget.tick g Budget.Parse) then raise Truncated

let find_vec st sym = Hashtbl.find_opt st.store sym

let get_vec st sym =
  match Hashtbl.find_opt st.store sym with
  | Some v -> v
  | None ->
    let v = vec_make () in
    Hashtbl.replace st.store sym v;
    v

let get_index st sym (v : vec) =
  match Hashtbl.find_opt st.sindex sym with
  | Some sx -> sx
  | None ->
    let sx =
      Spatial_index.create ~alive:(fun idx ->
          (Array.unsafe_get v.arr idx).Instance.alive)
    in
    Hashtbl.replace st.sindex sym sx;
    sx

(* Rollback notifications keep the spatial index's dead-entry accounting
   in step with the store, so heavily-pruned bands get compacted instead
   of being rescanned corpse by corpse. *)
let note_kill st (i : Instance.t) =
  match Hashtbl.find_opt st.sindex i.Instance.sym with
  | Some sx -> Spatial_index.note_killed sx
  | None -> ()

(* Live instances in creation order (oldest first): downstream
   derivations then inherit the priority that production order
   established (earlier productions yield smaller ids, and maximal-tree
   selection prefers smaller ids on ties). *)
let live_instances st sym =
  match find_vec st sym with
  | None -> []
  | Some v ->
    let out = ref [] in
    for i = v.len - 1 downto 0 do
      let inst = Array.unsafe_get v.arr i in
      if inst.Instance.alive then out := inst :: !out
    done;
    !out

let add_instance st inst =
  let sym = inst.Instance.sym in
  let v = get_vec st sym in
  let idx = v.len in
  vec_push ~filler:st.filler v inst;
  if st.hints_enabled then
    Spatial_index.add (get_index st sym v) ~idx inst.Instance.box

let fresh_id st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let create_instance st (p : G.Production.t) arr =
  if st.created >= st.options.max_instances then raise Truncated;
  (match st.gauge with
   | None -> ()
   | Some g -> if not (Budget.instance g) then raise Truncated);
  let children = Array.to_list arr in
  let sem = p.build arr in
  let inst =
    Instance.make ~id:(fresh_id st) ~sym:p.head ~prod:p.name ~children ~sem
  in
  st.created <- st.created + 1;
  add_instance st inst;
  Log.debug (fun m ->
      m "new %a by %s from [%a]" Instance.pp inst p.name
        Fmt.(list ~sep:comma Instance.pp)
        children)

let marks_for st (p : G.Production.t) arity =
  match Hashtbl.find_opt st.marks p.name with
  | Some m -> m
  | None ->
    let m = Array.make arity 0 in
    Hashtbl.replace st.marks p.name m;
    m

let plan_for st (p : G.Production.t) arity =
  match Hashtbl.find_opt st.plans p.name with
  | Some pl -> pl
  | None ->
    let pl = Array.make arity [] in
    List.iter
      (fun (h : Hint.t) ->
         (* A hint becomes checkable at the later of its two slots, when
            the earlier one is already bound. *)
         let slot = max h.a h.b and other = min h.a h.b in
         pl.(slot) <- { other; rel = h.rel; cand_first = h.a > h.b } :: pl.(slot))
      p.hints;
    Array.iteri (fun i l -> pl.(i) <- List.rev l) pl;
    Hashtbl.replace st.plans p.name pl;
    pl

let guard_admits st (p : G.Production.t) chosen =
  st.guards_tried <- st.guards_tried + 1;
  let ok = p.guard chosen in
  if ok then st.guards_admitted <- st.guards_admitted + 1;
  ok

(* Exact hint evaluation against the already-bound slots.  Sound
   pre-filtering only: every hint is implied by the guard (the Hint
   contract), so a candidate rejected here could never have produced an
   instance — the enumeration merely skips subtrees the guard would have
   rejected at every leaf. *)
let hints_ok (checks : slot_check list) chosen (cand : Instance.t) =
  List.for_all
    (fun c ->
       let other = (Array.unsafe_get chosen c.other).Instance.box in
       if c.cand_first then Hint.holds_rel c.rel cand.Instance.box other
       else Hint.holds_rel c.rel other cand.Instance.box)
    checks

(* Pick the tightest conservative probe region the bound anchors allow:
   the narrowest y-interval drives the band probe, the narrowest
   x-interval pre-filters entries.  Intervals from different hints can be
   combined axis-by-axis because each is independently implied by the
   guard. *)
let probe_region (checks : slot_check list) chosen =
  let best_y = ref None and best_x = ref None in
  let narrow best (lo, hi) =
    match !best with
    | Some (blo, bhi) when bhi - blo <= hi - lo -> ()
    | _ -> best := Some (lo, hi)
  in
  List.iter
    (fun c ->
       let anchor = (Array.unsafe_get chosen c.other).Instance.box in
       let r = Hint.region c.rel ~anchor ~anchor_is_first:(not c.cand_first) in
       (match r.Hint.y with Some iv -> narrow best_y iv | None -> ());
       (match r.Hint.x with Some iv -> narrow best_x iv | None -> ()))
    checks;
  match !best_y with
  | None -> None
  | Some (y_lo, y_hi) -> Some (y_lo, y_hi, !best_x)

(* Scans shorter than this are cheaper than a banded probe. *)
let probe_min_scan = 16

(* Semi-naive application of one production (the Datalog delta trick).
   Each component slot records the store length seen at the previous
   application; a candidate at an index past that watermark is "delta".
   Only combinations binding at least one delta child are enumerated —
   every older combination was enumerated by an earlier round, so no
   dedup table is needed.  The enumeration order is the same
   lexicographic nested-loop order as the naive reference (the delta
   requirement only skips subtrees the reference would have discarded
   against its dedup table), so instance ids — and therefore every
   downstream tie-break — come out identical.

   When the production carries hints and the engine has them enabled,
   slots whose hints anchor to an already-bound component enumerate the
   spatially compatible candidate subset instead of the whole store:
   either through the row-band index (candidates come back in ascending
   creation order, so the enumeration order is untouched) or, for short
   scans, by checking the hint relations inline before recursing.  The
   guard is still evaluated on every surviving combination.  Returns
   true when at least one new instance was created. *)
let apply_production_delta st (p : G.Production.t) =
  let comps = Array.of_list p.components in
  let arity = Array.length comps in
  let marks = marks_for st p arity in
  let vecs = Array.map (fun sym -> get_vec st sym) comps in
  let plan =
    if st.hints_enabled && p.hints <> [] then plan_for st p arity
    else [||]
  in
  (* Snapshot lengths: instances created by this very application only
     become candidates in the next round, as in the reference. *)
  let lens = Array.map (fun v -> v.len) vecs in
  (* delta_from.(i): some slot >= i has delta candidates. *)
  let delta_from = Array.make (arity + 1) false in
  for i = arity - 1 downto 0 do
    delta_from.(i) <- delta_from.(i + 1) || lens.(i) > marks.(i)
  done;
  let nothing_new = not delta_from.(0) in
  if nothing_new then false
  else if Array.exists (fun l -> l = 0) lens then begin
    (* A component has no instances at all: the production cannot fire,
       but the watermarks still advance past whatever the other slots
       gained. *)
    Array.blit lens 0 marks 0 arity;
    false
  end
  else begin
    let chosen = Array.make arity (Array.unsafe_get vecs.(0).arr 0) in
    let added = ref false in
    let rec assign i cover have_delta =
      probe st;
      if i = arity then begin
        if guard_admits st p chosen then begin
          create_instance st p (Array.copy chosen);
          added := true
        end
      end
      else begin
        let v = vecs.(i) in
        let checks = if plan = [||] then [] else plan.(i) in
        (* If no delta child is bound yet and no later slot can supply
           one, this slot must: start at its watermark. *)
        let start =
          if have_delta || delta_from.(i + 1) then 0 else marks.(i)
        in
        let stop = lens.(i) in
        (* Cheapest rejections first: liveness, then cover disjointness
           (word operations), then the hint relations — geometry runs
           only on candidates that would otherwise recurse.  Filter
           order cannot change the admitted set, only who pays for the
           rejection. *)
        let inspect idx =
          let cand = Array.unsafe_get v.arr idx in
          if
            cand.Instance.alive
            && Bitset.disjoint cover cand.cover
            && (checks == [] || hints_ok checks chosen cand)
          then begin
            Array.unsafe_set chosen i cand;
            assign (i + 1)
              (Bitset.union cover cand.cover)
              (have_delta || idx >= marks.(i))
          end
        in
        let scan () =
          for idx = start to stop - 1 do
            inspect idx
          done
        in
        if checks == [] || stop - start < probe_min_scan then scan ()
        else
          match probe_region checks chosen with
          | None -> scan ()
          | Some (y_lo, y_hi, x) ->
            (match Hashtbl.find_opt st.sindex comps.(i) with
             | None -> scan ()
             | Some sx ->
               let cands =
                 Spatial_index.query sx ~y_lo ~y_hi ~x ~start ~stop
               in
               st.index_probes <- st.index_probes + 1;
               st.index_pruned <-
                 st.index_pruned + (stop - start) - Array.length cands;
               Array.iter inspect cands)
      end
    in
    (try assign 0 (Bitset.empty st.universe) false
     with Truncated ->
       Array.blit lens 0 marks 0 arity;
       raise Truncated);
    Array.blit lens 0 marks 0 arity;
    !added
  end

(* Naive reference application: re-enumerate the full cross product of
   live instances and discard repeats against a dedup table.  Kept as
   the oracle for the equivalence suite ([options.semi_naive = false]).
   Hints are deliberately ignored here — the oracle defines the
   semantics the hinted engines must reproduce. *)
let apply_production_naive st (p : G.Production.t) =
  let candidates =
    List.map (fun sym -> Array.of_list (live_instances st sym)) p.components
  in
  let arity = List.length p.components in
  let candidates = Array.of_list candidates in
  let chosen = Array.make arity None in
  let added = ref false in
  let rec assign i cover =
    probe st;
    if i = arity then begin
      let arr = Array.map (fun c -> Option.get c) chosen in
      if guard_admits st p arr then begin
        let key = (p.name, Array.map (fun (c : Instance.t) -> c.id) arr) in
        if not (Hashtbl.mem st.dedup key) then begin
          Hashtbl.replace st.dedup key ();
          create_instance st p arr;
          added := true
        end
      end
    end
    else
      Array.iter
        (fun (cand : Instance.t) ->
           if cand.alive && Bitset.disjoint cover cand.cover then begin
             chosen.(i) <- Some cand;
             assign (i + 1) (Bitset.union cover cand.cover);
             chosen.(i) <- None
           end)
        candidates.(i)
  in
  if Array.exists (fun c -> Array.length c = 0) candidates then ()
  else assign 0 (Bitset.empty st.universe);
  !added

(* Fix-point instantiation of one symbol (procedure [instantiate] of
   Figure 11).  Under a trace, every fix-point round becomes one span
   carrying the [stats] deltas it produced — which round of which symbol
   created, pruned and rolled back how much, and what the guards and the
   spatial index did for it.  The untraced path is the code that existed
   before tracing: one [None] branch per round. *)
let instantiate st sym =
  let productions = G.Grammar.productions_with_head st.grammar sym in
  let apply =
    if st.options.semi_naive then apply_production_delta
    else apply_production_naive
  in
  let sym_name =
    match st.trace with None -> "" | Some _ -> Fmt.str "%a" Symbol.pp sym
  in
  let rec loop round =
    (match st.gauge with
     | None -> ()
     | Some g -> if not (Budget.round g) then raise Truncated);
    let progressed =
      match st.trace with
      | None -> List.fold_left (fun acc p -> apply st p || acc) false productions
      | Some _ ->
        let t0 = Budget.now_s () in
        let created0 = st.created and pruned0 = st.pruned in
        let rolled0 = st.rolled_back in
        let tried0 = st.guards_tried and admitted0 = st.guards_admitted in
        let probes0 = st.index_probes and ipruned0 = st.index_pruned in
        let progressed =
          List.fold_left (fun acc p -> apply st p || acc) false productions
        in
        Trace.span st.trace ~cat:"parser.round" sym_name ~t0
          ~t1:(Budget.now_s ())
          ~args:
            [ ("round", Trace.Int round);
              ("created", Trace.Int (st.created - created0));
              ("pruned", Trace.Int (st.pruned - pruned0));
              ("rolled_back", Trace.Int (st.rolled_back - rolled0));
              ("guards_tried", Trace.Int (st.guards_tried - tried0));
              ("guards_admitted",
               Trace.Int (st.guards_admitted - admitted0));
              ("index_probes", Trace.Int (st.index_probes - probes0));
              ("index_pruned", Trace.Int (st.index_pruned - ipruned0)) ];
        progressed
    in
    if progressed then loop (round + 1)
  in
  loop 0

(* Above this many winner×loser pairs, [enforce] buckets the winners by
   covered token so each loser only meets the winners it can actually
   conflict with. *)
(* Bucketing pays only when covers are sparse relative to the universe
   — many-row interfaces, where most winner/loser pairs share no token.
   On narrow universes nearly every pair conflicts, so bucketing would
   reproduce the quadratic scan with allocation on top; the universe
   floor keeps those on the plain path. *)
let enforce_bucket_min_pairs = 2048

let enforce_bucket_min_universe = 64

(* Enforce one preference over the current instances (procedure [enforce]).
   Both sides are snapshotted once: enforcement only ever kills
   instances, so the snapshots plus the per-element [alive] re-checks
   are equivalent to re-filtering the store after every rollback — a
   rollback can invalidate entries but never add new ones.

   Two instances conflict only when their covers intersect, i.e. they
   share at least one token — so for large preference fronts the
   winners are bucketed by covered token and each loser scans the
   merged (creation-ordered, deduplicated) buckets of its own tokens
   instead of the full winner list.  The candidate sequence each loser
   sees is the original winner order restricted to winners sharing a
   token, and skipped winners satisfy [not (conflicts v1 v2)], so kills
   (and their order) are identical to the quadratic scan. *)
let enforce st (r : G.Preference.t) =
  let winners = live_instances st r.winner in
  let losers = live_instances st r.loser in
  let on_kill = note_kill st in
  let try_kill (v1 : Instance.t) (v2 : Instance.t) =
    if v1.alive && v2.alive && v1.id <> v2.id
    && Instance.conflicts v1 v2
    && r.conflict v1 v2 && r.wins v1 v2
    && not (Instance.is_descendant v2 ~of_:v1)
    then begin
      let killed = Instance.rollback ~on_kill v2 in
      st.pruned <- st.pruned + 1;
      st.rolled_back <- st.rolled_back + (killed - 1);
      Log.debug (fun m ->
          m "preference %s: %a beats %a (%d rolled back)"
            r.G.Preference.name Instance.pp v1 Instance.pp v2
            (killed - 1))
    end
  in
  let nw = List.length winners in
  if
    st.universe < enforce_bucket_min_universe || nw = 0
    || nw * List.length losers < enforce_bucket_min_pairs
  then
    List.iter
      (fun (v2 : Instance.t) ->
         probe st;
         if v2.alive then
           List.iter (fun (v1 : Instance.t) -> try_kill v1 v2) winners)
      losers
  else begin
    let warr = Array.of_list winners in
    let buckets = Array.make st.universe [] in
    Array.iteri
      (fun ord (w : Instance.t) ->
         List.iter
           (fun t -> buckets.(t) <- ord :: buckets.(t))
           (Bitset.elements w.cover))
      warr;
    (* Per-loser dedup by marking winner ordinals: each bucket entry is
       visited once, and only the (usually few) marked ordinals are
       sorted back into creation order — never the full winner list. *)
    let marked = Bytes.make nw '\000' in
    List.iter
      (fun (v2 : Instance.t) ->
         probe st;
         if v2.alive then begin
           let touched = ref [] in
           List.iter
             (fun t ->
                List.iter
                  (fun ord ->
                     if Bytes.unsafe_get marked ord = '\000' then begin
                       Bytes.unsafe_set marked ord '\001';
                       touched := ord :: !touched
                     end)
                  buckets.(t))
             (Bitset.elements v2.cover);
           let cands = List.sort Int.compare !touched in
           List.iter
             (fun ord ->
                Bytes.unsafe_set marked ord '\000';
                try_kill (Array.unsafe_get warr ord) v2)
             cands
         end)
      losers
  end

(* Rollback annotation: one span per enforcement that actually killed
   something, naming the preference and its kill counts.  Silent
   enforcements (no conflict on the current front) are not recorded —
   a trace shows where trees died, not every scan. *)
let enforce_traced st (r : G.Preference.t) =
  match st.trace with
  | None -> enforce st r
  | Some _ ->
    let t0 = Budget.now_s () in
    let pruned0 = st.pruned and rolled0 = st.rolled_back in
    enforce st r;
    if st.pruned > pruned0 || st.rolled_back > rolled0 then
      Trace.span st.trace ~cat:"parser.enforce" r.G.Preference.name ~t0
        ~t1:(Budget.now_s ())
        ~args:
          [ ("pruned", Trace.Int (st.pruned - pruned0));
            ("rolled_back", Trace.Int (st.rolled_back - rolled0)) ]

(* Symbol -> preferences involving it, precomputed once per parse (the
   schedule loop used to re-filter the full preference list for every
   symbol). *)
let preferences_by_symbol (g : G.Grammar.t) =
  let tbl : (Symbol.t, G.Preference.t list) Hashtbl.t = Hashtbl.create 32 in
  let push sym r =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl sym) in
    Hashtbl.replace tbl sym (r :: prev)
  in
  List.iter
    (fun (r : G.Preference.t) ->
       push r.winner r;
       if not (Symbol.equal r.winner r.loser) then push r.loser r)
    g.preferences;
  (* Lists were built by consing over the grammar order; restore it. *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.iter (fun k -> Hashtbl.replace tbl k (List.rev (Hashtbl.find tbl k))) keys;
  tbl

(* d-edge-only topological order, used when scheduling is disabled. *)
let d_only_order (g : G.Grammar.t) =
  let bare =
    G.Grammar.make ~terminals:g.terminals ~start:g.start
      ~productions:g.productions ()
  in
  (G.Schedule.build bare).G.Schedule.order

let all_live_list st =
  Hashtbl.fold
    (fun _sym v acc ->
       let out = ref acc in
       for i = 0 to v.len - 1 do
         let inst = Array.unsafe_get v.arr i in
         if inst.Instance.alive then out := inst :: !out
       done;
       !out)
    st.store []
  |> List.sort (fun (a : Instance.t) b -> Int.compare a.id b.id)

let reachable_ids roots =
  let seen = Hashtbl.create 256 in
  let rec go (i : Instance.t) =
    if not (Hashtbl.mem seen i.id) then begin
      Hashtbl.replace seen i.id ();
      List.iter go i.children
    end
  in
  List.iter go roots;
  seen

(* When a governed parse trips, the instance store can hold far more
   tops than any intact interface produces (an exhaustive-mode blow-up
   creates tens of thousands), and the quadratic subsumption pass below
   would dwarf the deadline that stopped the parse.  Maximization is
   then best-effort too: only this many of the best-ranked tops enter
   subsumption.  Untripped runs are never windowed. *)
let tripped_tops_window = 1024

let maximal_trees st ~tripped =
  let tops =
    List.filter
      (fun (i : Instance.t) ->
         (not (Symbol.is_terminal i.sym))
         && not (List.exists (fun (p : Instance.t) -> p.alive) i.parents))
      (all_live_list st)
  in
  (* Maximum subsumption: drop any top whose cover is contained in the
     cover of an already-kept top.  Sorting big-to-small makes one pass
     sufficient and keeps the result deterministic. *)
  (* Between equal covers, prefer the interpretation that yields query
     conditions (e.g. an EnumRB top over a bare Op top), then the earliest
     instance for determinism.  The keys are computed once up front:
     [collect_conditions] walks the tree, far too costly inside a sort
     comparator when tops number in the thousands. *)
  let decorated =
    List.map
      (fun (i : Instance.t) ->
         (Bitset.cardinal i.cover,
          List.length (Instance.collect_conditions i),
          i))
      tops
  in
  let sorted =
    List.sort
      (fun (na, ca, (a : Instance.t)) (nb, cb, (b : Instance.t)) ->
         match compare nb na with
         | 0 -> (match compare cb ca with 0 -> compare a.id b.id | c -> c)
         | c -> c)
      decorated
    |> List.map (fun (_, _, i) -> i)
  in
  let sorted =
    if tripped then List.filteri (fun i _ -> i < tripped_tops_window) sorted
    else sorted
  in
  List.rev
    (List.fold_left
       (fun kept (t : Instance.t) ->
          if List.exists (fun (k : Instance.t) -> Bitset.subset t.cover k.Instance.cover) kept
          then kept
          else t :: kept)
       [] sorted)

(* The filler never participates in parsing: it exists only so vector
   growth has something GC-neutral to put in unused slots. *)
let make_filler universe =
  let tok =
    { Token.id = 0; kind = Token.Text; box = Wqi_layout.Geometry.origin;
      sval = ""; name = ""; options = []; value = ""; checked = false;
      multiple = false }
  in
  Instance.of_token ~id:(-1) ~universe:(max 1 universe) tok

type compiled = {
  grammar : G.Grammar.t;
  name : string;
  version : string;
  schedule : G.Schedule.t;
  d_order : Symbol.t list;
  prefs_by_sym : (Symbol.t, G.Preference.t list) Hashtbl.t;
}

(* Everything is computed eagerly: compiled packs are shared across
   serving domains, and a lazy thunk forced concurrently from several
   domains would race. *)
let compile ?(name = "anonymous") ?(version = "0") grammar =
  { grammar;
    name;
    version;
    schedule = G.Schedule.build grammar;
    d_order = d_only_order grammar;
    prefs_by_sym = preferences_by_symbol grammar }

let parse_compiled ?gauge ?trace ?(options = default_options) compiled tokens =
  let grammar = compiled.grammar in
  let universe = List.length tokens in
  let st =
    { grammar;
      store = Hashtbl.create 64;
      sindex = Hashtbl.create 64;
      dedup = Hashtbl.create (if options.semi_naive then 1 else 1024);
      marks = Hashtbl.create 64;
      plans = Hashtbl.create 64;
      universe;
      filler = make_filler universe;
      hints_enabled = options.semi_naive && options.use_hints;
      next_id = 0;
      created = 0;
      pruned = 0;
      rolled_back = 0;
      guards_tried = 0;
      guards_admitted = 0;
      index_probes = 0;
      index_pruned = 0;
      options;
      gauge;
      trace }
  in
  let truncated = ref false in
  (* Token instances are charged against the budget too: on a trip the
     instances built so far are kept (a prefix in reading order) and the
     derivation phase is skipped — the merger still sees the full token
     list and reports the remainder as unparsed. *)
  let token_instances =
    let rec go acc = function
      | [] -> List.rev acc
      | tok :: rest ->
        let within =
          match gauge with None -> true | Some g -> Budget.instance g
        in
        if not within then begin
          truncated := true;
          List.rev acc
        end
        else begin
          let inst = Instance.of_token ~id:(fresh_id st) ~universe tok in
          st.created <- st.created + 1;
          add_instance st inst;
          go (inst :: acc) rest
        end
    in
    go [] tokens
  in
  let schedule =
    if options.use_scheduling then compiled.schedule
    else
      { G.Schedule.order = compiled.d_order; transformed = []; relaxed = [] }
  in
  let prefs_for sym =
    Option.value ~default:[] (Hashtbl.find_opt compiled.prefs_by_sym sym)
  in
  (try
     if not !truncated then begin
       List.iter
         (fun sym ->
            Log.debug (fun m -> m "instantiating %a" Symbol.pp sym);
            instantiate st sym;
            if options.use_preferences && options.use_scheduling then
              List.iter (enforce_traced st) (prefs_for sym))
         schedule.G.Schedule.order;
       (* Late pruning when scheduling is off; also a final sweep in the
          scheduled mode for relaxed preferences whose loser precedes its
          winner. *)
       if options.use_preferences then
         if not options.use_scheduling then
           List.iter (enforce_traced st) grammar.preferences
         else List.iter (enforce_traced st) schedule.G.Schedule.relaxed
     end
   with Truncated -> truncated := true);
  if !truncated then
    Trace.instant trace ~cat:"parser"
      ~args:[ ("created", Trace.Int st.created) ]
      "budget_trip";
  let all_live = all_live_list st in
  let maximal =
    Trace.with_span trace ~cat:"parser" "maximize" (fun () ->
        maximal_trees st ~tripped:(!truncated && gauge <> None))
  in
  let complete =
    List.find_opt
      (fun (i : Instance.t) ->
         Symbol.equal i.sym grammar.start
         && Bitset.cardinal i.cover = universe)
      all_live
  in
  let in_maximal = reachable_ids maximal in
  let temporary = st.created - Hashtbl.length in_maximal in
  { tokens;
    token_instances;
    all_live;
    maximal;
    complete;
    stats =
      { created = st.created;
        live = List.length all_live;
        pruned = st.pruned;
        rolled_back = st.rolled_back;
        temporary;
        truncated = !truncated;
        guards_tried = st.guards_tried;
        guards_admitted = st.guards_admitted;
        index_probes = st.index_probes;
        index_pruned = st.index_pruned } }

let parse ?gauge ?trace ?options grammar tokens =
  parse_compiled ?gauge ?trace ?options (compile grammar) tokens

let count_trees result =
  let universe = List.length result.tokens in
  let complete_trees =
    List.filter
      (fun (i : Instance.t) ->
         (not (Symbol.is_terminal i.sym))
         && Bitset.cardinal i.cover = universe)
      result.all_live
  in
  let start_trees =
    List.filter
      (fun (i : Instance.t) -> i.prod <> None)
      complete_trees
  in
  if start_trees <> [] then List.length start_trees
  else List.length result.maximal
