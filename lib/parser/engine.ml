module G = Wqi_grammar
module Instance = G.Instance
module Symbol = G.Symbol
module Bitset = G.Bitset
module Spatial_index = G.Spatial_index
module Token = Wqi_token.Token
module Budget = Wqi_budget.Budget
module Trace = Wqi_obs.Trace

let src = Logs.Src.create "wqi.parser" ~doc:"Best-effort 2P parser"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  use_preferences : bool;
  use_scheduling : bool;
  max_instances : int;
  semi_naive : bool;
  use_hints : bool;
}

let default_options =
  { use_preferences = true; use_scheduling = true; max_instances = 200_000;
    semi_naive = true; use_hints = true }

type stats = {
  created : int;
  live : int;
  pruned : int;
  rolled_back : int;
  temporary : int;
  truncated : bool;
  guards_tried : int;
  guards_admitted : int;
  index_probes : int;
  index_pruned : int;
}

type result = {
  tokens : Token.t list;
  token_instances : Instance.t list;
  all_live : Instance.t list;
  maximal : Instance.t list;
  complete : Instance.t option;
  stats : stats;
}

exception Truncated

(* The parse-time state is a thin record over the pooled {!Arena}: all
   per-symbol storage lives in the arena's columns, all per-production
   scratch in its flat arrays at the offsets {!Dispatch} assigned at
   compile time.  [small] selects the word-cover fast path (universes of
   at most [Bitset.bits_per_word] tokens — every interface in the
   paper's corpus); larger universes run the same algorithm on boxed
   covers. *)
type state = {
  grammar : G.Grammar.t;
  tables : Dispatch.t;
  arena : Arena.t;
  universe : int;
  small : bool;
  hints_enabled : bool;
  on_kill : Instance.t -> unit;
  mutable next_id : int;
  mutable created : int;
  mutable pruned : int;
  mutable rolled_back : int;
  mutable guards_tried : int;
  mutable guards_admitted : int;
  mutable index_probes : int;
  mutable index_pruned : int;
  options : options;
  gauge : Budget.gauge option;
      (* resource gauge; [None] leaves every code path — and thus every
         instance id — exactly as in the ungoverned parser *)
  trace : Trace.t option;
      (* span/event sink; [None] costs one branch per fix-point round
         and per enforcement — tracing never influences parsing *)
}

(* Deadline probe for hot loops: cheap when the gauge is absent, throttled
   when present.  Raising [Truncated] reuses the parser's existing
   best-effort abort path, so a budget trip still yields maximal partial
   trees. *)
let probe st =
  match st.gauge with
  | None -> ()
  | Some g -> if not (Budget.tick g Budget.Parse) then raise Truncated

(* Live instances of one symbol in creation order (oldest first):
   downstream derivations then inherit the priority that production
   order established (earlier productions yield smaller ids, and
   maximal-tree selection prefers smaller ids on ties).  List-building
   is off the fast path — the naive oracle and the big-universe
   preference scan use it; the word-cover engine walks columns. *)
let live_instances st sid =
  let col = st.arena.Arena.cols.(sid) in
  let out = ref [] in
  for i = col.Arena.len - 1 downto 0 do
    let inst = Array.unsafe_get col.Arena.inst i in
    if inst.Instance.alive then out := inst :: !out
  done;
  !out

let add_instance st sid (inst : Instance.t) ~bits =
  let a = st.arena in
  let col = a.Arena.cols.(sid) in
  let idx = Arena.push a col inst ~bits in
  Arena.record_id a ~id:inst.Instance.id ~col:sid ~idx

let fresh_id st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let charge_instance st =
  if st.created >= st.options.max_instances then raise Truncated;
  match st.gauge with
  | None -> ()
  | Some g -> if not (Budget.instance g) then raise Truncated

(* Boxed creation path (naive oracle and big universes): cover and box
   recomputed from the children by [Instance.make], exactly as the
   reference semantics specify. *)
let create_instance st (fp : Dispatch.fprod) arr =
  charge_instance st;
  let p = fp.Dispatch.prod in
  let children = Array.to_list arr in
  let sem = p.G.Production.build arr in
  let inst =
    Instance.make ~id:(fresh_id st) ~sym:p.head ~prod:p.name ~children ~sem
  in
  st.created <- st.created + 1;
  let bits = if st.small then Bitset.to_word inst.Instance.cover else 0 in
  add_instance st fp.Dispatch.head inst ~bits

(* Word-cover creation path: the enumeration already carried the cover
   as a raw word and the bound slots' coordinates in the arena scratch,
   so the instance is assembled without re-unioning anything.  Field
   values are identical to what [Instance.make] computes. *)
let create_instance_small st (fp : Dispatch.fprod) chosen cover_bits =
  charge_instance st;
  let p = fp.Dispatch.prod in
  let arr = Array.copy chosen in
  let children = Array.to_list arr in
  let sem = p.G.Production.build arr in
  let a = st.arena in
  let mb = fp.Dispatch.mark_base in
  let x1 = ref a.Arena.sx1.(mb) and y1 = ref a.Arena.sy1.(mb) in
  let x2 = ref a.Arena.sx2.(mb) and y2 = ref a.Arena.sy2.(mb) in
  for i = 1 to fp.Dispatch.arity - 1 do
    let o = mb + i in
    if a.Arena.sx1.(o) < !x1 then x1 := a.Arena.sx1.(o);
    if a.Arena.sy1.(o) < !y1 then y1 := a.Arena.sy1.(o);
    if a.Arena.sx2.(o) > !x2 then x2 := a.Arena.sx2.(o);
    if a.Arena.sy2.(o) > !y2 then y2 := a.Arena.sy2.(o)
  done;
  let box =
    { Wqi_layout.Geometry.x1 = !x1; y1 = !y1; x2 = !x2; y2 = !y2 }
  in
  let inst =
    Instance.prebuilt ~id:(fresh_id st) ~sym:p.G.Production.head ~prod:p.name
      ~children ~sem
      ~cover:(Bitset.of_word st.universe cover_bits)
      ~box
  in
  st.created <- st.created + 1;
  add_instance st fp.Dispatch.head inst ~bits:cover_bits

let guard_admits st (fp : Dispatch.fprod) chosen =
  st.guards_tried <- st.guards_tried + 1;
  let ok = fp.Dispatch.prod.G.Production.guard chosen in
  if ok then st.guards_admitted <- st.guards_admitted + 1;
  ok

(* ------------------------------------------------------------------ *)
(* Packed spatial checks                                               *)
(* ------------------------------------------------------------------ *)

(* Exact hint evaluation against the already-bound slots, on raw
   coordinates.  Each tag reproduces the corresponding
   [Wqi_layout.Geometry] predicate verbatim (candidate first), so the
   admitted set is identical to [Hint.holds_rel] on boxes.  Sound
   pre-filtering only: every hint is implied by the guard (the Hint
   contract), so a candidate rejected here could never have produced an
   instance. *)
let checks_hold (a : Arena.t) mb (checks : int array) cx1 cy1 cx2 cy2 =
  let n = Array.length checks in
  let rec go k =
    k >= n
    ||
    let meta = Array.unsafe_get checks k in
    let param = Array.unsafe_get checks (k + 1) in
    let o = mb + (meta lsr 4) in
    let ox1 = Array.unsafe_get a.Arena.sx1 o in
    let oy1 = Array.unsafe_get a.Arena.sy1 o in
    let ox2 = Array.unsafe_get a.Arena.sx2 o in
    let oy2 = Array.unsafe_get a.Arena.sy2 o in
    let ok =
      match meta land 15 with
      | 0 ->
        (* candidate left_of other *)
        cx2 <= ox1 + 2
        && ox1 - cx2 <= param
        && min cy2 oy2 - max cy1 oy1 > 0
      | 1 ->
        (* other left_of candidate *)
        ox2 <= cx1 + 2
        && cx1 - ox2 <= param
        && min cy2 oy2 - max cy1 oy1 > 0
      | 2 ->
        (* candidate above other *)
        cy2 <= oy1 + 2
        && oy1 - cy2 <= param
        && min cx2 ox2 - max cx1 ox1 > 0
      | 3 ->
        (* other above candidate *)
        oy2 <= cy1 + 2
        && cy1 - oy2 <= param
        && min cx2 ox2 - max cx1 ox1 > 0
      | 4 ->
        (* same_row *)
        let ov = min cy2 oy2 - max cy1 oy1 in
        2 * max 0 ov >= max 1 (min (cy2 - cy1) (oy2 - oy1))
      | 5 ->
        (* same_column *)
        let ov = min cx2 ox2 - max cx1 ox1 in
        2 * max 0 ov >= max 1 (min (cx2 - cx1) (ox2 - ox1))
      | 6 -> abs (cx1 - ox1) <= param
      | 7 -> abs (cy1 - oy1) <= param
      | _ -> abs (cy2 - oy2) <= param
    in
    ok && go (k + 2)
  in
  go 0

(* Pick the tightest conservative probe region the bound anchors allow:
   the narrowest y-interval drives the band probe, the narrowest
   x-interval pre-filters entries.  Intervals from different hints can
   be combined axis-by-axis because each is independently implied by
   the guard.  The per-tag regions are [Hint.region] evaluated on the
   anchor's coordinates; results land in the arena's [pr_*] scratch.
   Returns false when no hint constrains y — the band index cannot help
   then, and the caller falls back to a scan. *)
let probe_region (a : Arena.t) mb (checks : int array) =
  a.Arena.pr_have_y <- false;
  a.Arena.pr_have_x <- false;
  let set_y lo hi =
    if (not a.Arena.pr_have_y) || hi - lo < a.Arena.pr_y_hi - a.Arena.pr_y_lo
    then begin
      a.Arena.pr_have_y <- true;
      a.Arena.pr_y_lo <- lo;
      a.Arena.pr_y_hi <- hi
    end
  in
  let set_x lo hi =
    if (not a.Arena.pr_have_x) || hi - lo < a.Arena.pr_x_hi - a.Arena.pr_x_lo
    then begin
      a.Arena.pr_have_x <- true;
      a.Arena.pr_x_lo <- lo;
      a.Arena.pr_x_hi <- hi
    end
  in
  let n = Array.length checks in
  let k = ref 0 in
  while !k < n do
    let meta = Array.unsafe_get checks !k in
    let param = Array.unsafe_get checks (!k + 1) in
    let o = mb + (meta lsr 4) in
    let ox1 = Array.unsafe_get a.Arena.sx1 o in
    let oy1 = Array.unsafe_get a.Arena.sy1 o in
    let ox2 = Array.unsafe_get a.Arena.sx2 o in
    let oy2 = Array.unsafe_get a.Arena.sy2 o in
    (match meta land 15 with
     | 0 ->
       set_y oy1 oy2;
       set_x (ox1 - param) (ox1 + 2)
     | 1 ->
       set_y oy1 oy2;
       set_x (ox2 - 2) (ox2 + param)
     | 2 ->
       set_y (oy1 - param) (oy1 + 2);
       set_x ox1 ox2
     | 3 ->
       set_y (oy2 - 2) (oy2 + param);
       set_x ox1 ox2
     | 4 -> set_y oy1 oy2
     | 5 -> set_x ox1 ox2
     | 6 -> set_x (ox1 - param) (ox1 + param)
     | 7 -> set_y (oy1 - param) (oy1 + param)
     | _ -> set_y (oy2 - param) (oy2 + param));
    k := !k + 2
  done;
  a.Arena.pr_have_y

(* Scans shorter than this are cheaper than a banded probe.  Arena
   probing is cheap enough that only very short scans should bypass it
   (the old threshold of 16 left 10-20-token parses entirely unhinted —
   the BENCH_parse parse/20 anomaly). *)
let probe_min_scan = 4

(* ------------------------------------------------------------------ *)
(* Semi-naive production application                                   *)
(* ------------------------------------------------------------------ *)

(* Semi-naive application of one production (the Datalog delta trick).
   Each component slot records the store length seen at the previous
   application; a candidate at an index past that watermark is "delta".
   Only combinations binding at least one delta child are enumerated —
   every older combination was enumerated by an earlier round, so no
   dedup table is needed.  The enumeration order is the same
   lexicographic nested-loop order as the naive reference (the delta
   requirement only skips subtrees the reference would have discarded
   against its dedup table), so instance ids — and therefore every
   downstream tie-break — come out identical.

   When the production carries hints and the engine has them enabled,
   slots whose hints anchor to an already-bound component enumerate the
   spatially compatible candidate subset instead of the whole store:
   either through the row-band index (candidates come back in ascending
   creation order, so the enumeration order is untouched) or, for short
   scans, by checking the packed relations inline before recursing.
   The guard is still evaluated on every surviving combination.

   Common prologue for both cover representations: snapshot the slot
   lengths (instances created by this very application only become
   candidates in the next round, as in the reference), compute the
   delta-from flags, and report whether anything can fire at all.
   Returns true when the enumeration should run. *)
let application_ready (a : Arena.t) (fp : Dispatch.fprod) =
  let arity = fp.Dispatch.arity in
  let mb = fp.Dispatch.mark_base and db = fp.Dispatch.delta_base in
  let marks = a.Arena.marks and lens = a.Arena.lens in
  let pcols = a.Arena.pcols.(fp.Dispatch.ord) in
  let nothing_new = ref true and any_empty = ref false in
  for i = 0 to arity - 1 do
    let l = (Array.unsafe_get pcols i).Arena.len in
    Array.unsafe_set lens (mb + i) l;
    if l = 0 then any_empty := true;
    if l > Array.unsafe_get marks (mb + i) then nothing_new := false
  done;
  if !nothing_new then false
  else if !any_empty then begin
    (* A component has no instances at all: the production cannot fire,
       but the watermarks still advance past whatever the other slots
       gained. *)
    Array.blit lens mb marks mb arity;
    false
  end
  else begin
    let deltas = a.Arena.deltas in
    (* delta flag at [db + i]: some slot >= i has delta candidates. *)
    Bytes.unsafe_set deltas (db + arity) '\000';
    for i = arity - 1 downto 0 do
      Bytes.unsafe_set deltas (db + i)
        (if
           Bytes.unsafe_get deltas (db + i + 1) <> '\000'
           || Array.unsafe_get lens (mb + i) > Array.unsafe_get marks (mb + i)
         then '\001'
         else '\000')
    done;
    true
  end

(* Word-cover enumeration: covers are raw ints carried through the
   recursion (zero allocation per step), candidate filtering runs on the
   arena columns, and the instance is assembled from tracked state.
   Cheapest rejections first: liveness, then cover disjointness (word
   operations), then the packed hint relations — geometry runs only on
   candidates that would otherwise recurse.  Filter order cannot change
   the admitted set, only who pays for the rejection. *)
let apply_production_small st (fp : Dispatch.fprod) =
  let a = st.arena in
  if not (application_ready a fp) then false
  else begin
    let arity = fp.Dispatch.arity in
    let mb = fp.Dispatch.mark_base and db = fp.Dispatch.delta_base in
    let marks = a.Arena.marks and lens = a.Arena.lens in
    let deltas = a.Arena.deltas in
    let pcols = a.Arena.pcols.(fp.Dispatch.ord) in
    let chosen = a.Arena.chosen.(fp.Dispatch.ord) in
    let all_checks = fp.Dispatch.checks in
    let added = ref false in
    let rec assign i cover have_delta =
      probe st;
      if i = arity then begin
        if guard_admits st fp chosen then begin
          create_instance_small st fp chosen cover;
          added := true
        end
      end
      else begin
        let col = Array.unsafe_get pcols i in
        let checks =
          if st.hints_enabled then Array.unsafe_get all_checks i
          else Dispatch.no_checks
        in
        let mark0 = Array.unsafe_get marks (mb + i) in
        (* If no delta child is bound yet and no later slot can supply
           one, this slot must: start at its watermark. *)
        let start =
          if have_delta || Bytes.unsafe_get deltas (db + i + 1) <> '\000'
          then 0
          else mark0
        in
        let stop = Array.unsafe_get lens (mb + i) in
        let insts = col.Arena.inst and cbits = col.Arena.bits in
        let ax1 = col.Arena.x1 and ay1 = col.Arena.y1 in
        let ax2 = col.Arena.x2 and ay2 = col.Arena.y2 in
        let alive = col.Arena.alive in
        let nchecks = Array.length checks in
        (* The candidate body is duplicated across the scan and probe
           loops (instead of a shared [visit] closure) deliberately: the
           closure would capture the per-recursion [cover]/[have_delta]
           and be heap-allocated on every slot visit of every partial
           binding — thousands of allocations per parse on the hottest
           path. *)
        if
          nchecks = 0
          || stop - start < probe_min_scan
          || not (probe_region a mb checks)
        then
          for idx = start to stop - 1 do
            if Bytes.unsafe_get alive idx <> '\000' then begin
              let cb = Array.unsafe_get cbits idx in
              if cb land cover = 0 then begin
                let x1 = Array.unsafe_get ax1 idx in
                let y1 = Array.unsafe_get ay1 idx in
                let x2 = Array.unsafe_get ax2 idx in
                let y2 = Array.unsafe_get ay2 idx in
                if nchecks = 0 || checks_hold a mb checks x1 y1 x2 y2
                then begin
                  Array.unsafe_set chosen i (Array.unsafe_get insts idx);
                  let o = mb + i in
                  Array.unsafe_set a.Arena.sx1 o x1;
                  Array.unsafe_set a.Arena.sy1 o y1;
                  Array.unsafe_set a.Arena.sx2 o x2;
                  Array.unsafe_set a.Arena.sy2 o y2;
                  assign (i + 1) (cover lor cb) (have_delta || idx >= mark0)
                end
              end
            end
          done
        else begin
          let x_lo = if a.Arena.pr_have_x then a.Arena.pr_x_lo else min_int in
          let x_hi = if a.Arena.pr_have_x then a.Arena.pr_x_hi else max_int in
          Arena.sync_index col;
          let buf = a.Arena.qbufs.(i) in
          let n =
            Spatial_index.query_into col.Arena.index ~y_lo:a.Arena.pr_y_lo
              ~y_hi:a.Arena.pr_y_hi ~x_lo ~x_hi ~start ~stop buf
          in
          st.index_probes <- st.index_probes + 1;
          st.index_pruned <- st.index_pruned + (stop - start) - n;
          let cands = !buf in
          for k = 0 to n - 1 do
            let idx = Array.unsafe_get cands k in
            if Bytes.unsafe_get alive idx <> '\000' then begin
              let cb = Array.unsafe_get cbits idx in
              if cb land cover = 0 then begin
                let x1 = Array.unsafe_get ax1 idx in
                let y1 = Array.unsafe_get ay1 idx in
                let x2 = Array.unsafe_get ax2 idx in
                let y2 = Array.unsafe_get ay2 idx in
                if checks_hold a mb checks x1 y1 x2 y2 then begin
                  Array.unsafe_set chosen i (Array.unsafe_get insts idx);
                  let o = mb + i in
                  Array.unsafe_set a.Arena.sx1 o x1;
                  Array.unsafe_set a.Arena.sy1 o y1;
                  Array.unsafe_set a.Arena.sx2 o x2;
                  Array.unsafe_set a.Arena.sy2 o y2;
                  assign (i + 1) (cover lor cb) (have_delta || idx >= mark0)
                end
              end
            end
          done
        end
      end
    in
    (try assign 0 0 false
     with Truncated ->
       Array.blit lens mb marks mb arity;
       raise Truncated);
    Array.blit lens mb marks mb arity;
    !added
  end

(* Boxed-cover enumeration for universes past one word: same delta
   discipline and candidate filtering (the coordinate columns and
   packed checks still apply), with covers as [Bitset.t]. *)
let apply_production_big st (fp : Dispatch.fprod) =
  let a = st.arena in
  if not (application_ready a fp) then false
  else begin
    let arity = fp.Dispatch.arity in
    let mb = fp.Dispatch.mark_base and db = fp.Dispatch.delta_base in
    let marks = a.Arena.marks and lens = a.Arena.lens in
    let deltas = a.Arena.deltas in
    let pcols = a.Arena.pcols.(fp.Dispatch.ord) in
    let chosen = a.Arena.chosen.(fp.Dispatch.ord) in
    let all_checks = fp.Dispatch.checks in
    let added = ref false in
    let rec assign i cover have_delta =
      probe st;
      if i = arity then begin
        if guard_admits st fp chosen then begin
          create_instance st fp (Array.copy chosen);
          added := true
        end
      end
      else begin
        let col = Array.unsafe_get pcols i in
        let checks =
          if st.hints_enabled then Array.unsafe_get all_checks i
          else Dispatch.no_checks
        in
        let mark0 = Array.unsafe_get marks (mb + i) in
        let start =
          if have_delta || Bytes.unsafe_get deltas (db + i + 1) <> '\000'
          then 0
          else mark0
        in
        let stop = Array.unsafe_get lens (mb + i) in
        let insts = col.Arena.inst in
        let ax1 = col.Arena.x1 and ay1 = col.Arena.y1 in
        let ax2 = col.Arena.x2 and ay2 = col.Arena.y2 in
        let alive = col.Arena.alive in
        let nchecks = Array.length checks in
        (* Candidate body duplicated across both loops; see
           [apply_production_small]. *)
        if
          nchecks = 0
          || stop - start < probe_min_scan
          || not (probe_region a mb checks)
        then
          for idx = start to stop - 1 do
            if Bytes.unsafe_get alive idx <> '\000' then begin
              let cand = Array.unsafe_get insts idx in
              if Bitset.disjoint cover cand.Instance.cover then begin
                let x1 = Array.unsafe_get ax1 idx in
                let y1 = Array.unsafe_get ay1 idx in
                let x2 = Array.unsafe_get ax2 idx in
                let y2 = Array.unsafe_get ay2 idx in
                if nchecks = 0 || checks_hold a mb checks x1 y1 x2 y2
                then begin
                  Array.unsafe_set chosen i cand;
                  let o = mb + i in
                  Array.unsafe_set a.Arena.sx1 o x1;
                  Array.unsafe_set a.Arena.sy1 o y1;
                  Array.unsafe_set a.Arena.sx2 o x2;
                  Array.unsafe_set a.Arena.sy2 o y2;
                  assign (i + 1)
                    (Bitset.union cover cand.Instance.cover)
                    (have_delta || idx >= mark0)
                end
              end
            end
          done
        else begin
          let x_lo = if a.Arena.pr_have_x then a.Arena.pr_x_lo else min_int in
          let x_hi = if a.Arena.pr_have_x then a.Arena.pr_x_hi else max_int in
          Arena.sync_index col;
          let buf = a.Arena.qbufs.(i) in
          let n =
            Spatial_index.query_into col.Arena.index ~y_lo:a.Arena.pr_y_lo
              ~y_hi:a.Arena.pr_y_hi ~x_lo ~x_hi ~start ~stop buf
          in
          st.index_probes <- st.index_probes + 1;
          st.index_pruned <- st.index_pruned + (stop - start) - n;
          let cands = !buf in
          for k = 0 to n - 1 do
            let idx = Array.unsafe_get cands k in
            if Bytes.unsafe_get alive idx <> '\000' then begin
              let cand = Array.unsafe_get insts idx in
              if Bitset.disjoint cover cand.Instance.cover then begin
                let x1 = Array.unsafe_get ax1 idx in
                let y1 = Array.unsafe_get ay1 idx in
                let x2 = Array.unsafe_get ax2 idx in
                let y2 = Array.unsafe_get ay2 idx in
                if checks_hold a mb checks x1 y1 x2 y2 then begin
                  Array.unsafe_set chosen i cand;
                  let o = mb + i in
                  Array.unsafe_set a.Arena.sx1 o x1;
                  Array.unsafe_set a.Arena.sy1 o y1;
                  Array.unsafe_set a.Arena.sx2 o x2;
                  Array.unsafe_set a.Arena.sy2 o y2;
                  assign (i + 1)
                    (Bitset.union cover cand.Instance.cover)
                    (have_delta || idx >= mark0)
                end
              end
            end
          done
        end
      end
    in
    (try assign 0 (Bitset.empty st.universe) false
     with Truncated ->
       Array.blit lens mb marks mb arity;
       raise Truncated);
    Array.blit lens mb marks mb arity;
    !added
  end

(* Naive reference application: re-enumerate the full cross product of
   live instances and discard repeats against a dedup table.  Kept as
   the oracle for the equivalence suite ([options.semi_naive = false]).
   Hints are deliberately ignored here — the oracle defines the
   semantics the hinted engines must reproduce. *)
let apply_production_naive st (fp : Dispatch.fprod) =
  let arity = fp.Dispatch.arity in
  let candidates =
    Array.map
      (fun sid -> Array.of_list (live_instances st sid))
      fp.Dispatch.comps
  in
  let chosen = Array.make arity None in
  let dedup = st.arena.Arena.dedup in
  let pname = fp.Dispatch.prod.G.Production.name in
  let added = ref false in
  let rec assign i cover =
    probe st;
    if i = arity then begin
      let arr = Array.map (fun c -> Option.get c) chosen in
      if guard_admits st fp arr then begin
        let key = (pname, Array.map (fun (c : Instance.t) -> c.id) arr) in
        if not (Hashtbl.mem dedup key) then begin
          Hashtbl.replace dedup key ();
          create_instance st fp arr;
          added := true
        end
      end
    end
    else
      Array.iter
        (fun (cand : Instance.t) ->
           if cand.alive && Bitset.disjoint cover cand.cover then begin
             chosen.(i) <- Some cand;
             assign (i + 1) (Bitset.union cover cand.cover);
             chosen.(i) <- None
           end)
        candidates.(i)
  in
  if Array.exists (fun c -> Array.length c = 0) candidates then ()
  else assign 0 (Bitset.empty st.universe);
  !added

(* Fix-point instantiation of one symbol (procedure [instantiate] of
   Figure 11).  Under a trace, every fix-point round becomes one span
   carrying the [stats] deltas it produced — which round of which symbol
   created, pruned and rolled back how much, and what the guards and the
   spatial index did for it.  The untraced path is the code that existed
   before tracing: one [None] branch per round. *)
let instantiate st sid =
  let prods = st.tables.Dispatch.prods in
  let ords = st.tables.Dispatch.by_head.(sid) in
  let apply =
    if not st.options.semi_naive then apply_production_naive
    else if st.small then apply_production_small
    else apply_production_big
  in
  let run_round () =
    let progressed = ref false in
    for k = 0 to Array.length ords - 1 do
      if apply st prods.(Array.unsafe_get ords k) then progressed := true
    done;
    !progressed
  in
  let sym_name =
    match st.trace with
    | None -> ""
    | Some _ -> Fmt.str "%a" Symbol.pp st.tables.Dispatch.syms.(sid)
  in
  let rec loop round =
    (match st.gauge with
     | None -> ()
     | Some g -> if not (Budget.round g) then raise Truncated);
    let progressed =
      match st.trace with
      | None -> run_round ()
      | Some _ ->
        let t0 = Budget.now_s () in
        let created0 = st.created and pruned0 = st.pruned in
        let rolled0 = st.rolled_back in
        let tried0 = st.guards_tried and admitted0 = st.guards_admitted in
        let probes0 = st.index_probes and ipruned0 = st.index_pruned in
        let progressed = run_round () in
        Trace.span st.trace ~cat:"parser.round" sym_name ~t0
          ~t1:(Budget.now_s ())
          ~args:
            [ ("round", Trace.Int round);
              ("created", Trace.Int (st.created - created0));
              ("pruned", Trace.Int (st.pruned - pruned0));
              ("rolled_back", Trace.Int (st.rolled_back - rolled0));
              ("guards_tried", Trace.Int (st.guards_tried - tried0));
              ("guards_admitted",
               Trace.Int (st.guards_admitted - admitted0));
              ("index_probes", Trace.Int (st.index_probes - probes0));
              ("index_pruned", Trace.Int (st.index_pruned - ipruned0)) ];
        progressed
    in
    if progressed then loop (round + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Preference enforcement                                              *)
(* ------------------------------------------------------------------ *)

(* Above this many winner×loser pairs, [enforce] buckets the winners by
   covered token so each loser only meets the winners it can actually
   conflict with.  Bucketing pays only when covers are sparse relative
   to the universe — many-row interfaces, where most winner/loser pairs
   share no token.  On narrow universes nearly every pair conflicts, so
   bucketing would reproduce the quadratic scan with allocation on top;
   word-cover universes take the column scan below instead. *)
let enforce_bucket_min_pairs = 2048

(* Enforce one preference over the current instances (procedure
   [enforce]).  Enforcement only ever kills instances, so scanning the
   columns with per-pair [alive] re-checks is equivalent to
   re-filtering the store after every rollback — a rollback can
   invalidate entries but never add new ones.  Losers are visited in
   creation order, winners in creation order within each loser, so
   kills (and their order) are identical across engine variants.

   The word-cover path pre-filters pairs by cover-word intersection
   straight off the columns: skipped pairs satisfy
   [not (Instance.conflicts v1 v2)], which the reference scan would
   have rejected anyway. *)
let enforce st (r : G.Preference.t) =
  let try_kill (v1 : Instance.t) (v2 : Instance.t) =
    if v1.alive && v2.alive && v1.id <> v2.id
    && Instance.conflicts v1 v2
    && r.conflict v1 v2 && r.wins v1 v2
    && not (Instance.is_descendant v2 ~of_:v1)
    then begin
      let killed = Instance.rollback ~on_kill:st.on_kill v2 in
      st.pruned <- st.pruned + 1;
      st.rolled_back <- st.rolled_back + (killed - 1)
    end
  in
  let wsid = Dispatch.sym_id st.tables r.winner in
  let lsid = Dispatch.sym_id st.tables r.loser in
  if st.small then begin
    let wcol = st.arena.Arena.cols.(wsid) in
    let lcol = st.arena.Arena.cols.(lsid) in
    let wlen = wcol.Arena.len and llen = lcol.Arena.len in
    if wlen > 0 then begin
      let winsts = wcol.Arena.inst and wbits = wcol.Arena.bits in
      let linsts = lcol.Arena.inst and lbits = lcol.Arena.bits in
      for li = 0 to llen - 1 do
        let v2 = Array.unsafe_get linsts li in
        if v2.Instance.alive then begin
          probe st;
          let lb = Array.unsafe_get lbits li in
          for wi = 0 to wlen - 1 do
            if Array.unsafe_get wbits wi land lb <> 0 then
              try_kill (Array.unsafe_get winsts wi) v2
          done
        end
      done
    end
  end
  else begin
    (* Boxed covers: snapshot both sides (equivalent, see above), and
       bucket the winners by covered token for large fronts so each
       loser scans the merged (creation-ordered, deduplicated) buckets
       of its own tokens instead of the full winner list. *)
    let winners = live_instances st wsid in
    let losers = live_instances st lsid in
    let nw = List.length winners in
    if nw = 0 || nw * List.length losers < enforce_bucket_min_pairs then
      List.iter
        (fun (v2 : Instance.t) ->
           probe st;
           if v2.alive then
             List.iter (fun (v1 : Instance.t) -> try_kill v1 v2) winners)
        losers
    else begin
      let warr = Array.of_list winners in
      let buckets = Array.make st.universe [] in
      Array.iteri
        (fun ord (w : Instance.t) ->
           List.iter
             (fun t -> buckets.(t) <- ord :: buckets.(t))
             (Bitset.elements w.cover))
        warr;
      (* Per-loser dedup by marking winner ordinals: each bucket entry
         is visited once, and only the (usually few) marked ordinals are
         sorted back into creation order — never the full winner list. *)
      let marked = Bytes.make nw '\000' in
      List.iter
        (fun (v2 : Instance.t) ->
           probe st;
           if v2.alive then begin
             let touched = ref [] in
             List.iter
               (fun t ->
                  List.iter
                    (fun ord ->
                       if Bytes.unsafe_get marked ord = '\000' then begin
                         Bytes.unsafe_set marked ord '\001';
                         touched := ord :: !touched
                       end)
                    buckets.(t))
               (Bitset.elements v2.cover);
             let cands = List.sort Int.compare !touched in
             List.iter
               (fun ord ->
                  Bytes.unsafe_set marked ord '\000';
                  try_kill (Array.unsafe_get warr ord) v2)
               cands
           end)
        losers
    end
  end

(* Rollback annotation: one span per enforcement that actually killed
   something, naming the preference and its kill counts.  Silent
   enforcements (no conflict on the current front) are not recorded —
   a trace shows where trees died, not every scan. *)
let enforce_traced st (r : G.Preference.t) =
  match st.trace with
  | None -> enforce st r
  | Some _ ->
    let t0 = Budget.now_s () in
    let pruned0 = st.pruned and rolled0 = st.rolled_back in
    enforce st r;
    if st.pruned > pruned0 || st.rolled_back > rolled0 then
      Trace.span st.trace ~cat:"parser.enforce" r.G.Preference.name ~t0
        ~t1:(Budget.now_s ())
        ~args:
          [ ("pruned", Trace.Int (st.pruned - pruned0));
            ("rolled_back", Trace.Int (st.rolled_back - rolled0)) ]

(* Symbol -> preferences involving it, precomputed once per compile (the
   schedule loop used to re-filter the full preference list for every
   symbol). *)
let preferences_by_symbol (g : G.Grammar.t) =
  let tbl : (Symbol.t, G.Preference.t list) Hashtbl.t = Hashtbl.create 32 in
  let push sym r =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl sym) in
    Hashtbl.replace tbl sym (r :: prev)
  in
  List.iter
    (fun (r : G.Preference.t) ->
       push r.winner r;
       if not (Symbol.equal r.winner r.loser) then push r.loser r)
    g.preferences;
  (* Lists were built by consing over the grammar order; restore it. *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.iter (fun k -> Hashtbl.replace tbl k (List.rev (Hashtbl.find tbl k))) keys;
  tbl

(* d-edge-only topological order, used when scheduling is disabled. *)
let d_only_order (g : G.Grammar.t) =
  let bare =
    G.Grammar.make ~terminals:g.terminals ~start:g.start
      ~productions:g.productions ()
  in
  (G.Schedule.build bare).G.Schedule.order

(* ------------------------------------------------------------------ *)
(* Result assembly                                                     *)
(* ------------------------------------------------------------------ *)

let all_live_list st =
  let cols = st.arena.Arena.cols in
  let out = ref [] in
  for s = Array.length cols - 1 downto 0 do
    let col = Array.unsafe_get cols s in
    for i = col.Arena.len - 1 downto 0 do
      let inst = Array.unsafe_get col.Arena.inst i in
      if inst.Instance.alive then out := inst :: !out
    done
  done;
  List.sort (fun (a : Instance.t) b -> Int.compare a.id b.id) !out

let reachable_ids roots =
  let seen = Hashtbl.create 256 in
  let rec go (i : Instance.t) =
    if not (Hashtbl.mem seen i.id) then begin
      Hashtbl.replace seen i.id ();
      List.iter go i.children
    end
  in
  List.iter go roots;
  seen

(* When a governed parse trips, the instance store can hold far more
   tops than any intact interface produces (an exhaustive-mode blow-up
   creates tens of thousands), and the quadratic subsumption pass below
   would dwarf the deadline that stopped the parse.  Maximization is
   then best-effort too: only this many of the best-ranked tops enter
   subsumption.  Untripped runs are never windowed. *)
let tripped_tops_window = 1024

let maximal_trees ~tripped all_live =
  let tops =
    List.filter
      (fun (i : Instance.t) ->
         (not (Symbol.is_terminal i.sym))
         && not (List.exists (fun (p : Instance.t) -> p.alive) i.parents))
      all_live
  in
  (* Maximum subsumption: drop any top whose cover is contained in the
     cover of an already-kept top.  Sorting big-to-small makes one pass
     sufficient and keeps the result deterministic. *)
  (* Between equal covers, prefer the interpretation that yields query
     conditions (e.g. an EnumRB top over a bare Op top), then the earliest
     instance for determinism.  The keys are computed once up front:
     [collect_conditions] walks the tree, far too costly inside a sort
     comparator when tops number in the thousands. *)
  let decorated =
    List.map
      (fun (i : Instance.t) ->
         (Bitset.cardinal i.cover,
          List.length (Instance.collect_conditions i),
          i))
      tops
  in
  let sorted =
    List.sort
      (fun (na, ca, (a : Instance.t)) (nb, cb, (b : Instance.t)) ->
         match compare nb na with
         | 0 -> (match compare cb ca with 0 -> compare a.id b.id | c -> c)
         | c -> c)
      decorated
    |> List.map (fun (_, _, i) -> i)
  in
  let sorted =
    if tripped then List.filteri (fun i _ -> i < tripped_tops_window) sorted
    else sorted
  in
  List.rev
    (List.fold_left
       (fun kept (t : Instance.t) ->
          if List.exists (fun (k : Instance.t) -> Bitset.subset t.cover k.Instance.cover) kept
          then kept
          else t :: kept)
       [] sorted)

(* ------------------------------------------------------------------ *)
(* Compiled packs and the parse driver                                 *)
(* ------------------------------------------------------------------ *)

type compiled = {
  grammar : G.Grammar.t;
  name : string;
  version : string;
  schedule : G.Schedule.t;
  d_order : Symbol.t list;
  prefs_by_sym : (Symbol.t, G.Preference.t list) Hashtbl.t;
  tables : Dispatch.t;
  pool : Arena.pool;
}

(* Everything is computed eagerly: compiled packs are shared across
   serving domains, and a lazy thunk forced concurrently from several
   domains would race.  (The arena pool is the one mutable member, and
   it is a lock-free Atomic stack.) *)
let compile ?(name = "anonymous") ?(version = "0") grammar =
  let schedule = G.Schedule.build grammar in
  { grammar;
    name;
    version;
    schedule;
    d_order = d_only_order grammar;
    prefs_by_sym = preferences_by_symbol grammar;
    tables = Dispatch.build grammar;
    pool = Arena.make_pool () }

let parse_compiled ?gauge ?trace ?(options = default_options) compiled tokens =
  let grammar = compiled.grammar in
  let tables = compiled.tables in
  let universe = List.length tokens in
  let hints_enabled = options.semi_naive && options.use_hints in
  let arena = Arena.acquire compiled.pool tables in
  Fun.protect ~finally:(fun () -> Arena.release compiled.pool arena)
  @@ fun () ->
  let on_kill =
    (* Mirror rollback kills into the liveness column (and the spatial
       index's dead-entry accounting) — rollback walks boxed parent
       links across symbols, so the column cannot learn about kills any
       other way. *)
    fun (i : Instance.t) ->
      let id = i.Instance.id in
      let col = arena.Arena.cols.(arena.Arena.id2col.(id)) in
      let idx = arena.Arena.id2idx.(id) in
      Bytes.unsafe_set col.Arena.alive idx '\000';
      (* Compaction accounting only concerns registered entries. *)
      if hints_enabled && idx < col.Arena.indexed then
        Spatial_index.note_killed col.Arena.index
  in
  let st =
    { grammar;
      tables;
      arena;
      universe;
      small = universe <= Bitset.bits_per_word;
      hints_enabled;
      on_kill;
      next_id = 0;
      created = 0;
      pruned = 0;
      rolled_back = 0;
      guards_tried = 0;
      guards_admitted = 0;
      index_probes = 0;
      index_pruned = 0;
      options;
      gauge;
      trace }
  in
  let truncated = ref false in
  (* Token instances are charged against the budget too: on a trip the
     instances built so far are kept (a prefix in reading order) and the
     derivation phase is skipped — the merger still sees the full token
     list and reports the remainder as unparsed. *)
  let token_instances =
    let rec go acc = function
      | [] -> List.rev acc
      | tok :: rest ->
        let within =
          match gauge with None -> true | Some g -> Budget.instance g
        in
        if not within then begin
          truncated := true;
          List.rev acc
        end
        else begin
          let inst = Instance.of_token ~id:(fresh_id st) ~universe tok in
          st.created <- st.created + 1;
          let sid = Dispatch.sym_id tables inst.Instance.sym in
          let bits = if st.small then 1 lsl tok.Token.id else 0 in
          add_instance st sid inst ~bits;
          go (inst :: acc) rest
        end
    in
    go [] tokens
  in
  let schedule =
    if options.use_scheduling then compiled.schedule
    else
      { G.Schedule.order = compiled.d_order; transformed = []; relaxed = [] }
  in
  let prefs_for sym =
    Option.value ~default:[] (Hashtbl.find_opt compiled.prefs_by_sym sym)
  in
  (try
     if not !truncated then begin
       List.iter
         (fun sym ->
            Log.debug (fun m -> m "instantiating %a" Symbol.pp sym);
            instantiate st (Dispatch.sym_id tables sym);
            if options.use_preferences && options.use_scheduling then
              List.iter (enforce_traced st) (prefs_for sym))
         schedule.G.Schedule.order;
       (* Late pruning when scheduling is off; also a final sweep in the
          scheduled mode for relaxed preferences whose loser precedes its
          winner. *)
       if options.use_preferences then
         if not options.use_scheduling then
           List.iter (enforce_traced st) grammar.preferences
         else List.iter (enforce_traced st) schedule.G.Schedule.relaxed
     end
   with Truncated -> truncated := true);
  if !truncated then
    Trace.instant trace ~cat:"parser"
      ~args:[ ("created", Trace.Int st.created) ]
      "budget_trip";
  let all_live = all_live_list st in
  let maximal =
    Trace.with_span trace ~cat:"parser" "maximize" (fun () ->
        maximal_trees ~tripped:(!truncated && gauge <> None) all_live)
  in
  let complete =
    List.find_opt
      (fun (i : Instance.t) ->
         Symbol.equal i.sym grammar.start
         && Bitset.cardinal i.cover = universe)
      all_live
  in
  let in_maximal = reachable_ids maximal in
  let temporary = st.created - Hashtbl.length in_maximal in
  { tokens;
    token_instances;
    all_live;
    maximal;
    complete;
    stats =
      { created = st.created;
        live = List.length all_live;
        pruned = st.pruned;
        rolled_back = st.rolled_back;
        temporary;
        truncated = !truncated;
        guards_tried = st.guards_tried;
        guards_admitted = st.guards_admitted;
        index_probes = st.index_probes;
        index_pruned = st.index_pruned } }

let parse ?gauge ?trace ?options grammar tokens =
  parse_compiled ?gauge ?trace ?options (compile grammar) tokens

let count_trees result =
  let universe = List.length result.tokens in
  let complete_trees =
    List.filter
      (fun (i : Instance.t) ->
         (not (Symbol.is_terminal i.sym))
         && Bitset.cardinal i.cover = universe)
      result.all_live
  in
  let start_trees =
    List.filter
      (fun (i : Instance.t) -> i.prod <> None)
      complete_trees
  in
  if start_trees <> [] then List.length start_trees
  else List.length result.maximal
