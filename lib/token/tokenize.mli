(** Front-end of the form extractor: HTML to token set.

    Combines the HTML parser and layout engine and classifies every
    rendered atom into a terminal token.  Ids are assigned densely in
    reading order, so token id [k] corresponds to bit [k] in the parser's
    coverage bitsets. *)

val of_atoms :
  ?gauge:Wqi_budget.Budget.gauge ->
  ?trace:Wqi_obs.Trace.t ->
  Wqi_layout.Engine.laid list ->
  Token.t list
(** [of_atoms atoms] classifies already laid-out atoms into tokens.

    [gauge] charges one budget unit per token kept; when the token cap
    or the deadline trips, classification stops and the prefix of tokens
    produced so far (ids still dense) is returned.

    [trace] records a [tokenize.tokens] instant with the atom and token
    counts; tracing never changes classification. *)

val of_document :
  ?gauge:Wqi_budget.Budget.gauge ->
  ?trace:Wqi_obs.Trace.t ->
  ?width:int ->
  Wqi_html.Dom.t ->
  Token.t list
(** [of_document doc] renders [doc] and classifies its atoms.  [width]
    is the page width handed to the layout engine; [gauge] (and
    [trace]) govern both the layout pass and the classification
    pass. *)

val of_html :
  ?gauge:Wqi_budget.Budget.gauge ->
  ?trace:Wqi_obs.Trace.t ->
  ?width:int ->
  string ->
  Token.t list
(** [of_html markup] is [of_document (Wqi_html.Parser.parse markup)],
    with [gauge] (and [trace]) also covering HTML tree construction. *)
