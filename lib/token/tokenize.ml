module Dom = Wqi_html.Dom
module Engine = Wqi_layout.Engine

let option_labels node =
  Dom.find_all (Dom.is_element ~named:"option") node
  |> List.map (fun opt -> String.trim (Dom.text_content opt))
  |> List.filter (fun label -> label <> "")

let classify_widget node =
  match Dom.name node with
  | "input" ->
    let input_type =
      String.lowercase_ascii (Dom.attr_default "type" ~default:"text" node)
    in
    (match input_type with
     | "radio" -> Some (Token.Radio, "")
     | "checkbox" -> Some (Token.Checkbox, "")
     | "submit" | "reset" | "button" ->
       Some (Token.Button, Dom.attr_default "value" ~default:"Submit" node)
     | "image" ->
       Some (Token.Button, Dom.attr_default "alt" ~default:"" node)
     | "hidden" -> None
     | _ -> Some (Token.Textbox, ""))
  | "textarea" -> Some (Token.Textbox, "")
  | "select" -> Some (Token.Selection, "")
  | "button" -> Some (Token.Button, String.trim (Dom.text_content node))
  | "img" -> Some (Token.Image, Dom.attr_default "alt" ~default:"" node)
  | _ -> None

let classify_atom ~fresh { Engine.item; box } =
  match item with
  | Engine.Text_run s ->
    let s = String.trim s in
    if s = "" then None
    else
      Some
        { Token.id = fresh (); kind = Token.Text; box; sval = s;
          name = ""; options = []; value = ""; checked = false;
          multiple = false }
  | Engine.Widget node ->
    (match classify_widget node with
     | None -> None
     | Some (kind, sval) ->
       let options =
         match kind with
         | Token.Selection -> option_labels node
         | _ -> []
       in
       Some
         { Token.id = fresh (); kind; box; sval;
           name = Dom.attr_default "name" ~default:"" node;
           options;
           value = Dom.attr_default "value" ~default:"" node;
           checked = Dom.has_attr "checked" node;
           multiple = Dom.has_attr "multiple" node })

let of_atoms ?gauge ?trace atoms =
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Classification stops at the token cap (or deadline): ids stay dense
     over the prefix kept, so coverage bitsets remain consistent. *)
  let rec go acc = function
    | [] -> List.rev acc
    | atom :: rest ->
      (match classify_atom ~fresh atom with
       | None -> go acc rest
       | Some tok ->
         let within =
           match gauge with
           | None -> true
           | Some g -> Wqi_budget.Budget.token g
         in
         if within then go (tok :: acc) rest else List.rev acc)
  in
  let tokens = go [] atoms in
  (match trace with
   | None -> ()
   | Some _ ->
     Wqi_obs.Trace.instant trace ~cat:"stage"
       ~args:
         [ ("atoms", Wqi_obs.Trace.Int (List.length atoms));
           ("tokens", Wqi_obs.Trace.Int (List.length tokens)) ]
       "tokenize.tokens");
  tokens

let of_document ?gauge ?trace ?width doc =
  of_atoms ?gauge ?trace (Engine.render ?gauge ?trace ?width doc)

let of_html ?gauge ?trace ?width markup =
  of_document ?gauge ?trace ?width (Wqi_html.Parser.parse ?gauge ?trace markup)
