(** Pre-extraction structural signatures for crawl-time deduplication.

    A crawl frontier rediscovers the same interface constantly — the
    same search form mirrored across a site, or the same markup
    re-serialized with different whitespace by a templating layer.
    Extracting each copy wastes the most expensive stage of the
    pipeline, so [wqi_crawl] fingerprints documents {i before}
    extraction and processes one representative per signature.

    Two signatures are provided, both FNV-1a/64 chains over a scan of
    the raw markup (no DOM is built — the scanner is a single pass over
    the bytes):

    - {!structural} hashes the document's tag-path shape {i and} its
      content: every open/close tag name, each tag's attribute text,
      and every text node, with whitespace runs collapsed and trimmed.
      Documents that differ only in formatting (indentation, CRLF,
      blank lines between elements) collide; documents with different
      labels, options or field names do not.  This is the dedup key —
      collapsing two genuinely different interfaces would silently drop
      one, so content participates.
    - {!shape} hashes only the tag-path shape (open/close tag names and
      nesting), ignoring attributes and text entirely — the loosest
      form-similarity bucket, useful for clustering telemetry, too
      coarse to dedup by alone.

    Comments, doctypes and processing instructions are skipped; [<] that
    does not open a tag is treated as text.  The scanner is best-effort
    by design, like the parser it front-runs: a pathological document
    still gets {i some} signature, and the worst case is a missed dedup
    (the document is extracted again), never a lost document. *)

val structural : string -> int64
(** Shape + attributes + whitespace-collapsed text. *)

val shape : string -> int64
(** Tag open/close events only. *)
