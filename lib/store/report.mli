(** Machine-readable run reports shared by [wqi_batch] and [wqi_crawl].

    Both tools isolate per-document failures — one bad file must not
    sink a million-form run — which means the interesting wreckage ends
    up scattered through stderr.  [--errors-json] and [--summary-json]
    give pipelines a structured view instead: a JSON array of
    per-document failures, and one flat JSON object of run counters. *)

type error = {
  path : string;     (** document path as discovered *)
  outcome : string;  (** ["failed"] or ["read-error"] *)
  error : string;    (** human-readable cause *)
}

val errors_json : error list -> string
(** JSON array (one object per error, input order preserved),
    newline-terminated. *)

type value = Int of int | Float of float | Str of string

val summary_json : version:string -> (string * value) list -> string
(** Flat one-line JSON object, newline-terminated.  [version] names the
    leading [*_version:1] discriminator field. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes atomically (temp file in the same
    directory, then rename), so a consumer never sees a torn report. *)
