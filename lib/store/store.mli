(** Persistent content-addressed store of extraction results.

    Every run of [wqi_batch] or [wqi_serve] used to start cold,
    re-extracting documents whose HTML and grammar had not changed and
    losing the serve cache with the process.  The store is the durable
    tier underneath both: keys are the {!Key} fingerprints the serve
    cache already uses (normalized HTML ⊕ budget spec ⊕ grammar
    name@version), values are the deterministic Export-v2 wire bytes
    ([Extractor.export ~timings:false]), so a store hit is byte-identical
    to a fresh extraction and can be served — or emitted by a resumed
    batch — without re-running the pipeline.

    {b On-disk layout.}  A store directory holds

    - [segments/seg-NNN.dat] — append-only value segments, sharded by
      key fingerprint so concurrent writers from a [Pool] rarely
      contend on one file;
    - [manifest.jsonl] — an append-only manifest, one JSON object per
      completed put: key (hash/len/spec), segment, offset, byte count,
      CRC-32 of the value bytes, plus provenance (source path or URL,
      grammar name@version, outcome, crawl-classified domain).

    {b Crash safety.}  A put appends and flushes the value bytes
    {i before} appending and flushing its manifest line, so a crash
    (including [kill -9]) between the two leaves only orphaned segment
    bytes that no manifest line references.  {!open_} replays the
    manifest and {b drops, rather than fails on,} any line that does
    not parse — in particular a torn final line from a crashed writer —
    counting it in [stats.dropped].  Values are CRC-checked on read;
    a corrupt value is dropped from the index and reads as a miss, so
    the worst case of any corruption is a re-extraction, never a wrong
    answer.  {!close} compacts the manifest (latest entry per key,
    written to a temp file and renamed over — the rename is the commit
    point); segment bytes orphaned by overwrites are reclaimed only by
    [segments/*] deletion alongside a fresh manifest, which the store
    never does on its own.

    {b Concurrency.}  All operations are safe from concurrent threads
    and domains of one process (per-segment mutexes for value I/O, one
    mutex each for the manifest and the index).  The store is not
    coordinated across processes — one writer process at a time. *)

type t

type quality = {
  q_score : float;     (** scalar quality score, [Wqi_quality] scale *)
  q_coverage : float;  (** token coverage ratio *)
  q_conflicts : int;   (** conflict errors the merger reported *)
}
(** Headline extraction-quality fields, persisted per entry so a
    reopened store can be rolled up by [wqi_report] without re-running
    any extraction. *)

type meta = {
  source : string;   (** path or URL the bytes were extracted from *)
  grammar : string;  (** grammar identity, [name@version] *)
  outcome : string;  (** ["complete"] or ["degraded"] — failed
                         extractions are never stored, so a crash or
                         grammar fix retries them *)
  domain : string;   (** crawl-classified domain; [""] when unknown *)
  quality : quality option;
      (** [None] on entries written before quality records existed —
          old manifests replay with [quality = None], never fail *)
}

type stats = {
  entries : int;   (** live keys *)
  bytes : int;     (** live value bytes (excludes orphaned bytes) *)
  orphaned_bytes : int;
      (** dead segment bytes: values superseded by overwrites, dropped
          as corrupt, or left by a writer that crashed between value
          and manifest append.  Measured at {!open_} as segment file
          size minus live bytes (so compaction of the manifest does not
          hide them) and accumulated as the process overwrites; the
          gauge a future segment collector will drain. *)
  segments : int;  (** segment shard count *)
  hits : int;      (** {!find}/{!find_entry} calls answered *)
  misses : int;    (** lookups for absent keys *)
  puts : int;
  replayed : int;  (** manifest lines accepted at {!open_} *)
  dropped : int;   (** malformed/torn manifest lines dropped at {!open_} *)
  corrupt : int;   (** reads that failed CRC/length verification *)
}

val open_ : ?segments:int -> string -> t
(** [open_ dir] creates [dir] (and [dir/segments]) if missing, replays
    the manifest, and opens the segments for append.  [segments]
    (default 16, clamped to ≥ 1) is fixed at directory creation: an
    existing store keeps the shard count it was created with.  Raises
    [Sys_error] when the directory cannot be created or opened. *)

val dir : t -> string

val mem : t -> Key.t -> bool
(** Index-only membership — no I/O, no stat movement. *)

val find : t -> Key.t -> string option
(** Read and CRC-verify the value bytes.  A failed verification drops
    the entry (counted in [stats.corrupt]) and returns [None]. *)

val find_entry : t -> Key.t -> (meta * string) option
(** {!find} plus the entry's provenance. *)

val meta : t -> Key.t -> meta option
(** Provenance without reading the value bytes. *)

val put : t -> Key.t -> meta:meta -> string -> unit
(** Append the value and its manifest line, then publish the key in the
    index.  Re-putting a key replaces its entry (the old value bytes
    become orphans until a fresh-manifest rebuild). *)

val source_known : t -> string -> bool
(** Whether any live entry was extracted from [source] — how a resumed
    batch distinguishes a {i changed} document (source known, key
    absent: HTML or grammar moved, re-extract) from a {i new} one. *)

val iter : t -> (Key.t -> meta -> unit) -> unit
(** Visit every live entry (no value I/O).  Snapshot semantics: entries
    put concurrently with the iteration may or may not be visited. *)

val stats : t -> stats

val flush : t -> unit
(** Flush segment and manifest channels (puts already flush; this is a
    belt for long idle periods). *)

val close : t -> unit
(** Compact the manifest (write-temp-then-rename) and close every
    channel.  Idempotent; operations other than {!stats}, {!flush} and
    {!close} raise [Invalid_argument] on a closed store. *)
