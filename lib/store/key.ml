type t = {
  hash : int64;
  len : int;
  spec : string;
}

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fold h s =
  let h = ref h in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let fingerprint s = fold fnv_offset s

let is_space = function ' ' | '\t' | '\n' | '\r' | '\012' -> true | _ -> false

let normalize html =
  let n = String.length html in
  let lo = ref 0 in
  while !lo < n && is_space html.[!lo] do incr lo done;
  let hi = ref (n - 1) in
  while !hi >= !lo && is_space html.[!hi] do decr hi done;
  if !lo > !hi then ""
  else begin
    let b = Buffer.create (!hi - !lo + 1) in
    let i = ref !lo in
    while !i <= !hi do
      (match html.[!i] with
       | '\r' ->
         Buffer.add_char b '\n';
         if !i + 1 <= !hi && html.[!i + 1] = '\n' then incr i
       | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b
  end

let make ~html ~spec =
  let normalized = normalize html in
  (* Chain the spec into the same hash stream, separated by a byte that
     cannot occur in either part's role, so ("ab","c") and ("a","bc")
     fingerprint differently. *)
  let h = fold (fold fnv_offset spec) "\x00" in
  { hash = fold h normalized;
    len = String.length normalized;
    spec }

let spec ~grammar_name ~grammar_version ~name budget =
  Printf.sprintf "v%d|grammar=%s@%s|name=%s|budget=%s"
    Wqi_model.Export.extraction_version grammar_name grammar_version name
    (Wqi_model.Export.budget budget)

let equal a b =
  Int64.equal a.hash b.hash && a.len = b.len && String.equal a.spec b.spec

let compare a b =
  match Int64.compare a.hash b.hash with
  | 0 -> (match Int.compare a.len b.len with
      | 0 -> String.compare a.spec b.spec
      | c -> c)
  | c -> c

let to_hex h = Printf.sprintf "%016Lx" h

let of_hex s =
  if String.length s <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v -> Some v
    | None -> None
