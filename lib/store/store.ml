(* See store.mli for the layout and crash-safety contract.  The
   implementation keeps three locking domains — per-segment value I/O,
   the manifest channel, the in-memory index — and always publishes in
   the order value → manifest → index, so every state a crash can leave
   behind replays to a consistent (if smaller) store. *)

type quality = {
  q_score : float;
  q_coverage : float;
  q_conflicts : int;
}

type meta = {
  source : string;
  grammar : string;
  outcome : string;
  domain : string;
  quality : quality option;
}

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                  *)
(* ------------------------------------------------------------------ *)

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let digest s =
    let table = Lazy.force table in
    let c = ref 0xffffffff in
    String.iter
      (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
      s;
    !c lxor 0xffffffff
end

(* ------------------------------------------------------------------ *)
(* Manifest lines                                                     *)
(* ------------------------------------------------------------------ *)

(* One JSON object per line.  Emission reuses the export escaper so the
   manifest is ordinary JSONL; parsing is a small hand-rolled reader
   for exactly the subset emitted (string and number values).  Any
   line that fails to parse — a torn tail from a crashed writer, a
   stray editor artifact — is dropped and counted, never fatal. *)

type entry = {
  e_seg : int;
  e_off : int;
  e_len : int;   (* value byte count *)
  e_crc : int;
  e_meta : meta;
}

(* Floats (quality score/coverage) render integer-valued without a
   decimal point; the parser accepts both forms. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let render_line (k : Key.t) e =
  let str = Wqi_model.Export.string in
  let quality =
    match e.e_meta.quality with
    | None -> ""
    | Some q ->
      Printf.sprintf ",\"score\":%s,\"coverage\":%s,\"conflicts\":%d"
        (float_repr q.q_score) (float_repr q.q_coverage) q.q_conflicts
  in
  Printf.sprintf
    "{\"k\":%s,\"len\":%d,\"spec\":%s,\"seg\":%d,\"off\":%d,\"bytes\":%d,\
     \"crc\":%d,\"src\":%s,\"grammar\":%s,\"outcome\":%s,\"domain\":%s%s}"
    (str (Key.to_hex k.Key.hash))
    k.Key.len (str k.Key.spec) e.e_seg e.e_off e.e_len e.e_crc
    (str e.e_meta.source) (str e.e_meta.grammar) (str e.e_meta.outcome)
    (str e.e_meta.domain) quality

exception Bad_line

let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise Bad_line in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
    do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise Bad_line;
    incr pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise Bad_line;
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (match peek () with
         | 'n' -> Buffer.add_char b '\n'; incr pos
         | 't' -> Buffer.add_char b '\t'; incr pos
         | 'r' -> Buffer.add_char b '\r'; incr pos
         | '"' -> Buffer.add_char b '"'; incr pos
         | '\\' -> Buffer.add_char b '\\'; incr pos
         | '/' -> Buffer.add_char b '/'; incr pos
         | 'u' ->
           if !pos + 4 >= n then raise Bad_line;
           let hex = String.sub line (!pos + 1) 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 256 -> Buffer.add_char b (Char.chr code)
            | Some _ -> raise Bad_line  (* never emitted *)
            | None -> raise Bad_line);
           pos := !pos + 5
         | _ -> raise Bad_line);
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric line.[!pos] do incr pos done;
    if !pos = start then raise Bad_line;
    let s = String.sub line start (!pos - start) in
    match int_of_string_opt s with
    | Some v -> `Int v
    | None ->
      (match float_of_string_opt s with
       | Some v -> `Num v
       | None -> raise Bad_line)
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then incr pos
  else begin
    let rec members () =
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let value =
        if peek () = '"' then `Str (parse_string ()) else parse_number ()
      in
      fields := (key, value) :: !fields;
      skip_ws ();
      match peek () with
      | ',' -> incr pos; skip_ws (); members ()
      | '}' -> incr pos
      | _ -> raise Bad_line
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then raise Bad_line;
  !fields

let parse_line line =
  match parse_fields line with
  | exception Bad_line -> None
  | fields ->
    let str k =
      match List.assoc_opt k fields with
      | Some (`Str s) -> s
      | _ -> raise Bad_line
    in
    let int k =
      match List.assoc_opt k fields with
      | Some (`Int v) when v >= 0 -> v
      | _ -> raise Bad_line
    in
    let num k =
      match List.assoc_opt k fields with
      | Some (`Num v) -> v
      | Some (`Int v) -> float_of_int v
      | _ -> raise Bad_line
    in
    (* Quality provenance appeared in a later store revision: absent on
       older manifests, so its absence is a None, never a Bad_line. *)
    let quality () =
      if List.mem_assoc "score" fields then
        Some
          { q_score = num "score";
            q_coverage = num "coverage";
            q_conflicts = int "conflicts" }
      else None
    in
    (match
       let hash =
         match Key.of_hex (str "k") with
         | Some h -> h
         | None -> raise Bad_line
       in
       let key = { Key.hash; len = int "len"; spec = str "spec" } in
       let e =
         { e_seg = int "seg";
           e_off = int "off";
           e_len = int "bytes";
           e_crc = int "crc";
           e_meta =
             { source = str "src";
               grammar = str "grammar";
               outcome = str "outcome";
               domain = str "domain";
               quality = quality () } }
       in
       (key, e)
     with
     | pair -> Some pair
     | exception Bad_line -> None)

(* ------------------------------------------------------------------ *)
(* Store                                                              *)
(* ------------------------------------------------------------------ *)

type seg = {
  s_path : string;
  s_mutex : Mutex.t;
  mutable s_out : out_channel option;   (* lazily opened appender *)
  mutable s_in : in_channel option;     (* lazily opened reader *)
}

type t = {
  dir : string;
  segments : int;
  segs : seg array;
  manifest_path : string;
  mutable manifest_oc : out_channel option;
  man_mutex : Mutex.t;
  idx_mutex : Mutex.t;  (* guards index, sources, counters, closed *)
  index : (Key.t, entry) Hashtbl.t;
  sources : (string, int) Hashtbl.t;  (* live entries per source *)
  mutable bytes : int;
  mutable orphaned : int;
  mutable hits : int;
  mutable misses : int;
  mutable puts : int;
  mutable replayed : int;
  mutable dropped : int;
  mutable corrupt : int;
  mutable closed : bool;
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let seg_path dir i = Filename.concat dir (Printf.sprintf "seg-%03d.dat" i)

let config_path dir = Filename.concat dir "STORE"

(* The shard count is a property of the directory, not of the opener:
   entries record their segment, so reopening with a different count
   would scatter new puts across a different sharding while old seg
   ids might exceed the new array.  Persist it at creation and read it
   back forever after. *)
let read_or_write_segments dir requested =
  let path = config_path dir in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
         let rec scan () =
           match input_line ic with
           | line ->
             (match String.split_on_char ' ' (String.trim line) with
              | [ "segments"; v ] ->
                (match int_of_string_opt v with
                 | Some n when n >= 1 -> n
                 | _ -> requested)
              | _ -> scan ())
           | exception End_of_file -> requested
         in
         scan ())
  end
  else begin
    let oc = open_out path in
    Printf.fprintf oc "wqi_store 1\nsegments %d\n" requested;
    close_out oc;
    requested
  end

(* Accept the entry into the index (replay and put share this). *)
let index_accept t key e =
  (match Hashtbl.find_opt t.index key with
   | Some old ->
     t.bytes <- t.bytes - old.e_len;
     t.orphaned <- t.orphaned + old.e_len;
     (match Hashtbl.find_opt t.sources old.e_meta.source with
      | Some 1 -> Hashtbl.remove t.sources old.e_meta.source
      | Some c -> Hashtbl.replace t.sources old.e_meta.source (c - 1)
      | None -> ())
   | None -> ());
  Hashtbl.replace t.index key e;
  t.bytes <- t.bytes + e.e_len;
  Hashtbl.replace t.sources e.e_meta.source
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.sources e.e_meta.source))

let replay t =
  if Sys.file_exists t.manifest_path then begin
    let ic = open_in_bin t.manifest_path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
         let rec go () =
           match input_line ic with
           | exception End_of_file -> ()
           | line ->
             (if String.trim line <> "" then
                match parse_line line with
                | Some (key, e) when e.e_seg < t.segments ->
                  index_accept t key e;
                  t.replayed <- t.replayed + 1
                | Some _ | None -> t.dropped <- t.dropped + 1);
             go ()
         in
         go ())
  end

let open_ ?(segments = 16) dir =
  let requested = max 1 segments in
  mkdir_p dir;
  let seg_dir = Filename.concat dir "segments" in
  mkdir_p seg_dir;
  let segments = read_or_write_segments dir requested in
  let t =
    { dir;
      segments;
      segs =
        Array.init segments (fun i ->
            { s_path = seg_path seg_dir i;
              s_mutex = Mutex.create ();
              s_out = None;
              s_in = None });
      manifest_path = Filename.concat dir "manifest.jsonl";
      manifest_oc = None;
      man_mutex = Mutex.create ();
      idx_mutex = Mutex.create ();
      index = Hashtbl.create 1024;
      sources = Hashtbl.create 1024;
      bytes = 0;
      orphaned = 0;
      hits = 0;
      misses = 0;
      puts = 0;
      replayed = 0;
      dropped = 0;
      corrupt = 0;
      closed = false }
  in
  replay t;
  (* Replay sees only overwrites the manifest still witnesses; a
     compacted manifest forgets them while the dead segment bytes
     remain.  The ground truth at open is segment file size minus live
     bytes — that also counts a crashed writer's value-without-manifest
     tail.  Keep whichever is larger, then accumulate live overwrites
     on top. *)
  let seg_file_bytes =
    Array.fold_left
      (fun acc seg ->
         if Sys.file_exists seg.s_path then begin
           let ic = open_in_bin seg.s_path in
           let len = in_channel_length ic in
           close_in_noerr ic;
           acc + len
         end
         else acc)
      0 t.segs
  in
  t.orphaned <- max t.orphaned (seg_file_bytes - t.bytes);
  t

let dir t = t.dir

(* Lock the index mutex, failing cleanly (lock released) on a closed
   store.  Every public operation enters through this. *)
let lock_open t =
  Mutex.lock t.idx_mutex;
  if t.closed then begin
    Mutex.unlock t.idx_mutex;
    invalid_arg "Wqi_store.Store: store is closed"
  end

let shard_of t (k : Key.t) =
  Int64.to_int k.Key.hash land max_int mod t.segments

(* seg mutex held *)
(* NOT [Open_append]: an append-mode channel reports [pos_out] from 0
   regardless of the existing file size, so a store reopened over a
   non-empty segment would record offset 0 for bytes the kernel lands
   at the real end — every resumed put unreadable.  The explicit
   seek-to-end keeps [pos_out] equal to the on-disk offset; the
   per-segment mutex already serializes writers. *)
let seg_appender seg =
  match seg.s_out with
  | Some oc -> oc
  | None ->
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 seg.s_path
    in
    seek_out oc (out_channel_length oc);
    seg.s_out <- Some oc;
    oc

(* seg mutex held *)
let seg_reader seg =
  match seg.s_in with
  | Some ic -> ic
  | None ->
    let ic = open_in_bin seg.s_path in
    seg.s_in <- Some ic;
    ic

let manifest_appender t =
  match t.manifest_oc with
  | Some oc -> oc
  | None ->
    let oc =
      open_out_gen
        [ Open_append; Open_creat; Open_binary ]
        0o644 t.manifest_path
    in
    t.manifest_oc <- Some oc;
    oc

let mem t k =
  lock_open t;
  let r = Hashtbl.mem t.index k in
  Mutex.unlock t.idx_mutex;
  r

let meta t k =
  lock_open t;
  let r = Option.map (fun e -> e.e_meta) (Hashtbl.find_opt t.index k) in
  Mutex.unlock t.idx_mutex;
  r

(* Read the value bytes for [e]; None on any I/O shortfall. *)
let read_value t e =
  let seg = t.segs.(e.e_seg) in
  Mutex.lock seg.s_mutex;
  let r =
    match
      (* The appender flushes before the entry is published, so a
         separate read descriptor always sees the full value. *)
      let ic = seg_reader seg in
      seek_in ic e.e_off;
      really_input_string ic e.e_len
    with
    | v -> Some v
    | exception (End_of_file | Sys_error _) -> None
  in
  Mutex.unlock seg.s_mutex;
  r

let drop_corrupt t k e =
  Mutex.lock t.idx_mutex;
  (match Hashtbl.find_opt t.index k with
   | Some cur when cur.e_seg = e.e_seg && cur.e_off = e.e_off ->
     t.bytes <- t.bytes - cur.e_len;
     t.orphaned <- t.orphaned + cur.e_len;
     Hashtbl.remove t.index k;
     (match Hashtbl.find_opt t.sources cur.e_meta.source with
      | Some 1 -> Hashtbl.remove t.sources cur.e_meta.source
      | Some c -> Hashtbl.replace t.sources cur.e_meta.source (c - 1)
      | None -> ())
   | _ -> ());
  t.corrupt <- t.corrupt + 1;
  Mutex.unlock t.idx_mutex

let find_entry t k =
  lock_open t;
  let entry = Hashtbl.find_opt t.index k in
  (match entry with
   | None -> t.misses <- t.misses + 1
   | Some _ -> ());
  Mutex.unlock t.idx_mutex;
  match entry with
  | None -> None
  | Some e ->
    (match read_value t e with
     | Some v when Crc32.digest v = e.e_crc ->
       Mutex.lock t.idx_mutex;
       t.hits <- t.hits + 1;
       Mutex.unlock t.idx_mutex;
       Some (e.e_meta, v)
     | Some _ | None ->
       (* Torn or rewritten segment bytes: forget the entry so the
          caller re-extracts; never serve unverified bytes. *)
       drop_corrupt t k e;
       None)

let find t k = Option.map snd (find_entry t k)

let put t k ~meta value =
  lock_open t;
  Mutex.unlock t.idx_mutex;
  let si = shard_of t k in
  let seg = t.segs.(si) in
  (* 1. value bytes, flushed *)
  Mutex.lock seg.s_mutex;
  let off, crc =
    match
      let oc = seg_appender seg in
      let off = pos_out oc in
      output_string oc value;
      flush oc;
      off
    with
    | off -> (off, Crc32.digest value)
    | exception e ->
      Mutex.unlock seg.s_mutex;
      raise e
  in
  Mutex.unlock seg.s_mutex;
  let e =
    { e_seg = si; e_off = off; e_len = String.length value; e_crc = crc;
      e_meta = meta }
  in
  (* 2. manifest line, flushed — the durability point *)
  Mutex.lock t.man_mutex;
  (match
     let oc = manifest_appender t in
     output_string oc (render_line k e);
     output_char oc '\n';
     flush oc
   with
   | () -> Mutex.unlock t.man_mutex
   | exception ex ->
     Mutex.unlock t.man_mutex;
     raise ex);
  (* 3. publish *)
  Mutex.lock t.idx_mutex;
  index_accept t k e;
  t.puts <- t.puts + 1;
  Mutex.unlock t.idx_mutex

let source_known t source =
  lock_open t;
  let r = Hashtbl.mem t.sources source in
  Mutex.unlock t.idx_mutex;
  r

let iter t f =
  lock_open t;
  let snapshot = Hashtbl.fold (fun k e acc -> (k, e.e_meta) :: acc) t.index [] in
  Mutex.unlock t.idx_mutex;
  List.iter (fun (k, m) -> f k m) snapshot

type stats = {
  entries : int;
  bytes : int;
  orphaned_bytes : int;
  segments : int;
  hits : int;
  misses : int;
  puts : int;
  replayed : int;
  dropped : int;
  corrupt : int;
}

let stats t =
  Mutex.lock t.idx_mutex;
  let s =
    { entries = Hashtbl.length t.index;
      bytes = t.bytes;
      orphaned_bytes = t.orphaned;
      segments = t.segments;
      hits = t.hits;
      misses = t.misses;
      puts = t.puts;
      replayed = t.replayed;
      dropped = t.dropped;
      corrupt = t.corrupt }
  in
  Mutex.unlock t.idx_mutex;
  s

let flush t =
  Array.iter
    (fun seg ->
       Mutex.lock seg.s_mutex;
       (match seg.s_out with Some oc -> flush oc | None -> ());
       Mutex.unlock seg.s_mutex)
    t.segs;
  Mutex.lock t.man_mutex;
  (match t.manifest_oc with Some oc -> Stdlib.flush oc | None -> ());
  Mutex.unlock t.man_mutex

(* Compaction: one line per live key, ordered by storage position so
   the rewrite is deterministic for a given index state.  The rename is
   the commit point — a crash before it leaves the (longer, still
   valid) append-order manifest in place. *)
let compact_manifest t entries =
  let tmp = t.manifest_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     List.iter
       (fun (k, e) ->
          output_string oc (render_line k e);
          output_char oc '\n')
       entries;
     Stdlib.flush oc;
     close_out oc
   with
   | () -> Sys.rename tmp t.manifest_path
   | exception ex ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise ex)

let close t =
  Mutex.lock t.idx_mutex;
  if t.closed then Mutex.unlock t.idx_mutex
  else begin
    t.closed <- true;
    let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.index [] in
    Mutex.unlock t.idx_mutex;
    let entries =
      List.sort
        (fun (_, a) (_, b) ->
           match Int.compare a.e_seg b.e_seg with
           | 0 -> Int.compare a.e_off b.e_off
           | c -> c)
        entries
    in
    Mutex.lock t.man_mutex;
    (match t.manifest_oc with
     | Some oc ->
       close_out_noerr oc;
       t.manifest_oc <- None
     | None -> ());
    compact_manifest t entries;
    Mutex.unlock t.man_mutex;
    Array.iter
      (fun seg ->
         Mutex.lock seg.s_mutex;
         (match seg.s_out with
          | Some oc -> close_out_noerr oc; seg.s_out <- None
          | None -> ());
         (match seg.s_in with
          | Some ic -> close_in_noerr ic; seg.s_in <- None
          | None -> ());
         Mutex.unlock seg.s_mutex)
      t.segs
  end
