type error = {
  path : string;
  outcome : string;
  error : string;
}

let str = Wqi_model.Export.string

let errors_json errors =
  let b = Buffer.create 256 in
  Buffer.add_string b "[";
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_string b ",";
       Buffer.add_string b
         (Printf.sprintf "\n  {\"path\":%s,\"outcome\":%s,\"error\":%s}"
            (str e.path) (str e.outcome) (str e.error)))
    errors;
  Buffer.add_string b (if errors = [] then "]\n" else "\n]\n");
  Buffer.contents b

type value = Int of int | Float of float | Str of string

let summary_json ~version fields =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "{%s:1" (str version));
  List.iter
    (fun (k, v) ->
       Buffer.add_string b ",";
       Buffer.add_string b (str k);
       Buffer.add_string b ":";
       Buffer.add_string b
         (match v with
          | Int n -> string_of_int n
          | Float f -> Printf.sprintf "%.6f" f
          | Str s -> str s))
    fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_file path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "report" ".tmp" in
  let oc = open_out_bin tmp in
  (match
     output_string oc contents;
     close_out oc
   with
   | () -> Sys.rename tmp path
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)
