(* One pass over the raw bytes; no DOM.  The hash chain mixes typed
   events (open tag / close tag / attributes / text) with distinct
   separator bytes so reorderings across event kinds cannot collide by
   concatenation. *)

let is_space = function ' ' | '\t' | '\n' | '\r' | '\012' -> true | _ -> false

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = ':'

(* Fold [s.[lo..hi)] into [h] with whitespace runs collapsed to one
   space and leading/trailing whitespace dropped; returns [h] unchanged
   when the slice is pure whitespace. *)
let fold_collapsed h s lo hi =
  let h = ref h in
  let pending_space = ref false in
  let emitted = ref false in
  for i = lo to hi - 1 do
    let c = s.[i] in
    if is_space c then (if !emitted then pending_space := true)
    else begin
      if !pending_space then begin
        h := Key.fold !h " ";
        pending_space := false
      end;
      h := Key.fold !h (String.make 1 (Char.lowercase_ascii c));
      emitted := true
    end
  done;
  !h

let rec skip_until s i sub =
  let n = String.length s and m = String.length sub in
  if i + m > n then n
  else if String.sub s i m = sub then i + m
  else skip_until s (i + 1) sub

type mode = Structural | Shape

let scan mode html =
  let n = String.length html in
  let h = ref (Key.fingerprint "sig1\x00") in
  let text_start = ref 0 in
  (* Whitespace-only regions are formatting, not content: emitting an
     event for them would make indentation and blank lines between
     elements signature-relevant, defeating the dedup. *)
  let text_event lo hi =
    if mode = Structural then begin
      let has_content = ref false in
      for i = lo to hi - 1 do
        if not (is_space html.[i]) then has_content := true
      done;
      if !has_content then begin
        h := Key.fold !h "\x01";  (* text event *)
        h := fold_collapsed !h html lo hi
      end
    end
  in
  let flush_text upto = text_event !text_start upto in
  let i = ref 0 in
  while !i < n do
    let c = html.[!i] in
    if c = '<' && !i + 1 < n then begin
      let next = html.[!i + 1] in
      if next = '!' || next = '?' then begin
        flush_text !i;
        (* Comment, doctype or PI: skip without recording. *)
        let j =
          if !i + 3 < n && html.[!i + 1] = '!' && html.[!i + 2] = '-'
             && html.[!i + 3] = '-'
          then skip_until html (!i + 4) "-->"
          else
            match String.index_from_opt html (!i + 1) '>' with
            | Some j -> j + 1
            | None -> n
        in
        i := j;
        text_start := j
      end
      else if next = '/' || is_name_char next then begin
        flush_text !i;
        let closing = next = '/' in
        let name_start = if closing then !i + 2 else !i + 1 in
        let j = ref name_start in
        while !j < n && is_name_char html.[!j] do incr j done;
        let name = String.lowercase_ascii
            (String.sub html name_start (!j - name_start))
        in
        h := Key.fold !h (if closing then "\x03/" else "\x02");
        h := Key.fold !h name;
        (* Scan to the closing '>' respecting quoted attribute values
           (which may contain '>'); hash the attribute text in
           structural mode. *)
        let attr_start = !j in
        let quote = ref '\000' in
        while
          !j < n
          && (html.[!j] <> '>' || !quote <> '\000')
        do
          let d = html.[!j] in
          if !quote <> '\000' then (if d = !quote then quote := '\000')
          else if d = '"' || d = '\'' then quote := d;
          incr j
        done;
        if mode = Structural && !j > attr_start then begin
          h := Key.fold !h "\x04";  (* attribute event *)
          h := fold_collapsed !h html attr_start !j
        end;
        let after = if !j < n then !j + 1 else n in
        (* Raw-text elements: their content is character data, not
           markup — hash it as text and skip to the matching close. *)
        (match name with
         | ("script" | "style" | "textarea") when not closing ->
           let close = "</" ^ name in
           let rec find_close k =
             if k + String.length close > n then n
             else if
               String.lowercase_ascii
                 (String.sub html k (String.length close))
               = close
             then k
             else find_close (k + 1)
           in
           let stop = find_close after in
           text_event after stop;
           i := stop;
           text_start := stop
         | _ ->
           i := after;
           text_start := after)
      end
      else begin
        (* '<' that opens no tag: plain text. *)
        incr i
      end
    end
    else incr i
  done;
  flush_text n;
  !h

let structural html = scan Structural html

let shape html = scan Shape html
