(** Content-addressed keys shared by the serve cache and the persistent
    store.

    A key fingerprints what actually determines an extraction's wire
    bytes: the (normalized) HTML content and a [spec] string carrying
    everything else that shapes the response — export version, grammar
    name and version, source name, budget caps.  The hash chain is
    FNV-1a/64 over [spec], a zero separator byte, then the normalized
    HTML, guarded by the normalized length and the spec itself, so a
    lookup never has to touch the original markup.

    This module is the single definition of that keying:
    [Wqi_serve.Cache] re-exports it ([Cache.key = Key.make]) and
    {!Store} indexes by it, so the in-memory LRU tier and the on-disk
    warm tier can never drift apart — the same request hashes to the
    same identity in both. *)

type t = {
  hash : int64;  (** FNV-1a/64 over [spec ^ "\x00" ^ normalize html] *)
  len : int;     (** normalized-HTML length: a cheap collision guard *)
  spec : string;
}

val fingerprint : string -> int64
(** The raw FNV-1a/64 hash (offset basis 0xcbf29ce484222325, prime
    0x100000001b3). *)

val fold : int64 -> string -> int64
(** [fold h s] continues an FNV-1a/64 chain over [s] from state [h]. *)

val normalize : string -> string
(** Line-ending and outer-whitespace normalization applied to HTML
    before hashing: CRLF and lone CR become LF, leading and trailing
    ASCII whitespace is dropped.  Deliberately conservative — it only
    merges representations that tokenize identically. *)

val make : html:string -> spec:string -> t
(** [make ~html ~spec] fingerprints [normalize html] chained after
    [spec] (separated by a byte that cannot occur in either part's
    role, so [("ab","c")] and [("a","bc")] fingerprint differently). *)

val spec :
  grammar_name:string ->
  grammar_version:string ->
  name:string ->
  Wqi_budget.Budget.t ->
  string
(** The canonical spec string
    [vN|grammar=<name>@<version>|name=<name>|budget=<json>] used by the
    extraction server's cache, [wqi_batch --store] and [wqi_crawl] —
    one renderer, so the three front-ends agree byte-for-byte on what a
    request is. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_hex : int64 -> string
(** 16 lowercase hex digits of a fingerprint (manifest encoding). *)

val of_hex : string -> int64 option
