(** Flow and table layout: assigns a bounding box to every visible atom.

    This is the stand-in for the browser layout engine the paper relied on
    (the HTML DOM API of Internet Explorer).  It implements the subset of
    CSS2 visual formatting that query forms exercise:

    - block stacking for [div], [p], [form], [h1]..[h6], [ul]/[li],
      [fieldset], [center], ...;
    - inline flow with whitespace collapsing, word wrapping at the page
      width, and [<br>] line breaks; entries on a line are vertically
      centered within the line box;
    - table layout with column sizing from cell content, [colspan],
      [cellpadding]/[cellspacing]; [rowspan] is treated as 1 (query forms
      in the corpus never rely on it);
    - intrinsic widget sizes from {!Style}.

    Invisible content ([<input type="hidden">], [head], [script],
    [style], option lists inside [select]) produces no atoms. *)

type item =
  | Text_run of string
      (** A maximal run of inline text on a single line, whitespace
          collapsed.  Runs break at widgets, line breaks and block
          boundaries — exactly the granularity of the paper's [text]
          terminals (Figure 5). *)
  | Widget of Wqi_html.Dom.t
      (** A form widget or image; the DOM node is kept so the tokenizer
          can read its attributes and option list. *)

type laid = { item : item; box : Geometry.box }

val render :
  ?gauge:Wqi_budget.Budget.gauge ->
  ?trace:Wqi_obs.Trace.t ->
  ?width:int ->
  Wqi_html.Dom.t ->
  laid list
(** [render doc] lays out the document and returns its visible atoms in
    reading order (top-to-bottom, left-to-right).  [width] defaults to
    {!Style.page_width}.

    [gauge] charges one budget unit per emitted atom; when the box cap
    or the deadline trips, layout stops and the atoms already placed — a
    prefix of the page in layout order — are returned.

    [trace] records a [layout.atoms] instant with the atom count and
    page width; tracing never changes the layout. *)
