module Dom = Wqi_html.Dom
module Budget = Wqi_budget.Budget

type item =
  | Text_run of string
  | Widget of Dom.t

type laid = { item : item; box : Geometry.box }

(* Layout governance: one context per render.  [live] flips to false
   when the box cap or the deadline trips; every layout loop checks it
   and stops emitting, so a render degrades to a prefix of the page in
   reading order instead of stalling.  [measuring] marks the table
   measuring pass, whose scratch boxes are re-laid at placement time
   and must not be charged twice — it only probes the deadline. *)
type ctx = {
  gauge : Budget.gauge option;
  mutable live : bool;
  measuring : bool;
}

let ctx_spend_box ctx =
  ctx.live
  && (match ctx.gauge with
      | None -> true
      | Some g ->
        let ok =
          if ctx.measuring then Budget.tick g Budget.Layout else Budget.box g
        in
        if not ok then ctx.live <- false;
        ok)

(* ------------------------------------------------------------------ *)
(* Element classification                                              *)
(* ------------------------------------------------------------------ *)

let block_elements =
  [ "address"; "article"; "aside"; "blockquote"; "center"; "dd"; "dir";
    "div"; "dl"; "dt"; "fieldset"; "figure"; "footer"; "form"; "h1"; "h2";
    "h3"; "h4"; "h5"; "h6"; "header"; "hr"; "li"; "main"; "menu"; "nav";
    "ol"; "p"; "pre"; "section"; "table"; "ul"; "caption"; "legend";
    "html"; "body" ]

let is_block name = List.mem name block_elements

let skipped_elements = [ "head"; "script"; "style"; "title"; "#root" ]

let is_widget node =
  match Dom.name node with
  | "input" | "select" | "textarea" | "button" | "img" -> true
  | _ -> false

(* Vertical margin applied above and below a block element. *)
let block_margin = function
  | "p" -> 8
  | "h1" | "h2" | "h3" | "h4" | "h5" | "h6" -> 10
  | "table" | "ul" | "ol" | "fieldset" -> 4
  | "hr" -> 6
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Inline atom streams                                                 *)
(* ------------------------------------------------------------------ *)

type atom =
  | Word of string
  | Space
  | Widget_atom of Dom.t * int * int
  | Break

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012'

(* Split text into Word/Space atoms, collapsing whitespace runs. *)
let atoms_of_text s acc =
  let n = String.length s in
  let acc = ref acc in
  let i = ref 0 in
  while !i < n do
    if is_ws s.[!i] then begin
      acc := Space :: !acc;
      while !i < n && is_ws s.[!i] do incr i done
    end else begin
      let start = !i in
      while !i < n && not (is_ws s.[!i]) do incr i done;
      acc := Word (String.sub s start (!i - start)) :: !acc
    end
  done;
  !acc

let rec atoms_of_inline node acc =
  match node with
  | Dom.Text s -> atoms_of_text s acc
  | Dom.Comment _ -> acc
  | Dom.Element ("br", _, _) -> Break :: acc
  | Dom.Element _ when is_widget node ->
    (match Style.widget_size node with
     | Some (w, h) -> Widget_atom (node, w, h) :: acc
     | None -> acc)
  | Dom.Element (name, _, children) ->
    if List.mem name skipped_elements then acc
    else List.fold_left (fun acc c -> atoms_of_inline c acc) acc children

(* ------------------------------------------------------------------ *)
(* Inline flow                                                         *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_item : item;
  e_x : int; (* relative to flow origin *)
  e_w : int;
  e_h : int;
}

type alignment = [ `Left | `Center | `Right ]

type flow_state = {
  f_ctx : ctx;
  f_width : int;
  f_align : alignment;
  f_out : laid list ref;
  f_x0 : int;
  f_y0 : int;
  mutable cx : int;
  mutable line_y : int;
  mutable line : entry list; (* reversed *)
  mutable pending_space : bool;
  mutable run : (Buffer.t * int) option; (* buffer, start x *)
}

let leading = 3

let close_run fs =
  match fs.run with
  | None -> ()
  | Some (buf, start) ->
    let s = Buffer.contents buf in
    fs.line <-
      { e_item = Text_run s; e_x = start; e_w = Style.text_width s;
        e_h = Style.text_height }
      :: fs.line;
    fs.run <- None

let finish_line fs ~force =
  close_run fs;
  if fs.line = [] then begin
    if force then fs.line_y <- fs.line_y + Style.line_height
  end else begin
    let line_height =
      List.fold_left (fun acc e -> max acc e.e_h) Style.line_height fs.line
    in
    let line_width =
      List.fold_left (fun acc e -> max acc (e.e_x + e.e_w)) 0 fs.line
    in
    let shift =
      match fs.f_align with
      | `Left -> 0
      | `Center -> max 0 ((fs.f_width - line_width) / 2)
      | `Right -> max 0 (fs.f_width - line_width)
    in
    List.iter
      (fun e ->
         if ctx_spend_box fs.f_ctx then begin
           let x1 = fs.f_x0 + shift + e.e_x in
           let y1 = fs.f_y0 + fs.line_y + ((line_height - e.e_h) / 2) in
           fs.f_out :=
             { item = e.e_item;
               box = Geometry.make ~x1 ~y1 ~x2:(x1 + e.e_w) ~y2:(y1 + e.e_h) }
             :: !(fs.f_out)
         end)
      fs.line;
    fs.line <- [];
    fs.line_y <- fs.line_y + line_height + leading
  end;
  fs.cx <- 0;
  fs.pending_space <- false

let line_is_empty fs = fs.line = [] && fs.run = None

let add_word fs w =
  let word_width = Style.text_width w in
  let space = if fs.pending_space && not (line_is_empty fs) then Style.word_spacing else 0 in
  if fs.cx + space + word_width > fs.f_width && not (line_is_empty fs) then
    finish_line fs ~force:false;
  let space =
    if fs.pending_space && not (line_is_empty fs) then Style.word_spacing else 0
  in
  (match fs.run with
   | Some (buf, _) when space > 0 ->
     Buffer.add_char buf ' ';
     Buffer.add_string buf w
   | Some (buf, _) -> Buffer.add_string buf w
   | None ->
     let buf = Buffer.create 16 in
     Buffer.add_string buf w;
     fs.run <- Some (buf, fs.cx + space));
  fs.cx <- fs.cx + space + word_width;
  fs.pending_space <- false

let widget_margin = 2

let add_widget fs node w h =
  close_run fs;
  let space = if fs.pending_space && not (line_is_empty fs) then Style.word_spacing else 0 in
  if fs.cx + space + w > fs.f_width && not (line_is_empty fs) then
    finish_line fs ~force:false;
  let space =
    if fs.pending_space && not (line_is_empty fs) then Style.word_spacing else 0
  in
  fs.line <-
    { e_item = Widget node; e_x = fs.cx + space; e_w = w; e_h = h } :: fs.line;
  fs.cx <- fs.cx + space + w + widget_margin;
  fs.pending_space <- false

(* Lay out a list of inline atoms; returns the height consumed. *)
let flow ctx out atoms ~x ~y ~width ~align =
  let fs =
    { f_ctx = ctx; f_width = max 40 width; f_align = align; f_out = out;
      f_x0 = x; f_y0 = y; cx = 0; line_y = 0; line = [];
      pending_space = false; run = None }
  in
  List.iter
    (fun atom ->
       if ctx.live then
         match atom with
         | Space -> if not (line_is_empty fs) then fs.pending_space <- true
         | Word w -> add_word fs w
         | Widget_atom (node, w, h) -> add_widget fs node w h
         | Break -> finish_line fs ~force:true)
    atoms;
  finish_line fs ~force:false;
  (* Remove the trailing leading so adjacent blocks do not drift apart. *)
  if fs.line_y > 0 then fs.line_y - leading else 0

(* ------------------------------------------------------------------ *)
(* Block layout                                                        *)
(* ------------------------------------------------------------------ *)

let int_attr key ~default node =
  match Dom.attr key node with
  | Some v -> (try max 0 (int_of_string (String.trim v)) with Failure _ -> default)
  | None -> default

(* A child is "inline-level" for grouping purposes when it is not a block
   element; comments and skipped elements are transparent. *)
let alignment_of node ~inherited : alignment =
  match String.lowercase_ascii (Dom.attr_default "align" ~default:"" node) with
  | "center" -> `Center
  | "right" -> `Right
  | "left" -> `Left
  | _ -> if Dom.name node = "center" then `Center else inherited

let rec layout_children ctx out children ~x ~y ~width ~align =
  let total = ref 0 in
  let inline_buffer = ref [] in
  let flush () =
    let atoms = List.rev !inline_buffer in
    inline_buffer := [];
    (* Drop leading/trailing pure whitespace groups. *)
    let has_content =
      List.exists
        (function Word _ | Widget_atom _ | Break -> true | Space -> false)
        atoms
    in
    if has_content && ctx.live then
      total := !total + flow ctx out atoms ~x ~y:(y + !total) ~width ~align
  in
  List.iter
    (fun child ->
       if ctx.live then
         match child with
         | Dom.Comment _ -> ()
         | Dom.Element (name, _, _) when List.mem name skipped_elements -> ()
         | Dom.Element (name, _, _) when is_block name ->
           flush ();
           let margin = block_margin name in
           total := !total + margin;
           total :=
             !total
             + layout_block ctx out child ~x ~y:(y + !total) ~width
                 ~align:(alignment_of child ~inherited:align);
           total := !total + margin
         | _ -> inline_buffer := atoms_of_inline child !inline_buffer)
    children;
  flush ();
  !total

and layout_block ctx out node ~x ~y ~width ~align =
  match Dom.name node with
  | "table" -> layout_table ctx out node ~x ~y ~width ~align
  | "ul" | "ol" | "dl" ->
    let indent = 30 in
    layout_children ctx out (Dom.children node) ~x:(x + indent) ~y
      ~width:(max 40 (width - indent)) ~align
  | "hr" -> 10
  | _ -> layout_children ctx out (Dom.children node) ~x ~y ~width ~align

(* ------------------------------------------------------------------ *)
(* Table layout                                                        *)
(* ------------------------------------------------------------------ *)

and layout_table ctx out node ~x ~y ~width ~align =
  let rows =
    (* Direct tr children plus tr under thead/tbody/tfoot, document order. *)
    List.concat_map
      (fun child ->
         match Dom.name child with
         | "tr" -> [ child ]
         | "thead" | "tbody" | "tfoot" ->
           List.filter (Dom.is_element ~named:"tr") (Dom.children child)
         | _ -> [])
      (Dom.children node)
  in
  if rows = [] then 0
  else begin
    let padding = int_attr "cellpadding" ~default:2 node in
    let spacing = int_attr "cellspacing" ~default:2 node in
    let cells_of_row row =
      List.filter
        (fun c -> Dom.is_element ~named:"td" c || Dom.is_element ~named:"th" c)
        (Dom.children row)
    in
    let colspan cell = max 1 (int_attr "colspan" ~default:1 cell) in
    let ncols =
      List.fold_left
        (fun acc row ->
           max acc
             (List.fold_left (fun n c -> n + colspan c) 0 (cells_of_row row)))
        1 rows
    in
    (* Measuring pass: natural width of each cell's content.  Scratch
       boxes are re-laid at placement time, so measurement runs in a
       deadline-probe-only context and does not charge the box cap
       twice; a deadline trip during measurement still kills [ctx]. *)
    let natural_width cell =
      let scratch = ref [] in
      let mctx = { gauge = ctx.gauge; live = ctx.live; measuring = true } in
      let _h =
        layout_children mctx scratch (Dom.children cell) ~x:0 ~y:0 ~width:3000
          ~align:`Left
      in
      if not mctx.live then ctx.live <- false;
      List.fold_left (fun acc l -> max acc l.box.Geometry.x2) 0 !scratch
    in
    let col_widths = Array.make ncols (2 * padding) in
    (* First size single-span cells, then widen for multi-span ones. *)
    List.iter
      (fun row ->
         let col = ref 0 in
         List.iter
           (fun cell ->
              let span = colspan cell in
              if span = 1 && !col < ncols && ctx.live then
                col_widths.(!col) <-
                  max col_widths.(!col) (natural_width cell + (2 * padding));
              col := !col + span)
           (cells_of_row row))
      rows;
    List.iter
      (fun row ->
         let col = ref 0 in
         List.iter
           (fun cell ->
              let span = colspan cell in
              if span > 1 && !col + span <= ncols && ctx.live then begin
                let needed = natural_width cell + (2 * padding) in
                let current = ref ((span - 1) * spacing) in
                for j = !col to !col + span - 1 do
                  current := !current + col_widths.(j)
                done;
                if needed > !current then begin
                  let extra = (needed - !current + span - 1) / span in
                  for j = !col to !col + span - 1 do
                    col_widths.(j) <- col_widths.(j) + extra
                  done
                end
              end;
              col := !col + span)
           (cells_of_row row))
      rows;
    (* Placement pass. *)
    let col_x = Array.make ncols 0 in
    let acc = ref (x + spacing) in
    for j = 0 to ncols - 1 do
      col_x.(j) <- !acc;
      acc := !acc + col_widths.(j) + spacing
    done;
    let y_cursor = ref (y + spacing) in
    List.iter
      (fun row ->
         let row_height = ref Style.line_height in
         let col = ref 0 in
         List.iter
           (fun cell ->
              let span = colspan cell in
              if !col < ncols && ctx.live then begin
                let cw = ref ((span - 1) * spacing) in
                for j = !col to min (ncols - 1) (!col + span - 1) do
                  cw := !cw + col_widths.(j)
                done;
                let content_width = max 20 (!cw - (2 * padding)) in
                let h =
                  layout_children ctx out (Dom.children cell)
                    ~x:(col_x.(!col) + padding)
                    ~y:(!y_cursor + padding)
                    ~width:content_width
                    ~align:(alignment_of cell ~inherited:align)
                in
                row_height := max !row_height (h + (2 * padding))
              end;
              col := !col + span)
           (cells_of_row row);
         y_cursor := !y_cursor + !row_height + spacing)
      rows;
    ignore width;
    !y_cursor - y
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let render ?gauge ?trace ?(width = Style.page_width) doc =
  let ctx = { gauge; live = true; measuring = false } in
  let out = ref [] in
  let margin = 8 in
  let _height =
    layout_children ctx out (Dom.children doc) ~x:margin ~y:margin
      ~width:(width - (2 * margin)) ~align:`Left
  in
  let atoms =
    List.sort
      (fun a b -> Geometry.compare_reading_order a.box b.box)
      (List.rev !out)
  in
  (match trace with
   | None -> ()
   | Some _ ->
     Wqi_obs.Trace.instant trace ~cat:"stage"
       ~args:
         [ ("atoms", Wqi_obs.Trace.Int (List.length atoms));
           ("width", Wqi_obs.Trace.Int width) ]
       "layout.atoms");
  atoms
