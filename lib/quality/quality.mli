(** Per-document extraction-quality records and corpus rollups.

    The parser is {i best-effort} by design (paper Section 3.4): output
    is routinely partial, and the two error classes the merger reports —
    conflicts and missing tokens — measure exactly how partial.  This
    module turns those diagnostics into a small, versioned quality
    record computed once per extraction, cheap enough for every
    front-end to emit unconditionally:

    - [wqi_extract --quality] prints it;
    - [wqi_batch]/[wqi_crawl] append one per document to a
      [quality.jsonl] and persist the headline fields in the store
      manifest, so a reopened store rolls up without re-extraction;
    - [wqi_serve] feeds it into the [/metrics] histograms and uses the
      score to pick low-quality exemplar traces;
    - [wqi_report] aggregates records into per-domain distributions and
      drift comparisons between crawl runs.

    Records render as canonical one-line JSON tagged
    [wqi_quality_version] (like Export v2), and {!Agg} folds streams of
    them into mergeable per-dimension aggregates (like
    [Telemetry.snapshot]: merging over any partition of a record stream
    equals single-pass aggregation — property-tested). *)

val version : int
(** Wire version of the record JSON, [1].  Bump on any field change. *)

type t = {
  source : string;   (** path or URL the document came from *)
  grammar : string;  (** grammar identity, [name@version] *)
  domain : string;   (** crawl-classified domain; [""] when unknown *)
  outcome : string;  (** ["complete"], ["degraded"] or ["failed"] *)
  tokens : int;      (** visible tokens the front-end produced *)
  covered : int;     (** tokens claimed by the semantic model *)
  conflicts : int;   (** conflict errors (token claimed twice) *)
  missing : int;     (** distinct tokens no selected tree covered *)
  trees : int;       (** maximal partial trees merged *)
  ambiguity : int;   (** surviving ambiguity: trees beyond the first *)
  trips : int;       (** budget trips of a degraded outcome *)
  coverage : float;  (** covered / tokens, 1.0 for empty interfaces *)
  score : float;     (** scalar quality in [0, 1], see {!score} *)
}

val score :
  outcome:string -> coverage:float -> conflicts:int -> tokens:int ->
  ambiguity:int -> float
(** The scalar quality score, a pure function of the record fields (so
    re-deriving it from a persisted record is exact):

    - a failed extraction scores [0.];
    - otherwise [coverage - conflicts/tokens - 0.02·min(ambiguity, 10)],
      clamped to [[0, 1]].

    Coverage dominates — it is the paper's own headline metric — while
    each conflicted token cancels a covered one and every surviving
    ambiguous tree the merger had to arbitrate costs 2 points, capped so
    pathological ambiguity cannot mask coverage.  Degradation needs no
    extra penalty: a tripped budget surfaces as missing coverage. *)

val of_extraction :
  source:string -> grammar:string -> ?domain:string ->
  Wqi_core.Extractor.extraction -> t
(** Compute the record from an extraction's existing diagnostics: token
    count from [diagnostics], coverage from the model's distinct
    missing-token ids, conflicts from the model errors, ambiguity from
    the maximal-tree count, trips from the outcome.  [domain] defaults
    to [""]. *)

val failed : source:string -> grammar:string -> ?domain:string ->
  unit -> t
(** The record of an extraction that failed before producing
    diagnostics (e.g. a batch worker whose file read failed): zero
    tokens, zero coverage, score [0.]. *)

val of_rollup :
  source:string -> grammar:string -> domain:string -> outcome:string ->
  score:float -> coverage:float -> conflicts:int -> t
(** Rebuild a record from the headline fields a store manifest persists
    (score, coverage, conflicts plus provenance), for rolling up a
    reopened store — or a crawl answered from it — without
    re-extraction.  The detail counters the manifest does not carry
    (tokens, covered, missing, trees, ambiguity, trips) are zero; {!Agg}
    still aggregates the count, outcome, score, coverage and conflict
    dimensions of such records exactly. *)

val to_json : t -> string
(** Canonical one-line JSON (no trailing newline), fields in fixed
    order, tagged [{"wqi_quality_version": 1, ...}].  Deterministic:
    a pure function of the record. *)

val of_json : string -> (t, string) result
(** Parse one record line.  Requires the version tag to match
    {!version}; unknown fields are ignored so minor forward revisions
    stay readable. *)

(** {1 Streaming aggregation}

    [Agg] folds records into per-dimension cells — overall, per domain,
    per grammar — each carrying count, outcome counts, score/coverage
    sums and a fixed-bucket score histogram.  Aggregates merge exactly:
    [merge a b] equals aggregating [a]'s and [b]'s record streams in one
    pass, for any split. *)
module Agg : sig
  type record := t

  type cell = {
    count : int;
    complete : int;
    degraded : int;
    failed : int;
    score_sum : float;
    coverage_sum : float;
    conflicts : int;
    missing : int;
    score_buckets : int array;
        (** counts per bucket of {!score_bucket_uppers}, non-cumulative *)
  }

  val score_bucket_uppers : float array
  (** Upper bounds of the score histogram buckets:
      [0.1, 0.2, ..., 1.0].  Scores never exceed 1, so no overflow
      bucket is needed. *)

  type t

  val create : unit -> t
  val add : t -> record -> unit
  val merge : t -> t -> t
  (** Pure: neither argument is mutated. *)

  val total : t -> cell

  val domains : t -> (string * cell) list
  (** Per-domain cells, sorted by domain. *)

  val grammars : t -> (string * cell) list
  (** Per-grammar cells, sorted by grammar. *)

  val mean_score : cell -> float
  (** [0.] on an empty cell. *)

  val mean_coverage : cell -> float
  (** [0.] on an empty cell. *)
end
