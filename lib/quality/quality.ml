(* See quality.mli.  The record is a pure function of an extraction's
   existing diagnostics — computing one is a few list walks over the
   model errors, far below the cost of the extraction itself (gated at
   1.03x in the bench validator). *)

module Extractor = Wqi_core.Extractor
module Semantic_model = Wqi_model.Semantic_model
module Budget = Wqi_budget.Budget

let version = 1

type t = {
  source : string;
  grammar : string;
  domain : string;
  outcome : string;
  tokens : int;
  covered : int;
  conflicts : int;
  missing : int;
  trees : int;
  ambiguity : int;
  trips : int;
  coverage : float;
  score : float;
}

let clamp01 f = Float.max 0. (Float.min 1. f)

let score ~outcome ~coverage ~conflicts ~tokens ~ambiguity =
  if outcome = "failed" then 0.
  else
    let conflict_share = float_of_int conflicts /. float_of_int (max 1 tokens) in
    let ambiguity_share = 0.02 *. float_of_int (min ambiguity 10) in
    clamp01 (coverage -. conflict_share -. ambiguity_share)

let outcome_name = function
  | Budget.Complete -> "complete"
  | Budget.Degraded _ -> "degraded"
  | Budget.Failed _ -> "failed"

let make ~source ~grammar ~domain ~outcome ~tokens ~covered ~conflicts
    ~missing ~trees ~ambiguity ~trips =
  let coverage =
    if tokens <= 0 then (if outcome = "failed" then 0. else 1.)
    else float_of_int covered /. float_of_int tokens
  in
  { source; grammar; domain; outcome; tokens; covered; conflicts; missing;
    trees; ambiguity; trips;
    coverage;
    score = score ~outcome ~coverage ~conflicts ~tokens ~ambiguity }

let of_extraction ~source ~grammar ?(domain = "") (e : Extractor.extraction) =
  let outcome = outcome_name e.outcome in
  let tokens = e.diagnostics.token_count in
  let missing = List.length (Semantic_model.missing_token_ids e.model) in
  let covered = max 0 (tokens - missing) in
  let trips =
    match e.outcome with Budget.Degraded trips -> List.length trips | _ -> 0
  in
  make ~source ~grammar ~domain ~outcome ~tokens ~covered
    ~conflicts:(Semantic_model.conflict_count e.model)
    ~missing ~trees:e.diagnostics.tree_count
    ~ambiguity:(max 0 (e.diagnostics.tree_count - 1))
    ~trips

let failed ~source ~grammar ?(domain = "") () =
  make ~source ~grammar ~domain ~outcome:"failed" ~tokens:0 ~covered:0
    ~conflicts:0 ~missing:0 ~trees:0 ~ambiguity:0 ~trips:0

let of_rollup ~source ~grammar ~domain ~outcome ~score ~coverage ~conflicts =
  { source; grammar; domain; outcome; tokens = 0; covered = 0; conflicts;
    missing = 0; trees = 0; ambiguity = 0; trips = 0; coverage; score }

(* ------------------------------------------------------------------ *)
(* Canonical JSON                                                     *)
(* ------------------------------------------------------------------ *)

(* %.12g round-trips through of_json → to_json byte-stably for the
   small-integer ratios scores are made of, while keeping the line
   readable; integers render without a decimal point. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_json r =
  let str = Wqi_model.Export.string in
  Printf.sprintf
    "{\"wqi_quality_version\":%d,\"source\":%s,\"grammar\":%s,\
     \"domain\":%s,\"outcome\":%s,\"score\":%s,\"coverage\":%s,\
     \"tokens\":%d,\"covered\":%d,\"conflicts\":%d,\"missing\":%d,\
     \"trees\":%d,\"ambiguity\":%d,\"trips\":%d}"
    version (str r.source) (str r.grammar) (str r.domain) (str r.outcome)
    (float_repr r.score) (float_repr r.coverage) r.tokens r.covered
    r.conflicts r.missing r.trees r.ambiguity r.trips

(* Hand-rolled reader for exactly the subset [to_json] emits (flat
   object, string and number values) — the build environment has no
   JSON library, and the store manifest reader sets the precedent. *)
exception Bad of string

let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let bad msg = raise (Bad msg) in
  let peek () = if !pos < n then line.[!pos] else bad "truncated" in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
    do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then bad (Printf.sprintf "expected %c" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (match peek () with
         | 'n' -> Buffer.add_char b '\n'; incr pos
         | 't' -> Buffer.add_char b '\t'; incr pos
         | 'r' -> Buffer.add_char b '\r'; incr pos
         | '"' -> Buffer.add_char b '"'; incr pos
         | '\\' -> Buffer.add_char b '\\'; incr pos
         | '/' -> Buffer.add_char b '/'; incr pos
         | 'u' ->
           if !pos + 4 >= n then bad "bad escape";
           let hex = String.sub line (!pos + 1) 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 256 -> Buffer.add_char b (Char.chr code)
            | _ -> bad "bad escape");
           pos := !pos + 5
         | _ -> bad "bad escape");
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric line.[!pos] do incr pos done;
    if !pos = start then bad "expected number";
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> bad "bad number"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then incr pos
  else begin
    let rec members () =
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let value =
        if peek () = '"' then `Str (parse_string ())
        else `Num (parse_number ())
      in
      fields := (key, value) :: !fields;
      skip_ws ();
      match peek () with
      | ',' -> incr pos; skip_ws (); members ()
      | '}' -> incr pos
      | _ -> bad "expected , or }"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then raise (Bad "trailing bytes");
  !fields

let of_json line =
  match parse_fields (String.trim line) with
  | exception Bad msg -> Error ("bad quality record: " ^ msg)
  | fields ->
    let str k =
      match List.assoc_opt k fields with
      | Some (`Str s) -> s
      | _ -> raise (Bad (k ^ ": expected string"))
    in
    let num k =
      match List.assoc_opt k fields with
      | Some (`Num v) -> v
      | _ -> raise (Bad (k ^ ": expected number"))
    in
    let int k =
      let v = num k in
      if Float.is_integer v then int_of_float v
      else raise (Bad (k ^ ": expected integer"))
    in
    (match
       let v = int "wqi_quality_version" in
       if v <> version then
         raise (Bad (Printf.sprintf "unsupported version %d" v));
       { source = str "source";
         grammar = str "grammar";
         domain = str "domain";
         outcome = str "outcome";
         tokens = int "tokens";
         covered = int "covered";
         conflicts = int "conflicts";
         missing = int "missing";
         trees = int "trees";
         ambiguity = int "ambiguity";
         trips = int "trips";
         coverage = num "coverage";
         score = num "score" }
     with
     | r -> Ok r
     | exception Bad msg -> Error ("bad quality record: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Streaming aggregation                                              *)
(* ------------------------------------------------------------------ *)

module Agg = struct
  type record = t

  type cell = {
    count : int;
    complete : int;
    degraded : int;
    failed : int;
    score_sum : float;
    coverage_sum : float;
    conflicts : int;
    missing : int;
    score_buckets : int array;
  }

  let score_bucket_uppers =
    [| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 |]

  let bucket_index s =
    let rec go i =
      if i >= Array.length score_bucket_uppers - 1 then i
      else if s <= score_bucket_uppers.(i) then i
      else go (i + 1)
    in
    go 0

  let empty_cell =
    { count = 0; complete = 0; degraded = 0; failed = 0; score_sum = 0.;
      coverage_sum = 0.; conflicts = 0; missing = 0;
      score_buckets = Array.make (Array.length score_bucket_uppers) 0 }

  let add_record c (r : record) =
    let buckets = Array.copy c.score_buckets in
    let bi = bucket_index r.score in
    buckets.(bi) <- buckets.(bi) + 1;
    { count = c.count + 1;
      complete = c.complete + (if r.outcome = "complete" then 1 else 0);
      degraded = c.degraded + (if r.outcome = "degraded" then 1 else 0);
      failed = c.failed + (if r.outcome = "failed" then 1 else 0);
      score_sum = c.score_sum +. r.score;
      coverage_sum = c.coverage_sum +. r.coverage;
      conflicts = c.conflicts + r.conflicts;
      missing = c.missing + r.missing;
      score_buckets = buckets }

  let merge_cell a b =
    { count = a.count + b.count;
      complete = a.complete + b.complete;
      degraded = a.degraded + b.degraded;
      failed = a.failed + b.failed;
      score_sum = a.score_sum +. b.score_sum;
      coverage_sum = a.coverage_sum +. b.coverage_sum;
      conflicts = a.conflicts + b.conflicts;
      missing = a.missing + b.missing;
      score_buckets =
        Array.mapi (fun i v -> v + b.score_buckets.(i)) a.score_buckets }

  type t = {
    mutable agg_total : cell;
    by_domain : (string, cell) Hashtbl.t;
    by_grammar : (string, cell) Hashtbl.t;
  }

  let create () =
    { agg_total = empty_cell;
      by_domain = Hashtbl.create 8;
      by_grammar = Hashtbl.create 8 }

  let bump tbl key r =
    let cur = Option.value ~default:empty_cell (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (add_record cur r)

  let add t (r : record) =
    t.agg_total <- add_record t.agg_total r;
    bump t.by_domain r.domain r;
    bump t.by_grammar r.grammar r

  let merge_tbl a b =
    let out = Hashtbl.copy a in
    Hashtbl.iter
      (fun key cell ->
         match Hashtbl.find_opt out key with
         | Some cur -> Hashtbl.replace out key (merge_cell cur cell)
         | None -> Hashtbl.replace out key cell)
      b;
    out

  let merge a b =
    { agg_total = merge_cell a.agg_total b.agg_total;
      by_domain = merge_tbl a.by_domain b.by_domain;
      by_grammar = merge_tbl a.by_grammar b.by_grammar }

  let total t = t.agg_total

  let sorted tbl =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let domains t = sorted t.by_domain
  let grammars t = sorted t.by_grammar

  let mean_score c =
    if c.count = 0 then 0. else c.score_sum /. float_of_int c.count

  let mean_coverage c =
    if c.count = 0 then 0. else c.coverage_sum /. float_of_int c.count
end
