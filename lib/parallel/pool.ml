type task = unit -> unit

(* The pool is a FIFO queue of thunks drained by [jobs - 1] worker
   domains.  Two usage styles share it:

   - {!map_array} (batch work): the caller enqueues helper thunks that
     drain a chunk cursor and participates itself, exactly as before the
     queue existed.
   - {!submit} (service work): independent tasks are queued and their
     results delivered through futures, so a long-lived process (the
     extraction server) can park requests on the pool without blocking
     its accept loop.

   Workers exit only once the pool is stopped AND the queue is empty, so
   [shutdown] is drain-then-join: work queued before the shutdown still
   runs to completion. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* queue non-empty, or stopping *)
  queue : task Queue.t;
  mutable inflight : int;    (* dequeued and currently executing *)
  mutable peak_inflight : int;  (* high-water mark of [inflight] *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopped do
    Condition.wait pool.work_ready pool.mutex
  done;
  if Queue.is_empty pool.queue then
    (* stopped, nothing left to drain *)
    Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.queue in
    pool.inflight <- pool.inflight + 1;
    if pool.inflight > pool.peak_inflight then
      pool.peak_inflight <- pool.inflight;
    Mutex.unlock pool.mutex;
    (* Tasks are wrapped at enqueue time and never raise; the handler is
       a backstop so a buggy thunk cannot kill a worker domain. *)
    (try task () with _ -> ());
    Mutex.lock pool.mutex;
    pool.inflight <- pool.inflight - 1;
    Mutex.unlock pool.mutex;
    worker_loop pool
  end

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> Domain.recommended_domain_count ()
    | Some j -> max 1 j  (* j <= 0 clamps to sequential, never raises *)
  in
  let pool =
    { jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      inflight = 0;
      peak_inflight = 0;
      stopped = false;
      domains = [] }
  in
  pool.domains <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs

let queue_depth pool =
  Mutex.lock pool.mutex;
  let n = Queue.length pool.queue in
  Mutex.unlock pool.mutex;
  n

let inflight pool =
  Mutex.lock pool.mutex;
  let n = pool.inflight in
  Mutex.unlock pool.mutex;
  n

let peak_inflight pool =
  Mutex.lock pool.mutex;
  let n = pool.peak_inflight in
  Mutex.unlock pool.mutex;
  n

let shutdown pool =
  Mutex.lock pool.mutex;
  let already = pool.stopped in
  if not already then begin
    pool.stopped <- true;
    Condition.broadcast pool.work_ready
  end;
  Mutex.unlock pool.mutex;
  if not already && pool.domains = [] then begin
    (* Sequential pool: no workers will drain the queue, so the caller
       does.  ({!submit} runs inline on sequential pools, so the queue
       is normally empty here; this is a backstop for tasks enqueued by
       a concurrent caller racing the shutdown.) *)
    let rec drain () =
      Mutex.lock pool.mutex;
      let next = Queue.take_opt pool.queue in
      Mutex.unlock pool.mutex;
      match next with
      | None -> ()
      | Some task ->
        (try task () with _ -> ());
        drain ()
    in
    drain ()
  end;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* ------------------------------------------------------------------ *)
(* Futures                                                            *)
(* ------------------------------------------------------------------ *)

type 'a state =
  | Pending
  | Resolved of 'a
  | Faulted of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

let fulfil fut state =
  Mutex.lock fut.f_mutex;
  fut.f_state <- state;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let submit pool f =
  let fut =
    { f_mutex = Mutex.create ();
      f_cond = Condition.create ();
      f_state = Pending }
  in
  let task () =
    match f () with
    | v -> fulfil fut (Resolved v)
    | exception e -> fulfil fut (Faulted (e, Printexc.get_raw_backtrace ()))
  in
  Mutex.lock pool.mutex;
  if pool.stopped then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  if pool.domains = [] then begin
    (* Sequential pool: run now, on the submitting thread.  The future
       is already fulfilled when it is returned. *)
    Mutex.unlock pool.mutex;
    task ();
    fut
  end
  else begin
    Queue.push task pool.queue;
    Condition.signal pool.work_ready;
    Mutex.unlock pool.mutex;
    fut
  end

let await fut =
  Mutex.lock fut.f_mutex;
  let rec wait () =
    match fut.f_state with
    | Pending ->
      Condition.wait fut.f_cond fut.f_mutex;
      wait ()
    | Resolved v ->
      Mutex.unlock fut.f_mutex;
      v
    | Faulted (e, bt) ->
      Mutex.unlock fut.f_mutex;
      Printexc.raise_with_backtrace e bt
  in
  wait ()

let is_done fut =
  Mutex.lock fut.f_mutex;
  let done_ = match fut.f_state with Pending -> false | _ -> true in
  Mutex.unlock fut.f_mutex;
  done_

(* ------------------------------------------------------------------ *)
(* Batch mapping                                                      *)
(* ------------------------------------------------------------------ *)

let map_array pool f input =
  if pool.stopped then invalid_arg "Pool: used after shutdown";
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    (* Chunked queue, no stealing: workers claim fixed-size index ranges
       off a single atomic cursor.  Results land at their input index,
       so the output order is deterministic regardless of parallelism. *)
    let chunk = max 1 (n / (pool.jobs * 8)) in
    let work () =
      let rec drain () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n && Atomic.get error = None then begin
          let stop = min n (start + chunk) in
          (try
             for i = start to stop - 1 do
               out.(i) <- Some (f input.(i))
             done
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
          drain ()
        end
      in
      drain ()
    in
    if pool.domains = [] then work ()
    else begin
      (* Enqueue one helper per worker; the caller participates too, so
         the map makes progress even while the queue is busy with
         submitted tasks.  Helpers that arrive after the cursor is
         exhausted return immediately. *)
      let helpers =
        List.init (min (pool.jobs - 1) n) (fun _ -> submit pool work)
      in
      work ();
      List.iter (fun fut -> await fut) helpers
    end;
    (match Atomic.get error with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_list pool f input =
  Array.to_list (map_array pool f (Array.of_list input))

let run ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Domain groups                                                      *)
(* ------------------------------------------------------------------ *)

module Group = struct
  type t = unit Domain.t array

  let spawn ~jobs f =
    let jobs = max 1 jobs in
    Array.init jobs (fun i -> Domain.spawn (fun () -> f i))

  let size = Array.length

  let join g = Array.iter Domain.join g
end
