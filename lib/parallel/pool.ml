type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable task : task option;
  mutable generation : int;
  mutable active : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

(* Each worker parks on [work_ready] until the generation counter moves,
   runs the shared task closure to exhaustion (the closure drains the
   chunk queue internally), then reports back through [active] /
   [work_done].  The task slot is cleared only after every worker has
   reported, so a late-waking worker always finds the closure it was
   woken for. *)
let rec worker_loop pool last_gen =
  Mutex.lock pool.mutex;
  while pool.generation = last_gen && not pool.stopped do
    Condition.wait pool.work_ready pool.mutex
  done;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    let gen = pool.generation in
    let task = pool.task in
    Mutex.unlock pool.mutex;
    (match task with Some f -> f () | None -> ());
    Mutex.lock pool.mutex;
    pool.active <- pool.active - 1;
    if pool.active = 0 then Condition.broadcast pool.work_done;
    Mutex.unlock pool.mutex;
    worker_loop pool gen
  end

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> Domain.recommended_domain_count ()
    | Some j when j >= 1 -> j
    | Some j -> invalid_arg (Printf.sprintf "Pool.create: jobs %d < 1" j)
  in
  let pool =
    { jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      task = None;
      generation = 0;
      active = 0;
      stopped = false;
      domains = [] }
  in
  pool.domains <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  if not pool.stopped then begin
    pool.stopped <- true;
    Condition.broadcast pool.work_ready
  end;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* Run [f] on every worker (the calling domain participates) and wait
   until all have returned. *)
let run_task pool f =
  if pool.stopped then invalid_arg "Pool: used after shutdown";
  if pool.jobs = 1 then f ()
  else begin
    Mutex.lock pool.mutex;
    pool.task <- Some f;
    pool.generation <- pool.generation + 1;
    pool.active <- pool.jobs - 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    f ();
    Mutex.lock pool.mutex;
    while pool.active > 0 do
      Condition.wait pool.work_done pool.mutex
    done;
    pool.task <- None;
    Mutex.unlock pool.mutex
  end

let map_array pool f input =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    (* Chunked queue, no stealing: workers claim fixed-size index ranges
       off a single atomic cursor.  Results land at their input index,
       so the output order is deterministic regardless of completion
       order. *)
    let chunk = max 1 (n / (pool.jobs * 8)) in
    let work () =
      let rec drain () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n && Atomic.get error = None then begin
          let stop = min n (start + chunk) in
          (try
             for i = start to stop - 1 do
               out.(i) <- Some (f input.(i))
             done
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
          drain ()
        end
      in
      drain ()
    in
    run_task pool work;
    (match Atomic.get error with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_list pool f input =
  Array.to_list (map_array pool f (Array.of_list input))

let run ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
