(** A fixed pool of OCaml 5 domains for parallel work.

    The pool is created once and reused: spawning a domain costs
    milliseconds, so per-call spawning would dominate the per-interface
    parse times the extractor actually sees.  Internally the pool is a
    FIFO queue of thunks drained by [jobs - 1] worker domains, serving
    two workloads:

    - {b batch mapping} ({!map_array}): many independent items of
      broadly similar cost, distributed as fixed-size index chunks
      claimed from a single atomic cursor — no per-item locking, no
      stealing.  The calling domain participates as the [jobs]-th
      worker.
    - {b task submission} ({!submit}): independent one-off tasks whose
      results come back through futures ({!await}), so a long-lived
      process (e.g. the extraction server) can park work on the pool
      without blocking the thread that produced it.

    The executed function runs concurrently on several domains; it must
    not touch shared mutable state.  (The parser engine allocates all of
    its state per [parse] call, so parsing and extraction qualify.) *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs]
    defaults to [Domain.recommended_domain_count ()]; values [<= 1]
    (including [0]) clamp to [1] — a sequential pool that spawns no
    domains and never raises. *)

val jobs : t -> int
(** Parallelism degree, including the calling domain. *)

(** {1 Futures} *)

type 'a future
(** The pending result of a {!submit}ted task. *)

val submit : t -> (unit -> 'a) -> 'a future
(** [submit pool f] enqueues [f] for execution on a worker domain and
    returns a future for its result.  Tasks run in FIFO order.  On a
    sequential pool ([jobs = 1]) the task runs inline, on the calling
    thread, before [submit] returns.  Raises [Invalid_argument] after
    {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task completes and return its result.  If the task
    raised, the exception is re-raised here with its backtrace.  May be
    called from any thread or domain, any number of times. *)

val is_done : 'a future -> bool
(** Whether {!await} would return without blocking. *)

val queue_depth : t -> int
(** Tasks enqueued and not yet started — the backlog an extraction
    server reports as its queue-depth gauge. *)

val inflight : t -> int
(** Tasks currently executing on worker domains. *)

val peak_inflight : t -> int
(** High-water mark of {!inflight} over the pool's lifetime — how close
    the pool ever came to saturating its worker domains.  Tasks run
    inline by a sequential pool never count. *)

(** {1 Batch mapping} *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f input] applies [f] to every element on the pool
    and returns the results in input order (gathered by index, not by
    completion).  If some application raises, the first exception
    observed is re-raised in the caller after all workers have
    drained.  The call shares the pool's queue with {!submit}ted tasks:
    the caller always participates, so the map progresses even while
    the queue is busy. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over lists. *)

val shutdown : t -> unit
(** Drain then join: no new work is accepted (later {!submit} or
    {!map_array} raise [Invalid_argument]), but every task already
    queued still runs, and the worker domains are joined only once the
    queue is empty and in-flight tasks have finished.  Futures for
    queued tasks are therefore always eventually fulfilled.
    Idempotent. *)

val run : ?jobs:int -> (t -> 'a) -> 'a
(** [run f] = create a pool, apply [f], and shut the pool down even on
    exceptions. *)

(** {1 Domain groups}

    The shared-nothing alternative to the queue: instead of parking
    tasks on a shared pool, spawn one long-lived domain per core and
    give each its own loop over state it exclusively owns (the
    extraction server runs one accept loop, cache shard and telemetry
    arena per group member).  There is no queue, no futures and no
    shared mutex — the group only knows how to spawn and join. *)
module Group : sig
  type t

  val spawn : jobs:int -> (int -> unit) -> t
  (** [spawn ~jobs f] starts [max 1 jobs] domains, running [f 0] …
      [f (jobs - 1)].  [f] receives the member's index and owns
      whatever state it indexes with it; it must arrange its own exit
      condition (the server uses a drain flag plus a self-pipe). *)

  val size : t -> int

  val join : t -> unit
  (** Block until every member's [f] has returned. *)
end
