(** A fixed pool of OCaml 5 domains for data-parallel batch work.

    The pool is created once and reused across calls: spawning a domain
    costs milliseconds, so per-call spawning would dominate the
    per-interface parse times the batch extractor actually sees.  Work
    is distributed as fixed-size index chunks claimed from a single
    atomic cursor — no per-item locking, no stealing — which fits the
    batch workload: many independent items of broadly similar cost.

    The mapped function runs concurrently on several domains; it must
    not touch shared mutable state.  (The parser engine allocates all
    of its state per [parse] call, so parsing and extraction qualify.) *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains; the domain
    calling {!map_array} participates as the [jobs]-th worker.  [jobs]
    defaults to [Domain.recommended_domain_count ()].  Raises
    [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int
(** Parallelism degree, including the calling domain. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f input] applies [f] to every element on the pool
    and returns the results in input order (gathered by index, not by
    completion).  If some application raises, the first exception
    observed is re-raised in the caller after all workers have
    drained. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over lists. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool must not be
    used afterwards. *)

val run : ?jobs:int -> (t -> 'a) -> 'a
(** [run f] = create a pool, apply [f], and shut the pool down even on
    exceptions. *)
