module G = Wqi_grammar
module Symbol = G.Symbol
module Instance = G.Instance
module Production = G.Production
module Preference = G.Preference
module Bitset = G.Bitset
module R = G.Relation
module H = G.Hint
module Condition = Wqi_model.Condition

(* ------------------------------------------------------------------ *)
(* Symbols                                                             *)
(* ------------------------------------------------------------------ *)

let t_text = Symbol.terminal "text"
let t_textbox = Symbol.terminal "textbox"
let t_selection = Symbol.terminal "selection"
let t_radio = Symbol.terminal "radio"
let t_checkbox = Symbol.terminal "checkbox"
let t_button = Symbol.terminal "button"
let t_image = Symbol.terminal "image"

let terminals =
  [ t_text; t_textbox; t_selection; t_radio; t_checkbox; t_button; t_image ]

let nt = Symbol.nonterminal
let attr = nt "Attr"
let attr_bound = nt "AttrBound"
let attr_tail = nt "AttrTail"
let value = nt "Val"
let sel_val = nt "SelVal"
let op_sel = nt "OpSel"
let bound_word = nt "BoundWord"
let unit_word = nt "UnitWord"
let action = nt "Action"
let decor = nt "Decor"
let rbu = nt "RBU"
let rb_list = nt "RBList"
let cbu = nt "CBU"
let cb_list = nt "CBList"
let op = nt "Op"
let text_val = nt "TextVal"
let text_op = nt "TextOp"
let select_cp = nt "SelectCP"
let enum_rb = nt "EnumRB"
let check_cp = nt "CheckCP"
let cb_solo = nt "CBSolo"
let bound_val = nt "BoundVal"
let bound_sel = nt "BoundSel"
let range_body = nt "RangeBody"
let range_sel_body = nt "RangeSelBody"
let range_cp = nt "RangeCP"
let range_sel_cp = nt "RangeSelCP"
let date_body = nt "DateBody"
let date_cp = nt "DateCP"
let keyword_cp = nt "KeywordCP"
let cp = nt "CP"
let hqi = nt "HQI"
let qi = nt "QI"

let start = qi

(* ------------------------------------------------------------------ *)
(* Semantic access helpers                                             *)
(* ------------------------------------------------------------------ *)

let tok_sval (i : Instance.t) =
  match i.token with Some tk -> tk.Wqi_token.Token.sval | None -> ""

let tok_options (i : Instance.t) =
  match i.token with Some tk -> tk.Wqi_token.Token.options | None -> []

let str_of (i : Instance.t) =
  match i.sem with Instance.S_str s -> s | _ -> ""

let ops_of (i : Instance.t) =
  match i.sem with Instance.S_ops l -> l | _ -> []

let dom_of (i : Instance.t) =
  match i.sem with Instance.S_domain d -> d | _ -> Condition.Text

let cond ?operators ~attribute domain =
  Instance.S_cond (Condition.make ?operators ~attribute domain)

let enum_options (i : Instance.t) =
  match dom_of i with Condition.Enumeration vs -> vs | _ -> []

(* ------------------------------------------------------------------ *)
(* Production helpers                                                  *)
(* ------------------------------------------------------------------ *)

(* [hints] restate the guard's spatial conjuncts declaratively so the
   parser can enumerate candidates through its row-band index instead of
   scanning whole stores.  Soundness rule: a hint may only be given when
   the guard calls the very same relation with the same (or looser)
   bounds on the same pair of components — the hint then prunes only
   combinations the guard would reject anyway, and results stay
   byte-identical with hints disabled. *)
let prod name head components ?guard ?build ?hints () =
  Production.make ~name ~head ~components ?guard ?build ?hints ()

let g1 f = fun arr -> f arr.(0)
let g2 f = fun arr -> f arr.(0) arr.(1)
let g3 f = fun arr -> f arr.(0) arr.(1) arr.(2)

(* ------------------------------------------------------------------ *)
(* Atom productions                                                    *)
(* ------------------------------------------------------------------ *)

let atoms =
  [ prod "P-Attr" attr [ t_text ]
      ~guard:(g1 (fun s -> Lexicon.plausible_attribute (tok_sval s)))
      ~build:(g1 (fun s -> Instance.S_str (tok_sval s)))
      ();
    prod "P-Val" value [ t_textbox ]
      ~build:(fun _ -> Instance.S_domain Condition.Text)
      ();
    prod "P-SelVal" sel_val [ t_selection ]
      ~build:(g1 (fun s ->
          Instance.S_domain (Condition.Enumeration (tok_options s))))
      ();
    prod "P-OpSel" op_sel [ t_selection ]
      ~guard:(g1 (fun s -> Lexicon.all_operator_options (tok_options s)))
      ~build:(g1 (fun s -> Instance.S_ops (tok_options s)))
      ();
    prod "P-AttrBound" attr_bound [ t_text ]
      ~guard:
        (g1 (fun s -> Lexicon.split_bound_suffix (tok_sval s) <> None))
      ~build:
        (g1 (fun s ->
             match Lexicon.split_bound_suffix (tok_sval s) with
             | Some (label, _marker) -> Instance.S_str label
             | None -> Instance.S_none))
      ();
    prod "P-AttrTail" attr_tail [ t_text ]
      ~guard:(g1 (fun s -> Lexicon.split_unit_prefix (tok_sval s) <> None))
      ~build:
        (g1 (fun s ->
             match Lexicon.split_unit_prefix (tok_sval s) with
             | Some (_unit, label) -> Instance.S_str label
             | None -> Instance.S_none))
      ();
    prod "P-BoundWord" bound_word [ t_text ]
      ~guard:(g1 (fun s -> Lexicon.is_bound_marker (tok_sval s)))
      ~build:(g1 (fun s -> Instance.S_str (tok_sval s)))
      ();
    prod "P-UnitWord" unit_word [ t_text ]
      ~guard:(g1 (fun s -> Lexicon.is_unit_word (tok_sval s)))
      ();
    prod "P-Action" action [ t_button ] ();
    prod "P-Decor" decor [ t_image ] () ]

(* ------------------------------------------------------------------ *)
(* Radio / checkbox structure                                          *)
(* ------------------------------------------------------------------ *)

let unit_gap = 30

let button_units =
  [ prod "P-RBU" rbu [ t_radio; t_text ]
      ~guard:(g2 (fun r s -> R.left ~max_gap:unit_gap r s))
      ~build:(g2 (fun _ s -> Instance.S_str (tok_sval s)))
      ~hints:[ H.left_of ~max_gap:unit_gap 0 1 ]
      ();
    prod "P-CBU" cbu [ t_checkbox; t_text ]
      ~guard:(g2 (fun c s -> R.left ~max_gap:unit_gap c s))
      ~build:(g2 (fun _ s -> Instance.S_str (tok_sval s)))
      ~hints:[ H.left_of ~max_gap:unit_gap 0 1 ]
      () ]

let list_of_units name list_sym unit_sym =
  [ prod (name ^ "-base") list_sym [ unit_sym ]
      ~build:(g1 (fun u -> Instance.S_ops [ str_of u ]))
      ();
    prod (name ^ "-h") list_sym [ list_sym; unit_sym ]
      ~guard:(g2 (fun l u -> R.left ~max_gap:90 l u))
      ~build:(g2 (fun l u -> Instance.S_ops (ops_of l @ [ str_of u ])))
      ~hints:[ H.left_of ~max_gap:90 0 1 ]
      ();
    prod (name ^ "-v") list_sym [ list_sym; unit_sym ]
      ~guard:
        (g2 (fun l u ->
             R.above ~max_gap:20 l u && R.left_aligned ~tolerance:10 l u))
      ~build:(g2 (fun l u -> Instance.S_ops (ops_of l @ [ str_of u ])))
      ~hints:[ H.above ~max_gap:20 0 1; H.left_aligned ~tolerance:10 0 1 ]
      () ]

let lists =
  list_of_units "P-RBList" rb_list rbu
  @ list_of_units "P-CBList" cb_list cbu

let op_productions =
  [ prod "P-Op-RB" op [ rb_list ]
      ~guard:(g1 (fun l -> List.exists Lexicon.is_operator_phrase (ops_of l)))
      ~build:(g1 (fun l -> Instance.S_ops (ops_of l)))
      ();
    prod "P-Op-Sel" op [ op_sel ]
      ~build:(g1 (fun s -> Instance.S_ops (ops_of s)))
      ();
    (* Checkbox modifier lists ("[x] exact match  [x] whole words"). *)
    prod "P-Op-CB" op [ cb_list ]
      ~guard:
        (g1 (fun l -> List.for_all Lexicon.is_operator_phrase (ops_of l)))
      ~build:(g1 (fun l -> Instance.S_ops (ops_of l)))
      () ]

(* ------------------------------------------------------------------ *)
(* Condition patterns                                                  *)
(* ------------------------------------------------------------------ *)

let text_val_build = g2 (fun a _v -> cond ~attribute:(str_of a) Condition.Text)

(* Above/below attribute conventions also left-align the label with the
   field; requiring it stops labels from capturing fields in the row
   above or below within a label column. *)
let stacked rel a b = rel a b && R.left_aligned ~tolerance:25 a b

(* Attribute-to-field adjacency: label columns in real tables are sized
   by their longest sibling label, so the gap between a short label and
   its field can be large.  Association scoring still prefers the
   tightest pairing when several fields compete. *)
let attr_left_gap = 150
let attr_left a b = R.left ~max_gap:attr_left_gap a b

(* Hint counterparts of the two conventions above, by slot index. *)
let h_attr_left a b = H.left_of ~max_gap:attr_left_gap a b
let h_stacked_above a b = [ H.above a b; H.left_aligned ~tolerance:25 a b ]

let text_vals =
  [ prod "P-TextVal-left" text_val [ attr; value ]
      ~guard:(g2 (fun a v -> attr_left a v))
      ~build:text_val_build ~hints:[ h_attr_left 0 1 ] ();
    prod "P-TextVal-above" text_val [ attr; value ]
      ~guard:(g2 (fun a v -> stacked (R.above ?max_gap:None) a v))
      ~build:text_val_build ~hints:(h_stacked_above 0 1) ();
    prod "P-TextVal-below" text_val [ attr; value ]
      ~guard:(g2 (fun a v -> stacked (R.below ~max_gap:14) a v))
      ~build:text_val_build
      ~hints:[ H.below ~max_gap:14 0 1; H.left_aligned ~tolerance:25 0 1 ]
      ();
    (* "...miles of ZIP [box]": the unit-prefixed run labels the next
       field. *)
    prod "P-TextVal-tail" text_val [ attr_tail; value ]
      ~guard:(g2 (fun a v -> R.left ~max_gap:60 a v))
      ~build:text_val_build ~hints:[ H.left_of ~max_gap:60 0 1 ] ();
    prod "P-TextVal-unit" text_val [ attr; value; unit_word ]
      ~guard:(g3 (fun a v u -> attr_left a v && R.left ~max_gap:30 v u))
      ~build:(g3 (fun a _v _u -> cond ~attribute:(str_of a) Condition.Text))
      ~hints:[ h_attr_left 0 1; H.left_of ~max_gap:30 1 2 ]
      () ]

let text_op_build =
  g3 (fun a _v o ->
      cond ~operators:(ops_of o) ~attribute:(str_of a) Condition.Text)

let text_op_build_op_mid =
  g3 (fun a o _v ->
      cond ~operators:(ops_of o) ~attribute:(str_of a) Condition.Text)

let text_ops =
  [ (* Paper P5: Left(Attr, Val) ∧ Below(Op, Val) — operators under the
       textbox, as in Qam's author condition. *)
    prod "P-TextOp-below" text_op [ attr; value; op ]
      ~guard:(g3 (fun a v o -> attr_left a v && R.above ~max_gap:24 v o))
      ~build:text_op_build
      ~hints:[ h_attr_left 0 1; H.above ~max_gap:24 1 2 ]
      ();
    prod "P-TextOp-right" text_op [ attr; value; op ]
      ~guard:(g3 (fun a v o -> attr_left a v && R.left ~max_gap:90 v o))
      ~build:text_op_build
      ~hints:[ h_attr_left 0 1; H.left_of ~max_gap:90 1 2 ]
      ();
    prod "P-TextOp-opleft" text_op [ attr; op; value ]
      ~guard:(g3 (fun a o v -> attr_left a o && R.left o v))
      ~build:text_op_build_op_mid
      ~hints:[ h_attr_left 0 1; H.left_of 1 2 ]
      ();
    prod "P-TextOp-attrabove" text_op [ attr; value; op ]
      ~guard:(g3 (fun a v o -> R.above a v && R.above ~max_gap:24 v o))
      ~build:text_op_build
      ~hints:[ H.above 0 1; H.above ~max_gap:24 1 2 ]
      () ]

let select_build =
  g2 (fun a s -> cond ~attribute:(str_of a) (dom_of s))

let select_cps =
  [ prod "P-SelectCP-left" select_cp [ attr; sel_val ]
      ~guard:(g2 (fun a s -> attr_left a s))
      ~build:select_build ~hints:[ h_attr_left 0 1 ] ();
    prod "P-SelectCP-above" select_cp [ attr; sel_val ]
      ~guard:(g2 (fun a s -> stacked (R.above ?max_gap:None) a s))
      ~build:select_build ~hints:(h_stacked_above 0 1) () ]

let enum_rb_build =
  g2 (fun a l ->
      cond ~attribute:(str_of a) (Condition.Enumeration (ops_of l)))

let enum_rbs =
  [ (* Paper P7: a bare radio-button list is itself a condition. *)
    prod "P-EnumRB-bare" enum_rb [ rb_list ]
      ~guard:(g1 (fun l -> List.length (ops_of l) >= 2))
      ~build:
        (g1 (fun l ->
             cond ~attribute:"" (Condition.Enumeration (ops_of l))))
      ();
    prod "P-EnumRB-left" enum_rb [ attr; rb_list ]
      ~guard:(g2 (fun a l -> attr_left a l))
      ~build:enum_rb_build ~hints:[ h_attr_left 0 1 ] ();
    prod "P-EnumRB-above" enum_rb [ attr; rb_list ]
      ~guard:(g2 (fun a l -> stacked (R.above ?max_gap:None) a l))
      ~build:enum_rb_build ~hints:(h_stacked_above 0 1) () ]

let check_cp_build =
  g2 (fun a l ->
      cond ~attribute:(str_of a) (Condition.Enumeration (ops_of l)))

let check_cps =
  [ prod "P-CheckCP-bare" check_cp [ cb_list ]
      ~guard:(g1 (fun l -> List.length (ops_of l) >= 2))
      ~build:
        (g1 (fun l ->
             cond ~attribute:"" (Condition.Enumeration (ops_of l))))
      ();
    prod "P-CheckCP-left" check_cp [ attr; cb_list ]
      ~guard:(g2 (fun a l -> attr_left a l))
      ~build:check_cp_build ~hints:[ h_attr_left 0 1 ] ();
    prod "P-CheckCP-above" check_cp [ attr; cb_list ]
      ~guard:(g2 (fun a l -> stacked (R.above ?max_gap:None) a l))
      ~build:check_cp_build ~hints:(h_stacked_above 0 1) ();
    prod "P-CBSolo" cb_solo [ cbu ]
      ~build:
        (g1 (fun u ->
             cond ~attribute:(str_of u)
               (Condition.Enumeration [ str_of u ])))
      () ]

let bounds =
  [ prod "P-BoundVal" bound_val [ bound_word; value ]
      ~guard:(g2 (fun w v -> R.left ~max_gap:40 w v))
      ~build:(fun _ -> Instance.S_domain Condition.Text)
      ~hints:[ H.left_of ~max_gap:40 0 1 ]
      ();
    prod "P-BoundSel" bound_sel [ bound_word; sel_val ]
      ~guard:(g2 (fun w s -> R.left ~max_gap:40 w s))
      ~build:(g2 (fun _ s -> Instance.S_domain (dom_of s)))
      ~hints:[ H.left_of ~max_gap:40 0 1 ]
      () ]

let range_bodies =
  [ prod "P-RangeBody-h" range_body [ bound_val; bound_val ]
      ~guard:(g2 (fun a b -> R.left ~max_gap:120 a b))
      ~build:(fun _ -> Instance.S_domain (Condition.Range Condition.Text))
      ~hints:[ H.left_of ~max_gap:120 0 1 ]
      ();
    prod "P-RangeBody-v" range_body [ bound_val; bound_val ]
      ~guard:(g2 (fun a b -> R.above ~max_gap:24 a b))
      ~build:(fun _ -> Instance.S_domain (Condition.Range Condition.Text))
      ~hints:[ H.above ~max_gap:24 0 1 ]
      ();
    (* "Attr [tb] to [tb]": the first bound carries no marker. *)
    prod "P-RangeBody-valfirst" range_body [ value; bound_val ]
      ~guard:(g2 (fun v b -> R.left ~max_gap:60 v b))
      ~build:(fun _ -> Instance.S_domain (Condition.Range Condition.Text))
      ~hints:[ H.left_of ~max_gap:60 0 1 ]
      ();
    prod "P-RangeSelBody-h" range_sel_body [ bound_sel; bound_sel ]
      ~guard:(g2 (fun a b -> R.left ~max_gap:120 a b))
      ~build:
        (g2 (fun a _ -> Instance.S_domain (Condition.Range (dom_of a))))
      ~hints:[ H.left_of ~max_gap:120 0 1 ]
      ();
    prod "P-RangeSelBody-v" range_sel_body [ bound_sel; bound_sel ]
      ~guard:(g2 (fun a b -> R.above ~max_gap:24 a b))
      ~build:
        (g2 (fun a _ -> Instance.S_domain (Condition.Range (dom_of a))))
      ~hints:[ H.above ~max_gap:24 0 1 ]
      () ]

let range_build =
  g2 (fun a body ->
      cond ~operators:[ "between" ] ~attribute:(str_of a) (dom_of body))

(* "From: [box] To: [box]" on an airfare form is two attributed
   conditions, not a range: a range pattern's attribute is never itself
   a bare bound marker. *)
let range_attr_ok a = not (Lexicon.is_bound_marker (str_of a))

let range_cps =
  [ prod "P-RangeCP-combined" range_cp [ attr_bound; value; bound_val ]
      ~guard:
        (g3 (fun a v b -> attr_left a v && R.left ~max_gap:60 v b))
      ~build:
        (g3 (fun a _v _b ->
             cond ~operators:[ "between" ] ~attribute:(str_of a)
               (Condition.Range Condition.Text)))
      ~hints:[ h_attr_left 0 1; H.left_of ~max_gap:60 1 2 ]
      ();
    prod "P-RangeSelCP-combined" range_sel_cp [ attr_bound; sel_val; bound_sel ]
      ~guard:
        (g3 (fun a v b -> attr_left a v && R.left ~max_gap:60 v b))
      ~build:
        (g3 (fun a v _b ->
             cond ~operators:[ "between" ] ~attribute:(str_of a)
               (Condition.Range (dom_of v))))
      ~hints:[ h_attr_left 0 1; H.left_of ~max_gap:60 1 2 ]
      ();
    prod "P-RangeCP-left" range_cp [ attr; range_body ]
      ~guard:(g2 (fun a b -> range_attr_ok a && attr_left a b))
      ~build:range_build ~hints:[ h_attr_left 0 1 ] ();
    prod "P-RangeCP-above" range_cp [ attr; range_body ]
      ~guard:
        (g2 (fun a b -> range_attr_ok a && stacked (R.above ?max_gap:None) a b))
      ~build:range_build ~hints:(h_stacked_above 0 1) ();
    prod "P-RangeSelCP-left" range_sel_cp [ attr; range_sel_body ]
      ~guard:(g2 (fun a b -> range_attr_ok a && attr_left a b))
      ~build:range_build ~hints:[ h_attr_left 0 1 ] ();
    prod "P-RangeSelCP-above" range_sel_cp [ attr; range_sel_body ]
      ~guard:
        (g2 (fun a b -> range_attr_ok a && stacked (R.above ?max_gap:None) a b))
      ~build:range_build ~hints:(h_stacked_above 0 1) () ]

let date_combo insts =
  Lexicon.plausible_date_combo (List.map enum_options insts)

let date_bodies =
  [ prod "P-DateBody-3" date_body [ sel_val; sel_val; sel_val ]
      ~guard:
        (g3 (fun a b c ->
             R.left ~max_gap:30 a b && R.left ~max_gap:30 b c
             && date_combo [ a; b; c ]))
      ~build:(fun _ -> Instance.S_domain Condition.Datetime)
      ~hints:[ H.left_of ~max_gap:30 0 1; H.left_of ~max_gap:30 1 2 ]
      ();
    prod "P-DateBody-2" date_body [ sel_val; sel_val ]
      ~guard:
        (g2 (fun a b -> R.left ~max_gap:30 a b && date_combo [ a; b ]))
      ~build:(fun _ -> Instance.S_domain Condition.Datetime)
      ~hints:[ H.left_of ~max_gap:30 0 1 ]
      () ]

let date_build =
  g2 (fun a _b -> cond ~attribute:(str_of a) Condition.Datetime)

let date_cps =
  [ prod "P-DateCP-left" date_cp [ attr; date_body ]
      ~guard:(g2 (fun a b -> attr_left a b))
      ~build:date_build ~hints:[ h_attr_left 0 1 ] ();
    prod "P-DateCP-above" date_cp [ attr; date_body ]
      ~guard:(g2 (fun a b -> stacked (R.above ?max_gap:None) a b))
      ~build:date_build ~hints:(h_stacked_above 0 1) () ]

let keyword_cps =
  [ prod "P-KeywordCP" keyword_cp [ value; action ]
      ~guard:(g2 (fun v a -> R.left ~max_gap:60 v a))
      ~build:(fun _ -> cond ~attribute:"" Condition.Text)
      ~hints:[ H.left_of ~max_gap:60 0 1 ]
      () ]

(* ------------------------------------------------------------------ *)
(* Assembly: CP, HQI, QI                                               *)
(* ------------------------------------------------------------------ *)

let lift_conditions (i : Instance.t) =
  match i.sem with
  | Instance.S_cond c -> Instance.S_conds [ c ]
  | Instance.S_conds cs -> Instance.S_conds cs
  | Instance.S_none | Instance.S_str _ | Instance.S_ops _
  | Instance.S_domain _ ->
    Instance.S_conds []

let cp_alternatives =
  [ text_val; text_op; select_cp; enum_rb; check_cp; cb_solo; range_cp;
    range_sel_cp; date_cp; keyword_cp; action; decor ]

let cp_productions =
  List.map
    (fun alt ->
       prod ("P-CP-" ^ Symbol.name alt) cp [ alt ]
         ~build:(g1 lift_conditions) ())
    cp_alternatives

let concat_conds (a : Instance.t) (b : Instance.t) =
  let conds_of (i : Instance.t) =
    match i.sem with Instance.S_conds cs -> cs | _ -> []
  in
  Instance.S_conds (conds_of a @ conds_of b)

let assembly =
  [ prod "P-HQI-base" hqi [ cp ] ~build:(g1 lift_conditions) ();
    prod "P-HQI-left" hqi [ hqi; cp ]
      ~guard:(g2 (fun row c -> R.left ~max_gap:150 row c))
      ~build:(g2 concat_conds) ~hints:[ H.left_of ~max_gap:150 0 1 ] ();
    prod "P-QI-base" qi [ hqi ] ~build:(g1 lift_conditions) ();
    prod "P-QI-above" qi [ qi; hqi ]
      ~guard:(g2 (fun q row -> R.above ~max_gap:120 q row))
      ~build:(g2 concat_conds) ~hints:[ H.above ~max_gap:120 0 1 ] () ]

let productions =
  atoms @ button_units @ lists @ op_productions @ text_vals @ text_ops
  @ select_cps @ enum_rbs @ check_cps @ bounds @ range_bodies @ range_cps
  @ date_bodies @ date_cps @ keyword_cps @ cp_productions @ assembly

(* ------------------------------------------------------------------ *)
(* Preferences                                                         *)
(* ------------------------------------------------------------------ *)

let cover_size (i : Instance.t) = Bitset.cardinal i.Instance.cover

(* The longer of two subsuming instances of the same symbol wins (the
   paper's R2, generalized).  Descendants of the winner are spared by the
   parser itself. *)
let subsume_pref sym =
  Preference.make
    ~name:("R-subsume-" ^ Symbol.name sym)
    ~winner:sym ~loser:sym
    ~conflict:(fun v1 v2 -> Instance.subsumes v1 v2)
    ~wins:(fun v1 v2 -> cover_size v1 > cover_size v2)
    ()

(* Winner type beats loser type whenever they compete for tokens. *)
let beats ~name winner loser = Preference.make ~name ~winner ~loser ()

(* Between two readings of the same pattern, the one whose attribute
   does not still carry a bound marker or a unit parsed the label
   correctly ("Price range" beats "Price range from"; "ZIP" beats
   "miles of ZIP"). *)
let attribute_of (i : Instance.t) =
  match i.sem with
  | Instance.S_cond c -> c.Condition.attribute
  | _ -> ""

let dirty_attribute label =
  Lexicon.split_bound_suffix label <> None
  || Lexicon.split_unit_prefix label <> None

let clean_range_attr sym =
  Preference.make
    ~name:("R-clean-attr-" ^ Symbol.name sym)
    ~winner:sym ~loser:sym
    ~wins:(fun v1 v2 ->
        (not (dirty_attribute (attribute_of v1)))
        && dirty_attribute (attribute_of v2))
    ()

(* For units (radio/checkbox + label), the tighter pairing wins. *)
let unit_distance (i : Instance.t) =
  match i.children with
  | [ box_child; label ] -> R.h_gap box_child label
  | _ -> max_int

let closest_unit sym =
  Preference.make
    ~name:("R-closest-" ^ Symbol.name sym)
    ~winner:sym ~loser:sym
    ~wins:(fun v1 v2 -> unit_distance v1 < unit_distance v2)
    ()

(* --- Association scoring -------------------------------------------
   When two condition patterns compete for an attribute label or a
   field, the tighter, more conventional association should win:
   a label binds to the field on its right before a field below it,
   and never across a larger gap when a closer pairing exists.  The
   score orders (relation class, gap, bounding area): left-of is the
   strongest convention, then above/below, then anything else; ties
   break toward the more compact interpretation. *)

let is_attr_sym (i : Instance.t) =
  Symbol.equal i.sym attr || Symbol.equal i.sym attr_bound
  || Symbol.equal i.sym attr_tail

let assoc_score (i : Instance.t) =
  match i.children with
  | a :: (_ :: _ as rest) when is_attr_sym a ->
    let field_box =
      Wqi_layout.Geometry.union_all
        (List.map (fun (c : Instance.t) -> c.box) rest)
    in
    let gap = Wqi_layout.Geometry.h_gap a.box field_box in
    let vgap = Wqi_layout.Geometry.v_gap a.box field_box in
    if Wqi_layout.Geometry.left_of ~max_gap:10_000 a.box field_box then
      (0, gap)
    else (1000, vgap)
  | _ ->
    (* Bare (attribute-less) patterns lose to any attributed reading. *)
    (3000, 0)

(* Between equally tight associations, keep the reading that explains
   more tokens (the longer list), then the more compact one. *)
let assoc_wins v1 v2 =
  let s1 = assoc_score v1 and s2 = assoc_score v2 in
  if s1 <> s2 then s1 < s2
  else
    let c1 = cover_size v1 and c2 = cover_size v2 in
    if c1 <> c2 then c1 > c2
    else R.width v1 * R.height v1 < R.width v2 * R.height v2

let assoc_pref winner loser =
  Preference.make
    ~name:
      (Fmt.str "R-assoc-%s-%s" (Symbol.name winner) (Symbol.name loser))
    ~winner ~loser ~wins:assoc_wins ()

(* Pattern-precedence pairs are arbitrated unconditionally, never by
   association score (an operator list under a textbox *is* the farther
   reading, yet the conventional one). *)
let precedence_pairs =
  [ (text_op, text_val); (text_op, enum_rb); (text_op, select_cp);
    (date_cp, select_cp); (range_cp, text_val); (range_cp, select_cp);
    (range_sel_cp, select_cp); (check_cp, cb_solo);
    (text_op, check_cp); (text_op, cb_solo);
    (text_val, keyword_cp); (select_cp, keyword_cp) ]

let attr_field_family =
  [ text_val; text_op; select_cp; enum_rb; check_cp; date_cp; range_cp;
    range_sel_cp ]

let assoc_prefs =
  List.concat_map
    (fun winner ->
       List.filter_map
         (fun loser ->
            let excluded =
              List.exists
                (fun (w, l) ->
                   (Symbol.equal w winner && Symbol.equal l loser)
                   || (Symbol.equal w loser && Symbol.equal l winner))
                precedence_pairs
            in
            if excluded then None else Some (assoc_pref winner loser))
         attr_field_family)
    attr_field_family

let preferences =
  (* R1 (paper): a unit binds its label more tightly than Attr does. *)
  [ beats ~name:"R1-RBU-Attr" rbu attr;
    beats ~name:"R1-CBU-Attr" cbu attr;
    closest_unit rbu;
    closest_unit cbu;
    (* R2 (paper): longer lists win. *)
    subsume_pref rb_list;
    subsume_pref cb_list ]
  (* Pattern precedence. *)
  @ List.map
      (fun (w, l) ->
         beats ~name:(Fmt.str "R-%s-%s" (Symbol.name w) (Symbol.name l)) w l)
      precedence_pairs
  (* Association-score arbitration across and within patterns. *)
  @ assoc_prefs
  (* Structural maximality. *)
  @ [ clean_range_attr range_cp;
      clean_range_attr range_sel_cp;
      clean_range_attr text_val;
      subsume_pref date_body;
      subsume_pref range_body;
      subsume_pref enum_rb;
      subsume_pref check_cp;
      subsume_pref hqi;
      subsume_pref qi ]

let grammar =
  G.Grammar.make ~terminals ~start ~productions ~preferences ()

(* Compile once at load: the pack (symbol interning, dispatch tables,
   arena pool) is immutable apart from its lock-free pool, so one shared
   copy serves every thread and domain. *)
let compiled =
  Wqi_parser.Engine.compile ~name:"std" ~version:"1" grammar
