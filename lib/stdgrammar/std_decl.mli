(** The standard grammar, expressed in the {!Wqi_grammar.Algebra}
    spatial-rule algebra — the declarative twin of {!Std}.

    {!Std} builds the paper's derived grammar out of OCaml closures;
    this module states the same productions and preferences as data.
    The equivalence suite proves the two parse the whole corpus
    byte-identically, which is what licenses shipping grammars as
    files: the algebra interpreter is exactly as trustworthy as the
    hand-written guards it replaces.  [examples/grammars/std.wqg] is
    {!Wqi_grammar.Loader.dump} of {!decl}, committed. *)

val env : Wqi_grammar.Algebra.env
(** The standard lexical environment: {!Lexicon} judgements under
    stable names — text classes [plausible-attribute], [bound-marker],
    [unit-word], [operator-phrase]; options class
    [all-operator-options]; splitters [bound-suffix], [unit-prefix];
    combo [date-combo].  Grammar files are resolved against these
    names. *)

val decl : Wqi_grammar.Algebra.grammar
(** The declarative standard grammar, name ["std"]. *)

val grammar : Wqi_grammar.Grammar.t
(** [decl] instantiated against {!env}.  Semantically interchangeable
    with {!Std.grammar} (proved corpus-wide by the equivalence
    suite). *)
