module A = Wqi_grammar.Algebra
module H = Wqi_grammar.Hint

let env =
  { A.text_classes =
      [ ("plausible-attribute", Lexicon.plausible_attribute);
        ("bound-marker", Lexicon.is_bound_marker);
        ("unit-word", Lexicon.is_unit_word);
        ("operator-phrase", Lexicon.is_operator_phrase) ];
    options_classes = [ ("all-operator-options", Lexicon.all_operator_options) ];
    splitters =
      [ ("bound-suffix", Lexicon.split_bound_suffix);
        ("unit-prefix", Lexicon.split_unit_prefix) ];
    combos = [ ("date-combo", Lexicon.plausible_date_combo) ] }

(* ------------------------------------------------------------------ *)
(* Shorthands                                                          *)
(* ------------------------------------------------------------------ *)

let p name head components ?(guard = A.P_true) ?(build = A.B_none) () =
  { A.p_name = name; p_head = head; p_components = components;
    p_guard = guard; p_build = build }

let left g a b = A.P_rel (H.Left_of g, a, b)
let above g a b = A.P_rel (H.Above g, a, b)
let below g a b = A.P_rel (H.Below g, a, b)
let left_aligned t a b = A.P_rel (H.Left_aligned t, a, b)

(* The label conventions of Std, with their gaps spelled out: label to
   the left of its field (columns sized by the longest sibling label,
   hence the wide gap), or stacked above it and left-aligned. *)
let attr_left a b = left 150 a b
let stacked_above a b = A.P_and [ above 40 a b; left_aligned 25 a b ]

let unit_gap = 30

let cond ?operators ~attribute domain = A.B_cond (operators, attribute, domain)

(* ------------------------------------------------------------------ *)
(* Productions (same order as Std — instance ids depend on it)         *)
(* ------------------------------------------------------------------ *)

let atoms =
  [ p "P-Attr" "Attr" [ "text" ]
      ~guard:(A.P_text_is ("plausible-attribute", A.Token_text, 0))
      ~build:(A.B_str (A.S_token_text 0))
      ();
    p "P-Val" "Val" [ "textbox" ] ~build:(A.B_domain A.D_text) ();
    p "P-SelVal" "SelVal" [ "selection" ]
      ~build:(A.B_domain (A.D_enum (A.O_token_options 0)))
      ();
    p "P-OpSel" "OpSel" [ "selection" ]
      ~guard:(A.P_options_class ("all-operator-options", 0))
      ~build:(A.B_ops (A.O_token_options 0))
      ();
    p "P-AttrBound" "AttrBound" [ "text" ]
      ~guard:(A.P_split_applies ("bound-suffix", 0))
      ~build:(A.B_split_str ("bound-suffix", `First, 0))
      ();
    p "P-AttrTail" "AttrTail" [ "text" ]
      ~guard:(A.P_split_applies ("unit-prefix", 0))
      ~build:(A.B_split_str ("unit-prefix", `Second, 0))
      ();
    p "P-BoundWord" "BoundWord" [ "text" ]
      ~guard:(A.P_text_is ("bound-marker", A.Token_text, 0))
      ~build:(A.B_str (A.S_token_text 0))
      ();
    p "P-UnitWord" "UnitWord" [ "text" ]
      ~guard:(A.P_text_is ("unit-word", A.Token_text, 0))
      ();
    p "P-Action" "Action" [ "button" ] ();
    p "P-Decor" "Decor" [ "image" ] () ]

let button_units =
  [ p "P-RBU" "RBU" [ "radio"; "text" ]
      ~guard:(left unit_gap 0 1)
      ~build:(A.B_str (A.S_token_text 1))
      ();
    p "P-CBU" "CBU" [ "checkbox"; "text" ]
      ~guard:(left unit_gap 0 1)
      ~build:(A.B_str (A.S_token_text 1))
      () ]

let list_of_units name list_sym unit_sym =
  [ p (name ^ "-base") list_sym [ unit_sym ]
      ~build:(A.B_ops (A.O_singleton 0))
      ();
    p (name ^ "-h") list_sym [ list_sym; unit_sym ]
      ~guard:(left 90 0 1)
      ~build:(A.B_ops (A.O_append (0, 1)))
      ();
    p (name ^ "-v") list_sym [ list_sym; unit_sym ]
      ~guard:(A.P_and [ above 20 0 1; left_aligned 10 0 1 ])
      ~build:(A.B_ops (A.O_append (0, 1)))
      () ]

let lists =
  list_of_units "P-RBList" "RBList" "RBU"
  @ list_of_units "P-CBList" "CBList" "CBU"

let op_productions =
  [ p "P-Op-RB" "Op" [ "RBList" ]
      ~guard:(A.P_ops_exists ("operator-phrase", 0))
      ~build:(A.B_ops (A.O_sem_ops 0))
      ();
    p "P-Op-Sel" "Op" [ "OpSel" ] ~build:(A.B_ops (A.O_sem_ops 0)) ();
    p "P-Op-CB" "Op" [ "CBList" ]
      ~guard:(A.P_ops_forall ("operator-phrase", 0))
      ~build:(A.B_ops (A.O_sem_ops 0))
      () ]

let text_val_build = cond ~attribute:(A.S_sem_str 0) A.D_text

let text_vals =
  [ p "P-TextVal-left" "TextVal" [ "Attr"; "Val" ]
      ~guard:(attr_left 0 1) ~build:text_val_build ();
    p "P-TextVal-above" "TextVal" [ "Attr"; "Val" ]
      ~guard:(stacked_above 0 1) ~build:text_val_build ();
    p "P-TextVal-below" "TextVal" [ "Attr"; "Val" ]
      ~guard:(A.P_and [ below 14 0 1; left_aligned 25 0 1 ])
      ~build:text_val_build ();
    p "P-TextVal-tail" "TextVal" [ "AttrTail"; "Val" ]
      ~guard:(left 60 0 1) ~build:text_val_build ();
    p "P-TextVal-unit" "TextVal" [ "Attr"; "Val"; "UnitWord" ]
      ~guard:(A.P_and [ attr_left 0 1; left 30 1 2 ])
      ~build:text_val_build () ]

let text_op_build =
  cond ~operators:(A.O_sem_ops 2) ~attribute:(A.S_sem_str 0) A.D_text

let text_op_build_op_mid =
  cond ~operators:(A.O_sem_ops 1) ~attribute:(A.S_sem_str 0) A.D_text

let text_ops =
  [ p "P-TextOp-below" "TextOp" [ "Attr"; "Val"; "Op" ]
      ~guard:(A.P_and [ attr_left 0 1; above 24 1 2 ])
      ~build:text_op_build ();
    p "P-TextOp-right" "TextOp" [ "Attr"; "Val"; "Op" ]
      ~guard:(A.P_and [ attr_left 0 1; left 90 1 2 ])
      ~build:text_op_build ();
    p "P-TextOp-opleft" "TextOp" [ "Attr"; "Op"; "Val" ]
      ~guard:(A.P_and [ attr_left 0 1; left 60 1 2 ])
      ~build:text_op_build_op_mid ();
    p "P-TextOp-attrabove" "TextOp" [ "Attr"; "Val"; "Op" ]
      ~guard:(A.P_and [ above 40 0 1; above 24 1 2 ])
      ~build:text_op_build () ]

let select_build = cond ~attribute:(A.S_sem_str 0) (A.D_of_slot 1)

let select_cps =
  [ p "P-SelectCP-left" "SelectCP" [ "Attr"; "SelVal" ]
      ~guard:(attr_left 0 1) ~build:select_build ();
    p "P-SelectCP-above" "SelectCP" [ "Attr"; "SelVal" ]
      ~guard:(stacked_above 0 1) ~build:select_build () ]

let enum_rb_build =
  cond ~attribute:(A.S_sem_str 0) (A.D_enum (A.O_sem_ops 1))

let enum_rbs =
  [ p "P-EnumRB-bare" "EnumRB" [ "RBList" ]
      ~guard:(A.P_ops_count_ge (2, 0))
      ~build:(cond ~attribute:(A.S_lit "") (A.D_enum (A.O_sem_ops 0)))
      ();
    p "P-EnumRB-left" "EnumRB" [ "Attr"; "RBList" ]
      ~guard:(attr_left 0 1) ~build:enum_rb_build ();
    p "P-EnumRB-above" "EnumRB" [ "Attr"; "RBList" ]
      ~guard:(stacked_above 0 1) ~build:enum_rb_build () ]

let check_cp_build =
  cond ~attribute:(A.S_sem_str 0) (A.D_enum (A.O_sem_ops 1))

let check_cps =
  [ p "P-CheckCP-bare" "CheckCP" [ "CBList" ]
      ~guard:(A.P_ops_count_ge (2, 0))
      ~build:(cond ~attribute:(A.S_lit "") (A.D_enum (A.O_sem_ops 0)))
      ();
    p "P-CheckCP-left" "CheckCP" [ "Attr"; "CBList" ]
      ~guard:(attr_left 0 1) ~build:check_cp_build ();
    p "P-CheckCP-above" "CheckCP" [ "Attr"; "CBList" ]
      ~guard:(stacked_above 0 1) ~build:check_cp_build ();
    p "P-CBSolo" "CBSolo" [ "CBU" ]
      ~build:
        (cond ~attribute:(A.S_sem_str 0) (A.D_enum (A.O_singleton 0)))
      () ]

let bounds =
  [ p "P-BoundVal" "BoundVal" [ "BoundWord"; "Val" ]
      ~guard:(left 40 0 1)
      ~build:(A.B_domain A.D_text)
      ();
    p "P-BoundSel" "BoundSel" [ "BoundWord"; "SelVal" ]
      ~guard:(left 40 0 1)
      ~build:(A.B_domain (A.D_of_slot 1))
      () ]

let range_bodies =
  [ p "P-RangeBody-h" "RangeBody" [ "BoundVal"; "BoundVal" ]
      ~guard:(left 120 0 1)
      ~build:(A.B_domain (A.D_range A.D_text))
      ();
    p "P-RangeBody-v" "RangeBody" [ "BoundVal"; "BoundVal" ]
      ~guard:(above 24 0 1)
      ~build:(A.B_domain (A.D_range A.D_text))
      ();
    p "P-RangeBody-valfirst" "RangeBody" [ "Val"; "BoundVal" ]
      ~guard:(left 60 0 1)
      ~build:(A.B_domain (A.D_range A.D_text))
      ();
    p "P-RangeSelBody-h" "RangeSelBody" [ "BoundSel"; "BoundSel" ]
      ~guard:(left 120 0 1)
      ~build:(A.B_domain (A.D_range (A.D_of_slot 0)))
      ();
    p "P-RangeSelBody-v" "RangeSelBody" [ "BoundSel"; "BoundSel" ]
      ~guard:(above 24 0 1)
      ~build:(A.B_domain (A.D_range (A.D_of_slot 0)))
      () ]

let range_build =
  cond ~operators:(A.O_lit [ "between" ]) ~attribute:(A.S_sem_str 0)
    (A.D_of_slot 1)

(* "From: [box] To: [box]" is two attributed conditions, not a range:
   a range pattern's attribute is never itself a bare bound marker. *)
let range_attr_ok a = A.P_not (A.P_text_is ("bound-marker", A.Sem_str, a))

let range_cps =
  [ p "P-RangeCP-combined" "RangeCP" [ "AttrBound"; "Val"; "BoundVal" ]
      ~guard:(A.P_and [ attr_left 0 1; left 60 1 2 ])
      ~build:
        (cond ~operators:(A.O_lit [ "between" ]) ~attribute:(A.S_sem_str 0)
           (A.D_range A.D_text))
      ();
    p "P-RangeSelCP-combined" "RangeSelCP" [ "AttrBound"; "SelVal"; "BoundSel" ]
      ~guard:(A.P_and [ attr_left 0 1; left 60 1 2 ])
      ~build:
        (cond ~operators:(A.O_lit [ "between" ]) ~attribute:(A.S_sem_str 0)
           (A.D_range (A.D_of_slot 1)))
      ();
    p "P-RangeCP-left" "RangeCP" [ "Attr"; "RangeBody" ]
      ~guard:(A.P_and [ range_attr_ok 0; attr_left 0 1 ])
      ~build:range_build ();
    p "P-RangeCP-above" "RangeCP" [ "Attr"; "RangeBody" ]
      ~guard:(A.P_and [ range_attr_ok 0; above 40 0 1; left_aligned 25 0 1 ])
      ~build:range_build ();
    p "P-RangeSelCP-left" "RangeSelCP" [ "Attr"; "RangeSelBody" ]
      ~guard:(A.P_and [ range_attr_ok 0; attr_left 0 1 ])
      ~build:range_build ();
    p "P-RangeSelCP-above" "RangeSelCP" [ "Attr"; "RangeSelBody" ]
      ~guard:(A.P_and [ range_attr_ok 0; above 40 0 1; left_aligned 25 0 1 ])
      ~build:range_build () ]

let date_bodies =
  [ p "P-DateBody-3" "DateBody" [ "SelVal"; "SelVal"; "SelVal" ]
      ~guard:
        (A.P_and
           [ left 30 0 1; left 30 1 2; A.P_combo ("date-combo", [ 0; 1; 2 ]) ])
      ~build:(A.B_domain A.D_datetime)
      ();
    p "P-DateBody-2" "DateBody" [ "SelVal"; "SelVal" ]
      ~guard:(A.P_and [ left 30 0 1; A.P_combo ("date-combo", [ 0; 1 ]) ])
      ~build:(A.B_domain A.D_datetime)
      () ]

let date_build = cond ~attribute:(A.S_sem_str 0) A.D_datetime

let date_cps =
  [ p "P-DateCP-left" "DateCP" [ "Attr"; "DateBody" ]
      ~guard:(attr_left 0 1) ~build:date_build ();
    p "P-DateCP-above" "DateCP" [ "Attr"; "DateBody" ]
      ~guard:(stacked_above 0 1) ~build:date_build () ]

let keyword_cps =
  [ p "P-KeywordCP" "KeywordCP" [ "Val"; "Action" ]
      ~guard:(left 60 0 1)
      ~build:(cond ~attribute:(A.S_lit "") A.D_text)
      () ]

let cp_alternatives =
  [ "TextVal"; "TextOp"; "SelectCP"; "EnumRB"; "CheckCP"; "CBSolo";
    "RangeCP"; "RangeSelCP"; "DateCP"; "KeywordCP"; "Action"; "Decor" ]

let cp_productions =
  List.map
    (fun alt -> p ("P-CP-" ^ alt) "CP" [ alt ] ~build:(A.B_lift 0) ())
    cp_alternatives

let assembly =
  [ p "P-HQI-base" "HQI" [ "CP" ] ~build:(A.B_lift 0) ();
    p "P-HQI-left" "HQI" [ "HQI"; "CP" ]
      ~guard:(left 150 0 1)
      ~build:(A.B_concat (0, 1))
      ();
    p "P-QI-base" "QI" [ "HQI" ] ~build:(A.B_lift 0) ();
    p "P-QI-above" "QI" [ "QI"; "HQI" ]
      ~guard:(above 120 0 1)
      ~build:(A.B_concat (0, 1))
      () ]

let productions =
  atoms @ button_units @ lists @ op_productions @ text_vals @ text_ops
  @ select_cps @ enum_rbs @ check_cps @ bounds @ range_bodies @ range_cps
  @ date_bodies @ date_cps @ keyword_cps @ cp_productions @ assembly

(* ------------------------------------------------------------------ *)
(* Preferences (same order as Std)                                     *)
(* ------------------------------------------------------------------ *)

let pref name winner loser kind =
  { A.r_name = name; r_winner = winner; r_loser = loser; r_kind = kind }

let beats ~name winner loser = pref name winner loser A.K_beats
let subsume_pref sym = pref ("R-subsume-" ^ sym) sym sym A.K_subsume
let closest_unit sym = pref ("R-closest-" ^ sym) sym sym A.K_closest_unit

let clean_range_attr sym =
  pref ("R-clean-attr-" ^ sym) sym sym
    (A.K_clean_attr [ "bound-suffix"; "unit-prefix" ])

let attr_symbols = [ "Attr"; "AttrBound"; "AttrTail" ]

let assoc_pref winner loser =
  pref
    (Printf.sprintf "R-assoc-%s-%s" winner loser)
    winner loser (A.K_assoc attr_symbols)

let precedence_pairs =
  [ ("TextOp", "TextVal"); ("TextOp", "EnumRB"); ("TextOp", "SelectCP");
    ("DateCP", "SelectCP"); ("RangeCP", "TextVal"); ("RangeCP", "SelectCP");
    ("RangeSelCP", "SelectCP"); ("CheckCP", "CBSolo");
    ("TextOp", "CheckCP"); ("TextOp", "CBSolo");
    ("TextVal", "KeywordCP"); ("SelectCP", "KeywordCP") ]

let attr_field_family =
  [ "TextVal"; "TextOp"; "SelectCP"; "EnumRB"; "CheckCP"; "DateCP";
    "RangeCP"; "RangeSelCP" ]

let assoc_prefs =
  List.concat_map
    (fun winner ->
       List.filter_map
         (fun loser ->
            let excluded =
              List.exists
                (fun (w, l) ->
                   (w = winner && l = loser) || (w = loser && l = winner))
                precedence_pairs
            in
            if excluded then None else Some (assoc_pref winner loser))
         attr_field_family)
    attr_field_family

let preferences =
  [ beats ~name:"R1-RBU-Attr" "RBU" "Attr";
    beats ~name:"R1-CBU-Attr" "CBU" "Attr";
    closest_unit "RBU";
    closest_unit "CBU";
    subsume_pref "RBList";
    subsume_pref "CBList" ]
  @ List.map
      (fun (w, l) -> beats ~name:(Printf.sprintf "R-%s-%s" w l) w l)
      precedence_pairs
  @ assoc_prefs
  @ [ clean_range_attr "RangeCP";
      clean_range_attr "RangeSelCP";
      clean_range_attr "TextVal";
      subsume_pref "DateBody";
      subsume_pref "RangeBody";
      subsume_pref "EnumRB";
      subsume_pref "CheckCP";
      subsume_pref "HQI";
      subsume_pref "QI" ]

let decl =
  { A.g_name = "std";
    g_version = "1";
    g_terminals =
      [ "text"; "textbox"; "selection"; "radio"; "checkbox"; "button";
        "image" ];
    g_start = "QI";
    g_productions = productions;
    g_preferences = preferences }

let grammar =
  match A.instantiate env decl with
  | Ok g -> g
  | Error msgs ->
    invalid_arg
      ("Std_decl: declarative std grammar failed to instantiate: "
       ^ String.concat "; " msgs)
