(** The derived global 2P grammar.

    The paper derives a single grammar from the 150-source Basic dataset
    (21 recurring condition patterns; 82 productions, 39 nonterminals, 16
    terminals) and shows it generalizes to new sources, new domains and
    random sources.  This module is our derivation of that grammar for
    the same pattern vocabulary.

    Nonterminal inventory (paper names kept where they exist):

    - atoms: [Attr], [Val], [SelVal], [OpSel], [BoundWord], [Action],
      [Decor]
    - radio/checkbox structure: [RBU], [RBList], [CBU], [CBList], [Op]
    - condition patterns: [TextVal], [TextOp], [SelectCP], [EnumRB],
      [CheckCP], [CBSolo], [RangeCP], [RangeSelCP], [DateCP],
      [KeywordCP]
    - assembly: [CP], [HQI], [QI] (start symbol)

    Preferences encode the precedence conventions of Section 4.2
    (R1: a radio/checkbox unit beats an attribute on a shared text
    token; R2: the longer of two subsuming lists wins; pattern-level
    precedence such as TextOp over TextVal; and closest-pairing for
    equal-type conflicts). *)

val grammar : Wqi_grammar.Grammar.t
(** The derived grammar; passes [Grammar.validate]. *)

val start : Wqi_grammar.Symbol.t
(** The start symbol [QI]. *)

val terminals : Wqi_grammar.Symbol.t list
(** The terminal symbols, one per token kind. *)

val compiled : Wqi_parser.Engine.compiled
(** [grammar] compiled once at module load — interned symbol tables,
    flat dispatch tables and a shared arena pool.  Every consumer of
    the standard grammar ([wqi_core]'s default config, the CLI, the
    server, benches) should parse through this pack rather than paying
    {!Wqi_parser.Engine.compile} per call site. *)
