let void_elements =
  [ "area"; "base"; "br"; "col"; "embed"; "hr"; "img"; "input"; "link";
    "meta"; "param"; "source"; "track"; "wbr" ]

let is_void name = List.mem name void_elements

(* For an incoming open tag [name], the set of currently-open element names
   it implicitly closes (checked innermost-first, repeatedly). *)
let implicitly_closes name open_name =
  match name with
  | "li" -> open_name = "li"
  | "option" -> open_name = "option"
  | "optgroup" -> open_name = "option" || open_name = "optgroup"
  | "td" | "th" -> open_name = "td" || open_name = "th"
  | "tr" -> open_name = "td" || open_name = "th" || open_name = "tr"
  | "thead" | "tbody" | "tfoot" ->
    List.mem open_name [ "td"; "th"; "tr"; "thead"; "tbody"; "tfoot" ]
  | "p" | "div" | "table" | "form" | "ul" | "ol" | "h1" | "h2" | "h3"
  | "h4" | "h5" | "h6" | "hr" | "pre" | "blockquote" ->
    open_name = "p"
  | _ -> false

(* Elements that stop the upward search when recovering from an unmatched
   close tag: we never close past these scoping boundaries. *)
let is_scope_boundary = function
  | "html" | "body" | "table" | "td" | "th" -> true
  | _ -> false

type frame = {
  f_name : string;
  f_attrs : (string * string) list;
  mutable f_children : Dom.t list; (* reversed *)
}

type builder = { mutable stack : frame list (* innermost first *) }

let new_frame name attrs = { f_name = name; f_attrs = attrs; f_children = [] }

let add_child b node =
  match b.stack with
  | top :: _ -> top.f_children <- node :: top.f_children
  | [] -> assert false

let pop b =
  match b.stack with
  | top :: rest ->
    b.stack <- rest;
    add_child b
      (Dom.Element (top.f_name, top.f_attrs, List.rev top.f_children))
  | [] -> assert false

let push b name attrs = b.stack <- new_frame name attrs :: b.stack

let rec close_implicit b name =
  match b.stack with
  | top :: _ :: _ when implicitly_closes name top.f_name ->
    pop b;
    close_implicit b name
  | _ -> ()

let handle_open b name attrs self_closing =
  match name with
  | "html" | "head" | "body" ->
    (* The skeleton is synthesized; ignore explicit skeleton tags but keep
       any attributes off (they do not matter for form extraction). *)
    ()
  | _ ->
    close_implicit b name;
    if is_void name || self_closing then
      add_child b (Dom.Element (name, attrs, []))
    else push b name attrs

let handle_close b name =
  if name = "br" then add_child b (Dom.Element ("br", [], []))
  else if is_void name || name = "html" || name = "head" || name = "body"
  then ()
  else begin
    (* Search for a matching open element without crossing a scope
       boundary; if absent, ignore the close tag. *)
    let rec find_depth depth = function
      | [] -> None
      | f :: _ when f.f_name = name -> Some depth
      | f :: _ when is_scope_boundary f.f_name -> None
      | _ :: rest -> find_depth (depth + 1) rest
    in
    match find_depth 0 b.stack with
    | None -> ()
    | Some depth ->
      for _ = 0 to depth do
        pop b
      done
  end

(* Text inside elements that only admit element children is dropped when it
   is pure whitespace, otherwise it is reparented conceptually; we keep it
   in place (the layout engine ignores inter-cell text anyway). *)
let handle_text b s = add_child b (Dom.Text s)

exception Out_of_budget

let build ?gauge tokens =
  let root = new_frame "#root" [] in
  let b = { stack = [ root ] } in
  (* Charge one budget unit per node-creating markup token.  A trip
     stops consuming input; whatever was built so far is closed up and
     returned — tree construction degrades, it never fails. *)
  let spend () =
    match gauge with
    | None -> ()
    | Some g -> if not (Wqi_budget.Budget.html_node g) then raise Out_of_budget
  in
  (try
     List.iter
       (fun tok ->
          match tok with
          | Lexer.Text s ->
            spend ();
            handle_text b s
          | Lexer.Open (name, attrs, self) ->
            spend ();
            handle_open b name attrs self
          | Lexer.Close name -> handle_close b name
          | Lexer.Comment c ->
            spend ();
            add_child b (Dom.Comment c)
          | Lexer.Doctype _ -> ())
       tokens
   with Out_of_budget -> ());
  while List.length b.stack > 1 do
    pop b
  done;
  List.rev root.f_children

let parse ?gauge ?trace html =
  let body_children = build ?gauge (Lexer.tokenize html) in
  let doc = Dom.element "html" [ Dom.element "body" body_children ] in
  (* Node counting walks the tree, so it runs only under a trace. *)
  (match trace with
   | None -> ()
   | Some _ ->
     Wqi_obs.Trace.instant trace ~cat:"stage"
       ~args:
         [ ("nodes", Wqi_obs.Trace.Int (Dom.fold (fun n _ -> n + 1) 0 doc));
           ("bytes", Wqi_obs.Trace.Int (String.length html)) ]
       "html.dom");
  doc

let parse_fragment ?gauge html = build ?gauge (Lexer.tokenize html)
