(** Tolerant HTML tree construction.

    Implements the subset of the HTML5 tree-building rules that matters for
    query forms: void elements, implicit closing of [li], [option], [p],
    table cells and rows, recovery from mismatched close tags, and an
    always-present [html]/[body] skeleton.  Parsing never fails. *)

val is_void : string -> bool
(** [is_void name] is true for void elements ([br], [img], [input], ...)
    which never carry children or close tags. *)

val parse :
  ?gauge:Wqi_budget.Budget.gauge -> ?trace:Wqi_obs.Trace.t -> string -> Dom.t
(** [parse html] parses the markup and returns the document root, an
    [Element ("html", ...)] node containing a [body].  Markup found
    outside [body] (for instance a bare [<form>] fragment) is placed
    inside the synthesized [body].

    [gauge] charges one budget unit per node-creating markup token
    (open tags, text runs, comments); when the node cap or the deadline
    trips, the rest of the input is ignored and the partial tree built
    so far is returned — parsing still never fails.

    [trace] records an [html.dom] instant carrying the node count and
    input size; tracing never changes the tree built. *)

val parse_fragment : ?gauge:Wqi_budget.Budget.gauge -> string -> Dom.t list
(** [parse_fragment html] parses the markup and returns the children of
    the resulting body, convenient for fragment round-trips in tests. *)
