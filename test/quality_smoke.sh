#!/usr/bin/env bash
# End-to-end smoke of the extraction-quality observability layer, run
# by `dune build @quality-smoke` (and dune runtest):
#
#   - wqi_corpus_gen writes a small deterministic corpus;
#   - wqi_crawl ingests it emitting quality.jsonl, and the summary
#     carries the rolled-up mean score and the store's orphaned bytes;
#   - wqi_report renders the threshold curves from the records alone,
#     and from the store directory without re-extraction;
#   - a second, identical crawl (all store hits) drifts against the
#     first with zero regressions — exit 0;
#   - a budget-starved crawl (--max-instances 40) degrades every
#     document, and drift flags it with a non-zero exit.
set -euo pipefail

corpus_gen=$1
crawl=$2
report=$3

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$corpus_gen" --gen 12 --out-dir "$work/docs" --seed 7 >/dev/null

# --- cold crawl: records + summary rollup --------------------------

"$crawl" "$work/docs" --store "$work/store" --jobs 2 \
  --quality-jsonl "$work/q1.jsonl" --summary-json "$work/crawl1.json" \
  2>/dev/null
# One record per unique document: aliases are answered by the dedup
# pre-pass and never reach extraction.
uniq=$(grep -o '"unique":[0-9]*' "$work/crawl1.json" | cut -d: -f2)
[ "$(wc -l <"$work/q1.jsonl")" -eq "$uniq" ]
grep -q '"wqi_quality_version":1,' "$work/q1.jsonl"
grep -q '"store_orphaned_bytes":0,' "$work/crawl1.json"
grep -q '"mean_score":' "$work/crawl1.json"

# --- report: from the records, and from the store alone ------------

"$report" "$work/q1.jsonl" >"$work/report1.txt"
grep -q 'score>=0.5' "$work/report1.txt"
grep -q 'mean score' "$work/report1.txt"

# The persisted headline fields must reproduce the rollup without the
# jsonl: mean scores from both sources agree.
"$report" "$work/store" --json "$work/rs.json" >/dev/null
"$report" "$work/q1.jsonl" --json "$work/rq.json" >/dev/null
mean_store=$(grep -o '"mean_score":[0-9.e-]*' "$work/rs.json" | head -1)
mean_jsonl=$(grep -o '"mean_score":[0-9.e-]*' "$work/rq.json" | head -1)
[ -n "$mean_store" ] && [ "$mean_store" = "$mean_jsonl" ]
echo "report ok: store rollup matches quality.jsonl"

# --- drift: identical warm crawl = zero regressions ----------------

"$crawl" "$work/docs" --store "$work/store" --jobs 2 \
  --quality-jsonl "$work/q2.jsonl" --summary-json "$work/crawl2.json" \
  2>/dev/null
grep -q '"extracted":0,' "$work/crawl2.json"
"$report" "$work/q2.jsonl" "$work/q1.jsonl" >"$work/drift_same.txt"
grep -q '^0 regressions' "$work/drift_same.txt"
echo "drift ok: warm re-crawl identical, exit 0"

# --- drift: budget-starved crawl must trip the gate ----------------

"$crawl" "$work/docs" --store "$work/store2" --jobs 2 --max-instances 40 \
  --quality-jsonl "$work/q3.jsonl" 2>/dev/null
rc=0
"$report" "$work/q3.jsonl" "$work/q1.jsonl" >"$work/drift_bad.txt" || rc=$?
[ "$rc" -eq 3 ]
grep -q 'REGRESSION' "$work/drift_bad.txt"
echo "drift ok: degraded run flagged, exit $rc"
