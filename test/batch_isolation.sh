#!/usr/bin/env bash
# Per-document failure isolation for wqi_batch: poisoning a batch
# directory with an unreadable "document" (a directory named *.html)
# must leave stdout byte-for-byte identical — the failure is reported
# on stderr and counted in the summary, and every healthy document's
# JSONL line is unchanged.
set -euo pipefail

batch=$1
fixtures=$2
extract=$3

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

mkdir "$work/docs"
cp "$fixtures"/*.html "$work/docs/"

# The fixture set includes wide_form.html, whose exhaustive uniform
# table is intractable ungoverned; the instance cap keeps the run fast
# AND deterministic (unlike a wall-clock deadline), so stdout is
# reproducible across the two invocations.
run() { "$batch" --jobs 4 --max-instances 2000 "$work/docs"; }

run >"$work/clean.jsonl" 2>"$work/clean.err"

# The poison sorts last so healthy documents keep their gather indices,
# but isolation must hold regardless of position: also poison the front.
mkdir "$work/docs/aaa_poison.html" "$work/docs/zzz_poison.html"

run >"$work/poisoned.jsonl" 2>"$work/poisoned.err"

cmp "$work/clean.jsonl" "$work/poisoned.jsonl"
grep -q '"status": "failed"' "$work/poisoned.err"
grep -q '2 failed' "$work/poisoned.err"

echo "batch isolation ok: stdout identical with poisoned documents"

# SIGPIPE hygiene: a downstream reader that exits early (| head) must
# not kill the producer — the CLI ignores SIGPIPE, treats the broken
# pipe as end-of-output, and exits 0 rather than dying with signal 13
# (exit 141).  Both producers below emit more than the 64 KiB Linux
# pipe buffer, so they are guaranteed to write into the closed pipe.

# wqi_extract: the wide-form token/tree dump is ~85 KiB.
set +e
"$extract" --max-instances 2000 --tokens --trees \
  "$work/docs/wide_form.html" 2>/dev/null | head -n 5 >/dev/null
estat=${PIPESTATUS[0]}
set -e
if [ "$estat" -ne 0 ]; then
  echo "wqi_extract | head: producer exited $estat (want 0)" >&2
  exit 1
fi

# wqi_batch: 80 copies of a small interface make ~80 KiB of JSONL.
mkdir "$work/many"
for i in $(seq -w 1 80); do
  cp "$fixtures/books.html" "$work/many/books_$i.html"
done
set +e
"$batch" --jobs 4 --max-instances 2000 "$work/many" 2>/dev/null \
  | head -n 1 >/dev/null
bstat=${PIPESTATUS[0]}
set -e
if [ "$bstat" -ne 0 ]; then
  echo "wqi_batch | head: producer exited $bstat (want 0)" >&2
  exit 1
fi

echo "sigpipe hygiene ok: producers exit 0 into an early-closing reader"
