#!/usr/bin/env bash
# Per-document failure isolation for wqi_batch: poisoning a batch
# directory with an unreadable "document" (a directory named *.html)
# must leave stdout byte-for-byte identical — the failure is reported
# on stderr and counted in the summary, and every healthy document's
# JSONL line is unchanged.
set -euo pipefail

batch=$1
fixtures=$2

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

mkdir "$work/docs"
cp "$fixtures"/*.html "$work/docs/"

# The fixture set includes wide_form.html, whose exhaustive uniform
# table is intractable ungoverned; the instance cap keeps the run fast
# AND deterministic (unlike a wall-clock deadline), so stdout is
# reproducible across the two invocations.
run() { "$batch" --jobs 4 --max-instances 2000 "$work/docs"; }

run >"$work/clean.jsonl" 2>"$work/clean.err"

# The poison sorts last so healthy documents keep their gather indices,
# but isolation must hold regardless of position: also poison the front.
mkdir "$work/docs/aaa_poison.html" "$work/docs/zzz_poison.html"

run >"$work/poisoned.jsonl" 2>"$work/poisoned.err"

cmp "$work/clean.jsonl" "$work/poisoned.jsonl"
grep -q '"status": "failed"' "$work/poisoned.err"
grep -q '2 failed' "$work/poisoned.err"

echo "batch isolation ok: stdout identical with poisoned documents"
