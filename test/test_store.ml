(* The persistent extraction store (lib/store): keys must stay
   byte-compatible with the serve cache's, a reopened store must see
   exactly what was put (including after a torn manifest tail or a
   corrupted value — as misses, never wrong answers), concurrent Pool
   writers must not lose entries, and a stored value must be
   byte-identical to a fresh extraction. *)

module Store = Wqi_store.Store
module Key = Wqi_store.Key
module Signature = Wqi_store.Signature
module Cache = Wqi_serve.Cache
module Extractor = Wqi_core.Extractor
module Generator = Wqi_corpus.Generator
module Pool = Wqi_parallel.Pool

let temp_dir () =
  let d = Filename.temp_file "wqi_store" "" in
  Sys.remove d;
  d

let meta =
  { Store.source = "doc.html"; grammar = "std@1"; outcome = "complete";
    domain = ""; quality = None }

let key_of i = Key.make ~html:(Printf.sprintf "<form>doc %d</form>" i) ~spec:"s"

(* --- keying ------------------------------------------------------- *)

(* The FNV-1a/64 chain is pinned by constant: a silent change to the
   hash would orphan every existing store directory and cache entry. *)
let test_fnv_pinned () =
  Alcotest.(check string) "offset basis" "cbf29ce484222325"
    (Key.to_hex (Key.fingerprint ""));
  Alcotest.(check string) "fnv1a(a)" "af63dc4c8601ec8c"
    (Key.to_hex (Key.fingerprint "a"));
  Alcotest.(check string) "fold = fingerprint"
    (Key.to_hex (Key.fingerprint "ab"))
    (Key.to_hex (Key.fold (Key.fingerprint "a") "b"))

(* The serve cache delegates its keying to Key; cross-check that both
   paths produce identical keys, so a store written by wqi_batch is
   probeable with keys computed by wqi_serve. *)
let test_cache_key_identity () =
  List.iter
    (fun (html, spec) ->
       let a = Cache.key ~html ~spec and b = Key.make ~html ~spec in
       Alcotest.(check bool) "cache key = store key" true (Key.equal a b))
    [ ("<form>a</form>", "v2|name=x|budget=");
      ("  <FORM>\r\nA</FORM>  ", "v2|name=x|budget=");
      ("", "");
      (String.make 4096 'z', "v2|grammar=std@1|name=y|budget={}") ]

let test_spec_distinguishes () =
  let html = "<form><input name=q></form>" in
  let b = Wqi_budget.Budget.unlimited in
  let k v =
    Key.make ~html
      ~spec:(Key.spec ~grammar_name:"std" ~grammar_version:v ~name:"d" b)
  in
  (* A grammar version bump changes every key: present results read as
     misses and the documents re-extract under the new grammar. *)
  Alcotest.(check bool) "version bump changes key" false
    (Key.equal (k "1") (k "2"));
  Alcotest.(check bool) "same version, same key" true
    (Key.equal (k "1") (k "1"))

(* --- store lifecycle ---------------------------------------------- *)

let test_put_find_roundtrip () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  let k = key_of 1 in
  Alcotest.(check bool) "absent before put" false (Store.mem st k);
  Store.put st k ~meta "value-bytes";
  Alcotest.(check (option string)) "find" (Some "value-bytes")
    (Store.find st k);
  (match Store.meta st k with
   | None -> Alcotest.fail "meta absent"
   | Some m ->
     Alcotest.(check string) "meta source" "doc.html" m.Store.source);
  Alcotest.(check (option string)) "other key misses" None
    (Store.find st (key_of 2));
  let s = Store.stats st in
  Alcotest.(check int) "entries" 1 s.Store.entries;
  Alcotest.(check int) "puts" 1 s.Store.puts;
  Alcotest.(check int) "hits" 1 s.Store.hits;
  Store.close st

let test_reopen_replay () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  for i = 0 to 19 do
    Store.put st (key_of i) ~meta (Printf.sprintf "value %d" i)
  done;
  (* Overwrite one key: the replay must keep the latest value. *)
  Store.put st (key_of 7) ~meta "value 7 revised";
  Store.close st;
  let st = Store.open_ dir in
  let s = Store.stats st in
  Alcotest.(check int) "entries after reopen" 20 s.Store.entries;
  Alcotest.(check int) "dropped" 0 s.Store.dropped;
  for i = 0 to 19 do
    let expect = if i = 7 then "value 7 revised" else Printf.sprintf "value %d" i in
    Alcotest.(check (option string)) "value survives reopen" (Some expect)
      (Store.find st (key_of i))
  done;
  Alcotest.(check bool) "source known" true (Store.source_known st "doc.html");
  Store.close st

(* Appends after a reopen must land at (and record) the real end of a
   non-empty segment: with one segment, every put after the first
   reopen extends a file that already has bytes, so a recorded offset
   of 0 (the append-mode [pos_out] trap) would corrupt the first
   entry and make the new one unreadable. *)
let test_append_after_reopen () =
  let dir = temp_dir () in
  let st = Store.open_ ~segments:1 dir in
  Store.put st (key_of 0) ~meta "first value";
  Store.close st;
  let st = Store.open_ dir in
  Store.put st (key_of 1) ~meta "second value";
  Alcotest.(check (option string)) "new put readable in-session"
    (Some "second value") (Store.find st (key_of 1));
  Store.close st;
  let st = Store.open_ dir in
  Alcotest.(check (option string)) "old value intact" (Some "first value")
    (Store.find st (key_of 0));
  Alcotest.(check (option string)) "new value survives reopen"
    (Some "second value")
    (Store.find st (key_of 1));
  Alcotest.(check int) "no corruption" 0 (Store.stats st).Store.corrupt;
  Store.close st

(* A writer killed mid-append leaves a torn final manifest line; the
   reopen must drop it (a miss, re-extracted on resume) and keep every
   complete line before it. *)
let test_torn_manifest_tail () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  for i = 0 to 9 do
    Store.put st (key_of i) ~meta (Printf.sprintf "value %d" i)
  done;
  Store.close st;
  let manifest = Filename.concat dir "manifest.jsonl" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 manifest in
  output_string oc "{\"k\":\"00deadbeef";  (* no closing quote, no newline *)
  close_out oc;
  let st = Store.open_ dir in
  let s = Store.stats st in
  Alcotest.(check int) "complete lines kept" 10 s.Store.entries;
  Alcotest.(check int) "torn tail dropped" 1 s.Store.dropped;
  (* The store must still accept puts after recovery. *)
  Store.put st (key_of 99) ~meta "post-recovery";
  Alcotest.(check (option string)) "post-recovery put" (Some "post-recovery")
    (Store.find st (key_of 99));
  Store.close st;
  let st = Store.open_ dir in
  Alcotest.(check int) "clean after recompaction" 0 (Store.stats st).Store.dropped;
  Alcotest.(check int) "all entries" 11 (Store.stats st).Store.entries;
  Store.close st

(* Bit rot (or a partial value append from a crash that never reached
   the manifest flush) must never surface as a wrong answer: a CRC
   failure reads as a miss and drops the entry. *)
let test_corrupt_value_is_a_miss () =
  let dir = temp_dir () in
  let st = Store.open_ ~segments:1 dir in
  Store.put st (key_of 1) ~meta "precious bytes";
  Store.close st;
  let seg = Filename.concat (Filename.concat dir "segments") "seg-000.dat" in
  let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd;
  let st = Store.open_ dir in
  Alcotest.(check bool) "indexed at replay" true (Store.mem st (key_of 1));
  Alcotest.(check (option string)) "corrupt value misses" None
    (Store.find st (key_of 1));
  Alcotest.(check int) "corruption counted" 1 (Store.stats st).Store.corrupt;
  Alcotest.(check bool) "entry dropped" false (Store.mem st (key_of 1));
  Store.close st

let test_concurrent_writers () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  let n = 200 in
  let results =
    Pool.run ~jobs:4 (fun pool ->
        Pool.map_array pool
          (fun i ->
            Store.put st (key_of i) ~meta (Printf.sprintf "value %d" i);
            Store.find st (key_of i) <> None)
          (Array.init n (fun i -> i)))
  in
  Array.iteri
    (fun i ok ->
       if not ok then Alcotest.failf "writer %d: own put not visible" i)
    results;
  Store.close st;
  let st = Store.open_ dir in
  Alcotest.(check int) "all entries survive" n (Store.stats st).Store.entries;
  for i = 0 to n - 1 do
    Alcotest.(check (option string)) "value intact"
      (Some (Printf.sprintf "value %d" i))
      (Store.find st (key_of i))
  done;
  Store.close st

(* The store-level guarantee mirroring the cache suite's: over 60
   corpus interfaces, a value read back — across a close/reopen — is
   byte-identical to extracting the same markup again. *)
let test_stored_is_fresh () =
  let g = Wqi_corpus.Prng.create 0x5704EL in
  let domains = Wqi_corpus.Vocabulary.core_three in
  let sources =
    List.init 60 (fun i ->
        Generator.generate g
          ~id:(Printf.sprintf "store-%02d" i)
          ~domain:(List.nth domains (i mod 3))
          ~complexity:(if i mod 2 = 0 then `Simple else `Rich)
          ~oog_prob:0.05 ())
  in
  let fresh (s : Generator.source) =
    Extractor.export ~timings:false ~name:s.id
      (Extractor.run Extractor.Config.default (Extractor.Html s.html))
  in
  let key (s : Generator.source) = Key.make ~html:s.html ~spec:s.id in
  let dir = temp_dir () in
  let st = Store.open_ dir in
  List.iter (fun s -> Store.put st (key s) ~meta (fresh s)) sources;
  Store.close st;
  let st = Store.open_ dir in
  List.iter
    (fun (s : Generator.source) ->
       match Store.find st (key s) with
       | None -> Alcotest.failf "%s: miss after reopen" s.id
       | Some stored ->
         Alcotest.(check string) (s.id ^ ": stored = fresh") (fresh s) stored)
    sources;
  Store.close st

let test_closed_store_raises () =
  let dir = temp_dir () in
  let st = Store.open_ dir in
  Store.put st (key_of 1) ~meta "v";
  Store.close st;
  Store.close st;  (* idempotent *)
  (match Store.find st (key_of 1) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "find on closed store must raise");
  ignore (Store.stats st)  (* stats stays readable *)

(* --- structural signatures (crawl dedup) -------------------------- *)

let test_signature_whitespace_invariant () =
  let html =
    "<form action=\"/q\">\n  <label>Title</label>\n  <input name=\"t\">\n\
     </form>\n"
  in
  let reformatted =
    (* Doubled newlines, trailing blank line: the wqi_corpus_gen "ws"
       duplicate kind. *)
    String.concat "\n\n" (String.split_on_char '\n' html) ^ "\n"
  in
  let indented = "  " ^ String.concat "\n      " (String.split_on_char '\n' html) in
  Alcotest.(check string) "reformatting preserves signature"
    (Key.to_hex (Signature.structural html))
    (Key.to_hex (Signature.structural reformatted));
  Alcotest.(check string) "re-indentation preserves signature"
    (Key.to_hex (Signature.structural html))
    (Key.to_hex (Signature.structural indented))

let test_signature_structural_sensitivity () =
  let base = "<form><label>Title</label><input name=\"t\"></form>" in
  let differ what other =
    Alcotest.(check bool) what false
      (Signature.structural base = Signature.structural other)
  in
  differ "added field changes signature"
    "<form><label>Title</label><input name=\"t\"><input name=\"u\"></form>";
  differ "label text changes signature"
    "<form><label>Author</label><input name=\"t\"></form>";
  differ "attribute changes signature"
    "<form><label>Title</label><input name=\"t\" type=\"hidden\"></form>"

let test_signature_shape_vs_structural () =
  let a = "<form><label>Title</label><input name=\"t\"></form>" in
  let b = "<form><label>Author</label><input name=\"a\"></form>" in
  Alcotest.(check bool) "structural separates different text" false
    (Signature.structural a = Signature.structural b);
  Alcotest.(check string) "shape ignores text and attributes"
    (Key.to_hex (Signature.shape a))
    (Key.to_hex (Signature.shape b))

let suite =
  [ ("fnv-1a/64 constants pinned", `Quick, test_fnv_pinned);
    ("cache key = store key", `Quick, test_cache_key_identity);
    ("grammar version bump changes keys", `Quick, test_spec_distinguishes);
    ("put/find round-trip", `Quick, test_put_find_roundtrip);
    ("reopen replays the manifest", `Quick, test_reopen_replay);
    ("appends after reopen land at the real end", `Quick,
     test_append_after_reopen);
    ("torn manifest tail dropped, store usable", `Quick,
     test_torn_manifest_tail);
    ("corrupt value reads as a miss", `Quick, test_corrupt_value_is_a_miss);
    ("concurrent pool writers", `Quick, test_concurrent_writers);
    ("stored bytes = fresh extraction (60 sources)", `Quick,
     test_stored_is_fresh);
    ("closed store raises, close idempotent", `Quick,
     test_closed_store_raises);
    ("signature: whitespace-invariant", `Quick,
     test_signature_whitespace_invariant);
    ("signature: structure-sensitive", `Quick,
     test_signature_structural_sensitivity);
    ("signature: shape vs structural", `Quick,
     test_signature_shape_vs_structural) ]
