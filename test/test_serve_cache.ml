(* The extraction-result cache (lib/serve/cache.ml): a hit must be
   byte-identical to a fresh extraction, eviction must respect the byte
   bound in LRU order, and TTL expiry must be driven purely by the
   injected clock. *)

module Cache = Wqi_serve.Cache
module Extractor = Wqi_core.Extractor
module Generator = Wqi_corpus.Generator

let spec = "v2|name=test|budget="

let fresh_export html =
  Extractor.export ~timings:false ~name:"test"
    (Extractor.run Extractor.Config.default (Extractor.Html html))

(* The server-level guarantee, checked across 60 corpus interfaces: an
   answer served from cache is byte-identical to extracting the same
   markup again.  Simple and Rich complexities, all three core domains,
   the usual out-of-grammar noise. *)
let test_hit_is_fresh () =
  let g = Wqi_corpus.Prng.create 0x5E4EL in
  let domains = Wqi_corpus.Vocabulary.core_three in
  let sources =
    List.init 60 (fun i ->
        Generator.generate g
          ~id:(Printf.sprintf "cache-%02d" i)
          ~domain:(List.nth domains (i mod 3))
          ~complexity:(if i mod 2 = 0 then `Simple else `Rich)
          ~oog_prob:0.05 ())
  in
  let cache = Cache.create Cache.default_config in
  List.iter
    (fun (s : Generator.source) ->
       let k = Cache.key ~html:s.html ~spec in
       (match Cache.find cache k with
        | Some _ -> Alcotest.failf "%s: hit before insertion" s.id
        | None -> ());
       Cache.add cache k (fresh_export s.html))
    sources;
  List.iter
    (fun (s : Generator.source) ->
       let k = Cache.key ~html:s.html ~spec in
       match Cache.find cache k with
       | None -> Alcotest.failf "%s: miss after insertion" s.id
       | Some cached ->
         Alcotest.(check string)
           (s.id ^ ": cached = fresh") (fresh_export s.html) cached)
    sources;
  let st = Cache.stats cache in
  Alcotest.(check int) "hits" 60 st.Cache.hits;
  Alcotest.(check int) "misses" 60 st.Cache.misses;
  Alcotest.(check int) "insertions" 60 st.Cache.insertions;
  Alcotest.(check int) "evictions" 0 st.Cache.evictions

let key_of i = Cache.key ~html:(Printf.sprintf "<form>doc %d</form>" i) ~spec

(* Values of 136 bytes cost 200 with the 64-byte node overhead, so a
   1000-byte single-shard cache holds exactly five. *)
let value_of i = Printf.sprintf "%0135d\n" i

let test_eviction_lru () =
  let cache =
    Cache.create { Cache.max_bytes = 1000; ttl_s = 0.; shards = 1 }
  in
  for i = 0 to 9 do
    Cache.add cache (key_of i) (value_of i)
  done;
  let st = Cache.stats cache in
  Alcotest.(check int) "entries" 5 st.Cache.entries;
  Alcotest.(check int) "evictions" 5 st.Cache.evictions;
  if st.Cache.bytes > 1000 then
    Alcotest.failf "bytes %d over the 1000 bound" st.Cache.bytes;
  for i = 0 to 4 do
    match Cache.find cache (key_of i) with
    | Some _ -> Alcotest.failf "doc %d: oldest entries must be evicted" i
    | None -> ()
  done;
  for i = 5 to 9 do
    match Cache.find cache (key_of i) with
    | None -> Alcotest.failf "doc %d: newest entries must survive" i
    | Some v -> Alcotest.(check string) "value" (value_of i) v
  done;
  (* Touching an old entry protects it: re-find 5, insert one more, and
     the eviction victim must be 6 (now least recent), not 5. *)
  ignore (Cache.find cache (key_of 5));
  Cache.add cache (key_of 10) (value_of 10);
  (match Cache.find cache (key_of 5) with
   | None -> Alcotest.fail "doc 5 was touched, must survive the eviction"
   | Some _ -> ());
  match Cache.find cache (key_of 6) with
  | Some _ -> Alcotest.fail "doc 6 was least recent, must be evicted"
  | None -> ()

let test_oversized_value_skipped () =
  let cache =
    Cache.create { Cache.max_bytes = 100; ttl_s = 0.; shards = 1 }
  in
  Cache.add cache (key_of 0) (String.make 200 'x');
  (match Cache.find cache (key_of 0) with
   | Some _ -> Alcotest.fail "value larger than the cache must not be stored"
   | None -> ());
  Alcotest.(check int) "insertions" 0 (Cache.stats cache).Cache.insertions

let test_ttl_expiry () =
  let now = ref 0. in
  let cache =
    Cache.create
      ~clock:(fun () -> !now)
      { Cache.max_bytes = 10_000; ttl_s = 10.; shards = 1 }
  in
  Cache.add cache (key_of 0) "v";
  now := 5.;
  (match Cache.find cache (key_of 0) with
   | None -> Alcotest.fail "entry expired before its TTL"
   | Some v -> Alcotest.(check string) "value" "v" v);
  now := 15.;
  (match Cache.find cache (key_of 0) with
   | Some _ -> Alcotest.fail "entry must expire 10 s after insertion"
   | None -> ());
  let st = Cache.stats cache in
  Alcotest.(check int) "expirations" 1 st.Cache.expirations;
  Alcotest.(check int) "entries" 0 st.Cache.entries;
  Alcotest.(check int) "bytes" 0 st.Cache.bytes;
  (* Re-inserting restarts the clock. *)
  Cache.add cache (key_of 0) "v2";
  now := 20.;
  match Cache.find cache (key_of 0) with
  | None -> Alcotest.fail "re-inserted entry expired early"
  | Some v -> Alcotest.(check string) "value" "v2" v

let test_spec_distinguishes () =
  let cache = Cache.create Cache.default_config in
  let html = "<form>same markup</form>" in
  Cache.add cache (Cache.key ~html ~spec:"budget-a") "a";
  (match Cache.find cache (Cache.key ~html ~spec:"budget-b") with
   | Some _ -> Alcotest.fail "different budget spec must not hit"
   | None -> ());
  match Cache.find cache (Cache.key ~html ~spec:"budget-a") with
  | Some v -> Alcotest.(check string) "value" "a" v
  | None -> Alcotest.fail "same spec must hit"

let test_normalization () =
  (* Line-ending and outer-whitespace variants of the same markup share
     a key; interior whitespace still distinguishes. *)
  let base = Cache.key ~html:"<form>\nA\n</form>" ~spec in
  let crlf = Cache.key ~html:"<form>\r\nA\r\n</form>" ~spec in
  let padded = Cache.key ~html:"  <form>\nA\n</form>\n\n" ~spec in
  let interior = Cache.key ~html:"<form>\n A\n</form>" ~spec in
  if base <> crlf then Alcotest.fail "CRLF variant must share the key";
  if base <> padded then Alcotest.fail "padded variant must share the key";
  if base = interior then
    Alcotest.fail "interior whitespace must change the key"

(* --- single-flight --- *)

(* Leader/follower protocol, sequential view: the first begin_flight
   leads; once the leader publishes, followers arriving before the
   publish are fed the leader's result, and the table entry is gone
   afterwards (a later begin_flight leads again). *)
let test_single_flight_leader_then_lead_again () =
  let cache = Cache.create Cache.default_config in
  let k = key_of 0 in
  (match Cache.begin_flight cache k with
   | Cache.Leader -> ()
   | Cache.Follower _ -> Alcotest.fail "first begin_flight must lead");
  Cache.end_flight cache k (Some "payload");
  (* The flight is over: a new begin_flight must lead, not wait. *)
  (match Cache.begin_flight cache k with
   | Cache.Leader -> ()
   | Cache.Follower _ ->
     Alcotest.fail "begin_flight after end_flight must lead again");
  Cache.end_flight cache k None;
  Alcotest.(check int) "no coalesced followers" 0
    (Cache.stats cache).Cache.coalesced

(* Concurrent followers: park N threads on a key while the leader is
   in flight, publish, and require every follower to observe the
   leader's exact payload and be counted as coalesced. *)
let test_single_flight_followers_fed () =
  let cache = Cache.create Cache.default_config in
  let k = key_of 1 in
  (match Cache.begin_flight cache k with
   | Cache.Leader -> ()
   | Cache.Follower _ -> Alcotest.fail "leader expected");
  let n = 8 in
  let results = Array.make n None in
  let started = Atomic.make 0 in
  let followers =
    List.init n (fun i ->
        Thread.create
          (fun () ->
             Atomic.incr started;
             results.(i) <- Some (Cache.begin_flight cache k))
          ())
  in
  (* Wait until every follower thread is running (and so blocked in
     begin_flight, give or take the last few instructions). *)
  while Atomic.get started < n do
    Thread.yield ()
  done;
  Thread.delay 0.02;
  Cache.end_flight cache k (Some "leader-result");
  List.iter Thread.join followers;
  (* A thread that had not yet reached begin_flight when the leader
     published legitimately starts a NEW flight (and must end it); all
     the rest must have been fed the leader's exact payload. *)
  let fed = ref 0 in
  Array.iteri
    (fun i r ->
       match r with
       | Some (Cache.Follower (Some v)) ->
         incr fed;
         Alcotest.(check string)
           (Printf.sprintf "follower %d fed the leader's payload" i)
           "leader-result" v
       | Some Cache.Leader -> Cache.end_flight cache k None
       | Some (Cache.Follower None) ->
         Alcotest.failf "follower %d woke without a result" i
       | None -> Alcotest.failf "follower %d never returned" i)
    results;
  if !fed = 0 then Alcotest.fail "no follower was fed by the leader";
  Alcotest.(check int) "coalesced counter" !fed
    (Cache.stats cache).Cache.coalesced

(* A leader that fails publishes None: followers wake empty-handed (and
   are NOT counted as coalesced) so one of them can retry as leader. *)
let test_single_flight_failed_leader () =
  let cache = Cache.create Cache.default_config in
  let k = key_of 2 in
  (match Cache.begin_flight cache k with
   | Cache.Leader -> ()
   | Cache.Follower _ -> Alcotest.fail "leader expected");
  let woke = ref None in
  let follower =
    Thread.create (fun () -> woke := Some (Cache.begin_flight cache k)) ()
  in
  Thread.delay 0.02;
  Cache.end_flight cache k None;
  Thread.join follower;
  (match !woke with
   | Some (Cache.Follower None) -> ()
   | Some (Cache.Follower (Some _)) ->
     Alcotest.fail "failed flight must not deliver a result"
   | Some Cache.Leader ->
     (* Arrived after the failed publish: it leads a retry, as the
        server's retry loop would. *)
     Cache.end_flight cache k None
   | None -> Alcotest.fail "follower never returned");
  Alcotest.(check int) "failed flights do not coalesce" 0
    (Cache.stats cache).Cache.coalesced;
  (* And the key is free again. *)
  match Cache.begin_flight cache k with
  | Cache.Leader -> Cache.end_flight cache k None
  | Cache.Follower _ -> Alcotest.fail "key must be free after a failed flight"

let suite =
  [ ("hit is byte-identical to fresh (60 sources)", `Quick, test_hit_is_fresh);
    ("eviction under byte bound, LRU order", `Quick, test_eviction_lru);
    ("oversized value skipped", `Quick, test_oversized_value_skipped);
    ("ttl expiry via injected clock", `Quick, test_ttl_expiry);
    ("budget spec distinguishes keys", `Quick, test_spec_distinguishes);
    ("html normalization", `Quick, test_normalization);
    ("single-flight: flight ends, key leads again", `Quick,
     test_single_flight_leader_then_lead_again);
    ("single-flight: followers fed by the leader", `Quick,
     test_single_flight_followers_fed);
    ("single-flight: failed leader frees the key", `Quick,
     test_single_flight_failed_leader) ]
