#!/usr/bin/env bash
# End-to-end smoke of the persistent store across its three CLI fronts,
# run by `dune build @store-smoke` (and dune runtest):
#
#   - wqi_corpus_gen --gen writes a corpus with a ground-truth
#     ALIASES.json duplicate manifest;
#   - wqi_crawl ingests it twice: the first pass extracts exactly the
#     unique documents (signature dedup verified against the manifest),
#     the second answers every document from the store;
#   - wqi_batch --store runs twice over the same directory with
#     byte-identical stdout, the second run all store hits, and
#     re-extracts exactly the one document we then touch;
#   - a torn manifest tail (a crashed writer's final line) is dropped
#     on reopen and the store stays fully usable;
#   - a poisoned document fails in isolation and lands in --errors-json.
set -euo pipefail

corpus_gen=$1
crawl=$2
batch=$3

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# --- corpus with known duplicates ---------------------------------

"$corpus_gen" --gen 40 --out-dir "$work/docs" --seed 11 --dup-prob 0.3 \
  >/dev/null
dup_count=$(grep -c '"file":' "$work/docs/ALIASES.json" || true)
total=40
uniq=$((total - dup_count))

# --- crawl: dedup + resume ----------------------------------------

"$crawl" "$work/docs" --store "$work/store" --jobs 2 \
  --summary-json "$work/crawl1.json" 2>/dev/null
grep -q "\"discovered\":$total," "$work/crawl1.json"
grep -q "\"unique\":$uniq," "$work/crawl1.json"
grep -q "\"aliases\":$dup_count," "$work/crawl1.json"
grep -q "\"store_hits\":0," "$work/crawl1.json"
grep -q "\"extracted\":$uniq," "$work/crawl1.json"
grep -q '"failed":0,' "$work/crawl1.json"

"$crawl" "$work/docs" --store "$work/store" --jobs 2 \
  --summary-json "$work/crawl2.json" 2>/dev/null
grep -q "\"store_hits\":$uniq," "$work/crawl2.json"
grep -q '"extracted":0,' "$work/crawl2.json"
echo "crawl ok: $dup_count/$total deduped, resume all hits"

# --- batch --store: resumable, byte-identical ---------------------

"$batch" --jobs 2 --store "$work/bstore" "$work/docs" \
  >"$work/cold.jsonl" 2>"$work/cold.err"
grep -q "store: 0 hits, $total new, 0 re-extracted" "$work/cold.err"

"$batch" --jobs 2 --store "$work/bstore" "$work/docs" \
  >"$work/resumed.jsonl" 2>"$work/resumed.err"
grep -q "store: $total hits, 0 new, 0 re-extracted" "$work/resumed.err"
cmp "$work/cold.jsonl" "$work/resumed.jsonl"

# Touching one document's bytes re-extracts that document only.
printf '\n<!-- revised -->\n' >>"$work/docs/doc-00000.html"
"$batch" --jobs 2 --store "$work/bstore" "$work/docs" \
  >/dev/null 2>"$work/touched.err"
grep -q "store: $((total - 1)) hits, 0 new, 1 re-extracted" "$work/touched.err"
echo "batch ok: resumed byte-identical, 1 re-extract after touch"

# --- torn manifest tail -------------------------------------------

printf '{"k":"00dead' >>"$work/bstore/manifest.jsonl"
"$batch" --jobs 2 --store "$work/bstore" "$work/docs" \
  >"$work/torn.jsonl" 2>"$work/torn.err"
grep -q "store: $total hits, 0 new, 0 re-extracted" "$work/torn.err"
echo "torn tail ok: dropped on reopen, store usable"

# --- per-document failure isolation + --errors-json ---------------

mkdir "$work/docs/zzz_poison.html"
"$batch" --jobs 2 --store "$work/bstore" --errors-json "$work/errors.json" \
  "$work/docs" >"$work/poisoned.jsonl" 2>/dev/null
cmp "$work/torn.jsonl" "$work/poisoned.jsonl"
grep -q 'zzz_poison' "$work/errors.json"
grep -q '"outcome":"read-error"' "$work/errors.json"

rmdir "$work/docs/zzz_poison.html"
"$crawl" "$work/docs" --store "$work/store" --jobs 2 \
  --errors-json "$work/crawl_errors.json" 2>/dev/null
grep -q '^\[\]' "$work/crawl_errors.json"
echo "errors-json ok: poison isolated and reported"

echo "store smoke ok"
