(* End-to-end smoke of the wqi_serve daemon over real sockets, run by
   the @serve-smoke alias (and dune runtest):

     - /healthz liveness;
     - /extract: a Complete source, a Degraded (instance-capped)
       source, a cache hit byte-identical to its miss, a malformed
       request (400), and method/path errors (405/404);
     - /metrics exposition (request counters, histogram, pool gauges);
     - deterministic 503 load-shedding once max_inflight is reached;
     - SIGTERM graceful drain: the in-flight extraction completes and
       the process exits 0.

   usage: serve_smoke SERVER_EXE FIXTURES_DIR *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
       prerr_endline ("serve_smoke: FAIL: " ^ msg);
       exit 1)
    fmt

let note fmt = Printf.ksprintf (fun msg -> prerr_endline ("  " ^ msg)) fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* --- tiny HTTP/1.1 client, one connection per call --- *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let recv_all fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents b

let parse_response raw =
  match String.index_opt raw '\n' with
  | None -> fail "no status line in %S" raw
  | Some _ ->
    let headers_end =
      let rec find i =
        if i + 3 >= String.length raw then fail "no header terminator"
        else if String.sub raw i 4 = "\r\n\r\n" then i
        else find (i + 1)
      in
      find 0
    in
    let head = String.sub raw 0 headers_end in
    let body =
      String.sub raw (headers_end + 4) (String.length raw - headers_end - 4)
    in
    (match String.split_on_char '\r' head with
     | [] -> fail "empty response head"
     | status_line :: rest ->
       let status =
         match String.split_on_char ' ' status_line with
         | _ :: code :: _ -> (
             try int_of_string code with _ -> fail "bad status %s" status_line)
         | _ -> fail "bad status line %S" status_line
       in
       let headers =
         List.filter_map
           (fun line ->
              let line =
                if line <> "" && line.[0] = '\n' then
                  String.sub line 1 (String.length line - 1)
                else line
              in
              match String.index_opt line ':' with
              | None -> None
              | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1))
                  ))
           rest
       in
       { status; headers; body })

let request port ~meth ~target ?(headers = []) ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect fd
         (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
       let extra =
         String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
       in
       let req =
         Printf.sprintf
           "%s %s HTTP/1.1\r\nhost: smoke\r\nconnection: close\r\n%s\
            content-length: %d\r\n\r\n%s"
           meth target extra (String.length body) body
       in
       let sent = ref 0 in
       while !sent < String.length req do
         sent :=
           !sent
           + Unix.write_substring fd req !sent (String.length req - !sent)
       done;
       parse_response (recv_all fd))

let header r name = List.assoc_opt name r.headers

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let metric_value metrics name =
  (* First sample line starting with `name` followed by a space. *)
  String.split_on_char '\n' metrics
  |> List.find_map (fun line ->
      match String.split_on_char ' ' line with
      | [ n; v ] when n = name -> float_of_string_opt v
      | _ -> None)

(* --- server lifecycle --- *)

let spawn server_exe args =
  let r, w = Unix.pipe () in
  let argv = Array.of_list (server_exe :: args) in
  let pid = Unix.create_process server_exe argv Unix.stdin w Unix.stderr in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let banner = input_line ic in
  let port =
    match String.rindex_opt banner ':' with
    | None -> fail "unparseable banner %S" banner
    | Some i ->
      let rest = String.sub banner (i + 1) (String.length banner - i - 1) in
      (match String.split_on_char ' ' (String.trim rest) with
       | p :: _ -> (
           try int_of_string p with _ -> fail "unparseable banner %S" banner)
       | [] -> fail "unparseable banner %S" banner)
  in
  (pid, port, ic)

let () =
  (match Sys.argv with
   | [| _; _; _ |] -> ()
   | _ -> fail "usage: serve_smoke SERVER_EXE FIXTURES_DIR");
  let server_exe = Sys.argv.(1) and fixtures = Sys.argv.(2) in
  (* A hung server must fail the alias, not wedge CI. *)
  ignore (Unix.alarm 120);
  let books = read_file (Filename.concat fixtures "books.html") in
  let jobs_html = read_file (Filename.concat fixtures "jobs.html") in
  let wide = read_file (Filename.concat fixtures "wide_form.html") in
  (* --trace-sample is huge on purpose: only extract request #0 lands
     on the sampling grid, so exactly one request is trace-sampled and
     the rest exercise the untraced path. *)
  let pid, port, _banner_ic =
    spawn server_exe
      [ "--port"; "0"; "--jobs"; "2"; "--max-inflight"; "1";
        "--idle-timeout-s"; "2"; "--trace-dir"; "smoke-traces";
        "--trace-sample"; "1000000"; "--access-log"; "smoke-access.log";
        "--slow-ms"; "100000" ]
  in
  note "server pid %d on port %d" pid port;

  (* healthz *)
  let r = request port ~meth:"GET" ~target:"/healthz" () in
  if r.status <> 200 || r.body <> "ok\n" then
    fail "/healthz: %d %S" r.status r.body;
  note "healthz ok";

  (* complete extraction *)
  let r = request port ~meth:"POST" ~target:"/extract?name=books" ~body:books () in
  if r.status <> 200 then fail "/extract books: %d %s" r.status r.body;
  if header r "x-wqi-outcome" <> Some "complete" then
    fail "books outcome: %s" (Option.value ~default:"-" (header r "x-wqi-outcome"));
  if header r "x-wqi-cache" <> Some "miss" then
    fail "books first request must miss";
  if not (contains r.body "\"wqi_extraction_version\": 2") then
    fail "books body is not a v2 export: %s" r.body;
  let books_body = r.body in
  note "extract complete ok (%d bytes)" (String.length books_body);

  (* Request #0 landed on the --trace-sample grid: its trace id names a
     Chrome trace file in the trace dir. *)
  let trace_of r =
    match header r "x-wqi-trace-id" with
    | None -> fail "extract response without x-wqi-trace-id"
    | Some id -> Filename.concat "smoke-traces" (id ^ ".json")
  in
  let sampled_trace = trace_of r in
  if not (Sys.file_exists sampled_trace) then
    fail "sampled trace %s was not written" sampled_trace;
  let trace_body = read_file sampled_trace in
  if not (contains trace_body "\"traceEvents\"") then
    fail "sampled trace is not Chrome trace JSON: %s" trace_body;
  if not (contains trace_body "parser.round") then
    fail "sampled trace has no parser rounds";
  note "trace sampling ok (%s)" sampled_trace;

  (* On-demand tracing: x-wqi-trace: 1 on a cache miss. *)
  let r =
    request port ~meth:"POST" ~target:"/extract?name=jobs-traced"
      ~headers:[ ("x-wqi-trace", "1") ]
      ~body:jobs_html ()
  in
  if r.status <> 200 then fail "/extract jobs-traced: %d" r.status;
  let demand_trace = trace_of r in
  if not (Sys.file_exists demand_trace) then
    fail "on-demand trace %s was not written" demand_trace;
  if not (contains (read_file demand_trace) "\"traceEvents\"") then
    fail "on-demand trace is not Chrome trace JSON";
  note "on-demand tracing ok (%s)" demand_trace;

  (* cache hit, byte-identical *)
  let r = request port ~meth:"POST" ~target:"/extract?name=books" ~body:books () in
  if r.status <> 200 || header r "x-wqi-cache" <> Some "hit" then
    fail "books repeat must hit the cache (%d, %s)" r.status
      (Option.value ~default:"-" (header r "x-wqi-cache"));
  if r.body <> books_body then fail "cache hit is not byte-identical";
  note "cache hit ok";

  (* degraded extraction: the wide form under an instance cap *)
  let r =
    request port ~meth:"POST"
      ~target:"/extract?name=wide&max_instances=2000" ~body:wide ()
  in
  if r.status <> 200 then fail "/extract wide: %d" r.status;
  if header r "x-wqi-outcome" <> Some "degraded" then
    fail "wide outcome: %s" (Option.value ~default:"-" (header r "x-wqi-outcome"));
  if not (contains r.body "\"status\": \"degraded\"") then
    fail "wide body does not report degradation";
  note "extract degraded ok";

  (* malformed budget parameter *)
  let r =
    request port ~meth:"POST" ~target:"/extract?deadline_ms=abc" ~body:books ()
  in
  if r.status <> 400 then fail "malformed budget: %d (want 400)" r.status;
  note "malformed request 400 ok";

  (* method/path errors *)
  let r = request port ~meth:"GET" ~target:"/extract" () in
  if r.status <> 405 then fail "GET /extract: %d (want 405)" r.status;
  let r = request port ~meth:"GET" ~target:"/nope" () in
  if r.status <> 404 then fail "GET /nope: %d (want 404)" r.status;

  (* metrics exposition *)
  let r = request port ~meth:"GET" ~target:"/metrics" () in
  if r.status <> 200 then fail "/metrics: %d" r.status;
  List.iter
    (fun needle ->
       if not (contains r.body needle) then
         fail "/metrics missing %S in:\n%s" needle r.body)
    [ "wqi_requests_total{code=\"200\"}";
      "wqi_requests_total{code=\"400\"}";
      "wqi_extract_outcomes_total{outcome=\"complete\"}";
      "wqi_extract_outcomes_total{outcome=\"degraded\"}";
      "wqi_cache_answered_total 1";
      "wqi_request_seconds_bucket";
      "wqi_cache_hits_total";
      "wqi_pool_queue_depth";
      "wqi_pool_jobs 2";
      "wqi_pool_peak_inflight";
      "wqi_build_info{version=\"1.0.0\"} 1";
      "wqi_uptime_seconds";
      "wqi_stage_seconds_bucket{stage=\"parse\",le=\"+Inf\"}";
      "wqi_stage_seconds_count{stage=\"merge\"}" ];
  (match metric_value r.body "wqi_uptime_seconds" with
   | Some v when v >= 0. -> ()
   | _ -> fail "wqi_uptime_seconds not a non-negative sample");
  note "metrics ok";

  (* Deterministic 503: park a slow extraction (the wide form under a
     wall-clock deadline; ungoverned it runs for tens of seconds) in
     the single admission slot, wait until /metrics shows it admitted,
     then any cache-missing extraction must be shed. *)
  let slow_done = ref None in
  let slow =
    Thread.create
      (fun () ->
         slow_done :=
           Some
             (request port ~meth:"POST"
                ~target:"/extract?name=wide&deadline_ms=700" ~body:wide ()))
      ()
  in
  let rec await_inflight tries =
    if tries = 0 then fail "slow request never became in-flight";
    let m = request port ~meth:"GET" ~target:"/metrics" () in
    match metric_value m.body "wqi_inflight_requests" with
    | Some v when v >= 1. -> ()
    | _ ->
      Thread.delay 0.01;
      await_inflight (tries - 1)
  in
  await_inflight 200;
  let r = request port ~meth:"POST" ~target:"/extract?name=jobs" ~body:jobs_html () in
  if r.status <> 503 then fail "overload: %d (want 503)" r.status;
  if header r "retry-after" = None then fail "503 without retry-after";
  Thread.join slow;
  (match !slow_done with
   | Some { status = 200; _ } -> ()
   | Some r -> fail "slow request: %d (want 200)" r.status
   | None -> fail "slow request returned nothing");
  let m = request port ~meth:"GET" ~target:"/metrics" () in
  (match metric_value m.body "wqi_shed_total" with
   | Some v when v >= 1. -> ()
   | v ->
     fail "wqi_shed_total: %s (want >= 1)"
       (match v with Some f -> string_of_float f | None -> "absent"));
  note "deterministic 503 ok";

  (* Graceful drain: park another slow extraction (different deadline,
     so a different cache key), SIGTERM mid-flight, and require both a
     complete response and a clean exit. *)
  let drain_done = ref None in
  let drain =
    Thread.create
      (fun () ->
         drain_done :=
           Some
             (request port ~meth:"POST"
                ~target:"/extract?name=wide&deadline_ms=701" ~body:wide ()))
      ()
  in
  await_inflight 200;
  Unix.kill pid Sys.sigterm;
  Thread.join drain;
  (match !drain_done with
   | Some { status = 200; _ } -> ()
   | Some r -> fail "drained request: %d (want 200)" r.status
   | None -> fail "drained request returned nothing");
  (match Unix.waitpid [] pid with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED c -> fail "server exited %d (want 0)" c
   | _, Unix.WSIGNALED s -> fail "server killed by signal %d" s
   | _, Unix.WSTOPPED s -> fail "server stopped by signal %d" s);
  note "graceful drain ok (exit 0)";

  (* Structured access log: flushed per line, so complete after exit. *)
  let log = read_file "smoke-access.log" in
  List.iter
    (fun needle ->
       if not (contains log needle) then
         fail "access log missing %S in:\n%s" needle log)
    [ "\"method\":\"POST\"";
      "\"path\":\"/extract\"";
      "\"path\":\"/healthz\"";
      "\"status\":200";
      "\"status\":503";
      "\"cache\":\"hit\"";
      "\"cache\":\"miss\"";
      "\"cache\":\"shed\"";
      "\"outcome\":\"complete\"";
      "\"outcome\":\"degraded\"";
      "\"ts\":\"";
      "\"id\":\"" ];
  note "access log ok (%d bytes)" (String.length log);
  print_endline "serve smoke ok"
