(* End-to-end smoke of the wqi_serve daemon over real sockets, run by
   the @serve-smoke alias (and dune runtest):

     - /healthz liveness;
     - /extract under --jobs 4 (shared-nothing, one accept loop and
       cache shard per domain): a Complete source, a Degraded
       (instance-capped) source, a cache hit byte-identical to its miss
       on the same keep-alive connection (connection affinity pins both
       requests to one domain's shard), a malformed request (400), and
       method/path errors (405/404);
     - /metrics merge-on-scrape exposition (request counters, latency
       histogram, per-domain request split, accept-mode info);
     - deterministic 503 load-shedding once the global max_inflight is
       reached, from any domain;
     - SIGTERM graceful drain across all domains: the in-flight
       extraction completes and the process exits 0;
     - single-flight, against a --jobs 1 --accept dispatch server:
       concurrent identical cold misses run exactly one extraction;
     - the grammar registry, against the same server started with
       --grammar-dir: per-request ?grammar= selection (x-wqi-grammar
       echoes the choice), per-grammar cache keying (same HTML under
       two grammars misses twice; the default and ?grammar=std share
       one key), deterministic 404 for unknown names listing the
       available grammars, wqi_grammar_info rows and the
       grammar-labelled wqi_requests_total split in /metrics.

   usage: serve_smoke SERVER_EXE FIXTURES_DIR GRAMMARS_DIR *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
       prerr_endline ("serve_smoke: FAIL: " ^ msg);
       exit 1)
    fmt

let note fmt = Printf.ksprintf (fun msg -> prerr_endline ("  " ^ msg)) fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* --- tiny HTTP/1.1 client, one connection per call --- *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let recv_all fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents b

let parse_response raw =
  match String.index_opt raw '\n' with
  | None -> fail "no status line in %S" raw
  | Some _ ->
    let headers_end =
      let rec find i =
        if i + 3 >= String.length raw then fail "no header terminator"
        else if String.sub raw i 4 = "\r\n\r\n" then i
        else find (i + 1)
      in
      find 0
    in
    let head = String.sub raw 0 headers_end in
    let body =
      String.sub raw (headers_end + 4) (String.length raw - headers_end - 4)
    in
    (match String.split_on_char '\r' head with
     | [] -> fail "empty response head"
     | status_line :: rest ->
       let status =
         match String.split_on_char ' ' status_line with
         | _ :: code :: _ -> (
             try int_of_string code with _ -> fail "bad status %s" status_line)
         | _ -> fail "bad status line %S" status_line
       in
       let headers =
         List.filter_map
           (fun line ->
              let line =
                if line <> "" && line.[0] = '\n' then
                  String.sub line 1 (String.length line - 1)
                else line
              in
              match String.index_opt line ':' with
              | None -> None
              | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1))
                  ))
           rest
       in
       { status; headers; body })

let request port ~meth ~target ?(headers = []) ?(body = "") () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect fd
         (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
       let extra =
         String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
       in
       let req =
         Printf.sprintf
           "%s %s HTTP/1.1\r\nhost: smoke\r\nconnection: close\r\n%s\
            content-length: %d\r\n\r\n%s"
           meth target extra (String.length body) body
       in
       let sent = ref 0 in
       while !sent < String.length req do
         sent :=
           !sent
           + Unix.write_substring fd req !sent (String.length req - !sent)
       done;
       parse_response (recv_all fd))

let header r name = List.assoc_opt name r.headers

(* Keep-alive client: several requests on ONE connection, so they all
   land on the same serving domain (and cache shard).  Byte-at-a-time
   reads are fine at smoke scale. *)
let kconnect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let krequest fd ~meth ~target ?(headers = []) ?(body = "") () =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  let req =
    Printf.sprintf
      "%s %s HTTP/1.1\r\nhost: smoke\r\n%scontent-length: %d\r\n\r\n%s" meth
      target extra (String.length body) body
  in
  let sent = ref 0 in
  while !sent < String.length req do
    sent := !sent + Unix.write_substring fd req !sent (String.length req - !sent)
  done;
  let head = Buffer.create 512 in
  let one = Bytes.create 1 in
  let rec read_head () =
    (match Unix.read fd one 0 1 with
     | 0 -> fail "eof in keep-alive response head"
     | _ -> Buffer.add_subbytes head one 0 1);
    let s = Buffer.contents head in
    let l = String.length s in
    if l >= 4 && String.sub s (l - 4) 4 = "\r\n\r\n" then s else read_head ()
  in
  let raw_head = read_head () in
  let content_length =
    String.split_on_char '\n' raw_head
    |> List.find_map (fun line ->
        match String.index_opt line ':' with
        | Some i
          when String.lowercase_ascii (String.trim (String.sub line 0 i))
               = "content-length" ->
          int_of_string_opt
            (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
        | _ -> None)
    |> Option.value ~default:0
  in
  let body_buf = Bytes.create content_length in
  let filled = ref 0 in
  while !filled < content_length do
    match Unix.read fd body_buf !filled (content_length - !filled) with
    | 0 -> fail "eof in keep-alive response body"
    | n -> filled := !filled + n
  done;
  parse_response (raw_head ^ Bytes.to_string body_buf)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let metric_value metrics name =
  (* First sample line starting with `name` followed by a space. *)
  String.split_on_char '\n' metrics
  |> List.find_map (fun line ->
      match String.split_on_char ' ' line with
      | [ n; v ] when n = name -> float_of_string_opt v
      | _ -> None)

(* --- server lifecycle --- *)

let spawn server_exe args =
  let r, w = Unix.pipe () in
  let argv = Array.of_list (server_exe :: args) in
  let pid = Unix.create_process server_exe argv Unix.stdin w Unix.stderr in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let banner = input_line ic in
  let port =
    match String.rindex_opt banner ':' with
    | None -> fail "unparseable banner %S" banner
    | Some i ->
      let rest = String.sub banner (i + 1) (String.length banner - i - 1) in
      (match String.split_on_char ' ' (String.trim rest) with
       | p :: _ -> (
           try int_of_string p with _ -> fail "unparseable banner %S" banner)
       | [] -> fail "unparseable banner %S" banner)
  in
  (pid, port, ic, banner)

let () =
  (match Sys.argv with
   | [| _; _; _; _ |] -> ()
   | _ -> fail "usage: serve_smoke SERVER_EXE FIXTURES_DIR GRAMMARS_DIR");
  let server_exe = Sys.argv.(1)
  and fixtures = Sys.argv.(2)
  and grammars_dir = Sys.argv.(3) in
  (* A hung server must fail the alias, not wedge CI. *)
  ignore (Unix.alarm 120);
  let books = read_file (Filename.concat fixtures "books.html") in
  let jobs_html = read_file (Filename.concat fixtures "jobs.html") in
  let wide = read_file (Filename.concat fixtures "wide_form.html") in
  (* --trace-sample is huge on purpose: only extract request #0 lands
     on the sampling grid, so exactly one request is trace-sampled and
     the rest exercise the untraced path. *)
  let pid, port, _banner_ic, banner =
    spawn server_exe
      [ "--port"; "0"; "--jobs"; "4"; "--max-inflight"; "1";
        "--idle-timeout-s"; "2"; "--trace-dir"; "smoke-traces";
        "--trace-sample"; "1000000"; "--access-log"; "smoke-access.log";
        "--slow-ms"; "100000" ]
  in
  note "server pid %d on port %d (%s)" pid port banner;

  (* healthz *)
  let r = request port ~meth:"GET" ~target:"/healthz" () in
  if r.status <> 200 || r.body <> "ok\n" then
    fail "/healthz: %d %S" r.status r.body;
  note "healthz ok";

  (* Complete extraction — on a keep-alive connection, because the
     cache-hit check below must land on the same domain (per-domain
     cache shards; a new connection could reach a different shard). *)
  let books_conn = kconnect port in
  let r =
    krequest books_conn ~meth:"POST" ~target:"/extract?name=books" ~body:books
      ()
  in
  if r.status <> 200 then fail "/extract books: %d %s" r.status r.body;
  if header r "x-wqi-outcome" <> Some "complete" then
    fail "books outcome: %s" (Option.value ~default:"-" (header r "x-wqi-outcome"));
  if header r "x-wqi-cache" <> Some "miss" then
    fail "books first request must miss";
  if not (contains r.body "\"wqi_extraction_version\": 2") then
    fail "books body is not a v2 export: %s" r.body;
  let books_body = r.body in
  note "extract complete ok (%d bytes)" (String.length books_body);

  (* Request #0 landed on the --trace-sample grid: its trace id names a
     Chrome trace file in the trace dir. *)
  let trace_of r =
    match header r "x-wqi-trace-id" with
    | None -> fail "extract response without x-wqi-trace-id"
    | Some id -> Filename.concat "smoke-traces" (id ^ ".json")
  in
  let sampled_trace = trace_of r in
  if not (Sys.file_exists sampled_trace) then
    fail "sampled trace %s was not written" sampled_trace;
  let trace_body = read_file sampled_trace in
  if not (contains trace_body "\"traceEvents\"") then
    fail "sampled trace is not Chrome trace JSON: %s" trace_body;
  if not (contains trace_body "parser.round") then
    fail "sampled trace has no parser rounds";
  note "trace sampling ok (%s)" sampled_trace;

  (* Cache hit, byte-identical, same connection -> same shard. *)
  let r =
    krequest books_conn ~meth:"POST" ~target:"/extract?name=books" ~body:books
      ()
  in
  if r.status <> 200 || header r "x-wqi-cache" <> Some "hit" then
    fail "books repeat must hit the cache (%d, %s)" r.status
      (Option.value ~default:"-" (header r "x-wqi-cache"));
  if r.body <> books_body then fail "cache hit is not byte-identical";
  (try Unix.close books_conn with Unix.Unix_error _ -> ());
  note "cache hit ok";

  (* On-demand tracing: x-wqi-trace: 1 on a cache miss. *)
  let r =
    request port ~meth:"POST" ~target:"/extract?name=jobs-traced"
      ~headers:[ ("x-wqi-trace", "1") ]
      ~body:jobs_html ()
  in
  if r.status <> 200 then fail "/extract jobs-traced: %d" r.status;
  let demand_trace = trace_of r in
  if not (Sys.file_exists demand_trace) then
    fail "on-demand trace %s was not written" demand_trace;
  if not (contains (read_file demand_trace) "\"traceEvents\"") then
    fail "on-demand trace is not Chrome trace JSON";
  note "on-demand tracing ok (%s)" demand_trace;

  (* degraded extraction: the wide form under an instance cap *)
  let r =
    request port ~meth:"POST"
      ~target:"/extract?name=wide&max_instances=2000" ~body:wide ()
  in
  if r.status <> 200 then fail "/extract wide: %d" r.status;
  if header r "x-wqi-outcome" <> Some "degraded" then
    fail "wide outcome: %s" (Option.value ~default:"-" (header r "x-wqi-outcome"));
  if not (contains r.body "\"status\": \"degraded\"") then
    fail "wide body does not report degradation";
  note "extract degraded ok";

  (* malformed budget parameter *)
  let r =
    request port ~meth:"POST" ~target:"/extract?deadline_ms=abc" ~body:books ()
  in
  if r.status <> 400 then fail "malformed budget: %d (want 400)" r.status;
  note "malformed request 400 ok";

  (* method/path errors *)
  let r = request port ~meth:"GET" ~target:"/extract" () in
  if r.status <> 405 then fail "GET /extract: %d (want 405)" r.status;
  let r = request port ~meth:"GET" ~target:"/nope" () in
  if r.status <> 404 then fail "GET /nope: %d (want 404)" r.status;

  (* metrics exposition *)
  let r = request port ~meth:"GET" ~target:"/metrics" () in
  if r.status <> 200 then fail "/metrics: %d" r.status;
  List.iter
    (fun needle ->
       if not (contains r.body needle) then
         fail "/metrics missing %S in:\n%s" needle r.body)
    [ "wqi_requests_total{code=\"200\"}";
      "wqi_requests_total{code=\"400\"}";
      "wqi_extract_outcomes_total{outcome=\"complete\"}";
      "wqi_extract_outcomes_total{outcome=\"degraded\"}";
      "wqi_cache_answered_total 1";
      "wqi_request_seconds_bucket";
      "wqi_cache_hits_total";
      "wqi_cache_coalesced_total";
      "wqi_pool_queue_depth";
      "wqi_pool_jobs 4";
      "wqi_pool_peak_inflight";
      "wqi_domain_requests_total{domain=\"0\"}";
      "wqi_domain_requests_total{domain=\"3\"}";
      "wqi_accept_mode_info{mode=\"";
      "wqi_build_info{version=\"1.0.0\"} 1";
      "wqi_uptime_seconds";
      "wqi_stage_seconds_bucket{stage=\"parse\",le=\"+Inf\"}";
      "wqi_stage_seconds_count{stage=\"merge\"}" ];
  (match metric_value r.body "wqi_uptime_seconds" with
   | Some v when v >= 0. -> ()
   | _ -> fail "wqi_uptime_seconds not a non-negative sample");
  (* The merged per-domain split must account for exactly the requests
     the merged status counters saw — same scrape, same snapshots. *)
  let sum_prefix prefix =
    String.split_on_char '\n' r.body
    |> List.fold_left
      (fun acc line ->
         if
           String.length line > String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
         then
           match String.rindex_opt line ' ' with
           | Some i ->
             acc
             +. Option.value ~default:0.
                  (float_of_string_opt
                     (String.sub line (i + 1) (String.length line - i - 1)))
           | None -> acc
         else acc)
      0.
  in
  let by_code = sum_prefix "wqi_requests_total{" in
  let by_domain = sum_prefix "wqi_domain_requests_total{" in
  if by_code <> by_domain then
    fail "merge mismatch: %g requests by code, %g by domain" by_code by_domain;
  note "metrics ok (merge: %g requests across 4 domains)" by_domain;

  (* Deterministic 503: park a slow extraction (the wide form under a
     wall-clock deadline; ungoverned it runs for tens of seconds) in
     the single admission slot, wait until /metrics shows it admitted,
     then any cache-missing extraction must be shed. *)
  let slow_done = ref None in
  let slow =
    Thread.create
      (fun () ->
         slow_done :=
           Some
             (request port ~meth:"POST"
                ~target:"/extract?name=wide&deadline_ms=700" ~body:wide ()))
      ()
  in
  let rec await_inflight tries =
    if tries = 0 then fail "slow request never became in-flight";
    let m = request port ~meth:"GET" ~target:"/metrics" () in
    match metric_value m.body "wqi_inflight_requests" with
    | Some v when v >= 1. -> ()
    | _ ->
      Thread.delay 0.01;
      await_inflight (tries - 1)
  in
  await_inflight 200;
  let r = request port ~meth:"POST" ~target:"/extract?name=jobs" ~body:jobs_html () in
  if r.status <> 503 then fail "overload: %d (want 503)" r.status;
  if header r "retry-after" = None then fail "503 without retry-after";
  Thread.join slow;
  (match !slow_done with
   | Some { status = 200; _ } -> ()
   | Some r -> fail "slow request: %d (want 200)" r.status
   | None -> fail "slow request returned nothing");
  let m = request port ~meth:"GET" ~target:"/metrics" () in
  (match metric_value m.body "wqi_shed_total" with
   | Some v when v >= 1. -> ()
   | v ->
     fail "wqi_shed_total: %s (want >= 1)"
       (match v with Some f -> string_of_float f | None -> "absent"));
  note "deterministic 503 ok";

  (* Graceful drain: park another slow extraction (different deadline,
     so a different cache key), SIGTERM mid-flight, and require both a
     complete response and a clean exit. *)
  let drain_done = ref None in
  let drain =
    Thread.create
      (fun () ->
         drain_done :=
           Some
             (request port ~meth:"POST"
                ~target:"/extract?name=wide&deadline_ms=701" ~body:wide ()))
      ()
  in
  await_inflight 200;
  Unix.kill pid Sys.sigterm;
  Thread.join drain;
  (match !drain_done with
   | Some { status = 200; _ } -> ()
   | Some r -> fail "drained request: %d (want 200)" r.status
   | None -> fail "drained request returned nothing");
  (match Unix.waitpid [] pid with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED c -> fail "server exited %d (want 0)" c
   | _, Unix.WSIGNALED s -> fail "server killed by signal %d" s
   | _, Unix.WSTOPPED s -> fail "server stopped by signal %d" s);
  note "graceful drain ok (exit 0)";

  (* Structured access log: flushed per line, so complete after exit. *)
  let log = read_file "smoke-access.log" in
  List.iter
    (fun needle ->
       if not (contains log needle) then
         fail "access log missing %S in:\n%s" needle log)
    [ "\"method\":\"POST\"";
      "\"path\":\"/extract\"";
      "\"path\":\"/healthz\"";
      "\"status\":200";
      "\"status\":503";
      "\"cache\":\"hit\"";
      "\"cache\":\"miss\"";
      "\"cache\":\"shed\"";
      "\"outcome\":\"complete\"";
      "\"outcome\":\"degraded\"";
      "\"ts\":\"";
      "\"id\":\"" ];
  note "access log ok (%d bytes)" (String.length log);

  (* Single-flight: 4 concurrent identical cold misses must run ONE
     extraction — the leader's — and feed the other three from its
     result.  jobs=1 keeps all four on one shard; --accept dispatch
     also exercises the fd-passing fallback path end to end. *)
  let pid2, port2, _ic2, banner2 =
    spawn server_exe
      [ "--port"; "0"; "--jobs"; "1"; "--accept"; "dispatch";
        "--max-inflight"; "4"; "--idle-timeout-s"; "2";
        "--grammar-dir"; grammars_dir ]
  in
  if not (contains banner2 "accept=dispatch") then
    fail "dispatch server banner %S does not announce accept=dispatch" banner2;
  let results = Array.make 4 None in
  let posters =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
             results.(i) <-
               Some
                 (request port2 ~meth:"POST"
                    ~target:"/extract?name=wide&deadline_ms=700" ~body:wide ()))
          ())
  in
  List.iter Thread.join posters;
  let bodies =
    Array.to_list results
    |> List.map (function
        | Some { status = 200; body; _ } -> body
        | Some r -> fail "single-flight request: %d (want 200)" r.status
        | None -> fail "single-flight request returned nothing")
  in
  (match bodies with
   | first :: rest ->
     if List.exists (fun b -> b <> first) rest then
       fail "single-flight responses are not byte-identical"
   | [] -> assert false);
  let m = request port2 ~meth:"GET" ~target:"/metrics" () in
  (* Exactly one request went through the extractor... *)
  (match metric_value m.body "wqi_extractions_total" with
   | Some 1. -> ()
   | v ->
     fail "single-flight: expected wqi_extractions_total 1, got %s"
       (match v with Some f -> string_of_float f | None -> "absent"));
  (match metric_value m.body "wqi_stage_seconds_count{stage=\"parse\"}" with
   | Some 1. -> ()
   | v ->
     fail "single-flight: expected exactly 1 extraction, stage count %s"
       (match v with Some f -> string_of_float f | None -> "absent"));
  (* ...and at least one waiter was fed by the in-flight leader. *)
  (match metric_value m.body "wqi_cache_coalesced_total" with
   | Some v when v >= 1. -> ()
   | v ->
     fail "wqi_cache_coalesced_total: %s (want >= 1)"
       (match v with Some f -> string_of_float f | None -> "absent"));
  note "single-flight ok (1 extraction for 4 concurrent identical requests)";

  (* Grammar registry: the same server runs with --grammar-dir, so the
     registry holds the built-in std plus the example variants.  Every
     grammar serves concurrently; selection is per request. *)
  let extract ?grammar body =
    let target =
      match grammar with
      | None -> "/extract?name=gsel"
      | Some g -> "/extract?name=gsel&grammar=" ^ g
    in
    request port2 ~meth:"POST" ~target ~body ()
  in
  let expect_cache label r want =
    if r.status <> 200 then fail "%s: %d (want 200)" label r.status;
    if header r "x-wqi-cache" <> Some want then
      fail "%s: cache %s (want %s)" label
        (Option.value ~default:"-" (header r "x-wqi-cache"))
        want
  in
  let r_air = extract ~grammar:"airline" books in
  expect_cache "airline miss" r_air "miss";
  if header r_air "x-wqi-grammar" <> Some "airline" then
    fail "airline request did not echo x-wqi-grammar: airline";
  expect_cache "airline hit" (extract ~grammar:"airline" books) "hit";
  (* Same HTML under another grammar must be a fresh cache key... *)
  let r_re = extract ~grammar:"realestate" books in
  expect_cache "realestate miss" r_re "miss";
  if r_re.body = r_air.body then
    fail "airline and realestate produced identical models on books \
          (variant grammars are not being applied)";
  expect_cache "realestate hit" (extract ~grammar:"realestate" books) "hit";
  (* ...while the default grammar and ?grammar=std share one key. *)
  expect_cache "default miss" (extract books) "miss";
  let r_std = extract ~grammar:"std" books in
  expect_cache "std aliases default" r_std "hit";
  if header r_std "x-wqi-grammar" <> Some "std" then
    fail "std request did not echo x-wqi-grammar: std";
  (* Unknown names are a deterministic 404 listing what is loaded. *)
  let r = extract ~grammar:"nope" books in
  if r.status <> 404 then fail "unknown grammar: %d (want 404)" r.status;
  if
    not
      (contains r.body
         "unknown grammar \\\"nope\\\"; available: airline, realestate, std")
  then fail "unknown-grammar 404 body not deterministic: %s" r.body;
  let m = request port2 ~meth:"GET" ~target:"/metrics" () in
  List.iter
    (fun needle ->
       if not (contains m.body needle) then
         fail "/metrics missing %S in:\n%s" needle m.body)
    [ "wqi_grammar_info{name=\"airline\",version=\"1\"} 1";
      "wqi_grammar_info{name=\"realestate\",version=\"1\"} 1";
      "wqi_grammar_info{name=\"std\",version=\"1\"} 1";
      (* >1 grammar loaded: the requests split grows the grammar label,
         cache hits included. *)
      "wqi_requests_total{code=\"200\",grammar=\"airline\"} 2";
      "wqi_requests_total{code=\"200\",grammar=\"realestate\"} 2";
      "wqi_requests_total{code=\"404\",grammar=\"\"}" ];
  note "grammar registry ok (3 grammars, per-grammar cache keys)";
  Unix.kill pid2 Sys.sigterm;
  (match Unix.waitpid [] pid2 with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED c -> fail "dispatch server exited %d (want 0)" c
   | _, s ->
     fail "dispatch server did not exit cleanly (%s)"
       (match s with
        | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
        | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
        | Unix.WEXITED n -> string_of_int n));
  (* Persistent store as the warm tier: a server started with --store
     writes extractions behind the cache; a NEW process over the same
     directory must answer the same request from the store — no
     extraction — byte-identical to the original response. *)
  let pid3, port3, _ic3, _banner3 =
    spawn server_exe
      [ "--port"; "0"; "--jobs"; "1"; "--idle-timeout-s"; "2";
        "--store"; "smoke-store" ]
  in
  let r =
    request port3 ~meth:"POST" ~target:"/extract?name=books" ~body:books ()
  in
  if r.status <> 200 || header r "x-wqi-cache" <> Some "miss" then
    fail "store server first request: %d cache=%s (want 200 miss)" r.status
      (Option.value ~default:"-" (header r "x-wqi-cache"));
  let stored_body = r.body in
  Unix.kill pid3 Sys.sigterm;
  (match Unix.waitpid [] pid3 with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED c -> fail "store server exited %d (want 0)" c
   | _, _ -> fail "store server did not exit cleanly");
  let pid4, port4, _ic4, _banner4 =
    spawn server_exe
      [ "--port"; "0"; "--jobs"; "1"; "--idle-timeout-s"; "2";
        "--store"; "smoke-store" ]
  in
  let r =
    request port4 ~meth:"POST" ~target:"/extract?name=books" ~body:books ()
  in
  if r.status <> 200 then fail "restarted store server: %d" r.status;
  if header r "x-wqi-cache" <> Some "store" then
    fail "restart must answer from the store, got cache=%s"
      (Option.value ~default:"-" (header r "x-wqi-cache"));
  if r.body <> stored_body then
    fail "store hit is not byte-identical across restart";
  (* And the in-memory cache now fronts the store entry. *)
  let r2 =
    request port4 ~meth:"POST" ~target:"/extract?name=books" ~body:books ()
  in
  if r2.status <> 200 then fail "post-store request: %d" r2.status;
  if r2.body <> stored_body then fail "post-store hit not byte-identical";
  let m = request port4 ~meth:"GET" ~target:"/metrics" () in
  (match metric_value m.body "wqi_store_hits_total" with
   | Some v when v >= 1. -> ()
   | v ->
     fail "wqi_store_hits_total: %s (want >= 1)"
       (match v with Some f -> string_of_float f | None -> "absent"));
  (match metric_value m.body "wqi_store_entries" with
   | Some v when v >= 1. -> ()
   | v ->
     fail "wqi_store_entries: %s (want >= 1)"
       (match v with Some f -> string_of_float f | None -> "absent"));
  (match metric_value m.body "wqi_extractions_total" with
   | Some 0. | None -> ()
   | Some v -> fail "restarted server extracted %g times (want 0)" v);
  Unix.kill pid4 Sys.sigterm;
  (match Unix.waitpid [] pid4 with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED c -> fail "restarted store server exited %d (want 0)" c
   | _, _ -> fail "restarted store server did not exit cleanly");
  note "persistent store ok (hit across restart, byte-identical, 0 \
        extractions)";

  print_endline "serve smoke ok"
