(* Quality records (lib/quality): score arithmetic, canonical JSON
   golden + round-trip, rollup reconstruction, the Agg merge property
   (merging over any split of a record stream equals single-pass
   aggregation, mirroring the telemetry merge law), and the trace
   file-naming regression for colliding document stems. *)

module Q = QCheck
module Quality = Wqi_quality.Quality
module Agg = Wqi_quality.Quality.Agg
module Trace = Wqi_obs.Trace
module Generator = Wqi_corpus.Generator

let to_alcotest = QCheck_alcotest.to_alcotest

let feq = Alcotest.(check (float 1e-9))

(* --- score ------------------------------------------------------- *)

let test_score_failed () =
  feq "failed scores 0 whatever the coverage" 0.
    (Quality.score ~outcome:"failed" ~coverage:1. ~conflicts:0 ~tokens:20
       ~ambiguity:0)

let test_score_clean () =
  feq "full coverage, no errors" 1.
    (Quality.score ~outcome:"complete" ~coverage:1. ~conflicts:0 ~tokens:12
       ~ambiguity:0)

let test_score_conflict_penalty () =
  (* Each conflicted token cancels a covered one: 2/10 off. *)
  feq "conflicts cost 1/tokens each" 0.8
    (Quality.score ~outcome:"complete" ~coverage:1. ~conflicts:2 ~tokens:10
       ~ambiguity:0)

let test_score_ambiguity_penalty () =
  feq "ambiguity costs 2 points per tree" 0.94
    (Quality.score ~outcome:"complete" ~coverage:1. ~conflicts:0 ~tokens:10
       ~ambiguity:3);
  (* ... capped at 10 trees so it cannot mask coverage. *)
  feq "ambiguity penalty capped" 0.8
    (Quality.score ~outcome:"degraded" ~coverage:1. ~conflicts:0 ~tokens:10
       ~ambiguity:50)

let test_score_clamped () =
  feq "never below 0" 0.
    (Quality.score ~outcome:"degraded" ~coverage:0.1 ~conflicts:5 ~tokens:5
       ~ambiguity:0);
  (* tokens=0 guards the conflict ratio with max 1. *)
  feq "empty interface, clean" 1.
    (Quality.score ~outcome:"complete" ~coverage:1. ~conflicts:0 ~tokens:0
       ~ambiguity:0)

(* --- canonical JSON ---------------------------------------------- *)

let golden_record =
  { Quality.source = "docs/doc-00000.html";
    grammar = "std@1";
    domain = "Books";
    outcome = "complete";
    tokens = 12;
    covered = 12;
    conflicts = 0;
    missing = 0;
    trees = 1;
    ambiguity = 0;
    trips = 0;
    coverage = 1.;
    score = 1. }

(* The exact line wqi_crawl appends to quality.jsonl for a clean
   extraction: field order, integer-float rendering and the version tag
   are all wire contract. *)
let golden_line =
  "{\"wqi_quality_version\":1,\"source\":\"docs/doc-00000.html\",\
   \"grammar\":\"std@1\",\"domain\":\"Books\",\"outcome\":\"complete\",\
   \"score\":1,\"coverage\":1,\"tokens\":12,\"covered\":12,\
   \"conflicts\":0,\"missing\":0,\"trees\":1,\"ambiguity\":0,\"trips\":0}"

let test_golden_json () =
  Alcotest.(check string) "golden quality.jsonl line" golden_line
    (Quality.to_json golden_record);
  match Quality.of_json golden_line with
  | Ok r -> Alcotest.(check bool) "golden parses back" true (r = golden_record)
  | Error e -> Alcotest.failf "golden line rejected: %s" e

let test_of_json_rejects () =
  let bad = [
    "";
    "not json";
    (* version mismatch must be a hard error, not a best-effort parse *)
    "{\"wqi_quality_version\":2,\"source\":\"x\"}";
    "{\"source\":\"x\",\"score\":1}";
  ] in
  List.iter
    (fun line ->
       match Quality.of_json line with
       | Ok _ -> Alcotest.failf "accepted bad line: %s" line
       | Error _ -> ())
    bad

let test_of_json_ignores_unknown_fields () =
  let line =
    String.concat ""
      [ String.sub golden_line 0 (String.length golden_line - 1);
        ",\"future_field\":42}" ]
  in
  match Quality.of_json line with
  | Ok r -> Alcotest.(check bool) "unknown field skipped" true (r = golden_record)
  | Error e -> Alcotest.failf "forward-compat line rejected: %s" e

(* --- of_extraction / of_rollup ----------------------------------- *)

let extraction () =
  let g = Wqi_corpus.Prng.create 0x5EEDL in
  let s =
    Generator.generate g ~id:"q-doc" ~domain:(Wqi_corpus.Vocabulary.find "Books")
      ~complexity:`Rich ~oog_prob:0. ()
  in
  Wqi_core.Extractor.run Wqi_core.Extractor.Config.default
    (Wqi_core.Extractor.Html s.html)

let test_of_extraction_consistent () =
  let r =
    Quality.of_extraction ~source:"q-doc" ~grammar:"std@1" ~domain:"Books"
      (extraction ())
  in
  Alcotest.(check bool) "has tokens" true (r.tokens > 0);
  feq "coverage = covered/tokens"
    (float_of_int r.covered /. float_of_int r.tokens)
    r.coverage;
  feq "score matches its own fields"
    (Quality.score ~outcome:r.outcome ~coverage:r.coverage
       ~conflicts:r.conflicts ~tokens:r.tokens ~ambiguity:r.ambiguity)
    r.score;
  Alcotest.(check bool) "score in [0,1]" true (r.score >= 0. && r.score <= 1.);
  (* A real record must survive the wire unchanged. *)
  match Quality.of_json (Quality.to_json r) with
  | Ok r' -> Alcotest.(check bool) "round-trips" true (r = r')
  | Error e -> Alcotest.failf "extraction record rejected: %s" e

let test_failed_record () =
  let r = Quality.failed ~source:"gone" ~grammar:"std@1" () in
  feq "failed score" 0. r.score;
  feq "failed coverage" 0. r.coverage;
  Alcotest.(check string) "failed outcome" "failed" r.outcome

let test_of_rollup () =
  (* A rollup record preserves exactly the headline fields the store
     manifest carries; the detail counters are zero. *)
  let r =
    Quality.of_rollup ~source:"doc-3" ~grammar:"std@1" ~domain:"Airfares"
      ~outcome:"degraded" ~score:0.625 ~coverage:0.75 ~conflicts:2
  in
  feq "rollup score preserved" 0.625 r.score;
  feq "rollup coverage preserved" 0.75 r.coverage;
  Alcotest.(check int) "rollup conflicts preserved" 2 r.conflicts;
  Alcotest.(check int) "rollup tokens zero" 0 r.tokens;
  Alcotest.(check int) "rollup trees zero" 0 r.trees;
  match Quality.of_json (Quality.to_json r) with
  | Ok r' -> Alcotest.(check bool) "rollup round-trips" true (r = r')
  | Error e -> Alcotest.failf "rollup record rejected: %s" e

(* --- Agg merge property ------------------------------------------ *)

(* Dyadic floats (k/16): exactly representable, printed exactly by the
   canonical float rendering, and summed exactly by Agg — so both the
   JSON round-trip and the merge law can demand byte/structural
   equality instead of epsilon comparisons. *)
let dyadic = Q.Gen.map (fun k -> float_of_int k /. 16.) (Q.Gen.int_bound 16)

let gen_record =
  Q.Gen.(
    oneofl [ "doc-0"; "doc-1"; "sub/doc-2" ] >>= fun source ->
    oneofl [ "std@1"; "airfares@2" ] >>= fun grammar ->
    oneofl [ ""; "Books"; "Airfares"; "Autos" ] >>= fun domain ->
    oneofl [ "complete"; "degraded"; "failed" ] >>= fun outcome ->
    int_bound 40 >>= fun tokens ->
    int_bound tokens >>= fun covered ->
    int_bound 5 >>= fun conflicts ->
    int_bound 5 >>= fun missing ->
    int_bound 4 >>= fun ambiguity ->
    int_bound 3 >>= fun trips ->
    dyadic >>= fun coverage ->
    dyadic >>= fun score ->
    return
      { Quality.source; grammar; domain; outcome; tokens; covered;
        conflicts; missing; trees = ambiguity + 1; ambiguity; trips;
        coverage; score })

let arb_records_and_chunks =
  Q.make
    ~print:(fun (rs, k) ->
        Printf.sprintf "%d records over %d aggs:\n%s" (List.length rs) (k + 1)
          (String.concat "\n" (List.map Quality.to_json rs)))
    Q.Gen.(pair (list_size (int_bound 40) gen_record) (int_bound 4))

let prop_merge_equals_single_pass =
  Q.Test.make ~name:"Agg.merge over any split = single pass" ~count:200
    arb_records_and_chunks (fun (records, k) ->
        let parts = Array.init (k + 1) (fun _ -> Agg.create ()) in
        let reference = Agg.create () in
        List.iteri
          (fun i r ->
             (* Round-robin over k+1 partial aggregates: with random k
                and random record streams this exercises every split
                shape that matters, including empty parts. *)
             Agg.add parts.(i mod (k + 1)) r;
             Agg.add reference r)
          records;
        let merged =
          Array.fold_left Agg.merge (Agg.create ()) parts
        in
        Agg.total merged = Agg.total reference
        && Agg.domains merged = Agg.domains reference
        && Agg.grammars merged = Agg.grammars reference)

let prop_json_round_trip =
  Q.Test.make ~name:"to_json/of_json round-trip" ~count:200
    (Q.make ~print:Quality.to_json gen_record) (fun r ->
        match Quality.of_json (Quality.to_json r) with
        | Ok r' -> r = r'
        | Error _ -> false)

let test_agg_buckets () =
  let agg = Agg.create () in
  List.iter
    (fun score -> Agg.add agg { golden_record with score })
    [ 0.; 0.05; 0.1; 0.55; 0.95; 1. ];
  let cell = Agg.total agg in
  Alcotest.(check int) "count" 6 cell.Agg.count;
  (* Buckets are (lower, upper]-style on uppers 0.1 .. 1.0 with 0.0
     landing in the first: 0 and 0.05 and 0.1 → bucket 0, 0.55 →
     bucket 5, 0.95 and 1.0 → bucket 9. *)
  Alcotest.(check int) "low bucket" 3 cell.Agg.score_buckets.(0);
  Alcotest.(check int) "mid bucket" 1 cell.Agg.score_buckets.(5);
  Alcotest.(check int) "top bucket" 2 cell.Agg.score_buckets.(9);
  feq "mean score" (2.65 /. 6.) (Agg.mean_score cell)

(* --- trace file naming (colliding stems regression) --------------- *)

let test_trace_doc_file_name () =
  (* Two documents with the same stem but different content keys must
     get distinct per-document trace files. *)
  let a = Trace.doc_file_name ~name:"doc-00000" ~key:"00ab" in
  let b = Trace.doc_file_name ~name:"doc-00000" ~key:"00cd" in
  Alcotest.(check string) "key suffix" "doc-00000.00ab.trace.json" a;
  Alcotest.(check bool) "distinct for distinct keys" true (a <> b);
  Alcotest.(check string) "path separators flattened"
    "a_b_c.k.trace.json"
    (Trace.doc_file_name ~name:"a/b\\c" ~key:"k");
  Alcotest.(check string) "empty key omits the dot"
    "doc.trace.json"
    (Trace.doc_file_name ~name:"doc" ~key:"")

let suite =
  [ Alcotest.test_case "score: failed" `Quick test_score_failed;
    Alcotest.test_case "score: clean" `Quick test_score_clean;
    Alcotest.test_case "score: conflicts" `Quick test_score_conflict_penalty;
    Alcotest.test_case "score: ambiguity" `Quick test_score_ambiguity_penalty;
    Alcotest.test_case "score: clamped" `Quick test_score_clamped;
    Alcotest.test_case "golden jsonl line" `Quick test_golden_json;
    Alcotest.test_case "of_json rejects" `Quick test_of_json_rejects;
    Alcotest.test_case "of_json forward-compat" `Quick
      test_of_json_ignores_unknown_fields;
    Alcotest.test_case "of_extraction consistent" `Quick
      test_of_extraction_consistent;
    Alcotest.test_case "failed record" `Quick test_failed_record;
    Alcotest.test_case "of_rollup" `Quick test_of_rollup;
    Alcotest.test_case "agg buckets" `Quick test_agg_buckets;
    to_alcotest prop_merge_equals_single_pass;
    to_alcotest prop_json_round_trip;
    Alcotest.test_case "trace doc file name" `Quick test_trace_doc_file_name ]
