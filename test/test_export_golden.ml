(* Golden-file tests for the version-2 Export wire format: the JSON
   emitted with [export ~timings:false] must be byte-stable for a
   Complete, a Degraded (budget-tripped) and a Failed source.  This is
   the exact form the extraction server caches and serves, so any
   unintentional drift in field order, spelling or formatting fails
   here.  After an intentional change, regenerate with

     dune exec test/golden/gen_golden.exe -- test/golden

   and review the diff. *)

module Extractor = Wqi_core.Extractor
module Budget = Wqi_core.Budget

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let html () = read_file (Filename.concat "golden" "complete.html")

(* Must match gen_golden.ml. *)
let degraded_max_instances = 60

let check_golden file ~name extraction =
  let expected = read_file (Filename.concat "golden" file) in
  let actual = Extractor.export ~timings:false ~name extraction ^ "\n" in
  if expected <> actual then
    Alcotest.failf
      "%s drifted from its golden file.@.--- golden@.%s@.--- actual@.%s@.\
       (regenerate with `dune exec test/golden/gen_golden.exe -- \
       test/golden` if the change is intentional)"
      file expected actual

let test_complete () =
  let e = Extractor.run Extractor.Config.default (Extractor.Html (html ())) in
  (match e.Extractor.outcome with
   | Budget.Complete -> ()
   | _ -> Alcotest.fail "fixture no longer extracts to Complete");
  check_golden "complete.json" ~name:"golden-complete" e

let test_degraded () =
  let budget = Budget.make ~max_instances:degraded_max_instances () in
  let config = Extractor.Config.(default |> with_budget budget) in
  let e = Extractor.run config (Extractor.Html (html ())) in
  (match e.Extractor.outcome with
   | Budget.Degraded _ -> ()
   | _ -> Alcotest.fail "instance cap no longer trips on the fixture");
  check_golden "degraded.json" ~name:"golden-degraded" e

let test_failed () =
  check_golden "failed.json" ~name:"golden-failed"
    (Extractor.failed "simulated upstream failure")

let test_deterministic () =
  (* [~timings:false] removes the only nondeterministic diagnostics
     (wall times), so two identical runs export identical bytes — the
     property the result cache's hit-equals-fresh guarantee rests on. *)
  let run () =
    Extractor.export ~timings:false ~name:"det"
      (Extractor.run Extractor.Config.default (Extractor.Html (html ())))
  in
  Alcotest.(check string) "same bytes" (run ()) (run ())

let suite =
  [ ("golden complete", `Quick, test_complete);
    ("golden degraded", `Quick, test_degraded);
    ("golden failed", `Quick, test_failed);
    ("export deterministic", `Quick, test_deterministic) ]
