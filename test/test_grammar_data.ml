(* Grammar-as-data suite: the declarative standard grammar (Std_decl,
   the Algebra twin of Std's hand-written closures) and the .wqg file
   format must be exactly as trustworthy as the compiled grammar they
   replace.  Three layers:

   - equivalence: Std_decl.grammar — and the grammar loaded back from
     examples/grammars/std.wqg — parse the whole equivalence corpus
     byte-identically to Std.grammar (instance ids included, via
     Test_parser_equiv.check_equivalent);
   - round-trip: dump → parse → dump is byte-identical, and the
     committed std.wqg is exactly [Loader.dump Std_decl.decl];
   - rejection: malformed grammar files fail to load with precise
     file:line:col diagnostics, never a late crash. *)

module G = Wqi_grammar
module Algebra = G.Algebra
module Loader = G.Loader
module Engine = Wqi_parser.Engine
module Generator = Wqi_corpus.Generator
module Tokenize = Wqi_token.Tokenize
module Std = Wqi_stdgrammar.Std
module Std_decl = Wqi_stdgrammar.Std_decl
module Extractor = Wqi_core.Extractor

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let grammars_dir = "../examples/grammars"
let std_wqg = Filename.concat grammars_dir "std.wqg"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let instantiated decl =
  match Algebra.instantiate Std_decl.env decl with
  | Ok g -> g
  | Error msgs -> Alcotest.failf "instantiate: %s" (String.concat "; " msgs)

let loaded path =
  match Loader.load ~env:Std_decl.env path with
  | Ok decl -> decl
  | Error e -> Alcotest.failf "load %s: %s" path (Loader.error_to_string e)

(* --- equivalence: declarative twin = compiled closures --- *)

let check_corpus_equivalent ctx grammar =
  let reference = Std.grammar in
  List.iter
    (fun (s : Generator.source) ->
       let tokens = Tokenize.of_html s.Generator.html in
       let decl_result = Engine.parse grammar tokens in
       let ref_result = Engine.parse reference tokens in
       Test_parser_equiv.check_equivalent
         (ctx ^ "/" ^ s.Generator.id)
         decl_result ref_result)
    (Test_parser_equiv.corpus_sources ())

let test_decl_equivalence () =
  check_corpus_equivalent "decl" Std_decl.grammar

let test_loaded_equivalence () =
  (* The full loop the file format licenses: committed bytes → loader →
     interpreter → parser, byte-identical to the compiled grammar. *)
  check_corpus_equivalent "loaded" (instantiated (loaded std_wqg))

let test_decl_hints_match_std () =
  (* Hints are auto-derived from the top-level positive relational
     conjuncts of each declarative guard; they must reproduce Std's
     hand-written hints production by production (they are why the
     declarative grammar is as fast, not just as correct). *)
  let hints_by_name (g : G.Grammar.t) =
    List.map
      (fun (p : G.Production.t) ->
         ( p.G.Production.name,
           List.map (Fmt.str "%a" G.Hint.pp) p.G.Production.hints ))
      g.G.Grammar.productions
  in
  List.iter2
    (fun (name_std, hints_std) (name_decl, hints_decl) ->
       check_string "production order" name_std name_decl;
       Alcotest.(check (list string)) (name_std ^ ": hints") hints_std
         hints_decl)
    (hints_by_name Std.grammar)
    (hints_by_name Std_decl.grammar)

(* --- round-trips and the committed golden --- *)

let test_dump_parse_dump () =
  let dumped = Loader.dump Std_decl.decl in
  match Loader.parse ~env:Std_decl.env ~file:"<dump>" dumped with
  | Error e -> Alcotest.failf "reparse: %s" (Loader.error_to_string e)
  | Ok decl -> check_string "dump/parse/dump" dumped (Loader.dump decl)

let test_committed_std_is_golden () =
  (* examples/grammars/std.wqg is `wqi_grammar_dump --export`, committed;
     regenerate it whenever Std_decl changes. *)
  check_string "std.wqg bytes" (Loader.dump Std_decl.decl) (read_file std_wqg)

let test_variant_roundtrips () =
  List.iter
    (fun file ->
       let path = Filename.concat grammars_dir file in
       let decl = loaded path in
       let dumped = Loader.dump decl in
       (match Loader.parse ~env:Std_decl.env ~file dumped with
        | Error e ->
          Alcotest.failf "%s redump: %s" file (Loader.error_to_string e)
        | Ok decl' ->
          check_string (file ^ ": canonical") dumped (Loader.dump decl'));
       ignore (instantiated decl))
    [ "airline.wqg"; "realestate.wqg" ]

let test_variants_extract () =
  (* Variants are live grammars, not inert data: an airline-ish form
     must yield conditions under the airline grammar through the full
     extractor stack, selected via Config.with_compiled. *)
  let html =
    "<form><table>\
     <tr><td>Departure city:</td><td><input type=\"text\" name=\"from\"></td></tr>\
     <tr><td>Passengers:</td><td><select name=\"n\">\
     <option>1</option><option>2</option><option>3</option></select></td></tr>\
     </table></form>"
  in
  List.iter
    (fun (file, name) ->
       let path = Filename.concat grammars_dir file in
       let decl = loaded path in
       check_string (file ^ ": name") name decl.Algebra.g_name;
       let pack =
         Engine.compile ~name:decl.Algebra.g_name ~version:decl.Algebra.g_version
           (instantiated decl)
       in
       let config = Extractor.Config.(default |> with_compiled pack) in
       let e = Extractor.run config (Extractor.Html html) in
       check_bool (file ^ ": outcome complete") true
         (e.Extractor.outcome = Wqi_budget.Budget.Complete);
       check_bool (file ^ ": found conditions") true
         (List.length (Extractor.conditions e) >= 2))
    [ ("airline.wqg", "airline"); ("realestate.wqg", "realestate") ]

(* --- rejection: precise diagnostics --- *)

let header =
  "(wqi-grammar (format 1) (name t) (version 1) (terminals text textbox) \
   (start QI))\n"

let expect_error ctx text expected =
  match Loader.parse ~env:Std_decl.env ~file:"bad.wqg" text with
  | Ok _ -> Alcotest.failf "%s: expected a load error" ctx
  | Error e -> check_string ctx expected (Loader.error_to_string e)

let test_reject_unknown_symbol () =
  expect_error "unknown symbol"
    (header
     ^ "(production P-QI (head QI) (components Nope) (build (lift 0)))\n")
    "bad.wqg:2:40: unknown symbol \"Nope\""

let test_reject_arity_mismatch () =
  expect_error "slot out of arity"
    (header
     ^ "(production P-QI (head QI) (components text) (guard (text-class \
        plausible-attribute token 2)))\n")
    "bad.wqg:2:91: slot 2 out of range (production has 1 component)"

let test_reject_cycle () =
  expect_error "cyclic productions"
    (header
     ^ "(production P-A (head A) (components B) (build (lift 0)))\n"
     ^ "(production P-B (head B) (components A) (build (lift 0)))\n"
     ^ "(production P-QI (head QI) (components A) (build (lift 0)))\n")
    "bad.wqg:3:2: production P-B: cyclic productions: A -> B -> A"

let test_reject_malformed_predicate () =
  expect_error "malformed predicate"
    (header
     ^ "(production P-QI (head QI) (components text text) (guard (frob 0 1)))\n")
    "bad.wqg:2:58: unknown predicate \"frob\""

let test_reject_unknown_text_class () =
  expect_error "unknown text class"
    (header
     ^ "(production P-QI (head QI) (components text) (guard (text-class \
        mystery token 0)))\n")
    "bad.wqg:2:65: unknown text class \"mystery\""

let test_reject_duplicate_production () =
  expect_error "duplicate production name"
    (header
     ^ "(production P-QI (head QI) (components text))\n"
     ^ "(production P-QI (head QI) (components textbox))\n")
    "bad.wqg:3:2: duplicate production name \"P-QI\""

let test_reject_non_head_start () =
  expect_error "start is not a head"
    (header ^ "(production P-A (head A) (components text))\n")
    "bad.wqg:1:78: start symbol \"QI\" is not the head of any production"

let test_reject_bad_format () =
  expect_error "unsupported format"
    "(wqi-grammar (format 2) (name t) (version 1) (terminals text) (start \
     QI))\n"
    "bad.wqg:1:22: unsupported grammar format 2"

let test_reject_self_relation () =
  expect_error "slot related to itself"
    (header
     ^ "(production P-QI (head QI) (components text textbox) (guard (left-of \
        60 1 1)))\n")
    "bad.wqg:2:61: left-of relates slot 1 to itself"

let suite =
  [ ("declarative std = compiled std on the corpus", `Quick,
     test_decl_equivalence);
    ("loaded std.wqg = compiled std on the corpus", `Quick,
     test_loaded_equivalence);
    ("derived hints reproduce the hand-written hints", `Quick,
     test_decl_hints_match_std);
    ("dump/parse/dump is byte-identical", `Quick, test_dump_parse_dump);
    ("committed std.wqg matches --export", `Quick,
     test_committed_std_is_golden);
    ("variant files are canonical and instantiate", `Quick,
     test_variant_roundtrips);
    ("variant grammars drive the extractor", `Quick, test_variants_extract);
    ("reject: unknown symbol", `Quick, test_reject_unknown_symbol);
    ("reject: slot out of arity", `Quick, test_reject_arity_mismatch);
    ("reject: cyclic productions", `Quick, test_reject_cycle);
    ("reject: malformed predicate", `Quick, test_reject_malformed_predicate);
    ("reject: unknown text class", `Quick, test_reject_unknown_text_class);
    ("reject: duplicate production name", `Quick,
     test_reject_duplicate_production);
    ("reject: start not a head", `Quick, test_reject_non_head_start);
    ("reject: unsupported format", `Quick, test_reject_bad_format);
    ("reject: self-relation", `Quick, test_reject_self_relation) ]
