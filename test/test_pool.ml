(* The domain pool's task-queue API (lib/parallel/pool.ml): futures,
   exception propagation, drain-then-join shutdown, the jobs clamp, and
   map_array determinism alongside submitted tasks. *)

module Pool = Wqi_parallel.Pool

let test_submit_await () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
       let futures =
         List.init 100 (fun i -> Pool.submit pool (fun () -> i * i))
       in
       List.iteri
         (fun i fut -> Alcotest.(check int) "result" (i * i) (Pool.await fut))
         futures)

let test_exception_propagates () =
  let pool = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
       let fut = Pool.submit pool (fun () -> raise Not_found) in
       (match Pool.await fut with
        | _ -> Alcotest.fail "await must re-raise the task's exception"
        | exception Not_found -> ());
       (* The pool survives a task failure. *)
       Alcotest.(check int) "next task" 7
         (Pool.await (Pool.submit pool (fun () -> 7))))

let test_shutdown_drains () =
  (* Shutdown must run every queued task before joining, so futures
     taken before shutdown always fulfil. *)
  let pool = Pool.create ~jobs:2 () in
  let ran = Atomic.make 0 in
  let futures =
    List.init 64 (fun i ->
        Pool.submit pool (fun () ->
            Atomic.incr ran;
            i))
  in
  Pool.shutdown pool;
  List.iteri
    (fun i fut -> Alcotest.(check int) "drained result" i (Pool.await fut))
    futures;
  Alcotest.(check int) "all tasks ran" 64 (Atomic.get ran)

let test_submit_after_shutdown_raises () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  match Pool.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_jobs_clamp () =
  (* jobs:0 and negative values clamp to a sequential pool instead of
     raising Invalid_argument from Domain spawning or chunk math. *)
  List.iter
    (fun jobs ->
       let pool = Pool.create ~jobs () in
       Alcotest.(check int) "clamped" 1 (Pool.jobs pool);
       let out = Pool.map_array pool (fun x -> x + 1) [| 1; 2; 3 |] in
       Alcotest.(check (array int)) "map works" [| 2; 3; 4 |] out;
       Alcotest.(check int) "inline submit" 9
         (Pool.await (Pool.submit pool (fun () -> 9)));
       Pool.shutdown pool)
    [ 0; -3 ]

let test_map_array_deterministic () =
  let input = Array.init 101 (fun i -> i) in
  let expected = Array.map (fun x -> (x * 7) mod 31) input in
  let pool = Pool.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
       for _ = 1 to 5 do
         let out = Pool.map_array pool (fun x -> (x * 7) mod 31) input in
         Alcotest.(check (array int)) "input order" expected out
       done)

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool

(* Domain groups: every member runs with its own index, exactly once,
   truly in parallel (join returns only after all bodies finish), and
   jobs <= 0 clamps to one member. *)
let test_group_spawn_join () =
  let n = 4 in
  let ran = Array.make n 0 in
  let g = Pool.Group.spawn ~jobs:n (fun i -> ran.(i) <- ran.(i) + 1) in
  Alcotest.(check int) "size" n (Pool.Group.size g);
  Pool.Group.join g;
  Alcotest.(check (array int)) "each index ran once" (Array.make n 1) ran

let test_group_clamp () =
  let hit = ref [] in
  let g = Pool.Group.spawn ~jobs:0 (fun i -> hit := i :: !hit) in
  Alcotest.(check int) "clamped size" 1 (Pool.Group.size g);
  Pool.Group.join g;
  Alcotest.(check (list int)) "only member 0" [ 0 ] !hit

let test_group_members_concurrent () =
  (* Members rendezvous via a shared atomic: this only terminates if
     the group's bodies are actually live at the same time. *)
  let n = 2 in
  let arrived = Atomic.make 0 in
  let g =
    Pool.Group.spawn ~jobs:n (fun _ ->
        Atomic.incr arrived;
        while Atomic.get arrived < n do Domain.cpu_relax () done)
  in
  Pool.Group.join g;
  Alcotest.(check int) "both arrived" n (Atomic.get arrived)

let suite =
  [ ("submit/await", `Quick, test_submit_await);
    ("exception propagation", `Quick, test_exception_propagates);
    ("shutdown drains queued futures", `Quick, test_shutdown_drains);
    ("submit after shutdown raises", `Quick, test_submit_after_shutdown_raises);
    ("jobs clamp to sequential", `Quick, test_jobs_clamp);
    ("map_array deterministic", `Quick, test_map_array_deterministic);
    ("shutdown idempotent", `Quick, test_shutdown_idempotent);
    ("group spawn/join", `Quick, test_group_spawn_join);
    ("group clamps jobs", `Quick, test_group_clamp);
    ("group members run concurrently", `Quick, test_group_members_concurrent) ]
