(* Property-based tests (qcheck) on core data structures and invariants. *)

module Q = QCheck
module Bitset = Wqi_grammar.Bitset
module Geometry = Wqi_layout.Geometry
module Entity = Wqi_html.Entity
module Dom = Wqi_html.Dom
module Condition = Wqi_model.Condition
module Prng = Wqi_corpus.Prng

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- bitset properties --- *)

let universe = 130

let elems_gen = Q.small_list (Q.int_bound (universe - 1))

let bitset_of = Bitset.of_list universe

let prop_union_commutative =
  Q.Test.make ~name:"bitset union commutative" ~count:200
    (Q.pair elems_gen elems_gen) (fun (xs, ys) ->
        Bitset.equal
          (Bitset.union (bitset_of xs) (bitset_of ys))
          (Bitset.union (bitset_of ys) (bitset_of xs)))

let prop_union_models_list_union =
  Q.Test.make ~name:"bitset union = list union" ~count:200
    (Q.pair elems_gen elems_gen) (fun (xs, ys) ->
        Bitset.elements (Bitset.union (bitset_of xs) (bitset_of ys))
        = List.sort_uniq compare (xs @ ys))

let prop_inter_subset =
  Q.Test.make ~name:"intersection is a subset of both" ~count:200
    (Q.pair elems_gen elems_gen) (fun (xs, ys) ->
        let i = Bitset.inter (bitset_of xs) (bitset_of ys) in
        Bitset.subset i (bitset_of xs) && Bitset.subset i (bitset_of ys))

let prop_disjoint_iff_empty_inter =
  Q.Test.make ~name:"disjoint iff empty intersection" ~count:200
    (Q.pair elems_gen elems_gen) (fun (xs, ys) ->
        Bitset.disjoint (bitset_of xs) (bitset_of ys)
        = Bitset.is_empty (Bitset.inter (bitset_of xs) (bitset_of ys)))

let prop_cardinal =
  Q.Test.make ~name:"cardinal counts distinct elements" ~count:200 elems_gen
    (fun xs ->
       Bitset.cardinal (bitset_of xs)
       = List.length (List.sort_uniq compare xs))

let prop_strict_subset_irreflexive =
  Q.Test.make ~name:"strict subset irreflexive" ~count:200 elems_gen (fun xs ->
      not (Bitset.strict_subset (bitset_of xs) (bitset_of xs)))

(* --- geometry properties --- *)

let box_gen =
  Q.map
    (fun (x1, y1, w, h) -> Geometry.make ~x1 ~y1 ~x2:(x1 + w) ~y2:(y1 + h))
    (Q.quad (Q.int_bound 500) (Q.int_bound 500) (Q.int_bound 200)
       (Q.int_bound 200))

let prop_union_contains =
  Q.Test.make ~name:"union contains both boxes" ~count:200
    (Q.pair box_gen box_gen) (fun (a, b) ->
        let u = Geometry.union a b in
        Geometry.contains u a && Geometry.contains u b)

let prop_overlap_symmetric =
  Q.Test.make ~name:"overlaps symmetric" ~count:200 (Q.pair box_gen box_gen)
    (fun (a, b) ->
       Geometry.h_overlap a b = Geometry.h_overlap b a
       && Geometry.v_overlap a b = Geometry.v_overlap b a
       && Geometry.h_gap a b = Geometry.h_gap b a)

let prop_left_of_antisymmetric =
  Q.Test.make ~name:"left_of antisymmetric on separated boxes" ~count:200
    (Q.pair box_gen box_gen) (fun (a, b) ->
        (* Two boxes cannot be strictly left of each other unless they
           touch within tolerance. *)
        (not (Geometry.left_of ~max_gap:1000 a b))
        || (not (Geometry.left_of ~max_gap:1000 b a))
        || abs (a.Geometry.x1 - b.Geometry.x1) <= 4)

let prop_distance_symmetric =
  Q.Test.make ~name:"distance symmetric, zero on self" ~count:200
    (Q.pair box_gen box_gen) (fun (a, b) ->
        Geometry.distance a b = Geometry.distance b a
        && Geometry.distance a a = 0.)

(* --- entity properties --- *)

let printable_string =
  Q.string_gen_of_size (Q.Gen.int_bound 30) (Q.Gen.char_range ' ' '~')

let prop_entity_roundtrip =
  Q.Test.make ~name:"decode after encode_text is identity" ~count:300
    printable_string (fun s -> Entity.decode (Entity.encode_text s) = s)

let prop_attribute_roundtrip =
  Q.Test.make ~name:"decode after encode_attribute is identity" ~count:300
    printable_string (fun s -> Entity.decode (Entity.encode_attribute s) = s)

(* --- HTML roundtrip property --- *)

let name_gen = Q.Gen.oneofl [ "div"; "span"; "b"; "i"; "em" ]
let word_gen =
  Q.Gen.string_size ~gen:(Q.Gen.char_range 'a' 'z') (Q.Gen.int_range 1 8)

(* Random small DOM trees with no adjacent text nodes and no
   whitespace-sensitive content: serialization then parsing must
   reproduce them exactly. *)
let dom_gen =
  let open Q.Gen in
  let rec tree depth =
    if depth = 0 then map Dom.text word_gen
    else
      frequency
        [ (2, map Dom.text word_gen);
          ( 3,
            name_gen >>= fun name ->
            list_size (int_bound 3)
              (pair (tree (depth - 1)) (return ()))
            >>= fun children ->
            let children = List.map fst children in
            (* Separate adjacent texts with an element to keep the
               roundtrip exact. *)
            let rec dedup = function
              | (Dom.Text a) :: (Dom.Text b) :: rest ->
                Dom.Text a :: Dom.element "b" [ Dom.Text b ] :: dedup rest
              | x :: rest -> x :: dedup rest
              | [] -> []
            in
            word_gen >>= fun attr_value ->
            return
              (Dom.element name
                 ~attrs:[ ("class", attr_value) ]
                 (dedup children)) ) ]
  in
  tree 3

let dom_arbitrary = Q.make ~print:(Fmt.to_to_string Dom.pp) dom_gen

let prop_html_roundtrip =
  Q.Test.make ~name:"printer/parser roundtrip" ~count:200 dom_arbitrary
    (fun tree ->
       match Wqi_html.Parser.parse_fragment (Wqi_html.Printer.to_string tree) with
       | [ reparsed ] -> reparsed = tree
       | _ -> false)

(* --- condition properties --- *)

let prop_normalize_idempotent =
  Q.Test.make ~name:"label normalization idempotent" ~count:300
    printable_string (fun s ->
        let n = Condition.normalize_label s in
        Condition.normalize_label n = n)

let prop_matches_reflexive =
  Q.Test.make ~name:"condition matches itself" ~count:200
    (Q.pair printable_string (Q.small_list printable_string))
    (fun (attr, ops) ->
       Q.assume (String.trim attr <> "");
       let c = Condition.make ~operators:ops ~attribute:attr Condition.Text in
       Condition.matches ~truth:c c)

(* --- prng properties --- *)

let prop_prng_in_bounds =
  Q.Test.make ~name:"prng int in bounds" ~count:300
    (Q.pair Q.int (Q.int_range 1 1000)) (fun (seed, bound) ->
        let g = Prng.create (Int64.of_int seed) in
        let v = Prng.int g bound in
        v >= 0 && v < bound)

let prop_prng_sample =
  Q.Test.make ~name:"prng sample distinct subset" ~count:200
    (Q.triple Q.int (Q.int_bound 10) (Q.small_list Q.int))
    (fun (seed, k, items) ->
       let g = Prng.create (Int64.of_int seed) in
       let items = List.mapi (fun i x -> (i, x)) items in
       let s = Prng.sample g k items in
       List.length s = min k (List.length items)
       && List.length (List.sort_uniq compare s) = List.length s
       && List.for_all (fun x -> List.mem x items) s)

let prop_weighted_pick_member =
  Q.Test.make ~name:"weighted pick returns a member" ~count:200
    (Q.pair Q.int (Q.list_of_size (Q.Gen.int_range 1 8) (Q.float_bound_inclusive 10.)))
    (fun (seed, weights) ->
       Q.assume (List.exists (fun w -> w > 0.) weights);
       let g = Prng.create (Int64.of_int seed) in
       let items = List.mapi (fun i w -> (i, w)) weights in
       let picked = Prng.weighted_pick g items in
       picked >= 0 && picked < List.length weights)

(* --- tokenizer / extractor invariants --- *)

let prop_token_ids_dense =
  Q.Test.make ~name:"token ids dense over generated sources" ~count:25
    (Q.int_bound 10_000) (fun seed ->
        let g = Prng.create (Int64.of_int seed) in
        let source =
          Wqi_corpus.Generator.generate g ~id:"prop"
            ~domain:(Wqi_corpus.Vocabulary.find "Books") ~complexity:`Simple
            ~oog_prob:0.1 ()
        in
        let tokens = Wqi_token.Tokenize.of_html source.html in
        List.for_all2
          (fun (t : Wqi_token.Token.t) i -> t.id = i)
          tokens
          (List.init (List.length tokens) Fun.id))

let prop_extractor_deterministic =
  Q.Test.make ~name:"extractor deterministic on generated sources" ~count:10
    (Q.int_bound 10_000) (fun seed ->
        let g = Prng.create (Int64.of_int seed) in
        let source =
          Wqi_corpus.Generator.generate g ~id:"prop"
            ~domain:(Wqi_corpus.Vocabulary.find "Airfares")
            ~complexity:`Simple ~oog_prob:0.1 ()
        in
        let run () =
          List.map Condition.to_string
            (Wqi_core.Extractor.conditions (Wqi_core.Extractor.extract source.html))
        in
        run () = run ())

(* --- schedule-graph properties over random grammars --- *)

(* Random layered grammars: nonterminal i may only use components with
   larger index (or terminals), so d-edges are always acyclic; random
   preferences then stress the r-edge machinery. *)
let random_grammar_gen =
  let open Q.Gen in
  int_range 3 8 >>= fun n ->
  let sym i = Wqi_grammar.Symbol.nonterminal (Printf.sprintf "N%d" i) in
  let t_text = Wqi_grammar.Symbol.terminal "text" in
  (* Each symbol gets a base production on the terminal plus up to two
     productions over higher-indexed symbols. *)
  let production_gens =
    List.concat
      (List.init n (fun i ->
           [ ( int_bound 1000 >>= fun salt ->
               return
                 (Wqi_grammar.Production.make
                    ~name:(Printf.sprintf "p%d-base-%d" i salt)
                    ~head:(sym i) ~components:[ t_text ] ()) ) ]
           @
           if i + 1 < n then
             [ ( int_range (i + 1) (n - 1) >>= fun j ->
                 return
                   (Wqi_grammar.Production.make
                      ~name:(Printf.sprintf "p%d-uses-%d" i j)
                      ~head:(sym i)
                      ~components:[ sym j; t_text ]
                      ()) ) ]
           else []))
  in
  let rec sequence = function
    | [] -> return []
    | g :: rest ->
      g >>= fun x ->
      sequence rest >>= fun xs -> return (x :: xs)
  in
  sequence production_gens >>= fun productions ->
  list_size (int_bound 6)
    (pair (int_bound (n - 1)) (int_bound (n - 1)))
  >>= fun pref_pairs ->
  let preferences =
    List.mapi
      (fun k (w, l) ->
         Wqi_grammar.Preference.make
           ~name:(Printf.sprintf "r%d" k)
           ~winner:(sym w) ~loser:(sym l) ())
      pref_pairs
  in
  return
    (Wqi_grammar.Grammar.make ~terminals:[ t_text ] ~start:(sym 0)
       ~productions ~preferences ())

let random_grammar =
  Q.make
    ~print:(fun g ->
        Fmt.str "%a" Wqi_grammar.Grammar.pp g)
    random_grammar_gen

let index_of order sym =
  let rec go i = function
    | [] -> -1
    | x :: rest -> if Wqi_grammar.Symbol.equal x sym then i else go (i + 1) rest
  in
  go 0 order

let prop_schedule_complete =
  Q.Test.make ~name:"schedule orders every nonterminal once" ~count:100
    random_grammar (fun g ->
        let s = Wqi_grammar.Schedule.build g in
        let order = s.Wqi_grammar.Schedule.order in
        let nts = Wqi_grammar.Grammar.nonterminals g in
        List.length order = List.length nts
        && List.for_all (fun nt -> index_of order nt >= 0) nts)

let prop_schedule_d_edges =
  Q.Test.make ~name:"components scheduled before heads" ~count:100
    random_grammar (fun g ->
        let s = Wqi_grammar.Schedule.build g in
        let order = s.Wqi_grammar.Schedule.order in
        List.for_all
          (fun (p : Wqi_grammar.Production.t) ->
             List.for_all
               (fun c ->
                  Wqi_grammar.Symbol.is_terminal c
                  || Wqi_grammar.Symbol.equal c p.head
                  || index_of order c < index_of order p.head)
               p.components)
          g.productions)

let prop_schedule_r_edges =
  Q.Test.make ~name:"direct r-edges honoured, transformed go via parents"
    ~count:100 random_grammar (fun g ->
        let s = Wqi_grammar.Schedule.build g in
        let order = s.Wqi_grammar.Schedule.order in
        let transformed =
          List.map (fun (r, _) -> r.Wqi_grammar.Preference.name)
            s.Wqi_grammar.Schedule.transformed
        in
        let relaxed =
          List.map (fun r -> r.Wqi_grammar.Preference.name)
            s.Wqi_grammar.Schedule.relaxed
        in
        List.for_all
          (fun (r : Wqi_grammar.Preference.t) ->
             Wqi_grammar.Preference.same_symbol r
             || List.mem r.name relaxed
             ||
             if List.mem r.name transformed then
               List.for_all
                 (fun parent ->
                    Wqi_grammar.Symbol.equal parent r.winner
                    || index_of order r.winner < index_of order parent)
                 (Wqi_grammar.Grammar.parents_of g r.loser)
             else index_of order r.winner < index_of order r.loser)
          g.preferences)

(* --- parser invariants over generated sources --- *)

let parse_generated seed =
  let g = Prng.create (Int64.of_int seed) in
  let domains = Wqi_corpus.Vocabulary.all in
  let domain = List.nth domains (seed mod List.length domains) in
  let source =
    Wqi_corpus.Generator.generate g ~id:"prop" ~domain ~complexity:`Rich
      ~oog_prob:0.15 ()
  in
  let tokens = Wqi_token.Tokenize.of_html source.html in
  (tokens, Wqi_parser.Engine.parse Wqi_stdgrammar.Std.grammar tokens)

let prop_maximal_non_subsuming =
  Q.Test.make ~name:"maximal trees pairwise non-subsuming" ~count:15
    (Q.int_bound 10_000) (fun seed ->
        let _tokens, r = parse_generated seed in
        let trees = r.Wqi_parser.Engine.maximal in
        List.for_all
          (fun (a : Wqi_grammar.Instance.t) ->
             List.for_all
               (fun (b : Wqi_grammar.Instance.t) ->
                  a.id = b.id
                  || not (Wqi_grammar.Bitset.subset a.cover b.cover))
               trees)
          trees)

let prop_maximal_alive_and_parentless =
  Q.Test.make ~name:"maximal trees are live tops" ~count:15
    (Q.int_bound 10_000) (fun seed ->
        let _tokens, r = parse_generated seed in
        List.for_all
          (fun (t : Wqi_grammar.Instance.t) ->
             t.alive
             && not
                  (List.exists
                     (fun (p : Wqi_grammar.Instance.t) -> p.alive)
                     t.parents))
          r.Wqi_parser.Engine.maximal)

let prop_complete_covers_everything =
  Q.Test.make ~name:"complete parse covers every token" ~count:15
    (Q.int_bound 10_000) (fun seed ->
        let tokens, r = parse_generated seed in
        match r.Wqi_parser.Engine.complete with
        | None -> true
        | Some top ->
          Wqi_grammar.Bitset.cardinal top.cover = List.length tokens)

let prop_live_trees_consistent =
  Q.Test.make ~name:"children of live maximal trees are alive" ~count:15
    (Q.int_bound 10_000) (fun seed ->
        let _tokens, r = parse_generated seed in
        let rec ok (i : Wqi_grammar.Instance.t) =
          i.alive && List.for_all ok i.children
        in
        List.for_all ok r.Wqi_parser.Engine.maximal)

let prop_stats_bounds =
  Q.Test.make ~name:"parser stats are internally consistent" ~count:15
    (Q.int_bound 10_000) (fun seed ->
        let _tokens, r = parse_generated seed in
        let s = r.Wqi_parser.Engine.stats in
        s.live <= s.created && s.temporary <= s.created
        && s.pruned + s.rolled_back <= s.created
        && s.live = List.length r.Wqi_parser.Engine.all_live)

let prop_extractor_total =
  Q.Test.make ~name:"extractor never raises on random markup" ~count:100
    printable_string (fun s ->
        ignore (Wqi_core.Extractor.extract s);
        true)

(* --- budget / degradation properties --- *)

module Budget = Wqi_core.Budget
module Extractor = Wqi_core.Extractor

(* Markup soup: random concatenation of tag fragments, broken entities,
   stray brackets and form markup — the adversarial end of "arbitrary
   input" for the totality guarantee. *)
let soup_gen =
  let open Q.Gen in
  let fragment =
    oneofl
      [ "<"; ">"; "</"; "<!"; "<!--"; "-->"; "&"; "&amp"; "&#x"; "\"";
        "='"; "<select"; "<option selected"; "</select>"; "<input";
        "type=checkbox"; "<table><tr><td"; "</b></i>"; "<form action=";
        "<textarea>"; "name=\""; " "; "from"; "to"; "<script>"; "<";
        "<div style=\"width:"; "9999px\""; "<br/>"; "\x00"; "\xff" ]
  in
  list_size (int_range 0 40) fragment >>= fun parts ->
  return (String.concat "" parts)

let soup = Q.make ~print:(Printf.sprintf "%S") soup_gen

let prop_extract_total_on_soup =
  Q.Test.make ~name:"extract never raises on markup soup" ~count:150 soup
    (fun s ->
       ignore (Extractor.extract s);
       true)

let generated_html seed =
  let g = Prng.create (Int64.of_int seed) in
  let domains = Wqi_corpus.Vocabulary.all in
  let domain = List.nth domains (seed mod List.length domains) in
  let source =
    Wqi_corpus.Generator.generate g ~id:"prop" ~domain ~complexity:`Rich
      ~oog_prob:0.15 ()
  in
  source.Wqi_corpus.Generator.html

let prop_extract_total_on_truncated =
  Q.Test.make ~name:"extract never raises on truncated documents" ~count:40
    (Q.pair (Q.int_bound 10_000) (Q.int_bound 10_000)) (fun (seed, cut) ->
        let html = generated_html seed in
        let cut = cut mod max 1 (String.length html) in
        ignore (Extractor.extract (String.sub html 0 cut));
        true)

let tiny_budget_config seed =
  (* Vary which cap bites so every stage's degradation path gets hit. *)
  let budget =
    match seed mod 5 with
    | 0 -> Budget.make ~max_html_nodes:(1 + (seed mod 37)) ()
    | 1 -> Budget.make ~max_boxes:(1 + (seed mod 53)) ()
    | 2 -> Budget.make ~max_tokens:(1 + (seed mod 17)) ()
    | 3 -> Budget.make ~max_instances:(1 + (seed mod 29)) ()
    | _ -> Budget.make ~max_rounds:(1 + (seed mod 7)) ()
  in
  Extractor.Config.with_budget budget Extractor.Config.default

let prop_budgeted_run_total =
  Q.Test.make ~name:"budgeted run never raises, outcome well-formed" ~count:40
    (Q.int_bound 10_000) (fun seed ->
        let config = tiny_budget_config seed in
        let e = Extractor.run config (Extractor.Html (generated_html seed)) in
        match e.Extractor.outcome with
        | Budget.Complete -> true
        | Budget.Degraded trips -> trips <> []
        | Budget.Failed _ -> false)

let prop_degraded_token_prefix_dense =
  Q.Test.make ~name:"degraded token prefix keeps dense ids" ~count:40
    (Q.pair (Q.int_bound 10_000) (Q.int_range 1 20)) (fun (seed, cap) ->
        let gauge = Budget.start (Budget.make ~max_tokens:cap ()) in
        let tokens = Wqi_token.Tokenize.of_html ~gauge (generated_html seed) in
        List.length tokens <= cap
        && List.for_all2
             (fun (t : Wqi_token.Token.t) i -> t.id = i)
             tokens
             (List.init (List.length tokens) Fun.id))

let suite =
  List.map to_alcotest
    [ prop_union_commutative;
      prop_union_models_list_union;
      prop_inter_subset;
      prop_disjoint_iff_empty_inter;
      prop_cardinal;
      prop_strict_subset_irreflexive;
      prop_union_contains;
      prop_overlap_symmetric;
      prop_left_of_antisymmetric;
      prop_distance_symmetric;
      prop_entity_roundtrip;
      prop_attribute_roundtrip;
      prop_html_roundtrip;
      prop_normalize_idempotent;
      prop_matches_reflexive;
      prop_prng_in_bounds;
      prop_prng_sample;
      prop_weighted_pick_member;
      prop_token_ids_dense;
      prop_extractor_deterministic;
      prop_schedule_complete;
      prop_schedule_d_edges;
      prop_schedule_r_edges;
      prop_maximal_non_subsuming;
      prop_maximal_alive_and_parentless;
      prop_complete_covers_everything;
      prop_live_trees_consistent;
      prop_stats_bounds;
      prop_extractor_total;
      prop_extract_total_on_soup;
      prop_extract_total_on_truncated;
      prop_budgeted_run_total;
      prop_degraded_token_prefix_dense ]
