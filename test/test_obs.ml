(* Observability must be observational: attaching a trace — any trace,
   even one too small to hold the event stream — must leave every
   extraction byte on the wire unchanged.  Plus unit coverage of the
   tracer itself: ring-buffer wrap/drop accounting, Chrome trace-event
   JSON well-formedness and escaping, the profile table, and a golden
   test pinning the scrubbed Chrome export of the golden fixture. *)

module Extractor = Wqi_core.Extractor
module Trace = Wqi_obs.Trace

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

(* --- tracing is observational --- *)

(* Same corpus as the parser equivalence suite: 60 generated sources
   across the three domains, both complexity levels, with noise. *)
let corpus_sources () =
  let g = Wqi_corpus.Prng.create 0xE9015L in
  let domains = Wqi_corpus.Vocabulary.core_three in
  List.init 60 (fun i ->
      Wqi_corpus.Generator.generate g
        ~id:(Printf.sprintf "equiv-%02d" i)
        ~domain:(List.nth domains (i mod 3))
        ~complexity:(if i mod 2 = 0 then `Simple else `Rich)
        ~oog_prob:(if i mod 5 = 0 then 0.1 else 0.)
        ())

let test_tracing_observational () =
  let config = Extractor.Config.default in
  List.iter
    (fun (s : Wqi_corpus.Generator.source) ->
       let export ?trace () =
         Extractor.export ~timings:false ~name:s.id
           (Extractor.run ?trace config (Extractor.Html s.html))
       in
       let untraced = export () in
       let traced = export ~trace:(Trace.create ()) () in
       Alcotest.(check string) (s.id ^ ": traced = untraced") untraced traced;
       (* A saturated ring (capacity 2) drops most events; dropping must
          be as invisible as tracing. *)
       let tiny = Trace.create ~capacity:2 () in
       let saturated = export ~trace:tiny () in
       Alcotest.(check string)
         (s.id ^ ": saturated trace = untraced")
         untraced saturated;
       Alcotest.(check bool) (s.id ^ ": tiny ring dropped") true
         (Trace.dropped tiny > 0))
    (corpus_sources ())

(* --- ring buffer --- *)

let test_ring_wrap () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.instant (Some t) (Printf.sprintf "ev%d" i)
  done;
  Alcotest.(check int) "length saturates at capacity" 4 (Trace.length t);
  Alcotest.(check int) "dropped counts the overflow" 6 (Trace.dropped t);
  let json = Trace.to_chrome_json t in
  (* Oldest events were overwritten: the survivors are the last four. *)
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " survives") true (contains json name))
    [ "ev6"; "ev7"; "ev8"; "ev9" ];
  Alcotest.(check bool) "ev0 overwritten" false (contains json "\"ev0\"");
  Alcotest.(check bool) "drop count exported" true
    (contains json "\"dropped\": \"6\"")

let test_disabled_is_free_of_effects () =
  (* The [None] path must record nothing anywhere — it is the default
     for every caller, so it must be inert by construction. *)
  Trace.instant None "nothing";
  Trace.span None "nothing" ~t0:0. ~t1:1.;
  Alcotest.(check int) "with_span still runs the body" 7
    (Trace.with_span None "body" (fun () -> 7))

(* --- Chrome export --- *)

let test_chrome_json_escaping () =
  let t = Trace.create () in
  Trace.instant (Some t)
    ~args:[ ("note", Trace.Str "a\"b\\c\nd\tt\x01e") ]
    "weird \"name\"";
  let json = Trace.to_chrome_json t in
  Alcotest.(check bool) "name escaped" true
    (contains json "\"weird \\\"name\\\"\"");
  Alcotest.(check bool) "arg escaped" true
    (contains json "a\\\"b\\\\c\\nd\\tt\\u0001e");
  Alcotest.(check bool) "instant phase" true (contains json "\"ph\": \"i\"")

let test_chrome_span_fields () =
  let t = Trace.create () in
  Trace.span (Some t) ~cat:"stage"
    ~args:[ ("n", Trace.Int 3); ("r", Trace.Float 0.5); ("b", Trace.Bool true) ]
    "work" ~t0:0. ~t1:0.25;
  let json = Trace.to_chrome_json ~scrub_timestamps:true t in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("has " ^ needle) true (contains json needle))
    [ "\"traceEvents\"";
      "\"ph\": \"X\"";
      "\"cat\": \"stage\"";
      "\"name\": \"work\"";
      "\"n\": 3";
      "\"r\": 0.5";
      "\"b\": true";
      "\"displayTimeUnit\": \"ms\"" ]

(* --- profile table --- *)

let test_profile () =
  let t = Trace.create () in
  Trace.span (Some t) "parse" ~t0:0. ~t1:0.08;
  Trace.span (Some t) "parse" ~t0:0.1 ~t1:0.12;
  Trace.span (Some t) "html" ~t0:0. ~t1:0.01;
  Trace.span (Some t) "total" ~t0:0. ~t1:0.2;
  Trace.instant (Some t) ~args:[ ("created", Trace.Int 42) ] "budget_trip";
  let p = Trace.profile t in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("profile has " ^ needle) true (contains p needle))
    [ "parse"; "html"; "total"; "budget_trip"; "created=42" ];
  (* parse: 2 calls, 100 ms total. *)
  Alcotest.(check bool) "parse row aggregated" true (contains p "100.0")

(* --- golden Chrome trace --- *)

let test_golden_trace () =
  let html = read_file (Filename.concat "golden" "complete.html") in
  let trace = Trace.create () in
  ignore (Extractor.run ~trace Extractor.Config.default (Extractor.Html html));
  let actual = Trace.to_chrome_json ~scrub_timestamps:true trace ^ "\n" in
  let expected = read_file (Filename.concat "golden" "trace.json") in
  if expected <> actual then
    Alcotest.failf
      "scrubbed Chrome trace drifted from its golden file.@.--- golden@.\
       %s@.--- actual@.%s@.(regenerate with `dune exec \
       test/golden/gen_golden.exe -- test/golden` if the change is \
       intentional)"
      expected actual

let suite =
  [ ("tracing is observational over 60 sources", `Quick,
     test_tracing_observational);
    ("ring buffer wraps and counts drops", `Quick, test_ring_wrap);
    ("disabled tracer is inert", `Quick, test_disabled_is_free_of_effects);
    ("chrome JSON escaping", `Quick, test_chrome_json_escaping);
    ("chrome span fields", `Quick, test_chrome_span_fields);
    ("profile table aggregates spans", `Quick, test_profile);
    ("golden scrubbed chrome trace", `Quick, test_golden_trace) ]
