(* Equivalence suite: the delta-driven (semi-naive) engine — with and
   without spatial candidate indexing — must be observationally
   identical to the naive reference oracle — not just "equivalent
   trees" but the same instance ids, because ids are the tie-breaker
   for maximal-tree selection and preference enforcement order.  The
   suite sweeps generated corpus sources across grammar complexities
   and parser configurations (a three-way pass per source:
   oracle / semi-naive unhinted / semi-naive hinted), plus the
   single-word bitset specialization boundary the fast path relies
   on, plus a property test that randomly drops production hints —
   hints are pure pruning advice, so any subset of them must leave
   every observable unchanged. *)

module G = Wqi_grammar
module Symbol = G.Symbol
module Instance = G.Instance
module Bitset = G.Bitset
module Engine = Wqi_parser.Engine
module Generator = Wqi_corpus.Generator
module Tokenize = Wqi_token.Tokenize

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let naive options = { options with Engine.semi_naive = false }
let unhinted options = { options with Engine.use_hints = false }

let ids instances = List.map (fun (i : Instance.t) -> i.Instance.id) instances

let tree_strings instances =
  List.map (Fmt.str "%a" Instance.pp_tree) instances

let model_strings (result : Engine.result) =
  List.concat_map
    (fun tree ->
       List.map
         (fun (c, toks) ->
            Fmt.str "%a@%a" Wqi_model.Condition.pp c
              Fmt.(list ~sep:(any ",") int)
              toks)
         (Instance.collect_conditions tree))
    result.Engine.maximal

let check_equivalent ctx (fast : Engine.result) (slow : Engine.result) =
  let check_list what = Alcotest.(check (list string)) (ctx ^ ": " ^ what) in
  check_int (ctx ^ ": created") slow.Engine.stats.created
    fast.Engine.stats.created;
  check_int (ctx ^ ": live") slow.Engine.stats.live fast.Engine.stats.live;
  check_int (ctx ^ ": pruned") slow.Engine.stats.pruned
    fast.Engine.stats.pruned;
  check_int (ctx ^ ": rolled back") slow.Engine.stats.rolled_back
    fast.Engine.stats.rolled_back;
  check_bool (ctx ^ ": truncated") slow.Engine.stats.truncated
    fast.Engine.stats.truncated;
  check_bool (ctx ^ ": complete") (slow.Engine.complete <> None)
    (fast.Engine.complete <> None);
  Alcotest.(check (list int))
    (ctx ^ ": live ids")
    (ids slow.Engine.all_live) (ids fast.Engine.all_live);
  Alcotest.(check (list int))
    (ctx ^ ": maximal ids")
    (ids slow.Engine.maximal) (ids fast.Engine.maximal);
  check_list "maximal trees" (tree_strings slow.Engine.maximal)
    (tree_strings fast.Engine.maximal);
  check_list "semantic model" (model_strings slow) (model_strings fast)

(* Three-way: the hinted semi-naive engine (the default), the same
   engine with hints disabled, and the naive oracle.  [fst] is the
   hinted result; the hints-off and oracle results are both checked
   against it.  The guard/index counters legitimately differ between
   the passes (that is the optimization) and are deliberately not part
   of [check_equivalent]. *)
let parse_both ?(options = Engine.default_options) grammar tokens =
  let hinted = Engine.parse ~options grammar tokens in
  let plain = Engine.parse ~options:(unhinted options) grammar tokens in
  check_equivalent "hints-on vs hints-off" hinted plain;
  Alcotest.(check bool)
    "hints never add guard work" true
    (hinted.Engine.stats.guards_tried <= plain.Engine.stats.guards_tried);
  let slow = Engine.parse ~options:(naive options) grammar tokens in
  (hinted, slow)

(* 60 generated sources across the three domains, both complexity
   levels, with a sprinkle of out-of-grammar noise. *)
let corpus_sources () =
  let g = Wqi_corpus.Prng.create 0xE9015L in
  let domains = Wqi_corpus.Vocabulary.core_three in
  List.init 60 (fun i ->
      Generator.generate g
        ~id:(Printf.sprintf "equiv-%02d" i)
        ~domain:(List.nth domains (i mod 3))
        ~complexity:(if i mod 2 = 0 then `Simple else `Rich)
        ~oog_prob:(if i mod 5 = 0 then 0.1 else 0.)
        ())

let test_corpus_equivalence () =
  let grammar = Wqi_stdgrammar.Std.grammar in
  List.iter
    (fun (s : Generator.source) ->
       let tokens = Tokenize.of_html s.html in
       let fast, slow = parse_both grammar tokens in
       check_equivalent s.id fast slow)
    (corpus_sources ())

(* The ablation configurations let instances breed before pruning, and
   the naive oracle's cost explodes with the instance count (that is the
   point of the delta engine) — so these stick to Simple sources and a
   tight budget to keep the oracle side affordable. *)
let simple_sources n =
  corpus_sources ()
  |> List.filteri (fun i _ -> i mod 2 = 0)
  |> List.filteri (fun i _ -> i < n)

let test_corpus_equivalence_unscheduled () =
  let grammar = Wqi_stdgrammar.Std.grammar in
  let options =
    { Engine.default_options with use_scheduling = false;
      max_instances = 2_000 }
  in
  List.iter
    (fun (s : Generator.source) ->
       let tokens = Tokenize.of_html s.html in
       let fast, slow = parse_both ~options grammar tokens in
       check_equivalent (s.id ^ "/late-pruning") fast slow)
    (simple_sources 8)

let test_corpus_equivalence_exhaustive () =
  let grammar = Wqi_stdgrammar.Std.grammar in
  let options =
    { Engine.default_options with use_preferences = false;
      max_instances = 2_000 }
  in
  List.iter
    (fun (s : Generator.source) ->
       let tokens = Tokenize.of_html s.html in
       let fast, slow = parse_both ~options grammar tokens in
       check_equivalent (s.id ^ "/exhaustive") fast slow)
    (simple_sources 6)

let test_truncation_equivalence () =
  (* The instance budget must bite at the identical creation step. *)
  let grammar = Wqi_stdgrammar.Std.grammar in
  let s = List.nth (corpus_sources ()) 1 in
  let tokens = Tokenize.of_html s.Generator.html in
  let options =
    { Engine.default_options with use_preferences = false; max_instances = 60 }
  in
  let fast, slow = parse_both ~options grammar tokens in
  check_bool "truncated" true fast.Engine.stats.truncated;
  check_equivalent "truncation" fast slow

(* --- randomized truncation fuzz --- *)

module Budget = Wqi_budget.Budget

let trip_strings gauge =
  List.map (Fmt.str "%a" Budget.pp_trip) (Budget.trips gauge)

(* Budget degradation is part of the observable contract: wherever the
   axe falls — engine-level instance cap, gauge-level instance cap, or
   a fix-point round cap — the arena engine (hinted and unhinted) and
   the naive oracle must degrade *identically*: same truncation point,
   same surviving instance ids, same maximal trees, same recorded
   trips.  Random (seeded) trip points over corpus sources probe axe
   positions no hand-written case would pick: mid-round, mid-assembly,
   one short of a preference kill.  Deadlines are deliberately absent —
   a wall-clock trip lands nondeterministically by nature, while the
   deterministic axes share all of its trip machinery. *)
let test_truncation_fuzz () =
  let grammar = Wqi_stdgrammar.Std.grammar in
  let rng = Wqi_corpus.Prng.create 0xF0221L in
  let sources = corpus_sources () |> List.filteri (fun i _ -> i < 10) in
  List.iter
    (fun (s : Generator.source) ->
       let tokens = Tokenize.of_html s.Generator.html in
       let ntok = List.length tokens in
       let created = (Engine.parse grammar tokens).Engine.stats.created in
       for round = 0 to 2 do
         (* A cap below the token count would truncate tokenization
            itself; anywhere in (ntok, created) lands mid-derivation. *)
         let cap =
           if created <= ntok + 1 then ntok + 1
           else ntok + 1 + Wqi_corpus.Prng.int rng (created - ntok - 1)
         in
         let budget, options =
           match round with
           | 0 -> (None, { Engine.default_options with max_instances = cap })
           | 1 -> (Some (Budget.make ~max_instances:cap ()),
                   Engine.default_options)
           | _ -> (Some (Budget.make
                           ~max_rounds:(1 + Wqi_corpus.Prng.int rng 4) ()),
                   Engine.default_options)
         in
         let ctx = Printf.sprintf "%s/fuzz-%d(cap %d)" s.Generator.id round cap in
         let run options =
           match budget with
           | None -> (Engine.parse ~options grammar tokens, [])
           | Some b ->
             let gauge = Budget.start b in
             let r = Engine.parse ~gauge ~options grammar tokens in
             (r, trip_strings gauge)
         in
         let fast, fast_trips = run Engine.{ options with use_hints = true } in
         let plain, plain_trips = run (unhinted options) in
         let slow, slow_trips = run (naive options) in
         if round < 2 && cap < created then
           check_bool (ctx ^ ": tripped") true fast.Engine.stats.truncated;
         check_equivalent (ctx ^ "/hints-off") fast plain;
         check_equivalent (ctx ^ "/naive") fast slow;
         Alcotest.(check (list string))
           (ctx ^ ": trips vs hints-off") fast_trips plain_trips;
         Alcotest.(check (list string))
           (ctx ^ ": trips vs naive") fast_trips slow_trips
       done)
    sources

(* --- single-word bitset specialization boundary --- *)

let boundary_universes = [ 62; 63; 64; 65; 126; 127 ]

let test_bitset_boundary_membership () =
  List.iter
    (fun n ->
       let ctx i = Printf.sprintf "n=%d bit=%d" n i in
       let all = Bitset.of_list n (List.init n Fun.id) in
       check_int (Printf.sprintf "n=%d full cardinal" n) n
         (Bitset.cardinal all);
       List.iter
         (fun i ->
            let s = Bitset.singleton n i in
            check_bool (ctx i ^ " mem") true (Bitset.mem s i);
            check_int (ctx i ^ " cardinal") 1 (Bitset.cardinal s);
            Alcotest.(check (list int)) (ctx i ^ " elements") [ i ]
              (Bitset.elements s);
            check_bool (ctx i ^ " subset of all") true (Bitset.subset s all);
            check_bool (ctx i ^ " all not subset") false
              (Bitset.subset all s);
            check_bool (ctx i ^ " disjoint empty") true
              (Bitset.disjoint s (Bitset.empty n)))
         [ 0; n - 2; n - 1 ])
    boundary_universes

let test_bitset_boundary_algebra () =
  List.iter
    (fun n ->
       let ctx = Printf.sprintf "n=%d" n in
       let evens = Bitset.of_list n (List.filter (fun i -> i mod 2 = 0) (List.init n Fun.id)) in
       let odds = Bitset.of_list n (List.filter (fun i -> i mod 2 = 1) (List.init n Fun.id)) in
       check_bool (ctx ^ " evens/odds disjoint") true
         (Bitset.disjoint evens odds);
       check_int (ctx ^ " split cardinals") n
         (Bitset.cardinal evens + Bitset.cardinal odds);
       let union = Bitset.union evens odds in
       check_int (ctx ^ " union cardinal") n (Bitset.cardinal union);
       check_bool (ctx ^ " union equal of_list") true
         (Bitset.equal union (Bitset.of_list n (List.init n Fun.id)));
       check_bool (ctx ^ " inter empty") true
         (Bitset.is_empty (Bitset.inter evens odds));
       (* union_into over a private copy must match union and leave the
          source untouched. *)
       let acc = Bitset.union_into ~into:(Bitset.copy evens) odds in
       check_bool (ctx ^ " union_into equals union") true
         (Bitset.equal acc union);
       check_int (ctx ^ " source unchanged") ((n + 1) / 2)
         (Bitset.cardinal evens))
    boundary_universes

let test_bitset_universe_mismatch () =
  (* 63 is single-word, 64 multi-word: mixed-representation operations
     must fail loudly, exactly like same-representation size mismatches. *)
  let a = Bitset.of_list 63 [ 0; 62 ] in
  let b = Bitset.of_list 64 [ 0; 63 ] in
  Alcotest.check_raises "union across boundary"
    (Invalid_argument "Bitset: universe mismatch") (fun () ->
        ignore (Bitset.union a b));
  Alcotest.check_raises "disjoint across boundary"
    (Invalid_argument "Bitset: universe mismatch") (fun () ->
        ignore (Bitset.disjoint a b));
  check_bool "equal across boundary is false" false (Bitset.equal a b)

let test_parse_across_boundary () =
  (* A token row wider than one word exercises the Big representation
     through the whole engine; the two engines must still agree. *)
  let grammar = Wqi_stdgrammar.Std.grammar in
  let html =
    let row i =
      Printf.sprintf
        "<tr><td>Field%02d:</td><td><input type=\"text\" name=\"f%d\"></td></tr>"
        i i
    in
    "<form><table>"
    ^ String.concat "" (List.init 32 row)
    ^ "</table></form>"
  in
  let tokens = Tokenize.of_html html in
  check_bool "crosses the word boundary" true (List.length tokens > 63);
  (* A uniform table this wide breeds combinatorially many instances, so
     keep a tight budget: the point is the multi-word covers, not the
     blowup, and truncation must bite identically anyway. *)
  let options = { Engine.default_options with max_instances = 5_000 } in
  let fast, slow = parse_both ~options grammar tokens in
  check_equivalent "wide interface" fast slow

(* --- hint-subset property --- *)

(* Hints are pruning advice, never semantics: a grammar carrying any
   subset of the standard grammar's hints must parse every source to
   the byte-identical result.  Random subsets (fixed seed) probe the
   interaction of indexed and scanned slots within one production —
   e.g. a kept second-slot hint with a dropped first-slot one. *)
let with_hint_subset rng grammar =
  let module P = G.Production in
  let productions =
    List.map
      (fun (p : P.t) ->
         P.make ~name:p.P.name ~head:p.P.head ~components:p.P.components
           ~guard:p.P.guard ~build:p.P.build
           ~hints:
             (List.filter (fun _ -> Wqi_corpus.Prng.bool rng) p.P.hints)
           ())
      grammar.G.Grammar.productions
  in
  G.Grammar.make ~terminals:grammar.G.Grammar.terminals
    ~start:grammar.G.Grammar.start ~productions
    ~preferences:grammar.G.Grammar.preferences ()

let test_random_hint_subsets () =
  let grammar = Wqi_stdgrammar.Std.grammar in
  let rng = Wqi_corpus.Prng.create 0x41D7L in
  let sources = simple_sources 6 in
  for round = 1 to 5 do
    let subset = with_hint_subset rng grammar in
    List.iter
      (fun (s : Generator.source) ->
         let tokens = Tokenize.of_html s.Generator.html in
         let full = Engine.parse grammar tokens in
         let dropped = Engine.parse subset tokens in
         check_equivalent
           (Printf.sprintf "%s/hint-subset-%d" s.Generator.id round)
           dropped full)
      sources
  done

let suite =
  [ ("delta = naive on 60 corpus sources", `Quick, test_corpus_equivalence);
    ("delta = naive without scheduling", `Quick,
     test_corpus_equivalence_unscheduled);
    ("delta = naive exhaustive", `Quick, test_corpus_equivalence_exhaustive);
    ("delta = naive under truncation", `Quick, test_truncation_equivalence);
    ("randomized truncation fuzz degrades identically", `Quick,
     test_truncation_fuzz);
    ("bitset word-boundary membership", `Quick,
     test_bitset_boundary_membership);
    ("bitset word-boundary algebra", `Quick, test_bitset_boundary_algebra);
    ("bitset universe mismatch", `Quick, test_bitset_universe_mismatch);
    ("parse across the word boundary", `Quick, test_parse_across_boundary);
    ("random hint subsets are observationally inert", `Quick,
     test_random_hint_subsets) ]
