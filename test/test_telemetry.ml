(* Prometheus text-exposition correctness for the server's telemetry
   registry: every family carries # HELP and # TYPE before its samples,
   histogram buckets are cumulative with the +Inf bucket equal to the
   count, label values are escaped per the exposition format, and the
   body ends with exactly one trailing newline.

   Also covers merge-on-scrape: per-domain arenas snapshotted and
   merged must render the exact exposition a single arena fed the same
   observations renders (modulo the uptime gauge, which depends on
   arena creation time), and the merged output must satisfy every
   exposition contract above. *)

module Telemetry = Wqi_serve.Telemetry

let render t = Telemetry.render t ~extra:[]

let lines body = String.split_on_char '\n' body

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Sample value of the first line starting with [prefix]. *)
let sample body prefix =
  lines body
  |> List.find_map (fun line ->
      if starts_with prefix line then
        match String.rindex_opt line ' ' with
        | Some i ->
          float_of_string_opt
            (String.sub line (i + 1) (String.length line - i - 1))
        | None -> None
      else None)

let observed () =
  let t = Telemetry.create ~version:"1.0.0" () in
  (* Latencies chosen to land in distinct buckets of
     [0.0005; 0.001; 0.0025; 0.005; ...]. *)
  Telemetry.observe_request t ~code:200 ~outcome:`Complete
    ~stage_seconds:
      [ ("html", 0.0004); ("layout", 0.0004); ("classify", 0.0004);
        ("parse", 0.002); ("merge", 0.0004) ]
    ~seconds:0.0008 ();
  Telemetry.observe_request t ~code:200 ~outcome:`Degraded
    ~stage_seconds:[ ("parse", 0.004); ("bogus-stage", 1.0) ]
    ~seconds:0.002 ();
  Telemetry.observe_request t ~code:404 ~seconds:10_000. ();
  t

let check_help_and_type body =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun line ->
       if starts_with "# HELP " line then begin
         match String.split_on_char ' ' line with
         | _ :: _ :: name :: _ -> Hashtbl.replace seen name `Help
         | _ -> Alcotest.failf "malformed HELP line %S" line
       end
       else if starts_with "# TYPE " line then begin
         match String.split_on_char ' ' line with
         | _ :: _ :: name :: _ ->
           if Hashtbl.find_opt seen name <> Some `Help then
             Alcotest.failf "TYPE before HELP for %s" name;
           Hashtbl.replace seen name `Type
         | _ -> Alcotest.failf "malformed TYPE line %S" line
       end
       else if line <> "" then begin
         (* A sample line: its family (name up to '{' or '_bucket'/'_sum'/
            '_count' suffix or ' ') must have HELP and TYPE already. *)
         let name =
           match String.index_opt line '{' with
           | Some i -> String.sub line 0 i
           | None ->
             (match String.index_opt line ' ' with
              | Some i -> String.sub line 0 i
              | None -> line)
         in
         let family =
           List.fold_left
             (fun acc suffix ->
                if acc <> name then acc
                else if
                  String.length name > String.length suffix
                  && String.sub name
                       (String.length name - String.length suffix)
                       (String.length suffix)
                     = suffix
                then
                  String.sub name 0 (String.length name - String.length suffix)
                else acc)
             name
             [ "_bucket"; "_sum"; "_count" ]
         in
         if Hashtbl.find_opt seen family <> Some `Type then
           Alcotest.failf "sample %S before # TYPE %s" line family
       end)
    (lines body)

let test_help_and_type_precede_samples () =
  check_help_and_type (render (observed ()))

let check_histogram body ~prefix ~labels =
  let bucket le =
    let sel =
      if labels = "" then Printf.sprintf "%s_bucket{le=\"%s\"}" prefix le
      else Printf.sprintf "%s_bucket{%s,le=\"%s\"}" prefix labels le
    in
    match sample body sel with
    | Some v -> v
    | None -> Alcotest.failf "missing bucket %s" sel
  in
  let uppers =
    [ "0.0005"; "0.001"; "0.0025"; "0.005"; "0.01"; "0.025"; "0.05"; "0.1";
      "0.25"; "0.5"; "1"; "2.5"; "5"; "+Inf" ]
  in
  let _ =
    List.fold_left
      (fun prev le ->
         let v = bucket le in
         if v < prev then
           Alcotest.failf "%s: bucket le=%s not cumulative (%g < %g)" prefix
             le v prev;
         v)
      0. uppers
  in
  let count_sel =
    if labels = "" then prefix ^ "_count " else prefix ^ "_count{" ^ labels ^ "}"
  in
  match sample body count_sel with
  | None -> Alcotest.failf "missing %s" count_sel
  | Some count ->
    Alcotest.(check (float 0.))
      (prefix ^ ": +Inf bucket = count")
      count (bucket "+Inf")

let test_request_histogram_cumulative () =
  let body = render (observed ()) in
  check_histogram body ~prefix:"wqi_request_seconds" ~labels:"";
  (* 10000 s falls beyond every finite bucket: +Inf must exceed le=5. *)
  let v le =
    Option.get
      (sample body (Printf.sprintf "wqi_request_seconds_bucket{le=\"%s\"}" le))
  in
  Alcotest.(check (float 0.)) "overflow sample only in +Inf" 1. (v "+Inf" -. v "5")

let test_stage_histograms () =
  let body = render (observed ()) in
  List.iter
    (fun stage ->
       check_histogram body ~prefix:"wqi_stage_seconds"
         ~labels:(Printf.sprintf "stage=\"%s\"" stage))
    [ "html"; "layout"; "classify"; "parse"; "merge" ];
  (* parse saw two samples (0.002 and 0.004), the other stages one. *)
  Alcotest.(check (option (float 0.)))
    "parse count" (Some 2.)
    (sample body "wqi_stage_seconds_count{stage=\"parse\"}");
  Alcotest.(check (option (float 0.)))
    "merge count" (Some 1.)
    (sample body "wqi_stage_seconds_count{stage=\"merge\"}");
  (* Unknown stage names are dropped, not invented as new series. *)
  Alcotest.(check bool) "bogus stage ignored" false
    (contains body "bogus-stage")

let test_label_escaping () =
  let t = Telemetry.create ~version:"v\"1\\a\nb" () in
  let body = render t in
  Alcotest.(check bool) "escaped version label" true
    (contains body "wqi_build_info{version=\"v\\\"1\\\\a\\nb\"} 1")

let test_build_info_and_uptime () =
  let body = render (observed ()) in
  Alcotest.(check bool) "build info" true
    (contains body "wqi_build_info{version=\"1.0.0\"} 1");
  match sample body "wqi_uptime_seconds " with
  | Some v when v >= 0. -> ()
  | _ -> Alcotest.fail "wqi_uptime_seconds missing or negative"

let test_trailing_newline () =
  let body = render (observed ()) in
  Alcotest.(check bool) "non-empty" true (String.length body > 0);
  Alcotest.(check char) "ends with newline" '\n'
    body.[String.length body - 1];
  Alcotest.(check bool) "no blank last line" false
    (String.length body > 1 && body.[String.length body - 2] = '\n')

(* --- merge-on-scrape --- *)

(* Uptime is the one sample legitimately sensitive to when an arena was
   created; everything else must merge exactly. *)
let strip_uptime body =
  lines body
  |> List.filter (fun l -> not (starts_with "wqi_uptime_seconds " l))
  |> String.concat "\n"

let mk_stats i : Wqi_parser.Engine.stats =
  { created = (3 * i) + 1;
    live = i;
    pruned = i / 2;
    rolled_back = i mod 2;
    temporary = i mod 3;
    truncated = false;
    guards_tried = (10 * i) + 5;
    guards_admitted = 4 * i;
    index_probes = 2 * i;
    index_pruned = i }

(* Property: K per-domain arenas, each fed a slice of an observation
   stream, snapshot + merge + render == one arena fed the whole
   stream.  The stream cycles codes, outcomes, latencies (spanning
   every bucket including +Inf), stage timings, parser stats, cache
   hits and sheds, so every merged field is exercised. *)
let test_merge_equals_single_arena () =
  let k = 4 in
  let arenas = Array.init k (fun _ -> Telemetry.create ~version:"1.0.0" ()) in
  let reference = Telemetry.create ~version:"1.0.0" () in
  let codes = [| 200; 200; 200; 400; 404; 500; 503 |] in
  let outcomes = [| None; Some `Complete; Some `Degraded; Some `Failed |] in
  let latencies = [| 0.0003; 0.0008; 0.002; 0.004; 0.02; 0.3; 4.0; 42.0 |] in
  for j = 0 to 199 do
    let code = codes.(j mod Array.length codes) in
    let outcome = outcomes.(j mod Array.length outcomes) in
    let s = latencies.(j mod Array.length latencies) in
    let stage_seconds =
      match j mod 3 with
      | 0 -> [ ("html", s /. 5.); ("parse", s /. 2.); ("merge", s /. 7.) ]
      | 1 -> [ ("layout", s); ("classify", s *. 2.) ]
      | _ -> []
    in
    let stats = if j mod 5 = 0 then Some (mk_stats j) else None in
    let cache_hit = j mod 7 = 0 in
    let observe t =
      Telemetry.observe_request t ~code ?outcome ~cache_hit ?stats
        ~stage_seconds ~seconds:s ()
    in
    observe arenas.(j mod k);
    observe reference;
    if j mod 11 = 0 then begin
      Telemetry.shed arenas.(j mod k);
      Telemetry.shed reference
    end
  done;
  let merged =
    Telemetry.merge (Array.to_list (Array.map Telemetry.snapshot arenas))
  in
  Alcotest.(check int) "merged request count" 200 (Telemetry.requests merged);
  Alcotest.(check string)
    "merged exposition == single-arena exposition"
    (strip_uptime (render reference))
    (strip_uptime (Telemetry.render_snapshot merged ~extra:[]))

let merged_observed () =
  (* The [observed ()] stream, spread over three arenas. *)
  let ts = Array.init 3 (fun _ -> Telemetry.create ~version:"1.0.0" ()) in
  Telemetry.observe_request ts.(0) ~code:200 ~outcome:`Complete
    ~stage_seconds:
      [ ("html", 0.0004); ("layout", 0.0004); ("classify", 0.0004);
        ("parse", 0.002); ("merge", 0.0004) ]
    ~seconds:0.0008 ();
  Telemetry.observe_request ts.(1) ~code:200 ~outcome:`Degraded
    ~stage_seconds:[ ("parse", 0.004); ("bogus-stage", 1.0) ]
    ~seconds:0.002 ();
  Telemetry.observe_request ts.(2) ~code:404 ~seconds:10_000. ();
  Telemetry.render_snapshot
    (Telemetry.merge (Array.to_list (Array.map Telemetry.snapshot ts)))
    ~extra:[]

(* The merged output is an exposition like any other: same HELP/TYPE
   ordering, cumulative histograms, counts. *)
let test_merged_contract () =
  let body = merged_observed () in
  check_help_and_type body;
  check_histogram body ~prefix:"wqi_request_seconds" ~labels:"";
  List.iter
    (fun stage ->
       check_histogram body ~prefix:"wqi_stage_seconds"
         ~labels:(Printf.sprintf "stage=\"%s\"" stage))
    [ "html"; "layout"; "classify"; "parse"; "merge" ];
  Alcotest.(check (option (float 0.)))
    "merged parse count" (Some 2.)
    (sample body "wqi_stage_seconds_count{stage=\"parse\"}");
  Alcotest.(check (option (float 0.)))
    "merged 200 count" (Some 2.)
    (sample body "wqi_requests_total{code=\"200\"}");
  Alcotest.(check (option (float 0.)))
    "merged 404 count" (Some 1.)
    (sample body "wqi_requests_total{code=\"404\"}");
  Alcotest.(check char) "merged ends with newline" '\n'
    body.[String.length body - 1]

let test_merge_empty_rejected () =
  Alcotest.check_raises "merge []"
    (Invalid_argument "Telemetry.merge: empty snapshot list") (fun () ->
        ignore (Telemetry.merge []))

(* Labeled extra rows (the server's per-domain request split) render
   one sample per row under a single HELP/TYPE header. *)
let test_extra_labeled_rows () =
  let t = Telemetry.create ~version:"1.0.0" () in
  let body =
    Telemetry.render t
      ~extra:
        [ ("wqi_domain_requests_total", "Requests by owning domain.",
           `Counter,
           [ ("domain=\"0\"", 3.); ("domain=\"1\"", 4.) ]) ]
  in
  check_help_and_type body;
  Alcotest.(check (option (float 0.)))
    "domain 0" (Some 3.)
    (sample body "wqi_domain_requests_total{domain=\"0\"}");
  Alcotest.(check (option (float 0.)))
    "domain 1" (Some 4.)
    (sample body "wqi_domain_requests_total{domain=\"1\"}")

(* The grammar dimension: kept per-arena, folded away under the
   default (historical, code-only) rendering, surfaced as a second
   wqi_requests_total label under ~grammar_label:true — with
   grammar="" for requests not attributed to any grammar — and
   preserved exactly by merge. *)
let test_grammar_label () =
  let ts = Array.init 2 (fun _ -> Telemetry.create ~version:"1.0.0" ()) in
  Telemetry.observe_request ts.(0) ~code:200 ~grammar:"std" ~seconds:0.001 ();
  Telemetry.observe_request ts.(1) ~code:200 ~grammar:"airline"
    ~seconds:0.001 ();
  Telemetry.observe_request ts.(0) ~code:200 ~grammar:"airline"
    ~seconds:0.001 ();
  Telemetry.observe_request ts.(1) ~code:404 ~seconds:0.001 ();
  let merged =
    Telemetry.merge (Array.to_list (Array.map Telemetry.snapshot ts))
  in
  let folded = Telemetry.render_snapshot merged ~extra:[] in
  Alcotest.(check (option (float 0.)))
    "folded 200 sums grammars" (Some 3.)
    (sample folded "wqi_requests_total{code=\"200\"}");
  Alcotest.(check bool) "no grammar label under the default contract" false
    (contains folded "grammar=");
  let labeled =
    Telemetry.render_snapshot ~grammar_label:true merged ~extra:[]
  in
  check_help_and_type labeled;
  Alcotest.(check (option (float 0.)))
    "std row" (Some 1.)
    (sample labeled "wqi_requests_total{code=\"200\",grammar=\"std\"}");
  Alcotest.(check (option (float 0.)))
    "airline row merged across arenas" (Some 2.)
    (sample labeled "wqi_requests_total{code=\"200\",grammar=\"airline\"}");
  Alcotest.(check (option (float 0.)))
    "unattributed request keeps an empty grammar label" (Some 1.)
    (sample labeled "wqi_requests_total{code=\"404\",grammar=\"\"}")

let suite =
  [ ("HELP and TYPE precede samples", `Quick,
     test_help_and_type_precede_samples);
    ("request histogram cumulative, +Inf = count", `Quick,
     test_request_histogram_cumulative);
    ("per-stage histograms", `Quick, test_stage_histograms);
    ("label value escaping", `Quick, test_label_escaping);
    ("build info and uptime", `Quick, test_build_info_and_uptime);
    ("trailing newline", `Quick, test_trailing_newline);
    ("merge == single arena (property)", `Quick,
     test_merge_equals_single_arena);
    ("merged output satisfies the exposition contract", `Quick,
     test_merged_contract);
    ("merge of zero snapshots rejected", `Quick, test_merge_empty_rejected);
    ("extra labeled rows", `Quick, test_extra_labeled_rows);
    ("grammar label folded by default, rendered on demand", `Quick,
     test_grammar_label) ]
