(* Prometheus text-exposition correctness for the server's telemetry
   registry: every family carries # HELP and # TYPE before its samples,
   histogram buckets are cumulative with the +Inf bucket equal to the
   count, label values are escaped per the exposition format, and the
   body ends with exactly one trailing newline. *)

module Telemetry = Wqi_serve.Telemetry

let render t = Telemetry.render t ~extra:[]

let lines body = String.split_on_char '\n' body

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Sample value of the first line starting with [prefix]. *)
let sample body prefix =
  lines body
  |> List.find_map (fun line ->
      if starts_with prefix line then
        match String.rindex_opt line ' ' with
        | Some i ->
          float_of_string_opt
            (String.sub line (i + 1) (String.length line - i - 1))
        | None -> None
      else None)

let observed () =
  let t = Telemetry.create ~version:"1.0.0" () in
  (* Latencies chosen to land in distinct buckets of
     [0.0005; 0.001; 0.0025; 0.005; ...]. *)
  Telemetry.observe_request t ~code:200 ~outcome:`Complete
    ~stage_seconds:
      [ ("html", 0.0004); ("layout", 0.0004); ("classify", 0.0004);
        ("parse", 0.002); ("merge", 0.0004) ]
    ~seconds:0.0008 ();
  Telemetry.observe_request t ~code:200 ~outcome:`Degraded
    ~stage_seconds:[ ("parse", 0.004); ("bogus-stage", 1.0) ]
    ~seconds:0.002 ();
  Telemetry.observe_request t ~code:404 ~seconds:10_000. ();
  t

let test_help_and_type_precede_samples () =
  let body = render (observed ()) in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun line ->
       if starts_with "# HELP " line then begin
         match String.split_on_char ' ' line with
         | _ :: _ :: name :: _ -> Hashtbl.replace seen name `Help
         | _ -> Alcotest.failf "malformed HELP line %S" line
       end
       else if starts_with "# TYPE " line then begin
         match String.split_on_char ' ' line with
         | _ :: _ :: name :: _ ->
           if Hashtbl.find_opt seen name <> Some `Help then
             Alcotest.failf "TYPE before HELP for %s" name;
           Hashtbl.replace seen name `Type
         | _ -> Alcotest.failf "malformed TYPE line %S" line
       end
       else if line <> "" then begin
         (* A sample line: its family (name up to '{' or '_bucket'/'_sum'/
            '_count' suffix or ' ') must have HELP and TYPE already. *)
         let name =
           match String.index_opt line '{' with
           | Some i -> String.sub line 0 i
           | None ->
             (match String.index_opt line ' ' with
              | Some i -> String.sub line 0 i
              | None -> line)
         in
         let family =
           List.fold_left
             (fun acc suffix ->
                if acc <> name then acc
                else if
                  String.length name > String.length suffix
                  && String.sub name
                       (String.length name - String.length suffix)
                       (String.length suffix)
                     = suffix
                then
                  String.sub name 0 (String.length name - String.length suffix)
                else acc)
             name
             [ "_bucket"; "_sum"; "_count" ]
         in
         if Hashtbl.find_opt seen family <> Some `Type then
           Alcotest.failf "sample %S before # TYPE %s" line family
       end)
    (lines body)

let check_histogram body ~prefix ~labels =
  let bucket le =
    let sel =
      if labels = "" then Printf.sprintf "%s_bucket{le=\"%s\"}" prefix le
      else Printf.sprintf "%s_bucket{%s,le=\"%s\"}" prefix labels le
    in
    match sample body sel with
    | Some v -> v
    | None -> Alcotest.failf "missing bucket %s" sel
  in
  let uppers =
    [ "0.0005"; "0.001"; "0.0025"; "0.005"; "0.01"; "0.025"; "0.05"; "0.1";
      "0.25"; "0.5"; "1"; "2.5"; "5"; "+Inf" ]
  in
  let _ =
    List.fold_left
      (fun prev le ->
         let v = bucket le in
         if v < prev then
           Alcotest.failf "%s: bucket le=%s not cumulative (%g < %g)" prefix
             le v prev;
         v)
      0. uppers
  in
  let count_sel =
    if labels = "" then prefix ^ "_count " else prefix ^ "_count{" ^ labels ^ "}"
  in
  match sample body count_sel with
  | None -> Alcotest.failf "missing %s" count_sel
  | Some count ->
    Alcotest.(check (float 0.))
      (prefix ^ ": +Inf bucket = count")
      count (bucket "+Inf")

let test_request_histogram_cumulative () =
  let body = render (observed ()) in
  check_histogram body ~prefix:"wqi_request_seconds" ~labels:"";
  (* 10000 s falls beyond every finite bucket: +Inf must exceed le=5. *)
  let v le =
    Option.get
      (sample body (Printf.sprintf "wqi_request_seconds_bucket{le=\"%s\"}" le))
  in
  Alcotest.(check (float 0.)) "overflow sample only in +Inf" 1. (v "+Inf" -. v "5")

let test_stage_histograms () =
  let body = render (observed ()) in
  List.iter
    (fun stage ->
       check_histogram body ~prefix:"wqi_stage_seconds"
         ~labels:(Printf.sprintf "stage=\"%s\"" stage))
    [ "html"; "layout"; "classify"; "parse"; "merge" ];
  (* parse saw two samples (0.002 and 0.004), the other stages one. *)
  Alcotest.(check (option (float 0.)))
    "parse count" (Some 2.)
    (sample body "wqi_stage_seconds_count{stage=\"parse\"}");
  Alcotest.(check (option (float 0.)))
    "merge count" (Some 1.)
    (sample body "wqi_stage_seconds_count{stage=\"merge\"}");
  (* Unknown stage names are dropped, not invented as new series. *)
  Alcotest.(check bool) "bogus stage ignored" false
    (contains body "bogus-stage")

let test_label_escaping () =
  let t = Telemetry.create ~version:"v\"1\\a\nb" () in
  let body = render t in
  Alcotest.(check bool) "escaped version label" true
    (contains body "wqi_build_info{version=\"v\\\"1\\\\a\\nb\"} 1")

let test_build_info_and_uptime () =
  let body = render (observed ()) in
  Alcotest.(check bool) "build info" true
    (contains body "wqi_build_info{version=\"1.0.0\"} 1");
  match sample body "wqi_uptime_seconds " with
  | Some v when v >= 0. -> ()
  | _ -> Alcotest.fail "wqi_uptime_seconds missing or negative"

let test_trailing_newline () =
  let body = render (observed ()) in
  Alcotest.(check bool) "non-empty" true (String.length body > 0);
  Alcotest.(check char) "ends with newline" '\n'
    body.[String.length body - 1];
  Alcotest.(check bool) "no blank last line" false
    (String.length body > 1 && body.[String.length body - 2] = '\n')

let suite =
  [ ("HELP and TYPE precede samples", `Quick,
     test_help_and_type_precede_samples);
    ("request histogram cumulative, +Inf = count", `Quick,
     test_request_histogram_cumulative);
    ("per-stage histograms", `Quick, test_stage_histograms);
    ("label value escaping", `Quick, test_label_escaping);
    ("build info and uptime", `Quick, test_build_info_and_uptime);
    ("trailing newline", `Quick, test_trailing_newline) ]
