(* Resource governance: budget/gauge mechanics, extractor degradation
   (including the 60-source corpus under a tiny cap and pathological
   inputs under a deadline), Config builders and the versioned JSON
   export. *)

module Budget = Wqi_core.Budget
module Extractor = Wqi_core.Extractor
module Engine = Wqi_parser.Engine
module Dataset = Wqi_corpus.Dataset
module Generator = Wqi_corpus.Generator

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let simple_form =
  {|<form>
      <b>Search our catalog</b><br>
      Title <input type="text" name="title"><br>
      Category <select name="cat"><option>Fiction</option><option>History</option></select><br>
      <input type="submit" value="Go">
    </form>|}

let model_nonempty (e : Extractor.extraction) =
  e.model.Wqi_model.Semantic_model.conditions <> []
  || e.model.Wqi_model.Semantic_model.errors <> []

let degraded (e : Extractor.extraction) =
  match e.outcome with Budget.Degraded _ -> true | _ -> false

(* --- budget spec and gauge mechanics --- *)

let test_spec () =
  check_bool "unlimited is unlimited" true (Budget.is_unlimited Budget.unlimited);
  check_bool "a cap is not unlimited" false
    (Budget.is_unlimited (Budget.make ~max_tokens:5 ()));
  (match (Budget.make ~deadline_ms:(-3) ()).Budget.deadline_ms with
   | Some 0 -> ()
   | _ -> Alcotest.fail "negative deadline not clamped to 0");
  check_bool "make with no caps is unlimited" true
    (Budget.is_unlimited (Budget.make ()))

let test_cap_trips () =
  let g = Budget.start (Budget.make ~max_tokens:2 ()) in
  check_bool "first token ok" true (Budget.token g);
  check_bool "second token ok" true (Budget.token g);
  check_bool "third token trips" false (Budget.token g);
  check_bool "answer stays pinned" false (Budget.token g);
  check_bool "other counters unaffected" true (Budget.box g);
  check_bool "tokenize tripped" true (Budget.tripped g Budget.Tokenize);
  check_bool "layout untripped" false (Budget.tripped g Budget.Layout);
  match Budget.trips g with
  | [ t ] ->
    check_bool "trip stage" true (t.Budget.stage = Budget.Tokenize);
    check_bool "trip reason" true (t.Budget.reason = Budget.Tokens);
    check_int "trip limit" 2 t.Budget.limit
  | trips -> Alcotest.failf "expected one trip, got %d" (List.length trips)

let test_counters () =
  let g = Budget.start Budget.unlimited in
  ignore (Budget.html_node g);
  ignore (Budget.html_node g);
  ignore (Budget.box g);
  ignore (Budget.token g);
  ignore (Budget.instance g);
  ignore (Budget.instance g);
  ignore (Budget.instance g);
  ignore (Budget.round g);
  check_int "html nodes" 2 (Budget.html_nodes g);
  check_int "boxes" 1 (Budget.boxes g);
  check_int "tokens" 1 (Budget.tokens g);
  check_int "instances" 3 (Budget.instances g);
  check_int "rounds" 1 (Budget.rounds g);
  check_bool "unlimited never trips" true (Budget.trips g = []);
  check_bool "elapsed is nonnegative" true (Budget.elapsed_ms g >= 0.)

let test_deadline () =
  let g = Budget.start (Budget.make ~deadline_ms:0 ()) in
  check_bool "expired deadline kills alive" false (Budget.alive g Budget.Html);
  check_bool "spends die too" false (Budget.token g);
  (match Budget.trips g with
   | t :: _ -> check_bool "reason deadline" true (t.Budget.reason = Budget.Deadline)
   | [] -> Alcotest.fail "no trip recorded");
  (* The throttled probe must notice within its sampling window. *)
  let g2 = Budget.start (Budget.make ~deadline_ms:0 ()) in
  let noticed = ref false in
  for _ = 1 to 600 do
    if not (Budget.tick g2 Budget.Parse) then noticed := true
  done;
  check_bool "tick notices an expired deadline" true !noticed

(* --- Config builders --- *)

let test_config () =
  let c = Extractor.Config.default in
  check_bool "default budget unlimited" true
    (Budget.is_unlimited c.Extractor.Config.budget);
  let b = Budget.make ~max_instances:7 () in
  let c' =
    Extractor.Config.(
      default |> with_budget b |> with_width 400
      |> with_options { Engine.default_options with use_preferences = false })
  in
  check_bool "with_budget" true (c'.Extractor.Config.budget = b);
  check_int "with_width" 400 c'.Extractor.Config.width;
  check_bool "with_options" false
    c'.Extractor.Config.options.Engine.use_preferences;
  check_bool "builders leave default alone" true
    (Budget.is_unlimited Extractor.Config.default.Extractor.Config.budget)

(* --- outcomes on the simple fixture --- *)

let test_complete_outcome () =
  let e = Extractor.run Extractor.Config.default (Extractor.Html simple_form) in
  check_bool "ungoverned run is complete" true (e.outcome = Budget.Complete);
  let legacy = Extractor.extract simple_form in
  check_bool "legacy wrapper agrees" true
    (Extractor.conditions e = Extractor.conditions legacy);
  check_bool "legacy wrapper complete" true (legacy.outcome = Budget.Complete)

let test_instance_cap_degrades () =
  let config =
    Extractor.Config.(
      default |> with_budget (Budget.make ~max_instances:3 ()))
  in
  let e = Extractor.run config (Extractor.Html simple_form) in
  check_bool "degraded" true (degraded e);
  check_bool "model still reports the tokens" true (model_nonempty e);
  check_bool "parse marked truncated" true e.diagnostics.parse_stats.truncated;
  match e.outcome with
  | Budget.Degraded (t :: _) ->
    check_bool "tripped in parse" true (t.Budget.stage = Budget.Parse);
    check_bool "instances reason" true (t.Budget.reason = Budget.Instances)
  | _ -> Alcotest.fail "expected a degraded outcome with trips"

let test_html_cap_degrades () =
  let config =
    Extractor.Config.(
      default |> with_budget (Budget.make ~max_html_nodes:4 ()))
  in
  let e = Extractor.run config (Extractor.Html simple_form) in
  check_bool "degraded at html" true (degraded e);
  match e.outcome with
  | Budget.Degraded (t :: _) ->
    check_bool "stage html" true (t.Budget.stage = Budget.Html)
  | _ -> Alcotest.fail "expected degraded"

let test_token_cap_degrades () =
  let config =
    Extractor.Config.(default |> with_budget (Budget.make ~max_tokens:2 ()))
  in
  let e = Extractor.run config (Extractor.Html simple_form) in
  check_bool "degraded" true (degraded e);
  check_bool "kept a token prefix" true (e.diagnostics.token_count <= 2);
  check_bool "prefix ids dense" true
    (List.for_all2
       (fun (t : Wqi_token.Token.t) i -> t.id = i)
       e.tokens
       (List.init (List.length e.tokens) Fun.id))

let test_legacy_max_instances_reported () =
  (* The engine-level safety valve (no gauge at all) must surface as a
     degraded outcome too. *)
  let e =
    Extractor.extract
      ~options:{ Engine.default_options with max_instances = 3 }
      simple_form
  in
  check_bool "legacy cap degrades" true (degraded e);
  match e.outcome with
  | Budget.Degraded [ t ] ->
    check_int "limit is the engine cap" 3 t.Budget.limit
  | _ -> Alcotest.fail "expected a single synthesized trip"

(* --- 60-source corpus under a tiny cap --- *)

let test_corpus_tiny_cap () =
  let sources =
    (Dataset.new_source ()).Dataset.sources @ (Dataset.random ()).Dataset.sources
  in
  check_int "corpus size" 60 (List.length sources);
  let config =
    Extractor.Config.(
      default |> with_budget (Budget.make ~max_instances:3 ()))
  in
  List.iter
    (fun (s : Generator.source) ->
       let e = Extractor.run config (Extractor.Html s.html) in
       if not (degraded e) then
         Alcotest.failf "%s: expected Degraded under max_instances=3" s.id;
       if not (model_nonempty e) then
         Alcotest.failf "%s: degraded model should be non-empty" s.id)
    sources

(* --- pathological inputs return promptly and degrade, not fail --- *)

let test_pathological_nesting () =
  let b = Buffer.create (1 lsl 16) in
  for _ = 1 to 4000 do
    Buffer.add_string b "<div>x "
  done;
  let config =
    Extractor.Config.(
      default |> with_budget (Budget.make ~max_html_nodes:500 ()))
  in
  let e = Extractor.run config (Extractor.Html (Buffer.contents b)) in
  check_bool "degraded, not failed" true (degraded e);
  check_bool "html cap respected" true
    (e.diagnostics.consumption.Extractor.html_nodes <= 501)

let test_pathological_wide_form () =
  (* A 10k-widget form: the token cap truncates the front end and the
     pipeline still extracts from the prefix. *)
  let b = Buffer.create (1 lsl 18) in
  Buffer.add_string b "<form>";
  for i = 1 to 10_000 do
    Buffer.add_string b (Printf.sprintf "Field%d <input name=f%d><br>" i i)
  done;
  Buffer.add_string b "</form>";
  let config =
    Extractor.Config.(
      default
      |> with_budget (Budget.make ~max_tokens:60 ~max_instances:5_000 ()))
  in
  let e = Extractor.run config (Extractor.Html (Buffer.contents b)) in
  check_bool "degraded" true (degraded e);
  check_bool "token prefix kept" true
    (e.diagnostics.token_count <= 60 && e.diagnostics.token_count > 0);
  check_bool "model non-empty" true (model_nonempty e)

let test_pathological_exhaustive_deadline () =
  (* A uniform table in exhaustive mode (no preferences) explodes
     combinatorially; the deadline must stop it and still hand back a
     non-empty degraded model within a small multiple of the budget. *)
  let b = Buffer.create 4096 in
  Buffer.add_string b "<form><table>";
  for i = 1 to 40 do
    Buffer.add_string b
      (Printf.sprintf "<tr><td>Label%d</td><td><input name=i%d></td></tr>" i i)
  done;
  Buffer.add_string b "</table></form>";
  let deadline_ms = 150 in
  let config =
    Extractor.Config.(
      default
      |> with_options
           { Engine.default_options with
             use_preferences = false;
             max_instances = max_int }
      |> with_budget (Budget.make ~deadline_ms ()))
  in
  let t0 = Budget.now_s () in
  let e = Extractor.run config (Extractor.Html (Buffer.contents b)) in
  let elapsed_ms = 1000. *. (Budget.now_s () -. t0) in
  check_bool "returned within 20x the deadline" true
    (elapsed_ms < 20. *. float_of_int deadline_ms);
  check_bool "degraded by the deadline" true
    (match e.outcome with
     | Budget.Degraded trips ->
       List.exists (fun t -> t.Budget.reason = Budget.Deadline) trips
     | _ -> false);
  check_bool "model non-empty" true (model_nonempty e)

(* --- run never raises; Failed outcomes --- *)

let test_run_inputs () =
  let doc = Wqi_html.Parser.parse simple_form in
  let e = Extractor.run Extractor.Config.default (Extractor.Document doc) in
  check_bool "document input complete" true (e.outcome = Budget.Complete);
  let tokens = Wqi_token.Tokenize.of_html simple_form in
  let e2 = Extractor.run Extractor.Config.default (Extractor.Tokens tokens) in
  check_bool "tokens input complete" true (e2.outcome = Budget.Complete);
  check_bool "same conditions via tokens" true
    (Extractor.conditions e = Extractor.conditions e2)

let test_failed_helper () =
  let e = Extractor.failed ~stage:Budget.Parse "boom" in
  (match e.outcome with
   | Budget.Failed err ->
     check_bool "stage kept" true (err.Budget.error_stage = Some Budget.Parse);
     check_bool "message kept" true (err.Budget.message = "boom")
   | _ -> Alcotest.fail "expected Failed");
  check_bool "empty model" false (model_nonempty e)

let test_run_catches () =
  (* An invalid grammar makes Engine.parse raise; run must catch it and
     return a Failed outcome instead. *)
  let t = Wqi_grammar.Symbol.terminal "text" in
  let s = Wqi_grammar.Symbol.nonterminal "S" in
  let bad_grammar =
    Wqi_grammar.Grammar.make ~terminals:[ t ] ~start:s
      ~productions:
        [ Wqi_grammar.Production.make ~name:"p" ~head:s
            ~components:[ t ]
            ~build:(fun _ -> failwith "guard blew up")
            () ]
      ()
  in
  let config = Extractor.Config.(default |> with_grammar bad_grammar) in
  let e = Extractor.run config (Extractor.Html simple_form) in
  match e.outcome with
  | Budget.Failed err ->
    check_bool "stage recorded" true (err.Budget.error_stage = Some Budget.Parse)
  | _ -> Alcotest.fail "expected Failed from a raising grammar"

(* --- versioned JSON export --- *)

let test_export_v2 () =
  let e = Extractor.run Extractor.Config.default (Extractor.Html simple_form) in
  let json = Extractor.export ~name:"simple" e in
  check_bool "version tag" true (contains json "\"wqi_extraction_version\": 2");
  check_bool "complete status" true (contains json "\"status\": \"complete\"");
  check_bool "diagnostics present" true (contains json "\"diagnostics\"");
  check_bool "per-stage seconds" true (contains json "\"parse\"");
  let config =
    Extractor.Config.(
      default |> with_budget (Budget.make ~max_instances:3 ()))
  in
  let d = Extractor.run config (Extractor.Html simple_form) in
  let djson = Extractor.export ~name:"simple" d in
  check_bool "degraded status" true (contains djson "\"status\": \"degraded\"");
  check_bool "trip rendered" true (contains djson "\"reason\": \"instances\"");
  check_bool "budget rendered" true (contains djson "\"max_instances\": 3");
  let f =
    Wqi_model.Export.failed_source ~name:"gone"
      { Budget.error_stage = None; message = "no such file" }
  in
  check_bool "failed status" true (contains f "\"status\": \"failed\"");
  check_bool "failed keeps version" true
    (contains f "\"wqi_extraction_version\": 2")

let suite =
  [ Alcotest.test_case "budget spec" `Quick test_spec;
    Alcotest.test_case "cap trips and pins" `Quick test_cap_trips;
    Alcotest.test_case "gauge counters" `Quick test_counters;
    Alcotest.test_case "deadline trips" `Quick test_deadline;
    Alcotest.test_case "config builders" `Quick test_config;
    Alcotest.test_case "ungoverned run complete" `Quick test_complete_outcome;
    Alcotest.test_case "instance cap degrades" `Quick test_instance_cap_degrades;
    Alcotest.test_case "html cap degrades" `Quick test_html_cap_degrades;
    Alcotest.test_case "token cap degrades" `Quick test_token_cap_degrades;
    Alcotest.test_case "legacy max_instances reported" `Quick
      test_legacy_max_instances_reported;
    Alcotest.test_case "60-source corpus under tiny cap" `Quick
      test_corpus_tiny_cap;
    Alcotest.test_case "pathological nesting" `Quick test_pathological_nesting;
    Alcotest.test_case "pathological wide form" `Quick
      test_pathological_wide_form;
    Alcotest.test_case "pathological exhaustive deadline" `Quick
      test_pathological_exhaustive_deadline;
    Alcotest.test_case "run accepts all inputs" `Quick test_run_inputs;
    Alcotest.test_case "failed helper" `Quick test_failed_helper;
    Alcotest.test_case "run catches exceptions" `Quick test_run_catches;
    Alcotest.test_case "export v2" `Quick test_export_v2 ]
