(* Regenerates the committed Export-v2 golden files next to
   complete.html.  Run after an intentional wire-format change:

     dune exec test/golden/gen_golden.exe -- test/golden

   then review the diff and commit.  The goldens are produced with
   [export ~timings:false], so they are byte-stable: a pure function of
   the fixture markup and the budget spec.  The degraded golden trips a
   parser-instance cap (caps are deterministic, unlike wall-clock
   deadlines); the failed golden goes through [Extractor.failed], the
   representation batch drivers use for out-of-pipeline errors. *)

module Extractor = Wqi_core.Extractor
module Budget = Wqi_core.Budget
module Trace = Wqi_obs.Trace

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let degraded_max_instances = 60

let cases html =
  [ ( "complete.json",
      "golden-complete",
      fun () -> Extractor.run Extractor.Config.default (Extractor.Html html) );
    ( "degraded.json",
      "golden-degraded",
      fun () ->
        let budget = Budget.make ~max_instances:degraded_max_instances () in
        let config = Extractor.Config.(default |> with_budget budget) in
        Extractor.run config (Extractor.Html html) );
    ( "failed.json",
      "golden-failed",
      fun () -> Extractor.failed "simulated upstream failure" ) ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let html = read_file (Filename.concat dir "complete.html") in
  List.iter
    (fun (file, name, extract) ->
       let e = extract () in
       write_file
         (Filename.concat dir file)
         (Extractor.export ~timings:false ~name e ^ "\n");
       Printf.printf "wrote %s (%s)\n" (Filename.concat dir file) name)
    (cases html);
  (* Scrubbed Chrome trace of the same fixture: with timestamps replaced
     by ordinals and durations pinned, the event stream is a pure
     function of the markup, so the export is byte-stable. *)
  let trace = Trace.create () in
  ignore (Extractor.run ~trace Extractor.Config.default (Extractor.Html html));
  write_file
    (Filename.concat dir "trace.json")
    (Trace.to_chrome_json ~scrub_timestamps:true trace ^ "\n");
  Printf.printf "wrote %s (golden-trace)\n" (Filename.concat dir "trace.json")
