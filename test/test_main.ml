let () =
  Alcotest.run "wqi"
    [ ("html", Test_html.suite);
      ("layout", Test_layout.suite);
      ("token", Test_token.suite);
      ("grammar", Test_grammar.suite);
      ("parser", Test_parser.suite);
      ("parser-equiv", Test_parser_equiv.suite);
      ("grammar-data", Test_grammar_data.suite);
      ("model", Test_model.suite);
      ("stdgrammar", Test_stdgrammar.suite);
      ("corpus", Test_corpus.suite);
      ("metrics", Test_metrics.suite);
      ("extractor", Test_extractor.suite);
      ("budget", Test_budget.suite);
      ("refine", Test_refine.suite);
      ("match", Test_match.suite);
      ("derive", Test_derive.suite);
      ("formulate", Test_formulate.suite);
      ("fixtures", Test_fixtures.suite);
      ("export-golden", Test_export_golden.suite);
      ("serve-cache", Test_serve_cache.suite);
      ("store", Test_store.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("pool", Test_pool.suite);
      ("quality", Test_quality.suite);
      ("properties", Test_props.suite) ]
