(* wqi_loadgen: replay the deterministic 120-interface corpus against a
   wqi_serve daemon over N concurrent keep-alive connections and record
   throughput and latency percentiles, cold cache vs warm cache, as
   BENCH_serve.json (validated by validate_serve_json.ml, schema 2).

   Connection affinity: each client owns one keep-alive connection for
   the whole run (cold AND warm pass) and a fixed slice of the corpus
   (doc i belongs to client [i mod clients]).  Under a shared-nothing
   server a connection stays on one domain — and therefore one cache
   shard — so the warm pass must be all hits regardless of the domain
   count, and the validator can gate on it.

   Correctness is measured, not assumed: every warm response must be
   byte-identical to the cold response for the same document, and every
   run after the first must be byte-identical to the first run's
   responses (single- vs multi-domain servers must not disagree).
   Mismatches count as failed requests.  After the passes the generator
   scrapes /metrics and records the per-domain request split.

   Default mode spawns the server itself (--server PATH) once per
   requested --jobs value, on an ephemeral port, and SIGTERMs it after
   the passes — so the record also covers the graceful-drain exit
   status.  --host/--port instead targets an already-running server.

   Usage:
     loadgen.exe --server ../bin/wqi_serve.exe --json BENCH_serve.json
     loadgen.exe --host 127.0.0.1 --port 8080 --interfaces 30
   Options: --jobs-list 1,4  --clients 8  --interfaces 120  --smoke
   (--jobs-list defaults to 1,cores on machines with >= 4 cores and to
   just 1 elsewhere, so a laptop rerun cannot record a bogus speedup) *)

module Generator = Wqi_corpus.Generator
module Budget = Wqi_budget.Budget

(* ------------------------------------------------------------------ *)
(* Corpus: byte-identical to the bench batch120 section               *)
(* ------------------------------------------------------------------ *)

let corpus n =
  let g = Wqi_corpus.Prng.create 0x120L in
  let domains = Wqi_corpus.Vocabulary.core_three in
  List.init n (fun i ->
      Generator.generate g
        ~id:(Printf.sprintf "batch-%03d" i)
        ~domain:(List.nth domains (i mod 3))
        ~complexity:`Rich ~oog_prob:0.05 ())
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Minimal HTTP/1.1 client (keep-alive)                               *)
(* ------------------------------------------------------------------ *)

type client = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let connect host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  { fd; buf = Bytes.create 65536; pos = 0; len = 0 }

let refill c =
  if c.pos = c.len then begin
    c.pos <- 0;
    c.len <- 0
  end;
  if c.len = Bytes.length c.buf then true
  else begin
    let n = Unix.read c.fd c.buf c.len (Bytes.length c.buf - c.len) in
    if n = 0 then false else (c.len <- c.len + n; true)
  end

let read_line c =
  let b = Buffer.create 80 in
  let rec go () =
    if c.pos = c.len && not (refill c) then failwith "eof in response"
    else
      match Bytes.index_from_opt c.buf c.pos '\n' with
      | Some i when i < c.len ->
        Buffer.add_subbytes b c.buf c.pos (i - c.pos);
        c.pos <- i + 1
      | _ ->
        Buffer.add_subbytes b c.buf c.pos (c.len - c.pos);
        c.pos <- c.len;
        go ()
  in
  go ();
  let s = Buffer.contents b in
  if s <> "" && s.[String.length s - 1] = '\r' then
    String.sub s 0 (String.length s - 1)
  else s

let read_exact c n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if c.pos < c.len then begin
      let take = min (n - !filled) (c.len - c.pos) in
      Bytes.blit c.buf c.pos out !filled take;
      c.pos <- c.pos + take;
      filled := !filled + take
    end
    else if not (refill c) then failwith "eof in body"
  done;
  Bytes.unsafe_to_string out

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

let request c ~meth ~target ~body =
  let b = Buffer.create (String.length body + 256) in
  Printf.bprintf b "%s %s HTTP/1.1\r\nhost: loadgen\r\n" meth target;
  if body <> "" || meth = "POST" then
    Printf.bprintf b "content-length: %d\r\n" (String.length body);
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  let s = Buffer.contents b in
  let sent = ref 0 in
  while !sent < String.length s do
    sent := !sent + Unix.write_substring c.fd s !sent (String.length s - !sent)
  done;
  let status_line = read_line c in
  let status =
    match String.split_on_char ' ' status_line with
    | _ :: code :: _ -> (try int_of_string code with _ -> 0)
    | _ -> 0
  in
  let headers = ref [] in
  let rec hdrs () =
    match read_line c with
    | "" -> ()
    | line ->
      (match String.index_opt line ':' with
       | Some i ->
         headers :=
           ( String.lowercase_ascii (String.sub line 0 i),
             String.trim
               (String.sub line (i + 1) (String.length line - i - 1)) )
           :: !headers
       | None -> ());
      hdrs ()
  in
  hdrs ();
  let body =
    match List.assoc_opt "content-length" !headers with
    | Some n -> read_exact c (int_of_string (String.trim n))
    | None -> ""
  in
  { status; r_headers = List.rev !headers; r_body = body }

(* ------------------------------------------------------------------ *)
(* Load pass                                                          *)
(* ------------------------------------------------------------------ *)

type pass = {
  seconds : float;
  requests : int;
  failed : int;
  cache_hits : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* One pass over the corpus on pre-connected clients.  Client [c] sends
   exactly the docs with [i mod clients = c], in index order, on its own
   keep-alive connection — the deterministic partition that gives every
   doc connection (and shard) affinity across passes.  [expect.(i)],
   when non-empty, is the response body the doc must reproduce
   byte-for-byte; a mismatch is a failed request.  [record] stores the
   observed bodies for later passes to check against. *)
let run_pass ~(conns : client array) ~(docs : Generator.source array)
    ~(expect : string array option) ~(record : string array option) =
  let n = Array.length docs in
  let clients = Array.length conns in
  let latencies = Array.make n 0. in
  let failed = Atomic.make 0 in
  let cache_hits = Atomic.make 0 in
  let mismatches = Atomic.make 0 in
  let worker c =
    let conn = conns.(c) in
    let rec go i =
      if i < n then begin
        let doc = docs.(i) in
        let t0 = Budget.now_s () in
        let r =
          request conn ~meth:"POST"
            ~target:(Printf.sprintf "/extract?name=%s" doc.Generator.id)
            ~body:doc.Generator.html
        in
        latencies.(i) <- Budget.now_s () -. t0;
        if r.status <> 200 then Atomic.incr failed;
        (match List.assoc_opt "x-wqi-cache" r.r_headers with
         | Some "hit" -> Atomic.incr cache_hits
         | _ -> ());
        (match expect with
         | Some e when e.(i) <> "" && e.(i) <> r.r_body ->
           Atomic.incr mismatches;
           Atomic.incr failed
         | _ -> ());
        (match record with Some rec_ -> rec_.(i) <- r.r_body | None -> ());
        go (i + clients)
      end
    in
    try go c
    with _ ->
      (* A dead connection fails the remaining share of the corpus;
         count one failure so the record can't claim a clean run. *)
      Atomic.incr failed
  in
  let t0 = Budget.now_s () in
  let threads = Array.to_list (Array.init clients (fun c -> Thread.create worker c)) in
  List.iter Thread.join threads;
  let seconds = Budget.now_s () -. t0 in
  let sorted = Array.map (fun s -> 1000. *. s) latencies in
  Array.sort compare sorted;
  ( { seconds;
      requests = n;
      failed = Atomic.get failed;
      cache_hits = Atomic.get cache_hits;
      p50_ms = percentile sorted 0.50;
      p95_ms = percentile sorted 0.95;
      p99_ms = percentile sorted 0.99 },
    Atomic.get mismatches )

(* ------------------------------------------------------------------ *)
(* Metrics scrape: per-domain request split and coalesced count       *)
(* ------------------------------------------------------------------ *)

let float_of_metric s = match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> 0.

(* Pull the merged exposition once per run and keep the series the
   record needs: wqi_domain_requests_total{domain="i"} rows (ordered by
   domain index), the single-flight coalesced counter and the size of
   the grammar registry (wqi_grammar_info rows). *)
let scrape_metrics ~host ~port =
  match connect host port with
  | exception _ -> ([||], 0, 0)
  | c ->
    let parse body =
      let domains = Hashtbl.create 8 in
      let coalesced = ref 0 in
      let grammars = ref 0 in
      (String.split_on_char '\n' body
       |> List.iter (fun line ->
          let prefix = "wqi_domain_requests_total{domain=\"" in
          if String.length line > String.length prefix
             && String.sub line 0 (String.length prefix) = prefix
          then begin
            let rest =
              String.sub line (String.length prefix)
                (String.length line - String.length prefix)
            in
            match String.index_opt rest '"' with
            | Some q ->
              (match int_of_string_opt (String.sub rest 0 q) with
               | Some d ->
                 (match String.index_opt rest ' ' with
                  | Some sp ->
                    let v =
                      String.sub rest (sp + 1) (String.length rest - sp - 1)
                    in
                    Hashtbl.replace domains d
                      (int_of_float (float_of_metric v))
                  | None -> ())
               | None -> ())
            | None -> ()
          end
          else if
            String.length line > 17
            && String.sub line 0 17 = "wqi_grammar_info{"
          then incr grammars
          else
            match String.index_opt line ' ' with
            | Some sp when String.sub line 0 sp = "wqi_cache_coalesced_total" ->
              coalesced :=
                int_of_float
                  (float_of_metric
                     (String.sub line (sp + 1) (String.length line - sp - 1)))
            | _ -> ()));
      let per_domain =
        let n = Hashtbl.length domains in
        Array.init n (fun i ->
            match Hashtbl.find_opt domains i with Some v -> v | None -> 0)
      in
      (per_domain, !coalesced, !grammars)
    in
    let result =
      match request c ~meth:"GET" ~target:"/metrics" ~body:"" with
      | { status = 200; r_body; _ } -> parse r_body
      | _ | (exception _) -> ([||], 0, 0)
    in
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    result

(* ------------------------------------------------------------------ *)
(* Server lifecycle (spawn mode)                                      *)
(* ------------------------------------------------------------------ *)

type server = { pid : int; s_port : int; out : in_channel }

let spawn_server ?grammar_dir exe ~jobs ~clients =
  let r, w = Unix.pipe () in
  let argv =
    [ exe; "--port"; "0"; "--jobs"; string_of_int jobs; "--max-inflight";
      string_of_int (max 4 (clients * 2)); "--idle-timeout-s"; "2" ]
    @ (match grammar_dir with
       | Some dir -> [ "--grammar-dir"; dir ]
       | None -> [])
  in
  let pid =
    Unix.create_process exe (Array.of_list argv) Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let out = Unix.in_channel_of_descr r in
  (* First line: "wqi_serve: listening on HOST:PORT (...)"; the last
     colon in the line separates host from port. *)
  let line = input_line out in
  let port =
    match String.rindex_opt line ':' with
    | None -> failwith ("cannot parse server banner: " ^ line)
    | Some i ->
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      (match String.split_on_char ' ' (String.trim rest) with
       | p :: _ -> (try int_of_string p with _ ->
           failwith ("cannot parse server banner: " ^ line))
       | [] -> failwith ("cannot parse server banner: " ^ line))
  in
  { pid; s_port = port; out }

let stop_server s =
  Unix.kill s.pid Sys.sigterm;
  let _, status = Unix.waitpid [] s.pid in
  close_in_noerr s.out;
  match status with Unix.WEXITED c -> c | _ -> 255

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

type run = {
  r_jobs : int;
  cold : pass;
  warm : pass;
  domain_requests : int array;
  coalesced : int;
  grammars : int;  (* registry size from wqi_grammar_info *)
  identity_mismatches : int;
  server_exit : int option;
}

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let pass_json p =
  Printf.sprintf
    "{\"seconds\": %s, \"rps\": %s, \"requests\": %d, \"failed\": %d, \
     \"cache_hits\": %d, \"p50_ms\": %s, \"p95_ms\": %s, \"p99_ms\": %s}"
    (json_float p.seconds)
    (json_float (float_of_int p.requests /. p.seconds))
    p.requests p.failed p.cache_hits (json_float p.p50_ms)
    (json_float p.p95_ms) (json_float p.p99_ms)

let run_json ~cores r =
  Printf.sprintf
    "{\"jobs\": %d, \"cores\": %d, \"cold\": %s, \"warm\": %s, \
     \"domain_requests\": [%s], \"coalesced\": %d, \"grammars\": %d, \
     \"identity_mismatches\": %d, \"server_exit\": %s}"
    r.r_jobs cores (pass_json r.cold) (pass_json r.warm)
    (String.concat ", "
       (Array.to_list (Array.map string_of_int r.domain_requests)))
    r.coalesced r.grammars r.identity_mismatches
    (match r.server_exit with
     | Some c -> string_of_int c
     | None -> "null")

let write_json file ~smoke ~interfaces ~clients ~grammar_run runs =
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  let cores = Domain.recommended_domain_count () in
  p "{\n";
  p "  \"schema_version\": 2,\n";
  p "  \"smoke\": %b,\n" smoke;
  p "  \"interfaces\": %d,\n" interfaces;
  p "  \"clients\": %d,\n" clients;
  p "  \"cores\": %d,\n" cores;
  p "  \"runs\": [\n";
  List.iteri
    (fun i r ->
       p "    %s%s\n" (run_json ~cores r)
         (if i = List.length runs - 1 then "" else ","))
    runs;
  p "  ],\n";
  (* Speedup on the warm (cache-hit) passes: that is the path that had
     regressed under the old shared-pool server and the path the
     validator gates on multi-core machines. *)
  let warm_rps r = float_of_int r.warm.requests /. r.warm.seconds in
  let cold_rps r = float_of_int r.cold.requests /. r.cold.seconds in
  let first = List.hd runs and last = List.nth runs (List.length runs - 1) in
  (* The registry row: the same corpus under a --grammar-dir server
     whose std.wqg shadows the built-in grammar.  Responses are
     byte-checked against the reference (identity_mismatches), and the
     warm ratio against the single-grammar jobs-matched run records the
     cost of per-request grammar resolution on the cache-hit path. *)
  (match grammar_run with
   | Some g ->
     p "  \"grammar_dir_run\": %s,\n" (run_json ~cores g);
     p "  \"grammar_warm_ratio\": %s,\n"
       (json_float (warm_rps g /. warm_rps first))
   | None -> ());
  p "  \"throughput_speedup_jobs\": %s,\n"
    (json_float (warm_rps last /. warm_rps first));
  p "  \"cold_speedup_jobs\": %s,\n"
    (json_float (cold_rps last /. cold_rps first));
  p "  \"warm_over_cold_p50\": %s\n"
    (json_float (last.cold.p50_ms /. Float.max 1e-6 last.warm.p50_ms));
  p "}\n";
  close_out oc;
  Format.eprintf "wrote %s@." file

let () =
  let cores = Domain.recommended_domain_count () in
  let server_exe = ref None in
  let host = ref "127.0.0.1" in
  let port = ref None in
  (* On a small machine a jobs=cores run cannot demonstrate a speedup,
     only record noise (or, on 1-2 cores, a regression).  Default to a
     scaling comparison only where one is measurable. *)
  let jobs_list = ref (if cores >= 4 then [ 1; cores ] else [ 1 ]) in
  let clients = ref 8 in
  let interfaces = ref 120 in
  let json = ref None in
  let smoke = ref false in
  let grammar_dir = ref None in
  let rec parse = function
    | [] -> ()
    | "--server" :: exe :: rest -> server_exe := Some exe; parse rest
    | "--grammar-dir" :: d :: rest -> grammar_dir := Some d; parse rest
    | "--host" :: h :: rest -> host := h; parse rest
    | "--port" :: p :: rest -> port := Some (int_of_string p); parse rest
    | "--jobs-list" :: l :: rest ->
      jobs_list :=
        String.split_on_char ',' l |> List.map String.trim
        |> List.map int_of_string;
      parse rest
    | "--clients" :: n :: rest -> clients := int_of_string n; parse rest
    | "--interfaces" :: n :: rest -> interfaces := int_of_string n; parse rest
    | "--json" :: f :: rest -> json := Some f; parse rest
    | "--smoke" :: rest -> smoke := true; parse rest
    | arg :: _ ->
      Format.eprintf
        "unknown argument %s@.usage: loadgen (--server EXE | --port P) \
         [--host H] [--jobs-list 1,4] [--clients N] [--interfaces N] \
         [--json FILE] [--smoke] [--grammar-dir DIR]@."
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke && !interfaces = 120 then interfaces := 12;
  let docs = corpus !interfaces in
  let total_bytes =
    Array.fold_left
      (fun acc (s : Generator.source) -> acc + String.length s.Generator.html)
      0 docs
  in
  Format.eprintf "corpus: %d interfaces, %d bytes@." (Array.length docs)
    total_bytes;
  (* Bodies from the first run's cold pass: every later run (different
     jobs count, different server process) must reproduce them
     byte-for-byte, cache hits included. *)
  let reference = Array.make (Array.length docs) "" in
  let have_reference = ref false in
  let one_run ~jobs ~host ~port ~server =
    Format.eprintf "jobs=%d port=%d: cold pass...@." jobs port;
    let conns =
      Array.init (max 1 !clients) (fun _ -> connect host port)
    in
    let cold_bodies = Array.make (Array.length docs) "" in
    let cold, cold_mism =
      run_pass ~conns ~docs
        ~expect:(if !have_reference then Some reference else None)
        ~record:(Some cold_bodies)
    in
    Format.eprintf
      "  cold: %.3f s (%.1f req/s), p50 %.2f ms, p95 %.2f ms, %d failed@."
      cold.seconds
      (float_of_int cold.requests /. cold.seconds)
      cold.p50_ms cold.p95_ms cold.failed;
    (* Warm pass reuses the SAME connections, so every request lands on
       the shard that cached its cold response. *)
    let warm, warm_mism =
      run_pass ~conns ~docs ~expect:(Some cold_bodies) ~record:None
    in
    Format.eprintf
      "  warm: %.3f s (%.1f req/s), p50 %.2f ms, %d cache hits, %d failed@."
      warm.seconds
      (float_of_int warm.requests /. warm.seconds)
      warm.p50_ms warm.cache_hits warm.failed;
    if not !have_reference then begin
      Array.blit cold_bodies 0 reference 0 (Array.length docs);
      have_reference := true
    end;
    let domain_requests, coalesced, grammars = scrape_metrics ~host ~port in
    Array.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      conns;
    let server_exit = Option.map stop_server server in
    (match server_exit with
     | Some 0 | None -> ()
     | Some c -> Format.eprintf "  server exited %d (expected 0)@." c);
    { r_jobs = jobs;
      cold;
      warm;
      domain_requests;
      coalesced;
      grammars;
      identity_mismatches = cold_mism + warm_mism;
      server_exit }
  in
  let runs =
    match (!server_exe, !port) with
    | Some exe, _ ->
      List.map
        (fun jobs ->
           let s = spawn_server exe ~jobs ~clients:!clients in
           one_run ~jobs ~host:!host ~port:s.s_port ~server:(Some s))
        !jobs_list
    | None, Some port ->
      [ one_run ~jobs:0 ~host:!host ~port ~server:None ]
    | None, None ->
      Format.eprintf "need --server EXE or --port P@.";
      exit 2
  in
  (* One extra jobs-matched run against a --grammar-dir server: its
     registry std.wqg shadows the built-in grammar, so the byte-identity
     check (against the first run's responses) proves the loaded grammar
     equals the compiled one over the whole serving path, and the warm
     pass prices per-request grammar resolution. *)
  let grammar_run =
    match (!server_exe, !grammar_dir) with
    | Some exe, Some dir ->
      let jobs = List.hd !jobs_list in
      Format.eprintf "grammar-dir run (%s):@." dir;
      let s = spawn_server exe ~jobs ~clients:!clients ~grammar_dir:dir in
      Some (one_run ~jobs ~host:!host ~port:s.s_port ~server:(Some s))
    | _ -> None
  in
  let failed =
    List.fold_left
      (fun acc r -> acc + r.cold.failed + r.warm.failed)
      0
      (runs @ Option.to_list grammar_run)
  in
  (match !json with
   | Some file ->
     write_json file ~smoke:!smoke ~interfaces:!interfaces ~clients:!clients
       ~grammar_run runs
   | None -> ());
  if failed > 0 then begin
    Format.eprintf "%d failed requests@." failed;
    exit 1
  end
