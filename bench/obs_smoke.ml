(* @obs-smoke driver: extract one deterministic Rich corpus document
   with tracing enabled and write the Chrome trace JSON to the path in
   argv, for validate_trace_json to check.  Uses the same PRNG seed as
   the batch120 harness so the document shape tracks what the perf
   record measures. *)

module Generator = Wqi_corpus.Generator
module Trace = Wqi_obs.Trace
module Extractor = Wqi_core.Extractor

let () =
  let out =
    match Sys.argv with
    | [| _; out |] -> out
    | _ ->
      prerr_endline "usage: obs_smoke OUT.json";
      exit 2
  in
  let g = Wqi_corpus.Prng.create 0x120L in
  let domain = List.hd Wqi_corpus.Vocabulary.core_three in
  let source =
    Generator.generate g ~id:"obs-smoke" ~domain ~complexity:`Rich
      ~oog_prob:0.0 ()
  in
  let trace = Trace.create () in
  ignore
    (Extractor.run ~trace Extractor.Config.default
       (Extractor.Html source.Generator.html));
  let oc = open_out_bin out in
  output_string oc (Trace.to_chrome_json trace);
  output_char oc '\n';
  close_out oc
