(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sections 3.1, 4.2.1, 5.1 and 6), plus the extension
   experiments listed in DESIGN.md.

   Usage: main.exe [--json FILE] [--smoke] [section ...]
   Sections: fig4a fig4b fig15 perf batch120 ablation-ambiguity
             ablation-components baseline.  No arguments = all.

   --json FILE writes the measurements of the perf and batch120 sections
   (Bechamel OLS ns/run per size, batch wall-clock at jobs=1 and jobs=N,
   instance counters) as a machine-readable regression record; --smoke
   shrinks the Bechamel quota so the harness itself can be exercised
   from the test suite (see bench/validate_bench_json.ml). *)

module Dataset = Wqi_corpus.Dataset
module Generator = Wqi_corpus.Generator
module Pattern = Wqi_corpus.Pattern
module Survey = Wqi_survey.Survey
module Eval = Wqi_eval.Eval
module Metrics = Wqi_metrics.Metrics
module Engine = Wqi_parser.Engine
module Tokenize = Wqi_token.Tokenize
module Pool = Wqi_parallel.Pool

let header title =
  Format.printf "@.============================================================@.";
  Format.printf "%s@." title;
  Format.printf "============================================================@."

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

(* Measurements collected for --json; filled in by the perf and
   batch120 sections when they run. *)
type perf_row = {
  row_name : string;
  row_tokens : int;
  row_ns_per_run : float;
  row_r_square : float;
  row_created : int;
  row_live : int;
  row_guards_tried : int;
  row_guards_admitted : int;
  row_index_probes : int;
  row_index_pruned : int;
  row_guards_tried_nohints : int;
      (* guard pressure of the same parse with spatial hints disabled:
         the regression record for the candidate-indexing optimization *)
  row_minor_words : float;
  row_major_words : float;
      (* words allocated per steady-state parse (schema 5): the
         regression record for the arena engine — the validator gates
         minor words against the pre-arena baselines *)
}

type governed_result = {
  g_deadline_ms : int;
  g_max_instances : int;
  g_seconds : float;
  g_complete : int;
  g_degraded : int;
  g_failed : int;
  g_trips : int;
}

type batch_result = {
  b_interfaces : int;
  b_avg_tokens : float;
  b_cores : int;  (* Domain.recommended_domain_count () on this machine *)
  b_jobs : int;
  b_seconds_jobs1 : float;
  b_seconds_jobsn : float;
  b_instances_created : int;
  b_trace_off_seconds : float;  (* same sweep, tracing explicitly off *)
  b_trace_on_seconds : float;   (* same sweep, fresh trace per document *)
  b_quality_off_seconds : float;
      (* full-pipeline sweep with quality records off *)
  b_quality_on_seconds : float;
      (* same sweep computing + rendering a quality record per document:
         the wqi_batch --quality-jsonl / wqi_crawl pattern, gated at
         1.03x in the validator *)
  b_governed : governed_result;
}

let smoke = ref false
let json_perf : perf_row list option ref = ref None
let json_batch : batch_result option ref = ref None

(* ------------------------------------------------------------------ *)
(* Figure 4(a): vocabulary growth over sources                         *)
(* ------------------------------------------------------------------ *)

let fig4a () =
  header
    "Figure 4(a) — vocabulary growth over sources (Basic dataset)\n\
     paper: curve flattens rapidly; later domains mostly reuse patterns";
  let ds = Dataset.basic () in
  let occs = Survey.occurrences ds.sources in
  let curve = Survey.growth_curve occs in
  Format.printf "  %-8s %-14s %s@." "source" "domain" "distinct patterns seen";
  List.iteri
    (fun i (index, seen) ->
       if index = 1 || index mod 10 = 0 || index = List.length curve then
         let occ = List.nth occs i in
         Format.printf "  %-8d %-14s %d@." index occ.Survey.domain seen)
    curve;
  let news = Survey.domain_first_new_pattern occs in
  Format.printf "  new patterns introduced per domain:@.";
  List.iter (fun (d, n) -> Format.printf "    %-14s %d@." d n) news

(* ------------------------------------------------------------------ *)
(* Figure 4(b): pattern frequencies over ranks                          *)
(* ------------------------------------------------------------------ *)

let fig4b () =
  header
    "Figure 4(b) — condition-pattern frequency by rank (Basic dataset)\n\
     paper: characteristic Zipf distribution; head patterns dominate";
  let ds = Dataset.basic () in
  let freq = Survey.frequency_by_rank (Survey.occurrences ds.sources) in
  Format.printf "  %-4s %-22s %-6s %s@." "rank" "pattern" "total"
    "per-domain (Books/Automobiles/Airfares)";
  List.iteri
    (fun i (p, total, breakdown) ->
       Format.printf "  %-4d %-22s %-6d %s@." (i + 1) (Pattern.name p) total
         (String.concat "/"
            (List.map (fun (_, n) -> string_of_int n) breakdown)))
    freq

(* ------------------------------------------------------------------ *)
(* Figure 15: precision and recall over the four datasets              *)
(* ------------------------------------------------------------------ *)

let print_distribution label dist =
  Format.printf "  %-10s" label;
  List.iter (fun (_t, pct) -> Format.printf " %6.1f" pct) dist;
  Format.printf "@."

let fig15 () =
  header
    "Figure 15 — extraction accuracy over the four datasets\n\
     paper: ~0.85 overall P/R on Basic/NewSource/NewDomain, >0.80 on\n\
     Random; NewSource slightly better than Basic (simpler forms)";
  let reports = List.map Eval.run (Dataset.all ()) in
  Format.printf "@.Figure 15(a) — source distribution over precision@.";
  Format.printf "  %-10s %6s %6s %6s %6s %6s %6s@." "" ">=1.0" ">=.9" ">=.8"
    ">=.7" ">=.6" ">=0";
  List.iter
    (fun r -> print_distribution r.Eval.dataset (Eval.precision_distribution r))
    reports;
  Format.printf "@.Figure 15(b) — source distribution over recall@.";
  Format.printf "  %-10s %6s %6s %6s %6s %6s %6s@." "" ">=1.0" ">=.9" ">=.8"
    ">=.7" ">=.6" ">=0";
  List.iter
    (fun r -> print_distribution r.Eval.dataset (Eval.recall_distribution r))
    reports;
  Format.printf "@.Figure 15(c) — average per-source precision and recall@.";
  Format.printf "  %-10s %9s %9s@." "" "precision" "recall";
  List.iter
    (fun r ->
       Format.printf "  %-10s %9.3f %9.3f@." r.Eval.dataset r.Eval.avg_precision
         r.Eval.avg_recall)
    reports;
  Format.printf "@.Figure 15(d) — overall precision and recall@.";
  Format.printf "  %-10s %9s %9s %9s@." "" "precision" "recall" "accuracy";
  List.iter
    (fun r ->
       Format.printf "  %-10s %9.3f %9.3f %9.3f@." r.Eval.dataset
         r.Eval.overall_precision r.Eval.overall_recall
         (Metrics.accuracy ~precision:r.Eval.overall_precision
            ~recall:r.Eval.overall_recall))
    reports

(* ------------------------------------------------------------------ *)
(* Section 5.1: parsing time                                           *)
(* ------------------------------------------------------------------ *)

(* Interfaces of increasing size, taken from generated Books sources. *)
let sized_interfaces () =
  let g = Wqi_corpus.Prng.create 0xBEEFL in
  let domain = Wqi_corpus.Vocabulary.find "Books" in
  let sources =
    List.init 40 (fun i ->
        Generator.generate g
          ~id:(Printf.sprintf "perf-%02d" i)
          ~domain
          ~complexity:(if i mod 2 = 0 then `Simple else `Rich)
          ~oog_prob:0. ())
  in
  let with_tokens =
    List.map
      (fun (s : Generator.source) ->
         let tokens = Tokenize.of_html s.html in
         let r = Engine.parse_compiled Wqi_stdgrammar.Std.compiled tokens in
         (tokens, s, r.Engine.stats.Engine.created))
      sources
  in
  (* Pick one interface near each target size; among equally-near
     candidates take the least ambiguous one (fewest instances
     created).  Token count alone mixes Simple and Rich documents into
     the same ladder — a Rich 20-token form can create more instances
     than a Simple 30-token one, which makes ns-per-run non-monotone in
     size and made the committed parse/20 row slower than parse/25.
     The min-ambiguity tie-break keeps the ladder's parse work itself
     monotone, which the validator now asserts. *)
  let pick target =
    List.fold_left
      (fun best (tokens, s, created) ->
         let d = abs (List.length tokens - target) in
         match best with
         | Some (bd, bc, _, _) when (bd, bc) <= (d, created) -> best
         | _ -> Some (d, created, tokens, s))
      None with_tokens
    |> Option.get
    |> fun (_, _, tokens, s) -> (tokens, s)
  in
  let picks = List.map pick [ 10; 15; 20; 25; 30; 40 ] in
  (* Deduplicate interfaces that ended up closest to several targets. *)
  List.sort_uniq
    (fun (a, _) (b, _) -> compare (List.length a) (List.length b))
    picks

let perf () =
  header
    "Section 5.1 — parsing time vs interface size (Bechamel, OLS)\n\
     paper (2004 hardware): ~1 s at 25 tokens; expect the same shape\n\
     (superlinear growth) at far smaller absolute times";
  let open Bechamel in
  let interfaces = sized_interfaces () in
  (* One shared pack: the measurement is the parse itself, on the arena
     engine's steady state (pooled arenas, precompiled dispatch tables)
     — grammar compilation is a per-process cost, not a per-parse one,
     and at these sizes it would dominate the row. *)
  let pack = Wqi_stdgrammar.Std.compiled in
  let tests =
    List.map
      (fun (tokens, _s) ->
         Test.make
           ~name:(Printf.sprintf "parse/%02d-tokens" (List.length tokens))
           (Staged.stage (fun () ->
                ignore (Engine.parse_compiled pack tokens))))
      interfaces
  in
  let test = Test.make_grouped ~name:"parse" ~fmt:"%s %s" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let quota = if !smoke then 0.05 else 0.5 in
  let cfg =
    Benchmark.cfg ~limit:100 ~stabilize:true ~quota:(Time.second quota) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc -> (name, result) :: acc)
      results []
    |> List.sort compare
  in
  (* One plain run per size for the instance counters the OLS fit
     cannot see, plus a hints-off run for the guard-pressure comparison
     and a counted loop against the Gc allocation counters (schema 5) —
     Bechamel's clock fit says nothing about allocation pressure, and
     the arena engine's whole point is that steady-state parses barely
     allocate. *)
  let nohints =
    { Engine.default_options with Engine.use_hints = false }
  in
  let alloc_per_parse tokens =
    (* Warm-up seeds the arena pool so growth is not billed to the
       measured iterations. *)
    ignore (Engine.parse_compiled pack tokens);
    let iters = if !smoke then 5 else 50 in
    (* [Gc.counters], not [quick_stat]: only the former includes the
       words allocated since the last minor collection. *)
    let m0, _, j0 = Gc.counters () in
    for _ = 1 to iters do
      ignore (Engine.parse_compiled pack tokens)
    done;
    let m1, _, j1 = Gc.counters () in
    let per c0 c1 = (c1 -. c0) /. float_of_int iters in
    (per m0 m1, per j0 j1)
  in
  let stats_by_name =
    List.map
      (fun (tokens, _s) ->
         let r = Engine.parse_compiled pack tokens in
         let r0 = Engine.parse_compiled ~options:nohints pack tokens in
         let minor, major = alloc_per_parse tokens in
         ( Printf.sprintf "parse parse/%02d-tokens" (List.length tokens),
           (List.length tokens, r.Engine.stats, r0.Engine.stats, minor, major) ))
      interfaces
  in
  Format.printf "  %-22s %12s %8s %10s  %s@." "test" "time/run" "r^2"
    "minor w" "guards hinted/unhinted (admit rate)";
  let collected =
    List.filter_map
      (fun (name, result) ->
         let estimate =
           match Analyze.OLS.estimates result with
           | Some (e :: _) -> e
           | _ -> nan
         in
         let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
         match List.assoc_opt name stats_by_name with
         | None ->
           Format.printf "  %-22s %9.3f ms %8.4f@." name (estimate /. 1e6) r2;
           None
         | Some (tokens, stats, stats0, minor, major) ->
           Format.printf "  %-22s %9.3f ms %8.4f %10.0f  %d/%d (%.2f)@." name
             (estimate /. 1e6) r2 minor stats.Engine.guards_tried
             stats0.Engine.guards_tried
             (float_of_int stats.Engine.guards_admitted
              /. float_of_int (max 1 stats.Engine.guards_tried));
           Some
             { row_name = name;
               row_tokens = tokens;
               row_ns_per_run = estimate;
               row_r_square = r2;
               row_created = stats.Engine.created;
               row_live = stats.Engine.live;
               row_guards_tried = stats.Engine.guards_tried;
               row_guards_admitted = stats.Engine.guards_admitted;
               row_index_probes = stats.Engine.index_probes;
               row_index_pruned = stats.Engine.index_pruned;
               row_guards_tried_nohints = stats0.Engine.guards_tried;
               row_minor_words = minor;
               row_major_words = major })
      rows
  in
  json_perf := Some collected

let batch120 () =
  header
    "Section 5.1 — batch parse of 120 interfaces (avg size ~22)\n\
     paper (2004 hardware): under 100 s; parsing time only";
  let g = Wqi_corpus.Prng.create 0x120L in
  let domains = Wqi_corpus.Vocabulary.core_three in
  let sources =
    List.init 120 (fun i ->
        Generator.generate g
          ~id:(Printf.sprintf "batch-%03d" i)
          ~domain:(List.nth domains (i mod 3))
          ~complexity:`Rich ~oog_prob:0.05 ())
  in
  let tokenized =
    List.map (fun (s : Generator.source) -> Tokenize.of_html s.html) sources
    |> Array.of_list
  in
  let sizes = Array.map List.length tokenized in
  let avg =
    float_of_int (Array.fold_left ( + ) 0 sizes)
    /. float_of_int (Array.length sizes)
  in
  let run_with ~jobs =
    let t0 = Unix.gettimeofday () in
    let results =
      Pool.run ~jobs (fun pool ->
          Pool.map_array pool
            (fun tokens ->
               Engine.parse_compiled Wqi_stdgrammar.Std.compiled tokens)
            tokenized)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let created =
      Array.fold_left
        (fun acc (r : Engine.result) -> acc + r.Engine.stats.created)
        0 results
    in
    (elapsed, created)
  in
  let jobs_n = Domain.recommended_domain_count () in
  let seconds_jobs1, created = run_with ~jobs:1 in
  let seconds_jobsn, _ =
    if jobs_n = 1 then (seconds_jobs1, created) else run_with ~jobs:jobs_n
  in
  note "interfaces: %d, average size: %.1f tokens" (Array.length tokenized) avg;
  note "total parsing time: %.3f s (%.1f ms/interface) at jobs=1"
    seconds_jobs1
    (1000. *. seconds_jobs1 /. float_of_int (Array.length tokenized));
  note "total parsing time: %.3f s (speedup %.2fx) at jobs=%d" seconds_jobsn
    (seconds_jobs1 /. seconds_jobsn)
    jobs_n;
  note "instances created: %d" created;
  (* Tracing overhead (schema 4): the identical jobs=1 sweep with the
     tracer explicitly disabled, then with a fresh per-document trace —
     the pattern wqi_batch --trace-dir and the server use.  Best of two
     so one GC major cannot poison the record; the validator gates the
     disabled sweep at 2% of the baseline above. *)
  let sweep ~traced =
    let t0 = Unix.gettimeofday () in
    Pool.run ~jobs:1 (fun pool ->
        ignore
          (Pool.map_array pool
             (fun tokens ->
                let trace =
                  if traced then Some (Wqi_obs.Trace.create ()) else None
                in
                Engine.parse_compiled ?trace Wqi_stdgrammar.Std.compiled tokens)
             tokenized));
    Unix.gettimeofday () -. t0
  in
  let best f = min (f ()) (f ()) in
  let trace_off_seconds = best (fun () -> sweep ~traced:false) in
  let trace_on_seconds = best (fun () -> sweep ~traced:true) in
  note "tracing: off %.3f s, on %.3f s (enabled overhead %+.1f%%)"
    trace_off_seconds trace_on_seconds
    (100. *. (trace_on_seconds /. trace_off_seconds -. 1.));
  (* Quality-record overhead (schema 6): the full pipeline (HTML up)
     over the same corpus, bare vs. computing and rendering one
     Wqi_quality record per document — what --quality-jsonl adds to a
     batch.  Same best-of-two discipline as the trace sweep; the
     validator gates enabled records at 3% of the bare sweep. *)
  let qsweep ~quality =
    let config = Wqi_core.Extractor.Config.default in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (s : Generator.source) ->
         let e = Wqi_core.Extractor.run config (Wqi_core.Extractor.Html s.html) in
         if quality then
           ignore
             (Wqi_quality.Quality.to_json
                (Wqi_quality.Quality.of_extraction ~source:"bench"
                   ~grammar:"std@1" e)))
      sources;
    Unix.gettimeofday () -. t0
  in
  let quality_off_seconds = best (fun () -> qsweep ~quality:false) in
  let quality_on_seconds = best (fun () -> qsweep ~quality:true) in
  note "quality records: off %.3f s, on %.3f s (enabled overhead %+.1f%%)"
    quality_off_seconds quality_on_seconds
    (100. *. (quality_on_seconds /. quality_off_seconds -. 1.));
  (* Governed pass: the same 120 interfaces through the full pipeline
     (HTML up) under an aggressive per-document budget, to measure what
     resource governance costs and how often it trips on a realistic
     corpus. *)
  let deadline_ms = 100 in
  let governed_max_instances = 300 in
  let budget =
    Wqi_core.Budget.make ~deadline_ms ~max_instances:governed_max_instances ()
  in
  let config = Wqi_core.Extractor.Config.(default |> with_budget budget) in
  let tg0 = Unix.gettimeofday () in
  let outcomes =
    List.map
      (fun (s : Generator.source) ->
         (Wqi_core.Extractor.run config (Wqi_core.Extractor.Html s.html))
           .Wqi_core.Extractor.outcome)
      sources
  in
  let governed_seconds = Unix.gettimeofday () -. tg0 in
  let complete_n = ref 0 and degraded_n = ref 0 and failed_n = ref 0 in
  let trips_n = ref 0 in
  List.iter
    (fun (o : Wqi_core.Budget.outcome) ->
       match o with
       | Wqi_core.Budget.Complete -> incr complete_n
       | Wqi_core.Budget.Degraded trips ->
         incr degraded_n;
         trips_n := !trips_n + List.length trips
       | Wqi_core.Budget.Failed _ -> incr failed_n)
    outcomes;
  note
    "governed (deadline %d ms, max %d instances): %.3f s, %d complete, \
     %d degraded (%d trips), %d failed"
    deadline_ms governed_max_instances governed_seconds !complete_n
    !degraded_n !trips_n !failed_n;
  json_batch :=
    Some
      { b_interfaces = Array.length tokenized;
        b_avg_tokens = avg;
        b_cores = Domain.recommended_domain_count ();
        b_jobs = jobs_n;
        b_seconds_jobs1 = seconds_jobs1;
        b_seconds_jobsn = seconds_jobsn;
        b_instances_created = created;
        b_trace_off_seconds = trace_off_seconds;
        b_trace_on_seconds = trace_on_seconds;
        b_quality_off_seconds = quality_off_seconds;
        b_quality_on_seconds = quality_on_seconds;
        b_governed =
          { g_deadline_ms = deadline_ms;
            g_max_instances = governed_max_instances;
            g_seconds = governed_seconds;
            g_complete = !complete_n;
            g_degraded = !degraded_n;
            g_failed = !failed_n;
            g_trips = !trips_n } }

(* ------------------------------------------------------------------ *)
(* Section 4.2.1: inherent ambiguities                                 *)
(* ------------------------------------------------------------------ *)

let amazon_fragment =
  {|
<form>
<table>
<tr><td>Author:</td><td><input type="text" name="author" size="20"></td></tr>
<tr><td></td><td><input type="radio" name="m" checked> First name/initials and last name<br>
<input type="radio" name="m"> Start of last name<br>
<input type="radio" name="m"> Exact name</td></tr>
<tr><td>Title:</td><td><input type="text" name="title"></td></tr>
<tr><td>Price:</td><td><select name="p"><option>under $5</option><option>$5 to $20</option><option>above $20</option></select></td></tr>
</table>
<input type="submit" value="Search">
</form>|}

let ablation_ambiguity () =
  header
    "Section 4.2.1 — ambiguity statistics on the amazon-style interface\n\
     paper: brute-force parse yields 25 trees and 773 instances (645\n\
     temporary) vs 1 correct tree of 42 instances; expect the same\n\
     blow-up shape under our grammar";
  let tokens = Tokenize.of_html amazon_fragment in
  let g = Wqi_stdgrammar.Std.grammar in
  let run name options =
    let result = Engine.parse ~options g tokens in
    Format.printf
      "  %-22s created=%5d live=%5d temporary=%5d pruned=%4d rolled=%4d \
       trees=%3d complete=%b@."
      name result.Engine.stats.created result.Engine.stats.live
      result.Engine.stats.temporary result.Engine.stats.pruned
      result.Engine.stats.rolled_back
      (Engine.count_trees result)
      (result.Engine.complete <> None)
  in
  note "tokens: %d" (List.length tokens);
  run "best-effort (JIT)" Engine.default_options;
  run "late pruning" { Engine.default_options with use_scheduling = false };
  run "exhaustive" { Engine.default_options with use_preferences = false }

(* ------------------------------------------------------------------ *)
(* Extension: component ablation on a Basic slice                      *)
(* ------------------------------------------------------------------ *)

let ablation_components () =
  header
    "Ablation — parser components on the first 30 Basic sources\n\
     (accuracy and created instances per configuration)";
  let ds = Dataset.basic () in
  let slice =
    { ds with sources = List.filteri (fun i _ -> i < 30) ds.sources }
  in
  let run name options =
    let created = ref 0 in
    let extract html =
      let tokens = Tokenize.of_html html in
      let result = Engine.parse ~options Wqi_stdgrammar.Std.grammar tokens in
      created := !created + result.Engine.stats.created;
      List.concat_map
        (fun tree ->
           List.map fst (Wqi_grammar.Instance.collect_conditions tree))
        result.Engine.maximal
      |> List.sort_uniq compare
    in
    let report = Eval.run ~extract slice in
    Format.printf "  %-24s overall P=%.3f R=%.3f  instances=%d@." name
      report.Eval.overall_precision report.Eval.overall_recall !created
  in
  run "full (JIT + preferences)" Engine.default_options;
  run "no scheduling" { Engine.default_options with use_scheduling = false };
  run "no preferences"
    { Engine.default_options with use_preferences = false;
      max_instances = 60_000 }

(* ------------------------------------------------------------------ *)
(* Extension: proximity-heuristic baseline comparison                  *)
(* ------------------------------------------------------------------ *)

let baseline () =
  header
    "Baseline — pairwise proximity heuristic [21] vs best-effort parser\n\
     expectation: the parser wins clearly, especially on operator-rich\n\
     and composite (range/date) conditions";
  Format.printf "  %-10s %28s %28s@." "" "baseline (P / R / acc)"
    "parser (P / R / acc)";
  List.iter
    (fun ds ->
       let b = Eval.run ~extract:Wqi_baseline.Baseline.extract ds in
       let p = Eval.run ds in
       let acc r =
         Metrics.accuracy ~precision:r.Eval.overall_precision
           ~recall:r.Eval.overall_recall
       in
       Format.printf "  %-10s %10.3f / %.3f / %.3f %12.3f / %.3f / %.3f@."
         ds.Dataset.name b.Eval.overall_precision b.Eval.overall_recall (acc b)
         p.Eval.overall_precision p.Eval.overall_recall (acc p))
    (Dataset.all ())

(* ------------------------------------------------------------------ *)
(* Extension: cross-interface refinement (Section 7 future work)       *)
(* ------------------------------------------------------------------ *)

let refinement () =
  header
    "Refinement — leveraging sibling interfaces of the same domain\n\
     (Section 7: conflict resolution + similarity-based recovery of\n\
     missing elements); expect a recall gain, largest on the noisier\n\
     datasets";
  List.iter
    (fun (ds : Dataset.t) ->
       (* First pass: plain extraction, grouped by domain. *)
       let extractions =
         List.map
           (fun (s : Generator.source) ->
              (s, Wqi_core.Extractor.extract s.html))
           ds.sources
       in
       let by_domain = Hashtbl.create 8 in
       List.iter
         (fun ((s : Generator.source), e) ->
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt by_domain s.domain)
            in
            Hashtbl.replace by_domain s.domain
              (Wqi_core.Extractor.conditions e :: prev))
         extractions;
       let knowledge_for domain =
         Wqi_refine.Refine.learn
           (Option.value ~default:[] (Hashtbl.find_opt by_domain domain))
       in
       (* Second pass: refine each source with its domain's knowledge. *)
       let score extract_conditions =
         List.fold_left
           (fun acc ((s : Generator.source), e) ->
              Metrics.add acc
                (Metrics.count ~truth:s.truth
                   ~extracted:(extract_conditions s e)))
           Metrics.zero extractions
       in
       let plain =
         score (fun _s e -> Wqi_core.Extractor.conditions e)
       in
       let refined =
         score (fun s e ->
             (Wqi_refine.Refine.refine (knowledge_for s.domain) e)
               .Wqi_model.Semantic_model.conditions)
       in
       Format.printf
         "  %-10s plain P=%.3f R=%.3f  |  refined P=%.3f R=%.3f@."
         ds.Dataset.name (Metrics.precision plain) (Metrics.recall plain)
         (Metrics.precision refined) (Metrics.recall refined))
    (Dataset.all ())

(* ------------------------------------------------------------------ *)
(* Extension: grammar derivation vs training-sample size               *)
(* ------------------------------------------------------------------ *)

let derivation () =
  header
    "Derivation — grammar derived from the first N Basic sources,\n\
     evaluated on Random (Sections 6/7: the grammar is derived from the\n\
     survey; vocabulary convergence implies a small sample suffices)";
  let basic = Dataset.basic () in
  let random = Dataset.random () in
  Format.printf "  %-5s %-6s %-6s %9s %9s@." "N" "prods" "prefs" "precision"
    "recall";
  List.iter
    (fun n ->
       let training = List.filteri (fun i _ -> i < n) basic.sources in
       let g = Wqi_eval.Derive.grammar_from_sources training in
       let _, _, prods, prefs = Wqi_grammar.Grammar.stats g in
       let extract html =
         Wqi_core.Extractor.conditions
           (Wqi_core.Extractor.extract ~grammar:g html)
       in
       let r = Eval.run ~extract random in
       Format.printf "  %-5d %-6d %-6d %9.3f %9.3f@." n prods prefs
         r.Eval.overall_precision r.Eval.overall_recall)
    [ 1; 3; 5; 10; 25; 50; 100; 150 ]

(* ------------------------------------------------------------------ *)
(* Extension: clustering sources by extracted schemas                  *)
(* ------------------------------------------------------------------ *)

let clustering () =
  header
    "Clustering — Random-dataset sources grouped by their *extracted*\n\
     schemas (the paper's motivating integration application [12]);\n\
     purity is measured against the true domains";
  let ds = Dataset.random () in
  let schemas =
    List.map
      (fun (s : Generator.source) ->
         { Wqi_match.Interface_match.source = s.id;
           conditions =
             Wqi_core.Extractor.conditions (Wqi_core.Extractor.extract s.html) })
      ds.sources
  in
  let domain_of =
    let table =
      List.map (fun (s : Generator.source) -> (s.id, s.domain)) ds.sources
    in
    fun (sc : Wqi_match.Interface_match.schema) -> List.assoc sc.source table
  in
  List.iter
    (fun threshold ->
       let clusters = Wqi_match.Interface_match.cluster ~threshold schemas in
       let purity = Wqi_match.Interface_match.purity ~label:domain_of clusters in
       Format.printf "  threshold %.2f: %2d clusters, purity %.3f@." threshold
         (List.length clusters) purity)
    [ 0.15; 0.25; 0.35; 0.50 ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sections =
  [ ("fig4a", fig4a); ("fig4b", fig4b); ("fig15", fig15); ("perf", perf);
    ("batch120", batch120); ("ablation-ambiguity", ablation_ambiguity);
    ("ablation-components", ablation_components); ("baseline", baseline);
    ("refinement", refinement); ("derivation", derivation);
    ("clustering", clustering) ]

(* ------------------------------------------------------------------ *)
(* JSON regression record (--json)                                     *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_json file =
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema_version\": 6,\n";
  p "  \"smoke\": %b" !smoke;
  (match !json_perf with
   | None -> ()
   | Some rows ->
     p ",\n  \"perf\": [\n";
     List.iteri
       (fun i r ->
          p
            "    {\"name\": \"%s\", \"tokens\": %d, \"ns_per_run\": %s, \
             \"r_square\": %s, \"created\": %d, \"live\": %d, \
             \"guards_tried\": %d, \"guards_admitted\": %d, \
             \"index_probes\": %d, \"index_pruned\": %d, \
             \"guards_tried_nohints\": %d, \"minor_words\": %s, \
             \"major_words\": %s}%s\n"
            (json_escape r.row_name) r.row_tokens
            (json_float r.row_ns_per_run)
            (json_float r.row_r_square)
            r.row_created r.row_live
            r.row_guards_tried r.row_guards_admitted
            r.row_index_probes r.row_index_pruned
            r.row_guards_tried_nohints
            (json_float r.row_minor_words)
            (json_float r.row_major_words)
            (if i = List.length rows - 1 then "" else ","))
       rows;
     p "  ]");
  (match !json_batch with
   | None -> ()
   | Some b ->
     p ",\n  \"batch120\": {\n";
     p "    \"interfaces\": %d,\n" b.b_interfaces;
     p "    \"avg_tokens\": %s,\n" (json_float b.b_avg_tokens);
     p "    \"cores\": %d,\n" b.b_cores;
     p "    \"jobs\": %d,\n" b.b_jobs;
     p "    \"seconds_jobs1\": %s,\n" (json_float b.b_seconds_jobs1);
     p "    \"seconds_jobsN\": %s,\n" (json_float b.b_seconds_jobsn);
     p "    \"speedup\": %s,\n"
       (json_float (b.b_seconds_jobs1 /. b.b_seconds_jobsn));
     p "    \"instances_created\": %d,\n" b.b_instances_created;
     p "    \"trace\": {\n";
     p "      \"off_seconds\": %s,\n" (json_float b.b_trace_off_seconds);
     p "      \"on_seconds\": %s,\n" (json_float b.b_trace_on_seconds);
     p "      \"on_off_ratio\": %s\n"
       (json_float (b.b_trace_on_seconds /. b.b_trace_off_seconds));
     p "    },\n";
     p "    \"quality\": {\n";
     p "      \"off_seconds\": %s,\n" (json_float b.b_quality_off_seconds);
     p "      \"on_seconds\": %s,\n" (json_float b.b_quality_on_seconds);
     p "      \"on_off_ratio\": %s\n"
       (json_float (b.b_quality_on_seconds /. b.b_quality_off_seconds));
     p "    },\n";
     let g = b.b_governed in
     p "    \"governed\": {\n";
     p "      \"deadline_ms\": %d,\n" g.g_deadline_ms;
     p "      \"max_instances\": %d,\n" g.g_max_instances;
     p "      \"seconds\": %s,\n" (json_float g.g_seconds);
     p "      \"complete\": %d,\n" g.g_complete;
     p "      \"degraded\": %d,\n" g.g_degraded;
     p "      \"failed\": %d,\n" g.g_failed;
     p "      \"trips\": %d\n" g.g_trips;
     p "    }\n";
     p "  }");
  p "\n}\n";
  close_out oc;
  Format.eprintf "wrote %s@." file

let () =
  let rec parse_args json acc = function
    | [] -> (json, List.rev acc)
    | "--json" :: file :: rest -> parse_args (Some file) acc rest
    | [ "--json" ] ->
      Format.eprintf "--json requires a file argument@.";
      exit 1
    | "--smoke" :: rest ->
      smoke := true;
      parse_args json acc rest
    | s :: rest -> parse_args json (s :: acc) rest
  in
  let json, requested =
    parse_args None [] (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    if requested = [] then List.map fst sections else requested
  in
  List.iter
    (fun name ->
       match List.assoc_opt name sections with
       | Some f -> f ()
       | None ->
         Format.eprintf "unknown section %s; available: %s@." name
           (String.concat ", " (List.map fst sections));
         exit 1)
    requested;
  match json with None -> () | Some file -> write_json file
