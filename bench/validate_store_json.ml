(* Schema validator for the BENCH_store.json record emitted by
   store_bench.exe --json (schema 1): the persistent-store counterpart
   of validate_bench_json / validate_serve_json.  Wired into
   `dune runtest` (and `dune build @store-smoke`) against a smoke run
   so harness or store regressions fail the suite.

   Acceptance gates (ISSUE: persistent store tentpole):
     - the cold pass extracted every document and hit nothing — always
       (the bench starts from an empty directory);
     - the resumed pass answered {b every} document from the store and
       extracted {b zero} — always; a single re-extraction means keys
       or replay are broken;
     - the reopen replayed exactly [docs] manifest lines and dropped
       none — always (the bench writer exits cleanly);
     - zero identity mismatches over the sampled sweep — always; a
       stored value that differs from a fresh extraction violates the
       store's core contract;
     - resumed at least 10x faster than cold — full runs only; smoke
       corpora are small enough that fixed open/replay costs dominate,
       so they gate at 1.5x, enough to catch a resume that silently
       re-extracts. *)

open Json_min

let int_field ctx obj name =
  let f = non_negative (ctx ^ "." ^ name) (field obj name) in
  if Float.of_int (Float.to_int f) <> f then
    bad "%s.%s: expected integer, got %g" ctx name f;
  Float.to_int f

let check_pass ctx p =
  let seconds = positive (ctx ^ ".seconds") (field p "seconds") in
  let extracted = int_field ctx p "extracted" in
  let hits = int_field ctx p "store_hits" in
  (seconds, extracted, hits)

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: validate_store_json BENCH_store.json";
      exit 2
  in
  match
    let j = parse (read_file file) in
    let version = num "wqi_store_bench_version"
        (field j "wqi_store_bench_version")
    in
    if version <> 1. then bad "unsupported schema version %g" version;
    let docs = int_field "record" j "docs" in
    let _jobs = int_field "record" j "jobs" in
    if docs < 1 then bad "docs: expected >= 1, got %d" docs;
    let smoke = match field j "smoke" with
      | Bool b -> b
      | _ -> bad "smoke: expected bool"
    in
    let _cold_s, cold_ext, cold_hits = check_pass "cold" (field j "cold") in
    if cold_ext <> docs then
      bad "cold.extracted: expected %d (every document), got %d" docs cold_ext;
    if cold_hits <> 0 then
      bad "cold.store_hits: expected 0 (empty store), got %d" cold_hits;
    let resumed = field j "resumed" in
    let _res_s, res_ext, res_hits = check_pass "resumed" resumed in
    if res_hits <> docs then
      bad "resumed.store_hits: expected %d (every document), got %d" docs
        res_hits;
    if res_ext <> 0 then
      bad "resumed.extracted: expected 0, got %d — resume is re-extracting"
        res_ext;
    let replayed = int_field "resumed" resumed "replayed" in
    if replayed <> docs then
      bad "resumed.replayed: expected %d manifest lines, got %d" docs replayed;
    let dropped = int_field "resumed" resumed "dropped" in
    if dropped <> 0 then
      bad "resumed.dropped: expected 0 (clean writer), got %d" dropped;
    let checked = int_field "record" j "identity_checked" in
    if checked < 1 then bad "identity_checked: expected >= 1, got %d" checked;
    let mismatches = int_field "record" j "identity_mismatches" in
    if mismatches <> 0 then
      bad "identity_mismatches: expected 0, got %d — stored bytes differ \
           from fresh extraction"
        mismatches;
    let entries = int_field "record" j "entries" in
    if entries <> docs then
      bad "entries: expected %d, got %d" docs entries;
    let _bytes = positive "bytes" (field j "bytes") in
    let speedup = positive "speedup" (field j "speedup") in
    let floor = if smoke then 1.5 else 10. in
    if speedup < floor then
      bad "speedup: expected >= %gx (%s run), got %.2fx" floor
        (if smoke then "smoke" else "full")
        speedup;
    (docs, speedup)
  with
  | docs, speedup ->
    Printf.printf "%s: ok (%d docs, resumed %.1fx faster than cold)\n" file
      docs speedup
  | exception Bad msg ->
    Printf.eprintf "%s: %s\n" file msg;
    exit 1
