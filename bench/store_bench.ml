(* Scalability benchmark for the persistent extraction store: how much
   does resuming over a warm store save versus a cold crawl?

   The harness generates a deterministic corpus in memory, runs a cold
   ingestion pass (every document extracted and put), closes and reopens
   the store — exercising the manifest replay a real resumed crawl goes
   through — then runs a resumed pass over the identical corpus (every
   document answered from the store).  A final identity sweep
   re-extracts a sample fresh and byte-compares against the stored
   values, pinning the store's core contract: a hit is indistinguishable
   from a fresh extraction.

   Emits a BENCH_store.json record (see validate_store_json.ml for the
   schema and acceptance gates):

     {"wqi_store_bench_version": 1,
      "docs": N, "jobs": J, "smoke": false,
      "cold":    {"seconds": s, "extracted": N, "store_hits": 0},
      "resumed": {"seconds": s, "extracted": 0, "store_hits": N,
                  "replayed": N, "dropped": 0},
      "speedup": cold.seconds / resumed.seconds,
      "identity_checked": K, "identity_mismatches": 0,
      "entries": N, "bytes": B}

   --smoke shrinks the corpus so the harness itself is exercised from
   `dune runtest` in a few hundred milliseconds; the speedup gate is
   relaxed accordingly (tiny corpora measure open/replay overhead as
   much as extraction). *)

module Generator = Wqi_corpus.Generator
module Vocabulary = Wqi_corpus.Vocabulary
module Prng = Wqi_corpus.Prng
module Extractor = Wqi_core.Extractor
module Engine = Wqi_parser.Engine
module Pool = Wqi_parallel.Pool
module Store = Wqi_store.Store
module Key = Wqi_store.Key

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

type doc = { d_name : string; d_html : string; d_key : Key.t }

let corpus config n =
  let g = Prng.create 42L in
  let domains = Array.of_list Vocabulary.all in
  let pack = config.Extractor.Config.grammar in
  Array.init n (fun i ->
      let d_name = Printf.sprintf "doc-%06d" i in
      let domain = domains.(i mod Array.length domains) in
      let complexity = if i land 1 = 0 then `Simple else `Rich in
      let src =
        Generator.generate g ~id:d_name ~domain ~complexity ~oog_prob:0.1 ()
      in
      let spec =
        Key.spec ~grammar_name:pack.Engine.name
          ~grammar_version:pack.Engine.version ~name:d_name
          config.Extractor.Config.budget
      in
      { d_name;
        d_html = src.Generator.html;
        d_key = Key.make ~html:src.Generator.html ~spec })

(* One ingestion pass: probe first, extract-and-put on miss — the same
   shape wqi_batch --store and wqi_crawl use.  Returns per-document
   `Hit / `Extracted so both passes share one code path and the
   validator can gate on exact counts. *)
let pass config store jobs docs =
  let t0 = Unix.gettimeofday () in
  let results =
    Pool.run ~jobs (fun pool ->
        Pool.map_array pool
          (fun d ->
            match Store.find store d.d_key with
            | Some _ -> `Hit
            | None ->
              let e = Extractor.run config (Extractor.Html d.d_html) in
              let bytes = Extractor.export ~timings:false ~name:d.d_name e in
              Store.put store d.d_key
                ~meta:
                  { Store.source = d.d_name;
                    grammar = "std@1";
                    outcome = "complete";
                    domain = "";
                    quality = None }
                bytes;
              `Extracted)
          docs)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let hits = ref 0 and extracted = ref 0 in
  Array.iter
    (function `Hit -> incr hits | `Extracted -> incr extracted)
    results;
  (seconds, !hits, !extracted)

let () =
  let docs_n = ref 2000 in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let smoke = ref false in
  let json = ref None in
  let dir = ref "_store_bench" in
  let rec parse = function
    | [] -> ()
    | "--docs" :: n :: rest -> docs_n := int_of_string n; parse rest
    | "--jobs" :: n :: rest -> jobs := int_of_string n; parse rest
    | "--json" :: f :: rest -> json := Some f; parse rest
    | "--dir" :: d :: rest -> dir := d; parse rest
    | "--smoke" :: rest -> smoke := true; parse rest
    | arg :: _ ->
      Format.eprintf
        "unknown argument %s@.usage: store_bench [--docs N] [--jobs N] \
         [--json FILE] [--dir DIR] [--smoke]@."
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke && !docs_n = 2000 then docs_n := 120;
  let config = Extractor.Config.default in
  let docs = corpus config !docs_n in
  let total_bytes =
    Array.fold_left (fun acc d -> acc + String.length d.d_html) 0 docs
  in
  Format.eprintf "corpus: %d documents, %d bytes@." !docs_n total_bytes;

  rm_rf !dir;
  let store = Store.open_ !dir in
  let cold_s, cold_hits, cold_ext = pass config store !jobs docs in
  Store.close store;
  Format.eprintf "cold:    %.3f s, %d extracted, %d hits@." cold_s cold_ext
    cold_hits;

  (* Reopen: the resumed pass pays the manifest replay a real resumed
     crawl pays, so the speedup is honest about the fixed cost too. *)
  let store = Store.open_ !dir in
  let resumed_s, res_hits, res_ext = pass config store !jobs docs in
  let st = Store.stats store in
  Format.eprintf "resumed: %.3f s, %d hits, %d extracted (replayed %d)@."
    resumed_s res_hits res_ext st.Store.replayed;

  (* Identity sweep: stored bytes must equal a fresh extraction's. *)
  let check_n = min !docs_n 64 in
  let mismatches = ref 0 in
  for i = 0 to check_n - 1 do
    let d = docs.(i) in
    let stored = Store.find store d.d_key in
    let fresh =
      Extractor.export ~timings:false ~name:d.d_name
        (Extractor.run config (Extractor.Html d.d_html))
    in
    if stored <> Some fresh then begin
      incr mismatches;
      Format.eprintf "identity mismatch: %s@." d.d_name
    end
  done;
  Store.close store;
  let speedup = if resumed_s > 0. then cold_s /. resumed_s else 0. in
  Format.eprintf
    "speedup: %.1fx; identity: %d checked, %d mismatches; %d entries, %d \
     value bytes@."
    speedup check_n !mismatches st.Store.entries st.Store.bytes;

  let record =
    Printf.sprintf
      "{\"wqi_store_bench_version\":1,\"docs\":%d,\"jobs\":%d,\
       \"smoke\":%b,\n\
       \ \"cold\":{\"seconds\":%.6f,\"extracted\":%d,\"store_hits\":%d},\n\
       \ \"resumed\":{\"seconds\":%.6f,\"extracted\":%d,\"store_hits\":%d,\
       \"replayed\":%d,\"dropped\":%d},\n\
       \ \"speedup\":%.3f,\"identity_checked\":%d,\
       \"identity_mismatches\":%d,\"entries\":%d,\"bytes\":%d}\n"
      !docs_n !jobs !smoke cold_s cold_ext cold_hits resumed_s res_ext
      res_hits st.Store.replayed st.Store.dropped speedup check_n !mismatches
      st.Store.entries st.Store.bytes
  in
  (match !json with
   | Some file ->
     let oc = open_out file in
     output_string oc record;
     close_out oc
   | None -> print_string record);
  rm_rf !dir;
  exit (if !mismatches = 0 && res_ext = 0 then 0 else 1)
