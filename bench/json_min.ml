(* Minimal recursive-descent JSON parser shared by the bench-record
   validators (validate_bench_json, validate_serve_json).  The build
   environment has no JSON library; this handles exactly the subset the
   emitters produce. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

module Parser = struct
  type st = { s : string; mutable pos : int }

  let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
    | _ -> ()

  let expect st c =
    skip_ws st;
    match peek st with
    | Some c' when c' = c -> advance st
    | _ -> bad "expected %c at offset %d" c st.pos

  let literal st word value =
    if
      st.pos + String.length word <= String.length st.s
      && String.sub st.s st.pos (String.length word) = word
    then begin
      st.pos <- st.pos + String.length word;
      value
    end
    else bad "bad literal at offset %d" st.pos

  let string st =
    expect st '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> bad "unterminated string"
      | Some '"' -> advance st
      | Some '\\' ->
        advance st;
        (match peek st with
         | Some 'n' -> Buffer.add_char b '\n'
         | Some 't' -> Buffer.add_char b '\t'
         | Some 'u' ->
           (* \uXXXX: we only emit ASCII escapes; decode as a byte. *)
           let hex = String.sub st.s (st.pos + 1) 4 in
           Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
           st.pos <- st.pos + 4
         | Some c -> Buffer.add_char b c
         | None -> bad "unterminated escape");
        advance st;
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
    in
    go ();
    Buffer.contents b

  let number st =
    let start = st.pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek st with Some c -> is_num_char c | None -> false) do
      advance st
    done;
    if st.pos = start then bad "expected number at offset %d" start;
    float_of_string (String.sub st.s start (st.pos - start))

  let rec value st =
    skip_ws st;
    match peek st with
    | Some '{' -> obj st
    | Some '[' -> arr st
    | Some '"' -> Str (string st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> Num (number st)
    | None -> bad "unexpected end of input"

  and obj st =
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = string st in
        expect st ':';
        let v = value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
        | _ -> bad "expected , or } at offset %d" st.pos
      in
      fields []
    end

  and arr st =
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec items acc =
        let v = value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          Arr (List.rev (v :: acc))
        | _ -> bad "expected , or ] at offset %d" st.pos
      in
      items []
    end

  let parse s =
    let st = { s; pos = 0 } in
    let v = value st in
    skip_ws st;
    if st.pos <> String.length s then bad "trailing garbage at %d" st.pos;
    v
end

let parse = Parser.parse

(* --- schema-check helpers --- *)

let field obj name =
  match obj with
  | Obj fields ->
    (match List.assoc_opt name fields with
     | Some v -> v
     | None -> bad "missing field %S" name)
  | _ -> bad "expected object while looking for %S" name

(* For fields later schema revisions added behind a flag (e.g. the
   --grammar-dir run): absent is fine, present must validate. *)
let field_opt obj name =
  match obj with
  | Obj fields -> List.assoc_opt name fields
  | _ -> bad "expected object while looking for %S" name

let num ctx = function Num f -> f | _ -> bad "%s: expected number" ctx
let str ctx = function Str s -> s | _ -> bad "%s: expected string" ctx

let positive ctx v =
  let f = num ctx v in
  if not (f > 0.) then bad "%s: expected > 0, got %g" ctx f;
  f

let non_negative ctx v =
  let f = num ctx v in
  if not (f >= 0.) then bad "%s: expected >= 0, got %g" ctx f;
  f

let read_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s
