(* Schema validator for the BENCH_parse.json regression record emitted
   by main.exe --json.  Wired into the test alias so a change that
   breaks the emitter (or the schema) fails `dune runtest` instead of
   silently rotting the perf trajectory.  JSON parsing lives in
   Json_min (shared with validate_serve_json). *)

open Json_min

(* Pre-arena steady-state allocation per parse (minor words, measured
   at the last boxed-engine commit), keyed by token count.  The arena
   engine must stay strictly below these: creeping allocation on the
   parse path is exactly the regression this record exists to catch. *)
let minor_words_baseline =
  [ (10., 60359.); (15., 68702.); (20., 104327.); (25., 89772.);
    (30., 120548.) ]

(* Pre-arena ns-per-run of the committed full-quota rows.  The tentpole
   gate: parse/25 and parse/30 must hold at least a 3x speedup over the
   boxed engine.  Checked on full runs only — smoke quotas are too
   short for a stable OLS fit. *)
let speedup_floor = [ (25., 681581. /. 3.); (30., 897801. /. 3.) ]

let check_perf ~smoke = function
  | Arr rows ->
    if rows = [] then bad "perf: empty";
    let sized = ref [] in
    List.iteri
      (fun i row ->
         let ctx = Printf.sprintf "perf[%d]" i in
         let name = str (ctx ^ ".name") (field row "name") in
         if name = "" then bad "%s.name: empty" ctx;
         let tokens = positive (ctx ^ ".tokens") (field row "tokens") in
         let ns = positive (ctx ^ ".ns_per_run") (field row "ns_per_run") in
         sized := (tokens, ns, ctx) :: !sized;
         ignore (num (ctx ^ ".r_square") (field row "r_square"));
         ignore (positive (ctx ^ ".created") (field row "created"));
         ignore (non_negative (ctx ^ ".live") (field row "live"));
         (* Guard-pressure counters (schema 3): the hinted run must
            actually exercise guards, admit no more than it tries, and
            never try more than the unhinted reference — hints only ever
            remove candidates. *)
         let tried = positive (ctx ^ ".guards_tried") (field row "guards_tried") in
         let admitted =
           non_negative (ctx ^ ".guards_admitted") (field row "guards_admitted")
         in
         if admitted > tried then
           bad "%s: guards_admitted %g > guards_tried %g" ctx admitted tried;
         ignore (non_negative (ctx ^ ".index_probes") (field row "index_probes"));
         ignore (non_negative (ctx ^ ".index_pruned") (field row "index_pruned"));
         let tried0 =
           positive (ctx ^ ".guards_tried_nohints")
             (field row "guards_tried_nohints")
         in
         if tried > tried0 then
           bad "%s: guards_tried %g > guards_tried_nohints %g" ctx tried tried0;
         (* Allocation counters (schema 5).  The minor-words gate holds
            in smoke runs too: allocation per parse is deterministic,
            unlike the clock. *)
         let minor =
           positive (ctx ^ ".minor_words") (field row "minor_words")
         in
         ignore (non_negative (ctx ^ ".major_words") (field row "major_words"));
         (match List.assoc_opt tokens minor_words_baseline with
          | Some baseline when minor >= baseline ->
            bad
              "%s: minor_words %g >= pre-arena baseline %g at %g tokens \
               (the parse path is allocating again)"
              ctx minor baseline tokens
          | _ -> ());
         if not smoke then
           match List.assoc_opt tokens speedup_floor with
           | Some floor when ns > floor ->
             bad
               "%s: ns_per_run %g > %g at %g tokens (3x floor over the \
                boxed-engine rows)"
               ctx ns floor tokens
           | _ -> ())
      rows;
    (* Monotone-ish ladder (schema 5): with the min-ambiguity pick no
       size may be slower than the next one up by more than 10% — the
       committed parse/20 anomaly, re-asserted forever.  Full runs
       only: smoke-quota OLS fits jitter far beyond 10%. *)
    if not smoke then begin
      let sized =
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) !sized
      in
      let rec walk = function
        | (t1, ns1, ctx1) :: ((t2, ns2, _) :: _ as rest) ->
          if ns1 > 1.10 *. ns2 then
            bad
              "%s: ns_per_run %g at %g tokens exceeds 1.10 * %g at %g \
               tokens (ladder not monotone-ish)"
              ctx1 ns1 t1 ns2 t2;
          walk rest
        | _ -> ()
      in
      walk sized
    end
  | _ -> bad "perf: expected array"

let check_governed g =
  let interfaces governed =
    non_negative "batch120.governed.complete" (field governed "complete")
    +. non_negative "batch120.governed.degraded" (field governed "degraded")
    +. non_negative "batch120.governed.failed" (field governed "failed")
  in
  ignore (positive "batch120.governed.deadline_ms" (field g "deadline_ms"));
  ignore
    (positive "batch120.governed.max_instances" (field g "max_instances"));
  ignore (positive "batch120.governed.seconds" (field g "seconds"));
  ignore (non_negative "batch120.governed.trips" (field g "trips"));
  if interfaces g <= 0. then bad "batch120.governed: no interfaces counted";
  (* Governance must degrade, never fail: a Failed outcome here means an
     exception leaked out of the governed pipeline. *)
  let failed = num "batch120.governed.failed" (field g "failed") in
  if failed <> 0. then bad "batch120.governed.failed: expected 0, got %g" failed

(* Tracing must be free when off (schema 4): the disabled sweep re-runs
   the exact jobs=1 loop, so anything beyond 2% over the recorded
   baseline means a `?trace` branch leaked onto the hot path.  The gate
   is one-sided — the best-of-two disabled sweep runs warm and is
   allowed to beat the cold baseline by any margin.  The 5 ms absolute
   slack matters since the arena engine: the whole 120-document sweep
   now takes ~30 ms, so a relative-only gate would sit below scheduler
   jitter. *)
let check_trace ~seconds_jobs1 t =
  let off = positive "batch120.trace.off_seconds" (field t "off_seconds") in
  let on = positive "batch120.trace.on_seconds" (field t "on_seconds") in
  ignore (positive "batch120.trace.on_off_ratio" (field t "on_off_ratio"));
  if off > (1.02 *. seconds_jobs1) +. 0.005 then
    bad "batch120.trace.off_seconds: %g > 1.02 * seconds_jobs1 %g + 5 ms \
         (disabled tracing is not free)"
      off seconds_jobs1;
  if on < off *. 0.5 then
    bad "batch120.trace: on_seconds %g implausibly below off_seconds %g" on off

(* Quality records must stay off the hot path (schema 6): computing and
   rendering one record per document is a few list walks over the model
   errors, so the enabled sweep may cost at most 3% over the bare
   full-pipeline sweep (plus the same 5 ms absolute slack as the trace
   gate — the sweeps are tens of milliseconds). *)
let check_quality q =
  let off = positive "batch120.quality.off_seconds" (field q "off_seconds") in
  let on = positive "batch120.quality.on_seconds" (field q "on_seconds") in
  ignore (positive "batch120.quality.on_off_ratio" (field q "on_off_ratio"));
  if on > (1.03 *. off) +. 0.005 then
    bad
      "batch120.quality.on_seconds: %g > 1.03 * off_seconds %g + 5 ms \
       (quality records are not cheap any more)"
      on off

let check_batch b =
  ignore (positive "batch120.interfaces" (field b "interfaces"));
  ignore (positive "batch120.avg_tokens" (field b "avg_tokens"));
  ignore (positive "batch120.cores" (field b "cores"));
  ignore (positive "batch120.jobs" (field b "jobs"));
  let seconds_jobs1 =
    positive "batch120.seconds_jobs1" (field b "seconds_jobs1")
  in
  ignore (positive "batch120.seconds_jobsN" (field b "seconds_jobsN"));
  ignore (positive "batch120.speedup" (field b "speedup"));
  ignore (positive "batch120.instances_created" (field b "instances_created"));
  check_trace ~seconds_jobs1 (field b "trace");
  check_quality (field b "quality");
  check_governed (field b "governed")

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: validate_bench_json FILE";
      exit 2
  in
  match
    let j = parse (read_file file) in
    let version = num "schema_version" (field j "schema_version") in
    if version <> 6. then bad "schema_version: expected 6, got %g" version;
    let smoke =
      match field j "smoke" with
      | Bool b -> b
      | _ -> bad "smoke: expected bool"
    in
    check_perf ~smoke (field j "perf");
    check_batch (field j "batch120")
  with
  | () -> Printf.printf "%s: schema ok\n" file
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID — %s\n" file msg;
    exit 1
