(* Schema validator for the BENCH_parse.json regression record emitted
   by main.exe --json.  Wired into the test alias so a change that
   breaks the emitter (or the schema) fails `dune runtest` instead of
   silently rotting the perf trajectory.

   The build environment has no JSON library, so this carries a minimal
   recursive-descent parser for the subset JSON we emit. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

module Parser = struct
  type st = { s : string; mutable pos : int }

  let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
    | _ -> ()

  let expect st c =
    skip_ws st;
    match peek st with
    | Some c' when c' = c -> advance st
    | _ -> bad "expected %c at offset %d" c st.pos

  let literal st word value =
    if
      st.pos + String.length word <= String.length st.s
      && String.sub st.s st.pos (String.length word) = word
    then begin
      st.pos <- st.pos + String.length word;
      value
    end
    else bad "bad literal at offset %d" st.pos

  let string st =
    expect st '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> bad "unterminated string"
      | Some '"' -> advance st
      | Some '\\' ->
        advance st;
        (match peek st with
         | Some 'n' -> Buffer.add_char b '\n'
         | Some 't' -> Buffer.add_char b '\t'
         | Some 'u' ->
           (* \uXXXX: we only emit ASCII escapes; decode as a byte. *)
           let hex = String.sub st.s (st.pos + 1) 4 in
           Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
           st.pos <- st.pos + 4
         | Some c -> Buffer.add_char b c
         | None -> bad "unterminated escape");
        advance st;
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
    in
    go ();
    Buffer.contents b

  let number st =
    let start = st.pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek st with Some c -> is_num_char c | None -> false) do
      advance st
    done;
    if st.pos = start then bad "expected number at offset %d" start;
    float_of_string (String.sub st.s start (st.pos - start))

  let rec value st =
    skip_ws st;
    match peek st with
    | Some '{' -> obj st
    | Some '[' -> arr st
    | Some '"' -> Str (string st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> Num (number st)
    | None -> bad "unexpected end of input"

  and obj st =
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = string st in
        expect st ':';
        let v = value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
        | _ -> bad "expected , or } at offset %d" st.pos
      in
      fields []
    end

  and arr st =
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec items acc =
        let v = value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          Arr (List.rev (v :: acc))
        | _ -> bad "expected , or ] at offset %d" st.pos
      in
      items []
    end

  let parse s =
    let st = { s; pos = 0 } in
    let v = value st in
    skip_ws st;
    if st.pos <> String.length s then bad "trailing garbage at %d" st.pos;
    v
end

(* --- schema checks --- *)

let field obj name =
  match obj with
  | Obj fields ->
    (match List.assoc_opt name fields with
     | Some v -> v
     | None -> bad "missing field %S" name)
  | _ -> bad "expected object while looking for %S" name

let num ctx = function Num f -> f | _ -> bad "%s: expected number" ctx
let str ctx = function Str s -> s | _ -> bad "%s: expected string" ctx

let positive ctx v =
  let f = num ctx v in
  if not (f > 0.) then bad "%s: expected > 0, got %g" ctx f;
  f

let non_negative ctx v =
  let f = num ctx v in
  if not (f >= 0.) then bad "%s: expected >= 0, got %g" ctx f;
  f

let check_perf = function
  | Arr rows ->
    if rows = [] then bad "perf: empty";
    List.iteri
      (fun i row ->
         let ctx = Printf.sprintf "perf[%d]" i in
         let name = str (ctx ^ ".name") (field row "name") in
         if name = "" then bad "%s.name: empty" ctx;
         ignore (positive (ctx ^ ".tokens") (field row "tokens"));
         ignore (positive (ctx ^ ".ns_per_run") (field row "ns_per_run"));
         ignore (num (ctx ^ ".r_square") (field row "r_square"));
         ignore (positive (ctx ^ ".created") (field row "created"));
         ignore (non_negative (ctx ^ ".live") (field row "live"));
         (* Guard-pressure counters (schema 3): the hinted run must
            actually exercise guards, admit no more than it tries, and
            never try more than the unhinted reference — hints only ever
            remove candidates. *)
         let tried = positive (ctx ^ ".guards_tried") (field row "guards_tried") in
         let admitted =
           non_negative (ctx ^ ".guards_admitted") (field row "guards_admitted")
         in
         if admitted > tried then
           bad "%s: guards_admitted %g > guards_tried %g" ctx admitted tried;
         ignore (non_negative (ctx ^ ".index_probes") (field row "index_probes"));
         ignore (non_negative (ctx ^ ".index_pruned") (field row "index_pruned"));
         let tried0 =
           positive (ctx ^ ".guards_tried_nohints")
             (field row "guards_tried_nohints")
         in
         if tried > tried0 then
           bad "%s: guards_tried %g > guards_tried_nohints %g" ctx tried tried0)
      rows
  | _ -> bad "perf: expected array"

let check_governed g =
  let interfaces governed =
    non_negative "batch120.governed.complete" (field governed "complete")
    +. non_negative "batch120.governed.degraded" (field governed "degraded")
    +. non_negative "batch120.governed.failed" (field governed "failed")
  in
  ignore (positive "batch120.governed.deadline_ms" (field g "deadline_ms"));
  ignore
    (positive "batch120.governed.max_instances" (field g "max_instances"));
  ignore (positive "batch120.governed.seconds" (field g "seconds"));
  ignore (non_negative "batch120.governed.trips" (field g "trips"));
  if interfaces g <= 0. then bad "batch120.governed: no interfaces counted";
  (* Governance must degrade, never fail: a Failed outcome here means an
     exception leaked out of the governed pipeline. *)
  let failed = num "batch120.governed.failed" (field g "failed") in
  if failed <> 0. then bad "batch120.governed.failed: expected 0, got %g" failed

let check_batch b =
  ignore (positive "batch120.interfaces" (field b "interfaces"));
  ignore (positive "batch120.avg_tokens" (field b "avg_tokens"));
  ignore (positive "batch120.cores" (field b "cores"));
  ignore (positive "batch120.jobs" (field b "jobs"));
  ignore (positive "batch120.seconds_jobs1" (field b "seconds_jobs1"));
  ignore (positive "batch120.seconds_jobsN" (field b "seconds_jobsN"));
  ignore (positive "batch120.speedup" (field b "speedup"));
  ignore (positive "batch120.instances_created" (field b "instances_created"));
  check_governed (field b "governed")

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: validate_bench_json FILE";
      exit 2
  in
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match
    let j = Parser.parse s in
    let version = num "schema_version" (field j "schema_version") in
    if version <> 3. then bad "schema_version: expected 3, got %g" version;
    (match field j "smoke" with
     | Bool _ -> ()
     | _ -> bad "smoke: expected bool");
    check_perf (field j "perf");
    check_batch (field j "batch120")
  with
  | () -> Printf.printf "%s: schema ok\n" file
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID — %s\n" file msg;
    exit 1
