(* Schema validator for the BENCH_serve.json record emitted by
   loadgen.exe --json: the serving-layer counterpart of
   validate_bench_json.  Wired into `dune runtest` against a smoke run
   so emitter regressions fail the suite.

   Acceptance gates (ISSUE: serving tentpole):
     - zero failed requests, in every pass of every run — always;
     - server drained and exited 0 after SIGTERM — always (spawn mode);
     - warm pass answered entirely from cache — always;
     - warm-cache p50 at least 10x under cold p50 — full runs only
       (smoke corpora are too small for stable percentiles);
     - cold throughput at the highest jobs count at least 2x the
       jobs=1 throughput — full runs on machines with >= 4 cores only,
       following the BENCH_parse.json convention: this container
       exposes a single core, so parallel speedup is recorded as
       measured and only asserted where it is physically possible. *)

open Json_min

let check_pass ctx p =
  let seconds = positive (ctx ^ ".seconds") (field p "seconds") in
  let rps = positive (ctx ^ ".rps") (field p "rps") in
  let requests = positive (ctx ^ ".requests") (field p "requests") in
  let failed = non_negative (ctx ^ ".failed") (field p "failed") in
  if failed <> 0. then bad "%s.failed: expected 0, got %g" ctx failed;
  let hits = non_negative (ctx ^ ".cache_hits") (field p "cache_hits") in
  if hits > requests then
    bad "%s.cache_hits %g > requests %g" ctx hits requests;
  let p50 = non_negative (ctx ^ ".p50_ms") (field p "p50_ms") in
  let p95 = non_negative (ctx ^ ".p95_ms") (field p "p95_ms") in
  let p99 = non_negative (ctx ^ ".p99_ms") (field p "p99_ms") in
  if p95 < p50 then bad "%s: p95 %g < p50 %g" ctx p95 p50;
  if p99 < p95 then bad "%s: p99 %g < p95 %g" ctx p99 p95;
  (* rps must agree with requests/seconds (loose: rounding in emit) *)
  let implied = requests /. seconds in
  if implied > 0. && (rps /. implied < 0.9 || rps /. implied > 1.1) then
    bad "%s.rps %g inconsistent with requests/seconds %g" ctx rps implied;
  (requests, hits)

let check_run ~interfaces i run =
  let ctx = Printf.sprintf "runs[%d]" i in
  let jobs = non_negative (ctx ^ ".jobs") (field run "jobs") in
  let cold_requests, _ = check_pass (ctx ^ ".cold") (field run "cold") in
  let warm_requests, warm_hits =
    check_pass (ctx ^ ".warm") (field run "warm")
  in
  if cold_requests <> interfaces then
    bad "%s.cold.requests %g <> interfaces %g" ctx cold_requests interfaces;
  (* The warm pass replays the identical corpus under the identical
     budget: with the cache on, every request must be a cache hit. *)
  if warm_hits <> warm_requests then
    bad "%s.warm: only %g/%g cache hits — cache not answering identical \
         requests"
      ctx warm_hits warm_requests;
  (match field run "server_exit" with
   | Null -> () (* external-server mode: lifecycle not observed *)
   | Num 0. -> ()
   | Num c -> bad "%s.server_exit: expected 0 (graceful drain), got %g" ctx c
   | _ -> bad "%s.server_exit: expected number or null" ctx);
  jobs

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: validate_serve_json FILE";
      exit 2
  in
  match
    let j = parse (read_file file) in
    let version = num "schema_version" (field j "schema_version") in
    if version <> 1. then bad "schema_version: expected 1, got %g" version;
    let smoke =
      match field j "smoke" with
      | Bool b -> b
      | _ -> bad "smoke: expected bool"
    in
    let interfaces = positive "interfaces" (field j "interfaces") in
    ignore (positive "clients" (field j "clients"));
    let cores = positive "cores" (field j "cores") in
    let runs =
      match field j "runs" with
      | Arr (_ :: _ as runs) -> runs
      | Arr [] -> bad "runs: empty"
      | _ -> bad "runs: expected array"
    in
    let jobs = List.mapi (check_run ~interfaces) runs in
    (match jobs with
     | first :: (_ :: _ as rest) ->
       if List.exists (fun j -> j <= first) rest then
         bad "runs: jobs values must increase (got %s)"
           (String.concat "," (List.map string_of_float jobs))
     | _ -> ());
    let speedup =
      positive "throughput_speedup_jobs" (field j "throughput_speedup_jobs")
    in
    let warm_ratio =
      positive "warm_over_cold_p50" (field j "warm_over_cold_p50")
    in
    if not smoke then begin
      if warm_ratio < 10. then
        bad "warm_over_cold_p50: expected >= 10, got %g" warm_ratio;
      if cores >= 4. && List.length runs > 1 && speedup < 2. then
        bad "throughput_speedup_jobs: expected >= 2 on %g cores, got %g"
          cores speedup
    end
  with
  | () -> Printf.printf "%s: schema ok\n" file
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID — %s\n" file msg;
    exit 1
