(* Schema validator for the BENCH_serve.json record emitted by
   loadgen.exe --json (schema 2): the serving-layer counterpart of
   validate_bench_json.  Wired into `dune runtest` against a smoke run
   so emitter regressions fail the suite.

   Acceptance gates (ISSUE: shared-nothing serving tentpole):
     - zero failed requests, in every pass of every run — always;
     - zero byte-identity mismatches (warm == cold, and every run ==
       the first run's responses) — always;
     - server drained and exited 0 after SIGTERM — always (spawn mode);
     - warm pass answered entirely from cache — always (connection
       affinity makes this hold even with per-domain cache shards);
     - the per-domain request split accounts for every request of both
       passes, over exactly [jobs] domains — whenever the scrape
       captured it;
     - warm-cache p50 at least 10x under cold p50 — full runs only
       (smoke corpora are too small for stable percentiles);
     - warm throughput at the highest jobs count at least
       0.75 x (jobs ratio) x the jobs=1 throughput — full runs on
       machines with >= 4 cores only, following the BENCH_parse.json
       convention: a 1-core container records speedup as measured and
       only asserts it where parallelism is physically possible;
     - when the record carries a grammar_dir_run (loadgen
       --grammar-dir): the run validates like any other (zero failures,
       zero identity mismatches — the registry's std.wqg shadows the
       built-in grammar, so byte-identity proves loaded == compiled
       over the serving path), its registry holds > 1 grammar, and on
       full runs the warm throughput stays within 3% of the
       jobs-matched single-grammar run (per-request grammar resolution
       must be free on the cache-hit path). *)

open Json_min

let check_pass ctx p =
  let seconds = positive (ctx ^ ".seconds") (field p "seconds") in
  let rps = positive (ctx ^ ".rps") (field p "rps") in
  let requests = positive (ctx ^ ".requests") (field p "requests") in
  let failed = non_negative (ctx ^ ".failed") (field p "failed") in
  if failed <> 0. then bad "%s.failed: expected 0, got %g" ctx failed;
  let hits = non_negative (ctx ^ ".cache_hits") (field p "cache_hits") in
  if hits > requests then
    bad "%s.cache_hits %g > requests %g" ctx hits requests;
  let p50 = non_negative (ctx ^ ".p50_ms") (field p "p50_ms") in
  let p95 = non_negative (ctx ^ ".p95_ms") (field p "p95_ms") in
  let p99 = non_negative (ctx ^ ".p99_ms") (field p "p99_ms") in
  if p95 < p50 then bad "%s: p95 %g < p50 %g" ctx p95 p50;
  if p99 < p95 then bad "%s: p99 %g < p95 %g" ctx p99 p95;
  (* rps must agree with requests/seconds (loose: rounding in emit) *)
  let implied = requests /. seconds in
  if implied > 0. && (rps /. implied < 0.9 || rps /. implied > 1.1) then
    bad "%s.rps %g inconsistent with requests/seconds %g" ctx rps implied;
  (requests, hits, rps)

let check_run ~interfaces i run =
  let ctx =
    if i < 0 then "grammar_dir_run" else Printf.sprintf "runs[%d]" i
  in
  let jobs = non_negative (ctx ^ ".jobs") (field run "jobs") in
  ignore (positive (ctx ^ ".cores") (field run "cores"));
  let cold_requests, _, _ = check_pass (ctx ^ ".cold") (field run "cold") in
  let warm_requests, warm_hits, warm_rps =
    check_pass (ctx ^ ".warm") (field run "warm")
  in
  if cold_requests <> interfaces then
    bad "%s.cold.requests %g <> interfaces %g" ctx cold_requests interfaces;
  (* The warm pass replays the identical corpus under the identical
     budget on the same connections: with the cache on, every request
     must be a cache hit — per-domain shards included, because a
     keep-alive connection pins its requests to one domain. *)
  if warm_hits <> warm_requests then
    bad "%s.warm: only %g/%g cache hits — cache not answering identical \
         requests"
      ctx warm_hits warm_requests;
  let mismatches =
    non_negative
      (ctx ^ ".identity_mismatches")
      (field run "identity_mismatches")
  in
  if mismatches <> 0. then
    bad "%s.identity_mismatches: expected 0 (responses must be \
         byte-identical across passes and jobs counts), got %g"
      ctx mismatches;
  ignore (non_negative (ctx ^ ".coalesced") (field run "coalesced"));
  (* Registry size from the /metrics scrape; absent on records written
     before the grammar registry existed, 0 when the scrape failed. *)
  (match field_opt run "grammars" with
   | Some v -> ignore (non_negative (ctx ^ ".grammars") v)
   | None -> ());
  (* The merged /metrics scrape attributes every request of both passes
     to exactly one owning domain.  An empty array means the scrape was
     not captured (external server died first); anything else must add
     up. *)
  (match field run "domain_requests" with
   | Arr [] -> ()
   | Arr counts ->
     if jobs > 0. && float_of_int (List.length counts) <> jobs then
       bad "%s.domain_requests: %d rows for %g domains" ctx
         (List.length counts) jobs;
     let sum =
       List.fold_left
         (fun acc v -> acc +. non_negative (ctx ^ ".domain_requests[]") v)
         0. counts
     in
     if sum <> cold_requests +. warm_requests then
       bad "%s.domain_requests: sum %g <> total requests %g" ctx sum
         (cold_requests +. warm_requests)
   | _ -> bad "%s.domain_requests: expected array" ctx);
  (match field run "server_exit" with
   | Null -> () (* external-server mode: lifecycle not observed *)
   | Num 0. -> ()
   | Num c -> bad "%s.server_exit: expected 0 (graceful drain), got %g" ctx c
   | _ -> bad "%s.server_exit: expected number or null" ctx);
  (jobs, warm_rps)

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: validate_serve_json FILE";
      exit 2
  in
  match
    let j = parse (read_file file) in
    let version = num "schema_version" (field j "schema_version") in
    if version <> 2. then bad "schema_version: expected 2, got %g" version;
    let smoke =
      match field j "smoke" with
      | Bool b -> b
      | _ -> bad "smoke: expected bool"
    in
    let interfaces = positive "interfaces" (field j "interfaces") in
    ignore (positive "clients" (field j "clients"));
    let cores = positive "cores" (field j "cores") in
    let runs =
      match field j "runs" with
      | Arr (_ :: _ as runs) -> runs
      | Arr [] -> bad "runs: empty"
      | _ -> bad "runs: expected array"
    in
    let checked = List.mapi (check_run ~interfaces) runs in
    let jobs = List.map fst checked in
    (* The --grammar-dir row, when recorded: same gates as every run,
       plus a populated registry and (full runs) warm throughput within
       3% of the jobs-matched single-grammar run. *)
    (match field_opt j "grammar_dir_run" with
     | None ->
       if field_opt j "grammar_warm_ratio" <> None then
         bad "grammar_warm_ratio without grammar_dir_run"
     | Some g ->
       let g_jobs, _ = check_run ~interfaces (-1) g in
       if not (List.mem g_jobs jobs) then
         bad "grammar_dir_run.jobs %g matches no single-grammar run" g_jobs;
       let grammars =
         non_negative "grammar_dir_run.grammars" (field g "grammars")
       in
       if grammars <= 1. then
         bad "grammar_dir_run.grammars: expected > 1 loaded grammars, got %g"
           grammars;
       let ratio =
         positive "grammar_warm_ratio" (field j "grammar_warm_ratio")
       in
       if (not smoke) && ratio < 0.97 then
         bad
           "grammar_warm_ratio: warm throughput with --grammar-dir is %g of \
            the single-grammar run (expected >= 0.97: grammar resolution \
            must be free on the cache-hit path)"
           ratio);
    (match jobs with
     | first :: (_ :: _ as rest) ->
       if List.exists (fun j -> j <= first) rest then
         bad "runs: jobs values must increase (got %s)"
           (String.concat "," (List.map string_of_float jobs))
     | _ -> ());
    let speedup =
      positive "throughput_speedup_jobs" (field j "throughput_speedup_jobs")
    in
    ignore (positive "cold_speedup_jobs" (field j "cold_speedup_jobs"));
    let warm_ratio =
      positive "warm_over_cold_p50" (field j "warm_over_cold_p50")
    in
    if not smoke then begin
      if warm_ratio < 10. then
        bad "warm_over_cold_p50: expected >= 10, got %g" warm_ratio;
      if cores >= 4. && List.length runs > 1 then begin
        let first_jobs = List.hd jobs in
        let last_jobs = List.nth jobs (List.length jobs - 1) in
        let floor = 0.75 *. (last_jobs /. Float.max 1. first_jobs) in
        if speedup < floor then
          bad
            "throughput_speedup_jobs: expected >= %g (0.75 x jobs ratio) on \
             %g cores, got %g"
            floor cores speedup;
        if speedup < 1. then
          bad "throughput_speedup_jobs: regression (%g < 1) on %g cores"
            speedup cores
      end
    end
  with
  | () -> Printf.printf "%s: schema ok\n" file
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID — %s\n" file msg;
    exit 1
