(* Validator for Chrome trace-event JSON emitted by Wqi_obs.Trace
   (wqi_extract --trace, wqi_batch --trace-dir, wqi_serve --trace-dir,
   obs_smoke).  Checks the structural contract the ISSUE pins down: a
   non-empty traceEvents array, a complete span for every pipeline stage
   plus the total, at least one parser.round event, and well-formed
   timestamps on every event.  Shares Json_min with the bench-record
   validators. *)

open Json_min

let stage_spans = [ "html"; "layout"; "classify"; "parse"; "merge"; "total" ]

let check_events events =
  if events = [] then bad "traceEvents: empty";
  let get name e = field e name in
  let str_of name e = str ("event." ^ name) (get name e) in
  List.iteri
    (fun i e ->
       let ctx = Printf.sprintf "traceEvents[%d]" i in
       let ph = str_of "ph" e in
       if ph <> "X" && ph <> "i" then bad "%s.ph: unexpected %S" ctx ph;
       if str_of "name" e = "" then bad "%s.name: empty" ctx;
       ignore (str (ctx ^ ".cat") (get "cat" e));
       ignore (non_negative (ctx ^ ".ts") (get "ts" e));
       ignore (num (ctx ^ ".pid") (get "pid" e));
       ignore (num (ctx ^ ".tid") (get "tid" e));
       if ph = "X" then ignore (non_negative (ctx ^ ".dur") (get "dur" e)))
    events;
  List.iter
    (fun stage ->
       let found =
         List.exists
           (fun e -> str_of "ph" e = "X" && str_of "name" e = stage)
           events
       in
       if not found then bad "traceEvents: no complete span named %S" stage)
    stage_spans;
  if
    not
      (List.exists (fun e -> str_of "cat" e = "parser.round") events)
  then bad "traceEvents: no parser.round event"

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: validate_trace_json FILE";
      exit 2
  in
  match
    let j = parse (read_file file) in
    (match field j "traceEvents" with
     | Arr events -> check_events events
     | _ -> bad "traceEvents: expected array");
    let unit = str "displayTimeUnit" (field j "displayTimeUnit") in
    if unit <> "ms" then bad "displayTimeUnit: expected \"ms\", got %S" unit
  with
  | () -> Printf.printf "%s: trace ok\n" file
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID — %s\n" file msg;
    exit 1
