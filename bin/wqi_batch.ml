(* Batch extractor: run the form extractor over every .html file in a
   directory (e.g. one produced by wqi_corpus_gen) and emit one JSON
   source description per line, plus a human summary on stderr.

   This is the mediator-bootstrap workflow the paper motivates: crawl a
   directory of query interfaces, get machine-readable capability
   descriptions out.  Extraction fans out over a fixed pool of domains
   (--jobs); output is gathered by file index, so the emitted JSONL is
   byte-identical whatever the parallelism.

   Per-document failures are isolated: a document whose read or
   extraction fails is reported on stderr (as a version-2 failed-source
   JSON line) and counted in the summary, and stdout carries exactly the
   lines of the documents that succeeded — adding a broken document to a
   directory does not perturb the output for the others.  --errors-json
   additionally writes the failures as a machine-readable array.

   With --store DIR the batch becomes resumable: each document's content
   key (normalized HTML ⊕ budget spec ⊕ grammar identity) is probed
   against the persistent store first, and present keys emit the stored
   Export-v2 bytes without re-extracting.  A key miss on a known source
   means the document (or the grammar) changed and is re-extracted;
   store mode therefore emits version-2 extraction lines — the exact
   stored bytes — so a resumed run's stdout is byte-identical to the
   cold run's. *)

module Pool = Wqi_parallel.Pool
module Extractor = Wqi_core.Extractor
module Budget = Wqi_core.Budget
module Trace = Wqi_obs.Trace
module Store = Wqi_store.Store
module Key = Wqi_store.Key
module Report = Wqi_store.Report
module Quality = Wqi_quality.Quality

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let n = in_channel_length ic in
       really_input_string ic n)

(* What one document contributed, in both modes.  [d_bytes] is the line
   to emit on stdout: v1 source descriptions in plain mode, stored /
   fresh Export-v2 bytes in store mode. *)
type disposition =
  | Emit of string
  | Fail of string  (* failure detail for stderr + --errors-json *)

type doc = {
  d_file : string;
  d_disposition : disposition;
  d_outcome : string;  (* "complete" | "degraded" | "failed" | "read-error" *)
  d_store : [ `Off | `Hit | `Changed | `New ];
  d_conditions : int;
  d_errors : bool;  (* the model carried error reports *)
  d_quality : Quality.t option;  (* None only for pre-quality store hits *)
  d_seconds : float;
}

(* Trace files are suffixed with the document's content key so stems
   that collide after [remove_extension] — or repeated runs over
   different corpora sharing one --trace-dir — never overwrite each
   other's traces. *)
let write_doc_trace trace_dir file ~key trace =
  match (trace, trace_dir) with
  | Some t, Some tdir ->
    let key_hex =
      match key with Some k -> Key.to_hex k.Key.hash | None -> ""
    in
    let path =
      Filename.concat tdir
        (Trace.doc_file_name ~name:(Filename.remove_extension file)
           ~key:key_hex)
    in
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
         output_string oc (Trace.to_chrome_json t);
         output_char oc '\n')
  | _ -> ()

let outcome_label = function
  | Budget.Complete -> "complete"
  | Budget.Degraded _ -> "degraded"
  | Budget.Failed _ -> "failed"

let process config ?store ?trace_dir dir file =
  let t0 = Budget.now_s () in
  let name = Filename.remove_extension file in
  let pack = config.Extractor.Config.grammar in
  let grammar_id =
    pack.Wqi_parser.Engine.name ^ "@" ^ pack.Wqi_parser.Engine.version
  in
  match read_file (Filename.concat dir file) with
  | exception e ->
    { d_file = file;
      d_disposition = Fail (Printexc.to_string e);
      d_outcome = "read-error";
      d_store = (if Option.is_none store then `Off else `New);
      d_conditions = 0;
      d_errors = false;
      d_quality = Some (Quality.failed ~source:file ~grammar:grammar_id ());
      d_seconds = Budget.now_s () -. t0 }
  | html ->
    (* The content key names the store entry and suffixes the trace
       file, so it is computed whenever either consumer is active. *)
    let key =
      if Option.is_some store || Option.is_some trace_dir then
        let spec =
          Key.spec ~grammar_name:pack.Wqi_parser.Engine.name
            ~grammar_version:pack.Wqi_parser.Engine.version ~name
            config.Extractor.Config.budget
        in
        Some (Key.make ~html ~spec)
      else None
    in
    let hit =
      match (store, key) with
      | Some st, Some k -> Store.find_entry st k
      | _ -> None
    in
    (match hit with
     | Some (m, bytes) ->
       { d_file = file;
         d_disposition = Emit bytes;
         d_outcome = m.Store.outcome;
         d_store = `Hit;
         d_conditions = 0;
         d_errors = false;
         d_quality =
           Option.map
             (fun q ->
                Quality.of_rollup ~source:m.Store.source
                  ~grammar:m.Store.grammar ~domain:m.Store.domain
                  ~outcome:m.Store.outcome ~score:q.Store.q_score
                  ~coverage:q.Store.q_coverage
                  ~conflicts:q.Store.q_conflicts)
             m.Store.quality;
         d_seconds = Budget.now_s () -. t0 }
     | None ->
       (* One trace per document; workers write distinct files, so
          tracing needs no cross-domain coordination. *)
       let trace =
         match trace_dir with None -> None | Some _ -> Some (Trace.create ())
       in
       (* [run] itself never raises — in-pipeline errors come back as a
          [Failed] outcome — so only the file read needed a handler. *)
       let e = Extractor.run ?trace config (Extractor.Html html) in
       write_doc_trace trace_dir file ~key trace;
       let seconds = Budget.now_s () -. t0 in
       let q = Quality.of_extraction ~source:file ~grammar:grammar_id e in
       let store_kind =
         match store with
         | None -> `Off
         | Some st -> if Store.source_known st file then `Changed else `New
       in
       (match e.Extractor.outcome with
        | Budget.Failed err ->
          { d_file = file;
            d_disposition = Fail err.Budget.message;
            d_outcome = "failed";
            d_store = store_kind;
            d_conditions = 0;
            d_errors = false;
            d_quality = Some q;
            d_seconds = seconds }
        | (Budget.Complete | Budget.Degraded _) as outcome ->
          let model = e.Extractor.model in
          let line =
            match (store, key) with
            | Some st, Some k ->
              let bytes = Extractor.export ~timings:false ~name e in
              (* Value first, manifest line second, all flushed: a kill
                 between put and exit still leaves a resumable store. *)
              Store.put st k
                ~meta:
                  { Store.source = file;
                    grammar = grammar_id;
                    outcome = outcome_label outcome;
                    domain = "";
                    quality =
                      Some
                        { Store.q_score = q.Quality.score;
                          q_coverage = q.Quality.coverage;
                          q_conflicts = q.Quality.conflicts } }
                bytes;
              bytes
            | _ -> Wqi_model.Export.source_description ~name model
          in
          { d_file = file;
            d_disposition = Emit line;
            d_outcome = outcome_label outcome;
            d_store = store_kind;
            d_conditions =
              List.length model.Wqi_model.Semantic_model.conditions;
            d_errors = model.Wqi_model.Semantic_model.errors <> [];
            d_quality = Some q;
            d_seconds = seconds }))

(* With SIGPIPE ignored, writing JSONL to a closed pipe surfaces as a
   [Sys_error] carrying the strerror text; a reader like `head` closing
   stdout early is normal pipeline behaviour, not a batch failure. *)
let is_broken_pipe msg =
  let msg = String.lowercase_ascii msg in
  let sub = "broken pipe" in
  let n = String.length msg and m = String.length sub in
  let found = ref false in
  for i = 0 to n - m do
    if String.sub msg i m = sub then found := true
  done;
  !found

let run_guarded dir output jobs grammar_file deadline_ms max_instances
    trace_dir store_dir errors_json quality_jsonl =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Format.eprintf "%s is not a directory@." dir;
    1
  end
  else begin
    (match trace_dir with
     | Some tdir when not (Sys.file_exists tdir) -> Unix.mkdir tdir 0o755
     | _ -> ());
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".html")
      |> List.sort compare
      |> Array.of_list
    in
    let jobs =
      match jobs with
      | Some n when n >= 1 -> n
      | Some n ->
        Format.eprintf "--jobs %d: must be >= 1@." n;
        exit 2
      | None -> Domain.recommended_domain_count ()
    in
    let budget =
      match (deadline_ms, max_instances) with
      | None, None -> Budget.unlimited
      | _ -> Budget.make ?deadline_ms ?max_instances ()
    in
    let config = Extractor.Config.(default |> with_budget budget) in
    (* Load once, share the compiled pack across all worker domains —
       packs are immutable after compile. *)
    let config =
      match grammar_file with
      | None -> config
      | Some path ->
        (match Extractor.load_grammar path with
         | Ok pack -> Extractor.Config.with_compiled pack config
         | Error msg ->
           Format.eprintf "%s@." msg;
           exit 2)
    in
    let store = Option.map Store.open_ store_dir in
    let t0 = Unix.gettimeofday () in
    let results =
      Pool.run ~jobs (fun pool ->
          Pool.map_array pool (process config ?store ?trace_dir dir) files)
    in
    let wall = Unix.gettimeofday () -. t0 in
    (match store with Some st -> Store.close st | None -> ());
    let oc =
      match output with Some path -> open_out path | None -> stdout
    in
    let total_conditions = ref 0 in
    let total_seconds = ref 0. in
    let with_errors = ref 0 in
    let degraded = ref 0 in
    let failed = ref 0 in
    let store_hits = ref 0 in
    let store_misses = ref 0 in
    let re_extracted = ref 0 in
    let errors = ref [] in
    let q_oc = Option.map open_out quality_jsonl in
    Array.iter
      (fun d ->
         (match (q_oc, d.d_quality) with
          | Some qoc, Some q ->
            output_string qoc (Quality.to_json q);
            output_char qoc '\n'
          | _ -> ());
         total_seconds := !total_seconds +. d.d_seconds;
         (match d.d_store with
          | `Hit -> incr store_hits
          | `Changed -> incr re_extracted
          | `New when Option.is_some store -> incr store_misses
          | `New | `Off -> ());
         if d.d_outcome = "degraded" then incr degraded;
         total_conditions := !total_conditions + d.d_conditions;
         if d.d_errors then incr with_errors;
         match d.d_disposition with
         | Emit line ->
           output_string oc line;
           output_char oc '\n'
         | Fail detail ->
           incr failed;
           errors :=
             { Report.path = Filename.concat dir d.d_file;
               outcome = d.d_outcome;
               error = detail }
             :: !errors;
           Format.eprintf "%s@."
             (Wqi_model.Export.failed_source
                ~name:(Filename.remove_extension d.d_file)
                { Budget.error_stage = None; message = detail }))
      results;
    (match q_oc with Some qoc -> close_out qoc | None -> ());
    if output <> None then close_out oc;
    (match errors_json with
     | Some path -> Report.write_file path (Report.errors_json (List.rev !errors))
     | None -> ());
    Format.eprintf
      "%d interfaces, %d conditions extracted, %d with error reports, \
       %d degraded, %d failed, %.2f s extraction (%.2f s wall, %d jobs)@."
      (Array.length files) !total_conditions !with_errors !degraded !failed
      !total_seconds wall jobs;
    if Option.is_some store then
      Format.eprintf
        "store: %d hits, %d new, %d re-extracted (changed source)@."
        !store_hits !store_misses !re_extracted;
    if files = [||] then 1 else 0
  end

let run dir output jobs grammar_file deadline_ms max_instances trace_dir
    store_dir errors_json quality_jsonl =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  try
    run_guarded dir output jobs grammar_file deadline_ms max_instances
      trace_dir store_dir errors_json quality_jsonl
  with Sys_error msg when is_broken_pipe msg ->
    (* The downstream reader went away mid-stream (e.g. `| head -1`);
       the documents already emitted reached it, so exit clean. *)
    0

open Cmdliner

let dir =
  let doc = "Directory of .html query interfaces." in
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)

let output =
  let doc = "Write JSONL here instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let jobs =
  let doc =
    "Extract with $(docv) parallel domains (default: the machine's \
     recommended domain count).  Output order is independent of $(docv)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let grammar_file =
  let doc =
    "Parse every document with the 2P grammar loaded from $(docv) (a \
     .wqg sexp grammar file) instead of the built-in standard grammar.  \
     The grammar is loaded and compiled once and shared across all \
     worker domains."
  in
  Arg.(value & opt (some file) None & info [ "grammar" ] ~docv:"FILE" ~doc)

let deadline_ms =
  let doc =
    "Per-document wall-clock budget in milliseconds; documents that \
     exceed it return degraded (partial) models instead of stalling the \
     batch."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_instances =
  let doc = "Per-document cap on parser instances." in
  Arg.(value & opt (some int) None & info [ "max-instances" ] ~docv:"N" ~doc)

let trace_dir =
  let doc =
    "Write one Chrome trace-event JSON per document into $(docv) \
     (created if missing), named \
     $(i,<stem>.<content-key>.trace.json) — the content-key suffix \
     keeps documents with identical stems from overwriting each \
     other's traces."
  in
  Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)

let store_dir =
  let doc =
    "Resumable mode: probe the persistent extraction store at $(docv) \
     (created if missing) before extracting, emit stored bytes for \
     present keys and write fresh extractions back.  Output switches to \
     version-2 extraction JSONL — the exact stored bytes — so an \
     interrupted run re-run with the same arguments produces \
     byte-identical output while re-extracting only documents whose HTML \
     or grammar changed."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let errors_json =
  let doc =
    "Write the per-document failures as a machine-readable JSON array \
     ([{\"path\",\"outcome\",\"error\"}, ...]) to $(docv), atomically."
  in
  Arg.(value & opt (some string) None & info [ "errors-json" ] ~docv:"FILE" ~doc)

let quality_jsonl =
  let doc =
    "Append one Wqi_quality record per document (JSONL, in input order) \
     to $(docv): outcome, token coverage, conflict/missing counts, \
     surviving ambiguity and the scalar quality score.  Store hits \
     rebuild their record from the persisted manifest fields; feed the \
     file to wqi_report for rollups and drift comparisons."
  in
  Arg.(value
       & opt (some string) None
       & info [ "quality-jsonl" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "extract capabilities from a directory of query interfaces" in
  let term =
    Term.(
      const run $ dir $ output $ jobs $ grammar_file $ deadline_ms
      $ max_instances $ trace_dir $ store_dir $ errors_json $ quality_jsonl)
  in
  Cmd.v (Cmd.info "wqi_batch" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval' cmd)
