(* Batch extractor: run the form extractor over every .html file in a
   directory (e.g. one produced by wqi_corpus_gen) and emit one JSON
   source description per line, plus a human summary on stderr.

   This is the mediator-bootstrap workflow the paper motivates: crawl a
   directory of query interfaces, get machine-readable capability
   descriptions out.  Extraction fans out over a fixed pool of domains
   (--jobs); output is gathered by file index, so the emitted JSONL is
   byte-identical whatever the parallelism. *)

module Pool = Wqi_parallel.Pool

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run dir output jobs =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Format.eprintf "%s is not a directory@." dir;
    1
  end
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".html")
      |> List.sort compare
      |> Array.of_list
    in
    let jobs =
      match jobs with
      | Some n when n >= 1 -> n
      | Some n ->
        Format.eprintf "--jobs %d: must be >= 1@." n;
        exit 2
      | None -> Domain.recommended_domain_count ()
    in
    let t0 = Unix.gettimeofday () in
    let results =
      Pool.run ~jobs (fun pool ->
          Pool.map_array pool
            (fun file ->
               let html = read_file (Filename.concat dir file) in
               let t0 = Unix.gettimeofday () in
               let e = Wqi_core.Extractor.extract html in
               let seconds = Unix.gettimeofday () -. t0 in
               (file, e.Wqi_core.Extractor.model, seconds))
            files)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let oc =
      match output with Some path -> open_out path | None -> stdout
    in
    let total_conditions = ref 0 in
    let total_seconds = ref 0. in
    let with_errors = ref 0 in
    Array.iter
      (fun (file, model, seconds) ->
         total_seconds := !total_seconds +. seconds;
         total_conditions :=
           !total_conditions
           + List.length model.Wqi_model.Semantic_model.conditions;
         if model.Wqi_model.Semantic_model.errors <> [] then incr with_errors;
         output_string oc
           (Wqi_model.Export.source_description
              ~name:(Filename.remove_extension file)
              model);
         output_char oc '\n')
      results;
    if output <> None then close_out oc;
    Format.eprintf
      "%d interfaces, %d conditions extracted, %d with error reports, \
       %.2f s extraction (%.2f s wall, %d jobs)@."
      (Array.length files) !total_conditions !with_errors !total_seconds wall
      jobs;
    if files = [||] then 1 else 0
  end

open Cmdliner

let dir =
  let doc = "Directory of .html query interfaces." in
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)

let output =
  let doc = "Write JSONL here instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let jobs =
  let doc =
    "Extract with $(docv) parallel domains (default: the machine's \
     recommended domain count).  Output order is independent of $(docv)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cmd =
  let doc = "extract capabilities from a directory of query interfaces" in
  let term = Term.(const run $ dir $ output $ jobs) in
  Cmd.v (Cmd.info "wqi_batch" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval' cmd)
