(* Batch extractor: run the form extractor over every .html file in a
   directory (e.g. one produced by wqi_corpus_gen) and emit one JSON
   source description per line, plus a human summary on stderr.

   This is the mediator-bootstrap workflow the paper motivates: crawl a
   directory of query interfaces, get machine-readable capability
   descriptions out.  Extraction fans out over a fixed pool of domains
   (--jobs); output is gathered by file index, so the emitted JSONL is
   byte-identical whatever the parallelism.

   Per-document failures are isolated: a document whose read or
   extraction fails is reported on stderr (as a version-2 failed-source
   JSON line) and counted in the summary, and stdout carries exactly the
   lines of the documents that succeeded — adding a broken document to a
   directory does not perturb the output for the others. *)

module Pool = Wqi_parallel.Pool
module Extractor = Wqi_core.Extractor
module Budget = Wqi_core.Budget
module Trace = Wqi_obs.Trace

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let n = in_channel_length ic in
       really_input_string ic n)

type doc = {
  d_file : string;
  d_outcome : Budget.outcome;
  d_model : Wqi_model.Semantic_model.t;
  d_seconds : float;
}

let process config ?trace_dir dir file =
  let t0 = Budget.now_s () in
  (* One trace per document; workers write distinct files, so tracing
     needs no cross-domain coordination. *)
  let trace =
    match trace_dir with None -> None | Some _ -> Some (Trace.create ())
  in
  let outcome, model =
    match read_file (Filename.concat dir file) with
    | exception e ->
      ( Budget.Failed { Budget.error_stage = None; message = Printexc.to_string e },
        Wqi_model.Semantic_model.empty )
    | html ->
      (* [run] itself never raises — in-pipeline errors come back as a
         [Failed] outcome — so only the file read needs the handler. *)
      let e = Extractor.run ?trace config (Extractor.Html html) in
      (e.Extractor.outcome, e.Extractor.model)
  in
  (match (trace, trace_dir) with
   | Some t, Some tdir ->
     let path =
       Filename.concat tdir (Filename.remove_extension file ^ ".trace.json")
     in
     let oc = open_out_bin path in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
          output_string oc (Trace.to_chrome_json t);
          output_char oc '\n')
   | _ -> ());
  { d_file = file;
    d_outcome = outcome;
    d_model = model;
    d_seconds = Budget.now_s () -. t0 }

(* With SIGPIPE ignored, writing JSONL to a closed pipe surfaces as a
   [Sys_error] carrying the strerror text; a reader like `head` closing
   stdout early is normal pipeline behaviour, not a batch failure. *)
let is_broken_pipe msg =
  let msg = String.lowercase_ascii msg in
  let sub = "broken pipe" in
  let n = String.length msg and m = String.length sub in
  let found = ref false in
  for i = 0 to n - m do
    if String.sub msg i m = sub then found := true
  done;
  !found

let run_guarded dir output jobs grammar_file deadline_ms max_instances
    trace_dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Format.eprintf "%s is not a directory@." dir;
    1
  end
  else begin
    (match trace_dir with
     | Some tdir when not (Sys.file_exists tdir) -> Unix.mkdir tdir 0o755
     | _ -> ());
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".html")
      |> List.sort compare
      |> Array.of_list
    in
    let jobs =
      match jobs with
      | Some n when n >= 1 -> n
      | Some n ->
        Format.eprintf "--jobs %d: must be >= 1@." n;
        exit 2
      | None -> Domain.recommended_domain_count ()
    in
    let budget =
      match (deadline_ms, max_instances) with
      | None, None -> Budget.unlimited
      | _ -> Budget.make ?deadline_ms ?max_instances ()
    in
    let config = Extractor.Config.(default |> with_budget budget) in
    (* Load once, share the compiled pack across all worker domains —
       packs are immutable after compile. *)
    let config =
      match grammar_file with
      | None -> config
      | Some path ->
        (match Extractor.load_grammar path with
         | Ok pack -> Extractor.Config.with_compiled pack config
         | Error msg ->
           Format.eprintf "%s@." msg;
           exit 2)
    in
    let t0 = Unix.gettimeofday () in
    let results =
      Pool.run ~jobs (fun pool ->
          Pool.map_array pool (process config ?trace_dir dir) files)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let oc =
      match output with Some path -> open_out path | None -> stdout
    in
    let total_conditions = ref 0 in
    let total_seconds = ref 0. in
    let with_errors = ref 0 in
    let degraded = ref 0 in
    let failed = ref 0 in
    Array.iter
      (fun d ->
         total_seconds := !total_seconds +. d.d_seconds;
         match d.d_outcome with
         | Budget.Failed e ->
           incr failed;
           Format.eprintf "%s@."
             (Wqi_model.Export.failed_source
                ~name:(Filename.remove_extension d.d_file)
                e)
         | (Budget.Complete | Budget.Degraded _) as outcome ->
           (match outcome with
            | Budget.Degraded _ -> incr degraded
            | _ -> ());
           total_conditions :=
             !total_conditions
             + List.length d.d_model.Wqi_model.Semantic_model.conditions;
           if d.d_model.Wqi_model.Semantic_model.errors <> [] then
             incr with_errors;
           output_string oc
             (Wqi_model.Export.source_description
                ~name:(Filename.remove_extension d.d_file)
                d.d_model);
           output_char oc '\n')
      results;
    if output <> None then close_out oc;
    Format.eprintf
      "%d interfaces, %d conditions extracted, %d with error reports, \
       %d degraded, %d failed, %.2f s extraction (%.2f s wall, %d jobs)@."
      (Array.length files) !total_conditions !with_errors !degraded !failed
      !total_seconds wall jobs;
    if files = [||] then 1 else 0
  end

let run dir output jobs grammar_file deadline_ms max_instances trace_dir =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  try
    run_guarded dir output jobs grammar_file deadline_ms max_instances
      trace_dir
  with Sys_error msg when is_broken_pipe msg ->
    (* The downstream reader went away mid-stream (e.g. `| head -1`);
       the documents already emitted reached it, so exit clean. *)
    0

open Cmdliner

let dir =
  let doc = "Directory of .html query interfaces." in
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)

let output =
  let doc = "Write JSONL here instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let jobs =
  let doc =
    "Extract with $(docv) parallel domains (default: the machine's \
     recommended domain count).  Output order is independent of $(docv)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let grammar_file =
  let doc =
    "Parse every document with the 2P grammar loaded from $(docv) (a \
     .wqg sexp grammar file) instead of the built-in standard grammar.  \
     The grammar is loaded and compiled once and shared across all \
     worker domains."
  in
  Arg.(value & opt (some file) None & info [ "grammar" ] ~docv:"FILE" ~doc)

let deadline_ms =
  let doc =
    "Per-document wall-clock budget in milliseconds; documents that \
     exceed it return degraded (partial) models instead of stalling the \
     batch."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_instances =
  let doc = "Per-document cap on parser instances." in
  Arg.(value & opt (some int) None & info [ "max-instances" ] ~docv:"N" ~doc)

let trace_dir =
  let doc =
    "Write one Chrome trace-event JSON per document into $(docv) \
     (created if missing), named after the source file with a \
     .trace.json suffix."
  in
  Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "extract capabilities from a directory of query interfaces" in
  let term =
    Term.(
      const run $ dir $ output $ jobs $ grammar_file $ deadline_ms
      $ max_instances $ trace_dir)
  in
  Cmd.v (Cmd.info "wqi_batch" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval' cmd)
