(* Command-line dataset generator: write the four experimental datasets
   (HTML sources plus ground-truth manifests) to a directory — or, with
   --gen N, emit N generated documents as individual .html files for
   crawl-scale testing, with a manifest of the known duplicates. *)

module Generator = Wqi_corpus.Generator
module Vocabulary = Wqi_corpus.Vocabulary
module Prng = Wqi_corpus.Prng

let run dir names =
  let all = Wqi_corpus.Dataset.all () in
  let selected =
    match names with
    | [] -> all
    | names ->
      List.filter
        (fun (d : Wqi_corpus.Dataset.t) ->
           List.mem (String.lowercase_ascii d.name) names)
        all
  in
  if selected = [] then begin
    Format.eprintf "no dataset matches; available: %s@."
      (String.concat ", "
         (List.map (fun (d : Wqi_corpus.Dataset.t) -> d.name) all));
    1
  end
  else begin
    List.iter
      (fun (d : Wqi_corpus.Dataset.t) ->
         Wqi_corpus.Dataset.save ~dir d;
         Format.printf "wrote %s (%d sources) under %s@." d.name
           (List.length d.sources)
           (Filename.concat dir d.name))
      selected;
    0
  end

(* ------------------------------------------------------------------ *)
(* --gen mode: individual files with a duplicate manifest             *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error _ -> ()
  end

(* A formatting-only perturbation: every newline doubled.  The bytes —
   and the content-addressed store key — change, but the structural
   signature (whitespace-collapsed) does not, so wqi_crawl must dedup
   the copy. *)
let ws_perturb html =
  String.concat "\n\n" (String.split_on_char '\n' html) ^ "\n"

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let run_gen n out_dir seed dup_prob =
  if n <= 0 then begin
    Format.eprintf "--gen %d: must be >= 1@." n;
    2
  end
  else begin
    mkdir_p out_dir;
    let g = Prng.create (Int64.of_int seed) in
    let domains = Array.of_list Vocabulary.all in
    (* Duplicate targets come from a bounded pool of recent originals so
       memory stays flat however large the corpus. *)
    let pool = Array.make 256 None in
    let pool_n = ref 0 in
    let dups = ref [] in
    let unique = ref 0 in
    for i = 0 to n - 1 do
      let file = Printf.sprintf "doc-%05d.html" i in
      let duplicate =
        !pool_n > 0 && Prng.bernoulli g dup_prob
      in
      if duplicate then begin
        let j = Prng.int g (min !pool_n (Array.length pool)) in
        match pool.(j) with
        | None -> assert false
        | Some (of_file, of_html) ->
          let kind = if Prng.bool g then "exact" else "ws" in
          let contents =
            if kind = "exact" then of_html else ws_perturb of_html
          in
          write_file (Filename.concat out_dir file) contents;
          dups := (file, of_file, kind) :: !dups
      end
      else begin
        let domain = domains.(i mod Array.length domains) in
        let complexity = if i land 1 = 0 then `Simple else `Rich in
        let src =
          Generator.generate g ~id:file ~domain ~complexity ~oog_prob:0.1 ()
        in
        write_file (Filename.concat out_dir file) src.Generator.html;
        pool.(!pool_n mod Array.length pool) <- Some (file, src.Generator.html);
        incr pool_n;
        incr unique
      end
    done;
    let str = Wqi_model.Export.string in
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"wqi_corpus_files_version\":1,\"count\":%d,\"unique\":%d,\
          \"duplicates\":["
         n !unique);
    List.iteri
      (fun i (file, of_file, kind) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_string b
           (Printf.sprintf "\n  {\"file\":%s,\"of\":%s,\"kind\":%s}"
              (str file) (str of_file) (str kind)))
      (List.rev !dups);
    Buffer.add_string b (if !dups = [] then "]}\n" else "\n]}\n");
    write_file (Filename.concat out_dir "ALIASES.json") (Buffer.contents b);
    Format.printf "wrote %d documents (%d unique, %d duplicates) under %s@." n
      !unique (n - !unique) out_dir;
    0
  end

let dispatch dir names gen out_dir seed dup_prob =
  match gen with
  | Some n -> run_gen n out_dir seed dup_prob
  | None -> run dir names

open Cmdliner

let dir =
  let doc = "Output directory." in
  Arg.(value & opt string "corpus" & info [ "o"; "output" ] ~docv:"DIR" ~doc)

let names =
  let doc =
    "Datasets to generate (basic, newsource, newdomain, random); all when \
     omitted."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"DATASET" ~doc)

let gen =
  let doc =
    "Generate $(docv) individual .html documents (round-robin over every \
     domain vocabulary, alternating complexity) into $(b,--out-dir) \
     instead of the named datasets.  A fraction of the documents \
     ($(b,--dup-prob)) are duplicates of earlier ones — byte-exact or \
     reformatted (whitespace-only) copies — recorded in an ALIASES.json \
     manifest, so crawl deduplication can be checked against ground \
     truth."
  in
  Arg.(value & opt (some int) None & info [ "gen" ] ~docv:"N" ~doc)

let out_dir =
  let doc = "Directory for $(b,--gen) documents (created if missing)." in
  Arg.(value & opt string "corpus-files" & info [ "out-dir" ] ~docv:"DIR" ~doc)

let seed =
  let doc = "PRNG seed for $(b,--gen); equal seeds give equal corpora." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let dup_prob =
  let doc =
    "Per-document probability (after the first) of emitting a duplicate \
     instead of a fresh form in $(b,--gen) mode."
  in
  Arg.(value & opt float 0.2 & info [ "dup-prob" ] ~docv:"P" ~doc)

let cmd =
  let doc = "generate the synthetic query-interface datasets" in
  let term =
    Term.(const dispatch $ dir $ names $ gen $ out_dir $ seed $ dup_prob)
  in
  Cmd.v (Cmd.info "wqi_corpus_gen" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval' cmd)
