(* The extraction service daemon: POST HTML query interfaces at
   /extract, get version-2 JSON source descriptions back; /healthz and
   /metrics for fleet observability.  See Wqi_serve.Serve for the
   endpoint and admission-control semantics.

   The process runs until SIGTERM/SIGINT, then drains: in-flight
   requests finish, idle keep-alive connections are closed, every
   serving domain is joined, and the process exits 0. *)

module Serve = Wqi_serve.Serve
module Cache = Wqi_serve.Cache
module Extractor = Wqi_core.Extractor
module Budget = Wqi_core.Budget

let run host port jobs accept_mode max_inflight max_body cache_bytes
    cache_ttl_s cache_shards store grammar_dir deadline_ms max_instances
    cap_deadline_ms cap_instances idle_timeout_s drain_grace_s trace_sample
    trace_dir slow_ms access_log quality_exemplars quality_window =
  let budget =
    match (deadline_ms, max_instances) with
    | None, None -> Budget.unlimited
    | _ -> Budget.make ?deadline_ms ?max_instances ()
  in
  let cap_budget =
    match (cap_deadline_ms, cap_instances) with
    | None, None -> Budget.unlimited
    | _ ->
      Budget.make ?deadline_ms:cap_deadline_ms ?max_instances:cap_instances ()
  in
  let cache =
    if cache_bytes <= 0 then None
    else
      Some
        { Cache.max_bytes = cache_bytes;
          ttl_s = cache_ttl_s;
          shards = cache_shards }
  in
  let config =
    { Serve.host;
      port;
      jobs;
      accept_mode;
      max_inflight;
      max_body;
      cache;
      store;
      extractor = Extractor.Config.(default |> with_budget budget);
      grammar_dir;
      cap_budget;
      idle_timeout_s;
      drain_grace_s;
      trace_sample;
      trace_dir;
      slow_ms;
      access_log;
      quality_exemplars;
      quality_window }
  in
  match
    Serve.run config ~on_listen:(fun t ->
        (* The listening banner must stay the first stdout line, with
           no colon in the parenthesized part: bench/loadgen and the
           smoke tests parse the port as the text after the last ':'. *)
        Printf.printf
          "wqi_serve: listening on %s:%d (jobs=%d, accept=%s, \
           max-inflight=%d)\n"
          host (Serve.port t) (Serve.domain_count t)
          (Serve.accept_mode_name t) max_inflight;
        Printf.printf "wqi_serve: grammars loaded: %s\n"
          (String.concat ", " (Serve.grammar_names t));
        flush stdout)
  with
  | () -> 0
  | exception Unix.Unix_error (e, fn, _) ->
    Format.eprintf "wqi_serve: %s: %s@." fn (Unix.error_message e);
    1
  | exception Invalid_argument msg ->
    (* Grammar-registry load failure: the server refuses to start. *)
    Format.eprintf "wqi_serve: %s@." msg;
    1

open Cmdliner

let host =
  let doc = "Address to bind." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let port =
  let doc = "Port to bind; 0 picks an ephemeral port (printed on stdout)." in
  Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let jobs =
  let doc =
    "Serving domains, each with its own accept loop, cache shard and \
     telemetry arena (default: the machine's recommended domain count)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let accept_mode =
  let doc =
    "How connections reach serving domains: $(b,reuseport) = one \
     SO_REUSEPORT listening socket per domain (kernel load-balances), \
     $(b,dispatch) = a single listener plus a round-robin fd-passing \
     dispatcher thread, $(b,auto) = reuseport with fallback to dispatch \
     where the socket option is unsupported."
  in
  let modes =
    [ ("auto", `Auto); ("reuseport", `Reuseport); ("dispatch", `Dispatch) ]
  in
  Arg.(value & opt (enum modes) `Auto & info [ "accept" ] ~docv:"MODE" ~doc)

let max_inflight =
  let doc =
    "Admission-control bound: at most $(docv) extractions admitted (queued \
     or running) at once; cache misses beyond it are shed with 503 + \
     Retry-After.  0 sheds every miss."
  in
  Arg.(value
       & opt int Serve.default_config.Serve.max_inflight
       & info [ "max-inflight" ] ~docv:"N" ~doc)

let max_body =
  let doc = "Request-body byte bound (413 beyond it)." in
  Arg.(value
       & opt int Serve.default_config.Serve.max_body
       & info [ "max-body-bytes" ] ~docv:"BYTES" ~doc)

let cache_bytes =
  let doc = "Result-cache byte bound across shards; 0 disables the cache." in
  Arg.(value
       & opt int Cache.default_config.Cache.max_bytes
       & info [ "cache-bytes" ] ~docv:"BYTES" ~doc)

let cache_ttl_s =
  let doc = "Result-cache entry TTL in seconds; 0 = entries never expire." in
  Arg.(value & opt float 0. & info [ "cache-ttl-s" ] ~docv:"SECONDS" ~doc)

let cache_shards =
  let doc = "Result-cache shard count." in
  Arg.(value
       & opt int Cache.default_config.Cache.shards
       & info [ "cache-shards" ] ~docv:"N" ~doc)

let store =
  let doc =
    "Persistent extraction store at $(docv) (created if missing): a warm \
     tier below the in-memory cache.  Cache misses probe the store before \
     extracting (answered with $(b,x-wqi-cache: store)) and fresh \
     extractions are written behind, so warm throughput survives \
     restarts.  The store is replayed at startup and compacted at \
     shutdown; the same directory is shared with wqi_batch/wqi_crawl \
     --store."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let grammar_dir =
  let doc =
    "Load every .wqg grammar file in $(docv) into the grammar registry \
     at startup; requests select one with ?grammar=NAME (default: the \
     built-in standard grammar).  A malformed file refuses to start the \
     server.  SIGHUP re-scans the directory and hot-swaps the registry; \
     a failed re-scan keeps the previous grammars serving."
  in
  Arg.(value & opt (some dir) None & info [ "grammar-dir" ] ~docv:"DIR" ~doc)

let deadline_ms =
  let doc =
    "Default per-request wall-clock budget in milliseconds (requests may \
     override with ?deadline_ms=, capped by $(b,--cap-deadline-ms))."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_instances =
  let doc = "Default per-request cap on parser instances." in
  Arg.(value & opt (some int) None & info [ "max-instances" ] ~docv:"N" ~doc)

let cap_deadline_ms =
  let doc =
    "Ceiling on per-request deadline overrides; requests cannot run longer \
     than this even by omitting ?deadline_ms=."
  in
  Arg.(value & opt (some int) None & info [ "cap-deadline-ms" ] ~docv:"MS" ~doc)

let cap_instances =
  let doc = "Ceiling on per-request parser-instance overrides." in
  Arg.(value & opt (some int) None & info [ "cap-instances" ] ~docv:"N" ~doc)

let idle_timeout_s =
  let doc =
    "Keep-alive receive timeout in seconds; also bounds how long idle \
     connections can delay a graceful drain."
  in
  Arg.(value
       & opt float Serve.default_config.Serve.idle_timeout_s
       & info [ "idle-timeout-s" ] ~docv:"SECONDS" ~doc)

let drain_grace_s =
  let doc =
    "How long a graceful drain waits for live connection handlers \
     before deadline-killing their sockets."
  in
  Arg.(value
       & opt float Serve.default_config.Serve.drain_grace_s
       & info [ "drain-grace-s" ] ~docv:"SECONDS" ~doc)

let trace_sample =
  let doc =
    "Trace every $(docv)-th extract request end to end (requires \
     $(b,--trace-dir)); 0 disables sampling.  Individual requests can \
     always opt in with an $(b,x-wqi-trace: 1) header."
  in
  Arg.(value & opt int 0 & info [ "trace-sample" ] ~docv:"N" ~doc)

let trace_dir =
  let doc =
    "Write Chrome trace-event JSON for traced requests into $(docv) \
     (created if missing), one file per request named by its trace id."
  in
  Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)

let slow_ms =
  let doc =
    "Log requests slower than $(docv) milliseconds to stderr, with \
     their trace id."
  in
  Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)

let access_log =
  let doc =
    "Append a structured (JSONL) access log to $(docv): timestamp, \
     method, path, status, response bytes, latency, cache disposition, \
     outcome and trace id per request.  Pass $(b,-) for stderr."
  in
  Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)

let quality_exemplars =
  let doc =
    "Capture the $(docv) worst-quality extractions of each \
     $(b,--quality-window) as Chrome traces named \
     $(i,quality-<id>.json) in $(b,--trace-dir) (required); 0 disables \
     exemplar capture."
  in
  Arg.(value & opt int 0 & info [ "quality-exemplars" ] ~docv:"K" ~doc)

let quality_window =
  let doc =
    "Extractions per exemplar window, per serving domain (each domain \
     keeps its own window)."
  in
  Arg.(value & opt int 128 & info [ "quality-window" ] ~docv:"N" ~doc)

let cmd =
  let doc = "serve query-interface extraction over HTTP" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Runs the governed form extractor as a long-lived HTTP service: \
         $(b,POST /extract) with an HTML body returns the version-2 JSON \
         source description; $(b,GET /healthz) and $(b,GET /metrics) \
         expose liveness and Prometheus-style counters (request/outcome \
         counts, latency histogram, cache hit ratio, parser guard \
         pressure, pool queue depth).";
      `P
        "Requests may tighten their own resource budget with query \
         parameters (deadline_ms, max_html_nodes, max_boxes, max_tokens, \
         max_instances, max_rounds), each clamped by the server's caps.  \
         Identical (normalized) HTML under the same budget is answered \
         from a content-addressed LRU cache.";
      `P
        "SIGTERM/SIGINT drain gracefully: in-flight requests finish, new \
         extractions are refused with 503, and the process exits 0." ]
  in
  let term =
    Term.(
      const run $ host $ port $ jobs $ accept_mode $ max_inflight $ max_body
      $ cache_bytes $ cache_ttl_s $ cache_shards $ store $ grammar_dir
      $ deadline_ms
      $ max_instances $ cap_deadline_ms $ cap_instances $ idle_timeout_s
      $ drain_grace_s $ trace_sample $ trace_dir $ slow_ms $ access_log
      $ quality_exemplars $ quality_window)
  in
  Cmd.v (Cmd.info "wqi_serve" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval' cmd)
