(* Governance smoke check, wired to `dune build @govern`.

   Runs the extractor under a deliberately aggressive budget over every
   .html fixture in the given directory and insists that each document
   comes back [Complete] or [Degraded] — never [Failed].  A [Failed]
   outcome here means an exception escaped a pipeline stage instead of
   being converted into graceful degradation, which is exactly the
   regression this alias exists to catch. *)

module Extractor = Wqi_core.Extractor
module Budget = Wqi_core.Budget

let aggressive =
  Budget.make ~deadline_ms:200 ~max_html_nodes:20_000 ~max_boxes:20_000
    ~max_tokens:2_000 ~max_instances:2_000 ~max_rounds:10_000 ()

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".html")
    |> List.sort compare
  in
  if files = [] then begin
    Printf.eprintf "govern: no .html fixtures in %s\n" dir;
    exit 2
  end;
  let config = Extractor.Config.(default |> with_budget aggressive) in
  let failures = ref 0 in
  List.iter
    (fun file ->
       let html =
         let ic = open_in_bin (Filename.concat dir file) in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> really_input_string ic (in_channel_length ic))
       in
       let e = Extractor.run config (Extractor.Html html) in
       let conditions = List.length (Extractor.conditions e) in
       match e.Extractor.outcome with
       | Budget.Complete ->
         Printf.printf "govern: %-18s complete  (%d conditions, %.1f ms)\n"
           file conditions (1000. *. e.Extractor.diagnostics.Extractor.total_seconds)
       | Budget.Degraded trips ->
         Printf.printf
           "govern: %-18s degraded  (%d conditions, %.1f ms, %d trips)\n"
           file conditions
           (1000. *. e.Extractor.diagnostics.Extractor.total_seconds)
           (List.length trips)
       | Budget.Failed err ->
         incr failures;
         Printf.printf "govern: %-18s FAILED    (%s)\n" file
           err.Budget.message)
    files;
  if !failures > 0 then begin
    Printf.eprintf "govern: %d document(s) failed under the aggressive budget\n"
      !failures;
    exit 1
  end
