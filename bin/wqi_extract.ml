(* Command-line form extractor: read an HTML query interface and print
   its semantic model (query capabilities), optionally with the token
   set, the parse trees, and parsing diagnostics. *)

module Extractor = Wqi_core.Extractor
module Budget = Wqi_core.Budget
module Trace = Wqi_obs.Trace
module Quality = Wqi_quality.Quality

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_stdin () =
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b stdin 4096
     done
   with End_of_file -> ());
  Buffer.contents b

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  if verbose then Logs.set_level (Some Logs.Debug)

let config_of grammar_file width deadline_ms max_instances =
  let budget =
    match (deadline_ms, max_instances) with
    | None, None -> Budget.unlimited
    | _ -> Budget.make ?deadline_ms ?max_instances ()
  in
  let c = Extractor.Config.(default |> with_budget budget) in
  let c =
    match grammar_file with
    | None -> c
    | Some path ->
      (match Extractor.load_grammar path with
       | Ok pack -> Extractor.Config.with_compiled pack c
       | Error msg ->
         prerr_endline msg;
         exit 2)
  in
  match width with
  | Some w -> Extractor.Config.with_width w c
  | None -> c

(* With SIGPIPE ignored, writing to a closed pipe surfaces as a
   [Sys_error] carrying the strerror text.  A reader like `head` closing
   stdout early is normal pipeline behaviour, not an extraction error. *)
let is_broken_pipe msg =
  let msg = String.lowercase_ascii msg in
  let sub = "broken pipe" in
  let n = String.length msg and m = String.length sub in
  let found = ref false in
  for i = 0 to n - m do
    if String.sub msg i m = sub then found := true
  done;
  !found

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let run_guarded input show_tokens show_trees show_stats show_ascii as_json
    grammar_file width deadline_ms max_instances trace_file profile quality =
  let html =
    match input with Some path -> read_file path | None -> read_stdin ()
  in
  let config = config_of grammar_file width deadline_ms max_instances in
  let trace =
    if trace_file <> None || profile then Some (Trace.create ()) else None
  in
  let e = Extractor.run ?trace config (Extractor.Html html) in
  (match (trace, trace_file) with
   | Some t, Some path ->
     write_file path (Trace.to_chrome_json t ^ "\n")
   | _ -> ());
  (match trace with
   | Some t when profile ->
     (* Stderr, so `--json | jq` style pipelines keep a pure stdout. *)
     prerr_string (Trace.profile t)
   | _ -> ());
  let name =
    match input with Some path -> Filename.basename path | None -> "stdin"
  in
  (* The quality record is always the last stdout line, in text and
     --json mode alike, so `tail -1` scrapes it from either. *)
  let print_quality () =
    if quality then begin
      let pack = config.Extractor.Config.grammar in
      print_endline
        (Quality.to_json
           (Quality.of_extraction ~source:name
              ~grammar:
                (pack.Wqi_parser.Engine.name ^ "@"
                 ^ pack.Wqi_parser.Engine.version)
              e))
    end
  in
  if as_json then begin
    print_endline (Extractor.export ~name e);
    print_quality ();
    exit (if Extractor.conditions e = [] then 1 else 0)
  end;
  if show_ascii then begin
    Format.printf "--- layout@.";
    print_string (Wqi_layout.Debug.ascii_of_html ?width html)
  end;
  if show_tokens then begin
    Format.printf "--- tokens@.";
    List.iter (fun t -> Format.printf "%a@." Wqi_token.Token.pp t) e.tokens
  end;
  if show_trees then
    List.iter
      (fun tree ->
         Format.printf "--- parse tree@.%a@." Wqi_grammar.Instance.pp_tree tree)
      e.trees;
  Format.printf "--- query capabilities@.%a@." Wqi_model.Semantic_model.pp
    e.model;
  (match e.outcome with
   | Budget.Complete -> ()
   | outcome -> Format.printf "--- outcome@.%a@." Budget.pp_outcome outcome);
  if show_stats then begin
    let d = e.diagnostics in
    Format.printf "--- diagnostics@.";
    Format.printf
      "tokens=%d instances=%d live=%d pruned=%d trees=%d complete=%b@."
      d.token_count d.parse_stats.created d.parse_stats.live
      d.parse_stats.pruned d.tree_count d.complete;
    Format.printf "html=%.1f ms layout=%.1f ms classify=%.1f ms parse=%.1f ms \
                   merge=%.1f ms total=%.1f ms@."
      (1000. *. d.html_seconds) (1000. *. d.layout_seconds)
      (1000. *. d.classify_seconds)
      (1000. *. d.parse_seconds)
      (1000. *. d.merge_seconds)
      (1000. *. d.total_seconds)
  end;
  Format.pp_print_flush Format.std_formatter ();
  print_quality ();
  if e.model.conditions = [] then 1 else 0

let run input show_tokens show_trees show_stats show_ascii as_json verbose
    grammar_file width deadline_ms max_instances trace_file profile quality =
  setup_logs verbose;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  try
    run_guarded input show_tokens show_trees show_stats show_ascii as_json
      grammar_file width deadline_ms max_instances trace_file profile quality
  with Sys_error msg when is_broken_pipe msg ->
    (* The downstream reader went away mid-output; what was written is
       whatever it asked for.  Drop anything still buffered in the
       formatter — its at_exit flush would re-raise into the dead pipe —
       and exit clean so pipelines like `wqi_extract --json f.html |
       head -1` succeed.  (Stdlib channel flushes at exit already
       swallow write errors.) *)
    Format.pp_set_formatter_output_functions Format.std_formatter
      (fun _ _ _ -> ())
      (fun () -> ());
    0

open Cmdliner

let input =
  let doc = "HTML file to read (stdin when omitted)." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let show_tokens =
  Arg.(value & flag & info [ "tokens" ] ~doc:"Print the token set.")

let show_trees =
  Arg.(value & flag & info [ "trees" ] ~doc:"Print the maximal parse trees.")

let show_stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print parsing diagnostics.")

let show_ascii =
  Arg.(value & flag
       & info [ "ascii" ] ~doc:"Draw the laid-out page as ASCII art.")

let as_json =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit a versioned JSON source description (outcome, \
                 capabilities, diagnostics) instead of text output.")

let verbose =
  Arg.(value & flag
       & info [ "v"; "verbose" ]
           ~doc:"Trace instance creation and preference pruning.")

let grammar_file =
  let doc =
    "Parse with the 2P grammar loaded from $(docv) (a .wqg sexp grammar \
     file, see README \"Grammars as data\") instead of the built-in \
     standard grammar.  The file is validated on load; malformations \
     exit with status 2 and a file:line:col diagnostic."
  in
  Arg.(value & opt (some file) None & info [ "grammar" ] ~docv:"FILE" ~doc)

let width =
  let doc = "Page width in pixels handed to the layout engine." in
  Arg.(value & opt (some int) None & info [ "width" ] ~docv:"PX" ~doc)

let deadline_ms =
  let doc =
    "Wall-clock budget in milliseconds.  When it expires the pipeline \
     degrades gracefully: stages stop growing their output and the model \
     is merged from the partial parse trees built so far."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_instances =
  let doc =
    "Cap on parser instances (token instances included).  Tripping the \
     cap degrades the extraction instead of failing it."
  in
  Arg.(value & opt (some int) None & info [ "max-instances" ] ~docv:"N" ~doc)

let trace_file =
  let doc =
    "Write a Chrome trace-event JSON of the extraction to $(docv) \
     (loadable in Perfetto or chrome://tracing): spans for every \
     pipeline stage, per-fix-point-round parser events with instance \
     and guard counters, budget-trip and rollback annotations."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let profile =
  let doc =
    "Print a per-stage profile table (calls, total/avg/max milliseconds, \
     share of total) to stderr after extraction."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let quality =
  let doc =
    "Print the Wqi_quality record of the extraction — outcome, token \
     coverage, conflict/missing counts, surviving ambiguity and the \
     scalar quality score — as one canonical JSON line, always the \
     last stdout line (also after $(b,--json))."
  in
  Arg.(value & flag & info [ "quality" ] ~doc)

let cmd =
  let doc = "extract query capabilities from a Web query interface" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Parses an HTML query form with the best-effort 2P-grammar parser \
         and prints the extracted conditions [attribute; operators; \
         domain], one per line, followed by any conflict or \
         missing-element reports.";
      `P
        "Extraction can be resource-governed with $(b,--deadline-ms) and \
         $(b,--max-instances); a tripped budget yields a degraded (but \
         non-empty whenever anything parsed) result, reported in the \
         outcome section and in the JSON export.";
      `P "Exits with status 1 when no condition was extracted." ]
  in
  let term =
    Term.(
      const run $ input $ show_tokens $ show_trees $ show_stats $ show_ascii
      $ as_json $ verbose $ grammar_file $ width $ deadline_ms $ max_instances
      $ trace_file $ profile $ quality)
  in
  Cmd.v (Cmd.info "wqi_extract" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval' cmd)
