(* Crawl-scale ingestion into the persistent extraction store.

   wqi_crawl walks a frontier — one or more directory trees of .html
   files, plus optional --list files of explicit paths — and feeds every
   *new* query interface through the parallel extractor into a
   --store directory:

   - {b Dedup before extraction.}  Crawled corpora repeat themselves:
     the same search form mirrored across a site, or the same markup
     re-serialized with different whitespace.  Each document is
     fingerprinted with a structural signature (tag shape + attributes +
     collapsed text; see Wqi_store.Signature) in a cheap sequential
     pre-pass, and only the first document per signature is extracted —
     later copies are counted as aliases and skipped.
   - {b Resume for free.}  The extract phase probes the store by content
     key first, so re-crawling a frontier re-extracts only documents
     whose bytes (or grammar) changed; everything else is a store hit.
   - {b Failure isolation.}  A document whose read or extraction fails
     is counted, reported (stderr and --errors-json), and never stops
     the crawl.
   - {b Domain classification.}  Unless --no-classify, each extracted
     document is scored against the corpus domain vocabularies
     (keyword-count argmax) and the winning domain name is recorded in
     the store's provenance and tallied in the summary. *)

module Pool = Wqi_parallel.Pool
module Extractor = Wqi_core.Extractor
module Budget = Wqi_core.Budget
module Store = Wqi_store.Store
module Key = Wqi_store.Key
module Signature = Wqi_store.Signature
module Report = Wqi_store.Report
module Vocabulary = Wqi_corpus.Vocabulary
module Quality = Wqi_quality.Quality

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let n = in_channel_length ic in
       really_input_string ic n)

(* ------------------------------------------------------------------ *)
(* Frontier discovery                                                 *)
(* ------------------------------------------------------------------ *)

(* A frontier entry: [f_id] is the stable document identity recorded as
   the store's source (root-relative path without the extension, or the
   listed path itself), [f_path] where to read it. *)
type fdoc = {
  f_id : string;
  f_path : string;
}

let is_html f = Filename.check_suffix f ".html"

(* Depth-first, entries sorted, so discovery order — and therefore
   which copy of a duplicate becomes the canonical one — is
   deterministic for a given tree. *)
let walk_root root =
  let acc = ref [] in
  let rec go rel abs =
    match Sys.readdir abs with
    | exception Sys_error _ -> ()  (* unreadable subtree: skip, not fatal *)
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
           let abs' = Filename.concat abs entry in
           let rel' = if rel = "" then entry else Filename.concat rel entry in
           if Sys.is_directory abs' then go rel' abs'
           else if is_html entry then
             acc :=
               { f_id = Filename.remove_extension rel'; f_path = abs' }
               :: !acc)
        entries
  in
  go "" root;
  List.rev !acc

let read_list path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let acc = ref [] in
       (try
          while true do
            let line = String.trim (input_line ic) in
            if line <> "" && line.[0] <> '#' then
              acc :=
                { f_id = Filename.remove_extension line; f_path = line }
                :: !acc
          done
        with End_of_file -> ());
       List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Domain classification                                              *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  if m = 0 || m > n then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= n - m do
      if String.sub haystack !i m = needle then found := true;
      incr i
    done;
    !found
  end

(* Keyword-count argmax over the corpus vocabularies: one point per
   attribute whose label (or any variant) appears in the page.  Scoring
   attributes rather than raw terms keeps verbose attribute lists from
   dominating.  Zero points everywhere classifies as "" (unknown). *)
let classify html =
  let page = String.lowercase_ascii html in
  let score (d : Vocabulary.domain) =
    List.fold_left
      (fun acc (a : Vocabulary.attribute) ->
         let hit =
           List.exists
             (fun term ->
                term <> "" && contains page (String.lowercase_ascii term))
             (a.Vocabulary.label :: a.Vocabulary.variants)
         in
         if hit then acc + 1 else acc)
      0 d.Vocabulary.attributes
  in
  let best, best_score =
    List.fold_left
      (fun (bn, bs) d ->
         let s = score d in
         if s > bs then (d.Vocabulary.name, s) else (bn, bs))
      ("", 0) Vocabulary.all
  in
  if best_score = 0 then "" else best

(* ------------------------------------------------------------------ *)
(* Extract phase                                                      *)
(* ------------------------------------------------------------------ *)

type result_kind =
  | R_hit
  | R_extracted of [ `Complete | `Degraded ]
  | R_failed of string * string  (* outcome label, detail *)

type cres = {
  r_doc : fdoc;
  r_kind : result_kind;
  r_domain : string;
  r_quality : Quality.t option;  (* None only for pre-quality store hits *)
}

let process config store ~no_classify doc =
  let pack = config.Extractor.Config.grammar in
  let grammar_id =
    pack.Wqi_parser.Engine.name ^ "@" ^ pack.Wqi_parser.Engine.version
  in
  match read_file doc.f_path with
  | exception e ->
    { r_doc = doc;
      r_kind = R_failed ("read-error", Printexc.to_string e);
      r_domain = "";
      r_quality =
        Some (Quality.failed ~source:doc.f_id ~grammar:grammar_id ()) }
  | html ->
    let spec =
      Key.spec ~grammar_name:pack.Wqi_parser.Engine.name
        ~grammar_version:pack.Wqi_parser.Engine.version
        ~name:(Filename.basename doc.f_id)
        config.Extractor.Config.budget
    in
    let key = Key.make ~html ~spec in
    (match Store.meta store key with
     | Some m ->
       (* Store hits roll up from the persisted headline fields — this
          is what lets a re-crawl emit a complete quality.jsonl without
          re-extracting anything. *)
       { r_doc = doc;
         r_kind = R_hit;
         r_domain = m.Store.domain;
         r_quality =
           Option.map
             (fun q ->
                Quality.of_rollup ~source:m.Store.source
                  ~grammar:m.Store.grammar ~domain:m.Store.domain
                  ~outcome:m.Store.outcome ~score:q.Store.q_score
                  ~coverage:q.Store.q_coverage
                  ~conflicts:q.Store.q_conflicts)
             m.Store.quality }
     | None ->
       let domain = if no_classify then "" else classify html in
       let e = Extractor.run config (Extractor.Html html) in
       let q =
         Quality.of_extraction ~source:doc.f_id ~grammar:grammar_id ~domain e
       in
       (match e.Extractor.outcome with
        | Budget.Failed err ->
          { r_doc = doc;
            r_kind = R_failed ("failed", err.Budget.message);
            r_domain = domain;
            r_quality = Some q }
        | Budget.Complete | Budget.Degraded _ ->
          let tag =
            match e.Extractor.outcome with
            | Budget.Degraded _ -> `Degraded
            | _ -> `Complete
          in
          let bytes =
            Extractor.export ~timings:false
              ~name:(Filename.basename doc.f_id)
              e
          in
          Store.put store key
            ~meta:
              { Store.source = doc.f_id;
                grammar = grammar_id;
                outcome =
                  (match tag with
                   | `Complete -> "complete"
                   | `Degraded -> "degraded");
                domain;
                quality =
                  Some
                    { Store.q_score = q.Quality.score;
                      q_coverage = q.Quality.coverage;
                      q_conflicts = q.Quality.conflicts } }
            bytes;
          { r_doc = doc;
            r_kind = R_extracted tag;
            r_domain = domain;
            r_quality = Some q }))

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let run roots lists store_dir jobs grammar_file deadline_ms max_instances
    no_classify summary_json errors_json quality_jsonl =
  let jobs =
    match jobs with
    | Some n when n >= 1 -> n
    | Some n ->
      Format.eprintf "--jobs %d: must be >= 1@." n;
      exit 2
    | None -> Domain.recommended_domain_count ()
  in
  let budget =
    match (deadline_ms, max_instances) with
    | None, None -> Budget.unlimited
    | _ -> Budget.make ?deadline_ms ?max_instances ()
  in
  let config = Extractor.Config.(default |> with_budget budget) in
  let config =
    match grammar_file with
    | None -> config
    | Some path ->
      (match Extractor.load_grammar path with
       | Ok pack -> Extractor.Config.with_compiled pack config
       | Error msg ->
         Format.eprintf "%s@." msg;
         exit 2)
  in
  let frontier =
    List.concat_map walk_root roots @ List.concat_map read_list lists
  in
  if frontier = [] then begin
    Format.eprintf "wqi_crawl: empty frontier (no .html documents found)@.";
    1
  end
  else begin
    let t0 = Unix.gettimeofday () in
    (* Pre-extraction dedup: sequential single pass; the signature scan
       is linear in the bytes and orders of magnitude cheaper than the
       extraction it saves. *)
    let seen = Hashtbl.create 1024 in
    let errors = ref [] in
    let aliases = ref 0 in
    let unique = ref [] in
    List.iter
      (fun doc ->
         match read_file doc.f_path with
         | exception e ->
           errors :=
             { Report.path = doc.f_path;
               outcome = "read-error";
               error = Printexc.to_string e }
             :: !errors
         | html ->
           let sg = Signature.structural html in
           (match Hashtbl.find_opt seen sg with
            | Some _canonical -> incr aliases
            | None ->
              Hashtbl.replace seen sg doc.f_id;
              unique := doc :: !unique))
      frontier;
    let unique = Array.of_list (List.rev !unique) in
    let read_errors = List.length !errors in
    let store = Store.open_ store_dir in
    let results =
      Pool.run ~jobs (fun pool ->
          Pool.map_array pool (process config store ~no_classify) unique)
    in
    let store_stats = Store.stats store in
    Store.close store;
    let seconds = Unix.gettimeofday () -. t0 in
    let hits = ref 0 and extracted = ref 0 and degraded = ref 0 in
    let failed = ref 0 in
    let domains = Hashtbl.create 16 in
    let agg = Quality.Agg.create () in
    let q_oc = Option.map open_out quality_jsonl in
    let emit_quality q =
      Quality.Agg.add agg q;
      match q_oc with
      | Some qoc ->
        output_string qoc (Quality.to_json q);
        output_char qoc '\n'
      | None -> ()
    in
    Array.iter
      (fun r ->
         Option.iter emit_quality r.r_quality;
         (match r.r_kind with
          | R_hit -> incr hits
          | R_extracted tag ->
            incr extracted;
            if tag = `Degraded then incr degraded
          | R_failed (outcome, detail) ->
            incr failed;
            errors :=
              { Report.path = r.r_doc.f_path; outcome; error = detail }
              :: !errors;
            Format.eprintf "wqi_crawl: %s: %s (%s)@." r.r_doc.f_path detail
              outcome);
         match r.r_kind with
         | R_failed _ -> ()
         | _ ->
           let d = if r.r_domain = "" then "unknown" else r.r_domain in
           Hashtbl.replace domains d
             (1 + Option.value ~default:0 (Hashtbl.find_opt domains d)))
      results;
    (match q_oc with Some qoc -> close_out qoc | None -> ());
    let errors = List.rev !errors in
    (match errors_json with
     | Some path -> Report.write_file path (Report.errors_json errors)
     | None -> ());
    (match summary_json with
     | Some path ->
       let domain_fields =
         Hashtbl.fold (fun d n acc -> (d, n) :: acc) domains []
         |> List.sort compare
         |> List.map (fun (d, n) -> ("domain:" ^ d, Report.Int n))
       in
       Report.write_file path
         (Report.summary_json ~version:"wqi_crawl_summary_version"
            ([ ("discovered", Report.Int (List.length frontier));
               ("unique", Report.Int (Array.length unique));
               ("aliases", Report.Int !aliases);
               ("store_hits", Report.Int !hits);
               ("extracted", Report.Int !extracted);
               ("degraded", Report.Int !degraded);
               ("failed", Report.Int !failed);
               ("read_errors", Report.Int read_errors);
               ("store_orphaned_bytes", Report.Int store_stats.orphaned_bytes);
               ("mean_score",
                Report.Float
                  (Quality.Agg.mean_score (Quality.Agg.total agg)));
               ("seconds", Report.Float seconds);
               ("jobs", Report.Int jobs) ]
             @ domain_fields))
     | None -> ());
    Format.eprintf
      "wqi_crawl: %d discovered, %d aliases skipped, %d unique; %d store \
       hits, %d extracted (%d degraded), %d failed; %.2f s wall, %d jobs@."
      (List.length frontier) !aliases (Array.length unique) !hits !extracted
      !degraded !failed seconds jobs;
    0
  end

open Cmdliner

let roots =
  let doc =
    "Directory trees to crawl; every .html file below each $(docv) joins \
     the frontier (document identity = root-relative path)."
  in
  Arg.(value & pos_all dir [] & info [] ~docv:"DIR" ~doc)

let lists =
  let doc =
    "Also read frontier paths from $(docv), one per line (blank lines \
     and #-comments ignored).  Repeatable."
  in
  Arg.(value & opt_all file [] & info [ "list" ] ~docv:"FILE" ~doc)

let store_dir =
  let doc =
    "The persistent extraction store to ingest into (created if \
     missing).  Re-crawling probes it by content key, so unchanged \
     documents are hits, not re-extractions."
  in
  Arg.(required & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let jobs =
  let doc =
    "Extract with $(docv) parallel domains (default: the machine's \
     recommended domain count)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let grammar_file =
  let doc = "Parse with the 2P grammar loaded from $(docv) (.wqg sexp)." in
  Arg.(value & opt (some file) None & info [ "grammar" ] ~docv:"FILE" ~doc)

let deadline_ms =
  let doc = "Per-document wall-clock budget in milliseconds." in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_instances =
  let doc = "Per-document cap on parser instances." in
  Arg.(value & opt (some int) None & info [ "max-instances" ] ~docv:"N" ~doc)

let no_classify =
  let doc =
    "Skip domain classification; provenance records an empty domain."
  in
  Arg.(value & flag & info [ "no-classify" ] ~doc)

let summary_json =
  let doc =
    "Write the run counters (discovered, unique, aliases, store_hits, \
     extracted, degraded, failed, store_orphaned_bytes, mean_score, \
     per-domain tallies) as one flat JSON object to $(docv), atomically."
  in
  Arg.(value & opt (some string) None & info [ "summary-json" ] ~docv:"FILE" ~doc)

let errors_json =
  let doc =
    "Write per-document failures as a JSON array \
     ([{\"path\",\"outcome\",\"error\"}, ...]) to $(docv), atomically."
  in
  Arg.(value & opt (some string) None & info [ "errors-json" ] ~docv:"FILE" ~doc)

let quality_jsonl =
  let doc =
    "Append one Wqi_quality record per processed document (JSONL) to \
     $(docv): outcome, token coverage, conflicts, surviving ambiguity \
     and the scalar score, with the crawl-classified domain.  Store \
     hits rebuild their record from the persisted manifest fields, so \
     a fully warm re-crawl still emits a complete file; feed it to \
     wqi_report for per-domain rollups and drift comparisons."
  in
  Arg.(value
       & opt (some string) None
       & info [ "quality-jsonl" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "crawl query interfaces into a persistent extraction store" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Walks directory trees (and --list files) of saved HTML query \
         interfaces, deduplicates them by structural signature before \
         extraction, classifies each by domain vocabulary, and runs the \
         parallel extractor into a content-addressed persistent store.  \
         Re-crawling the same frontier is incremental: only documents \
         whose bytes or grammar changed are re-extracted.";
      `P
        "Per-document failures are isolated and reported; the crawl \
         itself fails only on an empty frontier." ]
  in
  let term =
    Term.(
      const run $ roots $ lists $ store_dir $ jobs $ grammar_file
      $ deadline_ms $ max_instances $ no_classify $ summary_json
      $ errors_json $ quality_jsonl)
  in
  Cmd.v (Cmd.info "wqi_crawl" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval' cmd)
