(* Corpus-level quality reporting over persisted Wqi_quality records.

   wqi_report answers "how well did that crawl extract?" without
   re-running any extraction.  It reads per-document quality records
   either from a quality.jsonl (written by wqi_batch / wqi_crawl
   --quality-jsonl) or directly from a persistent store directory's
   manifest provenance, and renders:

   - overall and per-domain rollups: record count, outcome counts,
     mean score and coverage, conflict/missing totals;
   - Figure-15-style threshold curves — the share of sources whose
     quality score clears each threshold;
   - the N worst sources with their failure reasons;
   - with a BASELINE input, a drift comparison: per-domain mean-score
     deltas of RUN against BASELINE, with regressions beyond
     --drift-threshold flagged and reflected in the exit status (3),
     so CI can gate a re-crawl on "no domain got worse". *)

module Quality = Wqi_quality.Quality
module Agg = Wqi_quality.Quality.Agg
module Store = Wqi_store.Store
module Report = Wqi_store.Report
module Metrics = Wqi_metrics.Metrics

let die fmt =
  Printf.ksprintf
    (fun msg ->
       prerr_endline ("wqi_report: " ^ msg);
       exit 2)
    fmt

let thresholds = [ 0.5; 0.6; 0.7; 0.8; 0.9 ]

(* ------------------------------------------------------------------ *)
(* Loading                                                            *)
(* ------------------------------------------------------------------ *)

let load_jsonl path =
  let ic = try open_in path with Sys_error msg -> die "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let records = ref [] in
       let lineno = ref 0 in
       (try
          while true do
            let line = input_line ic in
            incr lineno;
            if String.trim line <> "" then
              match Quality.of_json line with
              | Ok r -> records := r :: !records
              | Error msg -> die "%s:%d: %s" path !lineno msg
          done
        with End_of_file -> ());
       List.rev !records)

let load_store dir =
  let st = Store.open_ dir in
  let records = ref [] in
  let skipped = ref 0 in
  Store.iter st (fun _key m ->
      match m.Store.quality with
      | Some q ->
        records :=
          Quality.of_rollup ~source:m.Store.source ~grammar:m.Store.grammar
            ~domain:m.Store.domain ~outcome:m.Store.outcome
            ~score:q.Store.q_score ~coverage:q.Store.q_coverage
            ~conflicts:q.Store.q_conflicts
          :: !records
      | None -> incr skipped);
  Store.close st;
  if !skipped > 0 then
    Printf.eprintf
      "wqi_report: %s: %d entries predate quality records, skipped\n%!" dir
      !skipped;
  (* Manifest iteration order is hash order; sort so the report is a
     pure function of the store contents. *)
  List.sort
    (fun a b -> String.compare a.Quality.source b.Quality.source)
    !records

let load path =
  if not (Sys.file_exists path) then die "%s: no such file or directory" path
  else if Sys.is_directory path then load_store path
  else load_jsonl path

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let domain_name d = if d = "" then "(unknown)" else d

let curve records =
  Metrics.distribution ~thresholds
    (List.map (fun r -> r.Quality.score) records)

let print_curve indent pairs =
  print_string indent;
  List.iter
    (fun (t, pct) -> Printf.printf "score>=%.1f %5.1f%%  " t pct)
    pairs;
  print_newline ()

let print_cell label (c : Agg.cell) =
  Printf.printf
    "%-24s %6d records  %5d complete %5d degraded %5d failed  mean score \
     %.3f  mean coverage %.3f  conflicts %d  missing %d\n"
    label c.Agg.count c.Agg.complete c.Agg.degraded c.Agg.failed
    (Agg.mean_score c) (Agg.mean_coverage c) c.Agg.conflicts c.Agg.missing

(* Why a source scored the way it did, from its own record.  Rolled-up
   records (store hits) carry only the headline fields, so the detail
   counters can legitimately all be zero. *)
let reason (r : Quality.t) =
  if r.Quality.outcome = "failed" then "failed"
  else begin
    let parts = ref [] in
    if r.Quality.trips > 0 then
      parts := Printf.sprintf "budget trips=%d" r.Quality.trips :: !parts;
    if r.Quality.ambiguity > 0 then
      parts := Printf.sprintf "ambiguity=%d" r.Quality.ambiguity :: !parts;
    if r.Quality.missing > 0 then
      parts := Printf.sprintf "missing=%d" r.Quality.missing :: !parts;
    if r.Quality.conflicts > 0 then
      parts := Printf.sprintf "conflicts=%d" r.Quality.conflicts :: !parts;
    match !parts with
    | [] -> if r.Quality.coverage < 1. then "low coverage" else "-"
    | parts -> String.concat " " parts
  end

let print_worst n records =
  let worst =
    List.stable_sort
      (fun a b -> Float.compare a.Quality.score b.Quality.score)
      records
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  List.iter
    (fun r ->
       Printf.printf "  %.3f  %-32s %-9s coverage %.3f  %s\n" r.Quality.score
         r.Quality.source r.Quality.outcome r.Quality.coverage (reason r))
    (take n worst)

let aggregate records =
  let agg = Agg.create () in
  List.iter (Agg.add agg) records;
  agg

let by_domain records =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
       let cur =
         Option.value ~default:[] (Hashtbl.find_opt tbl r.Quality.domain)
       in
       Hashtbl.replace tbl r.Quality.domain (r :: cur))
    records;
  Hashtbl.fold (fun d rs acc -> (d, List.rev rs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Single-run report                                                  *)
(* ------------------------------------------------------------------ *)

let report_run path records worst json =
  let agg = aggregate records in
  Printf.printf "wqi_report: %s\n\n" path;
  print_cell "overall" (Agg.total agg);
  print_curve "  " (curve records);
  print_newline ();
  let domains = by_domain records in
  if List.length domains > 1 then begin
    print_endline "by domain:";
    List.iter
      (fun (d, rs) ->
         let cell =
           List.assoc d (Agg.domains agg)
         in
         print_cell ("  " ^ domain_name d) cell;
         print_curve "    " (curve rs))
      domains;
    print_newline ()
  end;
  (match Agg.grammars agg with
   | [ _ ] | [] -> ()
   | grammars ->
     print_endline "by grammar:";
     List.iter (fun (g, cell) -> print_cell ("  " ^ g) cell) grammars;
     print_newline ());
  if worst > 0 && records <> [] then begin
    Printf.printf "worst %d sources:\n" (min worst (List.length records));
    print_worst worst records
  end;
  (match json with
   | None -> ()
   | Some out ->
     let total = Agg.total agg in
     let domain_fields =
       List.map
         (fun (d, cell) ->
            ("mean_score:" ^ domain_name d, Report.Float (Agg.mean_score cell)))
         (Agg.domains agg)
     in
     Report.write_file out
       (Report.summary_json ~version:"wqi_report_version"
          ([ ("records", Report.Int total.Agg.count);
             ("complete", Report.Int total.Agg.complete);
             ("degraded", Report.Int total.Agg.degraded);
             ("failed", Report.Int total.Agg.failed);
             ("mean_score", Report.Float (Agg.mean_score total));
             ("mean_coverage", Report.Float (Agg.mean_coverage total));
             ("conflicts", Report.Int total.Agg.conflicts);
             ("missing", Report.Int total.Agg.missing) ]
           @ domain_fields)));
  0

(* ------------------------------------------------------------------ *)
(* Drift mode                                                         *)
(* ------------------------------------------------------------------ *)

let report_drift path base_path records baseline threshold json =
  let agg = aggregate records and base_agg = aggregate baseline in
  let cur_domains = Agg.domains agg and base_domains = Agg.domains base_agg in
  Printf.printf "wqi_report: drift of %s against %s (threshold %.3f)\n\n" path
    base_path threshold;
  let total = Agg.total agg and base_total = Agg.total base_agg in
  let overall_delta = Agg.mean_score total -. Agg.mean_score base_total in
  Printf.printf
    "overall: %d records (baseline %d), mean score %.3f vs %.3f, delta %+.3f\n"
    total.Agg.count base_total.Agg.count (Agg.mean_score total)
    (Agg.mean_score base_total) overall_delta;
  let regressions = ref 0 in
  let deltas = ref [] in
  List.iter
    (fun (d, base_cell) ->
       match List.assoc_opt d cur_domains with
       | None ->
         (* A whole domain disappearing from the re-crawl is the worst
            regression of all. *)
         incr regressions;
         deltas := (d, -.Agg.mean_score base_cell) :: !deltas;
         Printf.printf "  %-24s REGRESSION: domain missing from run \
                        (baseline mean %.3f, %d records)\n"
           (domain_name d) (Agg.mean_score base_cell) base_cell.Agg.count
       | Some cell ->
         let delta = Agg.mean_score cell -. Agg.mean_score base_cell in
         deltas := (d, delta) :: !deltas;
         let flag = delta < -.threshold in
         if flag then incr regressions;
         Printf.printf "  %-24s mean score %.3f vs %.3f, delta %+.3f%s\n"
           (domain_name d) (Agg.mean_score cell)
           (Agg.mean_score base_cell) delta
           (if flag then "  REGRESSION" else ""))
    base_domains;
  List.iter
    (fun (d, cell) ->
       if not (List.mem_assoc d base_domains) then
         Printf.printf "  %-24s new domain (mean score %.3f, %d records)\n"
           (domain_name d) (Agg.mean_score cell) cell.Agg.count)
    cur_domains;
  Printf.printf "\n%d regression%s\n" !regressions
    (if !regressions = 1 then "" else "s");
  (match json with
   | None -> ()
   | Some out ->
     let delta_fields =
       List.rev_map
         (fun (d, delta) -> ("delta:" ^ domain_name d, Report.Float delta))
         !deltas
     in
     Report.write_file out
       (Report.summary_json ~version:"wqi_report_version"
          ([ ("records", Report.Int total.Agg.count);
             ("baseline_records", Report.Int base_total.Agg.count);
             ("mean_score", Report.Float (Agg.mean_score total));
             ("baseline_mean_score",
              Report.Float (Agg.mean_score base_total));
             ("overall_delta", Report.Float overall_delta);
             ("regressions", Report.Int !regressions) ]
           @ delta_fields)));
  if !regressions > 0 then 3 else 0

let run path baseline worst threshold json =
  let records = load path in
  if records = [] then
    Printf.eprintf "wqi_report: %s: no quality records\n%!" path;
  match baseline with
  | None -> report_run path records worst json
  | Some base_path ->
    report_drift path base_path records (load base_path) threshold json

open Cmdliner

let path =
  let doc =
    "Quality records to report on: a quality.jsonl file (from wqi_batch \
     / wqi_crawl --quality-jsonl) or a persistent store directory, \
     whose manifest provenance is rolled up without re-extraction."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN" ~doc)

let baseline =
  let doc =
    "Baseline records (same formats as $(i,RUN)).  Enables drift mode: \
     per-domain mean-score deltas of $(i,RUN) against $(docv), with \
     regressions beyond $(b,--drift-threshold) flagged and exit status \
     3 when any domain regressed."
  in
  Arg.(value & pos 1 (some string) None & info [] ~docv:"BASELINE" ~doc)

let worst =
  let doc = "List the $(docv) worst-scoring sources with their reasons." in
  Arg.(value & opt int 5 & info [ "worst" ] ~docv:"N" ~doc)

let threshold =
  let doc =
    "Drift tolerance: a domain whose mean score drops by more than \
     $(docv) against the baseline counts as a regression."
  in
  Arg.(value & opt float 0.05 & info [ "drift-threshold" ] ~docv:"DELTA" ~doc)

let json =
  let doc =
    "Also write a flat machine-readable summary (rollup fields, or \
     per-domain deltas and the regression count in drift mode) to \
     $(docv), atomically."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "report extraction quality from persisted quality records" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Aggregates per-document Wqi_quality records — from a \
         quality.jsonl or straight from a store directory's manifest — \
         into overall and per-domain rollups, score-threshold \
         distribution curves, and a worst-sources list, entirely from \
         persisted records (no re-extraction).";
      `P
        "With a second input, compares the two runs: per-domain \
         mean-score deltas, regressions beyond the threshold flagged, \
         non-zero exit on any regression — suitable as a CI gate for \
         re-crawls.";
      `S Manpage.s_exit_status;
      `P "0 on success with no regressions; 2 on unreadable or malformed \
          inputs; 3 when drift mode found regressions." ]
  in
  let term =
    Term.(const run $ path $ baseline $ worst $ threshold $ json)
  in
  Cmd.v (Cmd.info "wqi_report" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval' cmd)
