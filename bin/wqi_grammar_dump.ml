(* Print the derived global 2P grammar: symbol inventory, productions,
   preferences, and the 2P schedule (instantiation order, transformed
   and relaxed r-edges) — the analog of the paper's statement that "the
   grammar is available online".

   Grammar-file modes:
     --export        print the declarative standard grammar in the .wqg
                     sexp format (the bytes of examples/grammars/std.wqg)
     --load FILE     load FILE, instantiate it against the standard
                     lexical environment, and re-print its canonical
                     dump — [--export | --load /dev/stdin] is the
                     round-trip identity
     --check FILE    load FILE, instantiate, and print a one-line
                     summary; exit 1 with file:line:col diagnostics on
                     any malformation *)

module Loader = Wqi_grammar.Loader
module Algebra = Wqi_grammar.Algebra

let env = Wqi_stdgrammar.Std_decl.env

let fail fmt = Format.kfprintf (fun _ -> exit 1) Format.err_formatter fmt

let load_instantiated file =
  match Loader.load ~env file with
  | Error e -> fail "%s@." (Loader.error_to_string e)
  | Ok decl ->
    (match Algebra.instantiate env decl with
     | Error msgs ->
       fail "%s: %a@." file
         Format.(pp_print_list ~pp_sep:pp_print_newline pp_print_string)
         msgs
     | Ok g -> (decl, g))

let legacy_dump () =
  let g = Wqi_stdgrammar.Std.grammar in
  let terminals, nonterminals, productions, preferences =
    Wqi_grammar.Grammar.stats g
  in
  Format.printf
    "derived global 2P grammar: %d terminals, %d nonterminals, %d \
     productions, %d preferences@.@."
    terminals nonterminals productions preferences;
  Format.printf "%a@.@." Wqi_grammar.Grammar.pp g;
  let schedule = Wqi_grammar.Schedule.build g in
  Format.printf "2P schedule:@.%a@." Wqi_grammar.Schedule.pp schedule

let () =
  match Array.to_list Sys.argv with
  | _ :: "--export" :: [] ->
    print_string (Loader.dump Wqi_stdgrammar.Std_decl.decl)
  | _ :: "--load" :: file :: [] ->
    let decl, _g = load_instantiated file in
    print_string (Loader.dump decl)
  | _ :: "--check" :: file :: [] ->
    let decl, g = load_instantiated file in
    let terminals, nonterminals, productions, preferences =
      Wqi_grammar.Grammar.stats g
    in
    Format.printf
      "%s: grammar %s@%s ok — %d terminals, %d nonterminals, %d \
       productions, %d preferences@."
      file decl.Algebra.g_name decl.Algebra.g_version terminals nonterminals
      productions preferences
  | [ _ ] -> legacy_dump ()
  | _ ->
    fail "usage: wqi_grammar_dump [--export | --load FILE | --check FILE]@."
