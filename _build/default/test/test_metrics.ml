(* Tests for the precision/recall metrics. *)

module Metrics = Wqi_metrics.Metrics
module Condition = Wqi_model.Condition

let cond ?operators name = Condition.make ?operators ~attribute:name Condition.Text

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 0.0001))

let test_count_exact () =
  let truth = [ cond "a"; cond "b" ] in
  let extracted = [ cond "b"; cond "a" ] in
  let c = Metrics.count ~truth ~extracted in
  check_int "correct" 2 c.correct;
  check_float "precision" 1.0 (Metrics.precision c);
  check_float "recall" 1.0 (Metrics.recall c)

let test_count_one_to_one () =
  (* Two identical extracted conditions may match only one truth. *)
  let c = Metrics.count ~truth:[ cond "a" ] ~extracted:[ cond "a"; cond "a" ] in
  check_int "matched once" 1 c.correct;
  check_int "extracted" 2 c.extracted;
  check_float "precision" 0.5 (Metrics.precision c)

let test_count_partial () =
  let truth = [ cond "a"; cond "b"; cond "c" ] in
  let extracted = [ cond "a"; cond "x" ] in
  let c = Metrics.count ~truth ~extracted in
  check_int "one correct" 1 c.correct;
  check_float "precision" 0.5 (Metrics.precision c);
  check_float "recall" (1. /. 3.) (Metrics.recall c)

let test_empty_edges () =
  let c = Metrics.count ~truth:[] ~extracted:[] in
  check_float "empty precision" 1.0 (Metrics.precision c);
  check_float "empty recall" 1.0 (Metrics.recall c);
  let c2 = Metrics.count ~truth:[ cond "a" ] ~extracted:[] in
  check_float "nothing extracted precision" 1.0 (Metrics.precision c2);
  check_float "nothing extracted recall" 0.0 (Metrics.recall c2)

let test_operator_sensitivity () =
  let truth = [ cond ~operators:[ "contains"; "exact" ] "a" ] in
  let c =
    Metrics.count ~truth ~extracted:[ cond ~operators:[ "contains" ] "a" ]
  in
  check_int "operators must match" 0 c.correct

let test_accuracy_and_add () =
  check_float "accuracy" 0.85 (Metrics.accuracy ~precision:0.8 ~recall:0.9);
  let a = { Metrics.truth = 2; extracted = 3; correct = 1 } in
  let b = { Metrics.truth = 4; extracted = 1; correct = 1 } in
  let s = Metrics.add a b in
  check_int "sum truth" 6 s.truth;
  check_int "sum extracted" 4 s.extracted;
  check_int "sum correct" 2 s.correct;
  Alcotest.(check bool) "zero neutral" true (Metrics.add Metrics.zero a = a)

let test_distribution () =
  let values = [ 1.0; 0.9; 0.5; 0.0 ] in
  let d = Metrics.distribution ~thresholds:[ 1.0; 0.9; 0.5; 0.0 ] values in
  Alcotest.(check (list (pair (float 0.001) (float 0.001))))
    "distribution"
    [ (1.0, 25.); (0.9, 50.); (0.5, 75.); (0.0, 100.) ]
    d;
  Alcotest.(check (list (pair (float 0.001) (float 0.001))))
    "empty" [ (1.0, 0.) ]
    (Metrics.distribution ~thresholds:[ 1.0 ] [])

let test_mean () =
  check_float "mean" 0.5 (Metrics.mean [ 0.; 1. ]);
  check_float "empty mean" 0.0 (Metrics.mean [])

let suite =
  [ ("exact match", `Quick, test_count_exact);
    ("one-to-one matching", `Quick, test_count_one_to_one);
    ("partial match", `Quick, test_count_partial);
    ("empty edge cases", `Quick, test_empty_edges);
    ("operator sensitivity", `Quick, test_operator_sensitivity);
    ("accuracy and aggregation", `Quick, test_accuracy_and_add);
    ("distribution", `Quick, test_distribution);
    ("mean", `Quick, test_mean) ]
