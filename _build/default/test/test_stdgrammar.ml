(* Tests for the lexicon and the derived global grammar, including one
   end-to-end extraction check per condition pattern. *)

module Lexicon = Wqi_stdgrammar.Lexicon
module Std = Wqi_stdgrammar.Std
module Grammar = Wqi_grammar.Grammar
module Condition = Wqi_model.Condition
module Pattern = Wqi_corpus.Pattern
module Vocabulary = Wqi_corpus.Vocabulary

let check_bool = Alcotest.(check bool)

(* --- lexicon --- *)

let test_operator_phrases () =
  List.iter
    (fun s -> check_bool s true (Lexicon.is_operator_phrase s))
    [ "contains"; "Starts with"; "exact phrase"; "First name/initials and last name";
      "begins with"; "contains all words" ];
  List.iter
    (fun s -> check_bool s false (Lexicon.is_operator_phrase s))
    [ "Author"; "Price"; ""; "Hardcover" ]

let test_operator_options () =
  check_bool "all ops" true
    (Lexicon.all_operator_options [ "contains"; "exact match" ]);
  check_bool "mixed" false
    (Lexicon.all_operator_options [ "contains"; "Hardcover" ]);
  check_bool "singleton" false (Lexicon.all_operator_options [ "contains" ])

let test_bound_markers () =
  List.iter
    (fun s -> check_bool s true (Lexicon.is_bound_marker s))
    [ "from"; "To"; "min"; "MAX:"; " between "; "$min" ];
  List.iter
    (fun s -> check_bool s false (Lexicon.is_bound_marker s))
    [ "Author"; "fromage"; "" ]

let test_split_bound_suffix () =
  Alcotest.(check (option (pair string string)))
    "price from"
    (Some ("Price:", "from"))
    (Lexicon.split_bound_suffix "Price: from");
  Alcotest.(check (option (pair string string)))
    "doors min"
    (Some ("Doors", "min"))
    (Lexicon.split_bound_suffix "Doors min");
  Alcotest.(check (option (pair string string)))
    "no suffix" None
    (Lexicon.split_bound_suffix "Author name");
  Alcotest.(check (option (pair string string)))
    "bare marker" None
    (Lexicon.split_bound_suffix "from")

let test_split_unit_prefix () =
  Alcotest.(check (option (pair string string)))
    "miles of ZIP"
    (Some ("miles", "ZIP"))
    (Lexicon.split_unit_prefix "miles of ZIP");
  Alcotest.(check (option (pair string string)))
    "nights in"
    (Some ("nights", "in"))
    (Lexicon.split_unit_prefix "nights in");
  Alcotest.(check (option (pair string string)))
    "not unit-led" None
    (Lexicon.split_unit_prefix "ZIP code");
  Alcotest.(check (option (pair string string)))
    "bare unit" None
    (Lexicon.split_unit_prefix "miles")

let test_date_components () =
  let months = [ "January"; "February"; "December" ] in
  let days = List.init 31 (fun i -> string_of_int (i + 1)) in
  let years = [ "2004"; "2005"; "2006" ] in
  check_bool "months" true (Lexicon.date_component months = `Month);
  check_bool "days" true (Lexicon.date_component days = `Day);
  check_bool "years" true (Lexicon.date_component years = `Year);
  check_bool "none" true (Lexicon.date_component [ "red"; "blue" ] = `None);
  check_bool "mdy combo" true
    (Lexicon.plausible_date_combo [ months; days; years ]);
  check_bool "numeric mdy combo" true
    (Lexicon.plausible_date_combo
       [ List.init 12 (fun i -> string_of_int (i + 1)); days; years ]);
  check_bool "month-year pair" true
    (Lexicon.plausible_date_combo [ months; years ]);
  (* Passenger-count pairs must not register as dates. *)
  check_bool "two count lists rejected" false
    (Lexicon.plausible_date_combo
       [ [ "1"; "2"; "3" ]; [ "0"; "1"; "2" ] ]);
  check_bool "hour-minute pair" true
    (Lexicon.plausible_date_combo
       [ [ "1 am"; "2 pm" ]; [ "00"; "15"; "30"; "45" ] ])

let test_plausible_attribute () =
  List.iter
    (fun s -> check_bool s true (Lexicon.plausible_attribute s))
    [ "Author"; "Price range"; "Keyword(s):"; "Departure city" ];
  List.iter
    (fun s -> check_bool s false (Lexicon.plausible_attribute s))
    [ ""; "42"; "Find exactly what you are looking for with our options";
      "Buy now!" ]

(* --- grammar sanity --- *)

let test_grammar_valid () =
  check_bool "validates" true (Grammar.validate Std.grammar = Ok ())

let test_grammar_scale () =
  let terminals, nonterminals, productions, preferences =
    Grammar.stats Std.grammar
  in
  check_bool "terminals" true (terminals >= 7);
  check_bool "nonterminals ~ paper scale" true (nonterminals >= 25);
  check_bool "productions ~ paper scale" true (productions >= 50);
  check_bool "has preferences" true (preferences >= 15)

let test_schedule_builds () =
  let s = Wqi_grammar.Schedule.build Std.grammar in
  check_bool "covers all nonterminals" true
    (List.length s.Wqi_grammar.Schedule.order
     = List.length (Grammar.nonterminals Std.grammar))

(* --- one extraction check per pattern --- *)

let attribute_for pattern =
  let find_in domains pred =
    List.concat_map (fun (d : Vocabulary.domain) -> d.attributes) domains
    |> List.find pred
  in
  let applicable (a : Vocabulary.attribute) =
    List.mem pattern (Pattern.applicable a)
    || List.mem pattern (Pattern.applicable_oog a)
  in
  find_in Vocabulary.all applicable

let extract_pattern pattern =
  let g = Wqi_corpus.Prng.create 7L in
  let field_seq = ref 0 in
  let attr = attribute_for pattern in
  let rendering = Pattern.render g ~field_seq attr pattern in
  let html =
    Wqi_html.Printer.to_string
      (Wqi_html.Dom.element "form" rendering.nodes)
  in
  (rendering.truth, Wqi_core.Extractor.extract html)

let pattern_case pattern =
  let name = Pattern.name pattern in
  ( Printf.sprintf "pattern %s extracts" name,
    `Quick,
    fun () ->
      let truth, extraction = extract_pattern pattern in
      let extracted = Wqi_core.Extractor.conditions extraction in
      let counts = Wqi_metrics.Metrics.count ~truth:[ truth ] ~extracted in
      if counts.Wqi_metrics.Metrics.correct <> 1 then
        Alcotest.failf "pattern %s: truth %s, extracted [%s]" name
          (Condition.to_string truth)
          (String.concat "; " (List.map Condition.to_string extracted)) )

let in_vocabulary_cases = List.map pattern_case Pattern.in_vocabulary

(* Out-of-grammar patterns must NOT be extracted correctly in isolation —
   that is what makes them out-of-grammar.  (If one starts passing, it
   belongs in the vocabulary instead.) *)
let oog_case pattern =
  let name = Pattern.name pattern in
  ( Printf.sprintf "pattern %s stays out of grammar" name,
    `Quick,
    fun () ->
      let truth, extraction = extract_pattern pattern in
      let extracted = Wqi_core.Extractor.conditions extraction in
      let counts = Wqi_metrics.Metrics.count ~truth:[ truth ] ~extracted in
      Alcotest.(check int) "no exact match" 0 counts.Wqi_metrics.Metrics.correct )

let oog_cases =
  List.map oog_case
    [ Pattern.Oog_attr_right_text; Pattern.Oog_image_label ]

(* --- flagship example: the paper's amazon.com interface --- *)

let amazon = {|
<form>
<table>
<tr><td>Author:</td><td><input type="text" name="author" size="20"></td></tr>
<tr><td></td><td><input type="radio" name="m" checked> First name/initials and last name<br>
<input type="radio" name="m"> Start of last name<br>
<input type="radio" name="m"> Exact name</td></tr>
<tr><td>Title:</td><td><input type="text" name="title"></td></tr>
<tr><td>Price:</td><td><select name="p"><option>under $5</option><option>$5 to $20</option><option>above $20</option></select></td></tr>
</table>
<input type="submit" value="Search">
</form>|}

let test_amazon_interface () =
  let e = Wqi_core.Extractor.extract amazon in
  let truth =
    [ Condition.make
        ~operators:
          [ "First name/initials and last name"; "Start of last name";
            "Exact name" ]
        ~attribute:"Author" Condition.Text;
      Condition.make ~attribute:"Title" Condition.Text;
      Condition.make ~attribute:"Price"
        (Condition.Enumeration [ "under $5"; "$5 to $20"; "above $20" ]) ]
  in
  let counts =
    Wqi_metrics.Metrics.count ~truth
      ~extracted:(Wqi_core.Extractor.conditions e)
  in
  Alcotest.(check int) "all three conditions" 3 counts.correct;
  Alcotest.(check int) "nothing spurious" 3 counts.extracted;
  check_bool "complete parse" true e.diagnostics.complete

let test_column_wise_recovered () =
  (* The Figure-14 situation: a column-wise arrangement with misaligned
     rows; all conditions must still be recovered. *)
  let html = {|
<form><table><tr>
<td><p>Author: <input type="text" name="a"></p><p>Title: <input type="text" name="t"></p></td>
<td><br><br><br><p>Publisher: <input type="text" name="p"></p><p>Year: <input type="text" name="y"></p></td>
</tr></table></form>|}
  in
  let e = Wqi_core.Extractor.extract html in
  let truth =
    List.map
      (fun a -> Condition.make ~attribute:a Condition.Text)
      [ "Author"; "Title"; "Publisher"; "Year" ]
  in
  let counts =
    Wqi_metrics.Metrics.count ~truth
      ~extracted:(Wqi_core.Extractor.conditions e)
  in
  Alcotest.(check int) "all four recovered" 4 counts.correct

let test_separated_panels_partial_parses () =
  (* Two visually separated panels exceed the vertical-assembly gap, so
     no single parse covers the form; the merger must union multiple
     partial parses (Section 3.4). *)
  let spacer = String.concat "" (List.init 12 (fun _ -> "<br>")) in
  let html =
    Printf.sprintf
      {|<form><p>Author: <input type="text" name="a"></p>%s<p>Publisher: <input type="text" name="p"></p></form>|}
      spacer
  in
  let e = Wqi_core.Extractor.extract html in
  let truth =
    List.map
      (fun a -> Condition.make ~attribute:a Condition.Text)
      [ "Author"; "Publisher" ]
  in
  let counts =
    Wqi_metrics.Metrics.count ~truth
      ~extracted:(Wqi_core.Extractor.conditions e)
  in
  Alcotest.(check int) "union recovers both" 2 counts.correct;
  check_bool "more than one partial tree" true (e.diagnostics.tree_count > 1);
  check_bool "no complete parse" true (not e.diagnostics.complete)

let suite =
  [ ("lexicon: operator phrases", `Quick, test_operator_phrases);
    ("lexicon: operator options", `Quick, test_operator_options);
    ("lexicon: bound markers", `Quick, test_bound_markers);
    ("lexicon: split bound suffix", `Quick, test_split_bound_suffix);
    ("lexicon: split unit prefix", `Quick, test_split_unit_prefix);
    ("lexicon: date components", `Quick, test_date_components);
    ("lexicon: plausible attribute", `Quick, test_plausible_attribute);
    ("grammar: validates", `Quick, test_grammar_valid);
    ("grammar: paper scale", `Quick, test_grammar_scale);
    ("grammar: schedulable", `Quick, test_schedule_builds);
    ("amazon interface", `Quick, test_amazon_interface);
    ("column-wise recovered", `Quick, test_column_wise_recovered);
    ("separated panels partial parses", `Quick, test_separated_panels_partial_parses) ]
  @ in_vocabulary_cases @ oog_cases
