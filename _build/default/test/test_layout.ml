(* Tests for geometry, style metrics, and the layout engine. *)

module Geometry = Wqi_layout.Geometry
module Style = Wqi_layout.Style
module Engine = Wqi_layout.Engine
module Dom = Wqi_html.Dom

let box = Geometry.make
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- geometry --- *)

let test_box_normalization () =
  let b = box ~x1:10 ~y1:20 ~x2:4 ~y2:6 in
  check_int "x1" 4 b.Geometry.x1;
  check_int "y2" 20 b.Geometry.y2;
  check_int "width" 6 (Geometry.width b);
  check_int "height" 14 (Geometry.height b)

let test_union_contains () =
  let a = box ~x1:0 ~y1:0 ~x2:10 ~y2:10 in
  let b = box ~x1:20 ~y1:5 ~x2:30 ~y2:15 in
  let u = Geometry.union a b in
  check_bool "contains a" true (Geometry.contains u a);
  check_bool "contains b" true (Geometry.contains u b);
  check_int "union width" 30 (Geometry.width u);
  check_bool "union_all empty is origin" true
    (Geometry.equal (Geometry.union_all []) Geometry.origin)

let test_overlaps_and_gaps () =
  let a = box ~x1:0 ~y1:0 ~x2:10 ~y2:10 in
  let b = box ~x1:5 ~y1:8 ~x2:15 ~y2:20 in
  check_int "h_overlap" 5 (Geometry.h_overlap a b);
  check_int "v_overlap" 2 (Geometry.v_overlap a b);
  check_int "h_gap overlapping" 0 (Geometry.h_gap a b);
  let c = box ~x1:20 ~y1:0 ~x2:25 ~y2:10 in
  check_int "h_gap disjoint" 10 (Geometry.h_gap a c);
  check_int "v_gap overlapping" 0 (Geometry.v_gap a c)

let test_left_of () =
  let label = box ~x1:0 ~y1:0 ~x2:40 ~y2:15 in
  let field = box ~x1:45 ~y1:2 ~x2:150 ~y2:20 in
  check_bool "label left of field" true (Geometry.left_of label field);
  check_bool "field not left of label" false (Geometry.left_of field label);
  let far = box ~x1:200 ~y1:0 ~x2:250 ~y2:15 in
  check_bool "gap bound respected" false (Geometry.left_of label far);
  check_bool "gap bound adjustable" true
    (Geometry.left_of ~max_gap:200 label far);
  let below = box ~x1:45 ~y1:30 ~x2:150 ~y2:45 in
  check_bool "no vertical overlap, not left" false
    (Geometry.left_of label below)

let test_above_below () =
  let label = box ~x1:0 ~y1:0 ~x2:40 ~y2:15 in
  let field = box ~x1:0 ~y1:20 ~x2:150 ~y2:40 in
  check_bool "label above field" true (Geometry.above label field);
  check_bool "field below label" true (Geometry.below field label);
  check_bool "not above itself" false (Geometry.above label label);
  let shifted = box ~x1:300 ~y1:20 ~x2:400 ~y2:40 in
  check_bool "no horizontal overlap" false (Geometry.above label shifted)

let test_alignment () =
  let a = box ~x1:10 ~y1:10 ~x2:50 ~y2:20 in
  let b = box ~x1:13 ~y1:40 ~x2:90 ~y2:52 in
  check_bool "left aligned with tolerance" true (Geometry.left_aligned a b);
  check_bool "strict tolerance" false (Geometry.left_aligned ~tolerance:2 a b);
  check_bool "top aligned" false (Geometry.top_aligned a b);
  check_bool "bottom aligned tolerance 32" true
    (Geometry.bottom_aligned ~tolerance:32 a b)

let test_same_row_column () =
  let a = box ~x1:0 ~y1:0 ~x2:40 ~y2:16 in
  let b = box ~x1:50 ~y1:2 ~x2:120 ~y2:18 in
  check_bool "same row" true (Geometry.same_row a b);
  check_bool "not same column" false (Geometry.same_column a b);
  let below_a = box ~x1:0 ~y1:30 ~x2:45 ~y2:46 in
  check_bool "same column" true (Geometry.same_column a below_a)

let test_reading_order () =
  let first = box ~x1:0 ~y1:0 ~x2:40 ~y2:16 in
  let second = box ~x1:60 ~y1:2 ~x2:100 ~y2:18 in
  let third = box ~x1:0 ~y1:30 ~x2:40 ~y2:46 in
  check_bool "same line by x" true
    (Geometry.compare_reading_order first second < 0);
  check_bool "next line after" true
    (Geometry.compare_reading_order second third < 0)

let test_distance () =
  let a = box ~x1:0 ~y1:0 ~x2:10 ~y2:10 in
  let b = box ~x1:30 ~y1:40 ~x2:40 ~y2:50 in
  Alcotest.(check (float 0.001)) "euclidean" 50.0 (Geometry.distance a b)

(* --- style --- *)

let widget html =
  let doc = Wqi_html.Parser.parse html in
  Option.get
    (Dom.find_first
       (fun n -> Dom.is_element n && Dom.name n <> "html" && Dom.name n <> "body")
       doc)

let test_widget_sizes () =
  (match Style.widget_size (widget {|<input type="text" size="10">|}) with
   | Some (w, h) ->
     check_int "textbox width scales with size" (8 * 10 + 6) w;
     check_int "textbox height" 22 h
   | None -> Alcotest.fail "textbox must be visible");
  (match Style.widget_size (widget {|<input type="radio">|}) with
   | Some (w, h) ->
     check_int "radio square w" 13 w;
     check_int "radio square h" 13 h
   | None -> Alcotest.fail "radio must be visible");
  check_bool "hidden invisible" true
    (Style.widget_size (widget {|<input type="hidden" value="x">|}) = None);
  (match
     Style.widget_size
       (widget {|<select><option>aa</option><option>abcd</option></select>|})
   with
   | Some (w, _) ->
     check_int "select width follows longest option" (4 * 7 + 24) w
   | None -> Alcotest.fail "select must be visible");
  match Style.widget_size (widget {|<textarea cols="10" rows="2"></textarea>|}) with
  | Some (w, h) ->
    check_int "textarea width" (7 * 10 + 6) w;
    check_int "textarea height" (18 * 2 + 6) h
  | None -> Alcotest.fail "textarea must be visible"

let test_text_width_utf8 () =
  check_int "ascii" (5 * Style.char_width) (Style.text_width "abcde");
  (* One multi-byte character counts one cell. *)
  check_int "utf8" (1 * Style.char_width) (Style.text_width "\xc3\xa9")

(* --- layout engine --- *)

let render html = Engine.render (Wqi_html.Parser.parse html)

let texts items =
  List.filter_map
    (fun { Engine.item; box } ->
       match item with Engine.Text_run s -> Some (s, box) | _ -> None)
    items

let widgets items =
  List.filter_map
    (fun { Engine.item; box } ->
       match item with Engine.Widget n -> Some (n, box) | _ -> None)
    items

let test_flow_single_line () =
  let items = render "<p>Author <input type=\"text\"></p>" in
  match (texts items, widgets items) with
  | [ (label, lbox) ], [ (_, wbox) ] ->
    Alcotest.(check string) "label merged" "Author" (String.trim label);
    check_bool "label left of widget" true (Geometry.left_of lbox wbox)
  | _ -> Alcotest.fail "expected one text and one widget"

let test_text_runs_merge_across_inline () =
  let items = render "<p>Book <b>title</b> here</p>" in
  match texts items with
  | [ (s, _) ] -> Alcotest.(check string) "merged" "Book title here" s
  | ts -> Alcotest.failf "expected one run, got %d" (List.length ts)

let test_br_breaks_line () =
  let items = render "<p>one<br>two</p>" in
  match texts items with
  | [ (_, b1); (_, b2) ] ->
    check_bool "second line below" true (b2.Geometry.y1 > b1.Geometry.y1);
    check_bool "left aligned" true (Geometry.left_aligned b1 b2)
  | _ -> Alcotest.fail "expected two runs"

let test_whitespace_collapse () =
  let items = render "<p>a\n   b\t c</p>" in
  match texts items with
  | [ (s, _) ] -> Alcotest.(check string) "collapsed" "a b c" s
  | _ -> Alcotest.fail "expected one run"

let test_word_wrap () =
  let words = String.concat " " (List.init 40 (fun i -> Printf.sprintf "w%02d" i)) in
  let items = Engine.render ~width:200 (Wqi_html.Parser.parse ("<p>" ^ words ^ "</p>")) in
  check_bool "wrapped into several lines" true (List.length (texts items) > 1);
  List.iter
    (fun (_, b) ->
       check_bool "within width" true (b.Geometry.x2 <= 200))
    (texts items)

let test_blocks_stack () =
  let items = render "<div>a</div><div>b</div>" in
  match texts items with
  | [ (_, b1); (_, b2) ] ->
    check_bool "stacked" true (b2.Geometry.y1 >= b1.Geometry.y2)
  | _ -> Alcotest.fail "expected two runs"

let test_table_columns_align () =
  let items =
    render
      {|<table><tr><td>a</td><td>bbbb</td></tr><tr><td>c</td><td>d</td></tr></table>|}
  in
  match texts items with
  | [ (_, a); (_, b); (_, c); (_, d) ] ->
    check_bool "column 0 aligned" true (Geometry.left_aligned ~tolerance:0 a c);
    check_bool "column 1 aligned" true (Geometry.left_aligned ~tolerance:0 b d);
    check_bool "row order" true (a.Geometry.y1 < c.Geometry.y1);
    check_bool "b right of a" true (b.Geometry.x1 > a.Geometry.x2)
  | ts -> Alcotest.failf "expected four runs, got %d" (List.length ts)

let test_table_colspan () =
  let items =
    render
      {|<table><tr><td>aaaaaaaaaa</td><td>b</td></tr><tr><td colspan="2">c</td></tr></table>|}
  in
  check_int "three runs" 3 (List.length (texts items))

let test_nested_table () =
  let items =
    render
      {|<table><tr><td><table><tr><td>inner</td></tr></table></td><td>right</td></tr></table>|}
  in
  match List.sort compare (List.map fst (texts items)) with
  | [ "inner"; "right" ] ->
    let find s = List.assoc s (texts items) in
    check_bool "right cell to the right" true
      ((find "right").Geometry.x1 > (find "inner").Geometry.x1)
  | _ -> Alcotest.fail "expected the two runs"

let test_invisible_skipped () =
  let items =
    render
      {|<head><style>p{}</style></head><p>x<input type="hidden"><script>var a;</script></p>|}
  in
  check_int "only the visible text" 1 (List.length items)

let test_select_options_not_text () =
  let items = render {|<select><option>one</option><option>two</option></select>|} in
  check_int "no text items" 0 (List.length (texts items));
  check_int "one widget" 1 (List.length (widgets items))

let test_vertical_centering () =
  (* A 13px radio on an 18px text line sits vertically within the text. *)
  let items = render {|<p><input type="radio"> option label</p>|} in
  match (widgets items, texts items) with
  | [ (_, wb) ], [ (_, tb) ] ->
    check_bool "vertical overlap" true (Geometry.v_overlap wb tb >= 10)
  | _ -> Alcotest.fail "expected a radio and a text"

let test_reading_order_output () =
  let items = render {|<table><tr><td>a</td><td>b</td></tr></table><p>c</p>|} in
  let names = List.map fst (texts items) in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] names

let test_list_indent () =
  let items = render {|<ul><li>item</li></ul><p>after</p>|} in
  match texts items with
  | [ (_, li); (_, after) ] ->
    check_bool "indented" true (li.Geometry.x1 > after.Geometry.x1)
  | _ -> Alcotest.fail "expected two runs"

let test_center_alignment () =
  let items =
    Engine.render ~width:400
      (Wqi_html.Parser.parse {|<center><p>mid</p></center><p>left</p>|})
  in
  match texts items with
  | [ ("mid", mid); ("left", left) ] ->
    check_bool "centered line starts later" true
      (mid.Geometry.x1 > left.Geometry.x1 + 100);
    check_bool "roughly centered" true
      (abs (Geometry.center_x mid - 200) < 30)
  | _ -> Alcotest.fail "expected two runs"

let test_right_alignment () =
  let items =
    Engine.render ~width:400
      (Wqi_html.Parser.parse {|<p align="right">end</p>|})
  in
  match texts items with
  | [ (_, b) ] -> check_bool "flush right" true (b.Geometry.x2 > 360)
  | _ -> Alcotest.fail "expected one run"

let test_cell_alignment () =
  let items =
    render
      {|<table><tr><td align="center">aaaaaaaaaa</td></tr><tr><td align="center">bb</td></tr></table>|}
  in
  match texts items with
  | [ (_, long); (_, short) ] ->
    check_bool "short cell content centered under long" true
      (abs (Geometry.center_x short - Geometry.center_x long) < 14)
  | _ -> Alcotest.fail "expected two runs"

(* --- ascii debug rendering --- *)

let test_ascii_rendering () =
  let art =
    Wqi_layout.Debug.ascii_of_html
      {|<form>Author: <input type="text" size="6"><br><input type="radio"> exact</form>|}
  in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' art)
  in
  (match lines with
   | [ first; second ] ->
     check_bool "label drawn" true
       (String.length first >= 7 && String.sub (String.trim first) 0 7 = "Author:");
     check_bool "textbox drawn" true (String.contains first '[');
     check_bool "radio drawn" true (String.contains second '(')
   | _ -> Alcotest.failf "expected two lines, got %d" (List.length lines));
  Alcotest.(check string) "empty input" ""
    (Wqi_layout.Debug.ascii_of_html "")

let test_ascii_widget_sketches () =
  let art =
    Wqi_layout.Debug.ascii_of_html
      {|<form><select><option>Hardcover</option></select> <input type="checkbox"> <input type="submit" value="Go"></form>|}
  in
  check_bool "select sketch" true
    (String.length art > 0 &&
     (let contains needle =
        let n = String.length needle and h = String.length art in
        let rec at i = i + n <= h && (String.sub art i n = needle || at (i+1)) in
        at 0
      in
      contains "[v Hardcover]" && contains "[_]" && contains "<Go"))

let suite =
  [ ("geometry: normalization", `Quick, test_box_normalization);
    ("geometry: union/contains", `Quick, test_union_contains);
    ("geometry: overlaps and gaps", `Quick, test_overlaps_and_gaps);
    ("geometry: left_of", `Quick, test_left_of);
    ("geometry: above/below", `Quick, test_above_below);
    ("geometry: alignment", `Quick, test_alignment);
    ("geometry: same row/column", `Quick, test_same_row_column);
    ("geometry: reading order", `Quick, test_reading_order);
    ("geometry: distance", `Quick, test_distance);
    ("style: widget sizes", `Quick, test_widget_sizes);
    ("style: utf8 width", `Quick, test_text_width_utf8);
    ("engine: single line flow", `Quick, test_flow_single_line);
    ("engine: runs merge across inline", `Quick, test_text_runs_merge_across_inline);
    ("engine: br breaks line", `Quick, test_br_breaks_line);
    ("engine: whitespace collapse", `Quick, test_whitespace_collapse);
    ("engine: word wrap", `Quick, test_word_wrap);
    ("engine: blocks stack", `Quick, test_blocks_stack);
    ("engine: table columns align", `Quick, test_table_columns_align);
    ("engine: table colspan", `Quick, test_table_colspan);
    ("engine: nested table", `Quick, test_nested_table);
    ("engine: invisible skipped", `Quick, test_invisible_skipped);
    ("engine: select options not text", `Quick, test_select_options_not_text);
    ("engine: vertical centering", `Quick, test_vertical_centering);
    ("engine: reading order", `Quick, test_reading_order_output);
    ("engine: list indent", `Quick, test_list_indent);
    ("engine: center alignment", `Quick, test_center_alignment);
    ("engine: right alignment", `Quick, test_right_alignment);
    ("engine: cell alignment", `Quick, test_cell_alignment);
    ("debug: ascii rendering", `Quick, test_ascii_rendering);
    ("debug: widget sketches", `Quick, test_ascii_widget_sketches) ]
