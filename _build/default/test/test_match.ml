(* Tests for JSON export, textual similarity, interface matching and
   clustering, and multi-form extraction. *)

module Condition = Wqi_model.Condition
module Export = Wqi_model.Export
module Textsim = Wqi_model.Textsim
module Match = Wqi_match.Interface_match

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let cond ?operators ?(domain = Condition.Text) name =
  Condition.make ?operators ~attribute:name domain

(* --- export --- *)

let test_export_condition () =
  check_str "text condition"
    {|{"attribute": "Author", "operators": ["contains"], "domain": {"kind": "text"}}|}
    (Export.condition (cond ~operators:[ "contains" ] "Author"));
  check_str "enumeration"
    {|{"attribute": "Format", "operators": [], "domain": {"kind": "enumeration", "values": ["CD", "Vinyl"]}}|}
    (Export.condition (cond ~domain:(Condition.Enumeration [ "CD"; "Vinyl" ]) "Format"));
  check_str "range nests"
    {|{"attribute": "Price", "operators": [], "domain": {"kind": "range", "of": {"kind": "text"}}}|}
    (Export.condition (cond ~domain:(Condition.Range Condition.Text) "Price"))

let test_export_escaping () =
  let json = Export.condition (cond "He said \"hi\"\n") in
  check_bool "escaped quote" true
    (String.length json > 0
     && not (String.contains (String.concat "" (String.split_on_char '\\' json)) '\n'))

let test_export_model () =
  let m =
    { Wqi_model.Semantic_model.conditions = [ cond "A" ];
      errors = [ Wqi_model.Semantic_model.Missing (3, "text \"x\"") ] }
  in
  let json = Export.model m in
  check_bool "has conditions key" true
    (String.length json > 20 && String.sub json 0 15 = {|{"conditions": |});
  check_bool "error encoded" true
    (let needle = {|"kind": "missing"|} in
     let n = String.length needle and h = String.length json in
     let rec at i = i + n <= h && (String.sub json i n = needle || at (i + 1)) in
     at 0)

let test_export_source_description () =
  let m = { Wqi_model.Semantic_model.conditions = []; errors = [] } in
  check_str "wraps name and url"
    {|{"source": "amazon", "url": "http://amazon.com", "capabilities": {"conditions": [], "errors": []}}|}
    (Export.source_description ~name:"amazon" ~url:"http://amazon.com" m)

(* --- textsim --- *)

let test_textsim () =
  Alcotest.(check (float 0.001)) "identical" 1.0 (Textsim.similarity "Author" "author:");
  check_bool "plural" true (Textsim.similarity "Publisher" "Publishers" > 0.8);
  check_bool "unrelated" true (Textsim.similarity "Make" "Departure" < 0.4);
  Alcotest.(check (float 0.001)) "empty" 0.0 (Textsim.similarity "" "x");
  Alcotest.(check (list string)) "single char sentinel" [ "a$" ] (Textsim.bigrams "A")

(* --- matching --- *)

let schema source conditions = { Match.source; conditions }

let books_a =
  schema "books-a"
    [ cond "Author"; cond "Title";
      cond ~domain:(Condition.Enumeration [ "H"; "P" ]) "Format" ]

let books_b =
  schema "books-b"
    [ cond "Author name"; cond "Title:";
      cond ~domain:(Condition.Enumeration [ "x"; "y"; "z" ]) "Subject" ]

let cars =
  schema "cars"
    [ cond ~domain:(Condition.Enumeration [ "Ford"; "BMW" ]) "Make";
      cond "Model"; cond ~domain:(Condition.Range Condition.Text) "Price" ]

let test_attribute_match () =
  check_bool "same label same shape" true
    (Match.attribute_match (cond "Author") (cond "author:") = 1.0);
  check_bool "domain shape penalty" true
    (Match.attribute_match (cond "Format")
       (cond ~domain:(Condition.Enumeration [ "a"; "b" ]) "Format")
     = 0.8)

let test_correspondences () =
  let pairs = Match.correspondences books_a books_b in
  check_int "two matches" 2 (List.length pairs);
  let matched_attrs =
    List.sort compare
      (List.map (fun ((a : Condition.t), _, _) -> a.attribute) pairs)
  in
  Alcotest.(check (list string)) "author and title matched"
    [ "Author"; "Title" ] matched_attrs;
  (* One-to-one: a schema with duplicate attributes cannot double-match. *)
  let dup = schema "dup" [ cond "Author"; cond "Author" ] in
  let single = schema "single" [ cond "Author" ] in
  check_int "one-to-one" 1 (List.length (Match.correspondences dup single))

let test_schema_similarity () =
  check_bool "same-domain schemas close" true
    (Match.schema_similarity books_a books_b > 0.4);
  check_bool "cross-domain schemas far" true
    (Match.schema_similarity books_a cars < 0.2);
  Alcotest.(check (float 0.001)) "identity" 1.0
    (Match.schema_similarity books_a books_a);
  Alcotest.(check (float 0.001)) "empty vs nonempty" 0.0
    (Match.schema_similarity (schema "e" []) books_a);
  Alcotest.(check (float 0.001)) "both empty" 1.0
    (Match.schema_similarity (schema "e" []) (schema "f" []))

let test_cluster () =
  let clusters = Match.cluster ~threshold:0.4 [ books_a; cars; books_b ] in
  check_int "two clusters" 2 (List.length clusters);
  let sizes = List.sort compare (List.map List.length clusters) in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] sizes

let test_purity () =
  let label (s : Match.schema) = if s.source = "cars" then "autos" else "books" in
  let perfect = [ [ books_a; books_b ]; [ cars ] ] in
  Alcotest.(check (float 0.001)) "perfect" 1.0 (Match.purity ~label perfect);
  let mixed = [ [ books_a; cars ]; [ books_b ] ] in
  Alcotest.(check (float 0.001)) "mixed" (2. /. 3.) (Match.purity ~label mixed);
  Alcotest.(check (float 0.001)) "empty" 1.0 (Match.purity ~label [])

let test_end_to_end_clustering () =
  (* Extract two Books forms and one Automobiles form, then cluster the
     *extracted* schemas: the domains must separate. *)
  let g = Wqi_corpus.Prng.create 0xC1L in
  let gen domain_name id =
    let domain = Wqi_corpus.Vocabulary.find domain_name in
    let s =
      Wqi_corpus.Generator.generate g ~id ~domain ~complexity:`Rich
        ~oog_prob:0. ()
    in
    schema id (Wqi_core.Extractor.conditions (Wqi_core.Extractor.extract s.html))
  in
  let schemas =
    [ gen "Books" "b1"; gen "Automobiles" "a1"; gen "Books" "b2";
      gen "Automobiles" "a2" ]
  in
  let clusters = Match.cluster ~threshold:0.25 schemas in
  let label (s : Match.schema) = String.make 1 s.source.[0] in
  check_bool "high purity" true (Match.purity ~label clusters >= 0.75)

(* --- unification --- *)

let test_unify_merges_labels () =
  let s1 = schema "s1" [ cond "Author"; cond "Title" ] in
  let s2 = schema "s2" [ cond "author:"; cond "Publisher" ] in
  let unified = Match.unify [ s1; s2 ] in
  check_int "three unified conditions" 3 (List.length unified);
  (match unified with
   | (c, support) :: _ ->
     Alcotest.(check string) "author has top support" "author"
       (Condition.normalize_label c.attribute);
     check_int "support 2" 2 support
   | [] -> Alcotest.fail "no unified conditions")

let test_unify_unions_enumerations () =
  let s1 =
    schema "s1" [ cond ~domain:(Condition.Enumeration [ "CD"; "Vinyl" ]) "Format" ]
  in
  let s2 =
    schema "s2"
      [ cond ~domain:(Condition.Enumeration [ "CD"; "Cassette" ]) "Format:" ]
  in
  match Match.unify [ s1; s2 ] with
  | [ (c, 2) ] ->
    (match c.domain with
     | Condition.Enumeration values ->
       Alcotest.(check (list string)) "values unioned, deduped"
         [ "CD"; "Vinyl"; "Cassette" ] values
     | d -> Alcotest.failf "wrong domain %a" Condition.pp_domain d)
  | u -> Alcotest.failf "expected one unified condition, got %d" (List.length u)

let test_unify_never_merges_within_source () =
  (* Two near-identical attributes in ONE source stay separate (a form
     never repeats an attribute). *)
  let s1 = schema "s1" [ cond "Departure date"; cond "Departure time" ] in
  check_int "kept apart" 2 (List.length (Match.unify [ s1 ]))

let test_unify_operator_union () =
  let s1 = schema "s1" [ cond ~operators:[ "contains" ] "Title" ] in
  let s2 = schema "s2" [ cond ~operators:[ "exact" ] "Title" ] in
  match Match.unify [ s1; s2 ] with
  | [ (c, _) ] ->
    Alcotest.(check (list string)) "operators unioned" [ "contains"; "exact" ]
      (List.sort compare c.operators)
  | u -> Alcotest.failf "expected one condition, got %d" (List.length u)

(* --- multi-form extraction --- *)

let test_extract_forms () =
  let page = {|
<h1>MegaBooks</h1>
<form action="/quick"><input type="text" name="q" size="30"><input type="submit" value="Search"></form>
<h2>Advanced search</h2>
<form action="/advanced">
<table>
<tr><td>Author: <input type="text" name="a"></td></tr>
<tr><td>Title: <input type="text" name="t"></td></tr>
</table>
<input type="submit" value="Find">
</form>|}
  in
  match Wqi_core.Extractor.extract_forms page with
  | [ quick; advanced ] ->
    check_int "quick form: one keyword condition" 1
      (List.length (Wqi_core.Extractor.conditions quick));
    check_int "advanced form: two conditions" 2
      (List.length (Wqi_core.Extractor.conditions advanced))
  | forms -> Alcotest.failf "expected two forms, got %d" (List.length forms)

let test_extract_forms_formless () =
  match Wqi_core.Extractor.extract_forms "<p>Author: <input type=\"text\"></p>" with
  | [ only ] ->
    check_int "whole page used" 1
      (List.length (Wqi_core.Extractor.conditions only))
  | forms -> Alcotest.failf "expected one extraction, got %d" (List.length forms)

let suite =
  [ ("export: condition", `Quick, test_export_condition);
    ("export: escaping", `Quick, test_export_escaping);
    ("export: model", `Quick, test_export_model);
    ("export: source description", `Quick, test_export_source_description);
    ("textsim", `Quick, test_textsim);
    ("match: attribute", `Quick, test_attribute_match);
    ("match: correspondences", `Quick, test_correspondences);
    ("match: schema similarity", `Quick, test_schema_similarity);
    ("match: cluster", `Quick, test_cluster);
    ("match: purity", `Quick, test_purity);
    ("match: end-to-end clustering", `Quick, test_end_to_end_clustering);
    ("unify: merges labels", `Quick, test_unify_merges_labels);
    ("unify: unions enumerations", `Quick, test_unify_unions_enumerations);
    ("unify: within-source separation", `Quick, test_unify_never_merges_within_source);
    ("unify: operator union", `Quick, test_unify_operator_union);
    ("extract_forms: two forms", `Quick, test_extract_forms);
    ("extract_forms: formless page", `Quick, test_extract_forms_formless) ]
