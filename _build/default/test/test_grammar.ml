(* Tests for the 2P grammar core: bitsets, symbols, instances,
   productions, grammar validation, and the 2P schedule graph. *)

module G = Wqi_grammar
module Bitset = G.Bitset
module Symbol = G.Symbol
module Instance = G.Instance
module Production = G.Production
module Preference = G.Preference
module Grammar = G.Grammar
module Schedule = G.Schedule
module Token = Wqi_token.Token
module Geometry = Wqi_layout.Geometry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- bitset --- *)

let test_bitset_basics () =
  let s = Bitset.of_list 100 [ 3; 70; 3 ] in
  check_bool "mem 3" true (Bitset.mem s 3);
  check_bool "mem 70" true (Bitset.mem s 70);
  check_bool "not mem 4" false (Bitset.mem s 4);
  check_int "cardinal dedups" 2 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements sorted" [ 3; 70 ] (Bitset.elements s);
  check_bool "empty" true (Bitset.is_empty (Bitset.empty 10))

let test_bitset_algebra () =
  let a = Bitset.of_list 128 [ 1; 64; 100 ] in
  let b = Bitset.of_list 128 [ 64; 2 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 64; 100 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 64 ] (Bitset.elements (Bitset.inter a b));
  check_bool "not disjoint" false (Bitset.disjoint a b);
  check_bool "disjoint" true
    (Bitset.disjoint a (Bitset.of_list 128 [ 2; 3 ]));
  check_bool "subset" true (Bitset.subset (Bitset.of_list 128 [ 1 ]) a);
  check_bool "not subset" false (Bitset.subset b a);
  check_bool "strict subset" true
    (Bitset.strict_subset (Bitset.of_list 128 [ 1; 64 ]) a);
  check_bool "equal not strict" false (Bitset.strict_subset a a)

let test_bitset_bounds () =
  Alcotest.check_raises "out of universe" (Invalid_argument "Bitset: index 10 outside universe 10")
    (fun () -> ignore (Bitset.add (Bitset.empty 10) 10));
  Alcotest.check_raises "universe mismatch" (Invalid_argument "Bitset: universe mismatch")
    (fun () -> ignore (Bitset.union (Bitset.empty 10) (Bitset.empty 1000)))

(* --- symbols --- *)

let test_symbols () =
  check_bool "terminal" true (Symbol.is_terminal (Symbol.terminal "text"));
  check_bool "nonterminal" false (Symbol.is_terminal (Symbol.nonterminal "QI"));
  check_bool "distinct classes" false
    (Symbol.equal (Symbol.terminal "x") (Symbol.nonterminal "x"));
  Alcotest.(check string) "of token kind" "selection"
    (Symbol.name (Symbol.of_token_kind Token.Selection))

(* --- instances --- *)

let mk_token id kind x =
  { Token.id; kind; box = Geometry.make ~x1:x ~y1:0 ~x2:(x + 10) ~y2:10;
    sval = Printf.sprintf "t%d" id; name = ""; options = []; value = ""; checked = false;
    multiple = false }

let universe = 8

let token_inst id kind x =
  Instance.of_token ~id ~universe (mk_token id kind x)

let test_instance_of_token () =
  let i = token_inst 2 Token.Text 50 in
  check_bool "covers own token" true (Bitset.mem i.Instance.cover 2);
  check_int "cover size" 1 (Bitset.cardinal i.Instance.cover);
  check_bool "alive" true i.Instance.alive

let cond_a = Wqi_model.Condition.make ~attribute:"A" Wqi_model.Condition.Text

let make_parent ?(sem = Instance.S_none) id children =
  Instance.make ~id ~sym:(Symbol.nonterminal "N") ~prod:"P" ~children ~sem

let test_instance_make () =
  let a = token_inst 0 Token.Text 0 in
  let b = token_inst 1 Token.Textbox 20 in
  let p = make_parent 10 [ a; b ] ~sem:(Instance.S_cond cond_a) in
  check_int "cover union" 2 (Bitset.cardinal p.Instance.cover);
  check_bool "box union" true
    (Geometry.contains p.Instance.box a.Instance.box
     && Geometry.contains p.Instance.box b.Instance.box);
  check_bool "parent link" true
    (List.exists (fun (x : Instance.t) -> x.id = 10) a.Instance.parents);
  Alcotest.(check int) "conditions" 1 (List.length (Instance.conditions p));
  check_int "size" 3 (Instance.size p)

let test_instance_conflicts_subsumes () =
  let a = token_inst 0 Token.Text 0 in
  let b = token_inst 1 Token.Textbox 20 in
  let c = token_inst 2 Token.Text 40 in
  let ab = make_parent 10 [ a; b ] in
  let bc = make_parent 11 [ b; c ] in
  let abc = make_parent 12 [ ab; c ] in
  check_bool "conflict on shared token" true (Instance.conflicts ab bc);
  check_bool "no conflict" false
    (Instance.conflicts a c);
  check_bool "subsumes" true (Instance.subsumes abc ab);
  check_bool "not subsumed" false (Instance.subsumes ab abc)

let test_instance_descendant () =
  let a = token_inst 0 Token.Text 0 in
  let b = token_inst 1 Token.Textbox 20 in
  let ab = make_parent 10 [ a; b ] in
  let top = make_parent 11 [ ab ] in
  check_bool "direct" true (Instance.is_descendant ab ~of_:top);
  check_bool "transitive" true (Instance.is_descendant a ~of_:top);
  check_bool "not reflexive" false (Instance.is_descendant top ~of_:top);
  check_bool "unrelated" false
    (Instance.is_descendant (token_inst 2 Token.Text 40) ~of_:top)

let test_instance_rollback () =
  let a = token_inst 0 Token.Text 0 in
  let b = token_inst 1 Token.Textbox 20 in
  let ab = make_parent 10 [ a; b ] in
  let top = make_parent 11 [ ab ] in
  let killed = Instance.rollback ab in
  check_int "two killed" 2 killed;
  check_bool "ab dead" false ab.Instance.alive;
  check_bool "top dead" false top.Instance.alive;
  check_bool "token spared" true a.Instance.alive;
  check_int "idempotent" 0 (Instance.rollback ab)

let test_collect_conditions () =
  let a = token_inst 0 Token.Text 0 in
  let b = token_inst 1 Token.Textbox 20 in
  let leaf = make_parent 10 [ a; b ] ~sem:(Instance.S_cond cond_a) in
  let root = make_parent 11 [ leaf ] ~sem:(Instance.S_conds [ cond_a ]) in
  match Instance.collect_conditions root with
  | [ (c, tokens) ] ->
    Alcotest.(check string) "attribute" "A" c.Wqi_model.Condition.attribute;
    Alcotest.(check (list int)) "token ids" [ 0; 1 ] tokens
  | other -> Alcotest.failf "expected one condition, got %d" (List.length other)

(* --- grammar validation --- *)

let t_text = Symbol.terminal "text"
let nt = Symbol.nonterminal

let prod name head components =
  Production.make ~name ~head ~components ()

let test_validate_ok () =
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
      ~productions:
        [ prod "a" (nt "S") [ nt "A" ]; prod "b" (nt "A") [ t_text ] ]
      ()
  in
  check_bool "valid" true (Grammar.validate g = Ok ())

let expect_invalid g fragment =
  match Grammar.validate g with
  | Ok () -> Alcotest.failf "expected error mentioning %S" fragment
  | Error errors ->
    check_bool
      (Printf.sprintf "mentions %s" fragment)
      true
      (List.exists
         (fun e ->
            let contains needle haystack =
              let n = String.length needle and h = String.length haystack in
              let rec at i =
                i + n <= h && (String.sub haystack i n = needle || at (i + 1))
              in
              at 0
            in
            contains fragment e)
         errors)

let test_validate_errors () =
  expect_invalid
    (Grammar.make ~terminals:[ t_text ] ~start:t_text
       ~productions:[ prod "a" (nt "A") [ t_text ] ]
       ())
    "terminal";
  expect_invalid
    (Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
       ~productions:[ prod "a" (nt "A") [ t_text ] ]
       ())
    "no production";
  expect_invalid
    (Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
       ~productions:
         [ prod "a" (nt "S") [ t_text ]; prod "a" (nt "S") [ t_text; t_text ] ]
       ())
    "duplicate";
  expect_invalid
    (Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
       ~productions:[ prod "a" (nt "S") [ nt "Missing" ] ]
       ())
    "no production";
  (* Mutual recursion between distinct symbols is rejected. *)
  expect_invalid
    (Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
       ~productions:
         [ prod "a" (nt "S") [ nt "A" ]; prod "b" (nt "A") [ nt "S" ] ]
       ())
    "cycle"

let test_validate_self_recursion_ok () =
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "L")
      ~productions:
        [ prod "base" (nt "L") [ t_text ]; prod "rec" (nt "L") [ nt "L"; t_text ] ]
      ()
  in
  check_bool "self recursion allowed" true (Grammar.validate g = Ok ())

let test_grammar_stats_and_helpers () =
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
      ~productions:
        [ prod "a" (nt "S") [ nt "A"; nt "B" ];
          prod "b" (nt "A") [ t_text ];
          prod "c" (nt "B") [ t_text ] ]
      ~preferences:
        [ Preference.make ~name:"r" ~winner:(nt "A") ~loser:(nt "B") () ]
      ()
  in
  let terminals, nonterminals, productions, preferences = Grammar.stats g in
  check_int "terminals" 1 terminals;
  check_int "nonterminals" 3 nonterminals;
  check_int "productions" 3 productions;
  check_int "preferences" 1 preferences;
  Alcotest.(check (list string)) "parents of A" [ "S" ]
    (List.map Symbol.name (Grammar.parents_of g (nt "A")));
  check_int "productions with head S" 1
    (List.length (Grammar.productions_with_head g (nt "S")))

let test_grammar_extend () =
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
      ~productions:[ prod "a" (nt "S") [ t_text ] ]
      ()
  in
  let g2 = Grammar.extend g ~productions:[ prod "b" (nt "S") [ t_text; t_text ] ] () in
  let _, _, productions, _ = Grammar.stats g2 in
  check_int "extended" 2 productions;
  check_bool "still valid" true (Grammar.validate g2 = Ok ())

let test_production_is_recursive () =
  check_bool "recursive" true
    (Production.is_recursive (prod "r" (nt "L") [ nt "L"; t_text ]));
  check_bool "not recursive" false
    (Production.is_recursive (prod "n" (nt "L") [ t_text ]))

(* --- schedule graph --- *)

let index_of order sym =
  let rec go i = function
    | [] -> Alcotest.failf "symbol %s not scheduled" (Symbol.name sym)
    | x :: rest -> if Symbol.equal x sym then i else go (i + 1) rest
  in
  go 0 order

let test_schedule_d_edges () =
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
      ~productions:
        [ prod "a" (nt "S") [ nt "A"; nt "B" ];
          prod "b" (nt "A") [ t_text ];
          prod "c" (nt "B") [ nt "A" ] ]
      ()
  in
  let s = Schedule.build g in
  let order = s.Schedule.order in
  check_bool "A before B" true (index_of order (nt "A") < index_of order (nt "B"));
  check_bool "B before S" true (index_of order (nt "B") < index_of order (nt "S"));
  check_int "no relaxed" 0 (List.length s.Schedule.relaxed)

let test_schedule_r_edge () =
  (* The paper's RBU-before-Attr requirement: the winner is scheduled
     first even without a d-edge between them. *)
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
      ~productions:
        [ prod "s" (nt "S") [ nt "Attr"; nt "RBU" ];
          prod "attr" (nt "Attr") [ t_text ];
          prod "rbu" (nt "RBU") [ t_text ] ]
      ~preferences:
        [ Preference.make ~name:"r1" ~winner:(nt "RBU") ~loser:(nt "Attr") () ]
      ()
  in
  let s = Schedule.build g in
  check_bool "winner first" true
    (index_of s.Schedule.order (nt "RBU") < index_of s.Schedule.order (nt "Attr"))

let test_schedule_transformation () =
  (* Figure 13: B and C share construct A and carry preferences in both
     directions; one r-edge must be transformed through C's parent D. *)
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
      ~productions:
        [ prod "s" (nt "S") [ nt "D"; nt "B" ];
          prod "d" (nt "D") [ nt "C" ];
          prod "b" (nt "B") [ nt "A" ];
          prod "c" (nt "C") [ nt "A" ];
          prod "a" (nt "A") [ t_text ] ]
      ~preferences:
        [ Preference.make ~name:"b-over-c" ~winner:(nt "B") ~loser:(nt "C") ();
          Preference.make ~name:"c-over-b" ~winner:(nt "C") ~loser:(nt "B") () ]
      ()
  in
  let s = Schedule.build g in
  check_int "one transformed" 1 (List.length s.Schedule.transformed);
  check_int "none relaxed" 0 (List.length s.Schedule.relaxed);
  (* The transformed preference (C beats B) now requires C before B's
     parents; B's parent is S, so C must precede S. *)
  check_bool "indirect edge honoured" true
    (index_of s.Schedule.order (nt "C") < index_of s.Schedule.order (nt "S"))

let test_schedule_relaxed () =
  (* When even transformation cannot break the cycle, the r-edge is
     dropped and reported. *)
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "S")
      ~productions:
        [ prod "s" (nt "S") [ nt "B"; nt "C" ];
          prod "b" (nt "B") [ nt "A" ];
          prod "c" (nt "C") [ nt "A" ];
          prod "a" (nt "A") [ t_text ] ]
      ~preferences:
        [ Preference.make ~name:"b-over-c" ~winner:(nt "B") ~loser:(nt "C") ();
          Preference.make ~name:"c-over-b" ~winner:(nt "C") ~loser:(nt "B") () ]
      ()
  in
  let s = Schedule.build g in
  (* Both losers' only parent is S; the second edge C -> S is fine, so
     transformation may actually succeed here — accept either success or
     relaxation, but never both failing silently. *)
  check_bool "transformed or relaxed" true
    (List.length s.Schedule.transformed + List.length s.Schedule.relaxed >= 1)

let test_schedule_rejects_invalid () =
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:t_text
      ~productions:[ prod "a" (nt "A") [ t_text ] ]
      ()
  in
  check_bool "raises" true
    (try
       ignore (Schedule.build g);
       false
     with Invalid_argument _ -> true)

let suite =
  [ ("bitset: basics", `Quick, test_bitset_basics);
    ("bitset: algebra", `Quick, test_bitset_algebra);
    ("bitset: bounds", `Quick, test_bitset_bounds);
    ("symbols", `Quick, test_symbols);
    ("instance: of_token", `Quick, test_instance_of_token);
    ("instance: make", `Quick, test_instance_make);
    ("instance: conflicts/subsumes", `Quick, test_instance_conflicts_subsumes);
    ("instance: descendants", `Quick, test_instance_descendant);
    ("instance: rollback", `Quick, test_instance_rollback);
    ("instance: collect conditions", `Quick, test_collect_conditions);
    ("grammar: validate ok", `Quick, test_validate_ok);
    ("grammar: validate errors", `Quick, test_validate_errors);
    ("grammar: self recursion ok", `Quick, test_validate_self_recursion_ok);
    ("grammar: stats and helpers", `Quick, test_grammar_stats_and_helpers);
    ("grammar: extend", `Quick, test_grammar_extend);
    ("production: is_recursive", `Quick, test_production_is_recursive);
    ("schedule: d-edges", `Quick, test_schedule_d_edges);
    ("schedule: r-edge", `Quick, test_schedule_r_edge);
    ("schedule: transformation", `Quick, test_schedule_transformation);
    ("schedule: relaxed", `Quick, test_schedule_relaxed);
    ("schedule: rejects invalid grammar", `Quick, test_schedule_rejects_invalid) ]
