(* Unit tests for the HTML substrate: entities, lexer, tree builder,
   serializer. *)

module Entity = Wqi_html.Entity
module Lexer = Wqi_html.Lexer
module Dom = Wqi_html.Dom
module Parser = Wqi_html.Parser
module Printer = Wqi_html.Printer

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- entities --- *)

let test_named_entities () =
  check "amp" "&" (Entity.decode "&amp;");
  check "lt-gt" "<tag>" (Entity.decode "&lt;tag&gt;");
  check "quote" "\"q\"" (Entity.decode "&quot;q&quot;");
  check "nbsp is utf8" "\xc2\xa0" (Entity.decode "&nbsp;")

let test_numeric_entities () =
  check "decimal" "A" (Entity.decode "&#65;");
  check "hex" "A" (Entity.decode "&#x41;");
  check "hex uppercase X" "A" (Entity.decode "&#X41;");
  check "two-byte" "\xc2\xa9" (Entity.decode "&#169;");
  check "three-byte" "\xe2\x82\xac" (Entity.decode "&#8364;");
  check "replacement for surrogate" "\xef\xbf\xbd" (Entity.decode "&#xD800;");
  check "replacement for out of range" "\xef\xbf\xbd"
    (Entity.decode "&#1114112;")

let test_entity_recovery () =
  check "bare ampersand kept" "a & b" (Entity.decode "a & b");
  check "unknown entity kept" "&bogus;" (Entity.decode "&bogus;");
  check "missing semicolon still decodes" "a<b" (Entity.decode "a&ltb");
  check "single pass" "&amp;" (Entity.decode "&amp;amp;");
  check "uppercase legacy name" "<" (Entity.decode "&LT;")

let test_entity_encode () =
  check "text escape" "a &amp; &lt;b&gt;" (Entity.encode_text "a & <b>");
  check "attribute escape" "say &quot;hi&quot;"
    (Entity.encode_attribute "say \"hi\"");
  check "text keeps quotes" "\"q\"" (Entity.encode_text "\"q\"");
  check "roundtrip" "a & <b>" (Entity.decode (Entity.encode_text "a & <b>"))

(* --- lexer --- *)

let tokens_of = Lexer.tokenize

let test_lexer_basic () =
  match tokens_of "<p>hi</p>" with
  | [ Lexer.Open ("p", [], false); Lexer.Text "hi"; Lexer.Close "p" ] -> ()
  | toks ->
    Alcotest.failf "unexpected tokens: %a"
      Fmt.(list ~sep:comma Lexer.pp_token)
      toks

let test_lexer_attributes () =
  match tokens_of {|<input type="text" NAME='q' checked size=20>|} with
  | [ Lexer.Open ("input", attrs, false) ] ->
    check "type" "text" (List.assoc "type" attrs);
    check "lowercased name" "q" (List.assoc "name" attrs);
    check "valueless" "" (List.assoc "checked" attrs);
    check "unquoted" "20" (List.assoc "size" attrs)
  | _ -> Alcotest.fail "expected one open tag"

let test_lexer_attribute_entities () =
  match tokens_of {|<a title="a&amp;b">|} with
  | [ Lexer.Open ("a", [ ("title", v) ], false) ] -> check "decoded" "a&b" v
  | _ -> Alcotest.fail "expected one open tag"

let test_lexer_self_closing () =
  match tokens_of "<br/>" with
  | [ Lexer.Open ("br", [], true) ] -> ()
  | _ -> Alcotest.fail "expected self-closing br"

let test_lexer_comment_doctype () =
  match tokens_of "<!DOCTYPE html><!-- note --><b>x</b>" with
  | [ Lexer.Doctype _; Lexer.Comment " note "; Lexer.Open ("b", [], false);
      Lexer.Text "x"; Lexer.Close "b" ] ->
    ()
  | toks ->
    Alcotest.failf "unexpected tokens: %a"
      Fmt.(list ~sep:comma Lexer.pp_token)
      toks

let test_lexer_raw_text () =
  (match tokens_of "<script>if (a < b) x();</script>" with
   | [ Lexer.Open ("script", [], false); Lexer.Text body; Lexer.Close "script" ]
     ->
     check "verbatim" "if (a < b) x();" body
   | _ -> Alcotest.fail "script content must be raw");
  match tokens_of "<textarea>a &amp; b</textarea>" with
  | [ Lexer.Open ("textarea", [], false); Lexer.Text body;
      Lexer.Close "textarea" ] ->
    check "decoded" "a & b" body
  | _ -> Alcotest.fail "textarea content must be text"

let test_lexer_recovery () =
  (match tokens_of "a < b" with
   | [ Lexer.Text t ] -> check "lone < is text" "a < b" t
   | _ -> Alcotest.fail "expected one text run");
  (match tokens_of "<p" with
   | [ Lexer.Open ("p", [], false) ] -> ()
   | _ -> Alcotest.fail "unterminated tag extends to eof");
  match tokens_of "<!-- unterminated" with
  | [ Lexer.Comment " unterminated" ] -> ()
  | _ -> Alcotest.fail "unterminated comment extends to eof"

let test_lexer_processing_instruction () =
  match tokens_of "<?xml version=\"1.0\"?>x" with
  | [ Lexer.Text "x" ] -> ()
  | _ -> Alcotest.fail "processing instructions are dropped"

(* --- tree builder --- *)

let body_of html =
  match Wqi_html.Parser.parse html with
  | Dom.Element ("html", _, [ (Dom.Element ("body", _, _) as body) ]) -> body
  | _ -> Alcotest.fail "expected html > body skeleton"

let test_parser_skeleton () =
  let body = body_of "hello" in
  check "text content" "hello" (Dom.text_content body)

let test_parser_nesting () =
  match Parser.parse_fragment "<div><b>x</b><i>y</i></div>" with
  | [ Dom.Element ("div", [], [ Dom.Element ("b", _, _); Dom.Element ("i", _, _) ]) ]
    ->
    ()
  | _ -> Alcotest.fail "bad nesting"

let test_parser_void_elements () =
  match Parser.parse_fragment "<p>a<br>b</p>" with
  | [ Dom.Element ("p", _, [ Dom.Text "a"; Dom.Element ("br", _, []); Dom.Text "b" ]) ]
    ->
    ()
  | _ -> Alcotest.fail "br must be void and stay inside p"

let test_parser_implicit_li () =
  match Parser.parse_fragment "<ul><li>a<li>b</ul>" with
  | [ Dom.Element ("ul", _, [ Dom.Element ("li", _, _); Dom.Element ("li", _, _) ]) ]
    ->
    ()
  | _ -> Alcotest.fail "li must close previous li"

let test_parser_implicit_cells () =
  match Parser.parse_fragment "<table><tr><td>a<td>b<tr><td>c</table>" with
  | [ Dom.Element
        ( "table", _,
          [ Dom.Element ("tr", _, [ Dom.Element ("td", _, _); Dom.Element ("td", _, _) ]);
            Dom.Element ("tr", _, [ Dom.Element ("td", _, _) ]) ] ) ] ->
    ()
  | frag ->
    Alcotest.failf "bad table recovery: %a" Fmt.(list ~sep:comma Dom.pp) frag

let test_parser_implicit_option () =
  match Parser.parse_fragment "<select><option>a<option>b</select>" with
  | [ Dom.Element ("select", _, opts) ] -> check_int "options" 2 (List.length opts)
  | _ -> Alcotest.fail "bad select recovery"

let test_parser_p_closed_by_block () =
  match Parser.parse_fragment "<p>a<div>b</div>" with
  | [ Dom.Element ("p", _, [ Dom.Text "a" ]); Dom.Element ("div", _, _) ] -> ()
  | frag ->
    Alcotest.failf "p must close before div: %a"
      Fmt.(list ~sep:comma Dom.pp)
      frag

let test_parser_mismatched_close () =
  match Parser.parse_fragment "<b>x</i>y</b>" with
  | [ Dom.Element ("b", _, [ Dom.Text "x"; Dom.Text "y" ]) ] -> ()
  | _ -> Alcotest.fail "stray close tags are ignored"

let test_parser_close_scope_boundary () =
  (* A </div> inside a table cell must not close a div outside it. *)
  match
    Parser.parse_fragment "<div><table><tr><td>x</div>y</td></tr></table></div>"
  with
  | [ Dom.Element ("div", _, _) ] -> ()
  | frag ->
    Alcotest.failf "close must stop at cell boundary: %a"
      Fmt.(list ~sep:comma Dom.pp)
      frag

let test_parser_close_br () =
  match Parser.parse_fragment "a</br>b" with
  | [ Dom.Text "a"; Dom.Element ("br", _, _); Dom.Text "b" ] -> ()
  | _ -> Alcotest.fail "</br> behaves like <br>"

let test_dom_helpers () =
  let doc = Wqi_html.Parser.parse {|<div id="d"><span>one</span> two</div>|} in
  let div = Option.get (Dom.find_first (Dom.is_element ~named:"div") doc) in
  check "attr" "d" (Dom.attr_default "id" ~default:"?" div);
  check_bool "has_attr" true (Dom.has_attr "id" div);
  check "text content" "one two" (Dom.text_content div);
  check_int "find_all spans" 1
    (List.length (Dom.find_all (Dom.is_element ~named:"span") doc));
  check_int "fold counts nodes" 6 (Dom.fold (fun n _ -> n + 1) 0 doc)

(* --- printer --- *)

let test_printer_roundtrip () =
  let fragment = "<div class=\"x\"><p>a &amp; b</p><br><input type=\"text\"></div>" in
  let parsed = Parser.parse_fragment fragment in
  check "serialize" fragment (Printer.fragment_to_string parsed)

let test_printer_escapes () =
  let node = Dom.element "p" ~attrs:[ ("title", "a\"b") ] [ Dom.text "x<y" ] in
  check "escaped" "<p title=\"a&quot;b\">x&lt;y</p>" (Printer.to_string node)

let test_printer_void_no_close () =
  let node = Dom.element "img" ~attrs:[ ("src", "a.gif") ] [] in
  check "void" "<img src=\"a.gif\">" (Printer.to_string node)

let suite =
  [ ("entities: named", `Quick, test_named_entities);
    ("entities: numeric", `Quick, test_numeric_entities);
    ("entities: recovery", `Quick, test_entity_recovery);
    ("entities: encoding", `Quick, test_entity_encode);
    ("lexer: basic", `Quick, test_lexer_basic);
    ("lexer: attributes", `Quick, test_lexer_attributes);
    ("lexer: attribute entities", `Quick, test_lexer_attribute_entities);
    ("lexer: self-closing", `Quick, test_lexer_self_closing);
    ("lexer: comment and doctype", `Quick, test_lexer_comment_doctype);
    ("lexer: raw text elements", `Quick, test_lexer_raw_text);
    ("lexer: recovery", `Quick, test_lexer_recovery);
    ("lexer: processing instruction", `Quick, test_lexer_processing_instruction);
    ("parser: skeleton", `Quick, test_parser_skeleton);
    ("parser: nesting", `Quick, test_parser_nesting);
    ("parser: void elements", `Quick, test_parser_void_elements);
    ("parser: implicit li", `Quick, test_parser_implicit_li);
    ("parser: implicit cells", `Quick, test_parser_implicit_cells);
    ("parser: implicit option", `Quick, test_parser_implicit_option);
    ("parser: p closed by block", `Quick, test_parser_p_closed_by_block);
    ("parser: mismatched close", `Quick, test_parser_mismatched_close);
    ("parser: close scope boundary", `Quick, test_parser_close_scope_boundary);
    ("parser: close br", `Quick, test_parser_close_br);
    ("dom: helpers", `Quick, test_dom_helpers);
    ("printer: roundtrip", `Quick, test_printer_roundtrip);
    ("printer: escapes", `Quick, test_printer_escapes);
    ("printer: void", `Quick, test_printer_void_no_close) ]
